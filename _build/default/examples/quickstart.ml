(** Quickstart: compile one MiniC kernel several ways and compare energy.

    Run with: dune exec examples/quickstart.exe *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Pattern = Lp_patterns.Pattern

let source =
  {|
int sig_in[1040] = {3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3};
int coef[16] = {1,-2,3,-1,2,4,-3,1,0,2,-1,3,1,-2,2,1};
int out[1024];

int main() {
  for (int i = 0; i < 1024; i = i + 1) {
    int s = 0;
    for (int k = 0; k < 16; k = k + 1) {
      s = s + sig_in[i + k] * coef[k];
    }
    out[i] = s;
  }
  int chk = 0;
  for (int i = 0; i < 1024; i = i + 1) {
    chk = chk * 3 + out[i];
  }
  return chk;
}
|}

let show name (compiled : Compile.compiled) (outcome : Sim.outcome) =
  let ret =
    match outcome.Sim.ret with
    | Some v -> Lp_sim.Value.to_string v
    | None -> "-"
  in
  Printf.printf
    "%-10s ret=%-12s time=%8.1fus energy=%8.1fuJ cores=%d patterns=%d wakeup-faults=%d\n"
    name ret
    (outcome.Sim.duration_ns /. 1e3)
    (Ledger.total outcome.Sim.energy /. 1e3)
    (List.length (Lp_ir.Prog.entries compiled.Compile.prog))
    (List.length compiled.Compile.detection.Pattern.instances)
    outcome.Sim.implicit_wakeups

let () =
  let machine = Machine.generic ~n_cores:4 () in
  let configs =
    [
      ("baseline", Compile.baseline);
      ("pg", Compile.pg_only);
      ("dvfs", Compile.dvfs_only);
      ("pg+dvfs", Compile.pg_dvfs);
      ("full", Compile.full ~n_cores:4);
    ]
  in
  print_endline "FIR quickstart on a generic 4-core embedded machine:";
  List.iter
    (fun (name, opts) ->
      let (compiled, outcome) = Compile.run ~opts ~machine source in
      show name compiled outcome)
    configs;
  print_endline
    "\nExpected shape: same ret everywhere; energy drops from baseline \
     through pg/dvfs; 'full' (pattern-parallel + power) is fastest and \
     lowest-energy."
