(** Example: tuning the DVFS policy knobs.

    Sweeps the allowed slowdown bound of the compiler-directed DVFS pass
    on a memory-bound workload (histogram) and shows the energy/time
    trade-off curve, then contrasts machines with different numbers of
    operating points. *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module T = Lp_transforms
module W = Lp_workloads.Workload

let source = (Lp_workloads.Suite.find_exn "histogram").W.source

let run_with_slowdown machine max_slowdown =
  let opts =
    { Compile.dvfs_only with
      Compile.power =
        { Compile.dvfs_only.Compile.power with
          Compile.dvfs_opts =
            { T.Dvfs.default_options with T.Dvfs.max_slowdown } } }
  in
  Compile.run ~opts ~machine source

let () =
  let machine = Machine.generic ~n_cores:1 () in
  let (_, base) = Compile.run ~opts:Compile.baseline ~machine source in
  let t0 = base.Sim.duration_ns and e0 = Ledger.total base.Sim.energy in
  print_endline "DVFS slowdown-bound sweep on the memory-bound histogram kernel";
  print_endline "(single core, so the effect is purely within-core):\n";
  Printf.printf "%-12s %-10s %-10s %-12s %s\n" "bound" "time" "energy"
    "transitions" "(relative to baseline)";
  List.iter
    (fun bound ->
      let (_, o) = run_with_slowdown machine bound in
      Printf.printf "%-12s %-10.3f %-10.3f %-12d\n"
        (Printf.sprintf "%.0f%%" (bound *. 100.0))
        (o.Sim.duration_ns /. t0)
        (Ledger.total o.Sim.energy /. e0)
        o.Sim.dvfs_transitions)
    [ 0.02; 0.05; 0.10; 0.20; 0.40 ];
  print_newline ();
  print_endline "More operating points let the compiler land closer to the bound:";
  Printf.printf "%-8s %-10s %-10s\n" "levels" "time" "energy";
  List.iter
    (fun n_levels ->
      let power = Lp_power.Power_model.default ~n_levels () in
      let machine = Machine.generic ~n_cores:1 ~power () in
      let (_, b) = Compile.run ~opts:Compile.baseline ~machine source in
      let (_, o) = run_with_slowdown machine 0.10 in
      Printf.printf "%-8d %-10.3f %-10.3f\n" n_levels
        (o.Sim.duration_ns /. b.Sim.duration_ns)
        (Ledger.total o.Sim.energy /. Ledger.total b.Sim.energy))
    [ 2; 3; 4; 6; 8 ];
  print_newline ();
  print_endline
    "Shape to expect: energy falls as the bound loosens until the lowest \
     operating point is reached; finer ladders approach the bound more \
     precisely."
