examples/image_pipeline.ml: List Lowpower Lp_ir Lp_machine Lp_power Lp_sim Lp_transforms Lp_workloads Printf String
