examples/dvfs_tuning.mli:
