examples/static_mapping.ml: Array List Lp_machine Lp_power Lp_sched Printf String
