examples/sensor_farm.mli:
