examples/dvfs_tuning.ml: List Lowpower Lp_machine Lp_power Lp_sim Lp_transforms Lp_workloads Printf
