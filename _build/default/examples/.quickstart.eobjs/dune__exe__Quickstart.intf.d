examples/quickstart.mli:
