examples/static_mapping.mli:
