examples/quickstart.ml: List Lowpower Lp_ir Lp_machine Lp_patterns Lp_power Lp_sim Printf
