examples/sensor_farm.ml: List Lowpower Lp_machine Lp_patterns Lp_power Lp_sim Printf
