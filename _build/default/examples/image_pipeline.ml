(** Example: a 5-stage media pipeline compiled for machines of different
    widths, showing pipeline stage fusion and stage balancing.

    The program (the [audio5] workload) declares a 5-stage pipeline with
    [#pragma lp] annotations.  On a 2-core machine the compiler fuses it
    to 2 stages (minimising the bottleneck), on 4 cores to 4, and on big
    machines each stage gets its own core; whatever the depth, the
    balancing pass then slows non-bottleneck stages to the bottleneck's
    service rate to convert pipeline slack into energy.

    Run with: dune exec examples/image_pipeline.exe *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Prog = Lp_ir.Prog
module Ir = Lp_ir.Ir
module Par_info = Lp_transforms.Par_info
module W = Lp_workloads.Workload

let source = (Lp_workloads.Suite.find_exn "audio5").W.source

let describe_stages (c : Compile.compiled) =
  List.concat_map
    (fun (cg : Par_info.instance_codegen) ->
      List.mapi
        (fun s name ->
          let level =
            match Prog.find_func c.Compile.prog name with
            | Some f -> (
              match (Prog.block f f.Prog.entry).Ir.instrs with
              | { Ir.idesc = Ir.Dvfs l; _ } :: _ -> Printf.sprintf "L%d" l
              | _ -> "nom")
            | None -> "?"
          in
          Printf.sprintf "stage%d@%s" s level)
        cg.Par_info.stage_funcs)
    c.Compile.par_info.Par_info.instances

let () =
  print_endline "5-stage pipeline across machine widths (full config):";
  print_endline "";
  let machine8 = Machine.generic ~n_cores:8 () in
  let (_, base) = Compile.run ~opts:Compile.baseline ~machine:machine8 source in
  Printf.printf "%-7s %-8s %-10s %-10s %-9s %s\n" "cores" "stages" "time(us)"
    "energy(uJ)" "speedup" "stage operating points";
  List.iter
    (fun n ->
      let (compiled, o) =
        Compile.run ~opts:(Compile.full ~n_cores:n) ~machine:machine8 source
      in
      let stages = describe_stages compiled in
      Printf.printf "%-7d %-8d %-10.0f %-10.1f %-9.2f %s\n" n
        (List.length stages)
        (o.Sim.duration_ns /. 1e3)
        (Ledger.total o.Sim.energy /. 1e3)
        (base.Sim.duration_ns /. o.Sim.duration_ns)
        (String.concat " " stages))
    [ 2; 3; 4; 5 ];
  print_endline "";
  print_endline
    "Reading the last column: the compiler fused 5 declared stages down \
     to the available cores; non-bottleneck stages run at reduced V/f \
     points (L0 is slowest) chosen so they still meet the bottleneck's \
     rate."
