(** Example: offline task-graph mapping with the static scheduler.

    For work that is not a single counted loop — an explicit DAG of tasks
    with data edges — the `lp_sched` substrate plays the role the pattern
    parallelizer plays for loops: HEFT-style list scheduling places tasks
    on cores, and the energy mapper then converts schedule slack into
    lower operating points under a deadline, exactly like the pipeline
    balancing pass does for stages. *)

module Taskgraph = Lp_sched.Taskgraph
module List_sched = Lp_sched.List_sched
module Energy_map = Lp_sched.Energy_map
module Machine = Lp_machine.Machine
module Component = Lp_power.Component

(* A small sensor-fusion DAG: two acquisition tasks feed three filters of
   very different weights, which join into a classifier. *)
let graph =
  let mk = Taskgraph.mk_task in
  let mul_set = Component.Set.of_list [ Component.Alu; Component.Multiplier ] in
  let div_set = Component.Set.of_list [ Component.Alu; Component.Divider ] in
  Taskgraph.create
    ~tasks:
      [
        mk ~tid:0 ~name:"acquireA" ~work:400.0 ~mem_fraction:0.6 ();
        mk ~tid:1 ~name:"acquireB" ~work:400.0 ~mem_fraction:0.6 ();
        mk ~tid:2 ~name:"fir" ~work:5200.0 ~components:mul_set ();
        mk ~tid:3 ~name:"median" ~work:1500.0 ~components:div_set ();
        mk ~tid:4 ~name:"threshold" ~work:700.0 ();
        mk ~tid:5 ~name:"classify" ~work:1200.0 ~components:mul_set ();
      ]
    ~edges:
      [
        { Taskgraph.src = 0; dst = 2; words = 16 };
        { Taskgraph.src = 0; dst = 3; words = 16 };
        { Taskgraph.src = 1; dst = 3; words = 16 };
        { Taskgraph.src = 1; dst = 4; words = 16 };
        { Taskgraph.src = 2; dst = 5; words = 8 };
        { Taskgraph.src = 3; dst = 5; words = 8 };
        { Taskgraph.src = 4; dst = 5; words = 8 };
      ]

let () =
  let machine = Machine.generic ~n_cores:4 () in
  let s = List_sched.run ~machine graph in
  List_sched.validate s;
  Printf.printf "Sensor-fusion DAG on %s:\n\n" machine.Machine.name;
  Printf.printf "  serial: %.0f cycles; scheduled makespan: %.0f cycles on %d cores\n\n"
    (Taskgraph.serial_cycles graph) s.List_sched.makespan_cycles
    (List_sched.cores_used s);
  Printf.printf "  %-10s %-5s %10s %10s\n" "task" "core" "start" "finish";
  Array.iter
    (fun (p : List_sched.placement) ->
      Printf.printf "  %-10s %-5d %10.0f %10.0f\n"
        (Taskgraph.task graph p.List_sched.ptask).Taskgraph.tname
        p.List_sched.core p.List_sched.start_cycles p.List_sched.finish_cycles)
    s.List_sched.placements;
  print_newline ();
  List.iter
    (fun slack ->
      let r = Energy_map.run ~slack s in
      Printf.printf
        "  slack %3.0f%%: estimated energy %7.1f -> %7.1f nJ (%.1f%% saved); levels: %s\n"
        (slack *. 100.0) r.Energy_map.baseline_energy_nj
        r.Energy_map.scaled_energy_nj
        (100.0
        *. (1.0 -. (r.Energy_map.scaled_energy_nj /. r.Energy_map.baseline_energy_nj)))
        (String.concat " "
           (Array.to_list
              (Array.map
                 (fun (a : Energy_map.assignment) ->
                   Printf.sprintf "%s=L%d"
                     (Taskgraph.task graph a.Energy_map.atask).Taskgraph.tname
                     a.Energy_map.level)
                 r.Energy_map.assignments))))
    [ 0.0; 0.05; 0.20 ];
  print_newline ();
  print_endline
    "Tasks off the critical path (median/threshold/acquire) drop to lower \
     operating points even at 0% slack; loosening the deadline lets the \
     mapper slow more of the graph."
