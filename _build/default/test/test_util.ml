(** Unit and property tests for the utility library. *)

module Rng = Lp_util.Rng
module Stats = Lp_util.Stats
module Table = Lp_util.Table
module Id_gen = Lp_util.Id_gen
module Int32_sem = Lp_util.Int32_sem

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------------- rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 in
  let b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 in
  let b = Rng.create ~seed:2 in
  let xs = List.init 16 (fun _ -> Rng.int a 1000) in
  let ys = List.init 16 (fun _ -> Rng.int b 1000) in
  if xs = ys then fail "different seeds produced identical streams"

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.failf "int out of bounds: %d" v;
    let w = Rng.int_in r (-5) 5 in
    if w < -5 || w > 5 then Alcotest.failf "int_in out of bounds: %d" w;
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:9 in
  let xs = List.init 50 Fun.id in
  let ys = Rng.shuffle r xs in
  check
    Alcotest.(list int)
    "same multiset" xs
    (List.sort compare ys)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:5 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  let xa = Rng.int a 1000 and xb = Rng.int b 1000 in
  check Alcotest.int "copy continues identically" xa xb

let test_rng_invalid () =
  let r = Rng.create ~seed:3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "empty choose" (Invalid_argument "Rng.choose: empty list")
    (fun () -> ignore (Rng.choose r []))

(* ---------------- stats ---------------- *)

let feq = Alcotest.float 1e-9

let test_stats_mean () =
  check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check feq "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_geomean () =
  check feq "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive element") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stats_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check feq "p0" 10.0 (Stats.percentile 0.0 xs);
  check feq "p100" 40.0 (Stats.percentile 100.0 xs);
  check feq "p50" 25.0 (Stats.percentile 50.0 xs)

let test_stats_percent () =
  check feq "change" 50.0 (Stats.percent_change ~before:2.0 ~after:3.0);
  check feq "reduction" 50.0 (Stats.percent_reduction ~before:2.0 ~after:1.0)

(* ---------------- table ---------------- *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~header:[ "a"; "bb" ] () in
  Table.add_row t [ "x"; "y" ];
  Table.add_row t [ "longer"; "z" ];
  let s = Table.render t in
  if not (String.length s > 0) then fail "empty render";
  List.iter
    (fun needle ->
      if
        not
          (List.exists
             (fun line ->
               let rec contains i =
                 i + String.length needle <= String.length line
                 && (String.sub line i (String.length needle) = needle
                    || contains (i + 1))
               in
               contains 0)
             (String.split_on_char '\n' s))
      then Alcotest.failf "missing %S in render" needle)
    [ "demo"; "longer"; "bb" ]

let test_table_row_mismatch () =
  let t = Table.create ~title:"t" ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "bad row"
    (Invalid_argument "Table.add_row: row length mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

(* ---------------- id_gen & int32 ---------------- *)

let test_id_gen () =
  let g = Id_gen.create () in
  check Alcotest.int "first" 0 (Id_gen.fresh g);
  check Alcotest.int "second" 1 (Id_gen.fresh g);
  check Alcotest.int "peek" 2 (Id_gen.peek g);
  Id_gen.reset g;
  check Alcotest.int "reset" 0 (Id_gen.fresh g)

let test_wrap32_examples () =
  check Alcotest.int "id small" 42 (Int32_sem.wrap32 42);
  check Alcotest.int "wrap max" (-2147483648) (Int32_sem.wrap32 2147483648);
  check Alcotest.int "wrap neg" 2147483647 (Int32_sem.wrap32 (-2147483649));
  check Alcotest.int "idempotent" (Int32_sem.wrap32 123456789)
    (Int32_sem.wrap32 (Int32_sem.wrap32 123456789))

(* ---------------- qcheck properties ---------------- *)

let prop_wrap32_range =
  QCheck.Test.make ~count:500 ~name:"wrap32 stays in 32-bit range"
    QCheck.int (fun x ->
      let w = Int32_sem.wrap32 x in
      w >= -2147483648 && w <= 2147483647)

let prop_wrap32_idempotent =
  QCheck.Test.make ~count:500 ~name:"wrap32 idempotent" QCheck.int (fun x ->
      Int32_sem.wrap32 (Int32_sem.wrap32 x) = Int32_sem.wrap32 x)

let prop_wrap32_add_homomorphic =
  QCheck.Test.make ~count:500 ~name:"wrap32 (a+b) = wrap32 (wrap a + wrap b)"
    QCheck.(pair int int)
    (fun (a, b) ->
      Int32_sem.wrap32 (a + b)
      = Int32_sem.wrap32 (Int32_sem.wrap32 a + Int32_sem.wrap32 b))

let prop_percentile_bounds =
  QCheck.Test.make ~count:200 ~name:"percentile within min/max"
    QCheck.(pair (list_of_size Gen.(1 -- 20) (float_bound_inclusive 100.0))
              (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let v = Stats.percentile p xs in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng copy" `Quick test_rng_copy_independent;
    Alcotest.test_case "rng invalid args" `Quick test_rng_invalid;
    Alcotest.test_case "stats mean/stddev" `Quick test_stats_mean;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats percent" `Quick test_stats_percent;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table row mismatch" `Quick test_table_row_mismatch;
    Alcotest.test_case "id_gen" `Quick test_id_gen;
    Alcotest.test_case "wrap32 examples" `Quick test_wrap32_examples;
    QCheck_alcotest.to_alcotest prop_wrap32_range;
    QCheck_alcotest.to_alcotest prop_wrap32_idempotent;
    QCheck_alcotest.to_alcotest prop_wrap32_add_homomorphic;
    QCheck_alcotest.to_alcotest prop_percentile_bounds;
  ]
