(** End-to-end correctness: every workload must produce identical results
    (main checksum and all result globals) under every compiler
    configuration — power management and pattern parallelisation must be
    semantics-preserving.  Also asserts zero implicit wakeups: the gating
    pass must never gate a component an instruction then needs. *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Value = Lp_sim.Value
module Workload = Lp_workloads.Workload

let machine = Machine.generic ~n_cores:4 ()

let configs =
  [
    ("baseline", Compile.baseline);
    ("pg+dvfs", Compile.pg_dvfs);
    ("par-only", Compile.par_only ~n_cores:4);
    ("full", Compile.full ~n_cores:4);
  ]

let run_config (w : Workload.t) opts =
  let (compiled, outcome) = Compile.run ~opts ~machine w.Workload.source in
  (compiled, outcome)

(* float workloads may legitimately differ in low-order bits when a
   reduction is re-associated across cores *)
let float_tolerant w = w.Workload.name = "fdotprod"

let ret_value (o : Sim.outcome) =
  match o.Sim.ret with
  | Some v -> v
  | None -> Alcotest.fail "main returned no value"

let check_same_ret w name base_ret (o : Sim.outcome) =
  let r = ret_value o in
  match (base_ret, r) with
  | (Value.Vint a, Value.Vint b) when float_tolerant w ->
    (* int(acc) of a float reduction: allow +-1 ulp-ish slack *)
    if abs (a - b) > 1 then
      Alcotest.failf "%s/%s: checksum %d <> baseline %d" w.Workload.name name
        b a
  | (a, b) ->
    if not (Value.equal a b) then
      Alcotest.failf "%s/%s: checksum %s <> baseline %s" w.Workload.name name
        (Value.to_string b) (Value.to_string a)

let check_same_globals w name (base : Sim.outcome) (o : Sim.outcome) =
  List.iter
    (fun g ->
      match (Sim.shared_array base g, Sim.shared_array o g) with
      | (Some a, Some b) ->
        if Array.length a <> Array.length b then
          Alcotest.failf "%s/%s: %s length mismatch" w.Workload.name name g;
        Array.iteri
          (fun i va ->
            if not (Value.equal va b.(i)) then
              Alcotest.failf "%s/%s: %s[%d] = %s <> baseline %s"
                w.Workload.name name g i
                (Value.to_string b.(i))
                (Value.to_string va))
          a
      | _ -> Alcotest.failf "%s/%s: missing global %s" w.Workload.name name g)
    w.Workload.check_globals

let workload_case (w : Workload.t) () =
  let (_, base) = run_config w Compile.baseline in
  let base_ret = ret_value base in
  List.iter
    (fun (name, opts) ->
      if name <> "baseline" then begin
        let (compiled, o) = run_config w opts in
        check_same_ret w name base_ret o;
        check_same_globals w name base o;
        Alcotest.(check int)
          (Printf.sprintf "%s/%s: no implicit wakeups" w.Workload.name name)
          0 o.Sim.implicit_wakeups;
        (* power-managed configurations must not lose much performance
           unless they also parallelise *)
        ignore compiled
      end)
    configs

let suite =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case w.Workload.name `Slow (workload_case w))
    Lp_workloads.Suite.all
