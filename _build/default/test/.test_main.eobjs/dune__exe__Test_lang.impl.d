test/test_lang.ml: Alcotest List Lp_lang Lp_patterns Lp_transforms Lp_workloads String
