test/test_power.ml: Alcotest Gen List Lp_machine Lp_power QCheck QCheck_alcotest
