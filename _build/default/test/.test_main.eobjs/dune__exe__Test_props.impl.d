test/test_props.ml: Array List Lowpower Lp_ir Lp_machine Lp_patterns Lp_sim Lp_transforms Lp_util Printf QCheck QCheck_alcotest String
