test/test_analysis.ml: Alcotest List Lowpower Lp_analysis Lp_ir Lp_lang Lp_machine Lp_power Lp_sim Printf
