test/test_experiments.ml: Alcotest List Lowpower Lp_experiments Lp_machine Lp_power Lp_sim Lp_transforms Lp_util Lp_workloads
