test/test_transforms.ml: Alcotest List Lowpower Lp_analysis Lp_ir Lp_lang Lp_machine Lp_sim Lp_transforms String
