test/test_util.ml: Alcotest Fun Gen List Lp_util QCheck QCheck_alcotest String
