test/test_patterns.ml: Alcotest Array Fun Gen List Lp_lang Lp_patterns Lp_workloads Printf QCheck QCheck_alcotest String
