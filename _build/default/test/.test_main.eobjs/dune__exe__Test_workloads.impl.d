test/test_workloads.ml: Alcotest Array List Lowpower Lp_machine Lp_sim Lp_workloads Printf
