test/test_ir.ml: Alcotest List Lp_ir Lp_lang Lp_power Lp_workloads String
