test/test_sched.ml: Alcotest Array Lp_machine Lp_power Lp_sched QCheck QCheck_alcotest
