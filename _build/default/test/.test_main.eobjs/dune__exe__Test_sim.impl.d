test/test_sim.ml: Alcotest Array Fun List Lp_ir Lp_lang Lp_machine Lp_power Lp_sim Lp_transforms Printf String
