test/test_parallel.ml: Alcotest List Lowpower Lp_ir Lp_lang Lp_machine Lp_patterns Lp_power Lp_sim Lp_transforms Lp_workloads Printf
