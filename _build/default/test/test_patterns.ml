(** Pattern detection tests: canonical-loop recognition, safety analysis,
    annotation verification, trust escapes, stage splitting, effects
    analysis, and the stage-fusion partitioner. *)

module Ast = Lp_lang.Ast
module Pattern = Lp_patterns.Pattern
module Detect = Lp_patterns.Detect
module Effects = Lp_patterns.Effects
module Accesses = Lp_patterns.Accesses
module Ast_weight = Lp_patterns.Ast_weight
module W = Lp_workloads.Workload

let check = Alcotest.check
let fail = Alcotest.fail

let detect src =
  let ast = Lp_lang.Parser.parse_program src in
  Lp_lang.Typecheck.check_program ast;
  Detect.detect ast

let kinds (r : Pattern.report) =
  List.map (fun (i : Pattern.instance) -> Pattern.kind_name i.Pattern.kind)
    r.Pattern.instances

let expect_kinds src expected =
  check Alcotest.(list string) src expected (kinds (detect src))

let expect_rejected src reason_fragment =
  let r = detect src in
  check Alcotest.(list string) "no instances" [] (kinds r);
  let reasons =
    List.map (fun rej -> rej.Pattern.rej_reason) r.Pattern.rejections
  in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  if not (List.exists (fun rr -> contains rr reason_fragment) reasons) then
    Alcotest.failf "expected rejection mentioning %S, got: %s" reason_fragment
      (String.concat " | " reasons)

(* ---------------- inference ---------------- *)

let test_infer_doall () =
  expect_kinds
    "int a[16];\nint b[16];\nint main() { for (int i = 0; i < 16; i = i + 1) { b[i] = a[i] * 2; } return 0; }"
    [ "doall" ]

let test_infer_reduction () =
  expect_kinds
    "int a[16];\nint main() { int s = 0; for (int i = 0; i < 16; i = i + 1) { s = s + a[i]; } return s; }"
    [ "reduction(+)" ];
  expect_kinds
    "int a[16];\nint main() { int s = 0; for (int i = 0; i < 16; i = i + 1) { s = s ^ a[i]; } return s; }"
    [ "reduction(^)" ]

let test_infer_farm_on_irregular () =
  expect_kinds
    "int a[16];\nint out[16];\nint main() { for (int i = 0; i < 16; i = i + 1) { int x = a[i]; int n = 0; while (x > 1) { x = x / 2; n = n + 1; } out[i] = n; } return 0; }"
    [ "farm" ]

let test_infer_float_reduction () =
  expect_kinds
    "float a[8];\nint main() { float s = 0.0; for (int i = 0; i < 8; i = i + 1) { s = s + a[i]; } return int(s); }"
    [ "reduction(+f)" ]

(* ---------------- rejections ---------------- *)

let test_reject_loop_carried () =
  expect_rejected
    "int out[16];\nint main() { int p = 0; for (int i = 0; i < 16; i = i + 1) { p = p * 2 + i; out[i] = p; } return p; }"
    "loop-carried"

let test_reject_data_dependent_write () =
  expect_rejected
    "int idx[16];\nint out[16];\nint main() { for (int i = 0; i < 16; i = i + 1) { out[idx[i]] = i; } return 0; }"
    "non-iv index"

let test_reject_offset_write () =
  expect_rejected
    "int out[18];\nint main() { for (int i = 0; i < 16; i = i + 1) { out[i + 1] = out[i] + 1; } return 0; }"
    "non-iv index"

let test_reject_local_array () =
  expect_rejected
    "int main() { int buf[16]; int s = 0; for (int i = 0; i < 16; i = i + 1) { buf[i] = i; } for (int i = 0; i < 16; i = i + 1) { s = s + buf[i]; } return s; }"
    "not in shared memory"
  |> ignore

let test_reject_impure_call () =
  expect_rejected
    "int g;\nint out[8];\nint bump() { g = g + 1; return g; }\nint main() { for (int i = 0; i < 8; i = i + 1) { out[i] = bump(); } return 0; }"
    "side effects"

let test_reject_bad_annotation () =
  (* an annotation that fails verification is rejected, not trusted *)
  let r = detect
      "int out[16];\nint main() { int p = 1; #pragma lp pattern(doall)\nfor (int i = 0; i < 16; i = i + 1) { p = p + i; out[i] = p; } return p; }"
  in
  check Alcotest.(list string) "rejected" [] (kinds r);
  match r.Pattern.rejections with
  | rej :: _ ->
    check Alcotest.(option string) "requested" (Some "doall")
      rej.Pattern.rej_requested
  | [] -> fail "no rejection recorded"

let test_reject_unknown_pattern () =
  expect_rejected
    "int out[4];\nint main() { #pragma lp pattern(wavefront)\nfor (int i = 0; i < 4; i = i + 1) { out[i] = i; } return 0; }"
    "unknown pattern"

(* ---------------- trust ---------------- *)

let test_trust_allows_opaque_writes () =
  expect_kinds
    "int out[64];\nint main() { #pragma lp pattern(doall, trust)\nfor (int i = 0; i < 8; i = i + 1) { for (int j = 0; j < 8; j = j + 1) { out[i * 8 + j] = i + j; } } return 0; }"
    [ "doall" ]

let test_trust_does_not_bypass_scalar_check () =
  (* trust relaxes index discipline only; loop-carried scalars still reject *)
  expect_rejected
    "int out[16];\nint main() { int p = 0; #pragma lp pattern(doall, trust)\nfor (int i = 0; i < 16; i = i + 1) { p = p + 1; out[i] = p; } return p; }"
    "loop-carried"

(* ---------------- pipelines ---------------- *)

let pipeline_src =
  "int a[8];\nint b[8];\nint c[8];\nint main() { #pragma lp pattern(pipeline)\nfor (int i = 0; i < 8; i = i + 1) { a[i] = i * 2; #pragma lp stage\nb[i] = a[i] + 1; #pragma lp stage\nc[i] = b[i] * b[i]; } return c[7]; }"

let test_pipeline_detected () =
  let r = detect pipeline_src in
  match r.Pattern.instances with
  | [ { Pattern.kind = Pattern.Pipeline 3; stages; _ } ] ->
    check Alcotest.int "three stage bodies" 3 (List.length stages)
  | _ -> fail "pipeline(3) not detected"

let test_pipeline_backward_dep_rejected () =
  expect_rejected
    "int a[8];\nint b[8];\nint main() { #pragma lp pattern(pipeline)\nfor (int i = 0; i < 8; i = i + 1) { a[i] = b[i] + 1; #pragma lp stage\nb[i] = a[i] * 2; } return 0; }"
    "later stage"

let test_pipeline_lookahead_rejected () =
  (* stage 1 reading a[i+1] (not yet produced) must be rejected *)
  expect_rejected
    "int a[9];\nint b[8];\nint main() { #pragma lp pattern(pipeline)\nfor (int i = 0; i < 8; i = i + 1) { a[i] = i; #pragma lp stage\nb[i] = a[i + 1]; } return 0; }"
    "ahead of production"

let test_pipeline_lookbehind_ok () =
  expect_kinds
    "int a[8];\nint b[8];\nint main() { #pragma lp pattern(pipeline)\nfor (int i = 0; i < 8; i = i + 1) { a[i] = i; #pragma lp stage\nif (i > 0) { b[i] = a[i - 1]; } else { b[i] = 0; } } return 0; }"
    [ "pipeline(2)" ]

let test_pipeline_scalar_crossing_rejected () =
  expect_rejected
    "int a[8];\nint b[8];\nint main() { #pragma lp pattern(pipeline)\nfor (int i = 0; i < 8; i = i + 1) { int t = i * 3; a[i] = t; #pragma lp stage\nb[i] = t + 1; } return 0; }"
    "crosses stage boundary"

let test_prodcons_stage_count () =
  expect_rejected
    "int a[8];\nint b[8];\nint c[8];\nint main() { #pragma lp pattern(prodcons)\nfor (int i = 0; i < 8; i = i + 1) { a[i] = i; #pragma lp stage\nb[i] = a[i]; #pragma lp stage\nc[i] = b[i]; } return 0; }"
    "exactly 2 stages"

(* ---------------- effects analysis ---------------- *)

let test_effects () =
  let ast = Lp_lang.Parser.parse_program
      "int g;\nint h;\nint ro() { return g; }\nint wr() { h = 1; return 0; }\nint both() { return ro() + wr(); }\nint main() { return both(); }"
  in
  Lp_lang.Typecheck.check_program ast;
  let eff = Effects.analyse ast in
  let e_ro = Effects.func_effects eff "ro" in
  let e_both = Effects.func_effects eff "both" in
  if not (Effects.SS.mem "g" e_ro.Effects.reads) then fail "ro reads g";
  if Effects.SS.mem "h" e_ro.Effects.writes then fail "ro writes nothing";
  if not (Effects.SS.mem "h" e_both.Effects.writes) then fail "both writes h transitively";
  if not (Effects.call_replicable eff "ro") then fail "ro replicable";
  if Effects.call_replicable eff "wr" then fail "wr not replicable"

(* ---------------- index classification ---------------- *)

let test_classify_index () =
  let parse_expr s =
    let src = Printf.sprintf "int a[99];\nint main() { int i = 0; int n = 1; return a[%s]; }" s in
    let ast = Lp_lang.Parser.parse_program src in
    let f = List.find (fun (f : Ast.func) -> f.Ast.fname = "main") ast.Ast.funcs in
    match List.rev f.Ast.fbody with
    | { Ast.sdesc = Ast.Return (Some { edesc = Ast.Index (_, idx); _ }); _ } :: _ -> idx
    | _ -> fail "bad fixture"
  in
  let cls s = Accesses.classify_index ~iv:"i" (parse_expr s) in
  (match cls "i" with Accesses.Exact_iv -> () | _ -> fail "i");
  (match cls "i + 3" with Accesses.Iv_offset 3 -> () | _ -> fail "i+3");
  (match cls "i - 2" with Accesses.Iv_offset (-2) -> () | _ -> fail "i-2");
  (match cls "4 + i" with Accesses.Iv_offset 4 -> () | _ -> fail "4+i");
  (match cls "n * 2" with Accesses.Invariant -> () | _ -> fail "n*2");
  (match cls "i * 2" with Accesses.Opaque -> () | _ -> fail "i*2")

(* ---------------- stage fusion partitioner ---------------- *)

let test_partition_balanced () =
  let groups = Ast_weight.partition ~groups:2 [ 10; 10; 10; 10 ] in
  check Alcotest.int "two groups" 2 (List.length groups);
  check Alcotest.(list (list int)) "even split" [ [ 0; 1 ]; [ 2; 3 ] ] groups

let test_partition_minimises_bottleneck () =
  (* [9; 1; 1; 9] into 2 -> [9,1][1,9]: bottleneck 10 *)
  let groups = Ast_weight.partition ~groups:2 [ 9; 1; 1; 9 ] in
  let w = [| 9; 1; 1; 9 |] in
  let bottleneck =
    List.fold_left
      (fun acc g -> max acc (List.fold_left (fun s i -> s + w.(i)) 0 g))
      0 groups
  in
  check Alcotest.int "bottleneck" 10 bottleneck

let test_partition_covers_all_contiguously () =
  let groups = Ast_weight.partition ~groups:3 [ 5; 2; 8; 1; 4; 4; 2 ] in
  let flat = List.concat groups in
  check Alcotest.(list int) "covers all indices in order"
    [ 0; 1; 2; 3; 4; 5; 6 ] flat;
  if List.length groups > 3 then fail "too many groups"

let prop_partition_sound =
  QCheck.Test.make ~count:200 ~name:"partition covers indices contiguously"
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(1 -- 12) (int_range 1 50)))
    (fun (g, ws) ->
      let groups = Ast_weight.partition ~groups:g ws in
      List.concat groups = List.init (List.length ws) Fun.id
      && List.length groups <= max 1 (min g (List.length ws))
      && List.for_all (fun grp -> grp <> []) groups)

(* ---------------- whole-suite expectations ---------------- *)

let test_workload_expectations () =
  List.iter
    (fun (w : W.t) ->
      let r = detect w.W.source in
      let names = kinds r in
      match w.W.expected_pattern with
      | "none" ->
        if names <> [] then
          Alcotest.failf "%s: expected sequential, got %s" w.W.name
            (String.concat "," names)
      | expected ->
        if not (List.mem expected names) then
          Alcotest.failf "%s: expected %s among [%s]" w.W.name expected
            (String.concat "," names))
    Lp_workloads.Suite.all

let suite =
  [
    Alcotest.test_case "infer doall" `Quick test_infer_doall;
    Alcotest.test_case "infer reduction" `Quick test_infer_reduction;
    Alcotest.test_case "infer farm" `Quick test_infer_farm_on_irregular;
    Alcotest.test_case "infer float reduction" `Quick test_infer_float_reduction;
    Alcotest.test_case "reject loop-carried" `Quick test_reject_loop_carried;
    Alcotest.test_case "reject data-dependent write" `Quick test_reject_data_dependent_write;
    Alcotest.test_case "reject offset write" `Quick test_reject_offset_write;
    Alcotest.test_case "reject local array" `Quick test_reject_local_array;
    Alcotest.test_case "reject impure call" `Quick test_reject_impure_call;
    Alcotest.test_case "reject bad annotation" `Quick test_reject_bad_annotation;
    Alcotest.test_case "reject unknown pattern" `Quick test_reject_unknown_pattern;
    Alcotest.test_case "trust opaque writes" `Quick test_trust_allows_opaque_writes;
    Alcotest.test_case "trust keeps scalar check" `Quick test_trust_does_not_bypass_scalar_check;
    Alcotest.test_case "pipeline detected" `Quick test_pipeline_detected;
    Alcotest.test_case "pipeline backward dep" `Quick test_pipeline_backward_dep_rejected;
    Alcotest.test_case "pipeline lookahead" `Quick test_pipeline_lookahead_rejected;
    Alcotest.test_case "pipeline lookbehind ok" `Quick test_pipeline_lookbehind_ok;
    Alcotest.test_case "pipeline scalar crossing" `Quick test_pipeline_scalar_crossing_rejected;
    Alcotest.test_case "prodcons stage count" `Quick test_prodcons_stage_count;
    Alcotest.test_case "effects analysis" `Quick test_effects;
    Alcotest.test_case "index classification" `Quick test_classify_index;
    Alcotest.test_case "partition balanced" `Quick test_partition_balanced;
    Alcotest.test_case "partition bottleneck" `Quick test_partition_minimises_bottleneck;
    Alcotest.test_case "partition contiguous" `Quick test_partition_covers_all_contiguously;
    QCheck_alcotest.to_alcotest prop_partition_sound;
    Alcotest.test_case "workload expectations" `Quick test_workload_expectations;
  ]

let test_infer_minmax_reduction () =
  expect_kinds
    "int a[32];\nint main() { int m = -2147483647; for (int i = 0; i < 32; i = i + 1) { int x = a[i] * a[i]; if (x > m) { m = x; } } return m; }"
    [ "reduction(max)" ];
  expect_kinds
    "int a[32];\nint main() { int m = 2147483647; for (int i = 0; i < 32; i = i + 1) { int x = a[i] - 5; if (x < m) { m = x; } } return m; }"
    [ "reduction(min)" ]

let test_acc_read_elsewhere_rejected () =
  (* acc is also stored per-iteration: partials would not compose *)
  expect_rejected
    "int a[16];\nint trail[16];\nint main() { int s = 0; for (int i = 0; i < 16; i = i + 1) { s = s + a[i]; trail[i] = s; } return s; }"
    "loop-carried"

let suite =
  suite
  @ [
      Alcotest.test_case "infer max/min reduction" `Quick test_infer_minmax_reduction;
      Alcotest.test_case "acc read elsewhere rejected" `Quick
        test_acc_read_elsewhere_rejected;
    ]

let test_farm_auto_chunk () =
  (* inferred farm with a moderately light body gets an amortising chunk *)
  let r = detect (Lp_workloads.Suite.find_exn "susan").W.source in
  (match r.Pattern.instances with
  | [ { Pattern.kind = Pattern.Farm; chunk; _ } ] ->
    if chunk < 2 then Alcotest.failf "auto chunk too small (%d)" chunk;
    if chunk > 32 then Alcotest.failf "auto chunk too large (%d)" chunk
  | _ -> fail "susan should be a farm");
  (* an explicit chunk wins *)
  let r2 = detect (Lp_workloads.Suite.find_exn "fraciter").W.source in
  match r2.Pattern.instances with
  | [ { Pattern.kind = Pattern.Farm; chunk = 8; _ } ] -> ()
  | [ { Pattern.kind = Pattern.Farm; chunk; _ } ] ->
    Alcotest.failf "explicit chunk overridden (%d)" chunk
  | _ -> fail "fraciter should be a farm"

let suite =
  suite @ [ Alcotest.test_case "farm auto chunk" `Quick test_farm_auto_chunk ]
