(** Analysis tests: CFG, dataflow, liveness, dominators, loops,
    component-activity, static estimation. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Builder = Lp_ir.Builder
module Cfg = Lp_analysis.Cfg
module Dataflow = Lp_analysis.Dataflow
module Liveness = Lp_analysis.Liveness
module Dominators = Lp_analysis.Dominators
module Loops = Lp_analysis.Loops
module Compuse = Lp_analysis.Compuse
module Est = Lp_analysis.Est
module Component = Lp_power.Component
module CS = Component.Set
module IS = Dataflow.Int_set

let check = Alcotest.check
let fail = Alcotest.fail

let lower src =
  let ast = Lp_lang.Parser.parse_program src in
  Lp_lang.Typecheck.check_program ast;
  Lp_ir.Lower.lower_program ast

(** A diamond CFG:  entry -> (then | else) -> join. *)
let diamond () =
  let f = Prog.create_func ~name:"d" ~params:[ Ir.I ] ~ret:(Some Ir.I) in
  let b = Builder.create f in
  let (p, _) = List.hd f.Prog.params in
  let then_b = Builder.new_block b in
  let else_b = Builder.new_block b in
  let join_b = Builder.new_block b in
  let r = Prog.new_reg f in
  Builder.set_term b (Ir.Br (Ir.Reg p, then_b.Ir.bid, else_b.Ir.bid));
  Builder.switch_to b then_b;
  Builder.move b r (Ir.Imm (Ir.Cint 1));
  Builder.set_term b (Ir.Jmp join_b.Ir.bid);
  Builder.switch_to b else_b;
  Builder.move b r (Ir.Imm (Ir.Cint 2));
  Builder.set_term b (Ir.Jmp join_b.Ir.bid);
  Builder.switch_to b join_b;
  Builder.set_term b (Ir.Ret (Some (Ir.Reg r)));
  (f, then_b.Ir.bid, else_b.Ir.bid, join_b.Ir.bid, r)

(* ---------------- cfg ---------------- *)

let test_cfg_diamond () =
  let (f, t, e, j, _) = diamond () in
  let cfg = Cfg.build f in
  check Alcotest.(list int) "entry succs"
    (List.sort compare [ t; e ])
    (List.sort compare (Cfg.succs cfg f.Prog.entry));
  check Alcotest.(list int) "join preds"
    (List.sort compare [ t; e ])
    (List.sort compare (Cfg.preds cfg j));
  check Alcotest.int "rpo head" f.Prog.entry (List.hd cfg.Cfg.rpo);
  check Alcotest.int "all reachable" 4 (List.length cfg.Cfg.rpo)

let test_cfg_unreachable_pruned () =
  let f = Prog.create_func ~name:"u" ~params:[] ~ret:None in
  let dead = Prog.new_block f in
  dead.Ir.term <- Ir.Jmp f.Prog.entry;
  let removed = Cfg.prune_unreachable f in
  check Alcotest.int "one removed" 1 removed;
  check Alcotest.int "one left" 1 (List.length f.Prog.block_order)

(* ---------------- generic dataflow ---------------- *)

(* a toy forward "reachable constant-ness" problem over the diamond *)
let test_dataflow_forward_join () =
  let (f, t, _, j, _) = diamond () in
  let cfg = Cfg.build f in
  let module Flow = Dataflow.Make (Dataflow.Reg_set_lattice) in
  (* transfer: add the block id as a fake "fact" *)
  let transfer l inp = IS.add l inp in
  let r = Flow.run ~direction:Dataflow.Forward ~cfg ~init:IS.empty ~transfer in
  let at_join = Flow.input r j in
  if not (IS.mem f.Prog.entry at_join) then fail "entry fact lost";
  if not (IS.mem t at_join) then fail "then fact not joined"

(* ---------------- liveness ---------------- *)

let test_liveness_diamond () =
  let (f, t, e, _, r) = diamond () in
  let live = Liveness.compute f in
  (* r is live out of both definition blocks *)
  if not (IS.mem r (Liveness.live_out live t)) then fail "r dead after then";
  if not (IS.mem r (Liveness.live_out live e)) then fail "r dead after else";
  (* the parameter is live into the entry *)
  let (p, _) = List.hd f.Prog.params in
  if not (IS.mem p (Liveness.live_in live f.Prog.entry)) then fail "param not live-in";
  if Liveness.max_pressure live < 1 then fail "pressure"

let test_liveness_loop_carried () =
  let prog = lower
      "int main() { int s = 0; for (int i = 0; i < 8; i = i + 1) { s = s + i; } return s; }"
  in
  let f = Prog.func_exn prog "main" in
  let live = Liveness.compute f in
  let loops = Loops.find f in
  check Alcotest.int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  (* something must be live around the back edge (s and i) *)
  if IS.cardinal (Liveness.live_in live l.Loops.header) < 2 then
    fail "loop-carried registers not live at header"

(* ---------------- dominators ---------------- *)

let test_dominators_diamond () =
  let (f, t, e, j, _) = diamond () in
  let dom = Dominators.compute f in
  if not (Dominators.dominates dom f.Prog.entry j) then fail "entry dom join";
  if Dominators.dominates dom t j then fail "then must not dominate join";
  check Alcotest.(option int) "idom of join" (Some f.Prog.entry)
    (Dominators.idom dom j);
  check Alcotest.(option int) "idom of then" (Some f.Prog.entry)
    (Dominators.idom dom t);
  if not (Dominators.dominates dom e e) then fail "self-domination"

(* ---------------- loops ---------------- *)

let test_loops_simple () =
  let prog = lower
      "int g[64];\nint main() { for (int i = 0; i < 64; i = i + 1) { g[i] = i; } return 0; }"
  in
  let f = Prog.func_exn prog "main" in
  match Loops.find f with
  | [ l ] ->
    check Alcotest.int "depth" 1 l.Loops.depth;
    check Alcotest.int "trip" 64 (Loops.trip_estimate f l)
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let test_loops_nested () =
  let prog = lower
      "int g[64];\nint main() { for (int i = 0; i < 8; i = i + 1) { for (int j = 0; j < 4; j = j + 1) { g[i * 4 + j] = j; } } return 0; }"
  in
  let f = Prog.func_exn prog "main" in
  let loops = Loops.find f in
  check Alcotest.int "two loops" 2 (List.length loops);
  let depths = List.sort compare (List.map (fun l -> l.Loops.depth) loops) in
  check Alcotest.(list int) "nesting" [ 1; 2 ] depths;
  let trips = List.sort compare (List.map (Loops.trip_estimate f) loops) in
  check Alcotest.(list int) "trips" [ 4; 8 ] trips

let test_loops_unknown_trip () =
  let prog = lower
      "int main() { int n = 5; int s = 0; for (int i = 0; i < n * 3; i = i + 1) { s = s + 1; } return s; }"
  in
  let f = Prog.func_exn prog "main" in
  match Loops.find f with
  | [ l ] ->
    (* bound is not a literal: falls back to the default estimate *)
    check Alcotest.int "default trip" Loops.default_trip (Loops.trip_estimate f l)
  | _ -> fail "expected one loop"

let test_while_loop_detected () =
  let prog = lower
      "int main() { int x = 100; while (x > 1) { x = x / 2; } return x; }"
  in
  let f = Prog.func_exn prog "main" in
  check Alcotest.int "one loop" 1 (List.length (Loops.find f))

(* ---------------- component usage ---------------- *)

let test_compuse_direct () =
  let prog = lower
      "int main() { int a = 3 * 4; int b = a / 2; float f = 1.5 + 0.5; return b + int(f); }"
  in
  (* constant folding has not run: the operations are still present *)
  let cu = Compuse.compute prog in
  let used = Compuse.func_use cu "main" in
  List.iter
    (fun c ->
      if not (CS.mem c used) then
        Alcotest.failf "expected %s used" (Component.to_string c))
    [ Component.Multiplier; Component.Divider; Component.Fpu; Component.Alu ]

let test_compuse_transitive () =
  let prog = lower
      "int helper(int x) { return x * 2; }\nint main() { return helper(21); }"
  in
  let cu = Compuse.compute prog in
  let used = Compuse.func_use cu "main" in
  if not (CS.mem Component.Multiplier used) then fail "callee usage not propagated"

let test_compuse_never_used () =
  let prog = lower "int main() { return 1 + 2; }" in
  let cu = Compuse.compute prog in
  let never = Compuse.never_used cu ~entry:"main" in
  List.iter
    (fun c ->
      if not (CS.mem c never) then
        Alcotest.failf "%s should be never-used" (Component.to_string c))
    [ Component.Multiplier; Component.Divider; Component.Fpu;
      Component.Mac; Component.Shifter ];
  (* the ALU is not gateable so it never appears *)
  if CS.mem Component.Alu never then fail "alu is not gateable"

let test_compuse_loop_idle () =
  let prog = lower
      "int g[16];\nint main() { for (int i = 0; i < 16; i = i + 1) { g[i] = i + 1; } int p = 1; for (int i = 0; i < 4; i = i + 1) { p = p * 3; } return p; }"
  in
  let f = Prog.func_exn prog "main" in
  let cu = Compuse.compute prog in
  let loops = Loops.find f in
  check Alcotest.int "two loops" 2 (List.length loops);
  (* the store loop does not multiply; the product loop does *)
  let idle_sets = List.map (Compuse.loop_idle cu f) loops in
  let has_mul_idle =
    List.exists (fun s -> CS.mem Component.Multiplier s) idle_sets
  in
  let has_mul_busy =
    List.exists (fun s -> not (CS.mem Component.Multiplier s)) idle_sets
  in
  if not (has_mul_idle && has_mul_busy) then fail "loop idle sets wrong"

(* ---------------- static estimation ---------------- *)

let machine = Lp_machine.Machine.generic ~n_cores:4 ()

let test_est_scales_with_trip () =
  let prog_of n =
    lower
      (Printf.sprintf
         "int g[%d];\nint main() { for (int i = 0; i < %d; i = i + 1) { g[i] = i * 3; } return 0; }"
         n n)
  in
  let est n =
    let prog = prog_of n in
    (Est.func_estimate machine prog (Prog.func_exn prog "main")).Est.total_cycles
  in
  let e64 = est 64 and e512 = est 512 in
  if e512 /. e64 < 4.0 then
    Alcotest.failf "estimate should grow ~8x with trip (got %f / %f)" e512 e64

let test_est_mem_fraction () =
  (* stores to shared memory dominate: high mem fraction *)
  let prog = lower
      "int g[256];\nint main() { for (int i = 0; i < 256; i = i + 1) { g[i] = i; } return 0; }"
  in
  let e = Est.func_estimate machine prog (Prog.func_exn prog "main") in
  if e.Est.mem_fraction < 0.5 then
    Alcotest.failf "store loop should be memory-bound (mu=%f)" e.Est.mem_fraction;
  (* pure compute: low mem fraction *)
  let prog2 = lower
      "int main() { int s = 1; for (int i = 0; i < 256; i = i + 1) { s = s * 3 + i; } return s; }"
  in
  let e2 = Est.func_estimate machine prog2 (Prog.func_exn prog2 "main") in
  if e2.Est.mem_fraction > 0.2 then
    Alcotest.failf "compute loop should not be memory-bound (mu=%f)" e2.Est.mem_fraction

let test_est_within_factor_of_sim () =
  (* the static estimate should land within ~2x of simulated time for a
     straight-line kernel *)
  let src =
    "int g[512];\nint main() { for (int i = 0; i < 512; i = i + 1) { g[i] = i * 5 + 1; } return 0; }"
  in
  let (compiled, outcome) =
    Lowpower.Compile.run ~opts:Lowpower.Compile.baseline ~machine src
  in
  let f = Prog.func_exn compiled.Lowpower.Compile.prog "main" in
  let est = Est.func_estimate machine compiled.Lowpower.Compile.prog f in
  let est_ns = est.Est.total_cycles *. 2.5 in
  let sim_ns = outcome.Lp_sim.Sim.duration_ns in
  let ratio = est_ns /. sim_ns in
  if ratio < 0.4 || ratio > 2.5 then
    Alcotest.failf "estimate %.0fns vs simulated %.0fns (ratio %.2f)" est_ns
      sim_ns ratio

let suite =
  [
    Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "cfg prune unreachable" `Quick test_cfg_unreachable_pruned;
    Alcotest.test_case "dataflow forward join" `Quick test_dataflow_forward_join;
    Alcotest.test_case "liveness diamond" `Quick test_liveness_diamond;
    Alcotest.test_case "liveness loop carried" `Quick test_liveness_loop_carried;
    Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "loops simple + trip" `Quick test_loops_simple;
    Alcotest.test_case "loops nested" `Quick test_loops_nested;
    Alcotest.test_case "loops unknown trip" `Quick test_loops_unknown_trip;
    Alcotest.test_case "while loop detected" `Quick test_while_loop_detected;
    Alcotest.test_case "compuse direct" `Quick test_compuse_direct;
    Alcotest.test_case "compuse transitive" `Quick test_compuse_transitive;
    Alcotest.test_case "compuse never used" `Quick test_compuse_never_used;
    Alcotest.test_case "compuse loop idle" `Quick test_compuse_loop_idle;
    Alcotest.test_case "est scales with trip" `Quick test_est_scales_with_trip;
    Alcotest.test_case "est mem fraction" `Quick test_est_mem_fraction;
    Alcotest.test_case "est vs sim" `Quick test_est_within_factor_of_sim;
  ]
