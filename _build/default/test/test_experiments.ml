(** Shape tests for the reproduced evaluation: these assert the
    qualitative claims EXPERIMENTS.md makes (who wins, roughly by how
    much, where the crossovers are), so a regression that silently
    destroys a result shape fails CI rather than just changing numbers. *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module W = Lp_workloads.Workload
module T = Lp_transforms

let fail = Alcotest.fail
let machine4 = Machine.generic ~n_cores:4 ()

let energy (o : Sim.outcome) = Ledger.total o.Sim.energy

let run ?(machine = machine4) name opts =
  let w = Lp_workloads.Suite.find_exn name in
  snd (Compile.run ~opts ~machine w.W.source)

(* T3 headline: pattern-aware full compile cuts energy substantially on a
   pattern-rich workload; PG alone helps; DVFS alone does not hurt. *)
let test_t3_shape () =
  List.iter
    (fun name ->
      let base = energy (run name Compile.baseline) in
      let pg = energy (run name Compile.pg_only) in
      let full = energy (run name (Compile.full ~n_cores:4)) in
      if pg >= base *. 0.85 then
        Alcotest.failf "%s: pg saves too little (%.2f)" name (pg /. base);
      if full >= base *. 0.75 then
        Alcotest.failf "%s: full saves too little (%.2f)" name (full /. base))
    [ "fir"; "dotprod"; "matmul"; "stringsearch" ]

(* T4 shape: power management costs at most a few percent of runtime;
   parallelisation gives real speedups per pattern class. *)
let test_t4_shape () =
  let time name opts = (run name opts).Sim.duration_ns in
  List.iter
    (fun name ->
      let t0 = time name Compile.baseline in
      let t1 = time name Compile.pg_dvfs in
      if t1 > t0 *. 1.12 then
        Alcotest.failf "%s: pg+dvfs overhead too high (%.2f)" name (t1 /. t0))
    [ "fir"; "imgpipe"; "histogram" ];
  let speedup name =
    let t0 = time name Compile.baseline in
    t0 /. time name (Compile.full ~n_cores:4)
  in
  if speedup "dotprod" < 3.0 then fail "reduction should scale ~4x on 4 cores";
  if speedup "fir" < 2.2 then fail "doall should scale ~3x on 4 cores";
  if speedup "fraciter" < 2.5 then fail "farm should scale ~3x on 4 cores";
  if speedup "imgpipe" < 1.4 then fail "pipeline should gain from 3 stages";
  let adpcm = speedup "adpcm" in
  if adpcm < 0.95 || adpcm > 1.05 then fail "sequential workload must not change"

(* F1 shape: speedup grows with cores for a doall, and EDP improves
   monotonically; pipelines saturate at their stage count. *)
let test_f1_shape () =
  let w = Lp_workloads.Suite.find_exn "dotprod" in
  let machine = Machine.generic ~n_cores:8 () in
  let base = snd (Compile.run ~opts:Compile.baseline ~machine w.W.source) in
  let speedup n =
    let (_, o) = Compile.run ~opts:(Compile.full ~n_cores:n) ~machine w.W.source in
    base.Sim.duration_ns /. o.Sim.duration_ns
  in
  let s2 = speedup 2 and s4 = speedup 4 and s8 = speedup 8 in
  if not (s2 < s4 && s4 < s8) then
    Alcotest.failf "doall scaling not monotone: %.2f %.2f %.2f" s2 s4 s8;
  if s8 < 5.0 then Alcotest.failf "8-core speedup too low: %.2f" s8;
  (* pipeline saturation *)
  let wp = Lp_workloads.Suite.find_exn "imgpipe" in
  let t n =
    let (_, o) = Compile.run ~opts:(Compile.full ~n_cores:n) ~machine wp.W.source in
    o.Sim.duration_ns
  in
  let t4 = t 4 and t8 = t 8 in
  if t8 < t4 *. 0.9 then fail "3-stage pipeline should not gain past 3 cores"

(* F2 shape: EDP of full beats baseline by a large factor overall. *)
let test_f2_shape () =
  let ratios =
    List.map
      (fun name ->
        let b = run name Compile.baseline in
        let f = run name (Compile.full ~n_cores:4) in
        Sim.edp f /. Sim.edp b)
      [ "fir"; "dotprod"; "matmul"; "susan"; "crc32" ]
  in
  let geo = Lp_util.Stats.geomean ratios in
  if geo > 0.35 then
    Alcotest.failf "EDP geomean should be well under 0.35 (got %.3f)" geo

(* F3 shape: the full config's savings come mostly from leakage
   (dynamic energy is work-conserved). *)
let test_f3_shape () =
  let b = run "fir" Compile.baseline in
  let f = run "fir" (Compile.full ~n_cores:4) in
  let dyn o = Ledger.of_category o.Sim.energy Ledger.Dynamic in
  let leak o =
    Ledger.of_category o.Sim.energy Ledger.Leakage_active
    +. Ledger.of_category o.Sim.energy Ledger.Leakage_idle
  in
  if abs_float (dyn f -. dyn b) > dyn b *. 0.15 then
    fail "dynamic energy should be roughly conserved";
  if leak f > leak b *. 0.5 then fail "leakage should be cut by more than half"

(* F6 shape: Sink-N-Hoist halves the gating transitions on the phased
   workload without an energy penalty. *)
let test_f6_shape () =
  let w = Lp_workloads.Suite.find_exn "phases" in
  let no_merge =
    { Compile.pg_only with
      Compile.power =
        { Compile.pg_only.Compile.power with Compile.sink_n_hoist = false } }
  in
  let (_, nm) = Compile.run ~opts:no_merge ~machine:machine4 w.W.source in
  let (_, m) = Compile.run ~opts:Compile.pg_only ~machine:machine4 w.W.source in
  if m.Sim.gate_transitions * 2 > nm.Sim.gate_transitions then
    Alcotest.failf "merge should at least halve transitions (%d -> %d)"
      nm.Sim.gate_transitions m.Sim.gate_transitions;
  if energy m > energy nm *. 1.01 then fail "merge must not cost energy"

(* tables render and have one row per workload *)
let test_tables_render () =
  let t1 = Lp_experiments.Exp_tables.t1 () in
  let rows = Lp_util.Table.rows t1 in
  Alcotest.(check int) "t1 rows" (List.length Lp_workloads.Suite.all)
    (List.length rows);
  let t2 = Lp_experiments.Exp_tables.t2 () in
  Alcotest.(check int) "t2 rows" (List.length Lp_workloads.Suite.all)
    (List.length (Lp_util.Table.rows t2));
  (* render must not raise *)
  ignore (Lp_util.Table.render t1);
  ignore (Lp_util.Table.render t2)

let test_registry_ids_unique () =
  let ids = List.map (fun e -> e.Lp_experiments.Experiments.id)
      Lp_experiments.Experiments.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let suite =
  [
    Alcotest.test_case "T3 energy shape" `Slow test_t3_shape;
    Alcotest.test_case "T4 performance shape" `Slow test_t4_shape;
    Alcotest.test_case "F1 scaling shape" `Slow test_f1_shape;
    Alcotest.test_case "F2 EDP shape" `Slow test_f2_shape;
    Alcotest.test_case "F3 breakdown shape" `Slow test_f3_shape;
    Alcotest.test_case "F6 sink-n-hoist shape" `Slow test_f6_shape;
    Alcotest.test_case "tables render" `Slow test_tables_render;
    Alcotest.test_case "registry ids unique" `Quick test_registry_ids_unique;
  ]
