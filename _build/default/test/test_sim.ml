(** Simulator semantics tests: arithmetic, memory spaces, channels,
    barriers, fetch-and-add, power state, failure modes, timing. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Builder = Lp_ir.Builder
module Sim = Lp_sim.Sim
module Value = Lp_sim.Value
module Machine = Lp_machine.Machine
module Component = Lp_power.Component
module CS = Component.Set
module Ledger = Lp_power.Energy_ledger

let check = Alcotest.check
let fail = Alcotest.fail
let machine1 = Machine.generic ~n_cores:1 ()
let machine4 = Machine.generic ~n_cores:4 ()

let run_src ?(machine = machine1) src =
  let ast = Lp_lang.Parser.parse_program src in
  Lp_lang.Typecheck.check_program ast;
  let prog = Lp_ir.Lower.lower_program ast in
  Sim.run ~machine prog

let ret_int (o : Sim.outcome) =
  match o.Sim.ret with
  | Some (Value.Vint n) -> n
  | _ -> fail "expected int return"

(* ---------------- value semantics ---------------- *)

let test_arith_c_semantics () =
  check Alcotest.int "div trunc" (-3) (ret_int (run_src "int main() { return -7 / 2; }"));
  check Alcotest.int "mod sign" (-1) (ret_int (run_src "int main() { return -7 % 2; }"));
  check Alcotest.int "shift" 40 (ret_int (run_src "int main() { return 5 << 3; }"));
  check Alcotest.int "asr" (-2) (ret_int (run_src "int main() { return -8 >> 2; }"));
  check Alcotest.int "xor" 6 (ret_int (run_src "int main() { return 5 ^ 3; }"));
  check Alcotest.int "cmp" 1 (ret_int (run_src "int main() { return 3 < 4; }"))

let test_wrap32_overflow () =
  check Alcotest.int "wraps"
    (-2147483648)
    (ret_int (run_src "int main() { return 2147483647 + 1; }"))

let test_short_circuit_semantics () =
  (* the && guard must prevent the division by zero *)
  check Alcotest.int "guarded" 0
    (ret_int (run_src "int main() { int d = 0; if (d != 0 && 10 / d > 1) { return 1; } return 0; }"))

let test_float_ops () =
  check Alcotest.int "float chain" 7
    (ret_int (run_src "int main() { float x = 2.5; float y = x * 3.0; return int(y - 0.5); }"))

let test_recursion () =
  check Alcotest.int "fact 6" 720
    (ret_int (run_src "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }\nint main() { return fact(6); }"))

let test_globals_init_and_persist () =
  let o = run_src "int g[3] = {10, 20};\nint s = 5;\nint main() { g[2] = g[0] + g[1] + s; return g[2]; }" in
  check Alcotest.int "ret" 35 (ret_int o);
  (match Sim.shared_cell o "g" 2 with
  | Some (Value.Vint 35) -> ()
  | _ -> fail "final memory");
  match Sim.shared_cell o "g" 1 with
  | Some (Value.Vint 20) -> ()
  | _ -> fail "initialiser"

(* ---------------- failure modes ---------------- *)

let test_div_by_zero_traps () =
  try ignore (run_src "int main() { int z = 0; return 5 / z; }"); fail "no trap"
  with Value.Runtime_error _ -> ()

let test_oob_traps () =
  try ignore (run_src "int g[4];\nint main() { return g[9]; }"); fail "no trap"
  with Value.Runtime_error _ -> ()

let test_step_limit () =
  let ast = Lp_lang.Parser.parse_program "int main() { while (1) { } return 0; }" in
  Lp_lang.Typecheck.check_program ast;
  let prog = Lp_ir.Lower.lower_program ast in
  try
    ignore
      (Sim.run ~opts:{ Sim.default_options with Sim.max_steps = 10_000 }
         ~machine:machine1 prog);
    fail "no step limit"
  with Sim.Step_limit_exceeded -> ()

(* ---------------- hand-built parallel programs ---------------- *)

(** Two cores: core0 sends 1..n, core1 sums (with [consumer_work] dummy
    ALU ops per item) and writes the total to a shared cell; core0 reads
    it back after a barrier. *)
let build_pingpong ?(consumer_work = 0) n =
  let prog =
    Prog.create
      ~globals:[ { Prog.gsym = "total"; gty = Ir.I; gsize = 1; ginit = None } ]
  in
  let total = { Ir.sym_name = "total"; sym_space = Ir.Shared } in
  (* producer / master *)
  let m = Prog.create_func ~name:"m" ~params:[] ~ret:(Some Ir.I) in
  let b = Builder.create m in
  List.iter (fun k -> ignore (Builder.emit b (Ir.Send (0, Ir.Imm (Ir.Cint k)))))
    (List.init n (fun i -> i + 1));
  ignore (Builder.emit b (Ir.Barrier 0));
  let r = Builder.load b total (Ir.Imm (Ir.Cint 0)) in
  Builder.set_term b (Ir.Ret (Some (Ir.Reg r)));
  Prog.add_func prog m;
  (* consumer *)
  let w = Prog.create_func ~name:"w" ~params:[] ~ret:(Some Ir.I) in
  let bw = Builder.create w in
  let acc = Prog.new_reg w in
  Builder.move bw acc (Ir.Imm (Ir.Cint 0));
  List.iter
    (fun _ ->
      let d = Prog.new_reg w in
      ignore (Builder.emit bw (Ir.Recv (d, 0, Ir.I)));
      for _ = 1 to consumer_work do
        ignore (Builder.binop bw Ir.Add (Ir.Reg d) (Ir.Imm (Ir.Cint 1)))
      done;
      let s = Builder.binop bw Ir.Add (Ir.Reg acc) (Ir.Reg d) in
      Builder.move bw acc (Ir.Reg s))
    (List.init n Fun.id);
  Builder.store bw total (Ir.Imm (Ir.Cint 0)) (Ir.Reg acc);
  ignore (Builder.emit bw (Ir.Barrier 0));
  Builder.set_term bw (Ir.Ret (Some (Ir.Imm (Ir.Cint 0))));
  Prog.add_func prog w;
  prog.Prog.layout <-
    Prog.Parallel
      { entries = [ "m"; "w" ]; n_channels = 1; n_barriers = 1; chan_capacity = 2 };
  prog

let test_channels_and_barrier () =
  let n = 20 in
  let prog = build_pingpong n in
  Lp_ir.Verify.verify_prog prog;
  let o = Sim.run ~machine:machine4 prog in
  check Alcotest.int "sum over channel" (n * (n + 1) / 2) (ret_int o);
  check Alcotest.int "messages" n o.Sim.channel_msgs

let test_channel_backpressure () =
  (* capacity 2, fast producer, slow consumer: the producer must hit the
     full queue and block *)
  let prog = build_pingpong ~consumer_work:100 20 in
  let o = Sim.run ~machine:machine4 prog in
  if o.Sim.send_blocks.(0) = 0 then fail "producer never blocked"

let test_deadlock_detection () =
  let prog = Prog.create ~globals:[] in
  let m = Prog.create_func ~name:"m" ~params:[] ~ret:(Some Ir.I) in
  let b = Builder.create m in
  let d = Prog.new_reg m in
  ignore (Builder.emit b (Ir.Recv (d, 0, Ir.I)));
  Builder.set_term b (Ir.Ret (Some (Ir.Reg d)));
  Prog.add_func prog m;
  let w = Prog.create_func ~name:"w" ~params:[] ~ret:(Some Ir.I) in
  let bw = Builder.create w in
  let dw = Prog.new_reg w in
  ignore (Builder.emit bw (Ir.Recv (dw, 1, Ir.I)));
  Builder.set_term bw (Ir.Ret (Some (Ir.Reg dw)));
  Prog.add_func prog w;
  prog.Prog.layout <-
    Prog.Parallel
      { entries = [ "m"; "w" ]; n_channels = 2; n_barriers = 0; chan_capacity = 1 };
  try
    ignore (Sim.run ~machine:machine4 prog);
    fail "deadlock not detected"
  with Sim.Deadlock _ -> ()

let test_channel_type_mismatch () =
  let prog = Prog.create ~globals:[] in
  let m = Prog.create_func ~name:"m" ~params:[] ~ret:(Some Ir.I) in
  let b = Builder.create m in
  ignore (Builder.emit b (Ir.Send (0, Ir.Imm (Ir.Cfloat 1.5))));
  Builder.set_term b (Ir.Ret (Some (Ir.Imm (Ir.Cint 0))));
  Prog.add_func prog m;
  let w = Prog.create_func ~name:"w" ~params:[] ~ret:(Some Ir.I) in
  let bw = Builder.create w in
  let dw = Prog.new_reg w in
  ignore (Builder.emit bw (Ir.Recv (dw, 0, Ir.I)));
  Builder.set_term bw (Ir.Ret (Some (Ir.Imm (Ir.Cint 0))));
  Prog.add_func prog w;
  prog.Prog.layout <-
    Prog.Parallel
      { entries = [ "m"; "w" ]; n_channels = 1; n_barriers = 0; chan_capacity = 1 };
  try
    ignore (Sim.run ~machine:machine4 prog);
    fail "type mismatch not detected"
  with Value.Runtime_error _ -> ()

let test_faa_atomicity () =
  (* three cores each fetch-add 100 times; the counter ends exactly at 300
     and every core saw distinct values (modelled by exact final count) *)
  let prog =
    Prog.create
      ~globals:[ { Prog.gsym = "ctr"; gty = Ir.I; gsize = 1; ginit = None } ]
  in
  let ctr = { Ir.sym_name = "ctr"; sym_space = Ir.Shared } in
  let mk_worker name =
    let f = Prog.create_func ~name ~params:[] ~ret:(Some Ir.I) in
    let b = Builder.create f in
    List.iter
      (fun _ ->
        let d = Prog.new_reg f in
        ignore (Builder.emit b (Ir.Faa (d, ctr, Ir.Imm (Ir.Cint 1)))))
      (List.init 100 Fun.id);
    ignore (Builder.emit b (Ir.Barrier 0));
    let r = Builder.load b ctr (Ir.Imm (Ir.Cint 0)) in
    Builder.set_term b (Ir.Ret (Some (Ir.Reg r)));
    Prog.add_func prog f;
    name
  in
  let entries = List.map mk_worker [ "c0"; "c1"; "c2" ] in
  prog.Prog.layout <-
    Prog.Parallel { entries; n_channels = 0; n_barriers = 1; chan_capacity = 0 };
  let o = Sim.run ~machine:machine4 prog in
  check Alcotest.int "counter" 300 (ret_int o)

(* ---------------- power state ---------------- *)

let build_single instrs ~ret_op =
  let prog = Prog.create ~globals:[] in
  let f = Prog.create_func ~name:"main" ~params:[] ~ret:(Some Ir.I) in
  let b = Builder.create f in
  List.iter (fun mk -> ignore (Builder.emit b (mk f))) instrs;
  Builder.set_term b (Ir.Ret (Some ret_op));
  Prog.add_func prog f;
  prog

let test_implicit_wakeup_counted () =
  (* gate the multiplier, then multiply: the simulator must wake it and
     count the violation *)
  let prog =
    build_single
      [
        (fun _ -> Ir.Pg_off (CS.singleton Component.Multiplier));
        (fun f -> Ir.Binop (Ir.Mul, Prog.new_reg f, Ir.Imm (Ir.Cint 6), Ir.Imm (Ir.Cint 7)));
      ]
      ~ret_op:(Ir.Imm (Ir.Cint 0))
  in
  let o = Sim.run ~machine:machine1 prog in
  check Alcotest.int "one implicit wakeup" 1 o.Sim.implicit_wakeups

let test_gating_saves_leakage () =
  (* identical long busy loops; one gates the idle wide units first *)
  let loop_src gate =
    Printf.sprintf
      "int main() { int s = 0; for (int i = 0; i < 5000; i = i + 1) { s = s + i; } return s %s; }"
      (if gate then "" else "")
  in
  ignore loop_src;
  let mk gate =
    let ast = Lp_lang.Parser.parse_program
        "int main() { int s = 0; for (int i = 0; i < 5000; i = i + 1) { s = s + i; } return s; }" in
    Lp_lang.Typecheck.check_program ast;
    let prog = Lp_ir.Lower.lower_program ast in
    if gate then begin
      let f = Prog.func_exn prog "main" in
      let entry = Prog.block f f.Prog.entry in
      entry.Ir.instrs <-
        Prog.new_instr f (Ir.Pg_off CS.all_gateable) :: entry.Ir.instrs
    end;
    Sim.run ~machine:machine1 prog
  in
  let plain = mk false and gated = mk true in
  check Alcotest.int "same result" (ret_int plain) (ret_int gated);
  let e_plain = Ledger.total plain.Sim.energy in
  let e_gated = Ledger.total gated.Sim.energy in
  if e_gated >= e_plain then fail "gating saved nothing";
  if Ledger.of_category gated.Sim.energy Ledger.Gating_overhead <= 0.0 then
    fail "no gating overhead charged"

let test_dvfs_slows_and_saves_dynamic_power () =
  let mk level_opt =
    let ast = Lp_lang.Parser.parse_program
        "int main() { int s = 1; for (int i = 0; i < 3000; i = i + 1) { s = s + i * 3; } return s; }" in
    Lp_lang.Typecheck.check_program ast;
    let prog = Lp_ir.Lower.lower_program ast in
    (match level_opt with
    | Some lvl ->
      let f = Prog.func_exn prog "main" in
      let entry = Prog.block f f.Prog.entry in
      entry.Ir.instrs <- Prog.new_instr f (Ir.Dvfs lvl) :: entry.Ir.instrs
    | None -> ());
    Sim.run ~machine:machine1 prog
  in
  let fast = mk None and slow = mk (Some 0) in
  check Alcotest.int "same result" (ret_int fast) (ret_int slow);
  if slow.Sim.duration_ns <= fast.Sim.duration_ns then fail "dvfs did not slow";
  let dyn o = Ledger.of_category o.Sim.energy Ledger.Dynamic in
  if dyn slow >= dyn fast then fail "dvfs did not reduce dynamic energy";
  check Alcotest.int "transition counted" 1 slow.Sim.dvfs_transitions

let test_rom_faster_than_shared () =
  let mk space =
    let ast = Lp_lang.Parser.parse_program
        "int t[256] = {1,2,3};\nint main() { int s = 0; for (int i = 0; i < 256; i = i + 1) { s = s + t[i]; } return s; }" in
    Lp_lang.Typecheck.check_program ast;
    let prog = Lp_ir.Lower.lower_program ast in
    if space = `Rom then ignore (Lp_transforms.Const_promote.run prog);
    Sim.run ~machine:machine1 prog
  in
  let shared = mk `Shared and rom = mk `Rom in
  check Alcotest.int "same result" (ret_int shared) (ret_int rom);
  if rom.Sim.duration_ns >= shared.Sim.duration_ns then
    fail "ROM access not faster than shared memory"

let test_bus_contention () =
  (* two cores hammering shared memory finish later than one core doing
     half the work alone would suggest: the bus serialises *)
  let mk_store_worker prog name =
    let f = Prog.create_func ~name ~params:[] ~ret:(Some Ir.I) in
    let b = Builder.create f in
    let body = Prog.new_block f in
    let exit_b = Prog.new_block f in
    let i = Prog.new_reg f in
    Builder.move b i (Ir.Imm (Ir.Cint 0));
    Builder.set_term b (Ir.Jmp body.Ir.bid);
    Builder.switch_to b body;
    Builder.store b { Ir.sym_name = "buf"; sym_space = Ir.Shared } (Ir.Reg i)
      (Ir.Reg i);
    Builder.store b { Ir.sym_name = "buf"; sym_space = Ir.Shared } (Ir.Reg i)
      (Ir.Reg i);
    let i2 = Builder.binop b Ir.Add (Ir.Reg i) (Ir.Imm (Ir.Cint 1)) in
    Builder.move b i (Ir.Reg i2);
    let c = Builder.binop b Ir.Lt (Ir.Reg i) (Ir.Imm (Ir.Cint 400)) in
    Builder.set_term b (Ir.Br (Ir.Reg c, body.Ir.bid, exit_b.Ir.bid));
    Builder.switch_to b exit_b;
    Builder.set_term b (Ir.Ret (Some (Ir.Imm (Ir.Cint 0))));
    Prog.add_func prog f;
    name
  in
  let mk n_workers =
    let prog =
      Prog.create
        ~globals:[ { Prog.gsym = "buf"; gty = Ir.I; gsize = 512; ginit = None } ]
    in
    let entries =
      List.init n_workers (fun k -> mk_store_worker prog (Printf.sprintf "c%d" k))
    in
    prog.Prog.layout <-
      Prog.Parallel { entries; n_channels = 0; n_barriers = 0; chan_capacity = 0 };
    Sim.run ~machine:machine4 prog
  in
  let one = mk 1 and four = mk 4 in
  (* same per-core work; four cores demand more bus bandwidth than exists,
     so the run must take measurably longer than a single core's *)
  if four.Sim.duration_ns <= one.Sim.duration_ns *. 1.15 then
    fail "no bus contention visible"

let test_unused_core_leakage_modeled () =
  let src = "int main() { int s = 0; for (int i = 0; i < 2000; i = i + 1) { s = s + i; } return s; }" in
  let parse () =
    let ast = Lp_lang.Parser.parse_program src in
    Lp_lang.Typecheck.check_program ast;
    Lp_ir.Lower.lower_program ast
  in
  let plain = Sim.run ~machine:machine4 (parse ()) in
  let gated =
    Sim.run
      ~opts:{ Sim.default_options with Sim.gate_unused_cores = true }
      ~machine:machine4 (parse ())
  in
  let idle o = Ledger.of_category o.Sim.energy Ledger.Leakage_idle in
  if idle plain <= 0.0 then fail "unused cores leak nothing";
  if idle gated >= idle plain then fail "gating unused cores had no effect"

(* ---------------- event trace ---------------- *)

let test_trace_records_events () =
  let prog =
    build_single
      [
        (fun _ -> Ir.Pg_off (CS.singleton Component.Fpu));
        (fun f -> Ir.Binop (Ir.Add, Prog.new_reg f, Ir.Imm (Ir.Cint 1), Ir.Imm (Ir.Cint 2)));
        (fun _ -> Ir.Pg_on (CS.singleton Component.Fpu));
        (fun _ -> Ir.Dvfs 0);
      ]
      ~ret_op:(Ir.Imm (Ir.Cint 0))
  in
  let o =
    Sim.run ~opts:{ Sim.default_options with Sim.trace_limit = 16 }
      ~machine:machine1 prog
  in
  let whats = List.map (fun e -> e.Sim.ev_what) o.Sim.events in
  let has frag =
    List.exists
      (fun w ->
        let n = String.length frag and h = String.length w in
        let rec go i = i + n <= h && (String.sub w i n = frag || go (i + 1)) in
        go 0)
      whats
  in
  if not (has "pg_off") then fail "no pg_off event";
  if not (has "pg_on") then fail "no pg_on event";
  if not (has "dvfs") then fail "no dvfs event";
  if not (has "halt") then fail "no halt event";
  (* timestamps are non-decreasing per core *)
  ignore
    (List.fold_left
       (fun prev e ->
         if e.Sim.ev_ns +. 1e-9 < prev then fail "trace out of order";
         e.Sim.ev_ns)
       0.0 o.Sim.events)

let test_trace_off_by_default () =
  let prog =
    build_single
      [ (fun _ -> Ir.Pg_off (CS.singleton Component.Fpu)) ]
      ~ret_op:(Ir.Imm (Ir.Cint 0))
  in
  let o = Sim.run ~machine:machine1 prog in
  check Alcotest.int "no events" 0 (List.length o.Sim.events)

let test_trace_limit_respected () =
  let prog =
    build_single
      (List.concat_map
         (fun _ ->
           [ (fun _ -> Ir.Pg_off (CS.singleton Component.Fpu));
             (fun _ -> Ir.Pg_on (CS.singleton Component.Fpu)) ])
         (List.init 20 Fun.id))
      ~ret_op:(Ir.Imm (Ir.Cint 0))
  in
  let o =
    Sim.run ~opts:{ Sim.default_options with Sim.trace_limit = 5 }
      ~machine:machine1 prog
  in
  check Alcotest.int "bounded" 5 (List.length o.Sim.events)

let suite =
  [
    Alcotest.test_case "C arithmetic semantics" `Quick test_arith_c_semantics;
    Alcotest.test_case "32-bit wrap" `Quick test_wrap32_overflow;
    Alcotest.test_case "short-circuit" `Quick test_short_circuit_semantics;
    Alcotest.test_case "float ops" `Quick test_float_ops;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "globals init/persist" `Quick test_globals_init_and_persist;
    Alcotest.test_case "div-by-zero traps" `Quick test_div_by_zero_traps;
    Alcotest.test_case "out-of-bounds traps" `Quick test_oob_traps;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "channels + barrier" `Quick test_channels_and_barrier;
    Alcotest.test_case "channel backpressure" `Quick test_channel_backpressure;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "channel type mismatch" `Quick test_channel_type_mismatch;
    Alcotest.test_case "faa atomicity" `Quick test_faa_atomicity;
    Alcotest.test_case "implicit wakeup counted" `Quick test_implicit_wakeup_counted;
    Alcotest.test_case "gating saves leakage" `Quick test_gating_saves_leakage;
    Alcotest.test_case "dvfs slows + saves" `Quick test_dvfs_slows_and_saves_dynamic_power;
    Alcotest.test_case "rom faster than shared" `Quick test_rom_faster_than_shared;
    Alcotest.test_case "bus contention" `Quick test_bus_contention;
    Alcotest.test_case "unused core leakage" `Quick test_unused_core_leakage_modeled;
    Alcotest.test_case "trace records events" `Quick test_trace_records_events;
    Alcotest.test_case "trace off by default" `Quick test_trace_off_by_default;
    Alcotest.test_case "trace limit" `Quick test_trace_limit_respected;
  ]
