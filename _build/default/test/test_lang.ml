(** Front-end tests: lexer, parser, type checker. *)

module Lexer = Lp_lang.Lexer
module Parser = Lp_lang.Parser
module Ast = Lp_lang.Ast
module Typecheck = Lp_lang.Typecheck

let check = Alcotest.check
let fail = Alcotest.fail

let tokens src = List.map (fun (l : Lexer.located) -> l.Lexer.tok) (Lexer.tokenize src)

(* ---------------- lexer ---------------- *)

let test_lex_basic () =
  match tokens "int x = 42;" with
  | [ Lexer.KW_INT; Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.INT_LIT 42;
      Lexer.SEMI; Lexer.EOF ] -> ()
  | ts -> Alcotest.failf "unexpected tokens: %s"
            (String.concat " " (List.map Lexer.token_to_string ts))

let test_lex_operators () =
  match tokens "<< >> <= >= == != && || & | ^ ~" with
  | [ Lexer.SHL; Lexer.SHR; Lexer.LE; Lexer.GE; Lexer.EQEQ; Lexer.NE;
      Lexer.ANDAND; Lexer.OROR; Lexer.AMP; Lexer.PIPE; Lexer.CARET;
      Lexer.TILDE; Lexer.EOF ] -> ()
  | _ -> fail "operator lexing"

let test_lex_comments () =
  match tokens "1 // line comment\n 2 /* block \n comment */ 3" with
  | [ Lexer.INT_LIT 1; Lexer.INT_LIT 2; Lexer.INT_LIT 3; Lexer.EOF ] -> ()
  | _ -> fail "comments not skipped"

let test_lex_float () =
  match tokens "2.5 7." with
  | [ Lexer.FLOAT_LIT a; Lexer.FLOAT_LIT b; Lexer.EOF ] ->
    check (Alcotest.float 1e-9) "2.5" 2.5 a;
    check (Alcotest.float 1e-9) "7.0" 7.0 b
  | _ -> fail "float lexing"

let test_lex_pragma () =
  match tokens "#pragma lp pattern(doall)\nint x;" with
  | Lexer.PRAGMA "pattern(doall)" :: Lexer.KW_INT :: _ -> ()
  | _ -> fail "pragma lexing"

let test_lex_errors () =
  (try ignore (Lexer.tokenize "int $ x;"); fail "expected lex error"
   with Lexer.Lex_error _ -> ());
  (try ignore (Lexer.tokenize "/* unterminated"); fail "expected lex error"
   with Lexer.Lex_error _ -> ());
  try ignore (Lexer.tokenize "#pragma omp parallel\n"); fail "expected lex error"
  with Lexer.Lex_error _ -> ()

let test_lex_line_numbers () =
  let toks = Lexer.tokenize "int a;\nint b;" in
  let b_line =
    List.find_map
      (fun (l : Lexer.located) ->
        match l.Lexer.tok with Lexer.IDENT "b" -> Some l.Lexer.line | _ -> None)
      toks
  in
  check Alcotest.(option int) "line of b" (Some 2) b_line

(* ---------------- parser ---------------- *)

let parse = Parser.parse_program

let main_body src =
  let p = parse src in
  (List.find (fun (f : Ast.func) -> f.Ast.fname = "main") p.Ast.funcs).Ast.fbody

let test_parse_precedence () =
  (* 1 + 2 * 3 must parse as 1 + (2 * 3) *)
  match main_body "int main() { return 1 + 2 * 3; }" with
  | [ { Ast.sdesc =
          Ast.Return
            (Some { edesc = Ast.Binop (Ast.Add, { edesc = Ast.Int_lit 1; _ },
                                       { edesc = Ast.Binop (Ast.Mul, _, _); _ }); _ });
        _ } ] -> ()
  | _ -> fail "precedence of + vs *"

let test_parse_shift_precedence () =
  (* a << b + c  ==  a << (b + c), as in C *)
  match main_body "int main() { int a = 1; int b = 2; int c = 3; return a << b + c; }" with
  | [ _; _; _;
      { Ast.sdesc =
          Ast.Return
            (Some { edesc = Ast.Binop (Ast.Shl, { edesc = Ast.Var "a"; _ },
                                       { edesc = Ast.Binop (Ast.Add, _, _); _ }); _ });
        _ } ] -> ()
  | _ -> fail "precedence of << vs +"

let test_parse_unary () =
  match main_body "int main() { return -1 + !0; }" with
  | [ { Ast.sdesc =
          Ast.Return
            (Some { edesc = Ast.Binop (Ast.Add, { edesc = Ast.Unop (Ast.Neg, _); _ },
                                       { edesc = Ast.Unop (Ast.Not, _); _ }); _ });
        _ } ] -> ()
  | _ -> fail "unary parsing"

let test_parse_for () =
  match main_body "int main() { for (int i = 0; i < 4; i = i + 1) { } return 0; }" with
  | [ { Ast.sdesc = Ast.For ({ Ast.sdesc = Ast.Decl (Ast.Tint, "i", Some _); _ },
                             { edesc = Ast.Binop (Ast.Lt, _, _); _ },
                             { Ast.sdesc = Ast.Assign ("i", _); _ }, []); _ };
      _ ] -> ()
  | _ -> fail "for parsing"

let test_parse_pragma_attach () =
  let body =
    main_body
      "int main() { #pragma lp pattern(farm, chunk=4)\nfor (int i = 0; i < 4; i = i + 1) { } return 0; }"
  in
  match body with
  | [ { Ast.pragmas = [ { Ast.pkey = "pattern"; pargs = [ "farm"; "chunk=4" ]; _ } ];
        Ast.sdesc = Ast.For _; _ };
      _ ] -> ()
  | _ -> fail "pragma attachment"

let test_parse_globals () =
  let p = parse "int tab[4] = {1, -2, 3};\nint s = -7;\nfloat f;\nint main() { return 0; }" in
  match p.Ast.globals with
  | [ { Ast.gname = "tab"; gty = Ast.Tarray (Ast.Tint, 4); ginit = Some [ 1; -2; 3 ]; _ };
      { Ast.gname = "s"; gty = Ast.Tint; ginit = Some [ -7 ]; _ };
      { Ast.gname = "f"; gty = Ast.Tfloat; ginit = None; _ } ] -> ()
  | _ -> fail "global parsing"

let test_parse_call_and_index () =
  match main_body "int main() { int x = f(1, 2) + a[3]; return x; }" with
  | [ { Ast.sdesc =
          Ast.Decl (_, "x",
                    Some { edesc = Ast.Binop (Ast.Add,
                                              { edesc = Ast.Call ("f", [ _; _ ]); _ },
                                              { edesc = Ast.Index ("a", _); _ }); _ });
        _ };
      _ ] -> ()
  | _ -> fail "call/index parsing"

let test_parse_dangling_else () =
  (* else binds to nearest if *)
  match main_body "int main() { if (1) if (0) return 1; else return 2; return 3; }" with
  | [ { Ast.sdesc = Ast.If (_, [ { Ast.sdesc = Ast.If (_, _, [ _ ]); _ } ], []); _ }; _ ] -> ()
  | _ -> fail "dangling else"

let test_parse_errors () =
  List.iter
    (fun src ->
      try
        ignore (parse src);
        Alcotest.failf "expected parse error for %S" src
      with Parser.Parse_error _ -> ())
    [
      "int main() { return 1 }";
      "int main() { int = 3; }";
      "int main( { return 0; }";
      "int main() { for (int i = 0) {} }";
      "int x[] = {};";
      "int main() { a[1; }";
    ]

(* ---------------- typecheck ---------------- *)

let typecheck src = Typecheck.check_program (parse src)

let ok src =
  try typecheck src
  with Typecheck.Type_error (m, _) -> Alcotest.failf "unexpected type error: %s" m

let bad src =
  try
    typecheck src;
    Alcotest.failf "expected a type error in %S" src
  with Typecheck.Type_error _ -> ()

let test_typecheck_ok () =
  ok "int main() { int x = 1; float y = 2.5; y = y + float(x); return int(y); }";
  ok "int g[8];\nint main() { g[0] = 1; return g[0]; }";
  ok "int add(int a, int b) { return a + b; }\nint main() { return add(1, 2); }";
  ok "void nop() { return; }\nint main() { nop(); return 0; }";
  ok "int main() { int x = 0; { int x = 1; x = x + 1; } return x; }";
  ok "int main() { return __recv(0) + __faa(gc, 1); }\nint gc;" |> ignore

let test_typecheck_bad () =
  bad "int main() { return 1.5; }";
  bad "int main() { int x = 1.0; return 0; }";
  bad "int main() { return 1 + 2.0; }";
  bad "int main() { return 1.5 % 2.0; }";
  bad "float f;\nint main() { if (f) { } return 0; }";
  bad "int main() { return unknown(1); }";
  bad "int g[4];\nint main() { g = 3; return 0; }";
  bad "int main() { int x; int x; return 0; }";
  bad "int f() { return 0; }\nint f() { return 1; }\nint main() { return 0; }";
  bad "int main(int argc) { return 0; }";
  bad "void main() { }";
  bad "int nope() { return 0; }";
  (* last one has no main at all *)
  bad "int __evil() { return 0; }\nint main() { return 0; }"

let test_typecheck_missing_main () =
  bad "int f() { return 0; }"

let test_typecheck_intrinsics () =
  ok "int main() { __send(0, 1); __barrier(2); return __recv(1); }";
  bad "int main() { __send(1.0, 1); return 0; }";
  bad "int main() { return __recvf(0); }"

let suite =
  [
    Alcotest.test_case "lex basic" `Quick test_lex_basic;
    Alcotest.test_case "lex operators" `Quick test_lex_operators;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex float" `Quick test_lex_float;
    Alcotest.test_case "lex pragma" `Quick test_lex_pragma;
    Alcotest.test_case "lex errors" `Quick test_lex_errors;
    Alcotest.test_case "lex line numbers" `Quick test_lex_line_numbers;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse shift precedence" `Quick test_parse_shift_precedence;
    Alcotest.test_case "parse unary" `Quick test_parse_unary;
    Alcotest.test_case "parse for" `Quick test_parse_for;
    Alcotest.test_case "parse pragma attach" `Quick test_parse_pragma_attach;
    Alcotest.test_case "parse globals" `Quick test_parse_globals;
    Alcotest.test_case "parse call/index" `Quick test_parse_call_and_index;
    Alcotest.test_case "parse dangling else" `Quick test_parse_dangling_else;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "typecheck ok" `Quick test_typecheck_ok;
    Alcotest.test_case "typecheck bad" `Quick test_typecheck_bad;
    Alcotest.test_case "typecheck missing main" `Quick test_typecheck_missing_main;
    Alcotest.test_case "typecheck intrinsics" `Quick test_typecheck_intrinsics;
  ]

(* ---------------- pretty-printer round trip ---------------- *)

(* print -> parse -> print must be a fixpoint, over every bundled
   workload (pragma-carrying, multi-function, float-using sources) *)
let test_printer_round_trip () =
  List.iter
    (fun (w : Lp_workloads.Workload.t) ->
      let src = w.Lp_workloads.Workload.source in
      let p1 = Lp_lang.Ast_printer.program_to_string (parse src) in
      let p2 = Lp_lang.Ast_printer.program_to_string (parse p1) in
      if p1 <> p2 then
        Alcotest.failf "%s: printer not a fixpoint" w.Lp_workloads.Workload.name;
      (* and the reprinted program still type-checks *)
      Typecheck.check_program (parse p1))
    Lp_workloads.Suite.all

(* the parallelizer's generated program must also survive the round trip *)
let test_printer_round_trip_generated () =
  let w = Lp_workloads.Suite.find_exn "fir" in
  let ast = parse w.Lp_workloads.Workload.source in
  Typecheck.check_program ast;
  let det = Lp_patterns.Detect.detect ast in
  let (gen, _) =
    Lp_transforms.Parallelize.run ~n_cores:4 ast
      det.Lp_patterns.Pattern.instances
  in
  let p1 = Lp_lang.Ast_printer.program_to_string gen in
  let p2 = Lp_lang.Ast_printer.program_to_string (parse p1) in
  Alcotest.(check string) "generated fixpoint" p1 p2;
  Typecheck.check_program (parse p1)

let suite =
  suite
  @ [
      Alcotest.test_case "printer round trip" `Quick test_printer_round_trip;
      Alcotest.test_case "printer round trip (generated)" `Quick
        test_printer_round_trip_generated;
    ]
