(** Static task graphs: the substrate for offline mapping of general
    DAG-structured work onto the machine, costed with the same metrics
    the IR estimator produces (work cycles, memory fraction, component
    usage). *)

module Component = Lp_power.Component

type task = {
  tid : int;
  tname : string;
  work_cycles : float;
  mem_fraction : float;
  components : Component.Set.t;
}

type edge = { src : int; dst : int; words : int }

type t = { tasks : task array; edges : edge list }

exception Invalid_graph of string

(** Build and validate: ids dense, edges in range, acyclic. *)
val create : tasks:task list -> edges:edge list -> t

val task : t -> int -> task
val preds : t -> int -> edge list
val succs : t -> int -> edge list
val n_tasks : t -> int

(** Topological order, sources first. *)
val topo_order : t -> int list

(** Sum of all task works. *)
val serial_cycles : t -> float

(** Critical-path length from each task to any sink (HEFT priority). *)
val upward_ranks : t -> float array

val mk_task :
  tid:int -> name:string -> work:float -> ?mem_fraction:float ->
  ?components:Component.Set.t -> unit -> task

(** One source, [width] parallel workers, one sink. *)
val fork_join : width:int -> work:float -> t

(** A linear dependence chain of [n] tasks. *)
val chain : n:int -> work:float -> t
