(** HEFT-style list scheduling onto a homogeneous multicore: tasks in
    decreasing upward-rank order, each placed on the core minimising its
    finish time, inter-core edges paying link transfer time. *)

module Machine = Lp_machine.Machine

type placement = {
  ptask : int;
  core : int;
  start_cycles : float;
  finish_cycles : float;
}

type schedule = {
  graph : Taskgraph.t;
  machine : Machine.t;
  placements : placement array;  (** indexed by task id *)
  makespan_cycles : float;
}

(** Transfer cost of [words] over the interconnect, in nominal cycles. *)
val comm_cycles : Machine.t -> int -> float

val placement : schedule -> int -> placement

val run : machine:Machine.t -> Taskgraph.t -> schedule

(** Raises [Invalid_argument] if dependencies are violated or a core
    runs two tasks at once — used by tests. *)
val validate : schedule -> unit

val cores_used : schedule -> int
