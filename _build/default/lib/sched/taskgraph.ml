(** Static task graphs.

    The pattern parallelizer handles the regular cases (doall slices,
    farm chunks, pipeline stages); this module is the substrate for the
    general case — an explicit DAG of tasks with data edges — as used by
    offline mapping flows for embedded multicores.  Tasks carry the same
    static metrics the estimator produces for IR (work cycles, memory
    fraction, component usage), so a schedule can be costed with the same
    power model the simulator uses. *)

module Component = Lp_power.Component

type task = {
  tid : int;
  tname : string;
  work_cycles : float;     (** nominal-frequency compute estimate *)
  mem_fraction : float;    (** frequency-independent share, as in Est *)
  components : Component.Set.t;  (** datapath components the task needs *)
}

type edge = {
  src : int;
  dst : int;
  words : int;  (** data transferred when src and dst map to different cores *)
}

type t = {
  tasks : task array;  (** indexed by [tid] *)
  edges : edge list;
}

exception Invalid_graph of string

let task t tid =
  if tid < 0 || tid >= Array.length t.tasks then
    raise (Invalid_graph (Printf.sprintf "unknown task %d" tid));
  t.tasks.(tid)

let preds t tid = List.filter (fun e -> e.dst = tid) t.edges
let succs t tid = List.filter (fun e -> e.src = tid) t.edges

(** Build and validate a graph: ids must be dense, edges in range, and
    the graph must be acyclic. *)
let create ~(tasks : task list) ~(edges : edge list) : t =
  let arr = Array.of_list tasks in
  Array.iteri
    (fun i tk ->
      if tk.tid <> i then
        raise (Invalid_graph (Printf.sprintf "task ids must be dense (got %d at %d)" tk.tid i)))
    arr;
  let n = Array.length arr in
  List.iter
    (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        raise (Invalid_graph "edge endpoint out of range");
      if e.src = e.dst then raise (Invalid_graph "self edge"))
    edges;
  let g = { tasks = arr; edges } in
  (* cycle check via DFS colouring *)
  let colour = Array.make n 0 in
  let rec visit v =
    match colour.(v) with
    | 1 -> raise (Invalid_graph "task graph has a cycle")
    | 2 -> ()
    | _ ->
      colour.(v) <- 1;
      List.iter (fun e -> visit e.dst) (succs g v);
      colour.(v) <- 2
  in
  for v = 0 to n - 1 do visit v done;
  g

let n_tasks t = Array.length t.tasks

(** Topological order (sources first, stable by id among ready tasks). *)
let topo_order (t : t) : int list =
  let n = n_tasks t in
  let indeg = Array.make n 0 in
  List.iter (fun e -> indeg.(e.dst) <- indeg.(e.dst) + 1) t.edges;
  let order = ref [] in
  let ready = ref (List.filter (fun v -> indeg.(v) = 0) (List.init n Fun.id)) in
  while !ready <> [] do
    match !ready with
    | [] -> ()
    | v :: rest ->
      ready := rest;
      order := v :: !order;
      List.iter
        (fun e ->
          indeg.(e.dst) <- indeg.(e.dst) - 1;
          if indeg.(e.dst) = 0 then ready := e.dst :: !ready)
        (succs t v)
  done;
  if List.length !order <> n then raise (Invalid_graph "cycle in topo sort");
  List.rev !order

(** Serial execution time: the sum of all task works (cycles). *)
let serial_cycles t =
  Array.fold_left (fun acc tk -> acc +. tk.work_cycles) 0.0 t.tasks

(** Upward rank (critical-path length from the task to any sink),
    communication ignored — the classic HEFT tie-breaker. *)
let upward_ranks (t : t) : float array =
  let n = n_tasks t in
  let rank = Array.make n (-1.0) in
  let order = List.rev (topo_order t) in
  List.iter
    (fun v ->
      let succ_max =
        List.fold_left
          (fun acc e -> Float.max acc rank.(e.dst))
          0.0 (succs t v)
      in
      rank.(v) <- (task t v).work_cycles +. succ_max)
    order;
  rank

(* ------------------------------------------------------------------ *)
(* Convenience constructors used by tests and demos                    *)
(* ------------------------------------------------------------------ *)

let mk_task ~tid ~name ~work ?(mem_fraction = 0.1)
    ?(components = Component.Set.singleton Component.Alu) () =
  { tid; tname = name; work_cycles = work; mem_fraction; components }

(** A fork-join graph: one source, [width] parallel workers, one sink. *)
let fork_join ~width ~work =
  let src = mk_task ~tid:0 ~name:"fork" ~work:(work /. 10.0) () in
  let workers =
    List.init width (fun i ->
        mk_task ~tid:(i + 1) ~name:(Printf.sprintf "w%d" i) ~work ())
  in
  let sink = mk_task ~tid:(width + 1) ~name:"join" ~work:(work /. 10.0) () in
  let edges =
    List.concat_map
      (fun i -> [ { src = 0; dst = i + 1; words = 4 };
                  { src = i + 1; dst = width + 1; words = 4 } ])
      (List.init width Fun.id)
  in
  create ~tasks:((src :: workers) @ [ sink ]) ~edges

(** A linear chain of [n] tasks (a pipeline unrolled for one item). *)
let chain ~n ~work =
  let tasks =
    List.init n (fun i -> mk_task ~tid:i ~name:(Printf.sprintf "s%d" i) ~work ())
  in
  let edges =
    List.init (n - 1) (fun i -> { src = i; dst = i + 1; words = 8 })
  in
  create ~tasks ~edges
