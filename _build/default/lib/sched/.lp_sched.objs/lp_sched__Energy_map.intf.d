lib/sched/energy_map.mli: List_sched Lp_machine Lp_power Taskgraph
