lib/sched/energy_map.ml: Array Float Fun List List_sched Lp_machine Lp_power Taskgraph
