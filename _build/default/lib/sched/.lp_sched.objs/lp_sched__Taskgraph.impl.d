lib/sched/taskgraph.ml: Array Float Fun List Lp_power Printf
