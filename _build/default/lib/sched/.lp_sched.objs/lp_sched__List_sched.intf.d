lib/sched/list_sched.mli: Lp_machine Taskgraph
