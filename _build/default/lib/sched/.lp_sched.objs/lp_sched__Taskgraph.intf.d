lib/sched/taskgraph.mli: Lp_power
