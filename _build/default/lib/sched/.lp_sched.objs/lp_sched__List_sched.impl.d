lib/sched/list_sched.ml: Array Float Fun Hashtbl List Lp_machine Option Printf Taskgraph
