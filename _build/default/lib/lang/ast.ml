(** Abstract syntax of MiniC, the C-subset front-end language.

    MiniC is deliberately small: enough C to write DSP/embedded kernels
    (integer and float scalars, fixed-size global/local arrays, loops,
    functions) plus [#pragma lp ...] annotations with which the programmer
    can name the design pattern of a loop nest.  The pattern detectors can
    also infer patterns without annotations; the pragma is the
    "programmer writes the design pattern" interface that the paper's
    title refers to. *)

type position = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

type ty =
  | Tint
  | Tfloat
  | Tvoid
  | Tarray of ty * int  (** element type (scalar) and static length *)

let rec ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tvoid -> "void"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (ty_to_string t) n

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | Band | Bor | Bxor
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>" | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"

type unop = Neg | Not | Bnot

let unop_to_string = function Neg -> "-" | Not -> "!" | Bnot -> "~"

type expr = { edesc : edesc; epos : position }

and edesc =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr            (** a[i] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Cast of ty * expr                 (** int(e) / float(e) *)

(** A pragma directive: [#pragma lp key(arg1, arg2, ...)]. *)
type pragma = { pkey : string; pargs : string list; ppos : position }

type stmt = { sdesc : sdesc; spos : position; pragmas : pragma list }

and sdesc =
  | Decl of ty * string * expr option
  | Assign of string * expr                 (** x = e *)
  | Store of string * expr * expr           (** a[i] = e *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
      (** for (init; cond; step) body — init/step restricted to
          assign/decl by the parser *)
  | Return of expr option
  | Expr of expr                            (** expression statement (calls) *)
  | Block of stmt list

type func = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt list;
  fpragmas : pragma list;
  fpos : position;
}

type global = {
  gname : string;
  gty : ty;
  ginit : int list option;  (** optional initialiser list for int arrays *)
  gpos : position;
}

type program = { globals : global list; funcs : func list }

(* ------------------------------------------------------------------ *)
(* Constructors used by tests and generated workloads.                 *)
(* ------------------------------------------------------------------ *)

let mk_expr ?(pos = dummy_pos) edesc = { edesc; epos = pos }
let mk_stmt ?(pos = dummy_pos) ?(pragmas = []) sdesc =
  { sdesc; spos = pos; pragmas }

let int_lit n = mk_expr (Int_lit n)
let var x = mk_expr (Var x)
let binop op a b = mk_expr (Binop (op, a, b))

(* ------------------------------------------------------------------ *)
(* Utility traversals.                                                 *)
(* ------------------------------------------------------------------ *)

(** Fold over every statement in a list, descending into nested bodies. *)
let rec fold_stmts f acc stmts =
  List.fold_left
    (fun acc s ->
      let acc = f acc s in
      match s.sdesc with
      | If (_, a, b) -> fold_stmts f (fold_stmts f acc a) b
      | While (_, body) -> fold_stmts f acc body
      | For (init, _, step, body) ->
        fold_stmts f (fold_stmts f acc [ init; step ]) body
      | Block body -> fold_stmts f acc body
      | Decl _ | Assign _ | Store _ | Return _ | Expr _ -> acc)
    acc stmts

(** Number of loop statements (while/for) in a function body. *)
let count_loops stmts =
  fold_stmts
    (fun acc s ->
      match s.sdesc with While _ | For _ -> acc + 1 | _ -> acc)
    0 stmts

let find_pragma ~key pragmas =
  List.find_opt (fun p -> p.pkey = key) pragmas
