(** Recursive-descent parser for MiniC. *)

open Ast

exception Parse_error of string * int (** message, line *)

type state = { toks : Lexer.located array; mutable pos : int }

let cur st = st.toks.(st.pos)
let cur_tok st = (cur st).tok
let cur_line st = (cur st).line

let err st msg =
  raise (Parse_error (Printf.sprintf "%s (got %s)" msg
                        (Lexer.token_to_string (cur_tok st)),
                      cur_line st))

let advance st = st.pos <- st.pos + 1

let expect st tok msg =
  if cur_tok st = tok then advance st else err st msg

let position st = { line = cur_line st; col = (cur st).col }

(* ------------------------------------------------------------------ *)
(* Pragmas: the raw text after "#pragma lp" is "key(arg1, arg2, ...)"
   or a bare "key".                                                    *)
(* ------------------------------------------------------------------ *)

let parse_pragma_text ~line text : pragma =
  let text = String.trim text in
  let ppos = { line; col = 0 } in
  match String.index_opt text '(' with
  | None -> { pkey = text; pargs = []; ppos }
  | Some lp ->
    let key = String.trim (String.sub text 0 lp) in
    (match String.rindex_opt text ')' with
    | None -> raise (Parse_error ("pragma missing ')'", line))
    | Some rp when rp > lp ->
      let inner = String.sub text (lp + 1) (rp - lp - 1) in
      let args =
        String.split_on_char ',' inner
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      { pkey = key; pargs = args; ppos }
    | Some _ -> raise (Parse_error ("pragma malformed parentheses", line)))

let collect_pragmas st =
  let rec loop acc =
    match cur_tok st with
    | Lexer.PRAGMA text ->
      let line = cur_line st in
      advance st;
      loop (parse_pragma_text ~line text :: acc)
    | _ -> List.rev acc
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let parse_base_ty st =
  match cur_tok st with
  | Lexer.KW_INT -> advance st; Tint
  | Lexer.KW_FLOAT -> advance st; Tfloat
  | Lexer.KW_VOID -> advance st; Tvoid
  | _ -> err st "expected type"

let is_type_tok = function
  | Lexer.KW_INT | Lexer.KW_FLOAT | Lexer.KW_VOID -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

(* Precedence levels, loosest first:
   || ; && ; | ; ^ ; & ; == != ; < <= > >= ; << >> ; + - ; * / % *)
let binop_of_tok = function
  | Lexer.OROR -> Some (Lor, 1)
  | Lexer.ANDAND -> Some (Land, 2)
  | Lexer.PIPE -> Some (Bor, 3)
  | Lexer.CARET -> Some (Bxor, 4)
  | Lexer.AMP -> Some (Band, 5)
  | Lexer.EQEQ -> Some (Eq, 6)
  | Lexer.NE -> Some (Ne, 6)
  | Lexer.LT -> Some (Lt, 7)
  | Lexer.LE -> Some (Le, 7)
  | Lexer.GT -> Some (Gt, 7)
  | Lexer.GE -> Some (Ge, 7)
  | Lexer.SHL -> Some (Shl, 8)
  | Lexer.SHR -> Some (Shr, 8)
  | Lexer.PLUS -> Some (Add, 9)
  | Lexer.MINUS -> Some (Sub, 9)
  | Lexer.STAR -> Some (Mul, 10)
  | Lexer.SLASH -> Some (Div, 10)
  | Lexer.PERCENT -> Some (Mod, 10)
  | _ -> None

let rec parse_expr st = parse_binop st 1

and parse_binop st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_tok (cur_tok st) with
    | Some (op, prec) when prec >= min_prec ->
      let pos = position st in
      advance st;
      let rhs = parse_binop st (prec + 1) in
      loop { edesc = Binop (op, lhs, rhs); epos = pos }
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  let pos = position st in
  match cur_tok st with
  | Lexer.MINUS ->
    advance st;
    { edesc = Unop (Neg, parse_unary st); epos = pos }
  | Lexer.BANG ->
    advance st;
    { edesc = Unop (Not, parse_unary st); epos = pos }
  | Lexer.TILDE ->
    advance st;
    { edesc = Unop (Bnot, parse_unary st); epos = pos }
  | _ -> parse_primary st

and parse_primary st =
  let pos = position st in
  match cur_tok st with
  | Lexer.INT_LIT n -> advance st; { edesc = Int_lit n; epos = pos }
  | Lexer.FLOAT_LIT f -> advance st; { edesc = Float_lit f; epos = pos }
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN "expected ')'";
    e
  | Lexer.KW_INT | Lexer.KW_FLOAT ->
    (* cast: int(e) / float(e) *)
    let ty = parse_base_ty st in
    expect st Lexer.LPAREN "expected '(' after cast type";
    let e = parse_expr st in
    expect st Lexer.RPAREN "expected ')'";
    { edesc = Cast (ty, e); epos = pos }
  | Lexer.IDENT name -> (
    advance st;
    match cur_tok st with
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      { edesc = Call (name, args); epos = pos }
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET "expected ']'";
      { edesc = Index (name, idx); epos = pos }
    | _ -> { edesc = Var name; epos = pos })
  | _ -> err st "expected expression"

and parse_args st =
  if cur_tok st = Lexer.RPAREN then begin advance st; [] end
  else
    let rec loop acc =
      let e = parse_expr st in
      match cur_tok st with
      | Lexer.COMMA -> advance st; loop (e :: acc)
      | Lexer.RPAREN -> advance st; List.rev (e :: acc)
      | _ -> err st "expected ',' or ')' in arguments"
    in
    loop []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : stmt =
  let pragmas = collect_pragmas st in
  let pos = position st in
  let mk sdesc = { sdesc; spos = pos; pragmas } in
  match cur_tok st with
  | Lexer.KW_INT | Lexer.KW_FLOAT ->
    let s = parse_decl st in
    expect st Lexer.SEMI "expected ';' after declaration";
    { s with pragmas }
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN "expected '(' after if";
    let cond = parse_expr st in
    expect st Lexer.RPAREN "expected ')'";
    let then_b = parse_block_or_stmt st in
    let else_b =
      if cur_tok st = Lexer.KW_ELSE then begin
        advance st;
        parse_block_or_stmt st
      end
      else []
    in
    mk (If (cond, then_b, else_b))
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN "expected '(' after while";
    let cond = parse_expr st in
    expect st Lexer.RPAREN "expected ')'";
    let body = parse_block_or_stmt st in
    mk (While (cond, body))
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN "expected '(' after for";
    let init = parse_simple st in
    expect st Lexer.SEMI "expected ';' in for";
    let cond = parse_expr st in
    expect st Lexer.SEMI "expected ';' in for";
    let step = parse_simple st in
    expect st Lexer.RPAREN "expected ')'";
    let body = parse_block_or_stmt st in
    mk (For (init, cond, step, body))
  | Lexer.KW_RETURN ->
    advance st;
    if cur_tok st = Lexer.SEMI then begin
      advance st;
      mk (Return None)
    end
    else begin
      let e = parse_expr st in
      expect st Lexer.SEMI "expected ';' after return";
      mk (Return (Some e))
    end
  | Lexer.LBRACE -> mk (Block (parse_block st))
  | _ ->
    let s = parse_simple st in
    expect st Lexer.SEMI "expected ';'";
    { s with pragmas }

(** Simple statement: declaration, assignment, array store, or expression
    statement.  Used both standalone and in for-headers. *)
and parse_simple st : stmt =
  let pos = position st in
  let mk sdesc = { sdesc; spos = pos; pragmas = [] } in
  match cur_tok st with
  | Lexer.KW_INT | Lexer.KW_FLOAT -> parse_decl st
  | Lexer.IDENT name -> (
    (* lookahead to distinguish assignment / store / call *)
    advance st;
    match cur_tok st with
    | Lexer.ASSIGN ->
      advance st;
      mk (Assign (name, parse_expr st))
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET "expected ']'";
      (match cur_tok st with
      | Lexer.ASSIGN ->
        advance st;
        mk (Store (name, idx, parse_expr st))
      | _ -> mk (Expr { edesc = Index (name, idx); epos = pos }))
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      mk (Expr { edesc = Call (name, args); epos = pos })
    | _ -> err st "expected '=', '[' or '(' after identifier")
  | _ -> err st "expected statement"

and parse_decl st : stmt =
  let pos = position st in
  let ty = parse_base_ty st in
  let name =
    match cur_tok st with
    | Lexer.IDENT n -> advance st; n
    | _ -> err st "expected identifier in declaration"
  in
  match cur_tok st with
  | Lexer.LBRACKET ->
    advance st;
    let size =
      match cur_tok st with
      | Lexer.INT_LIT n -> advance st; n
      | _ -> err st "expected array size literal"
    in
    expect st Lexer.RBRACKET "expected ']'";
    { sdesc = Decl (Tarray (ty, size), name, None); spos = pos; pragmas = [] }
  | Lexer.ASSIGN ->
    advance st;
    let e = parse_expr st in
    { sdesc = Decl (ty, name, Some e); spos = pos; pragmas = [] }
  | _ -> { sdesc = Decl (ty, name, None); spos = pos; pragmas = [] }

and parse_block st : stmt list =
  expect st Lexer.LBRACE "expected '{'";
  let rec loop acc =
    if cur_tok st = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

and parse_block_or_stmt st : stmt list =
  if cur_tok st = Lexer.LBRACE then parse_block st else [ parse_stmt st ]

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_params st : (ty * string) list =
  expect st Lexer.LPAREN "expected '('";
  if cur_tok st = Lexer.RPAREN then begin advance st; [] end
  else
    let rec loop acc =
      let ty = parse_base_ty st in
      let name =
        match cur_tok st with
        | Lexer.IDENT n -> advance st; n
        | _ -> err st "expected parameter name"
      in
      match cur_tok st with
      | Lexer.COMMA -> advance st; loop ((ty, name) :: acc)
      | Lexer.RPAREN -> advance st; List.rev ((ty, name) :: acc)
      | _ -> err st "expected ',' or ')' in parameters"
    in
    loop []

let parse_global_init st =
  (* "= { 1, 2, 3 }" *)
  expect st Lexer.LBRACE "expected '{' in initialiser";
  let rec loop acc =
    match cur_tok st with
    | Lexer.INT_LIT n -> (
      advance st;
      match cur_tok st with
      | Lexer.COMMA -> advance st; loop (n :: acc)
      | Lexer.RBRACE -> advance st; List.rev (n :: acc)
      | _ -> err st "expected ',' or '}' in initialiser")
    | Lexer.MINUS -> (
      advance st;
      match cur_tok st with
      | Lexer.INT_LIT n -> (
        advance st;
        match cur_tok st with
        | Lexer.COMMA -> advance st; loop (-n :: acc)
        | Lexer.RBRACE -> advance st; List.rev (-n :: acc)
        | _ -> err st "expected ',' or '}' in initialiser")
      | _ -> err st "expected integer after '-'")
    | Lexer.RBRACE -> advance st; List.rev acc
    | _ -> err st "expected integer in initialiser"
  in
  loop []

let parse_program (src : string) : program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let globals = ref [] in
  let funcs = ref [] in
  let rec loop () =
    if cur_tok st = Lexer.EOF then ()
    else begin
      let pragmas = collect_pragmas st in
      let pos = position st in
      let ty = parse_base_ty st in
      let name =
        match cur_tok st with
        | Lexer.IDENT n -> advance st; n
        | _ -> err st "expected identifier at top level"
      in
      (match cur_tok st with
      | Lexer.LPAREN ->
        let params = parse_params st in
        let body = parse_block st in
        funcs :=
          { fname = name; fret = ty; fparams = params; fbody = body;
            fpragmas = pragmas; fpos = pos }
          :: !funcs
      | Lexer.LBRACKET ->
        advance st;
        let size =
          match cur_tok st with
          | Lexer.INT_LIT n -> advance st; n
          | _ -> err st "expected array size"
        in
        expect st Lexer.RBRACKET "expected ']'";
        let init =
          if cur_tok st = Lexer.ASSIGN then begin
            advance st;
            Some (parse_global_init st)
          end
          else None
        in
        expect st Lexer.SEMI "expected ';'";
        globals :=
          { gname = name; gty = Tarray (ty, size); ginit = init; gpos = pos }
          :: !globals
      | Lexer.ASSIGN ->
        advance st;
        let v =
          match cur_tok st with
          | Lexer.INT_LIT n -> advance st; n
          | Lexer.MINUS -> (
            advance st;
            match cur_tok st with
            | Lexer.INT_LIT n -> advance st; -n
            | _ -> err st "expected integer initialiser")
          | _ -> err st "expected integer initialiser"
        in
        expect st Lexer.SEMI "expected ';'";
        globals :=
          { gname = name; gty = ty; ginit = Some [ v ]; gpos = pos } :: !globals
      | Lexer.SEMI ->
        advance st;
        globals := { gname = name; gty = ty; ginit = None; gpos = pos } :: !globals
      | _ -> err st "expected '(', '[', '=' or ';' at top level");
      loop ()
    end
  in
  loop ();
  { globals = List.rev !globals; funcs = List.rev !funcs }
