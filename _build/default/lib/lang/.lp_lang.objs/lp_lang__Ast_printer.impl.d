lib/lang/ast_printer.ml: Ast List Printf String
