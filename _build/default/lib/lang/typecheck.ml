(** Type checker for MiniC.

    A simple monomorphic checker: [int] and [float] never mix implicitly
    (use the [int(e)] / [float(e)] cast forms), arrays are second-class
    (only indexing, no array-valued expressions), and conditions are
    integers, as in C. *)

open Ast

exception Type_error of string * position

let errf pos fmt = Format.kasprintf (fun s -> raise (Type_error (s, pos))) fmt

type fsig = { sig_ret : ty; sig_params : ty list }

type env = {
  globals : (string, ty) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  mutable scopes : (string, ty) Hashtbl.t list; (* innermost first *)
}

let lookup_var env pos name =
  let rec search = function
    | [] -> (
      match Hashtbl.find_opt env.globals name with
      | Some t -> t
      | None -> errf pos "unbound variable %s" name)
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some t -> t
      | None -> search rest)
  in
  search env.scopes

let declare_local env pos name ty =
  match env.scopes with
  | [] -> errf pos "internal: no scope"
  | scope :: _ ->
    if Hashtbl.mem scope name then
      errf pos "duplicate declaration of %s in the same scope" name;
    Hashtbl.replace scope name ty

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes

let pop_scope env =
  match env.scopes with
  | [] -> failwith "Typecheck: scope underflow"
  | _ :: rest -> env.scopes <- rest

let is_scalar = function Tint | Tfloat -> true | Tvoid | Tarray _ -> false

let int_only_op = function
  | Mod | Shl | Shr | Band | Bor | Bxor | Land | Lor -> true
  | Add | Sub | Mul | Div | Lt | Le | Gt | Ge | Eq | Ne -> false

let is_comparison = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | _ -> false

let rec check_expr env (e : expr) : ty =
  match e.edesc with
  | Int_lit _ -> Tint
  | Float_lit _ -> Tfloat
  | Var name -> (
    match lookup_var env e.epos name with
    | Tarray _ -> errf e.epos "array %s used as a scalar value" name
    | t -> t)
  | Index (name, idx) -> (
    (match check_expr env idx with
    | Tint -> ()
    | t -> errf idx.epos "array index must be int, got %s" (ty_to_string t));
    match lookup_var env e.epos name with
    | Tarray (elem, _) -> elem
    | t -> errf e.epos "%s has type %s, not an array" name (ty_to_string t))
  | Unop (op, a) -> (
    let ta = check_expr env a in
    match (op, ta) with
    | (Neg, (Tint | Tfloat)) -> ta
    | ((Not | Bnot), Tint) -> Tint
    | _ ->
      errf e.epos "operator %s not applicable to %s" (unop_to_string op)
        (ty_to_string ta))
  | Binop (op, a, b) ->
    let ta = check_expr env a in
    let tb = check_expr env b in
    if ta <> tb then
      errf e.epos "operands of %s have different types: %s vs %s"
        (binop_to_string op) (ty_to_string ta) (ty_to_string tb);
    if not (is_scalar ta) then
      errf e.epos "operator %s needs scalar operands" (binop_to_string op);
    if int_only_op op && ta <> Tint then
      errf e.epos "operator %s requires int operands" (binop_to_string op);
    if is_comparison op then Tint else ta
  | Cast (ty, a) -> (
    let ta = check_expr env a in
    match (ty, ta) with
    | ((Tint | Tfloat), (Tint | Tfloat)) -> ty
    | _ ->
      errf e.epos "invalid cast from %s to %s" (ty_to_string ta)
        (ty_to_string ty))
  | Call (name, args) -> (
    match Hashtbl.find_opt env.funcs name with
    | None -> errf e.epos "call to undefined function %s" name
    | Some fsig ->
      let nexp = List.length fsig.sig_params in
      let ngot = List.length args in
      if nexp <> ngot then
        errf e.epos "%s expects %d arguments, got %d" name nexp ngot;
      List.iter2
        (fun expected arg ->
          let got = check_expr env arg in
          if got <> expected then
            errf arg.epos "argument of %s: expected %s, got %s" name
              (ty_to_string expected) (ty_to_string got))
        fsig.sig_params args;
      fsig.sig_ret)

let rec check_stmt env ~ret (s : stmt) : unit =
  match s.sdesc with
  | Decl (ty, name, init) -> (
    (match ty with
    | Tvoid -> errf s.spos "cannot declare %s of type void" name
    | Tarray (Tvoid, _) | Tarray (Tarray _, _) ->
      errf s.spos "invalid array element type"
    | Tint | Tfloat | Tarray _ -> ());
    declare_local env s.spos name ty;
    match init with
    | None -> ()
    | Some e ->
      if not (is_scalar ty) then
        errf s.spos "array %s cannot have an expression initialiser" name;
      let t = check_expr env e in
      if t <> ty then
        errf e.epos "initialiser of %s: expected %s, got %s" name
          (ty_to_string ty) (ty_to_string t))
  | Assign (name, e) ->
    let tv = lookup_var env s.spos name in
    if not (is_scalar tv) then errf s.spos "cannot assign to array %s" name;
    let te = check_expr env e in
    if te <> tv then
      errf e.epos "assignment to %s: expected %s, got %s" name
        (ty_to_string tv) (ty_to_string te)
  | Store (name, idx, e) -> (
    (match check_expr env idx with
    | Tint -> ()
    | t -> errf idx.epos "array index must be int, got %s" (ty_to_string t));
    match lookup_var env s.spos name with
    | Tarray (elem, _) ->
      let te = check_expr env e in
      if te <> elem then
        errf e.epos "store to %s: expected %s, got %s" name
          (ty_to_string elem) (ty_to_string te)
    | t -> errf s.spos "%s has type %s, not an array" name (ty_to_string t))
  | If (cond, then_b, else_b) ->
    check_cond env cond;
    check_body env ~ret then_b;
    check_body env ~ret else_b
  | While (cond, body) ->
    check_cond env cond;
    check_body env ~ret body
  | For (init, cond, step, body) ->
    push_scope env;
    check_stmt env ~ret init;
    check_cond env cond;
    check_stmt env ~ret step;
    check_body env ~ret body;
    pop_scope env
  | Return None ->
    if ret <> Tvoid then
      errf s.spos "return without value in non-void function"
  | Return (Some e) ->
    if ret = Tvoid then errf s.spos "return with value in void function";
    let t = check_expr env e in
    if t <> ret then
      errf e.epos "return type mismatch: expected %s, got %s"
        (ty_to_string ret) (ty_to_string t)
  | Expr e -> ignore (check_expr env e)
  | Block body -> check_body env ~ret body

and check_cond env cond =
  match check_expr env cond with
  | Tint -> ()
  | t -> errf cond.epos "condition must be int, got %s" (ty_to_string t)

and check_body env ~ret body =
  push_scope env;
  List.iter (check_stmt env ~ret) body;
  pop_scope env

(** Signatures of the multicore runtime intrinsics that the pattern
    parallelizer emits.  They are ordinary calls at the AST level and are
    lowered to dedicated IR instructions. *)
let intrinsics =
  [
    ("__send", { sig_ret = Tvoid; sig_params = [ Tint; Tint ] });
    ("__sendf", { sig_ret = Tvoid; sig_params = [ Tint; Tfloat ] });
    ("__recv", { sig_ret = Tint; sig_params = [ Tint ] });
    ("__recvf", { sig_ret = Tfloat; sig_params = [ Tint ] });
    ("__barrier", { sig_ret = Tvoid; sig_params = [ Tint ] });
    ("__faa", { sig_ret = Tint; sig_params = [ Tint; Tint ] });
  ]

let check_program (p : program) : unit =
  let env =
    { globals = Hashtbl.create 16; funcs = Hashtbl.create 16; scopes = [] }
  in
  List.iter (fun (name, s) -> Hashtbl.replace env.funcs name s) intrinsics;
  List.iter
    (fun g ->
      if Hashtbl.mem env.globals g.gname then
        errf g.gpos "duplicate global %s" g.gname;
      (match (g.gty, g.ginit) with
      | (Tvoid, _) -> errf g.gpos "global %s of type void" g.gname
      | (Tarray (elem, n), Some init) ->
        if elem <> Tint then
          errf g.gpos "initialiser lists are only for int arrays";
        if List.length init > n then
          errf g.gpos "initialiser of %s longer than array" g.gname
      | ((Tint | Tfloat | Tarray _), _) -> ());
      Hashtbl.replace env.globals g.gname g.gty)
    p.globals;
  List.iter
    (fun f ->
      if Hashtbl.mem env.funcs f.fname then
        errf f.fpos "duplicate function %s" f.fname;
      if String.length f.fname >= 2 && String.sub f.fname 0 2 = "__"
         && not (List.mem_assoc f.fname intrinsics) then
        errf f.fpos "function names starting with __ are reserved";
      List.iter
        (fun (ty, _) ->
          if not (is_scalar ty) then
            errf f.fpos "parameters must be scalar (int/float)")
        f.fparams;
      Hashtbl.replace env.funcs f.fname
        { sig_ret = f.fret; sig_params = List.map fst f.fparams })
    p.funcs;
  List.iter
    (fun f ->
      push_scope env;
      List.iter (fun (ty, name) -> declare_local env f.fpos name ty) f.fparams;
      check_body env ~ret:f.fret f.fbody;
      pop_scope env)
    p.funcs;
  match Hashtbl.find_opt env.funcs "main" with
  | Some { sig_ret = Tint; sig_params = [] } -> ()
  | Some _ -> raise (Type_error ("main must have type int main()", dummy_pos))
  | None -> raise (Type_error ("program has no main function", dummy_pos))
