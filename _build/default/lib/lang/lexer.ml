(** Hand-written lexer for MiniC.

    Produces a flat token list.  [#pragma lp ...] lines become dedicated
    [PRAGMA] tokens so the parser can attach them to the following
    statement or function. *)

type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT | KW_FLOAT | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | SHL | SHR | AMP | PIPE | CARET | TILDE
  | LT | LE | GT | GE | EQEQ | NE | BANG
  | ANDAND | OROR
  | ASSIGN
  | PRAGMA of string  (** raw text after "#pragma lp" *)
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int  (** message, line *)

let token_to_string = function
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT f -> string_of_float f
  | IDENT s -> s
  | KW_INT -> "int" | KW_FLOAT -> "float" | KW_VOID -> "void"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while"
  | KW_FOR -> "for" | KW_RETURN -> "return"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> ","
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | SHL -> "<<" | SHR -> ">>" | AMP -> "&" | PIPE -> "|" | CARET -> "^"
  | TILDE -> "~"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "==" | NE -> "!="
  | BANG -> "!"
  | ANDAND -> "&&" | OROR -> "||"
  | ASSIGN -> "="
  | PRAGMA s -> "#pragma lp " ^ s
  | EOF -> "<eof>"

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "float" -> Some KW_FLOAT
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize (src : string) : located list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let col = ref 1 in
  let i = ref 0 in
  let emit tok = toks := { tok; line = !line; col = !col } :: !toks in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    (match src.[!i] with
    | '\n' -> line := !line + 1; col := 1
    | _ -> col := !col + 1);
    incr i
  in
  let read_while pred =
    let start = !i in
    while !i < n && pred src.[!i] do advance () done;
    String.sub src start (!i - start)
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do advance () done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      advance (); advance ();
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance (); advance (); closed := true
        end
        else advance ()
      done;
      if not !closed then raise (Lex_error ("unterminated comment", !line))
    end
    else if c = '#' then begin
      (* pragma line: "#pragma lp <rest-of-line>" *)
      let rest = read_while (fun c -> c <> '\n') in
      let prefix = "#pragma lp " in
      let plen = String.length prefix in
      if String.length rest >= plen && String.sub rest 0 plen = prefix then
        emit (PRAGMA (String.trim (String.sub rest plen (String.length rest - plen))))
      else
        raise (Lex_error ("unknown directive: " ^ rest, !line))
    end
    else if is_digit c then begin
      let intpart = read_while is_digit in
      if !i < n && src.[!i] = '.' then begin
        advance ();
        let frac = read_while is_digit in
        emit (FLOAT_LIT (float_of_string (intpart ^ "." ^ (if frac = "" then "0" else frac))))
      end
      else emit (INT_LIT (int_of_string intpart))
    end
    else if is_ident_start c then begin
      let word = read_while is_ident_char in
      match keyword_of_string word with
      | Some kw -> emit kw
      | None -> emit (IDENT word)
    end
    else begin
      let two a b tok_two tok_one =
        if c = a && peek 1 = Some b then begin advance (); advance (); emit tok_two end
        else begin advance (); emit tok_one end
      in
      match c with
      | '(' -> advance (); emit LPAREN
      | ')' -> advance (); emit RPAREN
      | '{' -> advance (); emit LBRACE
      | '}' -> advance (); emit RBRACE
      | '[' -> advance (); emit LBRACKET
      | ']' -> advance (); emit RBRACKET
      | ';' -> advance (); emit SEMI
      | ',' -> advance (); emit COMMA
      | '+' -> advance (); emit PLUS
      | '-' -> advance (); emit MINUS
      | '*' -> advance (); emit STAR
      | '/' -> advance (); emit SLASH
      | '%' -> advance (); emit PERCENT
      | '^' -> advance (); emit CARET
      | '~' -> advance (); emit TILDE
      | '<' ->
        if peek 1 = Some '<' then begin advance (); advance (); emit SHL end
        else two '<' '=' LE LT
      | '>' ->
        if peek 1 = Some '>' then begin advance (); advance (); emit SHR end
        else two '>' '=' GE GT
      | '=' -> two '=' '=' EQEQ ASSIGN
      | '!' -> two '!' '=' NE BANG
      | '&' -> two '&' '&' ANDAND AMP
      | '|' -> two '|' '|' OROR PIPE
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit EOF;
  List.rev !toks
