(** MiniC pretty-printer: renders an AST back to parseable source.

    Used to inspect what the parallelizer generated
    ([lpcc dump --source]) and by the round-trip property test
    (parsing the printed source yields a structurally identical AST).
    Expressions are printed fully parenthesised, so printing never needs
    to reason about precedence. *)

let rec expr_to_string (e : Ast.expr) : string =
  match e.Ast.edesc with
  | Ast.Int_lit n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Ast.Float_lit f ->
    let s = Printf.sprintf "%.17g" f in
    let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
    if f < 0.0 then "(" ^ s ^ ")" else s
  | Ast.Var name -> name
  | Ast.Index (name, idx) -> Printf.sprintf "%s[%s]" name (expr_to_string idx)
  | Ast.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (Ast.binop_to_string op)
      (expr_to_string b)
  | Ast.Unop (op, a) ->
    Printf.sprintf "(%s%s)" (Ast.unop_to_string op) (expr_to_string a)
  | Ast.Cast (ty, a) ->
    Printf.sprintf "%s(%s)" (Ast.ty_to_string ty) (expr_to_string a)
  | Ast.Call (name, args) ->
    Printf.sprintf "%s(%s)" name
      (String.concat ", " (List.map expr_to_string args))

let pragma_to_string (p : Ast.pragma) : string =
  match p.Ast.pargs with
  | [] -> Printf.sprintf "#pragma lp %s" p.Ast.pkey
  | args -> Printf.sprintf "#pragma lp %s(%s)" p.Ast.pkey (String.concat ", " args)

let decl_to_string ty name =
  match ty with
  | Ast.Tarray (elem, n) ->
    Printf.sprintf "%s %s[%d]" (Ast.ty_to_string elem) name n
  | t -> Printf.sprintf "%s %s" (Ast.ty_to_string t) name

(** Statements in "simple" position (for-headers) print without the
    trailing semicolon; [stmt_to_lines] adds it. *)
let rec simple_to_string (s : Ast.stmt) : string =
  match s.Ast.sdesc with
  | Ast.Decl (ty, name, init) ->
    decl_to_string ty name
    ^ (match init with
      | Some e -> " = " ^ expr_to_string e
      | None -> "")
  | Ast.Assign (name, e) -> Printf.sprintf "%s = %s" name (expr_to_string e)
  | Ast.Store (name, idx, e) ->
    Printf.sprintf "%s[%s] = %s" name (expr_to_string idx) (expr_to_string e)
  | Ast.Expr e -> expr_to_string e
  | Ast.If _ | Ast.While _ | Ast.For _ | Ast.Return _ | Ast.Block _ ->
    invalid_arg "Ast_printer: compound statement in simple position"

and stmt_to_lines ~indent (s : Ast.stmt) : string list =
  let pad = String.make indent ' ' in
  let pragmas = List.map (fun p -> pad ^ pragma_to_string p) s.Ast.pragmas in
  let body =
    match s.Ast.sdesc with
    | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Expr _ ->
      [ pad ^ simple_to_string s ^ ";" ]
    | Ast.Return None -> [ pad ^ "return;" ]
    | Ast.Return (Some e) -> [ pad ^ "return " ^ expr_to_string e ^ ";" ]
    | Ast.If (c, a, []) ->
      (pad ^ Printf.sprintf "if (%s) {" (expr_to_string c))
      :: body_to_lines ~indent:(indent + 2) a
      @ [ pad ^ "}" ]
    | Ast.If (c, a, b) ->
      (pad ^ Printf.sprintf "if (%s) {" (expr_to_string c))
      :: body_to_lines ~indent:(indent + 2) a
      @ [ pad ^ "} else {" ]
      @ body_to_lines ~indent:(indent + 2) b
      @ [ pad ^ "}" ]
    | Ast.While (c, body) ->
      (pad ^ Printf.sprintf "while (%s) {" (expr_to_string c))
      :: body_to_lines ~indent:(indent + 2) body
      @ [ pad ^ "}" ]
    | Ast.For (init, c, step, body) ->
      (pad
      ^ Printf.sprintf "for (%s; %s; %s) {" (simple_to_string init)
          (expr_to_string c) (simple_to_string step))
      :: body_to_lines ~indent:(indent + 2) body
      @ [ pad ^ "}" ]
    | Ast.Block body ->
      (pad ^ "{") :: body_to_lines ~indent:(indent + 2) body @ [ pad ^ "}" ]
  in
  pragmas @ body

and body_to_lines ~indent (body : Ast.stmt list) : string list =
  List.concat_map (stmt_to_lines ~indent) body

let func_to_string (f : Ast.func) : string =
  let pragmas = List.map pragma_to_string f.Ast.fpragmas in
  let params =
    String.concat ", "
      (List.map (fun (ty, n) -> Ast.ty_to_string ty ^ " " ^ n) f.Ast.fparams)
  in
  String.concat "\n"
    (pragmas
    @ [ Printf.sprintf "%s %s(%s) {" (Ast.ty_to_string f.Ast.fret) f.Ast.fname
          params ]
    @ body_to_lines ~indent:2 f.Ast.fbody
    @ [ "}" ])

let global_to_string (g : Ast.global) : string =
  decl_to_string g.Ast.gty g.Ast.gname
  ^ (match (g.Ast.gty, g.Ast.ginit) with
    | (Ast.Tarray _, Some xs) ->
      " = {" ^ String.concat ", " (List.map string_of_int xs) ^ "}"
    | (_, Some [ v ]) -> " = " ^ string_of_int v
    | _ -> "")
  ^ ";"

let program_to_string (p : Ast.program) : string =
  String.concat "\n\n"
    (List.map global_to_string p.Ast.globals
    @ List.map func_to_string p.Ast.funcs)
  ^ "\n"
