(** Small statistics helpers used by the benchmark harness and the
    simulator's result reporting. *)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty list"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

(** Geometric mean; every element must be positive. *)
let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty list"
  | _ ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive element";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. float_of_int (List.length xs))

let minimum xs =
  match xs with
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: rest -> List.fold_left min x rest

let maximum xs =
  match xs with
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: rest -> List.fold_left max x rest

(** [percentile p xs] is the [p]-th percentile (0..100) of [xs] using
    linear interpolation between closest ranks. *)
let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then a.(lo)
    else
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

(** Relative change [(after - before) / before], as a percentage.
    Negative means reduction. *)
let percent_change ~before ~after =
  if before = 0.0 then invalid_arg "Stats.percent_change: zero baseline";
  (after -. before) /. before *. 100.0

(** Reduction [(before - after) / before] as a percentage; positive means
    improvement. *)
let percent_reduction ~before ~after = -.percent_change ~before ~after
