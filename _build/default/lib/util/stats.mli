(** Statistics helpers for the benchmark harness and result reporting.
    All functions raise [Invalid_argument] on empty input. *)

val mean : float list -> float

(** Sample variance (n-1 denominator); 0 for lists shorter than 2. *)
val variance : float list -> float

val stddev : float list -> float

(** Geometric mean; every element must be positive. *)
val geomean : float list -> float

val minimum : float list -> float
val maximum : float list -> float

(** [percentile p xs] for [p] in [\[0, 100\]], linear interpolation
    between closest ranks. *)
val percentile : float -> float list -> float

(** [(after - before) / before * 100]; negative means reduction. *)
val percent_change : before:float -> after:float -> float

(** [(before - after) / before * 100]; positive means improvement. *)
val percent_reduction : before:float -> after:float -> float
