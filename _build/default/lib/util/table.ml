(** Plain-text table rendering for the benchmark harness.

    The harness prints every reproduced table/figure as an aligned ASCII
    table so that the output can be diffed between runs and pasted into
    EXPERIMENTS.md. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length header then
        invalid_arg "Table.create: aligns length mismatch";
      a
    | None -> List.map (fun _ -> Left) header
  in
  { title; header; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: row length mismatch";
  t.rows <- row :: t.rows

let rows t = List.rev t.rows

let fmt_float ?(digits = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" digits x

let fmt_int = string_of_int

let fmt_pct ?(digits = 1) x = Printf.sprintf "%.*f%%" digits x

let render t =
  let all = t.header :: rows t in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad align width s =
    let n = width - String.length s in
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    let dashes = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
    "|-" ^ String.concat "-|-" dashes ^ "-|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let print t = print_string (render t); print_newline ()
