(** Monotonic integer id generator.  Each compiler entity family (virtual
    registers, basic blocks, tasks, channels) owns its own generator so ids
    stay small and stable per compilation unit. *)

type t = { mutable next : int }

let create ?(start = 0) () = { next = start }

let fresh t =
  let id = t.next in
  t.next <- id + 1;
  id

let peek t = t.next

let reset t = t.next <- 0
