(** Aligned plain-text table rendering; every reproduced table/figure is
    printed through this module so runs can be diffed textually. *)

type align = Left | Right

type t

(** [create ~title ~header ?aligns ()] starts an empty table.  [aligns]
    defaults to all-[Left] and must match [header] in length. *)
val create : title:string -> header:string list -> ?aligns:align list -> unit -> t

(** Append a row; raises [Invalid_argument] on length mismatch. *)
val add_row : t -> string list -> unit

(** Rows in insertion order. *)
val rows : t -> string list list

(** Cell formatting helpers. *)
val fmt_float : ?digits:int -> float -> string

val fmt_int : int -> string
val fmt_pct : ?digits:int -> float -> string

(** Render with aligned columns, markdown-flavoured separators. *)
val render : t -> string

(** [render] to stdout followed by a newline. *)
val print : t -> unit
