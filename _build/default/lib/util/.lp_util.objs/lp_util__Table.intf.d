lib/util/table.mli:
