lib/util/stats.mli:
