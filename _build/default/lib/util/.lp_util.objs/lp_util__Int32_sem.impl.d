lib/util/int32_sem.ml:
