lib/util/int32_sem.mli:
