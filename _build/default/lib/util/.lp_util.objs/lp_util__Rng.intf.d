lib/util/rng.mli:
