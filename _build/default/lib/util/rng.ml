(** Deterministic pseudo-random number generator.

    All stochastic parts of the reproduction (workload input generation,
    simulated bus jitter, property-test corpora) draw from this
    splitmix64-based generator so that every run of the benchmark harness
    is bit-reproducible.  The OCaml [Random] module is deliberately not
    used anywhere in the repository. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: the constants are from Steele, Lea & Flood,
   "Fast splittable pseudorandom number generators" (OOPSLA 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** [int_in t lo hi] is a uniform integer in the inclusive range
    [\[lo, hi\]]. *)
let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

(** [float t bound] is a uniform float in [\[0, bound)]. *)
let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

(** [bool t] is a fair coin flip. *)
let bool t = int t 2 = 0

(** [choose t xs] picks a uniform element of the non-empty list [xs]. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** [shuffle t xs] is a Fisher-Yates shuffle of [xs]. *)
let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
