(** 32-bit two's-complement semantics shared by the simulator and the
    constant folder; the two must agree bit-for-bit. *)

(** Wrap a host integer to signed 32-bit. *)
val wrap32 : int -> int
