(** Monotonic integer id generator; each compiler entity family (virtual
    registers, blocks, instructions) owns one. *)

type t

val create : ?start:int -> unit -> t

(** Return the next id and advance. *)
val fresh : t -> int

(** Next id that [fresh] would return (= count issued so far when
    starting from 0). *)
val peek : t -> int

val reset : t -> unit
