(** Deterministic splitmix64 pseudo-random number generator.

    Every stochastic part of the repository (workload input generation,
    property-test corpora) draws from this generator, never from the
    OCaml [Random] module, so all runs are bit-reproducible. *)

type t

(** Create a generator from an integer seed. *)
val create : seed:int -> t

(** Independent copy continuing from the same state. *)
val copy : t -> t

(** Raw 64-bit step. *)
val next_int64 : t -> int64

(** Uniform integer in [\[0, bound)]; [bound] must be positive. *)
val int : t -> int -> int

(** Uniform integer in the inclusive range [\[lo, hi\]]. *)
val int_in : t -> int -> int -> int

(** Uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** Fair coin flip. *)
val bool : t -> bool

(** Uniform element of a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Fisher-Yates shuffle. *)
val shuffle : t -> 'a list -> 'a list
