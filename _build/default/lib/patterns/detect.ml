(** Design-pattern detection over MiniC functions.

    Candidate loops are canonical counted loops
    [for (int i = lo; i < hi; i = i + 1) body].  A loop becomes a pattern
    instance either because the programmer annotated it
    ([#pragma lp pattern(doall|reduction|farm|pipeline|prodcons)]) — in
    which case the annotation is {e verified}, never trusted blindly — or
    because the safety analysis can infer a pattern without help
    (doall / reduction / farm).  Pipelines must be annotated because the
    stage split is a design decision, not an analysis result. *)

module Ast = Lp_lang.Ast
module SS = Set.Make (String)
open Pattern

type tenv = (string * Ast.ty) list  (** in-scope variables, innermost first *)

let lookup_ty (env : tenv) name = List.assoc_opt name env

(* ------------------------------------------------------------------ *)
(* Canonical loop shape                                                *)
(* ------------------------------------------------------------------ *)

let canonical_loop (s : Ast.stmt) : counted_loop option =
  match s.Ast.sdesc with
  | Ast.For (init, cond, step, body) -> (
    match (init.Ast.sdesc, cond.Ast.edesc, step.Ast.sdesc) with
    | ( Ast.Decl (Ast.Tint, iv, Some lo),
        Ast.Binop (Ast.Lt, { edesc = Ast.Var civ; _ }, hi),
        Ast.Assign
          ( siv,
            { edesc =
                Ast.Binop
                  (Ast.Add, { edesc = Ast.Var biv; _ }, { edesc = Ast.Int_lit 1; _ });
              _ } ) )
      when civ = iv && siv = iv && biv = iv ->
      Some { iv; lo; hi; body; loop_pragmas = s.Ast.pragmas }
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Safety conditions                                                   *)
(* ------------------------------------------------------------------ *)

let written_arrays (acc : Accesses.t) =
  List.fold_left (fun s (n, _) -> SS.add n s) SS.empty acc.Accesses.array_writes

(** Core doall safety; [allow_acc] names a scalar allowed to be written
    (the reduction accumulator). *)
let doall_safety ~(effects : Effects.t) ~(globals : SS.t) ~(env : tenv)
    ~(loop : counted_loop) ?(allow_acc = None) ?(trusted = false) () :
    string option =
  let acc = Accesses.collect ~iv:loop.iv loop.body in
  let wa = written_arrays acc in
  if acc.Accesses.has_intrinsics then Some "body uses runtime intrinsics"
  else if
    not (SS.for_all (fun c -> Effects.call_replicable effects c) acc.Accesses.calls)
  then Some "body calls a function with global side effects"
  else if
    (* callee reads must not overlap arrays written here *)
    not
      (SS.for_all
         (fun c ->
           SS.is_empty
             (SS.inter (Effects.func_effects effects c).Effects.reads wa))
         acc.Accesses.calls)
  then Some "a callee reads an array the loop writes"
  else begin
    let bad_scalar =
      SS.filter
        (fun n -> match allow_acc with Some (a, _) -> n <> a | None -> true)
        acc.Accesses.scalar_writes
    in
    if not (SS.is_empty bad_scalar) then
      Some
        (Printf.sprintf "loop-carried scalar %s" (SS.choose bad_scalar))
    else begin
      (* outer arrays must be globals *)
      let all_arrays =
        SS.union wa
          (List.fold_left
             (fun s (n, _) -> SS.add n s)
             SS.empty acc.Accesses.array_reads)
      in
      let non_global = SS.filter (fun n -> not (SS.mem n globals)) all_arrays in
      if not (SS.is_empty non_global) then
        Some
          (Printf.sprintf "array %s is not in shared memory"
             (SS.choose non_global))
      else begin
        (* every access to a written array must be exactly a[iv] — unless
           the programmer asserted independence with the [trust] argument *)
        let offending =
          if trusted then None
          else
            List.find_opt
              (fun (n, cls) ->
                SS.mem n wa
                && match cls with Accesses.Exact_iv -> false | _ -> true)
              (acc.Accesses.array_writes @ acc.Accesses.array_reads)
        in
        match offending with
        | Some (n, _) ->
          Some (Printf.sprintf "array %s accessed at a non-iv index" n)
        | None ->
          (* bounds must not depend on anything the body writes *)
          let written =
            SS.union acc.Accesses.scalar_writes acc.Accesses.decls
          in
          if
            Accesses.mentions written loop.lo
            || Accesses.mentions written loop.hi
          then Some "loop bounds depend on values written in the body"
          else begin
            (* invariants must be scalars with known types *)
            let bad_inv =
              (fun pred s -> List.find_opt pred (SS.elements s))
                (fun n ->
                  match lookup_ty env n with
                  | Some (Ast.Tint | Ast.Tfloat) -> false
                  | Some _ -> true
                  | None -> not (SS.mem n globals))
                acc.Accesses.scalar_reads
            in
            match bad_inv with
            | Some n ->
              Some (Printf.sprintf "free variable %s is not shippable" n)
            | None -> None
          end
      end
    end
  end

(** Recognise a reduction: exactly one top-level reduction statement over
    an outer scalar [acc] —
    either [acc = acc op e] (with [e] not mentioning [acc]), or the
    guarded extremum update [if (x > acc) acc = x;] / [if (x < acc)
    acc = x;].  Any other mention of [acc] in the body disqualifies the
    loop (the partial results would not compose). *)
let find_reduction ~(env : tenv) (loop : counted_loop) :
    (string * Ast.ty * reduction_op) option =
  let acc_candidates = ref [] in
  let rec scan (s : Ast.stmt) =
    (match s.Ast.sdesc with
    | Ast.Assign (name, { edesc = Ast.Binop (op, { edesc = Ast.Var n; _ }, e); _ })
      when n = name && not (Accesses.mentions (SS.singleton name) e) -> (
      match (op, lookup_ty env name) with
      | (Ast.Add, Some Ast.Tint) -> acc_candidates := (name, Ast.Tint, Rsum_int, s) :: !acc_candidates
      | (Ast.Add, Some Ast.Tfloat) ->
        acc_candidates := (name, Ast.Tfloat, Rsum_float, s) :: !acc_candidates
      | (Ast.Bxor, Some Ast.Tint) -> acc_candidates := (name, Ast.Tint, Rxor, s) :: !acc_candidates
      | _ -> ())
    | Ast.If
        ( { edesc = Ast.Binop (cmp, { edesc = Ast.Var x; _ },
                               { edesc = Ast.Var name; _ }); _ },
          [ { Ast.sdesc = Ast.Assign (name', { edesc = Ast.Var x'; _ }); _ } ],
          [] )
      when name' = name && x' = x && x <> name -> (
      match (cmp, lookup_ty env name) with
      | (Ast.Gt, Some Ast.Tint) -> acc_candidates := (name, Ast.Tint, Rmax, s) :: !acc_candidates
      | (Ast.Lt, Some Ast.Tint) -> acc_candidates := (name, Ast.Tint, Rmin, s) :: !acc_candidates
      | _ -> ())
    | _ -> ());
    (* recurse, but not into a statement already recognised as the
       reduction itself *)
    if not (List.exists (fun (_, _, _, rs) -> rs == s) !acc_candidates) then
      match s.Ast.sdesc with
      | Ast.If (_, a, b) -> List.iter scan (a @ b)
      | Ast.Block body | Ast.While (_, body) -> List.iter scan body
      | Ast.For (_, _, _, body) -> List.iter scan body
      | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Return _ | Ast.Expr _
        -> ()
  in
  List.iter scan loop.body;
  match !acc_candidates with
  | [ (name, ty, op, red_stmt) ] ->
    (* the accumulator must not be written or read anywhere else *)
    let acc = Accesses.collect ~iv:loop.iv loop.body in
    let writes_only_acc =
      SS.equal acc.Accesses.scalar_writes (SS.singleton name)
    in
    (* count statements (other than the reduction) whose expressions
       mention the accumulator *)
    let mentions_elsewhere = ref false in
    let rec scan_other (s : Ast.stmt) =
      if s != red_stmt then begin
        (match s.Ast.sdesc with
        | Ast.Decl (_, _, Some e) | Ast.Assign (_, e) | Ast.Return (Some e)
        | Ast.Expr e ->
          if Accesses.mentions (SS.singleton name) e then
            mentions_elsewhere := true
        | Ast.Store (_, idx, e) ->
          if
            Accesses.mentions (SS.singleton name) idx
            || Accesses.mentions (SS.singleton name) e
          then mentions_elsewhere := true
        | Ast.If (c, a, b) ->
          if Accesses.mentions (SS.singleton name) c then
            mentions_elsewhere := true;
          List.iter scan_other (a @ b)
        | Ast.While (c, body) ->
          if Accesses.mentions (SS.singleton name) c then
            mentions_elsewhere := true;
          List.iter scan_other body
        | Ast.For (i, c, st, body) ->
          if Accesses.mentions (SS.singleton name) c then
            mentions_elsewhere := true;
          List.iter scan_other (i :: st :: body)
        | Ast.Block body -> List.iter scan_other body
        | Ast.Decl (_, _, None) | Ast.Return None -> ())
      end
    in
    List.iter scan_other loop.body;
    if writes_only_acc && not !mentions_elsewhere then Some (name, ty, op)
    else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Pipelines                                                           *)
(* ------------------------------------------------------------------ *)

(** Split the body into stages at [#pragma lp stage] markers; the first
    statement implicitly starts stage 0. *)
let split_stages (body : Ast.stmt list) : Ast.stmt list list =
  let groups = ref [] and cur = ref [] in
  List.iteri
    (fun i s ->
      let marked = Ast.find_pragma ~key:"stage" s.Ast.pragmas <> None in
      if marked && i > 0 then begin
        groups := List.rev !cur :: !groups;
        cur := [ s ]
      end
      else cur := s :: !cur)
    body;
  groups := List.rev !cur :: !groups;
  List.rev !groups

let pipeline_safety ~(effects : Effects.t) ~(globals : SS.t) ~(env : tenv)
    ~(loop : counted_loop) ?(trusted = false) (stages : Ast.stmt list list) :
    string option =
  if List.length stages < 2 then Some "pipeline needs at least 2 stages"
  else begin
    let per_stage = List.map (Accesses.collect ~iv:loop.iv) stages in
    let stage_writes = List.map written_arrays per_stage in
    (* pairwise disjoint writes *)
    let rec disjoint = function
      | [] -> true
      | w :: rest ->
        List.for_all (fun w' -> SS.is_empty (SS.inter w w')) rest
        && disjoint rest
    in
    if not (disjoint stage_writes) then Some "two stages write the same array"
    else begin
      let exception Reject of string in
      try
        List.iteri
          (fun s (acc : Accesses.t) ->
            if acc.Accesses.has_intrinsics then
              raise (Reject "stage uses runtime intrinsics");
            SS.iter
              (fun c ->
                if not (Effects.call_replicable effects c) then
                  raise (Reject "stage calls an impure function"))
              acc.Accesses.calls;
            if not (SS.is_empty acc.Accesses.scalar_writes) then
              raise
                (Reject
                   (Printf.sprintf "stage writes outer scalar %s"
                      (SS.choose acc.Accesses.scalar_writes)));
            (* all referenced outer arrays must be global *)
            List.iter
              (fun (n, _) ->
                if not (SS.mem n globals) then
                  raise (Reject (Printf.sprintf "array %s not shared" n)))
              (acc.Accesses.array_writes @ acc.Accesses.array_reads);
            (* writes at exactly iv (unless trusted) *)
            if not trusted then
              List.iter
                (fun (n, cls) ->
                  if cls <> Accesses.Exact_iv then
                    raise
                      (Reject (Printf.sprintf "stage writes %s at non-iv index" n)))
                acc.Accesses.array_writes;
            (* reads of arrays written by this or earlier stages: iv or
               iv-c (already produced); reads of later stages' arrays are
               backward dependences *)
            let earlier =
              List.filteri (fun k _ -> k <= s) stage_writes
              |> List.fold_left SS.union SS.empty
            in
            let later =
              List.filteri (fun k _ -> k > s) stage_writes
              |> List.fold_left SS.union SS.empty
            in
            List.iter
              (fun (n, cls) ->
                if SS.mem n later then
                  raise
                    (Reject
                       (Printf.sprintf "stage reads %s written by a later stage" n))
                else if SS.mem n earlier && not trusted then
                  match cls with
                  | Accesses.Exact_iv -> ()
                  | Accesses.Iv_offset c when c <= 0 -> ()
                  | _ ->
                    raise
                      (Reject
                         (Printf.sprintf "stage reads %s ahead of production" n)))
              acc.Accesses.array_reads;
            (* stage-local scalars must not leak into later stages *)
            let my_decls = acc.Accesses.decls in
            List.iteri
              (fun k (acc' : Accesses.t) ->
                if k > s then begin
                  let used =
                    SS.union acc'.Accesses.scalar_reads
                      acc'.Accesses.scalar_writes
                  in
                  let leaked = SS.inter my_decls used in
                  if not (SS.is_empty leaked) then
                    raise
                      (Reject
                         (Printf.sprintf "scalar %s crosses stage boundary"
                            (SS.choose leaked)))
                end)
              per_stage)
          per_stage;
        (* bounds invariance and invariant shippability as in doall *)
        let acc = Accesses.collect ~iv:loop.iv loop.body in
        let written = SS.union acc.Accesses.scalar_writes acc.Accesses.decls in
        if Accesses.mentions written loop.lo || Accesses.mentions written loop.hi
        then Some "loop bounds depend on values written in the body"
        else begin
          let bad_inv =
            (fun pred s -> List.find_opt pred (SS.elements s))
              (fun n ->
                match lookup_ty env n with
                | Some (Ast.Tint | Ast.Tfloat) -> false
                | Some _ -> true
                | None -> not (SS.mem n globals))
              acc.Accesses.scalar_reads
          in
          match bad_inv with
          | Some n -> Some (Printf.sprintf "free variable %s is not shippable" n)
          | None -> None
        end
      with Reject msg -> Some msg
    end
  end

(* ------------------------------------------------------------------ *)
(* Invariants (read-only scalars shipped to workers)                   *)
(* ------------------------------------------------------------------ *)

let invariants_of ~(globals : SS.t) ~(env : tenv) (loop : counted_loop)
    ~(exclude : string option) : (string * Ast.ty) list =
  let acc = Accesses.collect ~iv:loop.iv loop.body in
  SS.elements acc.Accesses.scalar_reads
  |> List.filter_map (fun n ->
         if Some n = exclude then None
         else if SS.mem n globals then None (* globals stay in shared memory *)
         else
           match lookup_ty env n with
           | Some ((Ast.Tint | Ast.Tfloat) as ty) -> Some (n, ty)
           | Some _ | None -> None)

(* ------------------------------------------------------------------ *)
(* Main detection walk                                                 *)
(* ------------------------------------------------------------------ *)

let parse_chunk_opt (pargs : string list) : int option =
  List.fold_left
    (fun acc a ->
      match String.index_opt a '=' with
      | Some k when String.sub a 0 k = "chunk" ->
        (try Some (int_of_string (String.sub a (k + 1) (String.length a - k - 1)))
         with Failure _ -> acc)
      | _ -> acc)
    None pargs

let requested_kind (p : Ast.pragma) : string option =
  if p.Ast.pkey = "pattern" then
    match p.Ast.pargs with name :: _ -> Some name | [] -> None
  else None

type state = {
  effects : Effects.t;
  globals : SS.t;
  mutable next_id : int;
  mutable instances : instance list;
  mutable rejections : rejection list;
  mutable candidates : int;
}

let pragma_trusted (pargs : string list) = List.mem "trust" pargs

let classify st ~fname ~env (s : Ast.stmt) (loop : counted_loop) : bool =
  st.candidates <- st.candidates + 1;
  let accepted = ref false in
  let requested =
    List.fold_left
      (fun acc p -> match requested_kind p with Some k -> Some (k, p) | None -> acc)
      None s.Ast.pragmas
  in
  let reject reason =
    st.rejections <-
      { rej_func = fname; rej_reason = reason;
        rej_requested = Option.map fst requested }
      :: st.rejections
  in
  (* self-scheduling granularity for farms when the programmer gave no
     chunk: amortise the fetch-and-add (tens of cycles) over roughly an
     order of magnitude more work, bounded so the space still splits *)
  let auto_chunk loop =
    let weight = max 1 (Ast_weight.body_weight loop.body) in
    max 1 (min 32 (600 / weight))
  in
  let accept ?(stages = []) ?acc_var ?acc_ty ?chunk ~origin kind =
    accepted := true;
    let chunk =
      match (chunk, kind) with
      | (Some c, _) -> c
      | (None, Farm) -> auto_chunk loop
      | (None, _) -> 1
    in
    let exclude = acc_var in
    let invariants = invariants_of ~globals:st.globals ~env loop ~exclude in
    let id = st.next_id in
    st.next_id <- id + 1;
    st.instances <-
      { id; kind; origin; in_func = fname; loop_stmt = s; loop; stages;
        acc_var; acc_ty; invariants; chunk }
      :: st.instances
  in
  let verify_doall_like ~origin kind ?chunk ~trusted () =
    match
      doall_safety ~effects:st.effects ~globals:st.globals ~env ~loop ~trusted
        ()
    with
    | None -> accept ~origin ?chunk kind
    | Some reason -> reject reason
  in
  let verify_reduction ~origin =
    match find_reduction ~env loop with
    | None -> reject "no reduction accumulator found"
    | Some (name, ty, op) -> (
      match
        doall_safety ~effects:st.effects ~globals:st.globals ~env ~loop
          ~allow_acc:(Some (name, ty)) ()
      with
      | None -> accept ~origin ~acc_var:name ~acc_ty:ty (Reduction op)
      | Some reason -> reject reason)
  in
  let verify_pipeline ~origin ~prodcons ~trusted =
    let stages = split_stages loop.body in
    match
      pipeline_safety ~effects:st.effects ~globals:st.globals ~env ~loop
        ~trusted stages
    with
    | Some reason -> reject reason
    | None ->
      let n = List.length stages in
      if prodcons && n <> 2 then reject "prodcons requires exactly 2 stages"
      else
        accept ~origin ~stages
          (if prodcons then Prodcons else Pipeline n)
  in
  (match requested with
  | Some ("doall", p) ->
    verify_doall_like ~origin:Annotated Doall
      ~trusted:(pragma_trusted p.Ast.pargs) ()
  | Some ("farm", p) ->
    (match parse_chunk_opt p.Ast.pargs with
    | Some c ->
      verify_doall_like ~origin:Annotated Farm ~chunk:c
        ~trusted:(pragma_trusted p.Ast.pargs) ()
    | None ->
      verify_doall_like ~origin:Annotated Farm
        ~trusted:(pragma_trusted p.Ast.pargs) ())
  | Some ("reduction", _) -> verify_reduction ~origin:Annotated
  | Some ("pipeline", p) ->
    verify_pipeline ~origin:Annotated ~prodcons:false
      ~trusted:(pragma_trusted p.Ast.pargs)
  | Some ("prodcons", p) ->
    verify_pipeline ~origin:Annotated ~prodcons:true
      ~trusted:(pragma_trusted p.Ast.pargs)
  | Some (other, _) -> reject (Printf.sprintf "unknown pattern %S" other)
  | None -> (
    (* inference: reduction first, then doall/farm; failures are recorded
       so the detection report explains why a loop stayed sequential *)
    match find_reduction ~env loop with
    | Some (name, ty, op) -> (
      match
        doall_safety ~effects:st.effects ~globals:st.globals ~env ~loop
          ~allow_acc:(Some (name, ty)) ()
      with
      | None -> accept ~origin:Inferred ~acc_var:name ~acc_ty:ty (Reduction op)
      | Some reason -> reject reason)
    | None -> (
      match
        doall_safety ~effects:st.effects ~globals:st.globals ~env ~loop ()
      with
      | None ->
        accept ~origin:Inferred
          (if Accesses.irregular loop.body then Farm else Doall)
      | Some reason -> reject reason)));
  !accepted

(** Walk statements maintaining the type environment; only outermost
    canonical loops are considered (nested loops belong to their parent's
    body). *)
let rec walk_stmts st ~fname ~env stmts : tenv =
  List.fold_left
    (fun env (s : Ast.stmt) ->
      (match canonical_loop s with
      | Some loop ->
        (* a loop that did not become a pattern may still contain one *)
        if not (classify st ~fname ~env s loop) then
          ignore
            (walk_stmts st ~fname
               ~env:((loop.iv, Ast.Tint) :: env)
               loop.body)
      | None -> (
        match s.Ast.sdesc with
        | Ast.If (_, a, b) ->
          ignore (walk_stmts st ~fname ~env a);
          ignore (walk_stmts st ~fname ~env b)
        | Ast.While (_, body) | Ast.For (_, _, _, body) ->
          ignore (walk_stmts st ~fname ~env body)
        | Ast.Block body -> ignore (walk_stmts st ~fname ~env body)
        | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Return _ | Ast.Expr _
          -> ()));
      match s.Ast.sdesc with
      | Ast.Decl (ty, name, _) -> (name, ty) :: env
      | _ -> env)
    env stmts

let detect (p : Ast.program) : report =
  let effects = Effects.analyse p in
  let globals =
    List.fold_left (fun acc g -> SS.add g.Ast.gname acc) SS.empty p.Ast.globals
  in
  let st =
    { effects; globals; next_id = 0; instances = []; rejections = [];
      candidates = 0 }
  in
  List.iter
    (fun (f : Ast.func) ->
      let env = List.map (fun (ty, n) -> (n, ty)) f.Ast.fparams in
      ignore (walk_stmts st ~fname:f.Ast.fname ~env f.Ast.fbody))
    p.Ast.funcs;
  {
    instances = List.rev st.instances;
    rejections = List.rev st.rejections;
    candidate_loops = st.candidates;
  }
