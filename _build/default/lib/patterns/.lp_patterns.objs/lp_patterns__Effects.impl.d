lib/patterns/effects.ml: Hashtbl List Lp_lang Set String
