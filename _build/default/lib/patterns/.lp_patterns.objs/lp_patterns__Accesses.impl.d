lib/patterns/accesses.ml: Effects List Lp_lang Option Set String
