lib/patterns/detect.ml: Accesses Ast_weight Effects List Lp_lang Option Pattern Printf Set String
