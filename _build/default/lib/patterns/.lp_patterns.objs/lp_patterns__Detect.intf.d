lib/patterns/detect.mli: Effects Lp_lang Pattern Set String
