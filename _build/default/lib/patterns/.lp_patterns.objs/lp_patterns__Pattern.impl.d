lib/patterns/pattern.ml: Lp_lang Printf
