lib/patterns/ast_weight.ml: Array List Lp_lang
