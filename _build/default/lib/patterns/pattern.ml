(** The low-power design-pattern catalog.

    Each pattern is both a parallel structure (how the loop maps onto
    cores) and a power structure (what idleness it exposes for the
    power-management passes):

    - {b Doall}: independent iterations, static block distribution; the
      power hook is per-core component gating (each slice only exercises
      the components its code needs).
    - {b Reduction}: doall plus a privatisable accumulator combined by the
      master.
    - {b Farm} (master/worker with self-scheduling): irregular iterations
      pulled from a shared counter; the power hook is that starved workers
      idle at the counter rather than spinning on work.
    - {b Pipeline}: stages on dedicated cores connected by token channels;
      the power hook is stage balancing — non-bottleneck stages are
      DVFS-ed down to the bottleneck's service rate.
    - {b Prodcons}: the two-stage specialisation of pipeline (producer /
      consumer through a bounded buffer). *)

module Ast = Lp_lang.Ast

type reduction_op = Rsum_int | Rsum_float | Rxor | Rmax | Rmin
(** Supported reduction combiners: [+] on int/float, [^] on int, and
    guarded max/min updates ([if (x > acc) acc = x;]) on int. *)

type kind =
  | Doall
  | Reduction of reduction_op
  | Farm
  | Pipeline of int  (** number of stages *)
  | Prodcons

let kind_name = function
  | Doall -> "doall"
  | Reduction Rsum_int -> "reduction(+)"
  | Reduction Rsum_float -> "reduction(+f)"
  | Reduction Rxor -> "reduction(^)"
  | Reduction Rmax -> "reduction(max)"
  | Reduction Rmin -> "reduction(min)"
  | Farm -> "farm"
  | Pipeline n -> Printf.sprintf "pipeline(%d)" n
  | Prodcons -> "prodcons"

(** Canonical counted loop recognised by the detectors:
    [for (int iv = lo; iv < hi; iv = iv + 1) body]. *)
type counted_loop = {
  iv : string;
  lo : Ast.expr;
  hi : Ast.expr;
  body : Ast.stmt list;
  loop_pragmas : Ast.pragma list;
}

type origin = Annotated | Inferred

(** A pattern instance found in a function. *)
type instance = {
  id : int;                       (** unique per compilation *)
  kind : kind;
  origin : origin;
  in_func : string;
  loop_stmt : Ast.stmt;           (** the For statement (physical identity,
                                      used by the parallelizer to find the
                                      site to rewrite) *)
  loop : counted_loop;
  stages : Ast.stmt list list;    (** pipeline/prodcons stage bodies *)
  acc_var : string option;        (** reduction accumulator *)
  acc_ty : Ast.ty option;
  invariants : (string * Ast.ty) list;
      (** read-only scalars the body needs, to be shipped to workers *)
  chunk : int;                    (** farm chunk size *)
}

(** Why a candidate loop was rejected — surfaced in the detection report
    (table T2). *)
type rejection = {
  rej_func : string;
  rej_reason : string;
  rej_requested : string option;  (** the annotated pattern, if any *)
}

type report = {
  instances : instance list;
  rejections : rejection list;
  candidate_loops : int;  (** canonical counted loops examined *)
}
