(** Design-pattern detection over MiniC programs.

    Candidates are canonical counted loops
    [for (int i = lo; i < hi; i = i + 1) body].  Annotated loops are
    {e verified} (a failing annotation is rejected with a reason, never
    trusted); unannotated loops are classified by inference where the
    safety analysis can prove independence (doall / reduction / farm).
    Pipelines must be annotated: the stage split is a design decision.

    The [trust] pragma argument relaxes only the array-index discipline
    (for block indexing such as [a\[i*16 + k\]]); every other check still
    applies. *)

module Ast = Lp_lang.Ast

type tenv = (string * Ast.ty) list
(** In-scope variable types, innermost first (exposed for tests). *)

(** Recognise the canonical counted-loop shape. *)
val canonical_loop : Ast.stmt -> Pattern.counted_loop option

(** Doall safety analysis; [None] means safe, [Some reason] otherwise.
    [allow_acc] names a scalar allowed to be written (the reduction
    accumulator); [trusted] skips the index discipline. *)
val doall_safety :
  effects:Effects.t ->
  globals:Set.Make(String).t ->
  env:tenv ->
  loop:Pattern.counted_loop ->
  ?allow_acc:(string * Ast.ty) option ->
  ?trusted:bool ->
  unit ->
  string option

(** Recognise the loop's reduction statement, if any: [acc = acc + e],
    [acc = acc ^ e], or the guarded extremum updates
    [if (x > acc) acc = x;] / [if (x < acc) acc = x;].  The accumulator
    must not appear anywhere else in the body. *)
val find_reduction :
  env:tenv ->
  Pattern.counted_loop ->
  (string * Ast.ty * Pattern.reduction_op) option

(** Split a pipeline body at [#pragma lp stage] markers (the first
    statement opens stage 0). *)
val split_stages : Ast.stmt list -> Ast.stmt list list

(** Run detection over a type-checked program. *)
val detect : Ast.program -> Pattern.report
