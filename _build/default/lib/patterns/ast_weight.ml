(** Static AST-level work estimation.

    Used by the parallelizer to partition pipeline stages across cores
    when there are more stages than cores (stage fusion): the partition
    minimises the heaviest fused stage.  The weights mirror the IR
    latency model closely enough to rank stage bodies. *)

module Ast = Lp_lang.Ast

let binop_weight = function
  | Ast.Mul -> 2
  | Ast.Div | Ast.Mod -> 10
  | Ast.Add | Ast.Sub | Ast.Shl | Ast.Shr | Ast.Band | Ast.Bor | Ast.Bxor
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Land | Ast.Lor
    -> 1

(** Default trip assumption for loops whose bounds are not literal. *)
let default_trip = 8

let rec expr_weight (e : Ast.expr) : int =
  match e.Ast.edesc with
  | Ast.Int_lit _ | Ast.Float_lit _ -> 0
  | Ast.Var _ -> 0
  | Ast.Index (_, idx) -> 3 + expr_weight idx (* memory access *)
  | Ast.Binop (op, a, b) -> binop_weight op + expr_weight a + expr_weight b
  | Ast.Unop (_, a) -> 1 + expr_weight a
  | Ast.Cast (_, a) -> 2 + expr_weight a
  | Ast.Call (_, args) ->
    (* callee body unknown here; charge call overhead plus arguments *)
    5 + List.fold_left (fun acc a -> acc + expr_weight a) 0 args

let literal_trip (lo : Ast.expr) (hi : Ast.expr) : int option =
  match (lo.Ast.edesc, hi.Ast.edesc) with
  | (Ast.Int_lit a, Ast.Int_lit b) when b > a -> Some (b - a)
  | _ -> None

let rec stmt_weight (s : Ast.stmt) : int =
  match s.Ast.sdesc with
  | Ast.Decl (_, _, init) ->
    1 + (match init with Some e -> expr_weight e | None -> 0)
  | Ast.Assign (_, e) -> 1 + expr_weight e
  | Ast.Store (_, idx, e) -> 3 + expr_weight idx + expr_weight e
  | Ast.If (c, a, b) ->
    (* charge the average arm: branches even out over iterations *)
    let wa = body_weight a and wb = body_weight b in
    1 + expr_weight c + ((wa + wb + 1) / 2)
  | Ast.While (c, body) ->
    default_trip * (1 + expr_weight c + body_weight body)
  | Ast.For (init, c, step, body) ->
    let trip =
      match (init.Ast.sdesc, c.Ast.edesc) with
      | (Ast.Decl (_, _, Some lo), Ast.Binop (Ast.Lt, _, hi)) -> (
        match literal_trip lo hi with Some t -> t | None -> default_trip)
      | _ -> default_trip
    in
    stmt_weight init
    + (trip * (1 + expr_weight c + stmt_weight step + body_weight body))
  | Ast.Return (Some e) -> 1 + expr_weight e
  | Ast.Return None -> 1
  | Ast.Expr e -> expr_weight e
  | Ast.Block body -> body_weight body

and body_weight (body : Ast.stmt list) : int =
  List.fold_left (fun acc s -> acc + stmt_weight s) 0 body

(* ------------------------------------------------------------------ *)
(* Min-bottleneck contiguous partition                                 *)
(* ------------------------------------------------------------------ *)

(** [partition ~groups weights] splits the sequence [weights] into at
    most [groups] contiguous groups minimising the maximum group sum.
    Returns the group boundaries as a list of index lists.  Classic
    O(n^2 * g) dynamic program — stage counts are tiny. *)
let partition ~groups (weights : int list) : int list list =
  let w = Array.of_list weights in
  let n = Array.length w in
  if n = 0 then []
  else begin
    let groups = max 1 (min groups n) in
    let prefix = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      prefix.(i + 1) <- prefix.(i) + w.(i)
    done;
    let seg i j = prefix.(j) - prefix.(i) in
    (* best.(g).(j) = minimal bottleneck splitting the first j items into
       exactly g groups; cut.(g).(j) = where the last group starts *)
    let inf = max_int / 2 in
    let best = Array.make_matrix (groups + 1) (n + 1) inf in
    let cut = Array.make_matrix (groups + 1) (n + 1) 0 in
    best.(0).(0) <- 0;
    for g = 1 to groups do
      for j = 1 to n do
        for i = g - 1 to j - 1 do
          let cand = max best.(g - 1).(i) (seg i j) in
          if cand < best.(g).(j) then begin
            best.(g).(j) <- cand;
            cut.(g).(j) <- i
          end
        done
      done
    done;
    (* use exactly the group count that minimises the bottleneck (fewer
       groups can never beat more, but guard anyway) *)
    let g_best = ref groups in
    for g = 1 to groups do
      if best.(g).(n) < best.(!g_best).(n) then g_best := g
    done;
    let rec unwind g j acc =
      if g = 0 then acc
      else begin
        let i = cut.(g).(j) in
        let group = List.init (j - i) (fun k -> i + k) in
        unwind (g - 1) i (group :: acc)
      end
    in
    unwind !g_best n []
  end
