(** AST-level side-effect analysis of functions.

    Computes, transitively over the call graph, which globals each
    function reads and writes and whether it uses runtime intrinsics.
    The pattern detectors use this to decide whether a call inside a
    candidate loop is safe to replicate across cores. *)

module Ast = Lp_lang.Ast
module SS = Set.Make (String)

type effect_set = {
  reads : SS.t;        (** globals possibly read *)
  writes : SS.t;       (** globals possibly written *)
  intrinsics : bool;   (** uses __send/__recv/__barrier/__faa *)
  unknown_calls : bool;  (** calls a function we cannot resolve *)
}

let empty =
  { reads = SS.empty; writes = SS.empty; intrinsics = false; unknown_calls = false }

let union a b =
  {
    reads = SS.union a.reads b.reads;
    writes = SS.union a.writes b.writes;
    intrinsics = a.intrinsics || b.intrinsics;
    unknown_calls = a.unknown_calls || b.unknown_calls;
  }

let is_intrinsic name =
  List.mem name [ "__send"; "__sendf"; "__recv"; "__recvf"; "__barrier"; "__faa" ]

type t = {
  globals : SS.t;
  table : (string, effect_set) Hashtbl.t;
}

(** Names locally bound (params or decls) shadow globals. *)
let rec expr_effects t ~locals (e : Ast.expr) : effect_set =
  match e.Ast.edesc with
  | Ast.Int_lit _ | Ast.Float_lit _ -> empty
  | Ast.Var name ->
    if (not (SS.mem name locals)) && SS.mem name t.globals then
      { empty with reads = SS.singleton name }
    else empty
  | Ast.Index (name, idx) ->
    let base =
      if (not (SS.mem name locals)) && SS.mem name t.globals then
        { empty with reads = SS.singleton name }
      else empty
    in
    union base (expr_effects t ~locals idx)
  | Ast.Binop (_, a, b) ->
    union (expr_effects t ~locals a) (expr_effects t ~locals b)
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> expr_effects t ~locals a
  | Ast.Call (name, args) ->
    let arg_eff =
      List.fold_left
        (fun acc a -> union acc (expr_effects t ~locals a))
        empty args
    in
    if is_intrinsic name then { arg_eff with intrinsics = true }
    else (
      match Hashtbl.find_opt t.table name with
      | Some fe -> union arg_eff fe
      | None -> { arg_eff with unknown_calls = true })

let rec stmt_effects t ~locals (s : Ast.stmt) : effect_set * SS.t =
  match s.Ast.sdesc with
  | Ast.Decl (_, name, init) ->
    let eff =
      match init with Some e -> expr_effects t ~locals e | None -> empty
    in
    (eff, SS.add name locals)
  | Ast.Assign (name, e) ->
    let w =
      if (not (SS.mem name locals)) && SS.mem name t.globals then
        { empty with writes = SS.singleton name }
      else empty
    in
    (union w (expr_effects t ~locals e), locals)
  | Ast.Store (name, idx, e) ->
    let w =
      if (not (SS.mem name locals)) && SS.mem name t.globals then
        { empty with writes = SS.singleton name }
      else empty
    in
    ( union w (union (expr_effects t ~locals idx) (expr_effects t ~locals e)),
      locals )
  | Ast.If (c, a, b) ->
    let eff_c = expr_effects t ~locals c in
    (union eff_c (union (body_effects t ~locals a) (body_effects t ~locals b)), locals)
  | Ast.While (c, body) ->
    (union (expr_effects t ~locals c) (body_effects t ~locals body), locals)
  | Ast.For (init, c, step, body) ->
    let (eff_i, locals') = stmt_effects t ~locals init in
    let eff =
      union eff_i
        (union
           (expr_effects t ~locals:locals' c)
           (union
              (fst (stmt_effects t ~locals:locals' step))
              (body_effects t ~locals:locals' body)))
    in
    (eff, locals)
  | Ast.Return (Some e) | Ast.Expr e -> (expr_effects t ~locals e, locals)
  | Ast.Return None -> (empty, locals)
  | Ast.Block body -> (body_effects t ~locals body, locals)

and body_effects t ~locals (body : Ast.stmt list) : effect_set =
  let (eff, _) =
    List.fold_left
      (fun (acc, locals) s ->
        let (e, locals') = stmt_effects t ~locals s in
        (union acc e, locals'))
      (empty, locals) body
  in
  eff

(** Build the transitive effect table for a program. *)
let analyse (p : Ast.program) : t =
  let globals =
    List.fold_left (fun acc g -> SS.add g.Ast.gname acc) SS.empty p.Ast.globals
  in
  let t = { globals; table = Hashtbl.create 16 } in
  List.iter (fun f -> Hashtbl.replace t.table f.Ast.fname empty) p.Ast.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ast.func) ->
        let locals =
          List.fold_left (fun acc (_, n) -> SS.add n acc) SS.empty f.Ast.fparams
        in
        let eff = body_effects t ~locals f.Ast.fbody in
        let old = Hashtbl.find t.table f.Ast.fname in
        if
          not
            (SS.equal old.reads eff.reads
            && SS.equal old.writes eff.writes
            && old.intrinsics = eff.intrinsics
            && old.unknown_calls = eff.unknown_calls)
        then begin
          Hashtbl.replace t.table f.Ast.fname eff;
          changed := true
        end)
      p.Ast.funcs
  done;
  t

let func_effects t name =
  match Hashtbl.find_opt t.table name with Some e -> e | None -> empty

(** A call inside a replicated loop body is safe if the callee (and its
    callees) write no global and use no intrinsic. *)
let call_replicable t name =
  let e = func_effects t name in
  SS.is_empty e.writes && (not e.intrinsics) && not e.unknown_calls
