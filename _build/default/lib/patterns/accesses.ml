(** Collection and classification of variable accesses inside a candidate
    loop body, relative to the loop's induction variable. *)

module Ast = Lp_lang.Ast
module SS = Set.Make (String)

(** Classification of an array index expression. *)
type index_class =
  | Exact_iv          (** a[i] *)
  | Iv_offset of int  (** a[i + c] / a[i - c] *)
  | Invariant         (** does not mention the induction variable *)
  | Opaque            (** anything else (data-dependent, nonlinear...) *)

type t = {
  decls : SS.t;            (** scalars and arrays declared inside the body *)
  scalar_reads : SS.t;     (** outer scalars read *)
  scalar_writes : SS.t;    (** outer scalars written *)
  array_reads : (string * index_class) list;   (** outer arrays only *)
  array_writes : (string * index_class) list;
  calls : SS.t;
  has_intrinsics : bool;
}

let empty =
  {
    decls = SS.empty;
    scalar_reads = SS.empty;
    scalar_writes = SS.empty;
    array_reads = [];
    array_writes = [];
    calls = SS.empty;
    has_intrinsics = false;
  }

(** Does [e] mention any name in [names]? *)
let rec mentions names (e : Ast.expr) : bool =
  match e.Ast.edesc with
  | Ast.Int_lit _ | Ast.Float_lit _ -> false
  | Ast.Var n -> SS.mem n names
  | Ast.Index (n, idx) -> SS.mem n names || mentions names idx
  | Ast.Binop (_, a, b) -> mentions names a || mentions names b
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> mentions names a
  | Ast.Call (_, args) -> List.exists (mentions names) args

let classify_index ~iv (e : Ast.expr) : index_class =
  match e.Ast.edesc with
  | Ast.Var n when n = iv -> Exact_iv
  | Ast.Binop (Ast.Add, { edesc = Ast.Var n; _ }, { edesc = Ast.Int_lit c; _ })
    when n = iv -> Iv_offset c
  | Ast.Binop (Ast.Add, { edesc = Ast.Int_lit c; _ }, { edesc = Ast.Var n; _ })
    when n = iv -> Iv_offset c
  | Ast.Binop (Ast.Sub, { edesc = Ast.Var n; _ }, { edesc = Ast.Int_lit c; _ })
    when n = iv -> Iv_offset (-c)
  | _ -> if mentions (SS.singleton iv) e then Opaque else Invariant

type ctx = { iv : string; mutable acc : t }

let rec walk_expr ctx (e : Ast.expr) : unit =
  let a = ctx.acc in
  match e.Ast.edesc with
  | Ast.Int_lit _ | Ast.Float_lit _ -> ()
  | Ast.Var n ->
    if n <> ctx.iv && not (SS.mem n a.decls) then
      ctx.acc <- { a with scalar_reads = SS.add n a.scalar_reads }
  | Ast.Index (n, idx) ->
    walk_expr ctx idx;
    let a = ctx.acc in
    if not (SS.mem n a.decls) then
      ctx.acc <-
        { a with
          array_reads = (n, classify_index ~iv:ctx.iv idx) :: a.array_reads }
  | Ast.Binop (_, x, y) ->
    walk_expr ctx x;
    walk_expr ctx y
  | Ast.Unop (_, x) | Ast.Cast (_, x) -> walk_expr ctx x
  | Ast.Call (name, args) ->
    List.iter (walk_expr ctx) args;
    let a = ctx.acc in
    if Effects.is_intrinsic name then ctx.acc <- { a with has_intrinsics = true }
    else ctx.acc <- { a with calls = SS.add name a.calls }

let rec walk_stmt ctx (s : Ast.stmt) : unit =
  match s.Ast.sdesc with
  | Ast.Decl (_, name, init) ->
    Option.iter (walk_expr ctx) init;
    ctx.acc <- { ctx.acc with decls = SS.add name ctx.acc.decls }
  | Ast.Assign (name, e) ->
    walk_expr ctx e;
    let a = ctx.acc in
    if name <> ctx.iv && not (SS.mem name a.decls) then
      ctx.acc <- { a with scalar_writes = SS.add name a.scalar_writes }
  | Ast.Store (name, idx, e) ->
    walk_expr ctx idx;
    walk_expr ctx e;
    let a = ctx.acc in
    if not (SS.mem name a.decls) then
      ctx.acc <-
        { a with
          array_writes = (name, classify_index ~iv:ctx.iv idx) :: a.array_writes }
  | Ast.If (c, x, y) ->
    walk_expr ctx c;
    List.iter (walk_stmt ctx) x;
    List.iter (walk_stmt ctx) y
  | Ast.While (c, body) ->
    walk_expr ctx c;
    List.iter (walk_stmt ctx) body
  | Ast.For (init, c, step, body) ->
    walk_stmt ctx init;
    walk_expr ctx c;
    walk_stmt ctx step;
    List.iter (walk_stmt ctx) body
  | Ast.Return (Some e) | Ast.Expr e -> walk_expr ctx e
  | Ast.Return None -> ()
  | Ast.Block body -> List.iter (walk_stmt ctx) body

(** Collect accesses of a loop body with induction variable [iv].  Names
    declared anywhere in the body are treated as body-private; this is the
    documented approximation (no read-before-declare shadowing). *)
let collect ~iv (body : Ast.stmt list) : t =
  let ctx = { iv; acc = empty } in
  List.iter (walk_stmt ctx) body;
  ctx.acc

(** Iteration "irregularity" heuristic used to prefer the farm pattern:
    per-iteration work varies when the body contains data-dependent loops
    or branches. *)
let rec irregular_stmt (s : Ast.stmt) : bool =
  match s.Ast.sdesc with
  | Ast.While _ -> true
  | Ast.If (_, a, b) ->
    (* a branch whose arms differ in size noticeably *)
    let size ss = List.length ss in
    abs (size a - size b) >= 2 || List.exists irregular_stmt (a @ b)
  | Ast.For (_, _, _, body) -> List.exists irregular_stmt body
  | Ast.Block body -> List.exists irregular_stmt body
  | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Return _ | Ast.Expr _ ->
    false

let irregular body = List.exists irregular_stmt body
