lib/sim/sim.ml: Array Float Format Hashtbl List Lp_ir Lp_machine Lp_power Lp_util Option Printf Queue String Value
