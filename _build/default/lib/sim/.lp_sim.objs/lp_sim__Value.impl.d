lib/sim/value.ml: Float Format Lp_ir Lp_util Printf
