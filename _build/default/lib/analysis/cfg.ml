(** Control-flow graph view of an IR function: predecessor/successor maps
    and a reverse-postorder traversal. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog

type t = {
  func : Prog.func;
  succs : (Ir.label, Ir.label list) Hashtbl.t;
  preds : (Ir.label, Ir.label list) Hashtbl.t;
  rpo : Ir.label list;  (** reverse postorder from entry; entry first *)
}

let succs t l = try Hashtbl.find t.succs l with Not_found -> []
let preds t l = try Hashtbl.find t.preds l with Not_found -> []

let build (f : Prog.func) : t =
  (* discover reachable blocks first so that edges out of dead blocks do
     not pollute predecessor sets (lowering leaves dead continuation
     blocks after mid-block returns until simplify-cfg prunes them) *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter dfs (Ir.term_succs (Prog.block f l).Ir.term);
      post := l :: !post
    end
  in
  dfs f.Prog.entry;
  let succs = Hashtbl.create 16 in
  let preds = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let ss = Ir.term_succs (Prog.block f bid).Ir.term in
      Hashtbl.replace succs bid ss;
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (cur @ [ bid ]))
        ss)
    !post;
  { func = f; succs; preds; rpo = !post }

(** Blocks reachable from the entry. *)
let reachable t = t.rpo

let is_reachable t l = List.mem l t.rpo

(** Remove unreachable blocks from the function layout (and table). *)
let prune_unreachable (f : Prog.func) : int =
  let cfg = build f in
  let before = List.length f.Prog.block_order in
  f.Prog.block_order <-
    List.filter (fun l -> is_reachable cfg l) f.Prog.block_order;
  Prog.prune_blocks f;
  before - List.length f.Prog.block_order
