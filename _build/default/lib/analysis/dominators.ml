(** Dominator analysis (iterative set-based; CFGs here are small). *)

module Ir = Lp_ir.Ir

module LS = Set.Make (Int)

type t = {
  cfg : Cfg.t;
  dom : (Ir.label, LS.t) Hashtbl.t;  (** blocks dominating each block *)
}

let compute_of_cfg (cfg : Cfg.t) : t =
  let blocks = cfg.Cfg.rpo in
  let all = LS.of_list blocks in
  let entry = cfg.Cfg.func.Lp_ir.Prog.entry in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace dom l (if l = entry then LS.singleton entry else all))
    blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let preds = Cfg.preds cfg l in
          let meet =
            match preds with
            | [] -> LS.singleton l
            | p :: rest ->
              List.fold_left
                (fun acc p -> LS.inter acc (Hashtbl.find dom p))
                (Hashtbl.find dom p) rest
          in
          let v = LS.add l meet in
          if not (LS.equal v (Hashtbl.find dom l)) then begin
            Hashtbl.replace dom l v;
            changed := true
          end
        end)
      blocks
  done;
  { cfg; dom }

let compute f = compute_of_cfg (Cfg.build f)

(** [dominates t a b]: does block [a] dominate block [b]? *)
let dominates t a b =
  match Hashtbl.find_opt t.dom b with
  | Some s -> LS.mem a s
  | None -> false

let dominators t l =
  match Hashtbl.find_opt t.dom l with Some s -> LS.elements s | None -> []

(** Immediate dominator: the dominator of [l] (other than [l]) dominated
    by every other strict dominator. *)
let idom t l =
  let strict = List.filter (fun d -> d <> l) (dominators t l) in
  List.find_opt
    (fun cand -> List.for_all (fun d -> dominates t d cand) strict)
    strict
