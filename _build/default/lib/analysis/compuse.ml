(** Component-activity analysis.

    Computes which datapath components each block, loop and function can
    use, closing over the call graph.  This is the enabling analysis for
    compiler-directed power gating: a component not in the use set of a
    region is provably idle throughout that region and may be gated if the
    region is long enough to amortise the transition cost. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Component = Lp_power.Component
module CS = Component.Set

type t = {
  prog : Prog.t;
  func_use : (string, CS.t) Hashtbl.t;  (** transitive use set per function *)
}

(** Components used directly by one instruction (gating pseudo-instructions
    themselves are transparent: they don't make a component "used"). *)
let instr_components (i : Ir.instr) : CS.t =
  match i.Ir.idesc with
  | Ir.Pg_off _ | Ir.Pg_on _ | Ir.Dvfs _ -> CS.empty
  | _ -> CS.singleton (Ir.component_of i)

let block_direct (b : Ir.block) : CS.t =
  let s =
    List.fold_left (fun acc i -> CS.union acc (instr_components i)) CS.empty
      b.Ir.instrs
  in
  (* terminators occupy the branch unit *)
  CS.add Component.Branch_unit s

let callees_of_block (b : Ir.block) : string list =
  List.filter_map
    (fun i ->
      match i.Ir.idesc with Ir.Call (_, f, _) -> Some f | _ -> None)
    b.Ir.instrs

(** Fixpoint over the call graph (handles recursion). *)
let compute (prog : Prog.t) : t =
  let func_use = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace func_use f.Prog.fname CS.empty)
    (Prog.funcs prog);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        let direct =
          List.fold_left
            (fun acc b ->
              let acc = CS.union acc (block_direct b) in
              List.fold_left
                (fun acc callee ->
                  match Hashtbl.find_opt func_use callee with
                  | Some s -> CS.union acc s
                  | None -> acc)
                acc (callees_of_block b))
            CS.empty (Prog.blocks_in_order f)
        in
        let old = Hashtbl.find func_use f.Prog.fname in
        if not (CS.equal old direct) then begin
          Hashtbl.replace func_use f.Prog.fname direct;
          changed := true
        end)
      (Prog.funcs prog)
  done;
  { prog; func_use }

let func_use t name =
  match Hashtbl.find_opt t.func_use name with
  | Some s -> s
  | None -> CS.empty

(** Components a block can touch, including through calls. *)
let block_use t (b : Ir.block) : CS.t =
  List.fold_left
    (fun acc callee -> CS.union acc (func_use t callee))
    (block_direct b) (callees_of_block b)

(** Components a loop can touch, including through calls. *)
let loop_use t (f : Prog.func) (l : Loops.loop) : CS.t =
  Loops.LS.fold
    (fun bid acc -> CS.union acc (block_use t (Prog.block f bid)))
    l.Loops.blocks CS.empty

(** Gateable components guaranteed idle in the loop. *)
let loop_idle t f l : CS.t = CS.diff CS.all_gateable (loop_use t f l)

(** Gateable components never used by [entry] nor its callees; on a core
    running only this entry they can be gated for the whole run. *)
let never_used t ~entry : CS.t = CS.diff CS.all_gateable (func_use t entry)
