(** Generic iterative dataflow framework over basic blocks.

    Problems supply a join semilattice and a per-block transfer function;
    the framework runs a worklist to fixpoint.  Used by liveness, by the
    component-activity analysis behind power gating, and by tests that
    define toy problems to exercise the machinery. *)

module Ir = Lp_ir.Ir

module type LATTICE = sig
  type t
  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = {
    inputs : (Ir.label, L.t) Hashtbl.t;   (** value at block entry (forward)
                                              or exit (backward) *)
    outputs : (Ir.label, L.t) Hashtbl.t;  (** value after the transfer *)
  }

  let get tbl l = try Hashtbl.find tbl l with Not_found -> L.bottom

  (** [run ~direction ~cfg ~init ~transfer] iterates to fixpoint.
      [init] seeds the entry (forward) or every exit block (backward). *)
  let run ~direction ~(cfg : Cfg.t) ~(init : L.t)
      ~(transfer : Ir.label -> L.t -> L.t) : result =
    let inputs = Hashtbl.create 16 in
    let outputs = Hashtbl.create 16 in
    let blocks = cfg.Cfg.rpo in
    let order =
      match direction with Forward -> blocks | Backward -> List.rev blocks
    in
    let neighbours_in l =
      match direction with
      | Forward -> Cfg.preds cfg l
      | Backward -> Cfg.succs cfg l
    in
    let is_boundary l =
      match direction with
      | Forward -> l = cfg.Cfg.func.Lp_ir.Prog.entry
      | Backward -> Cfg.succs cfg l = []
    in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed do
      changed := false;
      incr rounds;
      if !rounds > 10_000 then failwith "Dataflow.run: fixpoint not reached";
      List.iter
        (fun l ->
          let in_v =
            let base = if is_boundary l then init else L.bottom in
            List.fold_left
              (fun acc p -> L.join acc (get outputs p))
              base (neighbours_in l)
          in
          let out_v = transfer l in_v in
          if not (L.equal (get inputs l) in_v) then begin
            Hashtbl.replace inputs l in_v;
            changed := true
          end;
          if not (L.equal (get outputs l) out_v) then begin
            Hashtbl.replace outputs l out_v;
            changed := true
          end)
        order
    done;
    { inputs; outputs }

  let input r l = get r.inputs l
  let output r l = get r.outputs l
end

module Int_set = Set.Make (Int)

module Reg_set_lattice = struct
  type t = Int_set.t
  let bottom = Int_set.empty
  let equal = Int_set.equal
  let join = Int_set.union
end
