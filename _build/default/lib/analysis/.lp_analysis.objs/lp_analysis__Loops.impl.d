lib/analysis/loops.ml: Cfg Dominators Hashtbl Int List Lp_ir Set
