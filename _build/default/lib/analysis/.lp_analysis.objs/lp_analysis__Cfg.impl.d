lib/analysis/cfg.ml: Hashtbl List Lp_ir
