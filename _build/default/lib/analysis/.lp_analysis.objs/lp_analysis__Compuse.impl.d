lib/analysis/compuse.ml: Hashtbl List Loops Lp_ir Lp_power
