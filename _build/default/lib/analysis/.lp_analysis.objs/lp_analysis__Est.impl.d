lib/analysis/est.ml: List Loops Lp_ir Lp_machine
