lib/analysis/liveness.ml: Cfg Dataflow Hashtbl List Lp_ir
