lib/analysis/dataflow.ml: Cfg Hashtbl Int List Lp_ir Set
