lib/analysis/dominators.ml: Cfg Hashtbl Int List Lp_ir Set
