(** Compiler-directed DVFS insertion.

    Memory-bound loops spend most of their time on the (fixed-frequency)
    bus and shared memory, so scaling the core down stretches only the
    compute fraction.  For each top-level loop the pass estimates the
    memory-bound fraction [mu] and picks the lowest operating point whose
    slowdown [(1 - mu) * fnom/f + mu] stays within the allowed bound, then
    brackets the loop with [dvfs] instructions (down in the preheader,
    back to nominal on the exit landings).

    Loops that perform channel operations (directly or through calls) are
    skipped: their timing couples with other cores and is instead handled
    by the pattern-aware balancing pass. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Power_model = Lp_power.Power_model
module Operating_point = Lp_power.Operating_point
module Machine = Lp_machine.Machine
module Loops = Lp_analysis.Loops
module Est = Lp_analysis.Est

type options = {
  max_slowdown : float;   (** e.g. 0.05 = at most 5% slower *)
  min_mem_fraction : float;
  min_cycles : float;     (** amortisation threshold for the transition *)
}

let default_options =
  { max_slowdown = 0.10; min_mem_fraction = 0.20; min_cycles = 2000.0 }

(* communication closure: does a function (transitively) use channel or
   barrier intrinsics? *)
let comm_closure (prog : Prog.t) : (string, bool) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace tbl f.Prog.fname false) (Prog.funcs prog);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        let has =
          Prog.fold_instrs f
            (fun acc _ i ->
              acc
              ||
              match i.Ir.idesc with
              | Ir.Send _ | Ir.Recv _ | Ir.Barrier _ | Ir.Faa _ -> true
              | Ir.Call (_, callee, _) ->
                Option.value ~default:true (Hashtbl.find_opt tbl callee)
              | _ -> false)
            false
        in
        if Hashtbl.find tbl f.Prog.fname <> has then begin
          Hashtbl.replace tbl f.Prog.fname has;
          changed := true
        end)
      (Prog.funcs prog)
  done;
  tbl

let loop_has_comm (comm : (string, bool) Hashtbl.t) (f : Prog.func)
    (l : Loops.loop) : bool =
  Loops.LS.exists
    (fun bid ->
      let b = Prog.block f bid in
      List.exists
        (fun (i : Ir.instr) ->
          match i.Ir.idesc with
          | Ir.Send _ | Ir.Recv _ | Ir.Barrier _ | Ir.Faa _ -> true
          | Ir.Call (_, callee, _) ->
            Option.value ~default:true (Hashtbl.find_opt comm callee)
          | _ -> false)
        b.Ir.instrs)
    l.Loops.blocks

(** Lowest operating level whose slowdown on a loop with memory fraction
    [mu] stays within [max_slowdown]; [None] if only nominal qualifies. *)
let choose_level (pm : Power_model.t) ~mu ~max_slowdown : int option =
  let nominal = Power_model.nominal pm in
  let ok (p : Operating_point.t) =
    let slowdown =
      ((1.0 -. mu) *. (nominal.Operating_point.freq_mhz /. p.Operating_point.freq_mhz))
      +. mu
    in
    slowdown <= 1.0 +. max_slowdown
  in
  let candidates =
    List.filter
      (fun (p : Operating_point.t) ->
        p.Operating_point.level <> nominal.Operating_point.level && ok p)
      (Power_model.points pm)
  in
  match candidates with
  | [] -> None
  | p :: _ -> Some p.Operating_point.level  (* points are ascending *)

let run_func ?(opts = default_options) (m : Machine.t) (prog : Prog.t)
    (comm : (string, bool) Hashtbl.t) (f : Prog.func) : int =
  let pm = m.Machine.power in
  let changes = ref 0 in
  let loops = Loops.top_level (Loops.find f) in
  List.iter
    (fun l ->
      if not (loop_has_comm comm f l) then begin
        let est = Est.loop_estimate m prog f l in
        if
          est.Est.total_cycles >= opts.min_cycles
          && est.Est.mem_fraction >= opts.min_mem_fraction
        then
          match
            choose_level pm ~mu:est.Est.mem_fraction
              ~max_slowdown:opts.max_slowdown
          with
          | None -> ()
          | Some level -> (
            match Region.preheader f l with
            | None -> ()
            | Some pre ->
              Region.append f pre (Ir.Dvfs level);
              List.iter
                (fun landing ->
                  Region.prepend f landing (Ir.Dvfs (Power_model.max_level pm)))
                (Region.exit_landings f l);
              incr changes)
      end)
    loops;
  !changes

let insert ?(opts = default_options) (m : Machine.t) (prog : Prog.t) : int =
  let comm = comm_closure prog in
  List.fold_left
    (fun acc f -> acc + run_func ~opts m prog comm f)
    0 (Prog.funcs prog)
