(** Metadata produced by the parallelizer and consumed by the
    pattern-aware power passes (per-core gating, pipeline balancing). *)

module Pattern = Lp_patterns.Pattern

type instance_codegen = {
  inst : Pattern.instance;
  tag : int;                  (** dispatch tag sent on work channels; > 0 *)
  body_func : string option;  (** outlined slice function (doall/red/farm) *)
  stage_funcs : string list;  (** pipeline stage functions, stage 0 first *)
  done_chan : int;
  token_chans : int list;     (** pipeline inter-stage token channels *)
  counter_global : string option;  (** farm self-scheduling counter *)
}

type t = {
  n_workers : int;            (** worker cores (total cores = workers + 1) *)
  entries : string list;      (** entry function per core, master first *)
  n_channels : int;
  n_barriers : int;
  chan_capacity : int;
  instances : instance_codegen list;
}

let sequential = {
  n_workers = 0;
  entries = [ "main" ];
  n_channels = 0;
  n_barriers = 0;
  chan_capacity = 0;
  instances = [];
}

(** For a pipeline instance, which core runs stage [s] (stage 0 is the
    master core 0, stage s>0 runs on worker core s). *)
let stage_core _inst s = s
