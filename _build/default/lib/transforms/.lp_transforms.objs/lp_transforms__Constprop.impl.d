lib/transforms/constprop.ml: Array Constfold Hashtbl List Lp_analysis Lp_ir Lp_util Option Pass
