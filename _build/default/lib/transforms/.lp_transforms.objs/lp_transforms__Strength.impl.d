lib/transforms/strength.ml: Lp_ir Pass
