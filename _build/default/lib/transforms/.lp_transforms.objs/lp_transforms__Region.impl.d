lib/transforms/region.ml: List Lp_analysis Lp_ir
