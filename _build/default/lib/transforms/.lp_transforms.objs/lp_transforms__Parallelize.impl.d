lib/transforms/parallelize.ml: Format List Lp_lang Lp_patterns Par_info Printf
