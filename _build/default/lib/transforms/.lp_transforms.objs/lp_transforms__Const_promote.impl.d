lib/transforms/const_promote.ml: List Lp_ir Pass Set String
