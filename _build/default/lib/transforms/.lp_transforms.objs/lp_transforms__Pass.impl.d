lib/transforms/pass.ml: List Lp_ir Sys
