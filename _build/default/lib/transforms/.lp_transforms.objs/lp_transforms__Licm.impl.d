lib/transforms/licm.ml: Hashtbl List Lp_analysis Lp_ir Pass Region
