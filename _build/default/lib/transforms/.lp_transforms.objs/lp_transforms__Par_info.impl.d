lib/transforms/par_info.ml: Lp_patterns
