lib/transforms/constfold.ml: Hashtbl List Lp_ir Lp_util Pass
