lib/transforms/mac_fusion.ml: Hashtbl List Lp_ir Option Pass
