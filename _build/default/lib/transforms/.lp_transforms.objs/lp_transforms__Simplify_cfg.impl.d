lib/transforms/simplify_cfg.ml: Hashtbl List Lp_analysis Lp_ir Pass
