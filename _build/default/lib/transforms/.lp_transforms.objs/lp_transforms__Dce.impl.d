lib/transforms/dce.ml: Fun List Lp_analysis Lp_ir Pass
