lib/transforms/balance.ml: Float List Lp_analysis Lp_ir Lp_machine Lp_patterns Lp_power Par_info Region
