lib/transforms/unroll.ml: List Lp_analysis Lp_ir Pass
