lib/transforms/gating.ml: Array Hashtbl List Lp_analysis Lp_ir Lp_machine Lp_power Option Region
