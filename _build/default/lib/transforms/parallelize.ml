(** Pattern-driven parallelisation (source-to-source).

    Takes a type-checked MiniC program and the verified pattern instances
    and produces a multicore program: the master core keeps (a transformed)
    [main]; each worker core w runs a generated persistent dispatcher
    [workerW] that waits on its work channel for a tag, executes the
    corresponding outlined piece, and acknowledges on the instance's done
    channel.  Tag 0 shuts a worker down; the master broadcasts it before
    returning from [main].

    Code generation per pattern:
    - {b doall}: static block distribution; the loop is outlined to
      [par_bodyK(lo, hi, invariants...)]; the master executes slice 0.
    - {b reduction}: as doall, but the outlined function accumulates into
      a local (identity-initialised) copy and returns it; workers send
      partials back on the done channel and the master combines.
    - {b farm}: self-scheduling from a fresh shared counter via
      fetch-and-add, with the pragma-selected chunk size; master
      participates in the pull loop.
    - {b pipeline/prodcons}: stage s>0 runs on worker core s; iterations
      flow through bounded token channels, giving cross-iteration overlap
      with backpressure. *)

module Ast = Lp_lang.Ast
module Pattern = Lp_patterns.Pattern

exception Par_error of string

(** How doall/reduction iteration spaces are split across cores:
    contiguous blocks (cache/stream friendly) or cyclically interleaved
    (balances triangular or otherwise index-correlated work). *)
type distribution = Block | Cyclic

(** How the master learns that a non-reduction doall instance finished:
    one acknowledge message per worker on the done channel, or a single
    all-core barrier.  Reductions and farms keep the done channel (the
    partials/acks ride on it); pipelines keep it too (only a subset of
    cores participates, but a barrier is all-core). *)
type sync = Done_channel | Barrier_sync

let err fmt = Format.kasprintf (fun s -> raise (Par_error s)) fmt

(* ---------------- AST construction helpers ---------------- *)

let e d : Ast.expr = Ast.mk_expr d
let s d : Ast.stmt = Ast.mk_stmt d
let ilit n = e (Ast.Int_lit n)
let v name = e (Ast.Var name)
let ( +: ) a b = e (Ast.Binop (Ast.Add, a, b))
let ( -: ) a b = e (Ast.Binop (Ast.Sub, a, b))
let ( *: ) a b = e (Ast.Binop (Ast.Mul, a, b))
let ( /: ) a b = e (Ast.Binop (Ast.Div, a, b))
let ( <: ) a b = e (Ast.Binop (Ast.Lt, a, b))
let ( <>: ) a b = e (Ast.Binop (Ast.Ne, a, b))
let call name args = e (Ast.Call (name, args))
let decl_int name init = s (Ast.Decl (Ast.Tint, name, Some init))
let assign name ex = s (Ast.Assign (name, ex))
let expr_stmt ex = s (Ast.Expr ex)
let if_ c a b = s (Ast.If (c, a, b))
let while_ c body = s (Ast.While (c, body))

(** [for (int iv = lo; iv < hi; iv = iv + 1) body] *)
let for_counted iv lo hi body =
  s (Ast.For (decl_int iv lo, v iv <: hi, assign iv (v iv +: ilit 1), body))

(** [for (int iv = lo; iv < hi; iv = iv + step) body] — used by outlined
    doall bodies so one function serves both distributions. *)
let for_strided iv lo hi step body =
  s (Ast.For (decl_int iv lo, v iv <: hi, assign iv (v iv +: step), body))

let send ch ex = expr_stmt (call "__send" [ ilit ch; ex ])
let sendf ch ex = expr_stmt (call "__sendf" [ ilit ch; ex ])
let recv ch = call "__recv" [ ilit ch ]
let recvf ch = call "__recvf" [ ilit ch ]

let send_typed ch (ty : Ast.ty) ex =
  match ty with
  | Ast.Tfloat -> sendf ch ex
  | _ -> send ch ex

let recv_typed ch (ty : Ast.ty) =
  match ty with Ast.Tfloat -> recvf ch | _ -> recv ch

(** Declare-and-receive an invariant scalar. *)
let recv_invariants ch invs =
  List.map
    (fun (name, ty) -> s (Ast.Decl (ty, name, Some (recv_typed ch ty))))
    invs

let send_invariants ch invs =
  List.map (fun (name, ty) -> send_typed ch ty (v name)) invs

let identity_of_reduction = function
  | Pattern.Rsum_int | Pattern.Rxor -> e (Ast.Int_lit 0)
  | Pattern.Rsum_float -> e (Ast.Float_lit 0.0)
  | Pattern.Rmax -> e (Ast.Int_lit (-2147483648))  (* INT32_MIN *)
  | Pattern.Rmin -> e (Ast.Int_lit 2147483647)     (* INT32_MAX *)

(** [acc := acc (+) part], as statements ([part] is a variable name). *)
let combine_stmts op acc part =
  match op with
  | Pattern.Rsum_int | Pattern.Rsum_float ->
    [ assign acc (e (Ast.Binop (Ast.Add, v acc, v part))) ]
  | Pattern.Rxor -> [ assign acc (e (Ast.Binop (Ast.Bxor, v acc, v part))) ]
  | Pattern.Rmax ->
    [ if_ (e (Ast.Binop (Ast.Gt, v part, v acc))) [ assign acc (v part) ] [] ]
  | Pattern.Rmin ->
    [ if_ (e (Ast.Binop (Ast.Lt, v part, v acc))) [ assign acc (v part) ] [] ]

(* ---------------- channel / name allocation ---------------- *)

type alloc = {
  n_workers : int;
  distribution : distribution;
  sync : sync;
  mutable next_chan : int;
  mutable next_barrier : int;
  mutable extra_globals : Ast.global list;
  mutable extra_funcs : Ast.func list;
}

let work_chan w = w - 1  (* channels 0..W-1 are the work channels *)

let fresh_chan a =
  let c = a.next_chan in
  a.next_chan <- c + 1;
  c

let fresh_barrier a =
  let b = a.next_barrier in
  a.next_barrier <- b + 1;
  b

let barrier_stmt id = expr_stmt (call "__barrier" [ ilit id ])

let add_func a f = a.extra_funcs <- a.extra_funcs @ [ f ]

let add_counter_global a name =
  a.extra_globals <-
    a.extra_globals
    @ [ { Ast.gname = name; gty = Ast.Tint; ginit = None; gpos = Ast.dummy_pos } ]

let mk_func name params ret body : Ast.func =
  { Ast.fname = name; fret = ret; fparams = params; fbody = body;
    fpragmas = []; fpos = Ast.dummy_pos }

(* ---------------- per-instance codegen ---------------- *)

(** Worker slice bounds: [lo + chunk*w, min (lo + chunk*(w+1)) hi).
    Generated as straight-line code with an [if] for the min. *)
let slice_bounds ~pfx ~lo_var ~hi_var ~chunk_var w =
  let sv = Printf.sprintf "%s_s%d" pfx w in
  let ev = Printf.sprintf "%s_e%d" pfx w in
  let stmts =
    [
      decl_int sv (v lo_var +: (v chunk_var *: ilit w));
      decl_int ev (v sv +: v chunk_var);
      if_ (v hi_var <: v ev) [ assign ev (v hi_var) ] [];
      if_ (v hi_var <: v sv) [ assign sv (v hi_var) ] [];
    ]
  in
  (stmts, sv, ev)

type gen = {
  master_block : Ast.stmt;       (** replaces the original For statement *)
  worker_branches : (int * Ast.stmt list) list;
      (** (worker core index, dispatch branch body) for the tag *)
  cg : Par_info.instance_codegen;
}

let gen_doall_like a (inst : Pattern.instance) ~reduction : gen =
  let k = inst.Pattern.id in
  let tag = k + 1 in
  let loop = inst.Pattern.loop in
  let invs = inst.Pattern.invariants in
  let nw = a.n_workers in
  let parts = nw + 1 in
  let pfx = Printf.sprintf "_p%d" k in
  let done_chan = fresh_chan a in
  let barrier =
    match (a.sync, reduction) with
    | (Barrier_sync, None) -> Some (fresh_barrier a)
    | ((Done_channel | Barrier_sync), _) -> None
  in
  let inv_params = List.map (fun (n, ty) -> (ty, n)) invs in
  let body_name = Printf.sprintf "par_body%d" k in
  (* outlined slice function; the stride parameter lets one function
     serve both block (stride 1) and cyclic (stride = parts) splits *)
  let slice_params =
    (Ast.Tint, "_lo") :: (Ast.Tint, "_hi") :: (Ast.Tint, "_step") :: inv_params
  in
  (match reduction with
  | None ->
    add_func a
      (mk_func body_name slice_params Ast.Tvoid
         [ for_strided loop.Pattern.iv (v "_lo") (v "_hi") (v "_step")
             loop.Pattern.body ])
  | Some (acc, ty, op) ->
    add_func a
      (mk_func body_name slice_params ty
         [ s (Ast.Decl (ty, acc, Some (identity_of_reduction op)));
           for_strided loop.Pattern.iv (v "_lo") (v "_hi") (v "_step")
             loop.Pattern.body;
           s (Ast.Return (Some (v acc))) ]));
  let inv_args = List.map (fun (n, _) -> v n) invs in
  (* master side *)
  let lo_var = pfx ^ "_lo" and hi_var = pfx ^ "_hi" in
  let chunk_var = pfx ^ "_chunk" in
  let header =
    [
      decl_int lo_var loop.Pattern.lo;
      decl_int hi_var loop.Pattern.hi;
      decl_int chunk_var
        ((v hi_var -: v lo_var +: ilit (parts - 1)) /: ilit parts);
    ]
  in
  (* per-participant (start, end, step) triple under either distribution *)
  let activations =
    List.concat_map
      (fun w ->
        let (bound_stmts, start_e, end_e, step_e) =
          match a.distribution with
          | Block ->
            let (stmts, sv, ev) =
              slice_bounds ~pfx ~lo_var ~hi_var ~chunk_var w
            in
            (stmts, v sv, v ev, ilit 1)
          | Cyclic -> ([], v lo_var +: ilit w, v hi_var, ilit parts)
        in
        bound_stmts
        @ [ send (work_chan w) (ilit tag);
            send (work_chan w) start_e;
            send (work_chan w) end_e;
            send (work_chan w) step_e ]
        @ send_invariants (work_chan w) invs)
      (List.init nw (fun i -> i + 1))
  in
  let (m_bounds, m_start, m_end, m_step) =
    match a.distribution with
    | Block ->
      let (stmts, sv, ev) = slice_bounds ~pfx ~lo_var ~hi_var ~chunk_var 0 in
      (stmts, v sv, v ev, ilit 1)
    | Cyclic -> ([], v lo_var, v hi_var, ilit parts)
  in
  let master_call = call body_name (m_start :: m_end :: m_step :: inv_args) in
  let master_work =
    match reduction with
    | None -> [ expr_stmt master_call ]
    | Some (acc, ty, op) ->
      let pv = pfx ^ "_part0" in
      s (Ast.Decl (ty, pv, Some master_call)) :: combine_stmts op acc pv
  in
  let collection =
    match barrier with
    | Some b -> [ barrier_stmt b ]
    | None ->
      List.concat_map
        (fun w ->
          match reduction with
          | None -> [ expr_stmt (recv done_chan) ]
          | Some (acc, ty, op) ->
            let pv = Printf.sprintf "%s_part%d" pfx w in
            s (Ast.Decl (ty, pv, Some (recv_typed done_chan ty)))
            :: combine_stmts op acc pv)
        (List.init nw (fun i -> i + 1))
  in
  let master_block =
    s (Ast.Block (header @ activations @ m_bounds @ master_work @ collection))
  in
  (* worker side: same branch body for every worker *)
  let worker_branch _w ch =
    let prologue =
      decl_int "_lo" (recv ch) :: decl_int "_hi" (recv ch)
      :: decl_int "_step" (recv ch)
      :: recv_invariants ch invs
    in
    let wcall = call body_name (v "_lo" :: v "_hi" :: v "_step" :: inv_args) in
    let work =
      match (reduction, barrier) with
      | (None, Some b) -> [ expr_stmt wcall; barrier_stmt b ]
      | (None, None) -> [ expr_stmt wcall; send done_chan (ilit 1) ]
      | (Some (_, ty, _), _) ->
        [ s (Ast.Decl (ty, "_part", Some wcall));
          send_typed done_chan ty (v "_part") ]
    in
    prologue @ work
  in
  {
    master_block;
    worker_branches =
      List.init nw (fun i ->
          let w = i + 1 in
          (w, worker_branch w (work_chan w)));
    cg =
      {
        Par_info.inst;
        tag;
        body_func = Some body_name;
        stage_funcs = [];
        done_chan;
        token_chans = [];
        counter_global = None;
      };
  }

let gen_farm a (inst : Pattern.instance) : gen =
  let k = inst.Pattern.id in
  let tag = k + 1 in
  let loop = inst.Pattern.loop in
  let invs = inst.Pattern.invariants in
  let chunk = max 1 inst.Pattern.chunk in
  let nw = a.n_workers in
  let pfx = Printf.sprintf "_p%d" k in
  let done_chan = fresh_chan a in
  let counter = Printf.sprintf "par_next%d" k in
  add_counter_global a counter;
  let body_name = Printf.sprintf "par_body%d" k in
  let inv_params = List.map (fun (n, ty) -> (ty, n)) invs in
  add_func a
    (mk_func body_name
       ((Ast.Tint, "_lo") :: (Ast.Tint, "_hi") :: (Ast.Tint, "_step")
        :: inv_params)
       Ast.Tvoid
       [ for_strided loop.Pattern.iv (v "_lo") (v "_hi") (v "_step")
           loop.Pattern.body ]);
  let inv_args = List.map (fun (n, _) -> v n) invs in
  (* the self-scheduling pull loop, shared by master and workers *)
  let pull_loop ~hi_expr =
    let iv = "_i" and ev = "_e" in
    [
      decl_int iv (call "__faa" [ v counter; ilit chunk ]);
      while_
        (v iv <: hi_expr)
        [
          decl_int ev (v iv +: ilit chunk);
          if_ (hi_expr <: v ev) [ assign ev hi_expr ] [];
          expr_stmt (call body_name (v iv :: v ev :: ilit 1 :: inv_args));
          assign iv (call "__faa" [ v counter; ilit chunk ]);
        ];
    ]
  in
  let lo_var = pfx ^ "_lo" and hi_var = pfx ^ "_hi" in
  let master_block =
    s
      (Ast.Block
         ([ decl_int lo_var loop.Pattern.lo;
            decl_int hi_var loop.Pattern.hi;
            assign counter (v lo_var) ]
         @ List.concat_map
             (fun w ->
               (send (work_chan w) (ilit tag) :: [ send (work_chan w) (v hi_var) ])
               @ send_invariants (work_chan w) invs)
             (List.init nw (fun i -> i + 1))
         @ pull_loop ~hi_expr:(v hi_var)
         @ List.map (fun _ -> expr_stmt (recv done_chan))
             (List.init nw (fun i -> i))))
  in
  let worker_branch ch =
    (decl_int "_hi" (recv ch) :: recv_invariants ch invs)
    @ pull_loop ~hi_expr:(v "_hi")
    @ [ send done_chan (ilit 1) ]
  in
  {
    master_block;
    worker_branches =
      List.init nw (fun i ->
          let w = i + 1 in
          (w, worker_branch (work_chan w)));
    cg =
      {
        Par_info.inst;
        tag;
        body_func = Some body_name;
        stage_funcs = [];
        done_chan;
        token_chans = [];
        counter_global = Some counter;
      };
  }

(** When a pipeline has more stages than cores, adjacent stages are fused
    so that the pipeline depth fits the machine; the contiguous partition
    minimises the heaviest fused stage (the pipeline's bottleneck). *)
let fuse_stages ~max_stages (stages : Ast.stmt list list) :
    Ast.stmt list list =
  if List.length stages <= max_stages then stages
  else begin
    let weights = List.map Lp_patterns.Ast_weight.body_weight stages in
    let groups = Lp_patterns.Ast_weight.partition ~groups:max_stages weights in
    List.map
      (fun idxs -> List.concat_map (fun i -> List.nth stages i) idxs)
      groups
  end

let gen_pipeline a (inst : Pattern.instance) : gen =
  let k = inst.Pattern.id in
  let tag = k + 1 in
  let loop = inst.Pattern.loop in
  let invs = inst.Pattern.invariants in
  let stages = fuse_stages ~max_stages:(a.n_workers + 1) inst.Pattern.stages in
  let n_stages = List.length stages in
  if n_stages - 1 > a.n_workers then
    err "pipeline with %d stages needs %d workers, have %d" n_stages
      (n_stages - 1) a.n_workers;
  let pfx = Printf.sprintf "_p%d" k in
  let done_chan = fresh_chan a in
  let token_chans = List.init (n_stages - 1) (fun _ -> fresh_chan a) in
  let inv_params = List.map (fun (n, ty) -> (ty, n)) invs in
  let inv_args = List.map (fun (n, _) -> v n) invs in
  (* one function per stage: par_stageK_s(iv, invs...) *)
  let stage_names =
    List.mapi
      (fun i stage_body ->
        let name = Printf.sprintf "par_stage%d_%d" k i in
        add_func a
          (mk_func name ((Ast.Tint, loop.Pattern.iv) :: inv_params) Ast.Tvoid
             stage_body);
        name)
      stages
  in
  let stage0 = List.nth stage_names 0 in
  let tok s = List.nth token_chans s in
  let lo_var = pfx ^ "_lo" and hi_var = pfx ^ "_hi" in
  let master_block =
    s
      (Ast.Block
         ([ decl_int lo_var loop.Pattern.lo; decl_int hi_var loop.Pattern.hi ]
         @ List.concat_map
             (fun st ->
               let w = st in
               (send (work_chan w) (ilit tag)
               :: [ send (work_chan w) (v lo_var);
                    send (work_chan w) (v hi_var) ])
               @ send_invariants (work_chan w) invs)
             (List.init (n_stages - 1) (fun i -> i + 1))
         @ [
             for_counted loop.Pattern.iv (v lo_var) (v hi_var)
               [
                 expr_stmt (call stage0 (v loop.Pattern.iv :: inv_args));
                 send (tok 0) (ilit 1);
               ];
             expr_stmt (recv done_chan);
           ]))
  in
  (* worker branch for stage s (worker core s) *)
  let worker_branch st ch =
    let name = List.nth stage_names st in
    let last = st = n_stages - 1 in
    let body =
      [ expr_stmt (recv (tok (st - 1)));
        expr_stmt (call name (v loop.Pattern.iv :: inv_args)) ]
      @ (if last then [] else [ send (tok st) (ilit 1) ])
    in
    (decl_int "_lo" (recv ch) :: decl_int "_hi" (recv ch)
    :: recv_invariants ch invs)
    @ [ for_counted loop.Pattern.iv (v "_lo") (v "_hi") body ]
    @ if last then [ send done_chan (ilit 1) ] else []
  in
  {
    master_block;
    worker_branches =
      List.init (n_stages - 1) (fun i ->
          let st = i + 1 in
          (st, worker_branch st (work_chan st)));
    cg =
      {
        Par_info.inst;
        tag;
        body_func = None;
        stage_funcs = stage_names;
        done_chan;
        token_chans;
        counter_global = None;
      };
  }

let gen_instance a (inst : Pattern.instance) : gen =
  match inst.Pattern.kind with
  | Pattern.Doall -> gen_doall_like a inst ~reduction:None
  | Pattern.Reduction op ->
    let acc =
      match (inst.Pattern.acc_var, inst.Pattern.acc_ty) with
      | (Some acc, Some ty) -> (acc, ty, op)
      | _ -> err "reduction instance without accumulator"
    in
    gen_doall_like a inst ~reduction:(Some acc)
  | Pattern.Farm -> gen_farm a inst
  | Pattern.Pipeline _ | Pattern.Prodcons -> gen_pipeline a inst

(* ---------------- program rewriting ---------------- *)

(** Replace (by physical identity) each pattern's For statement with its
    master block, anywhere in the function body. *)
let rec rewrite_stmts (table : (Ast.stmt * Ast.stmt) list) stmts =
  List.map
    (fun (st : Ast.stmt) ->
      match List.find_opt (fun (orig, _) -> orig == st) table with
      | Some (_, replacement) -> replacement
      | None -> (
        match st.Ast.sdesc with
        | Ast.If (c, x, y) ->
          { st with
            Ast.sdesc =
              Ast.If (c, rewrite_stmts table x, rewrite_stmts table y) }
        | Ast.While (c, body) ->
          { st with Ast.sdesc = Ast.While (c, rewrite_stmts table body) }
        | Ast.For (i, c, sp, body) ->
          { st with Ast.sdesc = Ast.For (i, c, sp, rewrite_stmts table body) }
        | Ast.Block body ->
          { st with Ast.sdesc = Ast.Block (rewrite_stmts table body) }
        | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Return _ | Ast.Expr _
          -> st))
    stmts

(** Generated persistent worker dispatcher for core [w]. *)
let worker_func w (branches : (int * Ast.stmt list) list) : Ast.func =
  let ch = work_chan w in
  let dispatch =
    List.map
      (fun (tag, body) ->
        if_ (e (Ast.Binop (Ast.Eq, v "_cmd", ilit tag))) body [])
      branches
  in
  mk_func
    (Printf.sprintf "worker%d" w)
    [] Ast.Tint
    [
      decl_int "_cmd" (recv ch);
      while_ (v "_cmd" <>: ilit 0) (dispatch @ [ assign "_cmd" (recv ch) ]);
      s (Ast.Return (Some (ilit 0)));
    ]

(** Append worker shutdown broadcasts before every [return] of [main]
    (and at the end if main can fall through). *)
let rec add_shutdown_stmts nw stmts =
  List.concat_map
    (fun (st : Ast.stmt) ->
      match st.Ast.sdesc with
      | Ast.Return _ ->
        List.map (fun w -> send (work_chan w) (ilit 0))
          (List.init nw (fun i -> i + 1))
        @ [ st ]
      | Ast.If (c, a, b) ->
        [ { st with
            Ast.sdesc =
              Ast.If (c, add_shutdown_stmts nw a, add_shutdown_stmts nw b) } ]
      | Ast.While (c, body) ->
        [ { st with Ast.sdesc = Ast.While (c, add_shutdown_stmts nw body) } ]
      | Ast.For (i, c, sp, body) ->
        [ { st with Ast.sdesc = Ast.For (i, c, sp, add_shutdown_stmts nw body) } ]
      | Ast.Block body ->
        [ { st with Ast.sdesc = Ast.Block (add_shutdown_stmts nw body) } ]
      | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Expr _ -> [ st ])
    stmts

(** Parallelise [p] for [n_cores] cores using the given verified pattern
    instances.  Returns the rewritten program and the metadata.  With no
    instances or a single core, returns the program unchanged. *)
let run ?(distribution = Block) ?(sync = Done_channel) ~(n_cores : int)
    (p : Ast.program) (instances : Pattern.instance list) :
    Ast.program * Par_info.t =
  if n_cores <= 1 || instances = [] then (p, Par_info.sequential)
  else begin
    let nw = n_cores - 1 in
    let a =
      { n_workers = nw; distribution; sync; next_chan = nw; next_barrier = 0;
        extra_globals = []; extra_funcs = [] }
    in
    let gens = List.map (gen_instance a) instances in
    (* rewrite the containing functions *)
    let table = List.map2 (fun g i -> (i.Pattern.loop_stmt, g.master_block)) gens instances in
    let funcs =
      List.map
        (fun (f : Ast.func) ->
          let body = rewrite_stmts table f.Ast.fbody in
          let body =
            if f.Ast.fname = "main" then
              let body = add_shutdown_stmts nw body in
              (* main always ends in a return (typechecked), but guard
                 against fall-through by appending a shutdown+return *)
              body
            else body
          in
          { f with Ast.fbody = body })
        p.Ast.funcs
    in
    (* per-worker dispatch branches *)
    let workers =
      List.init nw (fun i ->
          let w = i + 1 in
          let branches =
            List.filter_map
              (fun g ->
                match List.assoc_opt w g.worker_branches with
                | Some body -> Some (g.cg.Par_info.tag, body)
                | None -> None)
              gens
          in
          worker_func w branches)
    in
    let program =
      {
        Ast.globals = p.Ast.globals @ a.extra_globals;
        funcs = funcs @ a.extra_funcs @ workers;
      }
    in
    let info =
      {
        Par_info.n_workers = nw;
        entries = "main" :: List.map (fun w -> w.Ast.fname) workers;
        n_channels = a.next_chan;
        n_barriers = a.next_barrier;
        chan_capacity = 4;
        instances = List.map (fun g -> g.cg) gens;
      }
    in
    (program, info)
  end
