lib/ir/builder.ml: Ir Prog
