lib/ir/lower.ml: Builder Format Hashtbl Ir List Lp_lang Option Printf Prog
