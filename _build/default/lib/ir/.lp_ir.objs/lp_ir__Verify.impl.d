lib/ir/verify.ml: Format Hashtbl Ir List Prog
