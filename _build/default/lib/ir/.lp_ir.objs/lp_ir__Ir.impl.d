lib/ir/ir.ml: List Lp_power Printf String
