lib/ir/printer.ml: Buffer Ir List Printf Prog String
