lib/ir/prog.ml: Hashtbl Ir List Lp_util Printf
