(** Textual dump of IR functions and programs, for debugging and golden
    tests. *)

let func_to_string (f : Prog.func) : string =
  let buf = Buffer.create 512 in
  let params =
    String.concat ", "
      (List.map
         (fun (r, ty) -> Printf.sprintf "r%d:%s" r (Ir.ty_to_string ty))
         f.Prog.params)
  in
  let ret =
    match f.Prog.ret with None -> "void" | Some ty -> Ir.ty_to_string ty
  in
  Buffer.add_string buf (Printf.sprintf "func %s(%s) : %s\n" f.Prog.fname params ret);
  List.iter
    (fun (name, ty, len) ->
      Buffer.add_string buf
        (Printf.sprintf "  frame %%%s : %s[%d]\n" name (Ir.ty_to_string ty) len))
    f.Prog.frame_arrays;
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "L%d:\n" b.Ir.bid);
      List.iter
        (fun i ->
          Buffer.add_string buf ("  " ^ Ir.idesc_to_string i.Ir.idesc ^ "\n"))
        b.Ir.instrs;
      Buffer.add_string buf ("  " ^ Ir.term_to_string b.Ir.term ^ "\n"))
    (Prog.blocks_in_order f);
  Buffer.contents buf

let prog_to_string (p : Prog.t) : string =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (g : Prog.global) ->
      Buffer.add_string buf
        (Printf.sprintf "global @%s : %s[%d]%s\n" g.Prog.gsym
           (Ir.ty_to_string g.Prog.gty) g.Prog.gsize
           (match g.Prog.ginit with
           | None -> ""
           | Some xs ->
             " = {"
             ^ String.concat "," (List.map string_of_int xs)
             ^ "}")))
    p.Prog.globals;
  (match p.Prog.layout with
  | Prog.Sequential -> Buffer.add_string buf "layout sequential\n"
  | Prog.Parallel { entries; n_channels; n_barriers; chan_capacity } ->
    Buffer.add_string buf
      (Printf.sprintf "layout parallel entries=[%s] channels=%d barriers=%d cap=%d\n"
         (String.concat ";" entries) n_channels n_barriers chan_capacity));
  List.iter
    (fun f -> Buffer.add_string buf (func_to_string f ^ "\n"))
    (Prog.funcs p);
  Buffer.contents buf
