lib/core/compile.mli: Lp_ir Lp_lang Lp_machine Lp_patterns Lp_sim Lp_transforms
