lib/core/compile.ml: List Lp_analysis Lp_ir Lp_lang Lp_machine Lp_patterns Lp_power Lp_sim Lp_transforms Printf
