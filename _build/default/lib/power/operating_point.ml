(** Voltage/frequency operating points for compiler-directed DVFS.

    Each core of the machine can run at one of a small number of discrete
    operating points (as on embedded SoCs of the PAC Duo era).  Dynamic
    energy per operation scales with [v^2]; leakage power scales roughly
    linearly with [v]; execution time of a fixed cycle count scales with
    [1 / freq]. *)

type t = {
  level : int;          (** 0 = slowest/lowest voltage *)
  freq_mhz : float;     (** core clock *)
  voltage : float;      (** supply voltage in volts *)
}

let make ~level ~freq_mhz ~voltage =
  if freq_mhz <= 0.0 then invalid_arg "Operating_point.make: freq";
  if voltage <= 0.0 then invalid_arg "Operating_point.make: voltage";
  { level; freq_mhz; voltage }

(** Nanoseconds taken by [cycles] clock cycles at this point. *)
let ns_of_cycles t cycles = float_of_int cycles *. (1000.0 /. t.freq_mhz)

(** Dynamic-energy scale factor relative to a nominal point: [v^2] ratio.
    Frequency does not appear because we charge energy per executed
    operation, not power over time. *)
let dynamic_scale ~nominal t =
  (t.voltage /. nominal.voltage) ** 2.0

(** Leakage-power scale factor relative to nominal: linear in voltage. *)
let leakage_scale ~nominal t = t.voltage /. nominal.voltage

let to_string t =
  Printf.sprintf "L%d(%.0fMHz,%.2fV)" t.level t.freq_mhz t.voltage

(** Build a ladder of [n] operating points between [fmin,vmin] and
    [fmax,vmax] with evenly spaced frequency and voltage.  Level [n-1] is
    the nominal (fastest) point. *)
let ladder ~n ~fmin ~fmax ~vmin ~vmax =
  if n < 1 then invalid_arg "Operating_point.ladder: n";
  if n = 1 then [ make ~level:0 ~freq_mhz:fmax ~voltage:vmax ]
  else
    List.init n (fun i ->
        let frac = float_of_int i /. float_of_int (n - 1) in
        make ~level:i
          ~freq_mhz:(fmin +. (frac *. (fmax -. fmin)))
          ~voltage:(vmin +. (frac *. (vmax -. vmin))))
