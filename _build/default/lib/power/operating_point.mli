(** Voltage/frequency operating points for compiler-directed DVFS. *)

type t = {
  level : int;       (** 0 = slowest/lowest voltage *)
  freq_mhz : float;
  voltage : float;
}

(** Raises [Invalid_argument] on non-positive frequency or voltage. *)
val make : level:int -> freq_mhz:float -> voltage:float -> t

(** Nanoseconds taken by a cycle count at this point. *)
val ns_of_cycles : t -> int -> float

(** Dynamic-energy scale relative to [nominal]: [(v/v_nom)^2]. *)
val dynamic_scale : nominal:t -> t -> float

(** Leakage-power scale relative to [nominal]: [v/v_nom]. *)
val leakage_scale : nominal:t -> t -> float

val to_string : t -> string

(** [ladder ~n ~fmin ~fmax ~vmin ~vmax] builds [n] evenly spaced points,
    level [n-1] being the fastest (nominal). *)
val ladder :
  n:int -> fmin:float -> fmax:float -> vmin:float -> vmax:float -> t list
