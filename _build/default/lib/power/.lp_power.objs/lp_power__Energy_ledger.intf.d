lib/power/energy_ledger.mli: Component Format
