lib/power/operating_point.ml: List Printf
