lib/power/component.ml: Format List Printf Stdlib String
