lib/power/power_model.ml: Component List Operating_point Printf
