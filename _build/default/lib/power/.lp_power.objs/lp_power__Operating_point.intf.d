lib/power/operating_point.mli:
