lib/power/power_model.mli: Component Operating_point
