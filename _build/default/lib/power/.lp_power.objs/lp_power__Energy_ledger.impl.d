lib/power/energy_ledger.ml: Array Component Format Hashtbl List Printf String
