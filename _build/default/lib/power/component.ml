(** Gateable datapath components of an embedded core.

    Power gating in this reproduction follows the component-activity model
    of the NTHU compiler line: the unit of gating is a function unit of the
    core, not the whole core.  Every IR instruction declares which
    component executes it; the compiler's component-activity analysis finds
    idle windows and brackets them with [pg_off]/[pg_on]. *)

type t =
  | Alu            (** integer add/sub/logic/compare; never gated (always live) *)
  | Multiplier     (** integer multiply *)
  | Divider        (** integer divide/modulo *)
  | Mac            (** multiply-accumulate unit *)
  | Shifter        (** barrel shifter *)
  | Load_store     (** memory port *)
  | Branch_unit    (** control transfer *)
  | Fpu            (** floating point unit *)

let all = [ Alu; Multiplier; Divider; Mac; Shifter; Load_store; Branch_unit; Fpu ]

let count = List.length all

let index = function
  | Alu -> 0
  | Multiplier -> 1
  | Divider -> 2
  | Mac -> 3
  | Shifter -> 4
  | Load_store -> 5
  | Branch_unit -> 6
  | Fpu -> 7

let of_index = function
  | 0 -> Alu
  | 1 -> Multiplier
  | 2 -> Divider
  | 3 -> Mac
  | 4 -> Shifter
  | 5 -> Load_store
  | 6 -> Branch_unit
  | 7 -> Fpu
  | i -> invalid_arg (Printf.sprintf "Component.of_index: %d" i)

let to_string = function
  | Alu -> "alu"
  | Multiplier -> "mul"
  | Divider -> "div"
  | Mac -> "mac"
  | Shifter -> "shift"
  | Load_store -> "ldst"
  | Branch_unit -> "br"
  | Fpu -> "fpu"

let of_string = function
  | "alu" -> Alu
  | "mul" -> Multiplier
  | "div" -> Divider
  | "mac" -> Mac
  | "shift" -> Shifter
  | "ldst" -> Load_store
  | "br" -> Branch_unit
  | "fpu" -> Fpu
  | s -> invalid_arg ("Component.of_string: " ^ s)

(** Components that the compiler is allowed to gate.  The ALU and branch
    unit execute the gating/control instructions themselves, so gating them
    would deadlock the core; they are excluded, matching the usual
    restriction in component-level power-gating work. *)
let gateable = function
  | Alu | Branch_unit -> false
  | Multiplier | Divider | Mac | Shifter | Load_store | Fpu -> true

let pp fmt c = Format.pp_print_string fmt (to_string c)

(** Sets of components, used pervasively by the activity analysis. *)
module Set = struct
  include Stdlib.Set.Make (struct
    type nonrec t = t
    let compare a b = compare (index a) (index b)
  end)

  let all_gateable =
    List.fold_left
      (fun acc c -> if gateable c then add c acc else acc)
      empty all

  let to_string s =
    "{" ^ String.concat "," (List.map to_string (elements s)) ^ "}"
end

module Map = Stdlib.Map.Make (struct
  type nonrec t = t
  let compare a b = compare (index a) (index b)
end)
