(** Embedded multicore machine descriptions.

    A machine is a set of homogeneous cores, each with its own set of
    gateable components and an independent DVFS domain (per-core DVFS, as
    on cluster-based embedded SoCs), connected by a shared bus to a shared
    memory; each core also has a private scratchpad.  Inter-core
    communication uses hardware channels (mailbox/DMA style) whose cost is
    charged on the bus. *)

module Component = Lp_power.Component
module Power_model = Lp_power.Power_model

type t = {
  name : string;
  n_cores : int;
  power : Power_model.t;        (** per-core power model (homogeneous) *)
  components : Component.t list; (** components present in each core *)
  bus_latency_cycles : int;     (** base bus transaction latency (nominal cycles) *)
  bus_word_cycles : int;        (** additional cycles per word transferred *)
  bus_energy_per_word_nj : float;
  shared_mem_latency_cycles : int;  (** shared memory access beyond bus *)
  spm_latency_cycles : int;         (** private scratchpad access *)
  channel_setup_cycles : int;       (** per send/recv handshake *)
}

let validate t =
  if t.n_cores < 1 then invalid_arg "Machine: n_cores must be >= 1";
  if t.components = [] then invalid_arg "Machine: no components";
  if not (List.mem Component.Alu t.components) then
    invalid_arg "Machine: cores must have an ALU";
  t

(** Generic embedded multicore with [n_cores] cores.  This is the machine
    used by the main evaluation; 4 cores by default. *)
let generic ?(name = "generic") ?(n_cores = 4) ?(power = Power_model.default ())
    () =
  validate
    {
      name = Printf.sprintf "%s-%dc" name n_cores;
      n_cores;
      power;
      components = Component.all;
      bus_latency_cycles = 8;
      bus_word_cycles = 2;
      bus_energy_per_word_nj = 0.5;
      shared_mem_latency_cycles = 12;
      spm_latency_cycles = 1;
      channel_setup_cycles = 10;
    }

(** A PAC-Duo-flavoured configuration: 2 DSP cores, no FPU (floating point
    is done in fixed point on the MAC), slightly slower bus. *)
let pac_duo_like () =
  validate
    {
      name = "pacduo-2c";
      n_cores = 2;
      power = Power_model.default ~n_levels:4 ();
      components =
        [ Component.Alu; Component.Multiplier; Component.Divider;
          Component.Mac; Component.Shifter; Component.Load_store;
          Component.Branch_unit ];
      bus_latency_cycles = 10;
      bus_word_cycles = 3;
      bus_energy_per_word_nj = 0.6;
      shared_mem_latency_cycles = 16;
      spm_latency_cycles = 1;
      channel_setup_cycles = 12;
    }

(** Cluster of 8 small cores on a leakage-heavy node, for the sensitivity
    experiments. *)
let octa_leaky () =
  validate
    {
      (generic ~name:"octa-leaky" ~n_cores:8 ~power:(Power_model.leaky ()) ()) with
      bus_latency_cycles = 12;
    }

let with_cores t n = validate { t with n_cores = n; name = Printf.sprintf "%s@%dc" t.name n }

let with_power t power = { t with power }

let has_component t c = List.mem c t.components

let pp fmt t =
  Format.fprintf fmt "%s: %d cores, %d components, %d V/f points" t.name
    t.n_cores
    (List.length t.components)
    (List.length (Power_model.points t.power))
