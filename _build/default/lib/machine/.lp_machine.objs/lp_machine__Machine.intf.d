lib/machine/machine.mli: Format Lp_power
