lib/machine/machine.ml: Format List Lp_power Printf
