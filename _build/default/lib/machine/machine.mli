(** Embedded multicore machine descriptions: homogeneous cores with
    per-component power gating and per-core DVFS, a shared bus to shared
    memory, per-core scratchpads, and dedicated inter-core mailbox
    links. *)

module Component = Lp_power.Component
module Power_model = Lp_power.Power_model

type t = {
  name : string;
  n_cores : int;
  power : Power_model.t;            (** per-core model (homogeneous) *)
  components : Component.t list;    (** components present in each core *)
  bus_latency_cycles : int;         (** base bus transaction latency *)
  bus_word_cycles : int;            (** additional cycles per word *)
  bus_energy_per_word_nj : float;
  shared_mem_latency_cycles : int;  (** array access beyond the bus *)
  spm_latency_cycles : int;         (** private scratchpad / ROM access *)
  channel_setup_cycles : int;       (** per send/recv handshake *)
}

(** Raises [Invalid_argument] on inconsistent descriptions (no cores, no
    ALU, ...); all constructors below validate. *)
val validate : t -> t

(** Generic embedded multicore (default 4 cores), used by the main
    evaluation. *)
val generic : ?name:string -> ?n_cores:int -> ?power:Power_model.t -> unit -> t

(** PAC-Duo-flavoured 2-core DSP: no FPU, slower bus. *)
val pac_duo_like : unit -> t

(** 8 cores on a leakage-heavy node (3x leakage). *)
val octa_leaky : unit -> t

val with_cores : t -> int -> t
val with_power : t -> Power_model.t -> t
val has_component : t -> Component.t -> bool
val pp : Format.formatter -> t -> unit
