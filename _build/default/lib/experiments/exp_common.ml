(** Shared plumbing for the evaluation experiments (tables T1-T5, figures
    F1-F6).  Each experiment module exposes [run : unit -> Lp_util.Table.t
    list] so the benchmark executable, the CLI and the tests can all drive
    the same code. *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Pattern = Lp_patterns.Pattern
module Workload = Lp_workloads.Workload
module Table = Lp_util.Table

(** The machine of the main evaluation. *)
let default_machine () = Machine.generic ~n_cores:4 ()

(** Big machine for the core-count sweep. *)
let machine_with_cores n = Machine.generic ~n_cores:n ()

(** The compiler configurations every energy table compares. *)
let standard_configs ~n_cores =
  [
    ("baseline", Compile.baseline);
    ("pg", Compile.pg_only);
    ("dvfs", Compile.dvfs_only);
    ("pg+dvfs", Compile.pg_dvfs);
    ("par", Compile.par_only ~n_cores);
    ("full", Compile.full ~n_cores);
  ]

type run_result = {
  workload : string;
  config : string;
  compiled : Compile.compiled;
  outcome : Sim.outcome;
}

(* simple memo so that T3/T4/F2/F6 don't re-simulate the same
   (workload, config, machine) triple *)
let cache : (string * string * string, run_result) Hashtbl.t =
  Hashtbl.create 64

let run_workload ?(machine = default_machine ()) (w : Workload.t)
    ~(config : string) (opts : Compile.options) : run_result =
  let key = (w.Workload.name, config, machine.Machine.name) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let (compiled, outcome) = Compile.run ~opts ~machine w.Workload.source in
    let r = { workload = w.Workload.name; config; compiled; outcome } in
    Hashtbl.replace cache key r;
    r

let energy r = Ledger.total r.outcome.Sim.energy
let time_ns r = r.outcome.Sim.duration_ns
let edp r = Sim.edp r.outcome

(** Energy of [config] normalised to the baseline run. *)
let normalised ~base r = energy r /. energy base

let fmt_ratio = Table.fmt_float ~digits:3

(** Count non-empty source lines of a workload. *)
let source_loc (w : Workload.t) =
  String.split_on_char '\n' w.Workload.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let all_workloads = Lp_workloads.Suite.all

let geomean_of xs = Lp_util.Stats.geomean xs
