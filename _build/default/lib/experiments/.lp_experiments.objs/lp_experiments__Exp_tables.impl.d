lib/experiments/exp_tables.ml: Compile Exp_common Hashtbl List Lp_ir Lp_lang Lp_transforms Lp_util Option Pattern String Table Workload
