lib/experiments/exp_figures.ml: Compile Exp_common List Lp_machine Lp_power Lp_transforms Lp_workloads Printf Sim Table Workload
