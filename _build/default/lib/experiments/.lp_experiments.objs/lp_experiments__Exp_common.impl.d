lib/experiments/exp_common.ml: Hashtbl List Lowpower Lp_machine Lp_patterns Lp_power Lp_sim Lp_util Lp_workloads String
