lib/experiments/experiments.ml: Exp_figures Exp_tables List Lp_util Printf Sys
