(** Benchmark workload descriptors.

    Each workload is a self-contained MiniC program whose input data is
    baked in as global initialiser lists produced by the deterministic
    RNG, so every compile/simulate run is reproducible.  [check_globals]
    names the shared arrays/scalars that constitute the result: the test
    suite asserts that every compiler configuration leaves them (and
    [main]'s checksum return value) identical to the baseline. *)

type t = {
  name : string;
  description : string;
  source : string;
  expected_pattern : string;
      (** pattern the workload is designed to expose ("none" when
          intentionally sequential) *)
  check_globals : string list;
}

(** Render an int array initialiser list. *)
let init_list values =
  "{" ^ String.concat "," (List.map string_of_int values) ^ "}"

(** Deterministic input data. *)
let rand_ints ~seed ~n ~lo ~hi =
  let rng = Lp_util.Rng.create ~seed in
  List.init n (fun _ -> Lp_util.Rng.int_in rng lo hi)
