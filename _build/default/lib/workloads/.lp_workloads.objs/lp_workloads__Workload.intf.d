lib/workloads/workload.mli:
