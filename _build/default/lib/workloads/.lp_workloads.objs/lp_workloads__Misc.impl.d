lib/workloads/misc.ml: Float List Printf Workload
