lib/workloads/kernels.ml: Printf Workload
