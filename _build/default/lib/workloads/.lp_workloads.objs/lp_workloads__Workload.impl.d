lib/workloads/workload.ml: List Lp_util String
