lib/workloads/media.ml: Printf Workload
