lib/workloads/suite.ml: Kernels List Media Misc Workload
