(** Media-flavoured workloads: pipelines, edge detection, fractal
    iteration counts. *)

open Workload

let imgpipe =
  let n = 2048 in
  let raw = rand_ints ~seed:201 ~n ~lo:0 ~hi:255 in
  {
    name = "imgpipe";
    description =
      "3-stage per-pixel image pipeline (transform/quantize/encode), \
       verified, with roughly balanced stages";
    expected_pattern = "pipeline(3)";
    check_globals = [ "ip_out" ];
    source =
      Printf.sprintf
        {|
int ip_raw[%d] = %s;
int ip_tmp[%d];
int ip_q[%d];
int ip_out[%d];

int main() {
  #pragma lp pattern(pipeline)
  for (int i = 0; i < %d; i = i + 1) {
    int acc = ip_raw[i] * 7;
    for (int k = 0; k < 8; k = k + 1) {
      acc = acc + ((ip_raw[i] * (k + 3)) >> 2) - (acc >> 3);
    }
    ip_tmp[i] = acc;
    #pragma lp stage
    int q = ip_tmp[i];
    int lvl = 0;
    for (int k = 0; k < 6; k = k + 1) {
      if (q > lvl * 9) { lvl = lvl + q / (k + 17); }
    }
    ip_q[i] = lvl;
    #pragma lp stage
    int qv = ip_q[i];
    int e = qv;
    for (int k = 0; k < 6; k = k + 1) {
      e = e + ((qv << (k %% 3)) - e) / 3;
    }
    if (i > 0) {
      ip_out[i] = e - ip_q[i - 1];
    } else {
      ip_out[i] = e;
    }
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + ip_out[i];
  }
  return chk;
}
|}
        n (init_list raw) n n n n n;
  }

let jpegblocks =
  let blocks = 144 and bsize = 16 in
  let n = blocks * bsize in
  let raw = rand_ints ~seed:202 ~n ~lo:0 ~hi:255 in
  {
    name = "jpegblocks";
    description =
      "block-based 3-stage codec pipeline (16-px blocks, trusted indices)";
    expected_pattern = "pipeline(3)";
    check_globals = [ "jb_out" ];
    source =
      Printf.sprintf
        {|
int jb_raw[%d] = %s;
int jb_dct[%d];
int jb_qnt[%d];
int jb_out[%d];

int main() {
  #pragma lp pattern(pipeline, trust)
  for (int b = 0; b < %d; b = b + 1) {
    for (int k = 0; k < %d; k = k + 1) {
      int s = 0;
      for (int j = 0; j < 8; j = j + 1) {
        s = s + jb_raw[b * %d + j * 2] * ((k * j) %% 7 - 3);
      }
      jb_dct[b * %d + k] = s;
    }
    #pragma lp stage
    for (int k = 0; k < %d; k = k + 1) {
      int v = jb_dct[b * %d + k];
      int q = v / (k + 2);
      q = q + (v - q * (k + 2)) / (k + 3);
      jb_qnt[b * %d + k] = q;
    }
    #pragma lp stage
    int run = 0;
    for (int k = 0; k < %d; k = k + 1) {
      int v = jb_qnt[b * %d + k];
      if (v < 0) { v = -v; }
      run = (run * 5 + v) %% 8191;
      jb_out[b * %d + k] = (v >> 1) + run %% 3;
    }
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + jb_out[i];
  }
  return chk;
}
|}
        n (init_list raw) n n n blocks bsize bsize bsize bsize bsize bsize
        bsize bsize bsize n;
  }

let susan =
  let w = 48 and h = 48 in
  let img = rand_ints ~seed:203 ~n:(w * h) ~lo:0 ~hi:255 in
  {
    name = "susan";
    description =
      "SUSAN-like corner response with boundary branches (inferred farm)";
    expected_pattern = "farm";
    check_globals = [ "su_out" ];
    source =
      Printf.sprintf
        {|
int su_img[%d] = %s;
int su_out[%d];

int main() {
  for (int i = 0; i < %d; i = i + 1) {
    int row = i / %d;
    int col = i %% %d;
    if (row > 0 && row < %d && col > 0 && col < %d) {
      int center = su_img[i];
      int n = 0;
      for (int dy = 0; dy < 3; dy = dy + 1) {
        for (int dx = 0; dx < 3; dx = dx + 1) {
          int p = su_img[(row + dy - 1) * %d + col + dx - 1];
          int d = p - center;
          if (d < 0) { d = -d; }
          if (d < 27) { n = n + 1; }
        }
      }
      su_out[i] = n;
    } else {
      su_out[i] = 0;
    }
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + su_out[i];
  }
  return chk;
}
|}
        (w * h) (init_list img) (w * h) (w * h) w w (h - 1) (w - 1) w (w * h);
  }

let fraciter =
  let n = 900 in
  {
    name = "fraciter";
    description =
      "fixed-point escape-time iteration per pixel (annotated farm, chunk 8)";
    expected_pattern = "farm";
    check_globals = [ "fr_out" ];
    source =
      Printf.sprintf
        {|
int fr_out[%d];

int main() {
  #pragma lp pattern(farm, chunk=8)
  for (int i = 0; i < %d; i = i + 1) {
    int cx = (i %% 30) * 34 - 512;
    int cy = (i / 30) * 34 - 512;
    int zx = 0;
    int zy = 0;
    int it = 0;
    int live = 1;
    while (live && it < 48) {
      int zx2 = (zx * zx) / 256 - (zy * zy) / 256 + cx;
      int zy2 = (2 * zx * zy) / 256 + cy;
      zx = zx2;
      zy = zy2;
      if (zx > 1024 || zx < -1024 || zy > 1024 || zy < -1024) { live = 0; }
      it = it + 1;
    }
    fr_out[i] = it;
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + fr_out[i];
  }
  return chk;
}
|}
        n n n;
  }

let audio5 =
  let n = 1400 in
  let pcm = rand_ints ~seed:204 ~n ~lo:(-2048) ~hi:2047 in
  {
    name = "audio5";
    description =
      "5-stage audio effects chain (gain/biquad-ish/clip/dither/pack); \
       deeper than most machines, exercising pipeline stage fusion";
    expected_pattern = "pipeline(5)";
    check_globals = [ "au_out" ];
    source =
      Printf.sprintf
        {|
int au_pcm[%d] = %s;
int au_g[%d];
int au_f[%d];
int au_c[%d];
int au_d[%d];
int au_out[%d];

int main() {
  #pragma lp pattern(pipeline)
  for (int i = 0; i < %d; i = i + 1) {
    int g = au_pcm[i] * 11;
    for (int k = 0; k < 4; k = k + 1) {
      g = g + (au_pcm[i] * (k + 2)) / 16;
    }
    au_g[i] = g;
    #pragma lp stage
    int acc = au_g[i] * 6;
    for (int k = 0; k < 5; k = k + 1) {
      acc = acc - (acc >> 2) + au_g[i] * k;
    }
    au_f[i] = acc / 8;
    #pragma lp stage
    int cv = au_f[i];
    if (cv > 16384) { cv = 16384 + (cv - 16384) / 4; }
    if (cv < -16384) { cv = -16384 + (cv + 16384) / 4; }
    for (int k = 0; k < 3; k = k + 1) {
      cv = cv - cv / (k + 9);
    }
    au_c[i] = cv;
    #pragma lp stage
    int dn = au_c[i] + ((i * 1103515245 + 12345) >> 18) %% 7 - 3;
    for (int k = 0; k < 3; k = k + 1) {
      dn = dn + ((dn >> (k + 3)) ^ (k * 5));
    }
    au_d[i] = dn;
    #pragma lp stage
    au_out[i] = ((au_d[i] >> 1) & 65535) ^ (au_d[i] << 3);
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + au_out[i];
  }
  return chk;
}
|}
        n (init_list pcm) n n n n n n n;
  }

let prodcons_stream =
  let n = 2200 in
  let samples = rand_ints ~seed:205 ~n ~lo:(-1000) ~hi:1000 in
  {
    name = "prodcons";
    description =
      "producer/consumer stream: feature extraction feeds thresholding \
       through a bounded buffer (annotated prodcons, 2 stages)";
    expected_pattern = "prodcons";
    check_globals = [ "pc_out" ];
    source =
      Printf.sprintf
        {|
int pc_in[%d] = %s;
int pc_feat[%d];
int pc_out[%d];

int main() {
  #pragma lp pattern(prodcons)
  for (int i = 0; i < %d; i = i + 1) {
    int v = pc_in[i];
    int energy = v * v;
    for (int k = 0; k < 5; k = k + 1) {
      energy = energy - (energy >> 3) + v * k;
    }
    pc_feat[i] = energy;
    #pragma lp stage
    int f = pc_feat[i];
    int label = 0;
    if (f > 40000) { label = 2; } else {
      if (f > 2000) { label = 1; }
    }
    for (int k = 0; k < 4; k = k + 1) {
      label = label + ((f >> (k + 6)) & 1);
    }
    pc_out[i] = label;
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + pc_out[i];
  }
  return chk;
}
|}
        n (init_list samples) n n n n;
  }
