(** Benchmark workload descriptors: self-contained MiniC programs with
    deterministic baked-in inputs. *)

type t = {
  name : string;
  description : string;
  source : string;
  expected_pattern : string;
      (** pattern the workload is designed to expose; "none" for the
          deliberately sequential programs *)
  check_globals : string list;
      (** result arrays/scalars the tests compare across configurations *)
}

(** Render an int list as a MiniC array initialiser. *)
val init_list : int list -> string

(** Deterministic input data in [\[lo, hi\]]. *)
val rand_ints : seed:int -> n:int -> lo:int -> hi:int -> int list
