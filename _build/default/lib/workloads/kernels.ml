(** DSP kernel workloads: FIR, dot products, matrix multiply, 2-D
    convolution, multi-channel IIR. *)

open Workload

let fir =
  let n = 1800 and taps = 16 in
  let sig_data = rand_ints ~seed:101 ~n:(n + taps) ~lo:(-128) ~hi:127 in
  let coef = rand_ints ~seed:102 ~n:taps ~lo:(-16) ~hi:16 in
  {
    name = "fir";
    description = "16-tap FIR filter over a 1800-sample signal";
    expected_pattern = "doall";
    check_globals = [ "fir_out" ];
    source =
      Printf.sprintf
        {|
int fir_sig[%d] = %s;
int fir_coef[%d] = %s;
int fir_out[%d];

int main() {
  for (int i = 0; i < %d; i = i + 1) {
    int s = 0;
    for (int k = 0; k < %d; k = k + 1) {
      s = s + fir_sig[i + k] * fir_coef[k];
    }
    fir_out[i] = s;
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + fir_out[i];
  }
  return chk;
}
|}
        (n + taps) (init_list sig_data) taps (init_list coef) n n taps n;
  }

let dotprod =
  let n = 4096 in
  let a = rand_ints ~seed:103 ~n ~lo:(-100) ~hi:100 in
  let b = rand_ints ~seed:104 ~n ~lo:(-100) ~hi:100 in
  {
    name = "dotprod";
    description = "integer dot product of two 4096-element vectors";
    expected_pattern = "reduction(+)";
    check_globals = [];
    source =
      Printf.sprintf
        {|
int dp_a[%d] = %s;
int dp_b[%d] = %s;

int main() {
  int acc = 0;
  for (int i = 0; i < %d; i = i + 1) {
    acc = acc + dp_a[i] * dp_b[i];
  }
  return acc;
}
|}
        n (init_list a) n (init_list b) n;
  }

let fdotprod =
  let n = 2048 in
  let a = rand_ints ~seed:105 ~n ~lo:(-50) ~hi:50 in
  let b = rand_ints ~seed:106 ~n ~lo:(-50) ~hi:50 in
  {
    name = "fdotprod";
    description = "floating-point dot product (exercises the FPU)";
    expected_pattern = "reduction(+f)";
    check_globals = [];
    source =
      Printf.sprintf
        {|
int fdp_ia[%d] = %s;
int fdp_ib[%d] = %s;
float fdp_a[%d];
float fdp_b[%d];

int main() {
  for (int i = 0; i < %d; i = i + 1) {
    fdp_a[i] = float(fdp_ia[i]) / 4.0;
    fdp_b[i] = float(fdp_ib[i]) / 8.0;
  }
  float acc = 0.0;
  for (int i = 0; i < %d; i = i + 1) {
    acc = acc + fdp_a[i] * fdp_b[i];
  }
  return int(acc);
}
|}
        n (init_list a) n (init_list b) n n n n;
  }

let matmul =
  let dim = 28 in
  let a = rand_ints ~seed:107 ~n:(dim * dim) ~lo:(-20) ~hi:20 in
  let b = rand_ints ~seed:108 ~n:(dim * dim) ~lo:(-20) ~hi:20 in
  {
    name = "matmul";
    description =
      Printf.sprintf "%dx%d integer matrix multiply, row-parallel (trusted)"
        dim dim;
    expected_pattern = "doall";
    check_globals = [ "mm_c" ];
    source =
      Printf.sprintf
        {|
int mm_a[%d] = %s;
int mm_b[%d] = %s;
int mm_c[%d];

int main() {
  #pragma lp pattern(doall, trust)
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      int s = 0;
      for (int k = 0; k < %d; k = k + 1) {
        s = s + mm_a[i * %d + k] * mm_b[k * %d + j];
      }
      mm_c[i * %d + j] = s;
    }
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + mm_c[i];
  }
  return chk;
}
|}
        (dim * dim) (init_list a) (dim * dim) (init_list b) (dim * dim) dim dim
        dim dim dim dim (dim * dim);
  }

let conv2d =
  let w = 46 and h = 46 in
  let img = rand_ints ~seed:109 ~n:(w * h) ~lo:0 ~hi:255 in
  let ow = w - 2 and oh = h - 2 in
  {
    name = "conv2d";
    description = "3x3 box convolution over a 46x46 image (uses divider)";
    expected_pattern = "doall";
    check_globals = [ "cv_out" ];
    source =
      Printf.sprintf
        {|
int cv_img[%d] = %s;
int cv_out[%d];

int main() {
  for (int i = 0; i < %d; i = i + 1) {
    int row = i / %d + 1;
    int col = i %% %d + 1;
    int s = 0;
    for (int dy = 0; dy < 3; dy = dy + 1) {
      for (int dx = 0; dx < 3; dx = dx + 1) {
        s = s + cv_img[(row + dy - 1) * %d + col + dx - 1];
      }
    }
    cv_out[i] = s / 9;
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + cv_out[i];
  }
  return chk;
}
|}
        (w * h) (init_list img) (ow * oh) (ow * oh) ow ow w (ow * oh);
  }

let iir =
  let channels = 8 and len = 480 in
  let input = rand_ints ~seed:110 ~n:(channels * len) ~lo:(-512) ~hi:511 in
  {
    name = "iir";
    description =
      "per-channel fixed-point IIR over 8 independent channels (trusted doall)";
    expected_pattern = "doall";
    check_globals = [ "iir_out" ];
    source =
      Printf.sprintf
        {|
int iir_in[%d] = %s;
int iir_out[%d];

int main() {
  #pragma lp pattern(doall, trust)
  for (int c = 0; c < %d; c = c + 1) {
    int y1 = 0;
    int y2 = 0;
    for (int t = 0; t < %d; t = t + 1) {
      int x = iir_in[c * %d + t];
      int y = x + (y1 * 3) / 4 - (y2 * 1) / 4;
      iir_out[c * %d + t] = y;
      y2 = y1;
      y1 = y;
    }
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + iir_out[i];
  }
  return chk;
}
|}
        (channels * len) (init_list input) (channels * len) channels len len
        len (channels * len);
  }
