(** Checksum / search / codec / transform workloads, including the two
    deliberately sequential programs that exercise the detector's
    rejection paths. *)

open Workload

let crc32 =
  let n = 4096 in
  let msg = rand_ints ~seed:301 ~n ~lo:0 ~hi:255 in
  {
    name = "crc32";
    description = "xor-fold checksum over a 4096-byte message (xor reduction)";
    expected_pattern = "reduction(^)";
    check_globals = [];
    source =
      Printf.sprintf
        {|
int crc_msg[%d] = %s;

int main() {
  int acc = 305419896;
  for (int i = 0; i < %d; i = i + 1) {
    acc = acc ^ (crc_msg[i] * (i %% 16 + 1) + (crc_msg[i] << (i %% 8)));
  }
  return acc;
}
|}
        n (init_list msg) n;
  }

let stringsearch =
  let n = 3072 in
  let pat_len = 8 in
  (* text drawn from a tiny alphabet so matches actually occur *)
  let text = rand_ints ~seed:302 ~n ~lo:0 ~hi:3 in
  let pat = rand_ints ~seed:303 ~n:pat_len ~lo:0 ~hi:3 in
  {
    name = "stringsearch";
    description = "count pattern occurrences in a 3072-char text (reduction)";
    expected_pattern = "reduction(+)";
    check_globals = [];
    source =
      Printf.sprintf
        {|
int ss_text[%d] = %s;
int ss_pat[%d] = %s;

int main() {
  int matches = 0;
  for (int i = 0; i < %d; i = i + 1) {
    int hit = 1;
    for (int k = 0; k < %d; k = k + 1) {
      if (ss_text[i + k] != ss_pat[k]) { hit = 0; }
    }
    matches = matches + hit;
  }
  return matches;
}
|}
        n (init_list text) pat_len (init_list pat) (n - pat_len) pat_len;
  }

let histogram =
  let n = 4096 in
  let img = rand_ints ~seed:304 ~n ~lo:0 ~hi:63 in
  {
    name = "histogram";
    description =
      "64-bin histogram; data-dependent writes make it provably \
       unparallelisable under the catalog (stays sequential)";
    expected_pattern = "none";
    check_globals = [ "hg_bins" ];
    source =
      Printf.sprintf
        {|
int hg_img[%d] = %s;
int hg_bins[64];

int main() {
  for (int i = 0; i < %d; i = i + 1) {
    hg_bins[hg_img[i]] = hg_bins[hg_img[i]] + 1;
  }
  int chk = 0;
  for (int i = 0; i < 64; i = i + 1) {
    chk = chk * 3 + hg_bins[i];
  }
  return chk;
}
|}
        n (init_list img) n;
  }

let adpcm =
  let n = 4000 in
  let input = rand_ints ~seed:305 ~n ~lo:(-512) ~hi:511 in
  {
    name = "adpcm";
    description =
      "ADPCM-like predictive coder; the predictor state is loop-carried, \
       so detection correctly rejects it (stays sequential)";
    expected_pattern = "none";
    check_globals = [ "ad_out" ];
    source =
      Printf.sprintf
        {|
int ad_in[%d] = %s;
int ad_out[%d];

int main() {
  int pred = 0;
  int step = 4;
  for (int i = 0; i < %d; i = i + 1) {
    int diff = ad_in[i] - pred;
    int code = diff / step;
    if (code > 7) { code = 7; }
    if (code < -8) { code = -8; }
    ad_out[i] = code;
    pred = pred + code * step;
    if (code > 3 || code < -4) { step = step * 2; } else {
      step = step / 2;
    }
    if (step < 4) { step = 4; }
    if (step > 512) { step = 512; }
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + ad_out[i];
  }
  return chk;
}
|}
        n (init_list input) n n n;
  }

let fft =
  let n = 256 in
  let logn = 8 in
  let re = rand_ints ~seed:306 ~n ~lo:(-128) ~hi:127 in
  let im = rand_ints ~seed:307 ~n ~lo:(-128) ~hi:127 in
  let scale = 1024 in
  let cos_tab =
    List.init (n / 2) (fun k ->
        int_of_float
          (Float.round
             (float_of_int scale
             *. cos (2.0 *. Float.pi *. float_of_int k /. float_of_int n))))
  in
  let sin_tab =
    List.init (n / 2) (fun k ->
        int_of_float
          (Float.round
             (float_of_int scale
             *. sin (2.0 *. Float.pi *. float_of_int k /. float_of_int n))))
  in
  {
    name = "fft";
    description =
      "256-point fixed-point FFT; each stage's butterfly loop is a trusted \
       doall nested in the sequential stage loop";
    expected_pattern = "doall";
    check_globals = [ "ff_re"; "ff_im" ];
    source =
      Printf.sprintf
        {|
int ff_re[%d] = %s;
int ff_im[%d] = %s;
int ff_cos[%d] = %s;
int ff_sin[%d] = %s;

int main() {
  for (int s = 0; s < %d; s = s + 1) {
    int half = 1 << s;
    int step = half * 2;
    int tw = %d >> (s + 1);
    #pragma lp pattern(doall, trust)
    for (int b = 0; b < %d; b = b + 1) {
      int group = b / half;
      int pos = b %% half;
      int j = group * step + pos;
      int k = j + half;
      int c = ff_cos[pos * tw];
      int d = ff_sin[pos * tw];
      int tr = (ff_re[k] * c + ff_im[k] * d) / %d;
      int ti = (ff_im[k] * c - ff_re[k] * d) / %d;
      int ur = ff_re[j];
      int ui = ff_im[j];
      ff_re[j] = (ur + tr) / 2;
      ff_im[j] = (ui + ti) / 2;
      ff_re[k] = (ur - tr) / 2;
      ff_im[k] = (ui - ti) / 2;
    }
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + ff_re[i] * 5 + ff_im[i];
  }
  return chk;
}
|}
        n (init_list re) n (init_list im) (n / 2) (init_list cos_tab) (n / 2)
        (init_list sin_tab) logn n (n / 2) scale scale n;
  }

let phases =
  let n = 1500 in
  let input = rand_ints ~seed:308 ~n ~lo:1 ~hi:255 in
  {
    name = "phases";
    description =
      "four-phase DSP chain with disjoint component usage per phase \
       (MAC, divider, FPU, shifter) — the Sink-N-Hoist stress case";
    expected_pattern = "doall";
    check_globals = [ "ph_out" ];
    source =
      Printf.sprintf
        {|
int ph_in[%d] = %s;
int ph_s1[%d];
int ph_s2[%d];
int ph_s3[%d];
int ph_out[%d];

int main() {
  for (int i = 0; i < %d; i = i + 1) {
    ph_s1[i] = ph_in[i] * 7 + ph_in[i] * 3 + 11;
  }
  for (int i = 0; i < %d; i = i + 1) {
    ph_s2[i] = ph_s1[i] / (ph_in[i] + 3);
  }
  for (int i = 0; i < %d; i = i + 1) {
    ph_s3[i] = int(float(ph_s2[i]) * 0.75 + 2.5);
  }
  for (int i = 0; i < %d; i = i + 1) {
    ph_out[i] = (ph_s3[i] >> 2) ^ (ph_s3[i] << 1);
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + ph_out[i];
  }
  return chk;
}
|}
        n (init_list input) n n n n n n n n n;
  }

let memops =
  let n = 3000 in
  {
    name = "memops";
    description =
      "stream transform where both input and output live in shared \
       memory (no ROM promotion possible): memory-bound, so DVFS fires \
       and parallel scaling is bus-limited";
    expected_pattern = "doall";
    check_globals = [ "mo_b" ];
    source =
      Printf.sprintf
        {|
int mo_a[%d];
int mo_b[%d];

int main() {
  for (int i = 0; i < %d; i = i + 1) {
    mo_a[i] = i * 13 %% 255 - 127;
  }
  for (int i = 0; i < %d; i = i + 1) {
    mo_b[i] = mo_a[i] + (mo_a[i] >> 3);
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + mo_b[i];
  }
  return chk;
}
|}
        n n n n n;
  }

let peakdetect =
  let n = 3600 in
  let sig_ = rand_ints ~seed:309 ~n ~lo:(-900) ~hi:900 in
  {
    name = "peakdetect";
    description =
      "maximum windowed signal energy over a 3600-sample trace \
       (inferred max-reduction)";
    expected_pattern = "reduction(max)";
    check_globals = [];
    source =
      Printf.sprintf
        {|
int pk_sig[%d] = %s;

int main() {
  int peak = -2147483647;
  for (int i = 0; i < %d; i = i + 1) {
    int e = 0;
    for (int w = 0; w < 4; w = w + 1) {
      e = e + pk_sig[i + w] * pk_sig[i + w];
    }
    if (e > peak) { peak = e; }
  }
  return peak;
}
|}
        n (init_list sig_) (n - 4);
  }

let tri =
  let n = 160 in
  let m = rand_ints ~seed:310 ~n ~lo:(-30) ~hi:30 in
  {
    name = "tri";
    description =
      "triangular solve-like kernel: row i costs O(i), so a block split \
       is badly imbalanced while a cyclic split balances (ablation A2)";
    expected_pattern = "doall";
    check_globals = [ "tr_out" ];
    source =
      Printf.sprintf
        {|
int tr_m[%d] = %s;
int tr_out[%d];

int main() {
  #pragma lp pattern(doall, trust)
  for (int i = 0; i < %d; i = i + 1) {
    int s = tr_m[i];
    for (int k = 0; k < i; k = k + 1) {
      s = s + tr_m[k] * (i - k);
    }
    tr_out[i] = s;
  }
  int chk = 0;
  for (int i = 0; i < %d; i = i + 1) {
    chk = chk * 3 + tr_out[i];
  }
  return chk;
}
|}
        n (init_list m) n n n;
  }
