(** The benchmark suite: the 13 workloads the evaluation runs, matching
    the archetypes (DSP kernels, media pipelines, search/codec programs)
    of the embedded suites that papers in this genre evaluate on. *)

let all : Workload.t list =
  [
    Kernels.fir;
    Kernels.dotprod;
    Kernels.fdotprod;
    Kernels.matmul;
    Kernels.conv2d;
    Kernels.iir;
    Media.imgpipe;
    Media.jpegblocks;
    Media.audio5;
    Media.prodcons_stream;
    Media.susan;
    Media.fraciter;
    Misc.crc32;
    Misc.stringsearch;
    Misc.histogram;
    Misc.adpcm;
    Misc.fft;
    Misc.phases;
    Misc.memops;
    Misc.peakdetect;
    Misc.tri;
  ]

let find name = List.find_opt (fun w -> w.Workload.name = name) all

let find_exn name =
  match find name with
  | Some w -> w
  | None -> invalid_arg ("unknown workload " ^ name)

let names = List.map (fun w -> w.Workload.name) all

(** Workloads that are expected to parallelise (used by the scaling
    figure F1). *)
let parallel_names =
  List.filter_map
    (fun w ->
      if w.Workload.expected_pattern = "none" then None
      else Some w.Workload.name)
    all

(** The four representative workloads used by the per-workload deep-dive
    figures (F1, F3): one doall kernel, one reduction, one farm, one
    pipeline. *)
let representative = [ "fir"; "dotprod"; "fraciter"; "imgpipe" ]
