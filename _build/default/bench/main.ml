(** Benchmark harness: regenerates every table (T1-T5) and figure series
    (F1-F6) of the reproduced evaluation, then runs the B1 bechamel
    micro-benchmarks of compile-pass throughput.

    Usage:
      dune exec bench/main.exe            # everything
      dune exec bench/main.exe t3 f1      # selected experiments
      dune exec bench/main.exe bechamel   # only the pass micro-benches *)

module E = Lp_experiments.Experiments

(* ------------------------------------------------------------------ *)
(* B1: bechamel micro-benchmarks of individual compiler passes          *)
(* ------------------------------------------------------------------ *)

let bechamel_passes () =
  let open Bechamel in
  let open Toolkit in
  let module T = Lp_transforms in
  let module W = Lp_workloads.Workload in
  let source = (Lp_workloads.Suite.find_exn "matmul").W.source in
  let fresh_prog () =
    let ast = Lowpower.Compile.parse_and_check source in
    Lp_ir.Lower.lower_program ast
  in
  let pass_test name (p : T.Pass.func_pass) =
    Test.make ~name
      (Staged.stage (fun () ->
           let prog = fresh_prog () in
           let pm = T.Pass.create_manager () in
           ignore (T.Pass.run_pass pm p prog)))
  in
  let machine = Lp_machine.Machine.generic ~n_cores:4 () in
  let tests =
    [
      Test.make ~name:"parse+lower"
        (Staged.stage (fun () -> ignore (fresh_prog ())));
      pass_test "constfold" T.Constfold.pass;
      pass_test "dce" T.Dce.pass;
      pass_test "simplify-cfg" T.Simplify_cfg.pass;
      pass_test "mac-fusion" T.Mac_fusion.pass;
      pass_test "const-promote" T.Const_promote.pass;
      Test.make ~name:"gating-insert+merge"
        (Staged.stage (fun () ->
             let prog = fresh_prog () in
             ignore (T.Gating.insert machine prog);
             ignore (T.Gating.merge machine prog)));
      Test.make ~name:"dvfs-insert"
        (Staged.stage (fun () ->
             let prog = fresh_prog () in
             ignore (T.Dvfs.insert machine prog)));
    ]
  in
  let test = Test.make_grouped ~name:"passes" ~fmt:"%s/%s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.6) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  print_endline "== B1: compile-pass micro-benchmarks (bechamel) ==";
  print_endline
    "(each staged run re-parses and re-lowers matmul so the pass sees \
     fresh IR; subtract the parse+lower row for pass-only cost)";
  let results = benchmark () in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (x :: _) -> Printf.sprintf "%12.1f ns/run" x
              | _ -> "           n/a"
            in
            let r2 =
              match Analyze.OLS.r_square ols with
              | Some r -> Printf.sprintf "r²=%.3f" r
              | None -> ""
            in
            Printf.printf "%-28s %s  %s\n" name est r2)
          tbl)
    results;
  print_newline ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let want id = args = [] || List.mem id args in
  List.iter
    (fun (e : E.entry) -> if want e.E.id then E.run_and_print e)
    E.all;
  if want "bechamel" then bechamel_passes ()
