(** Simulator microbenchmark driver.

    Default mode times the closure-compiled stepper against the
    interpretive reference over the committed workload suite and writes
    [BENCH_sim.json] (schema [lowpower-bench-sim/1], see
    lib/experiments/simbench.mli) — the artifact CI uploads so the
    simulator's raw speed is tracked from PR to PR.

    [--metrics PATH] instead writes the {e deterministic} per-workload
    simulated metrics (no wall-clock anywhere) under the mode selected
    by [--no-sim-predecode] / [LP_NO_SIM_PREDECODE]; CI runs it once per
    mode and byte-diffs the two files, proving the modes agree on every
    workload of the suite.

    Usage:
      dune exec bench/sim_bench.exe                    # BENCH_sim.json
      dune exec bench/sim_bench.exe -- --json PATH     # custom output
      dune exec bench/sim_bench.exe -- --min-wall 0.5  # steadier timing
      dune exec bench/sim_bench.exe -- --metrics PATH [--no-sim-predecode] *)

module Simbench = Lp_experiments.Simbench
module Runtime_config = Lp_util.Runtime_config
module J = Lp_util.Json

let usage () =
  prerr_endline
    "usage: sim_bench.exe [--json PATH] [--min-wall SECONDS] \
     [--metrics PATH] [--no-sim-predecode]";
  exit 2

(* same atomic-write discipline as BENCH_eval.json: temp file in the
   same directory, then rename *)
let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      output_string oc contents;
      close_out oc;
      Sys.rename tmp path)

let () =
  let json_path = ref "BENCH_sim.json" in
  let metrics_path = ref None in
  let min_wall = ref None in
  let no_sim_predecode = ref false in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
      json_path := path;
      parse rest
    | [ "--json" ] -> usage ()
    | "--metrics" :: path :: rest ->
      metrics_path := Some path;
      parse rest
    | [ "--metrics" ] -> usage ()
    | "--min-wall" :: s :: rest -> (
      match float_of_string_opt s with
      | Some w when w > 0.0 ->
        min_wall := Some w;
        parse rest
      | _ -> usage ())
    | [ "--min-wall" ] -> usage ()
    | "--no-sim-predecode" :: rest ->
      no_sim_predecode := true;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* flag > environment > default, like every other entry point *)
  let config =
    Runtime_config.resolve ~no_sim_predecode:!no_sim_predecode
      (Runtime_config.from_env ())
  in
  match !metrics_path with
  | Some path ->
    let predecode = not config.Runtime_config.no_sim_predecode in
    let j = Simbench.metrics ~predecode () in
    write_file path (J.to_string j ^ "\n");
    Printf.printf "wrote %s (predecode %s)\n%!" path
      (if predecode then "on" else "off")
  | None ->
    (* throughput mode times both simulator modes by construction, so
       the escape hatch does not apply here *)
    let t = Simbench.measure ?min_wall_s:!min_wall () in
    Printf.printf "== sim microbenchmark (%s machine, %s config) ==\n"
      t.Simbench.sb_machine t.Simbench.sb_config;
    Printf.printf "%-16s %10s %14s %14s %8s\n" "workload" "instrs"
      "on [Minstr/s]" "off [Minstr/s]" "speedup";
    List.iter
      (fun (r : Simbench.row) ->
        Printf.printf "%-16s %10d %14.2f %14.2f %7.2fx\n" r.Simbench.sb_workload
          r.Simbench.sb_instrs
          (r.Simbench.sb_on.Simbench.instrs_per_sec /. 1e6)
          (r.Simbench.sb_off.Simbench.instrs_per_sec /. 1e6)
          r.Simbench.sb_speedup)
      t.Simbench.sb_rows;
    Printf.printf "suite: %.2f Minstr/s on vs %.2f Minstr/s off (%.2fx)\n"
      (t.Simbench.sb_total_on /. 1e6)
      (t.Simbench.sb_total_off /. 1e6)
      t.Simbench.sb_total_speedup;
    write_file !json_path (J.to_string (Simbench.to_json t) ^ "\n");
    Printf.printf "wrote %s\n%!" !json_path
