(** Benchmark harness: regenerates every table (T1-T5) and figure series
    (F1-F6) of the reproduced evaluation, then runs the B1 bechamel
    micro-benchmarks of compile-pass throughput.

    The evaluation matrix fans out over [Lp_util.Domain_pool]; every run
    appends a machine-readable [BENCH_eval.json] snapshot (wall-clock per
    experiment, pool size, and — when a sequential reference pass ran —
    the speedup) so the repo accumulates a perf trajectory.

    Usage:
      dune exec bench/main.exe                 # everything, default pool
      dune exec bench/main.exe -- t3 f1        # selected experiments
      dune exec bench/main.exe -- sweep        # machine-zoo design-space
                                               # sweep (BENCH_sweep.json)
      dune exec bench/main.exe -- t1 --jobs 4  # 4-domain pool, plus a
                                               # sequential reference pass
      dune exec bench/main.exe -- t1 --jobs 4 --no-compare   # skip the ref
      dune exec bench/main.exe -- seq          # force sequential (jobs=1)
      dune exec bench/main.exe -- bechamel     # only the pass micro-benches *)

module E = Lp_experiments.Experiments
module Baseline = Lp_experiments.Baseline
module Exp_common = Lp_experiments.Exp_common
module DP = Lp_util.Domain_pool
module Runtime_config = Lp_util.Runtime_config
module Obs = Lp_obs.Obs
module Report = Lp_obs.Report

(* ------------------------------------------------------------------ *)
(* B1: bechamel micro-benchmarks of individual compiler passes          *)
(* ------------------------------------------------------------------ *)

let bechamel_passes () =
  let open Bechamel in
  let open Toolkit in
  let module T = Lp_transforms in
  let module W = Lp_workloads.Workload in
  let source = (Lp_workloads.Suite.find_exn "matmul").W.source in
  let fresh_prog () =
    let ast = Lowpower.Compile.parse_and_check source in
    Lp_ir.Lower.lower_program ast
  in
  let pass_test name (p : T.Pass.func_pass) =
    Test.make ~name
      (Staged.stage (fun () ->
           let prog = fresh_prog () in
           let pm = T.Pass.create_manager () in
           ignore (T.Pass.run_pass pm p prog)))
  in
  let machine = Lp_machine.Machine.generic ~n_cores:4 () in
  let tests =
    [
      Test.make ~name:"parse+lower"
        (Staged.stage (fun () -> ignore (fresh_prog ())));
      pass_test "constfold" T.Constfold.pass;
      pass_test "dce" T.Dce.pass;
      pass_test "simplify-cfg" T.Simplify_cfg.pass;
      pass_test "mac-fusion" T.Mac_fusion.pass;
      pass_test "const-promote" T.Const_promote.pass;
      Test.make ~name:"gating-insert+merge"
        (Staged.stage (fun () ->
             let prog = fresh_prog () in
             ignore (T.Gating.insert machine prog);
             ignore (T.Gating.merge machine prog)));
      Test.make ~name:"dvfs-insert"
        (Staged.stage (fun () ->
             let prog = fresh_prog () in
             ignore (T.Dvfs.insert machine prog)));
    ]
  in
  let test = Test.make_grouped ~name:"passes" ~fmt:"%s/%s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.6) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  print_endline "== B1: compile-pass micro-benchmarks (bechamel) ==";
  print_endline
    "(each staged run re-parses and re-lowers matmul so the pass sees \
     fresh IR; subtract the parse+lower row for pass-only cost)";
  let results = benchmark () in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (x :: _) -> Printf.sprintf "%12.1f ns/run" x
              | _ -> "           n/a"
            in
            let r2 =
              match Analyze.OLS.r_square ols with
              | Some r -> Printf.sprintf "r²=%.3f" r
              | None -> ""
            in
            Printf.printf "%-28s %s  %s\n" name est r2)
          tbl)
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* BENCH_eval.json                                                      *)
(* ------------------------------------------------------------------ *)

(** Schema (see docs/PERF.md): one JSON object per invocation.
    [seq_wall_s]/[speedup] fields are null unless a sequential reference
    pass ran in the same invocation.  Each experiment entry also carries
    the simulated metrics of the cells it evaluated first ([cycles],
    [energy_nj], [cells_evaluated]) — the numbers the regression
    baseline tracks.  [cells] carries the per-cell status of the
    evaluation matrix: which (workload, config, machine) triples
    degraded to a diagnostic, and how many attempts each took.

    The file is written atomically (temp file in the same directory, then
    rename) so a crash mid-write never leaves a truncated snapshot. *)
let write_bench_json ~path ~jobs ~(par : (string * float) list)
    ~(seq : (string * float) list option)
    ~(exp_metrics : (string * (float * float * int)) list) =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let fnum x = Printf.sprintf "%.6f" x in
      let total xs = List.fold_left (fun a (_, s) -> a +. s) 0.0 xs in
      let seq_of id =
        Option.bind seq (fun s -> List.assoc_opt id s)
      in
      let opt_num = function Some x -> fnum x | None -> "null" in
      Printf.fprintf oc
        "{\n  \"schema\": \"lowpower-bench-eval/1\",\n  \"pool_jobs\": %d,\n  \
         \"recommended_domains\": %d,\n  \"experiments\": [\n"
        jobs
        (Domain.recommended_domain_count ());
      List.iteri
        (fun i (id, s) ->
          let speedup = Option.map (fun sq -> sq /. s) (seq_of id) in
          let (cycles, energy, n_cells) =
            Option.value ~default:(0.0, 0.0, 0)
              (List.assoc_opt id exp_metrics)
          in
          Printf.fprintf oc
            "    {\"id\": %S, \"wall_s\": %s, \"seq_wall_s\": %s, \
             \"speedup\": %s, \"cycles\": %s, \"energy_nj\": %s, \
             \"cells_evaluated\": %d}%s\n"
            id (fnum s)
            (opt_num (seq_of id))
            (opt_num speedup)
            (Lp_util.Json.num_to_string cycles)
            (Lp_util.Json.num_to_string energy)
            n_cells
            (if i = List.length par - 1 then "" else ","))
        par;
      let tp = total par in
      let ts = Option.map total seq in
      let cells = Lp_experiments.Exp_common.cell_statuses () in
      let n_failed =
        List.length (List.filter (fun (_, _, code) -> code <> None) cells)
      in
      Printf.fprintf oc
        "  ],\n  \"total_wall_s\": %s,\n  \"seq_total_wall_s\": %s,\n  \
         \"speedup\": %s,\n  \"cells_total\": %d,\n  \"cells_failed\": %d,\n  \
         \"cells\": [\n"
        (fnum tp) (opt_num ts)
        (opt_num (Option.map (fun t -> t /. tp) ts))
        (List.length cells) n_failed;
      List.iteri
        (fun i ((w, c, m), attempts, code) ->
          Printf.fprintf oc
            "    {\"workload\": %S, \"config\": %S, \"machine\": %S, \
             \"attempts\": %d, \"status\": %s}%s\n"
            w c m attempts
            (match code with
            | None -> "\"ok\""
            | Some code -> Printf.sprintf "%S" code)
            (if i = List.length cells - 1 then "" else ","))
        cells;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Sys.rename tmp path)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: main.exe [ID ...] [--jobs N | seq] [--no-compare] [--json PATH] \
     [--faults SPEC] [--retries N] [--trace FILE] [--report FILE] \
     [--check-baseline FILE] [--write-baseline FILE] [--no-analysis-cache] \
     [--no-sim-predecode]";
  exit 2

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let ids = ref [] in
  let jobs_flag = ref None in
  let retries_flag = ref None in
  let faults_flag = ref None in
  let trace_flag = ref None in
  let report_flag = ref None in
  let check_baseline = ref None in
  let write_baseline = ref None in
  let compare = ref true in
  let no_analysis_cache = ref false in
  let no_sim_predecode = ref false in
  let json_path = ref "BENCH_eval.json" in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs_flag := Some n;
        parse rest
      | _ -> usage ())
    | [ "--jobs" ] -> usage ()
    | ("--seq" | "seq") :: rest ->
      jobs_flag := Some 1;
      parse rest
    | "--no-compare" :: rest ->
      compare := false;
      parse rest
    | "--json" :: path :: rest ->
      json_path := path;
      parse rest
    | [ "--json" ] -> usage ()
    | "--faults" :: spec :: rest ->
      faults_flag := Some spec;
      parse rest
    | [ "--faults" ] -> usage ()
    | "--retries" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 0 ->
        retries_flag := Some n;
        parse rest
      | _ -> usage ())
    | [ "--retries" ] -> usage ()
    | "--trace" :: path :: rest ->
      trace_flag := Some path;
      parse rest
    | [ "--trace" ] -> usage ()
    | "--report" :: path :: rest ->
      report_flag := Some path;
      parse rest
    | [ "--report" ] -> usage ()
    | "--check-baseline" :: path :: rest ->
      check_baseline := Some path;
      parse rest
    | [ "--check-baseline" ] -> usage ()
    | "--write-baseline" :: path :: rest ->
      write_baseline := Some path;
      parse rest
    | [ "--write-baseline" ] -> usage ()
    | "--no-analysis-cache" :: rest ->
      no_analysis_cache := true;
      parse rest
    | "--no-sim-predecode" :: rest ->
      no_sim_predecode := true;
      parse rest
    | id :: rest ->
      ids := !ids @ [ id ];
      parse rest
  in
  parse args;
  (* one configuration surface: flag > environment > default *)
  let config =
    Runtime_config.resolve ?jobs:!jobs_flag ?retries:!retries_flag
      ?faults:!faults_flag ?trace:!trace_flag ?report:!report_flag
      ~no_analysis_cache:!no_analysis_cache
      ~no_sim_predecode:!no_sim_predecode
      (Runtime_config.from_env ())
  in
  (match config.Runtime_config.faults with
  | None -> ()
  | Some spec -> (
    match Lp_util.Fault.configure spec with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "invalid fault spec: %s\n" msg;
      exit 2));
  let obs =
    match config.Runtime_config.trace with
    | Some _ -> Obs.create ()
    | None -> Obs.disabled
  in
  let report =
    match config.Runtime_config.report with
    | Some _ -> Report.create ()
    | None -> Report.disabled
  in
  Lp_experiments.Exp_common.set_ctx
    (Lowpower.Compile.make_ctx ~obs ~report ~config ());
  (* write the trace and the audit report on every exit path, including
     the degraded-cell exit 1 below *)
  at_exit (fun () ->
      (match config.Runtime_config.trace with
      | Some path when Obs.enabled obs ->
        Obs.write_chrome obs ~path;
        Printf.eprintf "%s\ntrace written to %s\n%!" (Obs.summary obs) path
      | _ -> ());
      match config.Runtime_config.report with
      | Some path when Report.enabled report ->
        Report.write report ~path;
        Printf.eprintf "power report written to %s\n%!" path
      | _ -> ());
  Option.iter DP.set_default_jobs config.Runtime_config.jobs;
  let jobs = DP.default_jobs () in
  let want id = !ids = [] || List.mem id !ids in
  let entries = List.filter (fun (e : E.entry) -> want e.E.id) E.all in
  (* cold sequential reference pass, for the speedup column *)
  let seq_timings =
    if entries <> [] && jobs > 1 && !compare then begin
      Printf.printf
        "== sequential reference pass (%d experiments, jobs=1) ==\n%!"
        (List.length entries);
      DP.set_default_jobs 1;
      Lp_experiments.Exp_common.clear_cache ();
      let r =
        List.map
          (fun (e : E.entry) ->
            let (_table, s) = E.run_timed e in
            Printf.printf "  %-4s %.2fs\n%!" e.E.id s;
            (e.E.id, s))
          entries
      in
      DP.set_default_jobs jobs;
      Lp_experiments.Exp_common.clear_cache ();
      Some r
    end
    else None
  in
  if entries <> [] then
    Printf.printf "== evaluation sweep (jobs=%d) ==\n%!" jobs;
  (* simulated metrics attributed to the experiment that first evaluated
     each cell: the memo cache only grows, so the cells added while an
     experiment ran are exactly its fresh evaluations *)
  let exp_metric_rows = ref [] in
  let par_timings =
    List.map
      (fun (e : E.entry) ->
        let before = Exp_common.cell_metrics () in
        let (table, s) = E.run_timed e in
        let fresh =
          List.filter
            (fun (k, _, _) ->
              not (List.exists (fun (k', _, _) -> k' = k) before))
            (Exp_common.cell_metrics ())
        in
        exp_metric_rows := !exp_metric_rows @ [ (e.E.id, fresh) ];
        Lp_util.Table.print table;
        Printf.printf "(%s finished in %.1fs, jobs=%d)\n\n%!" e.E.id s jobs;
        (e.E.id, s))
      entries
  in
  let exp_metrics =
    List.map
      (fun (id, rows) ->
        let cycles = List.fold_left (fun a (_, c, _) -> a +. c) 0.0 rows in
        let energy = List.fold_left (fun a (_, _, e) -> a +. e) 0.0 rows in
        (id, (cycles, energy, List.length rows)))
      !exp_metric_rows
  in
  if entries <> [] then begin
    write_bench_json ~path:!json_path ~jobs ~par:par_timings ~seq:seq_timings
      ~exp_metrics;
    let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 par_timings in
    (match seq_timings with
    | Some seq ->
      let ts = List.fold_left (fun a (_, s) -> a +. s) 0.0 seq in
      Printf.printf
        "sweep total: %.2fs with jobs=%d vs %.2fs sequential (speedup %.2fx)\n"
        total jobs ts (ts /. total)
    | None -> Printf.printf "sweep total: %.2fs with jobs=%d\n" total jobs);
    Printf.printf "wrote %s\n%!" !json_path
  end;
  (* opt-in design-space sweep across the machine zoo: shares the memo
     cache with the experiments above, renders sequentially, and leaves
     its own committed artifact next to BENCH_eval.json *)
  if List.mem "sweep" !ids then begin
    let module Sweep = Lp_experiments.Sweep in
    let t0 = Unix.gettimeofday () in
    let t = Sweep.run () in
    Lp_util.Table.print (Sweep.crossover_table t);
    Printf.printf "(sweep finished in %.1fs, jobs=%d)\n\n%!"
      (Unix.gettimeofday () -. t0) jobs;
    Sweep.write_json ~path:"BENCH_sweep.json" t;
    Printf.printf "wrote BENCH_sweep.json\n%!"
  end;
  if want "bechamel" then bechamel_passes ();
  (* the regression gate: simulated cycles/energy against the committed
     snapshot (bench/baselines/eval.json in CI) *)
  let baseline_rows () =
    let exps =
      List.map
        (fun (id, (cycles, energy, n)) ->
          { Baseline.e_id = id; e_cycles = cycles; e_energy_nj = energy;
            e_cells = n })
        exp_metrics
    in
    let cells = Baseline.cell_rows_of_metrics (Exp_common.cell_metrics ()) in
    (exps, cells)
  in
  (match !write_baseline with
  | None -> ()
  | Some path ->
    let (exps, cells) = baseline_rows () in
    Baseline.write (Baseline.make ~exps ~cells ()) ~path;
    Printf.printf "wrote baseline %s (%d cells, %d experiments)\n%!" path
      (List.length cells) (List.length exps));
  let gate_failed =
    match !check_baseline with
    | None -> false
    | Some path -> (
      match Baseline.load ~path with
      | Error msg ->
        Printf.eprintf "baseline: %s\n" msg;
        exit 2
      | Ok base ->
        let (exps, cells) = baseline_rows () in
        let verdict = Baseline.check base ~exps ~cells in
        print_string (Baseline.verdict_to_string verdict);
        not (Baseline.passed verdict))
  in
  (* failure summary: degraded cells render as ERR(<code>) in the tables
     above; recap them here and make the exit code reflect them.  When
     the zoo sweep ran, compile-time machine incompatibilities (e.g. an
     FPU workload on pacduo) are expected sweep data, not failures. *)
  (match Lp_experiments.Exp_common.failed_cells () with
  | [] -> ()
  | failed ->
    Printf.eprintf "\n== %d cell(s) degraded to a diagnostic ==\n"
      (List.length failed);
    List.iter
      (fun ((w, c, m), attempts, d) ->
        Printf.eprintf "  %s/%s@%s (attempt %d): %s\n" w c m attempts
          (Lp_util.Diag.to_string d))
      failed;
    let fatal =
      if List.mem "sweep" !ids then
        List.filter
          (fun (_, _, (d : Lp_util.Diag.t)) -> d.Lp_util.Diag.code <> "E_COMPILE")
          failed
      else failed
    in
    if fatal <> [] then exit 1);
  if gate_failed then exit 1
