(** Example: an irregular sensor-fusion farm on a PAC-Duo-style 2-core
    DSP and on a leaky 8-core cluster.

    Each "sensor reading" needs a data-dependent number of refinement
    iterations, so static slicing would load-balance badly; the [farm]
    pattern self-schedules chunks of readings from a shared counter with
    fetch-and-add.  The example also shows the detection report and the
    per-category energy ledger. *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Pattern = Lp_patterns.Pattern

let source =
  {|
int readings[600];
int refined[600];

int refine(int v) {
  int x = v;
  int n = 0;
  while ((x > 3 || x < -3) && n < 60) {
    x = x - x / 4 + (x % 3) - 1;
    n = n + 1;
  }
  return n;
}

int main() {
  for (int i = 0; i < 600; i = i + 1) {
    readings[i] = (i * 7919 + 104729) % 4001 - 2000;
  }
  #pragma lp pattern(farm, chunk=4)
  for (int i = 0; i < 600; i = i + 1) {
    refined[i] = refine(readings[i]);
  }
  int chk = 0;
  for (int i = 0; i < 600; i = i + 1) {
    chk = chk * 3 + refined[i];
  }
  return chk;
}
|}

let show_detection (c : Compile.compiled) =
  List.iter
    (fun (i : Pattern.instance) ->
      Printf.printf "  detected %s in %s (%s), %d shipped invariants\n"
        (Pattern.kind_name i.Pattern.kind)
        i.Pattern.in_func
        (match i.Pattern.origin with
        | Pattern.Annotated -> "annotated, verified"
        | Pattern.Inferred -> "inferred")
        (List.length i.Pattern.invariants))
    c.Compile.detection.Pattern.instances

let show_energy label (o : Sim.outcome) =
  let e = o.Sim.energy in
  Printf.printf
    "  %-18s time=%7.0fus energy=%7.1fuJ (dyn %.1f / leak %.1f / idle %.1f / comm %.1f)\n"
    label
    (o.Sim.duration_ns /. 1e3)
    (Ledger.total e /. 1e3)
    (Ledger.of_category e Ledger.Dynamic /. 1e3)
    (Ledger.of_category e Ledger.Leakage_active /. 1e3)
    (Ledger.of_category e Ledger.Leakage_idle /. 1e3)
    (Ledger.of_category e Ledger.Communication /. 1e3)

let run_on name machine =
  Printf.printf "%s (%d cores):\n" name (Machine.n_cores machine);
  let (c, base) = Compile.run ~opts:Compile.baseline ~machine source in
  show_detection c;
  show_energy "baseline" base;
  let (_, full) =
    Compile.run
      ~opts:(Compile.full ~n_cores:(Machine.n_cores machine))
      ~machine source
  in
  show_energy "full" full;
  (match (base.Sim.ret, full.Sim.ret) with
  | (Some a, Some b) when Lp_sim.Value.equal a b ->
    Printf.printf "  results identical (checksum %s); speedup %.2fx, energy %.1f%% lower\n"
      (Lp_sim.Value.to_string a)
      (base.Sim.duration_ns /. full.Sim.duration_ns)
      (100.0 *. (1.0 -. Ledger.total full.Sim.energy /. Ledger.total base.Sim.energy))
  | _ -> print_endline "  RESULT MISMATCH!");
  print_newline ()

let () =
  print_endline "Sensor-fusion farm under two machine models:\n";
  run_on "pac-duo-like DSP" (Machine.pac_duo_like ());
  run_on "leaky octa cluster" (Machine.octa_leaky ())
