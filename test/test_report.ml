(** Power-decision audit report tests: the disabled report is inert, the
    JSON export is byte-stable against a committed golden (events carry
    no timestamps, so a fixed (source, machine, options) triple always
    renders identically), every gating event corresponds to power-gating
    instructions in the emitted IR, the report collected over the
    evaluation matrix is independent of the pool size, the benchmark
    baseline gate flags exactly the beyond-tolerance increases, and the
    minimal JSON codec round-trips.

    Regenerate the golden after a deliberate pipeline change with:
    [LP_UPDATE_GOLDEN=$PWD/test/golden_report.json dune test] (fails
    once while rewriting the file, green on the rerun). *)

module Report = Lp_obs.Report
module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Component = Lp_power.Component
module CS = Component.Set
module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Exp = Lp_experiments.Exp_common
module Baseline = Lp_experiments.Baseline
module DP = Lp_util.Domain_pool
module Json = Lp_util.Json
module Gen = Lp_robust.Gen

let check = Alcotest.check

(* ---------------- disabled report ---------------- *)

let test_disabled () =
  let r = Report.disabled in
  Report.add r
    (Report.Pattern_verdict
       { pv_func = "main"; pv_verdict = "accepted"; pv_kind = Some "doall";
         pv_origin = Some "annotated"; pv_reason = None });
  Report.warn r "ignored";
  check Alcotest.bool "not enabled" false (Report.enabled r);
  check Alcotest.int "no decisions" 0 (List.length (Report.decisions r));
  check Alcotest.int "no warnings" 0 (List.length (Report.warnings r));
  check Alcotest.int "no wakeups" 0 (Report.implicit_wakeups r)

(* ---------------- golden JSON export ---------------- *)

(** Small but decision-rich: a multiplier loop (gating + break-even), a
    memory-bound loop (DVFS) and enough straight-line code for the
    classic passes to move. *)
let golden_src =
  "int a[32];\nint b[32];\n\
   int main() {\n\
  \  for (int i = 0; i < 32; i = i + 1) { a[i] = a[i] * 3; }\n\
  \  for (int j = 0; j < 32; j = j + 1) { b[j] = a[j] + b[j]; }\n\
  \  return a[31] + b[31];\n\
   }"

let golden_report () =
  let rep = Report.create () in
  let ctx = Compile.make_ctx ~report:rep () in
  let machine = Machine.generic ~n_cores:2 () in
  Report.with_scope "golden" (fun () ->
      ignore (Compile.run ~ctx ~opts:Compile.pg_dvfs ~machine golden_src));
  Report.to_string rep

let test_golden () =
  let got = golden_report () in
  match Sys.getenv_opt "LP_UPDATE_GOLDEN" with
  | Some path when path <> "" ->
    let oc = open_out path in
    output_string oc got;
    close_out oc;
    Alcotest.failf "golden rewritten to %s — rerun the test" path
  | _ ->
    (* cwd is _build/default/test under [dune runtest], the repo root
       under a bare [dune exec]. *)
    let file =
      if Sys.file_exists "golden_report.json" then "golden_report.json"
      else "test/golden_report.json"
    in
    let ic = open_in_bin file in
    let want = really_input_string ic (in_channel_length ic) in
    close_in ic;
    check Alcotest.string "report JSON byte-identical to golden" want got

(** The golden is also a valid document of the advertised schema with
    the acceptance-level content: at least one gating event, at least
    one DVFS decision and a full energy breakdown. *)
let test_golden_schema () =
  let j = Json.of_string (golden_report ()) in
  check Alcotest.(option string) "schema tag"
    (Some "lowpower-power-report/1")
    (Option.bind (Json.member "schema" j) Json.to_string_opt);
  let summary = Option.get (Json.member "summary" j) in
  let count k =
    match Option.bind (Json.member k summary) Json.to_float_opt with
    | Some f -> int_of_float f
    | None -> Alcotest.failf "summary.%s missing" k
  in
  check Alcotest.bool "at least one gating insert" true (count "gating_inserts" >= 1);
  check Alcotest.bool "at least one dvfs decision" true (count "dvfs_decisions" >= 1);
  check Alcotest.bool "at least one pass delta" true (count "pass_deltas" >= 1);
  check Alcotest.int "one simulation" 1 (count "simulations");
  let sim = List.hd (Json.to_list (Option.get (Json.member "simulations" j))) in
  let energy = Option.get (Json.member "energy" sim) in
  check Alcotest.bool "energy total present" true
    (Json.member "total_nj" energy <> None);
  check Alcotest.bool "per-category breakdown" true
    (Json.member "by_category" energy <> None);
  check Alcotest.bool "per-component breakdown" true
    (Json.member "by_component" energy <> None);
  check Alcotest.bool "per-core ledgers" true
    (Json.to_list (Option.get (Json.member "per_core_energy" sim)) <> [])

(* ---------------- gating events vs emitted IR ---------------- *)

(** Sink-N-Hoist off so each insertion event maps onto unmoved [pg_off]/
    [pg_on] instructions. *)
let pg_unmerged =
  { Compile.pg_only with
    Compile.power =
      { Compile.pg_only.Compile.power with Compile.sink_n_hoist = false } }

(** Union of the gated / woken component names in a function. *)
let gate_sets (f : Prog.func) =
  Prog.fold_instrs f
    (fun (off, on) _ i ->
      match i.Ir.idesc with
      | Ir.Pg_off s -> (CS.union off s, on)
      | Ir.Pg_on s -> (off, CS.union on s)
      | _ -> (off, on))
    (CS.empty, CS.empty)

(** Every [Gating_insert] event with a nonempty component list must be
    backed by matching instructions in the function it names. *)
let events_match_ir (prog : Prog.t) (rep : Report.t) : string option =
  List.find_map
    (fun (_scope, d) ->
      match d with
      | Report.Gating_insert
          { gi_func; gi_components; gi_kind; gi_landings; _ }
        when gi_components <> [] -> (
        match Prog.find_func prog gi_func with
        | None -> Some (Printf.sprintf "event names unknown func %s" gi_func)
        | Some f ->
          let (off, on) = gate_sets f in
          let missing set tag =
            List.find_map
              (fun name ->
                if List.exists
                     (fun c -> Component.to_string c = name)
                     (CS.elements set)
                then None
                else Some (Printf.sprintf "%s: %s not in any %s" gi_func name tag))
              gi_components
          in
          (match missing off "pg_off" with
          | Some _ as e -> e
          | None ->
            if gi_kind = Report.Loop_gate && gi_landings > 0 then
              missing on "pg_on"
            else None))
      | _ -> None)
    (Report.decisions rep)

let prop_gating_events_sound =
  QCheck.Test.make ~count:25 ~name:"gating events correspond to pg_off/pg_on"
    QCheck.(int_bound 500)
    (fun seed ->
      let g = Gen.generate ~seed in
      let rep = Report.create () in
      let ctx = Compile.make_ctx ~report:rep () in
      let machine = Machine.generic ~n_cores:4 () in
      match
        Compile.compile_result ~ctx ~opts:pg_unmerged ~machine g.Gen.source
      with
      | Error _ -> true (* degraded gracefully; nothing to audit *)
      | Ok c -> (
        match events_match_ir c.Compile.prog rep with
        | None -> true
        | Some why -> QCheck.Test.fail_reportf "seed %d: %s" seed why))

(** The property must not hold vacuously: a known-gateable program emits
    at least one event with components, and it checks out. *)
let test_gating_events_nonvacuous () =
  let rep = Report.create () in
  let ctx = Compile.make_ctx ~report:rep () in
  let machine = Machine.generic ~n_cores:2 () in
  let c = Compile.compile ~ctx ~opts:pg_unmerged ~machine golden_src in
  let with_comps =
    List.filter
      (fun (_, d) ->
        match d with
        | Report.Gating_insert { gi_components = _ :: _; _ } -> true
        | _ -> false)
      (Report.decisions rep)
  in
  check Alcotest.bool "at least one gating event with components" true
    (with_comps <> []);
  check Alcotest.(option string) "events backed by IR" None
    (events_match_ir c.Compile.prog rep)

(* ---------------- pool-size determinism ---------------- *)

let matrix_report jobs =
  Exp.clear_cache ();
  let rep = Report.create () in
  Exp.set_ctx (Compile.make_ctx ~report:rep ());
  Fun.protect
    ~finally:(fun () ->
      Exp.set_ctx Compile.default_ctx;
      Exp.clear_cache ())
    (fun () ->
      let workloads =
        List.filteri (fun i _ -> i < 2) Lp_workloads.Suite.all
      in
      let configs =
        [ ("baseline", Compile.baseline); ("full", Compile.full ~n_cores:4) ]
      in
      let pool = DP.create ~jobs () in
      Fun.protect
        ~finally:(fun () -> DP.shutdown pool)
        (fun () -> Exp.run_matrix ~pool (Exp.cross workloads configs));
      Report.to_string rep)

let test_report_deterministic () =
  let seq = matrix_report 1 in
  let par = matrix_report 4 in
  check Alcotest.bool "report is nonempty" true (String.length seq > 2);
  check Alcotest.string "report identical for jobs=1 and jobs=4" seq par

(* ---------------- the baseline gate ---------------- *)

let cells () =
  [
    { Baseline.c_workload = "fir"; c_config = "full"; c_machine = "generic4";
      c_cycles = 1000.0; c_energy_nj = 50.0 };
    { Baseline.c_workload = "fir"; c_config = "baseline";
      c_machine = "generic4"; c_cycles = 4000.0; c_energy_nj = 90.0 };
  ]

let exps () =
  [ { Baseline.e_id = "t1"; e_cycles = 5000.0; e_energy_nj = 140.0;
      e_cells = 2 } ]

let base () = Baseline.make ~exps:(exps ()) ~cells:(cells ()) ()

let test_baseline_identical_passes () =
  let v = Baseline.check (base ()) ~exps:(exps ()) ~cells:(cells ()) in
  check Alcotest.bool "passed" true (Baseline.passed v);
  check Alcotest.int "no regressions" 0 (List.length v.Baseline.regressions);
  check Alcotest.int "no improvements" 0 (List.length v.Baseline.improvements);
  check Alcotest.int "no notes" 0 (List.length v.Baseline.notes)

let bump_energy f = function
  | ({ Baseline.c_workload = "fir"; c_config = "full"; _ } as c) ->
    { c with Baseline.c_energy_nj = c.Baseline.c_energy_nj *. f }
  | c -> c

let test_baseline_regression_fails () =
  let cur = List.map (bump_energy 1.10) (cells ()) in
  let v = Baseline.check (base ()) ~exps:(exps ()) ~cells:cur in
  check Alcotest.bool "failed" false (Baseline.passed v);
  (match v.Baseline.regressions with
  | [ d ] ->
    check Alcotest.string "metric" "energy_nj" d.Baseline.d_metric;
    check Alcotest.bool "relative increase ~10%" true
      (abs_float (d.Baseline.d_rel -. 0.10) < 1e-9)
  | ds -> Alcotest.failf "expected 1 regression, got %d" (List.length ds));
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "table names the gate" true
    (contains (Baseline.verdict_to_string v) "FAILED")

let test_baseline_improvement_passes () =
  let cur = List.map (bump_energy 0.90) (cells ()) in
  let v = Baseline.check (base ()) ~exps:(exps ()) ~cells:cur in
  check Alcotest.bool "passed" true (Baseline.passed v);
  check Alcotest.int "one improvement" 1 (List.length v.Baseline.improvements)

let test_baseline_coverage_notes () =
  (* One cell missing and the experiment set different: both are notes,
     not regressions, and experiment totals are not compared. *)
  let v =
    Baseline.check (base ())
      ~exps:[ { Baseline.e_id = "t2"; e_cycles = 1.0; e_energy_nj = 1.0;
                e_cells = 1 } ]
      ~cells:[ List.hd (cells ()) ]
  in
  check Alcotest.bool "passed" true (Baseline.passed v);
  check Alcotest.bool "notes mention coverage" true
    (List.length v.Baseline.notes >= 2)

let test_baseline_round_trip () =
  let b = base () in
  let path = Filename.temp_file "lp_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Baseline.write b ~path;
      match Baseline.load ~path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok b' ->
        check Alcotest.string "baseline JSON round-trips"
          (Json.to_string (Baseline.to_json b))
          (Json.to_string (Baseline.to_json b')));
  check Alcotest.bool "malformed file is an Error" true
    (match Baseline.load ~path:"/nonexistent/baseline.json" with
    | Error _ -> true
    | Ok _ -> false)

(* ---------------- the JSON codec ---------------- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
        ("nums",
         Json.List
           [ Json.Num 0.0; Json.Num 3.0; Json.Num (-17.0); Json.Num 0.1;
             Json.Num 1e-9; Json.Num 123456.789 ]);
        ("text", Json.Str "quotes \" backslash \\ newline \n tab \t");
        ("nested", Json.Obj [ ("k", Json.Num 1.0) ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
      ]
  in
  check Alcotest.bool "parse (print v) = v" true
    (Json.of_string (Json.to_string v) = v);
  check Alcotest.bool "garbage is None" true
    (Json.of_string_opt "{\"a\": }" = None);
  check Alcotest.bool "trailing junk is None" true
    (Json.of_string_opt "true false" = None);
  check Alcotest.(option string) "member lookup" (Some "x")
    (Option.bind
       (Json.member "k" (Json.of_string "{\"k\": \"x\"}"))
       Json.to_string_opt)

let suite =
  [
    Alcotest.test_case "disabled report is inert" `Quick test_disabled;
    Alcotest.test_case "golden report JSON" `Quick test_golden;
    Alcotest.test_case "golden report schema content" `Quick test_golden_schema;
    QCheck_alcotest.to_alcotest prop_gating_events_sound;
    Alcotest.test_case "gating property is not vacuous" `Quick
      test_gating_events_nonvacuous;
    Alcotest.test_case "report independent of pool size" `Quick
      test_report_deterministic;
    Alcotest.test_case "baseline: identical run passes" `Quick
      test_baseline_identical_passes;
    Alcotest.test_case "baseline: regression fails the gate" `Quick
      test_baseline_regression_fails;
    Alcotest.test_case "baseline: improvement passes" `Quick
      test_baseline_improvement_passes;
    Alcotest.test_case "baseline: coverage drift is a note" `Quick
      test_baseline_coverage_notes;
    Alcotest.test_case "baseline: write/load round-trip" `Quick
      test_baseline_round_trip;
    Alcotest.test_case "json codec round-trip" `Quick test_json_round_trip;
  ]
