(** Power model, energy ledger, operating points, machine descriptions. *)

module Component = Lp_power.Component
module Operating_point = Lp_power.Operating_point
module Power_model = Lp_power.Power_model
module Ledger = Lp_power.Energy_ledger
module Machine = Lp_machine.Machine

let check = Alcotest.check
let fail = Alcotest.fail
let feq = Alcotest.float 1e-9

(* ---------------- components ---------------- *)

let test_component_roundtrip () =
  List.iter
    (fun c ->
      check Alcotest.int "index roundtrip" (Component.index c)
        (Component.index (Component.of_index (Component.index c)));
      if Component.of_string (Component.to_string c) <> c then fail "string roundtrip")
    Component.all

let test_component_gateable () =
  if Component.gateable Component.Alu then fail "alu must not be gateable";
  if Component.gateable Component.Branch_unit then fail "branch unit must not be gateable";
  if not (Component.gateable Component.Multiplier) then fail "multiplier gateable";
  check Alcotest.int "gateable set size" 6
    (Component.Set.cardinal Component.Set.all_gateable)

(* ---------------- operating points ---------------- *)

let test_ladder () =
  let pts = Operating_point.ladder ~n:4 ~fmin:100.0 ~fmax:400.0 ~vmin:0.8 ~vmax:1.2 in
  check Alcotest.int "count" 4 (List.length pts);
  let first = List.hd pts and last = List.nth pts 3 in
  check feq "fmin" 100.0 first.Operating_point.freq_mhz;
  check feq "fmax" 400.0 last.Operating_point.freq_mhz;
  check feq "vmin" 0.8 first.Operating_point.voltage;
  (* levels ascend *)
  List.iteri (fun i p -> check Alcotest.int "level" i p.Operating_point.level) pts

let test_scaling_factors () =
  let pts = Operating_point.ladder ~n:2 ~fmin:200.0 ~fmax:400.0 ~vmin:0.6 ~vmax:1.2 in
  let lo = List.hd pts and hi = List.nth pts 1 in
  check feq "dynamic quarter" 0.25 (Operating_point.dynamic_scale ~nominal:hi lo);
  check feq "leakage half" 0.5 (Operating_point.leakage_scale ~nominal:hi lo);
  check feq "cycles stretch" 2.0
    (Operating_point.ns_of_cycles lo 100 /. Operating_point.ns_of_cycles hi 100)

(* ---------------- power model ---------------- *)

let test_break_even_monotone_in_leakage () =
  let normal = Power_model.default () in
  let leaky = Power_model.leaky () in
  let nominal = Power_model.nominal normal in
  List.iter
    (fun c ->
      if Component.gateable c then begin
        let be_n = Power_model.break_even_cycles normal ~comp:c ~point:nominal in
        let be_l =
          Power_model.break_even_cycles leaky
            ~comp:c ~point:(Power_model.nominal leaky)
        in
        if be_l >= be_n then
          Alcotest.failf "%s: leakier node should gate sooner (%d vs %d)"
            (Component.to_string c) be_l be_n
      end)
    Component.all

let test_break_even_scales_with_gate_cost () =
  let pm = Power_model.default () in
  let expensive = Power_model.with_gate_energy pm 20.0 in
  let nominal = Power_model.nominal pm in
  let be = Power_model.break_even_cycles pm ~comp:Component.Fpu ~point:nominal in
  let be' =
    Power_model.break_even_cycles expensive ~comp:Component.Fpu ~point:nominal
  in
  if be' <= be then fail "higher transition cost must raise the threshold"

let test_dynamic_energy_scales () =
  let pm = Power_model.default () in
  let pts = Power_model.points pm in
  let lo = List.hd pts and hi = Power_model.nominal pm in
  let e_lo = Power_model.dynamic_energy pm ~comp:Component.Alu ~point:lo ~ops:100 in
  let e_hi = Power_model.dynamic_energy pm ~comp:Component.Alu ~point:hi ~ops:100 in
  if e_lo >= e_hi then fail "lower voltage must cost less dynamic energy"

let test_leakage_energy_positive () =
  let pm = Power_model.default () in
  let nominal = Power_model.nominal pm in
  List.iter
    (fun c ->
      let e = Power_model.leakage_energy pm ~comp:c ~point:nominal ~ns:1000.0 in
      if e <= 0.0 then Alcotest.failf "no leakage for %s" (Component.to_string c))
    Component.all

(* ---------------- ledger ---------------- *)

let test_ledger_accounting () =
  let l = Ledger.create () in
  Ledger.charge l ~category:Ledger.Dynamic ~component:Component.Alu 5.0;
  Ledger.charge l ~category:Ledger.Dynamic ~component:Component.Fpu 3.0;
  Ledger.charge l ~category:Ledger.Leakage_idle 2.0;
  check feq "total" 10.0 (Ledger.total l);
  check feq "dynamic" 8.0 (Ledger.of_category l Ledger.Dynamic);
  check feq "alu" 5.0 (Ledger.of_component l Component.Alu);
  Alcotest.check_raises "negative charge"
    (Invalid_argument "Energy_ledger.charge: negative energy") (fun () ->
      Ledger.charge l ~category:Ledger.Dynamic (-1.0))

let test_ledger_merge () =
  let a = Ledger.create () and b = Ledger.create () in
  Ledger.charge a ~category:Ledger.Dynamic 1.0;
  Ledger.charge b ~category:Ledger.Dynamic 2.0;
  Ledger.charge b ~category:Ledger.Communication 4.0;
  Ledger.merge_into ~dst:a ~src:b;
  check feq "merged total" 7.0 (Ledger.total a);
  check feq "merged comm" 4.0 (Ledger.of_category a Ledger.Communication)

(* ---------------- machine ---------------- *)

let test_machine_presets () =
  let g = Machine.generic ~n_cores:4 () in
  check Alcotest.int "generic cores" 4 (Machine.n_cores g);
  let p = Machine.pac_duo_like () in
  check Alcotest.int "pac duo cores" 2 (Machine.n_cores p);
  if Machine.has_component p Component.Fpu then fail "pac duo has no FPU";
  if not (Machine.has_component p Component.Mac) then fail "pac duo has a MAC";
  let o = Machine.octa_leaky () in
  check Alcotest.int "octa cores" 8 (Machine.n_cores o)

let test_machine_with_cores () =
  let m = Machine.with_cores (Machine.generic ()) 6 in
  check Alcotest.int "resized" 6 (Machine.n_cores m)

let test_machine_validation () =
  Alcotest.check_raises "zero cores"
    (Invalid_argument "Machine: n_cores must be >= 1") (fun () ->
      ignore (Machine.generic ~n_cores:0 ()))

(* qcheck: the ledger total always equals the sum of categories *)
let prop_ledger_total =
  QCheck.Test.make ~count:200 ~name:"ledger total = sum of categories"
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_range 0 5) (float_bound_inclusive 100.0)))
    (fun charges ->
      let l = Ledger.create () in
      List.iter
        (fun (ci, e) ->
          Ledger.charge l ~category:(List.nth Ledger.all_categories ci) e)
        charges;
      let sum =
        List.fold_left (fun acc (_, e) -> acc +. e) 0.0
          (Ledger.breakdown l)
      in
      abs_float (sum -. Ledger.total l) < 1e-6)

let suite =
  [
    Alcotest.test_case "component roundtrip" `Quick test_component_roundtrip;
    Alcotest.test_case "component gateable" `Quick test_component_gateable;
    Alcotest.test_case "operating point ladder" `Quick test_ladder;
    Alcotest.test_case "scaling factors" `Quick test_scaling_factors;
    Alcotest.test_case "break-even vs leakage" `Quick test_break_even_monotone_in_leakage;
    Alcotest.test_case "break-even vs gate cost" `Quick test_break_even_scales_with_gate_cost;
    Alcotest.test_case "dynamic energy scaling" `Quick test_dynamic_energy_scales;
    Alcotest.test_case "leakage positive" `Quick test_leakage_energy_positive;
    Alcotest.test_case "ledger accounting" `Quick test_ledger_accounting;
    Alcotest.test_case "ledger merge" `Quick test_ledger_merge;
    Alcotest.test_case "machine presets" `Quick test_machine_presets;
    Alcotest.test_case "machine with_cores" `Quick test_machine_with_cores;
    Alcotest.test_case "machine validation" `Quick test_machine_validation;
    QCheck_alcotest.to_alcotest prop_ledger_total;
  ]
