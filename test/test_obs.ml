(** Telemetry recorder tests: the disabled recorder is inert, span
    nesting is balanced and properly bracketed whatever the call tree
    (including exceptional exits), the Chrome trace-event export is
    byte-stable under an injected deterministic clock, and the counters
    the pipeline emits are identical whatever the pool size — timing
    lives only in span durations, which these checks never compare. *)

module Obs = Lp_obs.Obs
module Clock = Lp_obs.Clock
module Compile = Lowpower.Compile
module Exp = Lp_experiments.Exp_common
module DP = Lp_util.Domain_pool
module W = Lp_workloads.Workload

let fixed () = Clock.fixed_step ~step_ns:1000.0 ()

(* ---------------- disabled recorder ---------------- *)

let test_disabled () =
  let obs = Obs.disabled in
  let r = Obs.span obs ~cat:"compile" "compile" (fun () -> 41 + 1) in
  Obs.add obs "ctr" 7;
  Obs.set_gauge obs "g" 1.0;
  Obs.record_hist obs "h" 3.0;
  Obs.emit_span obs ~start_ns:0.0 ~dur_ns:1.0 "x";
  Alcotest.(check int) "span passes the result through" 42 r;
  Alcotest.(check int) "no spans stored" 0 (Obs.span_count obs);
  Alcotest.(check (list (pair string int))) "no counters" [] (Obs.counters obs);
  Alcotest.(check bool) "no histograms" true (Obs.hists obs = []);
  Alcotest.(check bool) "not enabled" false (Obs.enabled obs)

(* ---------------- histograms ---------------- *)

(** Log2 buckets: quantile estimates are upper bounds within a factor of
    2, merging sums counts, and sub-1/non-finite junk lands in bucket 0
    instead of raising. *)
let test_histogram () =
  let obs = Obs.create ~clock:(fixed ()) () in
  (* 10 fast samples in (4, 8], one slow outlier *)
  for _ = 1 to 10 do Obs.record_hist obs "lat" 6.0 done;
  Obs.record_hist obs "lat" 900.0;
  (match Obs.hist_of obs "lat" with
  | None -> Alcotest.fail "histogram must exist after recording"
  | Some h ->
    Alcotest.(check int) "count" 11 (Obs.hist_count h);
    Alcotest.(check (float 1e-9)) "sum is exact" 960.0 (Obs.hist_sum h);
    Alcotest.(check (float 0.0)) "p50 bounds the fast bucket" 8.0
      (Obs.hist_quantile h 0.5);
    Alcotest.(check (float 0.0)) "p99 reaches the outlier" 1024.0
      (Obs.hist_quantile h 0.99);
    Alcotest.(check bool) "render mentions the count" true
      (String.length (Obs.hist_render h) > 0));
  (* a value below 1, zero, and non-finite junk are all absorbed *)
  Obs.record_hist obs "edge" 0.25;
  Obs.record_hist obs "edge" 0.0;
  Obs.record_hist obs "edge" Float.nan;
  (match Obs.hist_of obs "edge" with
  | Some h ->
    Alcotest.(check int) "edge count" 3 (Obs.hist_count h);
    Alcotest.(check (float 0.0)) "sub-1 quantile bound" 1.0
      (Obs.hist_quantile h 0.5)
  | None -> Alcotest.fail "edge histogram must exist");
  (* merging is additive *)
  let m = Obs.hist_create () in
  (match (Obs.hist_of obs "lat", Obs.hist_of obs "lat") with
  | (Some a, Some b) ->
    Obs.hist_merge_into ~into:m a;
    Obs.hist_merge_into ~into:m b;
    Alcotest.(check int) "merged count" 22 (Obs.hist_count m);
    Alcotest.(check (float 1e-9)) "merged sum" 1920.0 (Obs.hist_sum m);
    Alcotest.(check (float 0.0)) "merged quantile unchanged" 8.0
      (Obs.hist_quantile m 0.5)
  | _ -> Alcotest.fail "snapshots must exist");
  (* empty histogram: quantile degrades to 0 *)
  Alcotest.(check (float 0.0)) "empty quantile" 0.0
    (Obs.hist_quantile (Obs.hist_create ()) 0.5);
  Alcotest.(check (list string)) "hists sorted by name" [ "edge"; "lat" ]
    (List.map fst (Obs.hists obs))

(* ---------------- span nesting property ---------------- *)

(** Random call trees: [Node kids] runs one span with the given children
    nested inside. *)
type tree = Node of tree list

let rec tree_size (Node kids) =
  1 + List.fold_left (fun a k -> a + tree_size k) 0 kids

let tree_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n = 0 then return (Node [])
        else
          map (fun kids -> Node kids)
            (list_size (int_bound 3) (self (n / 4)))))

let arbitrary_tree =
  let rec print (Node kids) =
    "(" ^ String.concat "" (List.map print kids) ^ ")"
  in
  QCheck.make ~print tree_gen

let prop_span_nesting =
  QCheck.Test.make ~count:200 ~name:"span nesting is balanced and bracketed"
    arbitrary_tree (fun tree ->
      let obs = Obs.create ~clock:(fixed ()) () in
      let rec go (Node kids) = Obs.span obs "n" (fun () -> List.iter go kids) in
      go tree;
      let spans = Obs.spans obs in
      (* every span call produced exactly one record *)
      tree_size tree = List.length spans
      (* a span's recorded depth is the number of spans that properly
         contain it (the fixed-step clock makes every timestamp unique,
         so containment is strict) *)
      && List.for_all
           (fun (s : Obs.span) ->
             let s_end = s.Obs.sp_start_ns +. s.Obs.sp_dur_ns in
             let containers =
               List.filter
                 (fun (p : Obs.span) ->
                   p.Obs.sp_start_ns < s.Obs.sp_start_ns
                   && s_end < p.Obs.sp_start_ns +. p.Obs.sp_dur_ns)
                 spans
             in
             List.length containers = s.Obs.sp_depth)
           spans
      (* ... and the tracker is balanced again: a fresh top-level span
         records depth 0 *)
      &&
      (Obs.span obs "after" (fun () -> ());
       match List.rev (Obs.spans obs) with
       | last :: _ -> last.Obs.sp_depth = 0
       | [] -> false))

let test_span_exception () =
  let obs = Obs.create ~clock:(fixed ()) () in
  (try
     Obs.span obs "outer" (fun () ->
         Obs.span obs "boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Obs.span obs "after" (fun () -> ());
  let spans = Obs.spans obs in
  Alcotest.(check int) "all three spans recorded" 3 (List.length spans);
  let after = List.nth spans 2 in
  Alcotest.(check string) "last span is 'after'" "after" after.Obs.sp_name;
  Alcotest.(check int) "depth rebalanced after raise" 0 after.Obs.sp_depth

(* ---------------- golden Chrome JSON ---------------- *)

let golden =
  "{\"traceEvents\":[\n\
   {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"wall clock\"}},\n\
   {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{\"name\":\"simulated time\"}},\n\
   {\"name\":\"frontend\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":1.000,\"dur\":1.000,\"pid\":1,\"tid\":0},\n\
   {\"name\":\"compile\",\"cat\":\"compile\",\"ph\":\"X\",\"ts\":0.000,\"dur\":3.000,\"pid\":1,\"tid\":0,\"args\":{\"machine\":\"generic\"}},\n\
   {\"name\":\"core0\",\"cat\":\"sim-core\",\"ph\":\"X\",\"ts\":0.000,\"dur\":0.500,\"pid\":2,\"tid\":0},\n\
   {\"name\":\"sim.instrs\",\"ph\":\"C\",\"ts\":3.000,\"pid\":1,\"tid\":0,\"args\":{\"value\":42}}\n\
   ]}\n"

let test_chrome_golden () =
  let obs = Obs.create ~clock:(fixed ()) () in
  Obs.span obs ~cat:"compile"
    ~args:[ ("machine", Obs.Str "generic") ]
    "compile"
    (fun () -> Obs.span obs ~cat:"phase" "frontend" (fun () -> ()));
  Obs.emit_span obs ~cat:"sim-core" ~pid:Obs.sim_pid ~tid:0 ~start_ns:0.0
    ~dur_ns:500.0 "core0";
  Obs.add obs "sim.instrs" 42;
  Alcotest.(check string) "chrome JSON byte-identical" golden
    (Obs.chrome_string obs)

(* ---------------- pool-size determinism ---------------- *)

(** The aggregated counters must not depend on how the evaluation matrix
    was scheduled: run the same small matrix with a 1-domain and a
    4-domain pool and compare the full counter lists.  (Span durations
    and gauges carry timing and are deliberately not compared.) *)
let matrix_counters jobs =
  Exp.clear_cache ();
  let obs = Obs.create () in
  Exp.set_ctx (Compile.make_ctx ~obs ());
  Fun.protect
    ~finally:(fun () ->
      Exp.set_ctx Compile.default_ctx;
      Exp.clear_cache ())
    (fun () ->
      let workloads =
        List.filteri (fun i _ -> i < 2) Lp_workloads.Suite.all
      in
      let configs =
        [ ("baseline", Compile.baseline); ("full", Compile.full ~n_cores:4) ]
      in
      let pool = DP.create ~jobs () in
      Fun.protect
        ~finally:(fun () -> DP.shutdown pool)
        (fun () -> Exp.run_matrix ~pool (Exp.cross workloads configs));
      Obs.counters obs)

let test_counters_deterministic () =
  let seq = matrix_counters 1 in
  let par = matrix_counters 4 in
  Alcotest.(check bool) "some counters were recorded" true (seq <> []);
  Alcotest.(check (list (pair string int)))
    "counters identical for jobs=1 and jobs=4" seq par

let suite =
  [
    Alcotest.test_case "disabled recorder is inert" `Quick test_disabled;
    Alcotest.test_case "log2 histograms: record, merge, quantile" `Quick
      test_histogram;
    QCheck_alcotest.to_alcotest prop_span_nesting;
    Alcotest.test_case "spans survive exceptions" `Quick test_span_exception;
    Alcotest.test_case "golden chrome trace JSON" `Quick test_chrome_golden;
    Alcotest.test_case "matrix counters independent of pool size" `Quick
      test_counters_deterministic;
  ]
