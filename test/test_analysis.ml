(** Analysis tests: CFG, dataflow, liveness, dominators, loops,
    component-activity, static estimation. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Builder = Lp_ir.Builder
module Cfg = Lp_analysis.Cfg
module Dataflow = Lp_analysis.Dataflow
module Liveness = Lp_analysis.Liveness
module Dominators = Lp_analysis.Dominators
module Loops = Lp_analysis.Loops
module Compuse = Lp_analysis.Compuse
module Est = Lp_analysis.Est
module Manager = Lp_analysis.Manager
module Component = Lp_power.Component
module CS = Component.Set
module IS = Dataflow.Int_set

let check = Alcotest.check
let fail = Alcotest.fail

let lower src =
  let ast = Lp_lang.Parser.parse_program src in
  Lp_lang.Typecheck.check_program ast;
  Lp_ir.Lower.lower_program ast

(** A diamond CFG:  entry -> (then | else) -> join. *)
let diamond () =
  let f = Prog.create_func ~name:"d" ~params:[ Ir.I ] ~ret:(Some Ir.I) in
  let b = Builder.create f in
  let (p, _) = List.hd f.Prog.params in
  let then_b = Builder.new_block b in
  let else_b = Builder.new_block b in
  let join_b = Builder.new_block b in
  let r = Prog.new_reg f in
  Builder.set_term b (Ir.Br (Ir.Reg p, then_b.Ir.bid, else_b.Ir.bid));
  Builder.switch_to b then_b;
  Builder.move b r (Ir.Imm (Ir.Cint 1));
  Builder.set_term b (Ir.Jmp join_b.Ir.bid);
  Builder.switch_to b else_b;
  Builder.move b r (Ir.Imm (Ir.Cint 2));
  Builder.set_term b (Ir.Jmp join_b.Ir.bid);
  Builder.switch_to b join_b;
  Builder.set_term b (Ir.Ret (Some (Ir.Reg r)));
  (f, then_b.Ir.bid, else_b.Ir.bid, join_b.Ir.bid, r)

(** A single natural loop with two latches:
    entry -> h; h -> (b1 | exit); b1 -> (h | b2); b2 -> h. *)
let multi_latch () =
  let f = Prog.create_func ~name:"ml" ~params:[ Ir.I ] ~ret:(Some Ir.I) in
  let b = Builder.create f in
  let (p, _) = List.hd f.Prog.params in
  let h = Builder.new_block b in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  let ex = Builder.new_block b in
  Builder.set_term b (Ir.Jmp h.Ir.bid);
  Builder.switch_to b h;
  Builder.set_term b (Ir.Br (Ir.Reg p, b1.Ir.bid, ex.Ir.bid));
  Builder.switch_to b b1;
  Builder.set_term b (Ir.Br (Ir.Reg p, h.Ir.bid, b2.Ir.bid));
  Builder.switch_to b b2;
  Builder.set_term b (Ir.Jmp h.Ir.bid);
  Builder.switch_to b ex;
  Builder.set_term b (Ir.Ret (Some (Ir.Reg p)));
  (f, h.Ir.bid, b1.Ir.bid, b2.Ir.bid, ex.Ir.bid)

(** Two hand-built nested natural loops:
    entry -> oh; oh -> (ih | exit); ih -> (ib | ol); ib -> ih; ol -> oh. *)
let nested_nest () =
  let f = Prog.create_func ~name:"nest" ~params:[ Ir.I ] ~ret:(Some Ir.I) in
  let b = Builder.create f in
  let (p, _) = List.hd f.Prog.params in
  let oh = Builder.new_block b in
  let ih = Builder.new_block b in
  let ib = Builder.new_block b in
  let ol = Builder.new_block b in
  let ex = Builder.new_block b in
  Builder.set_term b (Ir.Jmp oh.Ir.bid);
  Builder.switch_to b oh;
  Builder.set_term b (Ir.Br (Ir.Reg p, ih.Ir.bid, ex.Ir.bid));
  Builder.switch_to b ih;
  Builder.set_term b (Ir.Br (Ir.Reg p, ib.Ir.bid, ol.Ir.bid));
  Builder.switch_to b ib;
  Builder.set_term b (Ir.Jmp ih.Ir.bid);
  Builder.switch_to b ol;
  Builder.set_term b (Ir.Jmp oh.Ir.bid);
  Builder.switch_to b ex;
  Builder.set_term b (Ir.Ret (Some (Ir.Reg p)));
  (f, oh.Ir.bid, ih.Ir.bid, ib.Ir.bid, ol.Ir.bid, ex.Ir.bid)

(* ---------------- cfg ---------------- *)

let test_cfg_diamond () =
  let (f, t, e, j, _) = diamond () in
  let cfg = Cfg.build f in
  check Alcotest.(list int) "entry succs"
    (List.sort compare [ t; e ])
    (List.sort compare (Cfg.succs cfg f.Prog.entry));
  check Alcotest.(list int) "join preds"
    (List.sort compare [ t; e ])
    (List.sort compare (Cfg.preds cfg j));
  check Alcotest.int "rpo head" f.Prog.entry (List.hd cfg.Cfg.rpo);
  check Alcotest.int "all reachable" 4 (List.length cfg.Cfg.rpo)

let test_cfg_unreachable_pruned () =
  let f = Prog.create_func ~name:"u" ~params:[] ~ret:None in
  let dead = Prog.new_block f in
  dead.Ir.term <- Ir.Jmp f.Prog.entry;
  let removed = Cfg.prune_unreachable f in
  check Alcotest.int "one removed" 1 removed;
  check Alcotest.int "one left" 1 (List.length f.Prog.block_order)

(* ---------------- generic dataflow ---------------- *)

(* a toy forward "reachable constant-ness" problem over the diamond *)
let test_dataflow_forward_join () =
  let (f, t, _, j, _) = diamond () in
  let cfg = Cfg.build f in
  let module Flow = Dataflow.Make (Dataflow.Reg_set_lattice) in
  (* transfer: add the block id as a fake "fact" *)
  let transfer l inp = IS.add l inp in
  let r = Flow.run ~direction:Dataflow.Forward ~cfg ~init:IS.empty ~transfer in
  let at_join = Flow.input r j in
  if not (IS.mem f.Prog.entry at_join) then fail "entry fact lost";
  if not (IS.mem t at_join) then fail "then fact not joined"

(* ---------------- liveness ---------------- *)

let test_liveness_diamond () =
  let (f, t, e, _, r) = diamond () in
  let live = Liveness.compute f in
  (* r is live out of both definition blocks *)
  if not (IS.mem r (Liveness.live_out live t)) then fail "r dead after then";
  if not (IS.mem r (Liveness.live_out live e)) then fail "r dead after else";
  (* the parameter is live into the entry *)
  let (p, _) = List.hd f.Prog.params in
  if not (IS.mem p (Liveness.live_in live f.Prog.entry)) then fail "param not live-in";
  if Liveness.max_pressure live < 1 then fail "pressure"

let test_liveness_loop_carried () =
  let prog = lower
      "int main() { int s = 0; for (int i = 0; i < 8; i = i + 1) { s = s + i; } return s; }"
  in
  let f = Prog.func_exn prog "main" in
  let live = Liveness.compute f in
  let loops = Loops.find f in
  check Alcotest.int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  (* something must be live around the back edge (s and i) *)
  if IS.cardinal (Liveness.live_in live l.Loops.header) < 2 then
    fail "loop-carried registers not live at header"

(* ---------------- dominators ---------------- *)

let test_dominators_diamond () =
  let (f, t, e, j, _) = diamond () in
  let dom = Dominators.compute f in
  if not (Dominators.dominates dom f.Prog.entry j) then fail "entry dom join";
  if Dominators.dominates dom t j then fail "then must not dominate join";
  check Alcotest.(option int) "idom of join" (Some f.Prog.entry)
    (Dominators.idom dom j);
  check Alcotest.(option int) "idom of then" (Some f.Prog.entry)
    (Dominators.idom dom t);
  if not (Dominators.dominates dom e e) then fail "self-domination"

let test_dominators_multi_latch () =
  let (f, h, b1, b2, ex) = multi_latch () in
  let dom = Dominators.compute f in
  check Alcotest.(option int) "idom of header" (Some f.Prog.entry)
    (Dominators.idom dom h);
  check Alcotest.(option int) "idom of b1" (Some h) (Dominators.idom dom b1);
  check Alcotest.(option int) "idom of b2" (Some b1) (Dominators.idom dom b2);
  check Alcotest.(option int) "idom of exit" (Some h) (Dominators.idom dom ex);
  if not (Dominators.dominates dom h b2) then fail "header dom second latch";
  if Dominators.dominates dom b1 ex then fail "latch must not dominate exit"

let test_dominators_nested () =
  let (f, oh, ih, ib, ol, ex) = nested_nest () in
  let dom = Dominators.compute f in
  List.iter
    (fun l ->
      if not (Dominators.dominates dom oh l) then
        Alcotest.failf "outer header must dominate %d" l)
    [ ih; ib; ol; ex ];
  check Alcotest.(option int) "idom of inner header" (Some oh)
    (Dominators.idom dom ih);
  check Alcotest.(option int) "idom of inner latch" (Some ih)
    (Dominators.idom dom ib);
  check Alcotest.(option int) "idom of outer latch" (Some ih)
    (Dominators.idom dom ol);
  if Dominators.dominates dom ib ol then fail "inner body must not dominate outer latch"

(* ---------------- loops ---------------- *)

let test_loops_simple () =
  let prog = lower
      "int g[64];\nint main() { for (int i = 0; i < 64; i = i + 1) { g[i] = i; } return 0; }"
  in
  let f = Prog.func_exn prog "main" in
  match Loops.find f with
  | [ l ] ->
    check Alcotest.int "depth" 1 l.Loops.depth;
    check Alcotest.int "trip" 64 (Loops.trip_estimate f l)
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let test_loops_nested () =
  let prog = lower
      "int g[64];\nint main() { for (int i = 0; i < 8; i = i + 1) { for (int j = 0; j < 4; j = j + 1) { g[i * 4 + j] = j; } } return 0; }"
  in
  let f = Prog.func_exn prog "main" in
  let loops = Loops.find f in
  check Alcotest.int "two loops" 2 (List.length loops);
  let depths = List.sort compare (List.map (fun l -> l.Loops.depth) loops) in
  check Alcotest.(list int) "nesting" [ 1; 2 ] depths;
  let trips = List.sort compare (List.map (Loops.trip_estimate f) loops) in
  check Alcotest.(list int) "trips" [ 4; 8 ] trips

let test_loops_unknown_trip () =
  let prog = lower
      "int main() { int n = 5; int s = 0; for (int i = 0; i < n * 3; i = i + 1) { s = s + 1; } return s; }"
  in
  let f = Prog.func_exn prog "main" in
  match Loops.find f with
  | [ l ] ->
    (* bound is not a literal: falls back to the default estimate *)
    check Alcotest.int "default trip" Loops.default_trip (Loops.trip_estimate f l)
  | _ -> fail "expected one loop"

let test_while_loop_detected () =
  let prog = lower
      "int main() { int x = 100; while (x > 1) { x = x / 2; } return x; }"
  in
  let f = Prog.func_exn prog "main" in
  check Alcotest.int "one loop" 1 (List.length (Loops.find f))

let test_loops_multiple_latches () =
  let (f, h, b1, b2, ex) = multi_latch () in
  match Loops.find f with
  | [ l ] ->
    check Alcotest.int "header" h l.Loops.header;
    check Alcotest.(list int) "both latches" [ b1; b2 ]
      (List.sort compare l.Loops.back_edges);
    check Alcotest.int "three blocks" 3 (Loops.LS.cardinal l.Loops.blocks);
    List.iter
      (fun lbl ->
        if not (Loops.contains l lbl) then Alcotest.failf "block %d missing" lbl)
      [ h; b1; b2 ];
    if Loops.contains l ex then fail "exit inside loop";
    check Alcotest.(list (pair int int)) "single exit edge" [ (h, ex) ]
      l.Loops.exits;
    check Alcotest.int "depth" 1 l.Loops.depth
  | ls -> Alcotest.failf "two latches = one natural loop, got %d" (List.length ls)

let test_loops_nested_hand_built () =
  let (f, oh, ih, ib, ol, _) = nested_nest () in
  match Loops.find f with
  | [ outer; inner ] ->
    (* find sorts by (depth, header): outermost first *)
    check Alcotest.int "outer header" oh outer.Loops.header;
    check Alcotest.int "outer depth" 1 outer.Loops.depth;
    check Alcotest.int "outer blocks" 4 (Loops.LS.cardinal outer.Loops.blocks);
    check Alcotest.int "inner header" ih inner.Loops.header;
    check Alcotest.int "inner depth" 2 inner.Loops.depth;
    check Alcotest.(list int) "inner blocks" [ ih; ib ]
      (List.sort compare (Loops.LS.elements inner.Loops.blocks));
    check Alcotest.(list int) "outer latch" [ ol ]
      outer.Loops.back_edges;
    if not (Loops.LS.subset inner.Loops.blocks outer.Loops.blocks) then
      fail "inner loop not nested in outer"
  | ls -> Alcotest.failf "expected two loops, got %d" (List.length ls)

(* ---------------- analysis manager ---------------- *)

let machine4 = Lp_machine.Machine.generic ~n_cores:4 ()

let cached_prog () =
  lower
    "int main() { int s = 0; for (int i = 0; i < 8; i = i + 1) { s = s + i * 2; } return s; }"

let test_manager_hit_and_stale () =
  let prog = cached_prog () in
  let f = Prog.func_exn prog "main" in
  let am = Manager.create prog in
  let c1 = Manager.cfg am f in
  let c2 = Manager.cfg am f in
  if not (c1 == c2) then fail "second query must be served from cache";
  let s = Manager.stats am in
  check Alcotest.int "hits" 1 s.Manager.hits;
  check Alcotest.int "misses" 1 s.Manager.misses;
  Prog.touch f;
  let c3 = Manager.cfg am f in
  if c3 == c1 then fail "stale entry must be recomputed";
  check Alcotest.int "misses after touch" 2 (Manager.stats am).Manager.misses

let test_manager_layering () =
  let prog = cached_prog () in
  let f = Prog.func_exn prog "main" in
  let am = Manager.create prog in
  (* one loops query computes loops, cfg and dominators (doms reuse the
     just-cached cfg: one hit) *)
  ignore (Manager.loops am f);
  let s = Manager.stats am in
  check Alcotest.int "misses" 3 s.Manager.misses;
  check Alcotest.int "cfg reused by doms" 1 s.Manager.hits;
  ignore (Manager.dominators am f);
  check Alcotest.int "doms now cached" 2 (Manager.stats am).Manager.hits

let test_manager_invalidate_preserves () =
  let prog = cached_prog () in
  let f = Prog.func_exn prog "main" in
  let am = Manager.create prog in
  let c1 = Manager.cfg am f in
  ignore (Manager.liveness am f);
  Prog.touch f;
  Manager.invalidate am ~preserves:[ Manager.Cfg ] f;
  check Alcotest.int "only liveness dropped" 1
    (Manager.stats am).Manager.invalidations;
  let c2 = Manager.cfg am f in
  if not (c1 == c2) then fail "preserved analysis must survive invalidation";
  let before = (Manager.stats am).Manager.misses in
  ignore (Manager.liveness am f);
  if (Manager.stats am).Manager.misses <= before then
    fail "non-preserved analysis must recompute"

let test_manager_caching_off () =
  let prog = cached_prog () in
  let f = Prog.func_exn prog "main" in
  let am = Manager.create ~caching:false prog in
  let c1 = Manager.cfg am f in
  let c2 = Manager.cfg am f in
  if c1 == c2 then fail "caching off must recompute every query";
  let s = Manager.stats am in
  check Alcotest.int "no hits" 0 s.Manager.hits;
  check Alcotest.int "all misses" 2 s.Manager.misses

let test_manager_prog_level () =
  let prog = cached_prog () in
  let f = Prog.func_exn prog "main" in
  let am = Manager.create prog in
  let cu1 = Manager.compuse am in
  let cu2 = Manager.compuse am in
  if not (cu1 == cu2) then fail "compuse must cache";
  let e1 = Manager.func_est am machine4 f in
  let e2 = Manager.func_est am machine4 f in
  if not (e1 == e2) then fail "func_est must cache";
  (* touching any function moves prog_version: both expire *)
  Prog.touch f;
  if Manager.compuse am == cu1 then fail "compuse must expire on touch";
  if Manager.func_est am machine4 f == e1 then fail "func_est must expire on touch"

(* ---------------- component usage ---------------- *)

let test_compuse_direct () =
  let prog = lower
      "int main() { int a = 3 * 4; int b = a / 2; float f = 1.5 + 0.5; return b + int(f); }"
  in
  (* constant folding has not run: the operations are still present *)
  let cu = Compuse.compute prog in
  let used = Compuse.func_use cu "main" in
  List.iter
    (fun c ->
      if not (CS.mem c used) then
        Alcotest.failf "expected %s used" (Component.to_string c))
    [ Component.Multiplier; Component.Divider; Component.Fpu; Component.Alu ]

let test_compuse_transitive () =
  let prog = lower
      "int helper(int x) { return x * 2; }\nint main() { return helper(21); }"
  in
  let cu = Compuse.compute prog in
  let used = Compuse.func_use cu "main" in
  if not (CS.mem Component.Multiplier used) then fail "callee usage not propagated"

let test_compuse_never_used () =
  let prog = lower "int main() { return 1 + 2; }" in
  let cu = Compuse.compute prog in
  let never = Compuse.never_used cu ~entry:"main" in
  List.iter
    (fun c ->
      if not (CS.mem c never) then
        Alcotest.failf "%s should be never-used" (Component.to_string c))
    [ Component.Multiplier; Component.Divider; Component.Fpu;
      Component.Mac; Component.Shifter ];
  (* the ALU is not gateable so it never appears *)
  if CS.mem Component.Alu never then fail "alu is not gateable"

let test_compuse_loop_idle () =
  let prog = lower
      "int g[16];\nint main() { for (int i = 0; i < 16; i = i + 1) { g[i] = i + 1; } int p = 1; for (int i = 0; i < 4; i = i + 1) { p = p * 3; } return p; }"
  in
  let f = Prog.func_exn prog "main" in
  let cu = Compuse.compute prog in
  let loops = Loops.find f in
  check Alcotest.int "two loops" 2 (List.length loops);
  (* the store loop does not multiply; the product loop does *)
  let idle_sets = List.map (Compuse.loop_idle cu f) loops in
  let has_mul_idle =
    List.exists (fun s -> CS.mem Component.Multiplier s) idle_sets
  in
  let has_mul_busy =
    List.exists (fun s -> not (CS.mem Component.Multiplier s)) idle_sets
  in
  if not (has_mul_idle && has_mul_busy) then fail "loop idle sets wrong"

(* ---------------- static estimation ---------------- *)

let machine = Lp_machine.Machine.generic ~n_cores:4 ()

let test_est_scales_with_trip () =
  let prog_of n =
    lower
      (Printf.sprintf
         "int g[%d];\nint main() { for (int i = 0; i < %d; i = i + 1) { g[i] = i * 3; } return 0; }"
         n n)
  in
  let est n =
    let prog = prog_of n in
    (Est.func_estimate machine prog (Prog.func_exn prog "main")).Est.total_cycles
  in
  let e64 = est 64 and e512 = est 512 in
  if e512 /. e64 < 4.0 then
    Alcotest.failf "estimate should grow ~8x with trip (got %f / %f)" e512 e64

let test_est_mem_fraction () =
  (* stores to shared memory dominate: high mem fraction *)
  let prog = lower
      "int g[256];\nint main() { for (int i = 0; i < 256; i = i + 1) { g[i] = i; } return 0; }"
  in
  let e = Est.func_estimate machine prog (Prog.func_exn prog "main") in
  if e.Est.mem_fraction < 0.5 then
    Alcotest.failf "store loop should be memory-bound (mu=%f)" e.Est.mem_fraction;
  (* pure compute: low mem fraction *)
  let prog2 = lower
      "int main() { int s = 1; for (int i = 0; i < 256; i = i + 1) { s = s * 3 + i; } return s; }"
  in
  let e2 = Est.func_estimate machine prog2 (Prog.func_exn prog2 "main") in
  if e2.Est.mem_fraction > 0.2 then
    Alcotest.failf "compute loop should not be memory-bound (mu=%f)" e2.Est.mem_fraction

let test_est_within_factor_of_sim () =
  (* the static estimate should land within ~2x of simulated time for a
     straight-line kernel *)
  let src =
    "int g[512];\nint main() { for (int i = 0; i < 512; i = i + 1) { g[i] = i * 5 + 1; } return 0; }"
  in
  let (compiled, outcome) =
    Lowpower.Compile.run ~opts:Lowpower.Compile.baseline ~machine src
  in
  let f = Prog.func_exn compiled.Lowpower.Compile.prog "main" in
  let est = Est.func_estimate machine compiled.Lowpower.Compile.prog f in
  let est_ns = est.Est.total_cycles *. 2.5 in
  let sim_ns = outcome.Lp_sim.Sim.duration_ns in
  let ratio = est_ns /. sim_ns in
  if ratio < 0.4 || ratio > 2.5 then
    Alcotest.failf "estimate %.0fns vs simulated %.0fns (ratio %.2f)" est_ns
      sim_ns ratio

let suite =
  [
    Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "cfg prune unreachable" `Quick test_cfg_unreachable_pruned;
    Alcotest.test_case "dataflow forward join" `Quick test_dataflow_forward_join;
    Alcotest.test_case "liveness diamond" `Quick test_liveness_diamond;
    Alcotest.test_case "liveness loop carried" `Quick test_liveness_loop_carried;
    Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "dominators multi latch" `Quick test_dominators_multi_latch;
    Alcotest.test_case "dominators nested" `Quick test_dominators_nested;
    Alcotest.test_case "loops simple + trip" `Quick test_loops_simple;
    Alcotest.test_case "loops nested" `Quick test_loops_nested;
    Alcotest.test_case "loops unknown trip" `Quick test_loops_unknown_trip;
    Alcotest.test_case "while loop detected" `Quick test_while_loop_detected;
    Alcotest.test_case "loops multiple latches" `Quick test_loops_multiple_latches;
    Alcotest.test_case "loops nested hand-built" `Quick test_loops_nested_hand_built;
    Alcotest.test_case "manager hit + stale" `Quick test_manager_hit_and_stale;
    Alcotest.test_case "manager layering" `Quick test_manager_layering;
    Alcotest.test_case "manager invalidate preserves" `Quick
      test_manager_invalidate_preserves;
    Alcotest.test_case "manager caching off" `Quick test_manager_caching_off;
    Alcotest.test_case "manager prog-level stamps" `Quick test_manager_prog_level;
    Alcotest.test_case "compuse direct" `Quick test_compuse_direct;
    Alcotest.test_case "compuse transitive" `Quick test_compuse_transitive;
    Alcotest.test_case "compuse never used" `Quick test_compuse_never_used;
    Alcotest.test_case "compuse loop idle" `Quick test_compuse_loop_idle;
    Alcotest.test_case "est scales with trip" `Quick test_est_scales_with_trip;
    Alcotest.test_case "est mem fraction" `Quick test_est_mem_fraction;
    Alcotest.test_case "est vs sim" `Quick test_est_within_factor_of_sim;
  ]
