(** Tests for the parallelizer codegen and the power passes (gating with
    Sink-N-Hoist, DVFS insertion, pipeline balancing, stage fusion). *)

module Ast = Lp_lang.Ast
module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Printer = Lp_ir.Printer
module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Value = Lp_sim.Value
module Component = Lp_power.Component
module CS = Component.Set
module T = Lp_transforms
module Pattern = Lp_patterns.Pattern

let check = Alcotest.check
let fail = Alcotest.fail
let machine4 = Machine.generic ~n_cores:4 ()

let doall_src =
  "int a[40];\nint out[40];\nint main() { for (int i = 0; i < 40; i = i + 1) { out[i] = a[i] + i; } return out[39]; }"

let compile_full ?(n_cores = 4) ?(machine = machine4) src =
  Compile.compile ~opts:(Compile.full ~n_cores) ~machine src

(* ---------------- codegen structure ---------------- *)

let test_parallel_layout () =
  let c = compile_full doall_src in
  match c.Compile.prog.Prog.layout with
  | Prog.Parallel { entries; n_channels; _ } ->
    check Alcotest.(list string) "entries"
      [ "main"; "worker1"; "worker2"; "worker3" ] entries;
    if n_channels < 4 then fail "work + done channels expected"
  | Prog.Sequential -> fail "not parallelised"

let test_outlined_function_exists () =
  let c = compile_full doall_src in
  match c.Compile.par_info.T.Par_info.instances with
  | [ cg ] -> (
    match cg.T.Par_info.body_func with
    | Some name ->
      if Prog.find_func c.Compile.prog name = None then fail "outlined body missing"
    | None -> fail "doall must have an outlined body")
  | _ -> fail "one instance expected"

let test_workers_shut_down () =
  (* every worker must halt: the simulator only terminates when all cores
     are done, so a completed run proves shutdown works *)
  let (_, o) = Compile.run ~opts:(Compile.full ~n_cores:4) ~machine:machine4 doall_src in
  check Alcotest.bool "completed" true (o.Sim.ret <> None)

let test_farm_counter_global () =
  let src =
    "int out[32];\nint main() { #pragma lp pattern(farm, chunk=2)\nfor (int i = 0; i < 32; i = i + 1) { out[i] = i * i; } return out[31]; }"
  in
  let c = compile_full src in
  match c.Compile.par_info.T.Par_info.instances with
  | [ cg ] -> (
    match cg.T.Par_info.counter_global with
    | Some g ->
      if Prog.global c.Compile.prog g = None then fail "counter global missing"
    | None -> fail "farm needs a counter")
  | _ -> fail "one instance expected"

let test_two_instances_share_workers () =
  let src =
    "int a[24];\nint b[24];\nint main() { int s = 0; for (int i = 0; i < 24; i = i + 1) { a[i] = i * 3; } for (int i = 0; i < 24; i = i + 1) { s = s + a[i]; } b[0] = s; return s; }"
  in
  let c = compile_full src in
  check Alcotest.int "two instances" 2
    (List.length c.Compile.par_info.T.Par_info.instances);
  (* distinct tags *)
  let tags =
    List.map (fun cg -> cg.T.Par_info.tag) c.Compile.par_info.T.Par_info.instances
  in
  check Alcotest.int "distinct tags" (List.length tags)
    (List.length (List.sort_uniq compare tags))

(* correctness of each pattern shape on 2 cores (tighter than the 4-core
   e2e suite: slices degenerate differently) *)
let test_patterns_on_two_cores () =
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      let src = w.Lp_workloads.Workload.source in
      let (_, base) = Compile.run ~opts:Compile.baseline ~machine:machine4 src in
      let (_, two) = Compile.run ~opts:(Compile.full ~n_cores:2) ~machine:machine4 src in
      if base.Sim.ret <> two.Sim.ret then Alcotest.failf "%s differs on 2 cores" name)
    [ "fir"; "dotprod"; "imgpipe"; "fraciter"; "audio5"; "fft" ]

let test_empty_iteration_space () =
  (* hi < lo: the parallel version must also execute zero iterations *)
  let src =
    "int out[8] = {7};\nint main() { for (int i = 5; i < 3; i = i + 1) { out[i] = 0; } return out[0]; }"
  in
  let (_, base) = Compile.run ~opts:Compile.baseline ~machine:machine4 src in
  let (_, par) = Compile.run ~opts:(Compile.full ~n_cores:4) ~machine:machine4 src in
  check Alcotest.bool "same" true (base.Sim.ret = par.Sim.ret);
  check Alcotest.bool "value 7" true (par.Sim.ret = Some (Value.Vint 7))

let test_fewer_iterations_than_cores () =
  let src =
    "int out[2];\nint main() { for (int i = 0; i < 2; i = i + 1) { out[i] = i + 40; } return out[0] + out[1]; }"
  in
  let (_, par) = Compile.run ~opts:(Compile.full ~n_cores:4) ~machine:machine4 src in
  check Alcotest.bool "81" true (par.Sim.ret = Some (Value.Vint 81))

(* ---------------- stage fusion ---------------- *)

let test_stage_fusion_depth () =
  let w = Lp_workloads.Suite.find_exn "audio5" in
  let src = w.Lp_workloads.Workload.source in
  List.iter
    (fun (cores, expected_stages) ->
      let c = compile_full ~n_cores:cores src in
      let stages =
        List.concat_map
          (fun cg -> cg.T.Par_info.stage_funcs)
          c.Compile.par_info.T.Par_info.instances
      in
      check Alcotest.int
        (Printf.sprintf "stages on %d cores" cores)
        expected_stages (List.length stages))
    [ (2, 2); (3, 3); (4, 4) ]

(* ---------------- gating ---------------- *)

let test_entry_gating_per_core () =
  (* dotprod workers use mul/alu/ldst; fpu, div, shift must be gated at
     worker entry *)
  let w = Lp_workloads.Suite.find_exn "dotprod" in
  let c = compile_full w.Lp_workloads.Workload.source in
  let worker = Prog.func_exn c.Compile.prog "worker1" in
  let entry = Prog.block worker worker.Prog.entry in
  let gated =
    List.fold_left
      (fun acc (i : Ir.instr) ->
        match i.Ir.idesc with Ir.Pg_off s -> CS.union acc s | _ -> acc)
      CS.empty entry.Ir.instrs
  in
  List.iter
    (fun comp ->
      if not (CS.mem comp gated) then
        Alcotest.failf "worker should gate %s" (Component.to_string comp))
    [ Component.Fpu; Component.Divider ]

let test_gating_counts_reported () =
  let w = Lp_workloads.Suite.find_exn "phases" in
  let c =
    Compile.compile ~opts:Compile.pg_only ~machine:machine4
      w.Lp_workloads.Workload.source
  in
  let pre = c.Compile.gating_before_merge.T.Gating.components_toggled in
  let post = c.Compile.gating_after_merge.T.Gating.components_toggled in
  if pre <= post then fail "Sink-N-Hoist merged nothing on the phases workload"

let test_merge_rules_on_handcrafted_block () =
  (* pg_on m ; <no use of m> ; pg_off m  ==> both dropped *)
  let f = Prog.create_func ~name:"main" ~params:[] ~ret:(Some Ir.I) in
  let b = Lp_ir.Builder.create f in
  let m = CS.singleton Component.Multiplier in
  ignore (Lp_ir.Builder.emit b (Ir.Pg_on m));
  ignore (Lp_ir.Builder.emit b (Ir.Binop (Ir.Add, Prog.new_reg f, Ir.Imm (Ir.Cint 1), Ir.Imm (Ir.Cint 2))));
  ignore (Lp_ir.Builder.emit b (Ir.Pg_off m));
  Lp_ir.Builder.set_term b (Ir.Ret (Some (Ir.Imm (Ir.Cint 0))));
  let changes = T.Gating.merge_block ~fname:"main" machine4 (Prog.block f f.Prog.entry) in
  if changes = 0 then fail "on/off pair not cancelled";
  let remaining =
    List.filter
      (fun (i : Ir.instr) ->
        match i.Ir.idesc with Ir.Pg_on _ | Ir.Pg_off _ -> true | _ -> false)
      (Prog.block f f.Prog.entry).Ir.instrs
  in
  check Alcotest.int "no gating left" 0 (List.length remaining)

let test_merge_respects_uses () =
  (* pg_on m ; mul ; pg_off m must NOT be cancelled *)
  let f = Prog.create_func ~name:"main" ~params:[] ~ret:(Some Ir.I) in
  let b = Lp_ir.Builder.create f in
  let m = CS.singleton Component.Multiplier in
  ignore (Lp_ir.Builder.emit b (Ir.Pg_on m));
  ignore (Lp_ir.Builder.emit b (Ir.Binop (Ir.Mul, Prog.new_reg f, Ir.Imm (Ir.Cint 2), Ir.Imm (Ir.Cint 3))));
  ignore (Lp_ir.Builder.emit b (Ir.Pg_off m));
  Lp_ir.Builder.set_term b (Ir.Ret (Some (Ir.Imm (Ir.Cint 0))));
  ignore (T.Gating.merge_block ~fname:"main" machine4 (Prog.block f f.Prog.entry));
  let remaining =
    List.filter
      (fun (i : Ir.instr) ->
        match i.Ir.idesc with Ir.Pg_on _ | Ir.Pg_off _ -> true | _ -> false)
      (Prog.block f f.Prog.entry).Ir.instrs
  in
  check Alcotest.int "gating kept" 2 (List.length remaining)

let test_merge_adjacent_same_polarity () =
  let f = Prog.create_func ~name:"main" ~params:[] ~ret:(Some Ir.I) in
  let b = Lp_ir.Builder.create f in
  ignore (Lp_ir.Builder.emit b (Ir.Pg_off (CS.singleton Component.Multiplier)));
  ignore (Lp_ir.Builder.emit b (Ir.Pg_off (CS.singleton Component.Fpu)));
  Lp_ir.Builder.set_term b (Ir.Ret (Some (Ir.Imm (Ir.Cint 0))));
  ignore (T.Gating.merge_block ~fname:"main" machine4 (Prog.block f f.Prog.entry));
  match (Prog.block f f.Prog.entry).Ir.instrs with
  | [ { Ir.idesc = Ir.Pg_off s; _ } ] ->
    check Alcotest.int "merged set" 2 (CS.cardinal s)
  | _ -> fail "adjacent pg_off not merged into one instruction"

let test_no_implicit_wakeups_across_suite () =
  (* asserted in the e2e suite per workload; also assert for the leaky
     machine where gating is more aggressive *)
  let machine = Machine.generic ~n_cores:4 ~power:(Lp_power.Power_model.leaky ()) () in
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      let (_, o) =
        Compile.run ~opts:(Compile.full ~n_cores:4) ~machine
          w.Lp_workloads.Workload.source
      in
      check Alcotest.int (name ^ " wakeups") 0 o.Sim.implicit_wakeups)
    [ "phases"; "fft"; "imgpipe" ]

(* ---------------- dvfs ---------------- *)

let test_dvfs_on_memory_bound_loop () =
  let src =
    "int a[512];\nint b[512];\nint main() { for (int i = 0; i < 512; i = i + 1) { a[i] = i; } for (int i = 0; i < 512; i = i + 1) { b[i] = a[i]; } int s = 0; for (int i = 0; i < 512; i = i + 1) { s = s + b[i]; } return s; }"
  in
  let c = Compile.compile ~opts:Compile.dvfs_only ~machine:machine4 src in
  let has_dvfs =
    List.exists
      (fun f ->
        Prog.fold_instrs f
          (fun acc _ i ->
            acc || match i.Ir.idesc with Ir.Dvfs _ -> true | _ -> false)
          false)
      (Prog.funcs c.Compile.prog)
  in
  if not has_dvfs then fail "no dvfs inserted on a memory-bound program"

let test_dvfs_skips_compute_bound () =
  let src =
    "int main() { int s = 1; for (int i = 0; i < 4096; i = i + 1) { s = s * 3 + i; } return s; }"
  in
  let c = Compile.compile ~opts:Compile.dvfs_only ~machine:machine4 src in
  let has_dvfs =
    List.exists
      (fun f ->
        Prog.fold_instrs f
          (fun acc _ i ->
            acc || match i.Ir.idesc with Ir.Dvfs _ -> true | _ -> false)
          false)
      (Prog.funcs c.Compile.prog)
  in
  if has_dvfs then fail "dvfs inserted on a compute-bound loop"

let test_dvfs_choose_level () =
  let pm = Lp_power.Power_model.default () in
  (* fully memory bound: lowest level qualifies *)
  (match T.Dvfs.choose_level pm ~mu:1.0 ~max_slowdown:0.10 with
  | Some 0 -> ()
  | Some l -> Alcotest.failf "expected level 0, got %d" l
  | None -> fail "no level for mu=1");
  (* fully compute bound: nothing qualifies *)
  (match T.Dvfs.choose_level pm ~mu:0.0 ~max_slowdown:0.10 with
  | None -> ()
  | Some l -> Alcotest.failf "level %d chosen for mu=0" l);
  (* monotonicity: higher mu never picks a higher (faster) level *)
  let level_of mu =
    match T.Dvfs.choose_level pm ~mu ~max_slowdown:0.10 with
    | Some l -> l
    | None -> 99
  in
  if level_of 0.9 > level_of 0.95 then fail "level not monotone in mu"

(* ---------------- balancing ---------------- *)

let test_balance_slows_light_stage () =
  let w = Lp_workloads.Suite.find_exn "imgpipe" in
  let c = compile_full w.Lp_workloads.Workload.source in
  (* at least one worker stage function starts with a Dvfs below nominal *)
  let stage_has_dvfs =
    List.exists
      (fun cg ->
        List.exists
          (fun name ->
            match Prog.find_func c.Compile.prog name with
            | Some f -> (
              match (Prog.block f f.Prog.entry).Ir.instrs with
              | { Ir.idesc = Ir.Dvfs l; _ } :: _ ->
                l < Lp_power.Power_model.max_level (Machine.ref_power machine4)
              | _ -> false)
            | None -> false)
          cg.T.Par_info.stage_funcs)
      c.Compile.par_info.T.Par_info.instances
  in
  if not stage_has_dvfs then fail "no stage was balanced down"

let test_balance_preserves_results () =
  (* already covered by e2e, but assert balancing does not slow the
     pipeline beyond the bottleneck by much *)
  let w = Lp_workloads.Suite.find_exn "imgpipe" in
  let src = w.Lp_workloads.Workload.source in
  let (_, par) = Compile.run ~opts:(Compile.par_only ~n_cores:4) ~machine:machine4 src in
  let (_, full) = Compile.run ~opts:(Compile.full ~n_cores:4) ~machine:machine4 src in
  let slowdown = full.Sim.duration_ns /. par.Sim.duration_ns in
  if slowdown > 1.15 then
    Alcotest.failf "balancing cost %.1f%% throughput" ((slowdown -. 1.0) *. 100.0)

let suite =
  [
    Alcotest.test_case "parallel layout" `Quick test_parallel_layout;
    Alcotest.test_case "outlined function" `Quick test_outlined_function_exists;
    Alcotest.test_case "workers shut down" `Quick test_workers_shut_down;
    Alcotest.test_case "farm counter global" `Quick test_farm_counter_global;
    Alcotest.test_case "two instances" `Quick test_two_instances_share_workers;
    Alcotest.test_case "patterns on 2 cores" `Slow test_patterns_on_two_cores;
    Alcotest.test_case "empty iteration space" `Quick test_empty_iteration_space;
    Alcotest.test_case "fewer iters than cores" `Quick test_fewer_iterations_than_cores;
    Alcotest.test_case "stage fusion depth" `Quick test_stage_fusion_depth;
    Alcotest.test_case "entry gating per core" `Quick test_entry_gating_per_core;
    Alcotest.test_case "gating counts reported" `Quick test_gating_counts_reported;
    Alcotest.test_case "merge cancels on/off" `Quick test_merge_rules_on_handcrafted_block;
    Alcotest.test_case "merge respects uses" `Quick test_merge_respects_uses;
    Alcotest.test_case "merge adjacent" `Quick test_merge_adjacent_same_polarity;
    Alcotest.test_case "no wakeups (leaky)" `Slow test_no_implicit_wakeups_across_suite;
    Alcotest.test_case "dvfs memory-bound" `Quick test_dvfs_on_memory_bound_loop;
    Alcotest.test_case "dvfs compute-bound" `Quick test_dvfs_skips_compute_bound;
    Alcotest.test_case "dvfs choose level" `Quick test_dvfs_choose_level;
    Alcotest.test_case "balance slows light stage" `Quick test_balance_slows_light_stage;
    Alcotest.test_case "balance cheap" `Quick test_balance_preserves_results;
  ]

(* a program that needs the FPU must be rejected for an FPU-less machine *)
let test_missing_component_rejected () =
  let w = Lp_workloads.Suite.find_exn "fdotprod" in
  let pacduo = Machine.pac_duo_like () in
  (try
     ignore
       (Compile.compile ~opts:Compile.baseline ~machine:pacduo
          w.Lp_workloads.Workload.source);
     fail "float program accepted for an FPU-less machine"
   with Compile.Compile_error _ -> ());
  (* and an integer program is fine *)
  let wi = Lp_workloads.Suite.find_exn "fir" in
  ignore
    (Compile.compile ~opts:(Compile.full ~n_cores:2) ~machine:pacduo
       wi.Lp_workloads.Workload.source)

let suite =
  suite @ [ Alcotest.test_case "missing component rejected" `Quick
              test_missing_component_rejected ]

(* the prodcons kind flows through the pipeline codegen with 2 stages *)
let test_prodcons_codegen () =
  let w = Lp_workloads.Suite.find_exn "prodcons" in
  let c = compile_full ~n_cores:4 w.Lp_workloads.Workload.source in
  match c.Compile.par_info.T.Par_info.instances with
  | [ cg ] ->
    (match cg.T.Par_info.inst.Pattern.kind with
    | Pattern.Prodcons -> ()
    | k -> Alcotest.failf "wrong kind %s" (Pattern.kind_name k));
    check Alcotest.int "two stage funcs" 2
      (List.length cg.T.Par_info.stage_funcs);
    check Alcotest.int "one token channel" 1
      (List.length cg.T.Par_info.token_chans)
  | _ -> fail "one instance expected"

let suite =
  suite @ [ Alcotest.test_case "prodcons codegen" `Quick test_prodcons_codegen ]

(* cyclic distribution preserves results and beats block on triangular work *)
let test_cyclic_distribution () =
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      let src = w.Lp_workloads.Workload.source in
      let (_, base) = Compile.run ~opts:Compile.baseline ~machine:machine4 src in
      let cyc_opts =
        { (Compile.full ~n_cores:4) with
          Compile.distribution = T.Parallelize.Cyclic }
      in
      let (_, cyc) = Compile.run ~opts:cyc_opts ~machine:machine4 src in
      if base.Sim.ret <> cyc.Sim.ret then
        Alcotest.failf "%s differs under cyclic distribution" name)
    [ "tri"; "fir"; "dotprod"; "peakdetect" ];
  (* load-balance claim *)
  let w = Lp_workloads.Suite.find_exn "tri" in
  let src = w.Lp_workloads.Workload.source in
  let t dist =
    let opts = { (Compile.full ~n_cores:4) with Compile.distribution = dist } in
    (snd (Compile.run ~opts ~machine:machine4 src)).Sim.duration_ns
  in
  if t T.Parallelize.Cyclic >= t T.Parallelize.Block *. 0.85 then
    fail "cyclic should clearly beat block on triangular work"

let test_minmax_reduction_parallel () =
  let w = Lp_workloads.Suite.find_exn "peakdetect" in
  let src = w.Lp_workloads.Workload.source in
  let (_, base) = Compile.run ~opts:Compile.baseline ~machine:machine4 src in
  let (c, par) = Compile.run ~opts:(Compile.full ~n_cores:4) ~machine:machine4 src in
  check Alcotest.bool "same peak" true (base.Sim.ret = par.Sim.ret);
  match c.Compile.par_info.T.Par_info.instances with
  | [ cg ] -> (
    match cg.T.Par_info.inst.Pattern.kind with
    | Pattern.Reduction Pattern.Rmax -> ()
    | k -> Alcotest.failf "expected max reduction, got %s" (Pattern.kind_name k))
  | _ -> fail "one instance expected"

let suite =
  suite
  @ [
      Alcotest.test_case "cyclic distribution" `Slow test_cyclic_distribution;
      Alcotest.test_case "max reduction parallel" `Quick
        test_minmax_reduction_parallel;
    ]

(* barrier-synced doall: same results, and Barrier instructions actually
   execute through the compiled program *)
let test_barrier_sync () =
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      let src = w.Lp_workloads.Workload.source in
      let (_, base) = Compile.run ~opts:Compile.baseline ~machine:machine4 src in
      let opts =
        { (Compile.full ~n_cores:4) with
          Compile.sync = T.Parallelize.Barrier_sync }
      in
      let (c, o) = Compile.run ~opts ~machine:machine4 src in
      if base.Sim.ret <> o.Sim.ret then
        Alcotest.failf "%s differs under barrier sync" name;
      check Alcotest.int (name ^ " wakeups") 0 o.Sim.implicit_wakeups;
      (* the layout must declare barriers and the program must use them *)
      match c.Compile.prog.Prog.layout with
      | Prog.Parallel { n_barriers; _ } ->
        if n_barriers = 0 then Alcotest.failf "%s: no barriers allocated" name
      | Prog.Sequential -> fail "not parallel")
    [ "fir"; "conv2d"; "tri" ]

let suite =
  suite @ [ Alcotest.test_case "barrier sync" `Slow test_barrier_sync ]
