(** The energy-aware phase-ordering autotuner ([Lp_tune.Tune]): seeded
    determinism across pool sizes, mutation soundness as a qcheck
    property (every mutated candidate parse/print round-trips and
    compiles every tuner workload without a foreign exception), and the
    saved best schedule replaying to exactly the reported energy. *)

module Tune = Lp_tune.Tune
module Compile = Lowpower.Compile
module Pipeline = Lowpower.Pipeline
module Rng = Lp_util.Rng
module Json = Lp_util.Json
module Domain_pool = Lp_util.Domain_pool
module Suite = Lp_workloads.Suite
module Workload = Lp_workloads.Workload

let workloads names = List.map Suite.find_exn names
let machine = (Tune.default_config ()).Tune.machine

let run_with_jobs ~jobs cfg names =
  let pool = Domain_pool.create ~jobs () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      match Tune.run ~pool cfg (workloads names) with
      | Ok s -> s
      | Error d -> Alcotest.failf "tune failed: %s" (Lp_util.Diag.to_string d))

(** Same seed, different pool sizes: the rendered table, every best
    spec, and the whole BENCH JSON must be byte-identical. *)
let test_determinism_across_jobs () =
  let cfg = Tune.default_config ~budget:24 ~seed:7 () in
  let names = [ "fir"; "jpegblocks" ] in
  let s1 = run_with_jobs ~jobs:1 cfg names in
  let s4 = run_with_jobs ~jobs:4 cfg names in
  Alcotest.(check string)
    "render byte-identical at jobs 1 vs 4" (Tune.render s1) (Tune.render s4);
  Alcotest.(check string)
    "BENCH json byte-identical at jobs 1 vs 4"
    (Json.to_string (Tune.json_of s1))
    (Json.to_string (Tune.json_of s4));
  List.iter2
    (fun (a : Tune.workload_result) (b : Tune.workload_result) ->
      Alcotest.(check string)
        ("best spec for " ^ a.Tune.tw_workload)
        a.Tune.tw_best_spec b.Tune.tw_best_spec)
    s1.Tune.t_workloads s4.Tune.t_workloads;
  (* and the same config run twice is equal too (no hidden state) *)
  let s1' = run_with_jobs ~jobs:1 cfg names in
  Alcotest.(check string) "rerun identical" (Tune.render s1) (Tune.render s1')

(** Mutation soundness: from the flattened default schedule, any chain
    of mutations yields a schedule whose one-line spec parses back to
    the same value, and that compiles every tuner workload with at most
    a structured diagnostic — never a foreign exception. *)
let prop_mutation_sound =
  let ws = workloads Tune.default_workloads in
  QCheck.Test.make ~count:25
    ~name:"mutated schedules round-trip and compile every tuner workload"
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 8))
    (fun (seed, steps) ->
      let rng = Rng.create ~seed in
      let t = ref (Pipeline.flatten ~mac_fusion:true Pipeline.default) in
      for _ = 1 to steps do
        t := Tune.mutate rng !t
      done;
      let spec = Pipeline.to_spec !t in
      (match Pipeline.parse spec with
      | Ok t' ->
        (* pass records hold closures, so compare via the spec *)
        if Pipeline.to_spec t' <> spec then
          QCheck.Test.fail_reportf "parse(to_spec) changed the schedule: %s"
            spec
      | Error d ->
        QCheck.Test.fail_reportf "mutated spec does not parse: %s (%s)" spec
          (Lp_util.Diag.to_string d));
      let opts = Compile.Options.update ~pipeline:!t Compile.baseline in
      List.iter
        (fun (w : Workload.t) ->
          match Compile.compile_result ~opts ~machine w.Workload.source with
          | Ok _ -> ()
          | Error d ->
            QCheck.Test.fail_reportf "%s under %s: %s" w.Workload.name spec
              (Lp_util.Diag.to_string d))
        ws;
      true)

(** [save_best] writes a schedule file that [lpcc run --passes @FILE]
    replays to exactly the energy the tuner reported. *)
let test_saved_schedule_replays () =
  (* seed 1 / budget 100 on jpegblocks is the documented improving run *)
  let cfg = Tune.default_config ~budget:100 ~seed:1 () in
  let s = run_with_jobs ~jobs:2 cfg [ "jpegblocks" ] in
  let best =
    match Tune.best_improvement s with
    | Some r -> r
    | None -> Alcotest.fail "seed 1 budget 100 must improve jpegblocks"
  in
  Alcotest.(check bool)
    "strictly better than baseline" true
    (best.Tune.tw_best.Tune.energy_nj < best.Tune.tw_baseline.Tune.energy_nj);
  let path = Filename.temp_file "lp-tune-test" ".sched" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Tune.save_best s path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "save_best: %s" e);
      let p =
        match Pipeline.load_file path with
        | Ok p -> p
        | Error d ->
          Alcotest.failf "saved schedule must load: %s"
            (Lp_util.Diag.to_string d)
      in
      Alcotest.(check string)
        "file carries the best spec" best.Tune.tw_best_spec (Pipeline.to_spec p);
      let w = Suite.find_exn best.Tune.tw_workload in
      let opts = Compile.Options.update ~pipeline:p Compile.baseline in
      match Compile.run_result ~opts ~machine w.Workload.source with
      | Error d -> Alcotest.failf "replay failed: %s" (Lp_util.Diag.to_string d)
      | Ok (_, o) ->
        Alcotest.(check (float 0.0))
          "replay reproduces the tuned energy exactly"
          best.Tune.tw_best.Tune.energy_nj
          (Lp_power.Energy_ledger.total o.Lp_sim.Sim.energy))

(** The tuner's own bookkeeping: counters are consistent and the JSON
    document carries the schema tag and one entry per workload. *)
let test_summary_shape () =
  let cfg = Tune.default_config ~budget:12 ~seed:3 () in
  let s = run_with_jobs ~jobs:1 cfg [ "fir" ] in
  let r = List.hd s.Tune.t_workloads in
  Alcotest.(check bool)
    "budget respected" true
    (r.Tune.tw_evaluated <= cfg.Tune.budget);
  Alcotest.(check bool)
    "evaluated + hits <= proposed + baseline" true
    (r.Tune.tw_evaluated + r.Tune.tw_cache_hits <= r.Tune.tw_candidates + 1);
  Alcotest.(check bool)
    "best never worse than baseline" true
    (not (Tune.better r.Tune.tw_baseline r.Tune.tw_best));
  match Tune.json_of s with
  | Json.Obj fields ->
    Alcotest.(check bool)
      "schema tag" true
      (List.assoc_opt "schema" fields = Some (Json.Str Tune.schema));
    (match List.assoc_opt "workloads" fields with
    | Some (Json.List l) ->
      Alcotest.(check int) "one entry per workload" 1 (List.length l)
    | _ -> Alcotest.fail "json must carry a workloads list")
  | _ -> Alcotest.fail "json must be an object"

let suite =
  [
    Alcotest.test_case "seeded determinism across pool sizes" `Quick
      test_determinism_across_jobs;
    QCheck_alcotest.to_alcotest prop_mutation_sound;
    Alcotest.test_case "saved best schedule replays to reported energy"
      `Slow test_saved_schedule_replays;
    Alcotest.test_case "summary counters and JSON shape" `Quick
      test_summary_shape;
  ]
