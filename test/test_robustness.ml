(** Robustness layer: structured diagnostics, deterministic fault
    injection with graceful per-cell degradation and retry, and the
    pipeline fuzzer. *)

module Compile = Lowpower.Compile
module Diag = Lp_util.Diag
module Fault = Lp_util.Fault
module Exp = Lp_experiments.Exp_common
module Machine = Lp_machine.Machine
module Gen = Lp_robust.Gen
module Fuzz = Lp_robust.Fuzz

let machine () = Machine.generic ~n_cores:4 ()
let fir () = Lp_workloads.Suite.find_exn "fir"

(** Every fault/cache-touching test restores pristine global state. *)
let isolated f () =
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Exp.clear_cache ())
    (fun () ->
      Fault.clear ();
      Exp.clear_cache ();
      f ())

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

(** Every legacy pipeline exception maps onto its stable code. *)
let test_diag_round_trip () =
  let pos = { Lp_lang.Ast.line = 2; col = 5 } in
  let cases =
    [
      (Lp_lang.Lexer.Lex_error ("bad char", 3), "E_LEX", Some 3);
      (Lp_lang.Parser.Parse_error ("expected )", 7), "E_PARSE", Some 7);
      (Lp_lang.Typecheck.Type_error ("int vs float", pos), "E_TYPE", Some 2);
      (Lp_transforms.Parallelize.Par_error "bad split", "E_PAR", None);
      (Lp_ir.Lower.Lower_error "no such var", "E_LOWER", None);
      (Lp_ir.Verify.Invalid "undefined register", "E_VERIFY", None);
      (Lp_sched.Taskgraph.Invalid_graph "cycle", "E_GRAPH", None);
      (Compile.Compile_error "driver says no", "E_COMPILE", None);
      (Lp_sim.Sim.Deadlock "all cores blocked", "E_DEADLOCK", None);
      (Lp_sim.Sim.Step_limit_exceeded, "E_STEP_LIMIT", None);
      (Lp_sim.Value.Runtime_error "division by zero", "E_RUNTIME", None);
    ]
  in
  List.iter
    (fun (e, code, line) ->
      match Compile.diag_of_exn e with
      | None -> Alcotest.failf "%s: no diagnostic" code
      | Some d ->
        Alcotest.(check string) (code ^ ": code") code d.Diag.code;
        Alcotest.(check (option int)) (code ^ ": line") line d.Diag.line)
    cases;
  (* Diag.Error passes through unchanged *)
  let d0 = Diag.make Diag.Fault ~code:"E_FAULT_PASS" ~transient:true "boom" in
  (match Compile.diag_of_exn (Diag.Error d0) with
  | Some d -> Alcotest.(check string) "passthrough" "E_FAULT_PASS" d.Diag.code
  | None -> Alcotest.fail "Diag.Error must map to itself");
  (* foreign exceptions are not diagnostics *)
  Alcotest.(check bool) "foreign exception" true
    (Compile.diag_of_exn Not_found = None)

(** [compile_result]/[run_result] degrade front-end failures to the
    specific code instead of raising. *)
let test_result_entry_points () =
  let machine = machine () in
  (match Compile.compile_result ~machine "int main( {" with
  | Error d -> Alcotest.(check string) "parse error code" "E_PARSE" d.Diag.code
  | Ok _ -> Alcotest.fail "garbage must not compile");
  (match Compile.compile_result ~machine "int main() { return 1.5; }" with
  | Error d -> Alcotest.(check string) "type error code" "E_TYPE" d.Diag.code
  | Ok _ -> Alcotest.fail "ill-typed program must not compile");
  match Compile.run_result ~machine "int main() { return 42; }" with
  | Ok (_, o) ->
    Alcotest.(check string) "runs" "42"
      (match o.Lp_sim.Sim.ret with
      | Some v -> Lp_sim.Value.to_string v
      | None -> "(none)")
  | Error d -> Alcotest.failf "trivial program failed: %s" (Diag.to_string d)

(** [to_string] is the single rendering every front end prints. *)
let test_diag_to_string () =
  let d = Diag.make ~line:4 Diag.Parse ~code:"E_PARSE" "expected )" in
  Alcotest.(check string) "rendering"
    "parse error [E_PARSE] (line 4): expected )" (Diag.to_string d)

(* ------------------------------------------------------------------ *)
(* Fault injection + graceful degradation                              *)
(* ------------------------------------------------------------------ *)

let test_fault_spec_grammar () =
  List.iter
    (fun spec ->
      match Fault.configure spec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "spec %S rejected: %s" spec e)
    [ ""; "post-pass"; "seed=7,post-pass@fir*2"; "sim-bus%50";
      "pre-simulate@matmul*1,worker" ];
  List.iter
    (fun spec ->
      match Fault.configure spec with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "spec %S must be rejected" spec)
    [ "no-such-point"; "seed=x"; "post-pass*zero"; "sim-bus%101" ];
  Fault.clear ();
  Alcotest.(check bool) "cleared" false (Fault.active ())

(** A persistent injected pass fault degrades the cell to an
    [ERR(E_FAULT_PASS)] diagnostic instead of aborting the matrix, and
    other workloads are untouched. *)
let test_matrix_degrades_not_aborts () =
  (match Fault.configure "post-pass@fir" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let ws =
    [ fir (); Lp_workloads.Suite.find_exn "dotprod" ]
  in
  (* must not raise, whatever the faults *)
  Exp.run_matrix (Exp.cross ws [ ("baseline", Compile.baseline) ]);
  (match Exp.run_workload_result (fir ()) ~config:"baseline" Compile.baseline with
  | Error d ->
    Alcotest.(check string) "fir code" "E_FAULT_PASS" d.Diag.code;
    Alcotest.(check string) "ERR cell rendering" "ERR(E_FAULT_PASS)"
      (Exp.scell (Error d) (fun _ -> "unreachable"))
  | Ok _ -> Alcotest.fail "fir must fault");
  (match
     Exp.run_workload_result
       (Lp_workloads.Suite.find_exn "dotprod")
       ~config:"baseline" Compile.baseline
   with
  | Ok _ -> ()
  | Error d ->
    Alcotest.failf "dotprod must be untouched: %s" (Diag.to_string d));
  match Exp.failed_cells () with
  | [ ((w, c, _), attempts, d) ] ->
    Alcotest.(check string) "failed workload" "fir" w;
    Alcotest.(check string) "failed config" "baseline" c;
    Alcotest.(check string) "failed code" "E_FAULT_PASS" d.Diag.code;
    (* persistent faults are not transient: no retry *)
    Alcotest.(check int) "attempts" 1 attempts
  | l -> Alcotest.failf "expected exactly one failed cell, got %d" (List.length l)

(** A bounded (transient) fault is retried deterministically and the
    cell recovers. *)
let test_retry_recovers_transient () =
  (match Fault.configure "pre-simulate@fir*2" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let cell =
    Exp.run_workload_cell (fir ()) ~config:"baseline" Compile.baseline
  in
  (match cell.Exp.result with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "cell must recover: %s" (Diag.to_string d));
  (* two injected transient faults, then success: three attempts *)
  Alcotest.(check int) "attempts" 3 cell.Exp.attempts;
  Alcotest.(check int) "no failed cells left" 0
    (List.length (Exp.failed_cells ()))

(** The transient flag itself: a bounded fault is transient, an
    unbounded one is not. *)
let test_transient_flag () =
  (match Fault.configure "worker@fir*1" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Fault.with_scope "fir" (fun () ->
         match Fault.check Fault.Worker ~key:"baseline" with
         | () -> None
         | exception Diag.Error d -> Some d)
   with
  | Some d ->
    Alcotest.(check bool) "bounded fault is transient" true d.Diag.transient;
    Alcotest.(check string) "code" "E_FAULT_WORKER" d.Diag.code
  | None -> Alcotest.fail "worker fault must fire");
  Fault.clear ();
  match Fault.configure "worker@fir" with
  | Error e -> Alcotest.fail e
  | Ok () -> (
    match
      Fault.with_scope "fir" (fun () ->
          match Fault.check Fault.Worker ~key:"baseline" with
          | () -> None
          | exception Diag.Error d -> Some d)
    with
    | Some d ->
      Alcotest.(check bool) "persistent fault is not transient" false
        d.Diag.transient
    | None -> Alcotest.fail "worker fault must fire")

(* ------------------------------------------------------------------ *)
(* Fuzzer                                                              *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let a = Gen.generate ~seed:11 and b = Gen.generate ~seed:11 in
  Alcotest.(check string) "same seed, same program" a.Gen.source b.Gen.source;
  let c = Gen.generate ~seed:12 in
  Alcotest.(check bool) "different seed, different program" true
    (a.Gen.source <> c.Gen.source)

(** 200-seed smoke run: no raw exception escapes, no verification
    failure after any pass, baseline and full always agree. *)
let test_fuzz_smoke () =
  let corpus =
    Filename.concat (Filename.get_temp_dir_name ()) "lp-fuzz-test-corpus"
  in
  let s =
    Fuzz.run_range ~machine:(machine ()) ~corpus_dir:corpus ~seed_start:0
      ~seeds:200 ()
  in
  (match s.Fuzz.findings with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "seed %d: %s — %s" f.Fuzz.f_seed f.Fuzz.f_kind
      f.Fuzz.f_detail);
  Alcotest.(check int) "all seeds accounted for" s.Fuzz.tested
    (s.Fuzz.passed + s.Fuzz.degraded)

let suite =
  [
    Alcotest.test_case "diag round-trip of legacy exceptions" `Quick
      test_diag_round_trip;
    Alcotest.test_case "result entry points degrade gracefully" `Quick
      test_result_entry_points;
    Alcotest.test_case "diag rendering" `Quick test_diag_to_string;
    Alcotest.test_case "fault spec grammar" `Quick
      (isolated test_fault_spec_grammar);
    Alcotest.test_case "matrix degrades per cell, never aborts" `Quick
      (isolated test_matrix_degrades_not_aborts);
    Alcotest.test_case "retry recovers a transient fault" `Quick
      (isolated test_retry_recovers_transient);
    Alcotest.test_case "transient flag tracks fault boundedness" `Quick
      (isolated test_transient_flag);
    Alcotest.test_case "generator is seed-deterministic" `Quick
      test_gen_deterministic;
    Alcotest.test_case "fuzz smoke: 200 seeds, zero findings" `Slow
      (isolated test_fuzz_smoke);
  ]
