(** Robustness layer: structured diagnostics, deterministic fault
    injection with graceful per-cell degradation and retry, and the
    pipeline fuzzer. *)

module Compile = Lowpower.Compile
module Diag = Lp_util.Diag
module Fault = Lp_util.Fault
module Exp = Lp_experiments.Exp_common
module Machine = Lp_machine.Machine
module Gen = Lp_robust.Gen
module Fuzz = Lp_robust.Fuzz

let machine () = Machine.generic ~n_cores:4 ()
let fir () = Lp_workloads.Suite.find_exn "fir"

(** Every fault/cache-touching test restores pristine global state. *)
let isolated f () =
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Exp.clear_cache ())
    (fun () ->
      Fault.clear ();
      Exp.clear_cache ();
      f ())

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

(** Every legacy pipeline exception maps onto its stable code. *)
let test_diag_round_trip () =
  let pos = { Lp_lang.Ast.line = 2; col = 5 } in
  let cases =
    [
      (Lp_lang.Lexer.Lex_error ("bad char", 3), "E_LEX", Some 3);
      (Lp_lang.Parser.Parse_error ("expected )", 7), "E_PARSE", Some 7);
      (Lp_lang.Typecheck.Type_error ("int vs float", pos), "E_TYPE", Some 2);
      (Lp_transforms.Parallelize.Par_error "bad split", "E_PAR", None);
      (Lp_ir.Lower.Lower_error "no such var", "E_LOWER", None);
      (Lp_ir.Verify.Invalid "undefined register", "E_VERIFY", None);
      (Lp_sched.Taskgraph.Invalid_graph "cycle", "E_GRAPH", None);
      (Compile.Compile_error "driver says no", "E_COMPILE", None);
      (Lp_sim.Sim.Deadlock "all cores blocked", "E_DEADLOCK", None);
      (Lp_sim.Sim.Step_limit_exceeded, "E_STEP_LIMIT", None);
      (Lp_sim.Value.Runtime_error "division by zero", "E_RUNTIME", None);
    ]
  in
  List.iter
    (fun (e, code, line) ->
      match Compile.diag_of_exn e with
      | None -> Alcotest.failf "%s: no diagnostic" code
      | Some d ->
        Alcotest.(check string) (code ^ ": code") code d.Diag.code;
        Alcotest.(check (option int)) (code ^ ": line") line d.Diag.line)
    cases;
  (* Diag.Error passes through unchanged *)
  let d0 = Diag.make Diag.Fault ~code:"E_FAULT_PASS" ~transient:true "boom" in
  (match Compile.diag_of_exn (Diag.Error d0) with
  | Some d -> Alcotest.(check string) "passthrough" "E_FAULT_PASS" d.Diag.code
  | None -> Alcotest.fail "Diag.Error must map to itself");
  (* foreign exceptions are not diagnostics *)
  Alcotest.(check bool) "foreign exception" true
    (Compile.diag_of_exn Not_found = None)

(** [compile_result]/[run_result] degrade front-end failures to the
    specific code instead of raising. *)
let test_result_entry_points () =
  let machine = machine () in
  (match Compile.compile_result ~machine "int main( {" with
  | Error d -> Alcotest.(check string) "parse error code" "E_PARSE" d.Diag.code
  | Ok _ -> Alcotest.fail "garbage must not compile");
  (match Compile.compile_result ~machine "int main() { return 1.5; }" with
  | Error d -> Alcotest.(check string) "type error code" "E_TYPE" d.Diag.code
  | Ok _ -> Alcotest.fail "ill-typed program must not compile");
  match Compile.run_result ~machine "int main() { return 42; }" with
  | Ok (_, o) ->
    Alcotest.(check string) "runs" "42"
      (match o.Lp_sim.Sim.ret with
      | Some v -> Lp_sim.Value.to_string v
      | None -> "(none)")
  | Error d -> Alcotest.failf "trivial program failed: %s" (Diag.to_string d)

(** [to_string] is the single rendering every front end prints. *)
let test_diag_to_string () =
  let d = Diag.make ~line:4 Diag.Parse ~code:"E_PARSE" "expected )" in
  Alcotest.(check string) "rendering"
    "parse error [E_PARSE] (line 4): expected )" (Diag.to_string d)

(* ------------------------------------------------------------------ *)
(* Fault injection + graceful degradation                              *)
(* ------------------------------------------------------------------ *)

let test_fault_spec_grammar () =
  List.iter
    (fun spec ->
      match Fault.configure spec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "spec %S rejected: %s" spec e)
    [ ""; "post-pass"; "seed=7,post-pass@fir*2"; "sim-bus%50";
      "pre-simulate@matmul*1,worker" ];
  List.iter
    (fun spec ->
      match Fault.configure spec with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "spec %S must be rejected" spec)
    [ "no-such-point"; "seed=x"; "post-pass*zero"; "sim-bus%101" ];
  Fault.clear ();
  Alcotest.(check bool) "cleared" false (Fault.active ())

(** A persistent injected pass fault degrades the cell to an
    [ERR(E_FAULT_PASS)] diagnostic instead of aborting the matrix, and
    other workloads are untouched. *)
let test_matrix_degrades_not_aborts () =
  (match Fault.configure "post-pass@fir" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let ws =
    [ fir (); Lp_workloads.Suite.find_exn "dotprod" ]
  in
  (* must not raise, whatever the faults *)
  Exp.run_matrix (Exp.cross ws [ ("baseline", Compile.baseline) ]);
  (match Exp.run_workload_result (fir ()) ~config:"baseline" Compile.baseline with
  | Error d ->
    Alcotest.(check string) "fir code" "E_FAULT_PASS" d.Diag.code;
    Alcotest.(check string) "ERR cell rendering" "ERR(E_FAULT_PASS)"
      (Exp.scell (Error d) (fun _ -> "unreachable"))
  | Ok _ -> Alcotest.fail "fir must fault");
  (match
     Exp.run_workload_result
       (Lp_workloads.Suite.find_exn "dotprod")
       ~config:"baseline" Compile.baseline
   with
  | Ok _ -> ()
  | Error d ->
    Alcotest.failf "dotprod must be untouched: %s" (Diag.to_string d));
  match Exp.failed_cells () with
  | [ ((w, c, _), attempts, d) ] ->
    Alcotest.(check string) "failed workload" "fir" w;
    Alcotest.(check string) "failed config" "baseline" c;
    Alcotest.(check string) "failed code" "E_FAULT_PASS" d.Diag.code;
    (* persistent faults are not transient: no retry *)
    Alcotest.(check int) "attempts" 1 attempts
  | l -> Alcotest.failf "expected exactly one failed cell, got %d" (List.length l)

(** A bounded (transient) fault is retried deterministically and the
    cell recovers. *)
let test_retry_recovers_transient () =
  (match Fault.configure "pre-simulate@fir*2" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let cell =
    Exp.run_workload_cell (fir ()) ~config:"baseline" Compile.baseline
  in
  (match cell.Exp.result with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "cell must recover: %s" (Diag.to_string d));
  (* two injected transient faults, then success: three attempts *)
  Alcotest.(check int) "attempts" 3 cell.Exp.attempts;
  Alcotest.(check int) "no failed cells left" 0
    (List.length (Exp.failed_cells ()))

(** The transient flag itself: a bounded fault is transient, an
    unbounded one is not. *)
let test_transient_flag () =
  (match Fault.configure "worker@fir*1" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Fault.with_scope "fir" (fun () ->
         match Fault.check Fault.Worker ~key:"baseline" with
         | () -> None
         | exception Diag.Error d -> Some d)
   with
  | Some d ->
    Alcotest.(check bool) "bounded fault is transient" true d.Diag.transient;
    Alcotest.(check string) "code" "E_FAULT_WORKER" d.Diag.code
  | None -> Alcotest.fail "worker fault must fire");
  Fault.clear ();
  match Fault.configure "worker@fir" with
  | Error e -> Alcotest.fail e
  | Ok () -> (
    match
      Fault.with_scope "fir" (fun () ->
          match Fault.check Fault.Worker ~key:"baseline" with
          | () -> None
          | exception Diag.Error d -> Some d)
    with
    | Some d ->
      Alcotest.(check bool) "persistent fault is not transient" false
        d.Diag.transient
    | None -> Alcotest.fail "worker fault must fire")

(* ------------------------------------------------------------------ *)
(* Hardened JSON parsing                                               *)
(* ------------------------------------------------------------------ *)

module Json = Lp_util.Json
module Rng = Lp_util.Rng

(** Adversarial inputs fail with [Parse_error] — never [Stack_overflow],
    never out-of-memory from a hostile length, never a foreign
    exception. *)
let test_json_adversarial () =
  let expect_parse_error label s =
    match Json.of_string s with
    | _ -> Alcotest.failf "%s: must be rejected" label
    | exception Json.Parse_error _ -> ()
    | exception e ->
      Alcotest.failf "%s: non-Parse_error escaped: %s" label
        (Printexc.to_string e)
  in
  (* 20k nesting levels would overflow the stack in a naive recursive
     parser; the depth bound turns it into a structured failure *)
  expect_parse_error "deep arrays" (String.make 20_000 '[');
  expect_parse_error "deep objects"
    (String.concat "" (List.init 20_000 (fun _ -> {|{"a":|})));
  (* the bound is exact: depth 4 parses at max_depth 4, depth 5 fails *)
  (match Json.of_string ~max_depth:4 "[[[[]]]]" with
  | Json.List _ -> ()
  | _ -> Alcotest.fail "depth-4 nesting must parse at max_depth 4");
  (match Json.of_string ~max_depth:4 "[[[[[]]]]]" with
  | _ -> Alcotest.fail "depth-5 nesting must be rejected at max_depth 4"
  | exception Json.Parse_error _ -> ());
  (* decoded-string length bound, exact as well *)
  (match Json.of_string ~max_string:8 {|"12345678"|} with
  | Json.Str s -> Alcotest.(check string) "at the bound" "12345678" s
  | _ -> Alcotest.fail "string at the bound must parse");
  (match Json.of_string ~max_string:8 {|"123456789"|} with
  | _ -> Alcotest.fail "string past the bound must be rejected"
  | exception Json.Parse_error _ -> ());
  List.iter
    (fun (label, s) -> expect_parse_error label s)
    [
      ("truncated escape", {|"ab\u00|});
      ("bad escape", {|"ab\q"|});
      ("bare escape at end", "\"ab\\");
      ("unterminated string", {|"abc|});
      ("unterminated object", {|{"a":1|});
      ("trailing garbage", "1 x");
      ("lone minus", "-");
      ("huge number token", String.make 5_000 '1' ^ "e");
      ("empty input", "");
      ("nul byte in literal", "tru\x00");
    ];
  Alcotest.(check bool) "of_string_opt degrades to None" true
    (Json.of_string_opt (String.make 20_000 '[') = None)

(** Seeded fuzz: mutate bytes of a valid request frame; the parser must
    either succeed or raise [Parse_error] — nothing else, for every
    seed. *)
let test_json_fuzz_mutated_frames () =
  let base =
    Json.to_compact_string
      (Json.Obj
         [
           ("id", Json.Num 41.0);
           ("op", Json.Str "run");
           ("source", Json.Str "int main() { return 7 * 6; }\n// \xc3\xa9");
           ("machine", Json.Str "pacduo");
           ("cores", Json.Num 2.0);
           ("config", Json.Str "pg+dvfs");
           ("deadline_ms", Json.Num 50.0);
           ("nested", Json.List [ Json.Obj [ ("k", Json.Null) ]; Json.Bool true ]);
         ])
  in
  let parsed = ref 0 and rejected = ref 0 in
  for seed = 0 to 499 do
    let rng = Rng.create ~seed in
    let b = Bytes.of_string base in
    for _ = 1 to 1 + Rng.int rng 4 do
      let pos = Rng.int rng (Bytes.length b) in
      Bytes.set b pos (Char.chr (Rng.int rng 256))
    done;
    let s = Bytes.to_string b in
    match Json.of_string s with
    | _ -> incr parsed
    | exception Json.Parse_error _ -> incr rejected
    | exception e ->
      Alcotest.failf "seed %d: non-Parse_error escaped on %S: %s" seed s
        (Printexc.to_string e)
  done;
  (* the corpus must actually exercise both outcomes *)
  Alcotest.(check bool) "some mutants rejected" true (!rejected > 0);
  Alcotest.(check bool) "some mutants survived" true (!parsed > 0)

(* ------------------------------------------------------------------ *)
(* Retry backoff                                                       *)
(* ------------------------------------------------------------------ *)

(** The shared backoff schedule: deterministic, geometric from 4 ms,
    hard-capped at 50 ms, clamped below attempt 1 — and [Exp_common]
    re-exports exactly it. *)
let test_backoff_schedule () =
  let feq label want got =
    Alcotest.(check (float 1e-12)) label want got
  in
  feq "attempt 1" 0.004 (Lp_util.Backoff.backoff_s 1);
  feq "attempt 2" 0.008 (Lp_util.Backoff.backoff_s 2);
  feq "attempt 3" 0.016 (Lp_util.Backoff.backoff_s 3);
  feq "attempt 4" 0.032 (Lp_util.Backoff.backoff_s 4);
  feq "attempt 5 capped" Lp_util.Backoff.cap_s (Lp_util.Backoff.backoff_s 5);
  feq "attempt 40 stays capped" Lp_util.Backoff.cap_s
    (Lp_util.Backoff.backoff_s 40);
  feq "attempt 0 clamps to first" 0.004 (Lp_util.Backoff.backoff_s 0);
  feq "negative clamps to first" 0.004 (Lp_util.Backoff.backoff_s (-3));
  for a = 1 to 39 do
    Alcotest.(check bool) "monotone non-decreasing" true
      (Lp_util.Backoff.backoff_s a <= Lp_util.Backoff.backoff_s (a + 1));
    feq "deterministic" (Lp_util.Backoff.backoff_s a)
      (Lp_util.Backoff.backoff_s a)
  done;
  feq "Exp_common re-export" (Lp_util.Backoff.backoff_s 3) (Exp.backoff_s 3)

(** A probabilistic ([%pct]) fault is transient, so the matrix retries
    it — and when every attempt faults, the cell lands as a structured
    [ERR(E_FAULT_WORKER)] after exactly [retries + 1] attempts. *)
let test_pct_retry_exhaustion () =
  (match Fault.configure "seed=5,worker@fir%99" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let retries = 1 in
  let config = { Lp_util.Runtime_config.default with retries } in
  Exp.set_ctx (Compile.make_ctx ~config ());
  Fun.protect ~finally:(fun () -> Exp.set_ctx Compile.default_ctx)
  @@ fun () ->
  Alcotest.(check int) "ctx retries picked up" retries (Exp.max_retries ());
  let cell = Exp.run_workload_cell (fir ()) ~config:"baseline" Compile.baseline in
  match cell.Exp.result with
  | Ok _ -> Alcotest.fail "a 99%-faulted cell must exhaust its retries"
  | Error d ->
    Alcotest.(check string) "code" "E_FAULT_WORKER" d.Diag.code;
    Alcotest.(check bool) "pct faults are transient" true d.Diag.transient;
    Alcotest.(check int) "attempts = retries + 1" (retries + 1)
      cell.Exp.attempts;
    Alcotest.(check string) "cell renders as ERR" "ERR(E_FAULT_WORKER)"
      (Exp.scell (Error d) (fun _ -> "unreachable"))

(** A one-shot compile with an already-expired deadline degrades to the
    stable [E_DEADLINE] diagnostic instead of raising. *)
let test_oneshot_deadline () =
  let ctx = Compile.make_ctx ~deadline:(Lp_util.Deadline.after_ms 0) () in
  match Compile.run_result ~ctx ~machine:(machine ()) "int main() { return 1; }" with
  | Ok _ -> Alcotest.fail "expired deadline must not succeed"
  | Error d ->
    Alcotest.(check string) "code" "E_DEADLINE" d.Diag.code;
    Alcotest.(check string) "stage" "driver"
      (Lp_util.Diag.stage_name d.Diag.stage)

(* ------------------------------------------------------------------ *)
(* Fuzzer                                                              *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let a = Gen.generate ~seed:11 and b = Gen.generate ~seed:11 in
  Alcotest.(check string) "same seed, same program" a.Gen.source b.Gen.source;
  let c = Gen.generate ~seed:12 in
  Alcotest.(check bool) "different seed, different program" true
    (a.Gen.source <> c.Gen.source)

(** 200-seed smoke run: no raw exception escapes, no verification
    failure after any pass, baseline and full always agree. *)
let test_fuzz_smoke () =
  let corpus =
    Filename.concat (Filename.get_temp_dir_name ()) "lp-fuzz-test-corpus"
  in
  let s =
    Fuzz.run_range ~machine:(machine ()) ~corpus_dir:corpus ~seed_start:0
      ~seeds:200 ()
  in
  (match s.Fuzz.findings with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "seed %d: %s — %s" f.Fuzz.f_seed f.Fuzz.f_kind
      f.Fuzz.f_detail);
  Alcotest.(check int) "all seeds accounted for" s.Fuzz.tested
    (s.Fuzz.passed + s.Fuzz.degraded)

let suite =
  [
    Alcotest.test_case "diag round-trip of legacy exceptions" `Quick
      test_diag_round_trip;
    Alcotest.test_case "result entry points degrade gracefully" `Quick
      test_result_entry_points;
    Alcotest.test_case "diag rendering" `Quick test_diag_to_string;
    Alcotest.test_case "fault spec grammar" `Quick
      (isolated test_fault_spec_grammar);
    Alcotest.test_case "matrix degrades per cell, never aborts" `Quick
      (isolated test_matrix_degrades_not_aborts);
    Alcotest.test_case "retry recovers a transient fault" `Quick
      (isolated test_retry_recovers_transient);
    Alcotest.test_case "transient flag tracks fault boundedness" `Quick
      (isolated test_transient_flag);
    Alcotest.test_case "json: adversarial input fails structurally" `Quick
      test_json_adversarial;
    Alcotest.test_case "json: 500-seed mutation fuzz" `Quick
      test_json_fuzz_mutated_frames;
    Alcotest.test_case "backoff schedule is deterministic and capped" `Quick
      test_backoff_schedule;
    Alcotest.test_case "pct fault exhausts retries into ERR cell" `Quick
      (isolated test_pct_retry_exhaustion);
    Alcotest.test_case "one-shot expired deadline degrades to E_DEADLINE"
      `Quick test_oneshot_deadline;
    Alcotest.test_case "generator is seed-deterministic" `Quick
      test_gen_deterministic;
    Alcotest.test_case "fuzz smoke: 200 seeds, zero findings" `Slow
      (isolated test_fuzz_smoke);
  ]
