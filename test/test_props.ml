(** Differential property tests.

    A deterministic generator builds random (but always well-typed and
    trap-free) MiniC kernels whose hot loop is pattern-detectable; the
    property asserts that every compiler configuration produces exactly
    the same result and final memory as the unoptimised baseline.  This
    is the strongest guard against miscompilation anywhere in the stack:
    folding, DCE, LICM, fusion, outlining, channel protocols, gating and
    DVFS all sit between the two runs.

    A second property checks constant folding against the simulator's
    arithmetic on random operand pairs — the folder and the interpreter
    must agree bit-for-bit. *)

module Rng = Lp_util.Rng
module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Value = Lp_sim.Value
module Ir = Lp_ir.Ir

let machine4 = Machine.generic ~n_cores:4 ()

(* ---------------- random program generator ---------------- *)

let array_n = 48

(** Random arithmetic expression over [i] (the induction variable) and
    [va] (the current input element), guaranteed trap-free: divisions and
    modulos only by non-zero constants, shifts by small constants. *)
let rec gen_expr rng depth =
  if depth = 0 then
    match Rng.int rng 4 with
    | 0 -> "i"
    | 1 -> "va"
    | 2 -> string_of_int (Rng.int_in rng (-9) 9)
    | _ -> Printf.sprintf "(i * %d)" (Rng.int_in rng 1 5)
  else begin
    let a = gen_expr rng (depth - 1) in
    let b = gen_expr rng (depth - 1) in
    match Rng.int rng 9 with
    | 0 -> Printf.sprintf "(%s + %s)" a b
    | 1 -> Printf.sprintf "(%s - %s)" a b
    | 2 -> Printf.sprintf "(%s * %s)" a b
    | 3 -> Printf.sprintf "(%s / %d)" a (Rng.int_in rng 1 7)
    | 4 -> Printf.sprintf "(%s %% %d)" a (Rng.int_in rng 1 7)
    | 5 -> Printf.sprintf "(%s ^ %s)" a b
    | 6 -> Printf.sprintf "(%s & %s)" a b
    | 7 -> Printf.sprintf "(%s << %d)" a (Rng.int rng 5)
    | _ -> Printf.sprintf "(%s >> %d)" a (Rng.int rng 5)
  end

(** Optionally wrap the assignment in a data-dependent branch (makes
    inference pick farm instead of doall). *)
let gen_body rng expr =
  match Rng.int rng 3 with
  | 0 ->
    Printf.sprintf
      "if (va > %d) { pb[i] = %s; } else { pb[i] = va - i; }"
      (Rng.int_in rng (-50) 50) expr
  | _ -> Printf.sprintf "pb[i] = %s;" expr

let gen_program seed =
  let rng = Rng.create ~seed in
  let inputs =
    List.init array_n (fun _ -> Rng.int_in rng (-100) 100)
  in
  let init =
    "{" ^ String.concat "," (List.map string_of_int inputs) ^ "}"
  in
  let expr = gen_expr rng (1 + Rng.int rng 3) in
  let reduction = Rng.bool rng in
  let hot_loop =
    if reduction then
      Printf.sprintf
        "  int s = %d;\n  for (int i = 0; i < %d; i = i + 1) {\n    int va = pa[i];\n    s = s + (%s);\n  }\n"
        (Rng.int_in rng (-5) 5) array_n expr
    else
      Printf.sprintf
        "  for (int i = 0; i < %d; i = i + 1) {\n    int va = pa[i];\n    %s\n  }\n"
        array_n (gen_body rng expr)
  in
  let epilogue =
    if reduction then "  return s;\n"
    else
      Printf.sprintf
        "  int chk = 0;\n  for (int i = 0; i < %d; i = i + 1) {\n    chk = chk * 3 + pb[i];\n  }\n  return chk;\n"
        array_n
  in
  Printf.sprintf "int pa[%d] = %s;\nint pb[%d];\n\nint main() {\n%s%s}\n"
    array_n init array_n hot_loop epilogue

let outcome_of opts src = snd (Compile.run ~opts ~machine:machine4 src)

let same_outcome (a : Sim.outcome) (b : Sim.outcome) =
  let rets_equal =
    match (a.Sim.ret, b.Sim.ret) with
    | (Some x, Some y) -> Value.equal x y
    | _ -> false
  in
  let mem_equal =
    match (Sim.shared_array a "pb", Sim.shared_array b "pb") with
    | (Some xa, Some xb) ->
      Array.length xa = Array.length xb
      && Array.for_all2 Value.equal xa xb
    | _ -> false
  in
  rets_equal && mem_equal

let prop_differential =
  QCheck.Test.make ~count:40
    ~name:"random kernels agree across all configurations"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = gen_program seed in
      let base = outcome_of Compile.baseline src in
      List.for_all
        (fun opts -> same_outcome base (outcome_of opts src))
        [ Compile.pg_dvfs;
          Compile.full ~n_cores:4;
          Compile.full ~n_cores:2;
          { (Compile.full ~n_cores:4) with
            Compile.distribution = Lp_transforms.Parallelize.Cyclic };
          { (Compile.full ~n_cores:3) with
            Compile.sync = Lp_transforms.Parallelize.Barrier_sync } ])

(* every generated program must actually exercise the parallel path *)
let prop_generated_patterns_detected =
  QCheck.Test.make ~count:40 ~name:"random kernels are pattern-detectable"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = gen_program seed in
      let ast = Compile.parse_and_check src in
      let r = Lp_patterns.Detect.detect ast in
      r.Lp_patterns.Pattern.instances <> [])

(* ---------------- analysis-cache transparency ---------------- *)

module Pass = Lp_transforms.Pass
module Pipeline = Lowpower.Pipeline
module Prog = Lp_ir.Prog
module Cfg = Lp_analysis.Cfg
module Loops = Lp_analysis.Loops
module Manager = Lp_analysis.Manager

let lowered src = Lp_ir.Lower.lower_program (Compile.parse_and_check src)

let same_cfg (a : Cfg.t) (b : Cfg.t) =
  a.Cfg.rpo = b.Cfg.rpo
  && List.for_all
       (fun bid ->
         List.sort compare (Cfg.succs a bid)
         = List.sort compare (Cfg.succs b bid)
         && List.sort compare (Cfg.preds a bid)
            = List.sort compare (Cfg.preds b bid))
       a.Cfg.rpo

let same_loops la lb =
  List.length la = List.length lb
  && List.for_all2
       (fun (x : Loops.loop) (y : Loops.loop) ->
         x.Loops.header = y.Loops.header
         && x.Loops.depth = y.Loops.depth
         && List.sort compare x.Loops.back_edges
            = List.sort compare y.Loops.back_edges
         && Loops.LS.equal x.Loops.blocks y.Loops.blocks)
       la lb

(** Run a random pass sequence twice — analysis cache on and off — over
    the same random kernel: the resulting IR must be byte-identical, and
    every analysis the warm cache serves at the end must equal a fresh
    recomputation.  This is the contract that lets passes share analyses
    through the manager at all. *)
let prop_cache_transparent =
  QCheck.Test.make ~count:30
    ~name:"analysis cache: same IR as uncached, cached == fresh"
    QCheck.(pair (int_range 0 1_000_000)
              (list_of_size Gen.(int_range 1 8) (int_range 0 1_000)))
    (fun (seed, picks) ->
      QCheck.assume (picks <> []);
      let src = gen_program seed in
      let n = List.length Pipeline.all_passes in
      let passes =
        List.map (fun i -> List.nth Pipeline.all_passes (i mod n)) picks
      in
      let run caching =
        let prog = lowered src in
        let pm = Pass.create_manager ~caching () in
        List.iter (fun p -> ignore (Pass.run_pass pm p prog)) passes;
        (prog, pm)
      in
      let (pa, pma) = run true in
      let (pb, _) = run false in
      let same_ir =
        Lp_ir.Printer.prog_to_string pa = Lp_ir.Printer.prog_to_string pb
      in
      let am = Pass.analysis_manager pma pa in
      let cached_fresh =
        List.for_all
          (fun (f : Prog.func) ->
            same_cfg (Manager.cfg am f) (Cfg.build f)
            && same_loops (Manager.loops am f) (Loops.find f))
          (Prog.funcs pa)
      in
      same_ir && cached_fresh)

(* ---------------- folder vs interpreter agreement ---------------- *)

let int_binops =
  [ Ir.Add; Ir.Sub; Ir.Mul; Ir.Div; Ir.Mod; Ir.Shl; Ir.Shr; Ir.And; Ir.Or;
    Ir.Xor; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge; Ir.Eq; Ir.Ne ]

let prop_fold_matches_interp =
  QCheck.Test.make ~count:2000 ~name:"constant folder == simulator arithmetic"
    QCheck.(triple (int_range 0 15) int int)
    (fun (opi, a, b) ->
      let op = List.nth int_binops opi in
      let folded =
        Lp_transforms.Constfold.fold_binop op (Ir.Cint a) (Ir.Cint b)
      in
      match folded with
      | None -> true (* the folder declined (e.g. division by zero) *)
      | Some (Ir.Cint f) -> (
        match
          Value.binop op
            (Value.Vint (Value.wrap32 a))
            (Value.Vint (Value.wrap32 b))
        with
        | Value.Vint v -> v = f
        | Value.Vfloat _ -> false
        | exception Value.Runtime_error _ -> false)
      | Some (Ir.Cfloat _) -> false)

let prop_unop_matches_interp =
  QCheck.Test.make ~count:1000 ~name:"unop folder == simulator"
    QCheck.(pair (int_range 0 2) int)
    (fun (opi, a) ->
      let op = List.nth [ Ir.Neg; Ir.Not; Ir.Bnot ] opi in
      match Lp_transforms.Constfold.fold_unop op (Ir.Cint a) with
      | Some (Ir.Cint f) -> (
        match Value.unop op (Value.Vint (Value.wrap32 a)) with
        | Value.Vint v -> v = f
        | Value.Vfloat _ -> false)
      | _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:true prop_differential;
    QCheck_alcotest.to_alcotest prop_generated_patterns_detected;
    QCheck_alcotest.to_alcotest prop_cache_transparent;
    QCheck_alcotest.to_alcotest prop_fold_matches_interp;
    QCheck_alcotest.to_alcotest prop_unop_matches_interp;
  ]
