(** The source-level energy profiler: attribution conserves the ledger's
    energy over generated programs, the profile is byte-identical
    between the closure-compiled and interpretive steppers and across
    pool sizes, profiling is a pure observer (every outcome field the
    baseline gates read is byte-identical with it on or off), and the
    JSON artifact of one decision-rich workload is golden-pinned. *)

module Compile = Lowpower.Compile
module PR = Lowpower.Profile_report
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Profile = Lp_sim.Profile
module Ledger = Lp_power.Energy_ledger
module Json = Lp_util.Json
module Runtime_config = Lp_util.Runtime_config
module Gen = Lp_robust.Gen

let check = Alcotest.check

let machine4 () = Machine.generic ~n_cores:4 ()

let prof_opts = { Sim.default_options with Sim.profile = true }

let run_profiled ?(ctx = Compile.default_ctx) ?(opts = Compile.full ~n_cores:4)
    ?(sim_opts = prof_opts) src =
  match Compile.run_result ~ctx ~opts ~sim_opts ~machine:(machine4 ()) src with
  | Ok r -> r
  | Error d -> Alcotest.failf "pipeline: %s" (Lp_util.Diag.to_string d)

let profile_json src =
  let (_, o) = run_profiled src in
  Json.to_string (PR.to_json ~source:"test" ~machine:"generic-4c" o)

(* ---------------- conservation (qcheck over generated programs) ----- *)

(** Exact float equality between the profile's total and the ledger's is
    impossible by construction — partitioned per-slot sums and the
    chronological ledger sum round differently — so conservation is
    checked to a tight relative tolerance instead. *)
let prop_conservation =
  QCheck.Test.make ~count:30
    ~name:"profile attributes every ledger nanojoule (1e-9 relative)"
    (QCheck.make (QCheck.Gen.int_bound 10_000))
    (fun seed ->
      let g = Gen.generate ~seed in
      let (_, o) = run_profiled g.Gen.source in
      match o.Sim.profile with
      | None -> false
      | Some p ->
        let attributed = Profile.total p in
        let total = Ledger.total o.Sim.energy in
        let scale = Float.max 1.0 (Float.abs total) in
        Float.abs (attributed -. total) <= 1e-9 *. scale)

(* ---------------- cross-mode byte-equality ---------------- *)

(** The compiled stepper bakes slots into closures eagerly; the
    interpretive stepper creates them lazily.  Zero-row filtering plus
    fixed merge order must make the rendered artifacts byte-equal. *)
let test_modes_byte_equal () =
  List.iter
    (fun wname ->
      let w = Lp_workloads.Suite.find_exn wname in
      let src = w.Lp_workloads.Workload.source in
      let interp_cfg =
        Runtime_config.resolve ~no_sim_predecode:true Runtime_config.default
      in
      let interp_ctx = Compile.make_ctx ~config:interp_cfg () in
      let (_, oc) = run_profiled src in
      let (_, oi) = run_profiled ~ctx:interp_ctx src in
      check Alcotest.string
        (wname ^ ": compiled and interpretive profiles byte-equal")
        (Json.to_string (PR.to_json ~source:wname ~machine:"m" oc))
        (Json.to_string (PR.to_json ~source:wname ~machine:"m" oi)))
    [ "fir"; "matmul" ]

(** The profile is a function of the simulated program only: pool size
    (compile-side parallelism knob) must not move a byte. *)
let test_jobs_byte_equal () =
  let src = (Lp_workloads.Suite.find_exn "fir").Lp_workloads.Workload.source in
  let with_jobs jobs =
    let cfg = Runtime_config.resolve ~jobs Runtime_config.default in
    Lp_util.Domain_pool.set_default_jobs jobs;
    let ctx = Compile.make_ctx ~config:cfg () in
    let (_, o) = run_profiled ~ctx src in
    Json.to_string (PR.to_json ~source:"fir" ~machine:"m" o)
  in
  let a = with_jobs 1 in
  let b = with_jobs 4 in
  Lp_util.Domain_pool.set_default_jobs 1;
  check Alcotest.string "profiles byte-equal for jobs=1 and jobs=4" a b

(* ---------------- pure observer ---------------- *)

(** Profiling on must not change anything the baseline gates read:
    cycles, duration, the merged ledger (rendered to JSON, so every
    category and component float is compared byte-for-byte), instruction
    and transition counts. *)
let test_pure_observer () =
  List.iter
    (fun wname ->
      let w = Lp_workloads.Suite.find_exn wname in
      let src = w.Lp_workloads.Workload.source in
      let (_, off) =
        run_profiled ~sim_opts:Sim.default_options src
      in
      let (_, on) = run_profiled src in
      check Alcotest.bool (wname ^ ": off-run has no profile") true
        (off.Sim.profile = None);
      check Alcotest.bool (wname ^ ": on-run has a profile") true
        (on.Sim.profile <> None);
      let fingerprint (o : Sim.outcome) =
        Json.to_string
          (Json.Obj
             [
               ("duration_ns", Json.Num o.Sim.duration_ns);
               ("energy", Ledger.to_json o.Sim.energy);
               ("instr_total", Json.Num (float_of_int o.Sim.instr_total));
               ("steps", Json.Num (float_of_int o.Sim.steps));
               ( "gate_transitions",
                 Json.Num (float_of_int o.Sim.gate_transitions) );
               ( "dvfs_transitions",
                 Json.Num (float_of_int o.Sim.dvfs_transitions) );
               ("channel_msgs", Json.Num (float_of_int o.Sim.channel_msgs));
               ( "cycles_per_core",
                 Json.List
                   (Array.to_list
                      (Array.map
                         (fun c -> Json.Num (float_of_int c))
                         o.Sim.cycles_per_core)) );
               ( "bus_wait_ns_per_core",
                 Json.List
                   (Array.to_list
                      (Array.map (fun f -> Json.Num f) o.Sim.bus_wait_ns_per_core)) );
             ])
      in
      check Alcotest.string
        (wname ^ ": outcome byte-identical with profiling on")
        (fingerprint off) (fingerprint on))
    [ "fir"; "matmul"; "prodcons" ]

(* ---------------- per-slot sanity on a tiny program ---------------- *)

let test_slot_contents () =
  let src =
    "int a[16];\n\
     int main() {\n\
    \  for (int i = 0; i < 16; i = i + 1) { a[i] = a[i] * 3; }\n\
    \  return a[15];\n\
     }"
  in
  let (_, o) = run_profiled ~opts:Compile.baseline src in
  let p = Option.get o.Sim.profile in
  (* rows are sorted by (func, line) and all-zero rows are dropped *)
  let keys =
    Array.to_list
      (Array.map (fun s -> (s.Profile.sl_func, s.Profile.sl_line)) p)
  in
  check Alcotest.bool "rows sorted" true (List.sort compare keys = keys);
  Array.iter
    (fun s ->
      check Alcotest.bool "no all-zero rows" false (Profile.is_zero s))
    p;
  (* the loop body lives on line 3: no other row may out-spend it (the
     unused cores' idle leakage is not a "row" beating it, it's its own
     synthetic one, and even that loses to 16 multiplies only on paper —
     compare rows, not the machine total) *)
  let row_nj fn line =
    Array.fold_left
      (fun acc s ->
        if s.Profile.sl_func = fn && s.Profile.sl_line = line then
          acc +. Profile.slot_total s
        else acc)
      0.0 p
  in
  let loop_nj = row_nj "main" 3 in
  check Alcotest.bool "loop line attributed" true (loop_nj > 0.0);
  Array.iter
    (fun s ->
      if s.Profile.sl_func = "main" then
        check Alcotest.bool "loop line is main's hottest" true
          (Profile.slot_total s <= loop_nj))
    p;
  (* cycle/instr counters land with the energy *)
  Array.iter
    (fun s ->
      if s.Profile.sl_instrs > 0 then
        check Alcotest.bool "instrs imply cycles" true (s.Profile.sl_cycles > 0))
    p

(* ---------------- report surfaces ---------------- *)

let test_text_and_flame () =
  let (c, o) = run_profiled (Lp_workloads.Suite.find_exn "fir").Lp_workloads.Workload.source in
  let text = PR.to_text ~prog:c.Compile.prog o in
  check Alcotest.bool "text mentions the total" true
    (String.length text > 0
    && String.sub text 0 14 = "Energy profile");
  let flame = PR.to_flamegraph o in
  check Alcotest.bool "flame has stacks" true
    (String.length flame > 0 && String.contains flame ';')

let test_diff () =
  let j1 = Json.of_string (profile_json
    "int a[8];\nint main() { for (int i = 0; i < 8; i = i + 1) { a[i] = i; } return a[7]; }") in
  let j2 = Json.of_string (profile_json
    "int a[8];\nint main() { for (int i = 0; i < 8; i = i + 1) { a[i] = i * i; } return a[7]; }") in
  (match PR.diff ~label_a:"a" ~label_b:"b" j1 j2 with
  | Ok text ->
    check Alcotest.bool "diff reports a delta" true
      (String.length text > 0)
  | Error e -> Alcotest.failf "diff: %s" e);
  match PR.diff ~label_a:"x" ~label_b:"y" (Json.Obj []) j2 with
  | Ok _ -> Alcotest.fail "diff must reject a non-artifact"
  | Error _ -> ()

(* ---------------- golden artifact ---------------- *)

(** Decision-rich single source (gating + DVFS + both loops) pinned
    byte-for-byte.  Regenerate with
    [LP_UPDATE_GOLDEN=test/golden_profile.json dune exec test/test_main.exe -- test profile]. *)
let golden_src =
  "int a[32];\nint b[32];\n\
   int main() {\n\
  \  for (int i = 0; i < 32; i = i + 1) { a[i] = a[i] * 3; }\n\
  \  for (int j = 0; j < 32; j = j + 1) { b[j] = a[j] + b[j]; }\n\
  \  return a[31] + b[31];\n\
   }"

let golden_artifact () =
  let machine = Machine.generic ~n_cores:2 () in
  match
    Compile.run_result ~opts:Compile.pg_dvfs ~sim_opts:prof_opts ~machine
      golden_src
  with
  | Ok (_, o) ->
    Json.to_string (PR.to_json ~source:"golden" ~machine:machine.Machine.name o)
  | Error d -> Alcotest.failf "golden pipeline: %s" (Lp_util.Diag.to_string d)

let test_golden () =
  let got = golden_artifact () in
  match Sys.getenv_opt "LP_UPDATE_GOLDEN" with
  | Some path when path <> "" ->
    let oc = open_out path in
    output_string oc got;
    close_out oc;
    Alcotest.failf "golden rewritten to %s — rerun the test" path
  | _ ->
    (* cwd is _build/default/test under [dune runtest], the repo root
       under a bare [dune exec]. *)
    let file =
      if Sys.file_exists "golden_profile.json" then "golden_profile.json"
      else "test/golden_profile.json"
    in
    let ic = open_in_bin file in
    let want = really_input_string ic (in_channel_length ic) in
    close_in ic;
    check Alcotest.string "profile JSON byte-identical to golden" want got

let suite =
  [
    QCheck_alcotest.to_alcotest prop_conservation;
    Alcotest.test_case "compiled and interpretive profiles byte-equal" `Quick
      test_modes_byte_equal;
    Alcotest.test_case "profile independent of pool size" `Quick
      test_jobs_byte_equal;
    Alcotest.test_case "profiling is a pure observer" `Quick
      test_pure_observer;
    Alcotest.test_case "slot contents: sorted, non-zero, loop dominates"
      `Quick test_slot_contents;
    Alcotest.test_case "text report and flamegraph render" `Quick
      test_text_and_flame;
    Alcotest.test_case "diff of two artifacts" `Quick test_diff;
    Alcotest.test_case "golden profile artifact byte-stable" `Quick
      test_golden;
  ]
