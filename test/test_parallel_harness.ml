(** Tests for the domain pool and for determinism of the parallel
    evaluation matrix: results must keep input order, exceptions must
    propagate (first failure by index), and rendered tables must be
    byte-identical whatever the pool size. *)

module DP = Lp_util.Domain_pool
module Exp_common = Lp_experiments.Exp_common
module Exp_tables = Lp_experiments.Exp_tables
module Exp_figures = Lp_experiments.Exp_figures
module Table = Lp_util.Table

let check = Alcotest.check
let fail = Alcotest.fail

(** Run [f] on a fresh pool of [jobs] workers, always shutting it down. *)
let with_pool jobs f =
  let pool = DP.create ~jobs () in
  Fun.protect ~finally:(fun () -> DP.shutdown pool) (fun () -> f pool)

let inputs = List.init 200 (fun i -> i)

(* mix cheap and heavier elements so completion order actually scrambles *)
let work x =
  let rounds = if x mod 7 = 0 then 5000 else 50 in
  let acc = ref x in
  for _ = 1 to rounds do
    acc := (!acc * 31 + 7) mod 1_000_003
  done;
  !acc

let test_map_preserves_order () =
  let expected = List.map work inputs in
  with_pool 4 (fun pool ->
      check
        Alcotest.(list int)
        "jobs=4" expected
        (DP.parallel_map ~pool work inputs);
      check
        Alcotest.(list int)
        "jobs=4 chunk=7" expected
        (DP.parallel_map ~pool ~chunk:7 work inputs));
  with_pool 1 (fun pool ->
      check
        Alcotest.(list int)
        "jobs=1 degrades to List.map" expected
        (DP.parallel_map ~pool work inputs))

let test_map_empty_and_singleton () =
  with_pool 3 (fun pool ->
      check Alcotest.(list int) "empty" [] (DP.parallel_map ~pool work []);
      check
        Alcotest.(list int)
        "singleton" [ work 9 ]
        (DP.parallel_map ~pool work [ 9 ]))

let test_exception_propagates () =
  with_pool 4 (fun pool ->
      match
        DP.parallel_map ~pool
          (fun x -> if x = 37 then failwith "boom-37" else work x)
          inputs
      with
      | _ -> fail "expected Failure"
      | exception Failure msg -> check Alcotest.string "message" "boom-37" msg)

let test_first_failure_by_index () =
  (* several elements fail; the caller must see the lowest-index one
     regardless of which domain finished first *)
  with_pool 4 (fun pool ->
      match
        DP.parallel_map ~pool
          (fun x ->
            if x mod 10 = 3 then failwith (Printf.sprintf "boom-%d" x)
            else work x)
          inputs
      with
      | _ -> fail "expected Failure"
      | exception Failure msg -> check Alcotest.string "lowest index" "boom-3" msg)

let test_parallel_iter_runs_all () =
  let hits = Array.make 64 0 in
  let m = Mutex.create () in
  with_pool 4 (fun pool ->
      DP.parallel_iter ~pool
        (fun i ->
          Mutex.lock m;
          hits.(i) <- hits.(i) + 1;
          Mutex.unlock m)
        (List.init 64 (fun i -> i)));
  Array.iteri
    (fun i n -> if n <> 1 then Alcotest.failf "slot %d hit %d times" i n)
    hits

(** Render an experiment's table with the default pool pinned to [jobs],
    from a cold cache. *)
let render_with ~jobs (run : unit -> Table.t) : string =
  DP.set_default_jobs jobs;
  Exp_common.clear_cache ();
  Fun.protect
    ~finally:(fun () -> DP.set_default_jobs 1)
    (fun () -> Table.render (run ()))

let test_run_matrix_deterministic_t1 () =
  let seq = render_with ~jobs:1 Exp_tables.t1 in
  let par = render_with ~jobs:4 Exp_tables.t1 in
  check Alcotest.string "T1 byte-identical" seq par

let test_run_matrix_deterministic_f2 () =
  let seq = render_with ~jobs:1 Exp_figures.f2 in
  let par = render_with ~jobs:4 Exp_figures.f2 in
  check Alcotest.string "F2 byte-identical" seq par

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "map empty/singleton" `Quick test_map_empty_and_singleton;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "first failure by index" `Quick
      test_first_failure_by_index;
    Alcotest.test_case "parallel_iter runs all" `Quick
      test_parallel_iter_runs_all;
    Alcotest.test_case "run_matrix T1 jobs=4 == jobs=1" `Slow
      test_run_matrix_deterministic_t1;
    Alcotest.test_case "run_matrix F2 jobs=4 == jobs=1" `Slow
      test_run_matrix_deterministic_f2;
  ]
