(** Classic-pass tests: constant folding, DCE, CFG simplification,
    MAC fusion, strength reduction, LICM, constant promotion. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Printer = Lp_ir.Printer
module Verify = Lp_ir.Verify
module T = Lp_transforms

let fail = Alcotest.fail
let check = Alcotest.check

let lower src =
  let ast = Lp_lang.Parser.parse_program src in
  Lp_lang.Typecheck.check_program ast;
  Lp_ir.Lower.lower_program ast

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let run_classic prog =
  let pm = T.Pass.create_manager () in
  T.Pass.run_to_fixpoint pm
    [ T.Simplify_cfg.pass; T.Constfold.pass; T.Dce.pass ]
    prog;
  Verify.verify_prog prog;
  pm

let count_op prog op_string =
  let s = Printer.prog_to_string prog in
  let parts = String.split_on_char '\n' s in
  List.length (List.filter (fun l -> contains l op_string) parts)

(* ---------------- constant folding ---------------- *)

let test_constfold_arith () =
  let prog = lower "int main() { return 2 + 3 * 4; }" in
  ignore (run_classic prog);
  let s = Printer.prog_to_string prog in
  if not (contains s "ret 14") then fail ("2+3*4 not folded:\n" ^ s)

let test_constfold_agrees_with_sim () =
  (* folding must produce the same value the simulator computes *)
  let src =
    "int main() { return (123456 * 789) % 1000 + (7 / 2) - (-9 % 4) + (1 << 20); }"
  in
  let machine = Lp_machine.Machine.generic ~n_cores:1 () in
  let (_, folded) = Lowpower.Compile.run ~opts:Lowpower.Compile.baseline ~machine src in
  (* compile without any optimisation: lower and simulate directly *)
  let raw = lower src in
  let raw_out = Lp_sim.Sim.run ~machine raw in
  check Alcotest.bool "same result" true
    (folded.Lp_sim.Sim.ret = raw_out.Lp_sim.Sim.ret)

let test_constfold_identities () =
  let prog = lower
      "int main() { int x = 5; int a = x * 1; int b = x + 0; int c = x * 0; return a + b + c; }"
  in
  ignore (run_classic prog);
  check Alcotest.int "no multiplies left" 0 (count_op prog "mul")

let test_constfold_branch () =
  let prog = lower "int main() { if (1 < 2) { return 10; } return 20; }" in
  ignore (run_classic prog);
  let f = Prog.func_exn prog "main" in
  (* the false arm must be gone entirely *)
  check Alcotest.int "single block" 1 (List.length f.Prog.block_order);
  if not (contains (Printer.prog_to_string prog) "ret 10") then fail "wrong arm"

let test_constfold_div_by_zero_preserved () =
  (* folding must NOT fold a division by zero away into garbage; the
     simulator still traps *)
  let prog = lower "int main() { return 1 / 0; }" in
  ignore (run_classic prog);
  let machine = Lp_machine.Machine.generic ~n_cores:1 () in
  try
    ignore (Lp_sim.Sim.run ~machine prog);
    fail "division by zero not trapped"
  with Lp_sim.Value.Runtime_error _ -> ()

(* ---------------- dce ---------------- *)

let test_dce_removes_dead () =
  let prog = lower "int main() { int dead = 12345; int live = 7; return live; }" in
  ignore (run_classic prog);
  if contains (Printer.prog_to_string prog) "12345" then fail "dead code kept"

let test_dce_keeps_stores () =
  let prog = lower "int g[4];\nint main() { g[0] = 9; return 0; }" in
  ignore (run_classic prog);
  if not (contains (Printer.prog_to_string prog) "store @g") then
    fail "store wrongly removed"

let test_dce_keeps_calls () =
  let prog = lower
      "int g;\nint effect() { g = 1; return 0; }\nint main() { int x = effect(); return 0; }"
  in
  ignore (run_classic prog);
  if not (contains (Printer.prog_to_string prog) "call effect") then
    fail "call with side effects removed"

(* ---------------- simplify-cfg ---------------- *)

let test_simplify_merges_blocks () =
  let prog = lower "int main() { int a = 1; { int b = 2; { int c = 3; return a + b + c; } } }" in
  ignore (run_classic prog);
  let f = Prog.func_exn prog "main" in
  check Alcotest.int "merged to one block" 1 (List.length f.Prog.block_order)

let test_simplify_threads_empty () =
  let f = Prog.create_func ~name:"main" ~params:[] ~ret:(Some Ir.I) in
  let empty1 = Prog.new_block f in
  let empty2 = Prog.new_block f in
  let final = Prog.new_block f in
  (Prog.block f f.Prog.entry).Ir.term <- Ir.Jmp empty1.Ir.bid;
  empty1.Ir.term <- Ir.Jmp empty2.Ir.bid;
  empty2.Ir.term <- Ir.Jmp final.Ir.bid;
  final.Ir.term <- Ir.Ret (Some (Ir.Imm (Ir.Cint 0)));
  let prog = Prog.create ~globals:[] in
  Prog.add_func prog f;
  let changes = T.Simplify_cfg.run_func (Lp_analysis.Manager.create prog) f in
  if changes = 0 then fail "no simplification";
  check Alcotest.int "one block" 1 (List.length f.Prog.block_order)

(* ---------------- mac fusion ---------------- *)

let test_mac_fusion_fuses () =
  let prog = lower
      "int main() { int s = 0; for (int i = 0; i < 4; i = i + 1) { s = s + i * 3; } return s; }"
  in
  let pm = T.Pass.create_manager () in
  T.Pass.run_to_fixpoint pm [ T.Simplify_cfg.pass; T.Constfold.pass; T.Dce.pass ] prog;
  ignore (T.Pass.run_pass pm T.Mac_fusion.pass prog);
  T.Pass.run_to_fixpoint pm [ T.Constfold.pass; T.Dce.pass ] prog;
  Verify.verify_prog prog;
  if count_op prog "mac" = 0 then fail "no mac formed";
  check Alcotest.int "mul consumed" 0 (count_op prog "mul");
  (* and the result is unchanged *)
  let machine = Lp_machine.Machine.generic ~n_cores:1 () in
  let out = Lp_sim.Sim.run ~machine prog in
  check Alcotest.bool "value" true
    (out.Lp_sim.Sim.ret = Some (Lp_sim.Value.Vint 18))

let test_mac_fusion_respects_multiuse () =
  (* t = a*b used twice: cannot fuse *)
  let prog = lower
      "int main() { int a = 3; int b = 4; int t = a * b; return (1 + t) + (2 + t); }"
  in
  let pm = T.Pass.create_manager () in
  ignore (T.Pass.run_pass pm T.Mac_fusion.pass prog);
  Verify.verify_prog prog;
  if count_op prog "mac" <> 0 then fail "fused a multi-use multiply"

(* ---------------- strength reduction ---------------- *)

let test_strength_pow2 () =
  let prog = lower "int main() { int x = 5; return x * 8; }" in
  ignore (T.Strength.run_func (Prog.func_exn prog "main"));
  let s = Printer.prog_to_string prog in
  if not (contains s "shl") then fail "x*8 not reduced to shift";
  if contains s "mul" then fail "multiply still present";
  let machine = Lp_machine.Machine.generic ~n_cores:1 () in
  let out = Lp_sim.Sim.run ~machine prog in
  check Alcotest.bool "value" true (out.Lp_sim.Sim.ret = Some (Lp_sim.Value.Vint 40))

let test_strength_leaves_non_pow2 () =
  let prog = lower "int main() { int x = 5; return x * 6; }" in
  check Alcotest.int "no change" 0 (T.Strength.run_func (Prog.func_exn prog "main"))

let test_strength_leaves_div () =
  (* -7 / 2 = -3 (truncation) but -7 asr 1 = -4: division must survive *)
  let prog = lower "int main() { int x = -7; return x / 2; }" in
  ignore (T.Strength.run_func (Prog.func_exn prog "main"));
  if not (contains (Printer.prog_to_string prog) "div") then
    fail "division strength-reduced unsoundly";
  let machine = Lp_machine.Machine.generic ~n_cores:1 () in
  let out = Lp_sim.Sim.run ~machine prog in
  check Alcotest.bool "value" true (out.Lp_sim.Sim.ret = Some (Lp_sim.Value.Vint (-3)))

(* ---------------- licm ---------------- *)

let test_licm_hoists () =
  let prog = lower
      "int g[64];\nint main() { int a = 6; int b = 7; for (int i = 0; i < 64; i = i + 1) { g[i] = i + a * b; } return 0; }"
  in
  let pm = T.Pass.create_manager () in
  T.Pass.run_to_fixpoint pm [ T.Simplify_cfg.pass; T.Constfold.pass; T.Dce.pass ] prog;
  (* a*b is constant-folded; use registers the folder cannot see through:
     recompute on a fresh program with opaque values *)
  let prog = lower
      "int g[64];\nint opaque(int x) { return x + 1; }\nint main() { int a = opaque(5); int b = opaque(6); for (int i = 0; i < 64; i = i + 1) { g[i] = i + a * b; } return 0; }"
  in
  let f = Prog.func_exn prog "main" in
  let before_mul_in_loop =
    let loops = Lp_analysis.Loops.find f in
    let l = List.hd loops in
    Lp_analysis.Loops.LS.fold
      (fun bid acc ->
        acc
        + List.length
            (List.filter
               (fun (i : Ir.instr) ->
                 match i.Ir.idesc with Ir.Binop (Ir.Mul, _, _, _) -> true | _ -> false)
               (Prog.block f bid).Ir.instrs))
      l.Lp_analysis.Loops.blocks 0
  in
  check Alcotest.int "mul initially in loop" 1 before_mul_in_loop;
  let hoisted = T.Licm.run_func f in
  if hoisted = 0 then fail "nothing hoisted";
  Verify.verify_prog prog;
  (* result preserved *)
  let machine = Lp_machine.Machine.generic ~n_cores:1 () in
  ignore (Lp_sim.Sim.run ~machine prog)

let test_licm_no_div_hoist () =
  (* division guarded by the loop condition must not be hoisted *)
  let prog = lower
      "int opaque(int x) { return x; }\nint main() { int d = opaque(0); int s = 0; for (int i = 0; i < d; i = i + 1) { s = s + 10 / d; } return s; }"
  in
  let f = Prog.func_exn prog "main" in
  ignore (T.Licm.run_func f);
  Verify.verify_prog prog;
  (* trip count is zero so the division must never execute *)
  let machine = Lp_machine.Machine.generic ~n_cores:1 () in
  let out = Lp_sim.Sim.run ~machine prog in
  check Alcotest.bool "value 0" true (out.Lp_sim.Sim.ret = Some (Lp_sim.Value.Vint 0))

(* ---------------- constant promotion ---------------- *)

let test_const_promote () =
  let prog = lower
      "int table[4] = {1,2,3,4};\nint out[4];\nint main() { for (int i = 0; i < 4; i = i + 1) { out[i] = table[i]; } return 0; }"
  in
  let n = T.Const_promote.run prog in
  if n = 0 then fail "no promotion";
  let s = Printer.prog_to_string prog in
  if not (contains s "@ro:table") then fail "table not promoted";
  if contains s "@ro:out" then fail "written array promoted"

let test_const_promote_faa_blocks () =
  let prog = lower
      "int ctr;\nint main() { return ctr; }"
  in
  (* ctr is never written here: promoted *)
  ignore (T.Const_promote.run prog);
  if not (contains (Printer.prog_to_string prog) "@ro:ctr") then
    fail "read-only scalar not promoted"

(* ---------------- pass manager ---------------- *)

let test_pass_manager_stats () =
  let prog = lower "int main() { return 1 + 2; }" in
  let pm = T.Pass.create_manager () in
  ignore (T.Pass.run_pass pm T.Constfold.pass prog);
  ignore (T.Pass.run_pass pm T.Constfold.pass prog);
  match T.Pass.stats pm with
  | [ s ] ->
    check Alcotest.string "name" "constfold" s.T.Pass.pass_name;
    check Alcotest.int "runs" 2 s.T.Pass.runs
  | _ -> fail "stats aggregation"

let suite =
  [
    Alcotest.test_case "constfold arith" `Quick test_constfold_arith;
    Alcotest.test_case "constfold = sim semantics" `Quick test_constfold_agrees_with_sim;
    Alcotest.test_case "constfold identities" `Quick test_constfold_identities;
    Alcotest.test_case "constfold branch" `Quick test_constfold_branch;
    Alcotest.test_case "constfold div-by-zero" `Quick test_constfold_div_by_zero_preserved;
    Alcotest.test_case "dce removes dead" `Quick test_dce_removes_dead;
    Alcotest.test_case "dce keeps stores" `Quick test_dce_keeps_stores;
    Alcotest.test_case "dce keeps calls" `Quick test_dce_keeps_calls;
    Alcotest.test_case "simplify merges" `Quick test_simplify_merges_blocks;
    Alcotest.test_case "simplify threads empty" `Quick test_simplify_threads_empty;
    Alcotest.test_case "mac fusion" `Quick test_mac_fusion_fuses;
    Alcotest.test_case "mac fusion multi-use" `Quick test_mac_fusion_respects_multiuse;
    Alcotest.test_case "strength pow2" `Quick test_strength_pow2;
    Alcotest.test_case "strength non-pow2" `Quick test_strength_leaves_non_pow2;
    Alcotest.test_case "strength div untouched" `Quick test_strength_leaves_div;
    Alcotest.test_case "licm hoists" `Quick test_licm_hoists;
    Alcotest.test_case "licm no div hoist" `Quick test_licm_no_div_hoist;
    Alcotest.test_case "const promote" `Quick test_const_promote;
    Alcotest.test_case "const promote scalar" `Quick test_const_promote_faa_blocks;
    Alcotest.test_case "pass manager stats" `Quick test_pass_manager_stats;
  ]

(* ---------------- global constant propagation ---------------- *)

let test_constprop_cross_block () =
  (* n is set in the entry block and used in another; local folding
     cannot see it, global propagation must *)
  let prog = lower
      "int g[8];\nint main() { int n = 5; if (g[0] > 0) { g[1] = n; } else { g[2] = n; } return n; }"
  in
  let pm = T.Pass.create_manager () in
  T.Pass.run_to_fixpoint pm
    [ T.Simplify_cfg.pass; T.Constfold.pass; T.Constprop.pass; T.Dce.pass ]
    prog;
  Verify.verify_prog prog;
  if not (contains (Printer.prog_to_string prog) "ret 5") then
    fail "constant not propagated across blocks"

let test_constprop_join_conflict () =
  (* x is 1 on one path and 2 on the other: must NOT be propagated *)
  let src =
    "int g[8];\nint main() { int x = 1; if (g[0] > 0) { x = 2; } return x; }"
  in
  let prog = lower src in
  let pm = T.Pass.create_manager () in
  T.Pass.run_to_fixpoint pm
    [ T.Simplify_cfg.pass; T.Constfold.pass; T.Constprop.pass; T.Dce.pass ]
    prog;
  Verify.verify_prog prog;
  (* simulate both programs; behaviour must be preserved *)
  let machine = Lp_machine.Machine.generic ~n_cores:1 () in
  let out = Lp_sim.Sim.run ~machine prog in
  check Alcotest.bool "value 1" true
    (out.Lp_sim.Sim.ret = Some (Lp_sim.Value.Vint 1))

let test_constprop_through_loop () =
  (* the loop bound flows through a register; after propagation the trip
     estimator sees a constant *)
  let prog = lower
      "int g[64];\nint main() { int n = 16; int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + g[i]; } return s; }"
  in
  let pm = T.Pass.create_manager () in
  T.Pass.run_to_fixpoint pm
    [ T.Simplify_cfg.pass; T.Constfold.pass; T.Constprop.pass; T.Dce.pass ]
    prog;
  let f = Prog.func_exn prog "main" in
  match Lp_analysis.Loops.find f with
  | [ l ] ->
    check Alcotest.int "trip now constant" 16
      (Lp_analysis.Loops.trip_estimate f l)
  | _ -> fail "loop lost"

(* ---------------- unrolling ---------------- *)

let test_unroll_dissolves_tiny_loop () =
  let prog = lower
      "int main() { int s = 0; for (int i = 0; i < 4; i = i + 1) { s = s + i * 2; } return s; }"
  in
  let pm = T.Pass.create_manager () in
  T.Pass.run_to_fixpoint pm
    [ T.Simplify_cfg.pass; T.Constfold.pass; T.Constprop.pass; T.Dce.pass ]
    prog;
  let n = T.Unroll.run_func (Prog.func_exn prog "main") in
  check Alcotest.int "one loop unrolled" 1 n;
  T.Pass.run_to_fixpoint pm
    [ T.Simplify_cfg.pass; T.Constfold.pass; T.Constprop.pass; T.Dce.pass ]
    prog;
  Verify.verify_prog prog;
  (* fully dissolved: single block, constant return *)
  let f = Prog.func_exn prog "main" in
  check Alcotest.int "single block" 1 (List.length f.Prog.block_order);
  if not (contains (Printer.prog_to_string prog) "ret 12") then
    fail "unrolled loop not folded to 12";
  check Alcotest.int "no loops left" 0
    (List.length (Lp_analysis.Loops.find f))

let test_unroll_skips_large_or_unknown () =
  let check_skipped src =
    let prog = lower src in
    let pm = T.Pass.create_manager () in
    T.Pass.run_to_fixpoint pm
      [ T.Simplify_cfg.pass; T.Constfold.pass; T.Constprop.pass; T.Dce.pass ]
      prog;
    check Alcotest.int "not unrolled" 0
      (T.Unroll.run_func (Prog.func_exn prog "main"))
  in
  (* trip too large *)
  check_skipped
    "int main() { int s = 0; for (int i = 0; i < 100; i = i + 1) { s = s + i; } return s; }";
  (* trip unknown (parameter-like: comes from memory) *)
  check_skipped
    "int n;\nint main() { int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + i; } return s; }"

let test_unroll_zero_trip () =
  let prog = lower
      "int g[4] = {9};\nint main() { for (int i = 0; i < 0; i = i + 1) { g[0] = 0; } return g[0]; }"
  in
  let pm = T.Pass.create_manager () in
  T.Pass.run_to_fixpoint pm
    [ T.Simplify_cfg.pass; T.Constfold.pass; T.Constprop.pass; T.Dce.pass ]
    prog;
  ignore (T.Unroll.run_func (Prog.func_exn prog "main"));
  T.Pass.run_to_fixpoint pm [ T.Simplify_cfg.pass; T.Constfold.pass; T.Dce.pass ] prog;
  Verify.verify_prog prog;
  let machine = Lp_machine.Machine.generic ~n_cores:1 () in
  let out = Lp_sim.Sim.run ~machine prog in
  check Alcotest.bool "body never ran" true
    (out.Lp_sim.Sim.ret = Some (Lp_sim.Value.Vint 9))

let suite =
  suite
  @ [
      Alcotest.test_case "constprop cross-block" `Quick test_constprop_cross_block;
      Alcotest.test_case "constprop join conflict" `Quick test_constprop_join_conflict;
      Alcotest.test_case "constprop loop bound" `Quick test_constprop_through_loop;
      Alcotest.test_case "unroll dissolves tiny loop" `Quick test_unroll_dissolves_tiny_loop;
      Alcotest.test_case "unroll skips large/unknown" `Quick test_unroll_skips_large_or_unknown;
      Alcotest.test_case "unroll zero trip" `Quick test_unroll_zero_trip;
    ]
