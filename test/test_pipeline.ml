(** The declarative pass pipeline and the analysis-cache escape hatch.

    Checks that the schedule-as-data layer is faithful: the default
    value prints stably ([lpcc pipeline]'s golden output), [parse] is
    the inverse of [to_string] on flat specs, running the explicit
    default schedule equals the driver's implicit one, and — the
    invariant everything rests on — compiling with the analysis cache
    disabled produces byte-identical IR while a cached compile actually
    hits the cache. *)

module Compile = Lowpower.Compile
module Pipeline = Lowpower.Pipeline
module Machine = Lp_machine.Machine
module Runtime_config = Lp_util.Runtime_config
module Obs = Lp_obs.Obs
module W = Lp_workloads.Workload

let check = Alcotest.check
let fail = Alcotest.fail

let machine = Machine.generic ~n_cores:4 ()

let workload name =
  match Lp_workloads.Suite.find name with
  | Some w -> w.W.source
  | None -> Alcotest.failf "bundled workload %s missing" name

(* ---------------- rendering and parsing ---------------- *)

let default_rendering =
  "run const-promote\n\
   fixpoint simplify-cfg constfold constprop dce\n\
   run unroll\n\
   fixpoint simplify-cfg constfold constprop dce\n\
   if mac-fusion {\n\
  \  run mac-fusion\n\
  \  fixpoint constfold dce\n\
   }\n\
   run strength-reduce\n\
   fixpoint licm constfold dce simplify-cfg\n"

let test_default_prints_stably () =
  check Alcotest.string "lpcc pipeline golden" default_rendering
    (Pipeline.to_string Pipeline.default)

let test_parse_round_trip () =
  match Pipeline.parse "constprop,fix(simplify-cfg,dce),strength-reduce" with
  | Error e -> fail e
  | Ok t ->
    check Alcotest.string "round trip"
      "run constprop\nfixpoint simplify-cfg dce\nrun strength-reduce\n"
      (Pipeline.to_string t)

let test_parse_rejects_garbage () =
  List.iter
    (fun spec ->
      match Pipeline.parse spec with
      | Ok _ -> Alcotest.failf "spec %S must be rejected" spec
      | Error _ -> ())
    [ "no-such-pass"; "fix()"; "dce,fix(dce"; ""; "fix(no-such-pass)" ]

let test_registry_covers_default () =
  (* every pass the default schedule runs is spellable in a --passes spec *)
  let rec names acc = function
    | [] -> acc
    | Pipeline.Run p :: rest -> names (p.Lp_transforms.Pass.name :: acc) rest
    | Pipeline.Fixpoint ps :: rest ->
      names (List.map (fun p -> p.Lp_transforms.Pass.name) ps @ acc) rest
    | Pipeline.If (_, sub) :: rest -> names (names acc sub) rest
  in
  List.iter
    (fun n ->
      if Pipeline.find_pass n = None then
        Alcotest.failf "default schedule uses unregistered pass %s" n)
    (names [] Pipeline.default)

(* ---------------- schedule and cache equivalences ---------------- *)

let ir_of ?ctx opts src =
  let compiled =
    match Compile.compile_result ?ctx ~opts ~machine src with
    | Ok c -> c
    | Error d -> Alcotest.failf "compile failed: %s" (Lp_util.Diag.to_string d)
  in
  Lp_ir.Printer.prog_to_string compiled.Compile.prog

let test_explicit_default_is_default () =
  let opts = Compile.full ~n_cores:4 in
  let src = workload "fir" in
  check Alcotest.string "explicit default == implicit"
    (ir_of opts src)
    (ir_of { opts with Compile.pipeline = Some Pipeline.default } src)

let no_cache_ctx () =
  Compile.make_ctx
    ~config:{ Runtime_config.default with Runtime_config.no_analysis_cache = true }
    ()

let test_cache_off_is_byte_identical () =
  List.iter
    (fun name ->
      let src = workload name in
      let opts = Compile.full ~n_cores:4 in
      check Alcotest.string (name ^ " cache on == off")
        (ir_of opts src)
        (ir_of ~ctx:(no_cache_ctx ()) opts src))
    [ "fir"; "matmul"; "histogram" ]

let test_cache_hits_observed () =
  let obs = Obs.create () in
  let ctx = Compile.make_ctx ~obs () in
  ignore (ir_of ~ctx (Compile.full ~n_cores:4) (workload "fir"));
  let counter n = Option.value ~default:0 (List.assoc_opt n (Obs.counters obs)) in
  if counter "analysis.cache_hits" = 0 then fail "no analysis cache hits";
  if counter "analysis.cache_misses" = 0 then fail "no analysis cache misses";
  if counter "analysis.invalidations" = 0 then fail "no invalidations recorded"

let test_no_cache_ctx_never_hits () =
  let obs = Obs.create () in
  let ctx =
    Compile.make_ctx ~obs
      ~config:{ Runtime_config.default with Runtime_config.no_analysis_cache = true }
      ()
  in
  ignore (ir_of ~ctx (Compile.full ~n_cores:4) (workload "fir"));
  check Alcotest.int "cache disabled: zero hits" 0
    (Option.value ~default:0
       (List.assoc_opt "analysis.cache_hits" (Obs.counters obs)))

let test_custom_pipeline_runs () =
  (* a cut-down schedule still compiles and simulates correctly *)
  let spec = "const-promote,fix(simplify-cfg,constfold,constprop,dce)" in
  let pipeline =
    match Pipeline.parse spec with Ok t -> t | Error e -> fail e
  in
  let opts =
    { (Compile.full ~n_cores:4) with Compile.pipeline = Some pipeline }
  in
  let (_, o) = Compile.run ~opts ~machine (workload "fir") in
  let (_, o_def) =
    Compile.run ~opts:(Compile.full ~n_cores:4) ~machine (workload "fir")
  in
  match (o.Lp_sim.Sim.ret, o_def.Lp_sim.Sim.ret) with
  | (Some a, Some b) ->
    if not (Lp_sim.Value.equal a b) then
      fail "cut-down schedule changed the program's result"
  | _ -> fail "simulation returned no value"

let suite =
  [
    Alcotest.test_case "default prints stably" `Quick test_default_prints_stably;
    Alcotest.test_case "parse round trip" `Quick test_parse_round_trip;
    Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
    Alcotest.test_case "registry covers default" `Quick test_registry_covers_default;
    Alcotest.test_case "explicit default == implicit" `Quick
      test_explicit_default_is_default;
    Alcotest.test_case "cache off byte-identical" `Quick
      test_cache_off_is_byte_identical;
    Alcotest.test_case "cache hits observed" `Quick test_cache_hits_observed;
    Alcotest.test_case "no-cache ctx never hits" `Quick
      test_no_cache_ctx_never_hits;
    Alcotest.test_case "custom --passes schedule runs" `Quick
      test_custom_pipeline_runs;
  ]
