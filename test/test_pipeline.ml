(** The declarative pass pipeline and the analysis-cache escape hatch.

    Checks that the schedule-as-data layer is faithful: the default
    value prints stably ([lpcc pipeline]'s golden output), [parse] is
    the inverse of [to_string] on flat specs, running the explicit
    default schedule equals the driver's implicit one, and — the
    invariant everything rests on — compiling with the analysis cache
    disabled produces byte-identical IR while a cached compile actually
    hits the cache. *)

module Compile = Lowpower.Compile
module Pipeline = Lowpower.Pipeline
module Machine = Lp_machine.Machine
module Runtime_config = Lp_util.Runtime_config
module Obs = Lp_obs.Obs
module W = Lp_workloads.Workload

let check = Alcotest.check
let fail = Alcotest.fail

let machine = Machine.generic ~n_cores:4 ()

let workload name =
  match Lp_workloads.Suite.find name with
  | Some w -> w.W.source
  | None -> Alcotest.failf "bundled workload %s missing" name

(* ---------------- rendering and parsing ---------------- *)

let default_rendering =
  "run const-promote\n\
   fixpoint simplify-cfg constfold constprop dce\n\
   run unroll\n\
   fixpoint simplify-cfg constfold constprop dce\n\
   if mac-fusion {\n\
  \  run mac-fusion\n\
  \  fixpoint constfold dce\n\
   }\n\
   run strength-reduce\n\
   fixpoint licm constfold dce simplify-cfg\n"

let test_default_prints_stably () =
  check Alcotest.string "lpcc pipeline golden" default_rendering
    (Pipeline.to_string Pipeline.default)

let test_parse_round_trip () =
  match Pipeline.parse "constprop,fix(simplify-cfg,dce),strength-reduce" with
  | Error e -> fail (Lp_util.Diag.to_string e)
  | Ok t ->
    check Alcotest.string "round trip"
      "run constprop\nfixpoint simplify-cfg dce\nrun strength-reduce\n"
      (Pipeline.to_string t)

let test_parse_rejects_garbage () =
  List.iter
    (fun spec ->
      match Pipeline.parse spec with
      | Ok _ -> Alcotest.failf "spec %S must be rejected" spec
      | Error _ -> ())
    [ "no-such-pass"; "fix()"; "dce,fix(dce"; ""; "fix(no-such-pass)" ]

let test_parse_diagnostics () =
  (* every rejection is the stable E_PIPELINE_SPEC with the character
     position where the scan stopped and the expected token *)
  let expect spec ~pos ~expected =
    match Pipeline.parse spec with
    | Ok _ -> Alcotest.failf "spec %S must be rejected" spec
    | Error d ->
      check Alcotest.string (spec ^ ": code") Pipeline.code_spec
        d.Lp_util.Diag.code;
      let msg = d.Lp_util.Diag.message in
      let has needle =
        let nl = String.length needle and ml = String.length msg in
        let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
        go 0
      in
      if not (has (Printf.sprintf "at character %d" pos)) then
        Alcotest.failf "%S: message %S lacks position %d" spec msg pos;
      if not (has (Printf.sprintf "expected %s" expected)) then
        Alcotest.failf "%S: message %S lacks expected token %S" spec msg
          expected
  in
  expect "" ~pos:0 ~expected:"a pass name or 'fix(...)'";
  expect "dce,," ~pos:4 ~expected:"a pass name";
  expect "fix(" ~pos:4 ~expected:"a pass name";
  expect "fix()" ~pos:4 ~expected:"a pass name";
  expect "dce,fix(dce" ~pos:11 ~expected:"',' or ')'";
  expect "dce)" ~pos:3 ~expected:"',' or end of spec"

(* ---------------- schedule files ---------------- *)

let test_schedule_file_round_trip () =
  let path = Filename.temp_file "lp-pipeline-test" ".sched" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let spec = "constprop,fix(simplify-cfg,dce),strength-reduce" in
      let t =
        match Pipeline.parse spec with
        | Ok t -> t
        | Error e -> fail (Lp_util.Diag.to_string e)
      in
      Pipeline.save_file ~name:"trip" ~comment:"round trip" path t;
      (match Pipeline.load_file path with
      | Ok t' -> check Alcotest.string "load inverts save" spec (Pipeline.to_spec t')
      | Error d -> fail (Lp_util.Diag.to_string d));
      (* resolve_spec dispatches @FILE to load_file, else parses inline *)
      (match Pipeline.resolve_spec ("@" ^ path) with
      | Ok t' -> check Alcotest.string "@FILE resolves" spec (Pipeline.to_spec t')
      | Error d -> fail (Lp_util.Diag.to_string d));
      match Pipeline.resolve_spec spec with
      | Ok t' -> check Alcotest.string "inline resolves" spec (Pipeline.to_spec t')
      | Error d -> fail (Lp_util.Diag.to_string d))

let test_schedule_file_errors () =
  let expect_spec_error label r =
    match r with
    | Ok _ -> Alcotest.failf "%s: must fail" label
    | Error d ->
      check Alcotest.string (label ^ ": code") Pipeline.code_spec
        d.Lp_util.Diag.code
  in
  expect_spec_error "missing file"
    (Pipeline.load_file "/nonexistent/lp-schedule.sched");
  let path = Filename.temp_file "lp-pipeline-test" ".sched" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let write s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      write "# only a comment\n";
      expect_spec_error "no spec line" (Pipeline.load_file path);
      write "dce\nconstfold\n";
      expect_spec_error "two spec lines" (Pipeline.load_file path);
      write "# header\nno-such-pass\n";
      expect_spec_error "bad spec in file" (Pipeline.load_file path))

let test_flatten_resolves_conditionals () =
  let flat = Pipeline.flatten ~mac_fusion:true Pipeline.default in
  check Alcotest.string "flattened default spec"
    "const-promote,fix(simplify-cfg,constfold,constprop,dce),unroll,fix(simplify-cfg,constfold,constprop,dce),mac-fusion,fix(constfold,dce),strength-reduce,fix(licm,constfold,dce,simplify-cfg)"
    (Pipeline.to_spec flat);
  let without = Pipeline.flatten ~mac_fusion:false Pipeline.default in
  check Alcotest.string "mac-fusion arm dropped"
    "const-promote,fix(simplify-cfg,constfold,constprop,dce),unroll,fix(simplify-cfg,constfold,constprop,dce),strength-reduce,fix(licm,constfold,dce,simplify-cfg)"
    (Pipeline.to_spec without)

let test_registry_covers_default () =
  (* every pass the default schedule runs is spellable in a --passes spec *)
  let rec names acc = function
    | [] -> acc
    | Pipeline.Run p :: rest -> names (p.Lp_transforms.Pass.name :: acc) rest
    | Pipeline.Fixpoint ps :: rest ->
      names (List.map (fun p -> p.Lp_transforms.Pass.name) ps @ acc) rest
    | Pipeline.If (_, sub) :: rest -> names (names acc sub) rest
  in
  List.iter
    (fun n ->
      if Pipeline.find_pass n = None then
        Alcotest.failf "default schedule uses unregistered pass %s" n)
    (names [] Pipeline.default)

(* ---------------- schedule and cache equivalences ---------------- *)

let ir_of ?ctx opts src =
  let compiled =
    match Compile.compile_result ?ctx ~opts ~machine src with
    | Ok c -> c
    | Error d -> Alcotest.failf "compile failed: %s" (Lp_util.Diag.to_string d)
  in
  Lp_ir.Printer.prog_to_string compiled.Compile.prog

let test_explicit_default_is_default () =
  let opts = Compile.full ~n_cores:4 in
  let src = workload "fir" in
  check Alcotest.string "explicit default == implicit"
    (ir_of opts src)
    (ir_of { opts with Compile.pipeline = Some Pipeline.default } src)

let no_cache_ctx () =
  Compile.make_ctx
    ~config:{ Runtime_config.default with Runtime_config.no_analysis_cache = true }
    ()

let test_cache_off_is_byte_identical () =
  List.iter
    (fun name ->
      let src = workload name in
      let opts = Compile.full ~n_cores:4 in
      check Alcotest.string (name ^ " cache on == off")
        (ir_of opts src)
        (ir_of ~ctx:(no_cache_ctx ()) opts src))
    [ "fir"; "matmul"; "histogram" ]

let test_cache_hits_observed () =
  let obs = Obs.create () in
  let ctx = Compile.make_ctx ~obs () in
  ignore (ir_of ~ctx (Compile.full ~n_cores:4) (workload "fir"));
  let counter n = Option.value ~default:0 (List.assoc_opt n (Obs.counters obs)) in
  if counter "analysis.cache_hits" = 0 then fail "no analysis cache hits";
  if counter "analysis.cache_misses" = 0 then fail "no analysis cache misses";
  if counter "analysis.invalidations" = 0 then fail "no invalidations recorded"

let test_no_cache_ctx_never_hits () =
  let obs = Obs.create () in
  let ctx =
    Compile.make_ctx ~obs
      ~config:{ Runtime_config.default with Runtime_config.no_analysis_cache = true }
      ()
  in
  ignore (ir_of ~ctx (Compile.full ~n_cores:4) (workload "fir"));
  check Alcotest.int "cache disabled: zero hits" 0
    (Option.value ~default:0
       (List.assoc_opt "analysis.cache_hits" (Obs.counters obs)))

let test_custom_pipeline_runs () =
  (* a cut-down schedule still compiles and simulates correctly *)
  let spec = "const-promote,fix(simplify-cfg,constfold,constprop,dce)" in
  let pipeline =
    match Pipeline.parse spec with
    | Ok t -> t
    | Error e -> fail (Lp_util.Diag.to_string e)
  in
  let opts =
    Compile.Options.update ~pipeline (Compile.full ~n_cores:4)
  in
  let (_, o) = Compile.run ~opts ~machine (workload "fir") in
  let (_, o_def) =
    Compile.run ~opts:(Compile.full ~n_cores:4) ~machine (workload "fir")
  in
  match (o.Lp_sim.Sim.ret, o_def.Lp_sim.Sim.ret) with
  | (Some a, Some b) ->
    if not (Lp_sim.Value.equal a b) then
      fail "cut-down schedule changed the program's result"
  | _ -> fail "simulation returned no value"

let suite =
  [
    Alcotest.test_case "default prints stably" `Quick test_default_prints_stably;
    Alcotest.test_case "parse round trip" `Quick test_parse_round_trip;
    Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
    Alcotest.test_case "parse diagnostics carry position and expectation"
      `Quick test_parse_diagnostics;
    Alcotest.test_case "schedule files round-trip" `Quick
      test_schedule_file_round_trip;
    Alcotest.test_case "schedule file failures are E_PIPELINE_SPEC" `Quick
      test_schedule_file_errors;
    Alcotest.test_case "flatten resolves conditionals" `Quick
      test_flatten_resolves_conditionals;
    Alcotest.test_case "registry covers default" `Quick test_registry_covers_default;
    Alcotest.test_case "explicit default == implicit" `Quick
      test_explicit_default_is_default;
    Alcotest.test_case "cache off byte-identical" `Quick
      test_cache_off_is_byte_identical;
    Alcotest.test_case "cache hits observed" `Quick test_cache_hits_observed;
    Alcotest.test_case "no-cache ctx never hits" `Quick
      test_no_cache_ctx_never_hits;
    Alcotest.test_case "custom --passes schedule runs" `Quick
      test_custom_pipeline_runs;
  ]
