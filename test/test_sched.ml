(** Static scheduler tests: task graphs, list scheduling, energy-aware
    level assignment. *)

module Taskgraph = Lp_sched.Taskgraph
module List_sched = Lp_sched.List_sched
module Energy_map = Lp_sched.Energy_map
module Machine = Lp_machine.Machine

let check = Alcotest.check
let fail = Alcotest.fail
let machine4 = Machine.generic ~n_cores:4 ()

(* ---------------- graph construction ---------------- *)

let test_graph_validation () =
  let t0 = Taskgraph.mk_task ~tid:0 ~name:"a" ~work:10.0 () in
  let t1 = Taskgraph.mk_task ~tid:1 ~name:"b" ~work:10.0 () in
  (* cycle *)
  (try
     ignore
       (Taskgraph.create ~tasks:[ t0; t1 ]
          ~edges:[ { Taskgraph.src = 0; dst = 1; words = 1 };
                   { Taskgraph.src = 1; dst = 0; words = 1 } ]);
     fail "cycle accepted"
   with Taskgraph.Invalid_graph _ -> ());
  (* self edge *)
  (try
     ignore (Taskgraph.create ~tasks:[ t0 ] ~edges:[ { Taskgraph.src = 0; dst = 0; words = 1 } ]);
     fail "self edge accepted"
   with Taskgraph.Invalid_graph _ -> ());
  (* non-dense ids *)
  try
    ignore (Taskgraph.create ~tasks:[ t1 ] ~edges:[]);
    fail "non-dense ids accepted"
  with Taskgraph.Invalid_graph _ -> ()

let test_topo_order () =
  let g = Taskgraph.chain ~n:5 ~work:10.0 in
  check Alcotest.(list int) "chain order" [ 0; 1; 2; 3; 4 ] (Taskgraph.topo_order g)

let test_upward_ranks () =
  let g = Taskgraph.chain ~n:3 ~work:10.0 in
  let ranks = Taskgraph.upward_ranks g in
  (* rank decreases along the chain; head has full critical path *)
  check (Alcotest.float 1e-9) "head rank" 30.0 ranks.(0);
  check (Alcotest.float 1e-9) "tail rank" 10.0 ranks.(2)

(* ---------------- list scheduling ---------------- *)

let test_fork_join_parallelises () =
  let g = Taskgraph.fork_join ~width:4 ~work:1000.0 in
  let s = List_sched.run ~machine:machine4 g in
  List_sched.validate s;
  check Alcotest.int "uses all cores" 4 (List_sched.cores_used s);
  (* makespan must beat serial by ~4x on the parallel section *)
  let serial = Taskgraph.serial_cycles g in
  if s.List_sched.makespan_cycles > serial /. 2.0 then
    Alcotest.failf "fork-join did not parallelise (makespan %.0f, serial %.0f)"
      s.List_sched.makespan_cycles serial

let test_chain_stays_on_one_core () =
  (* a dependence chain cannot be parallelised; a good scheduler keeps it
     on one core to avoid transfer costs *)
  let g = Taskgraph.chain ~n:6 ~work:100.0 in
  let s = List_sched.run ~machine:machine4 g in
  List_sched.validate s;
  check Alcotest.int "one core" 1 (List_sched.cores_used s);
  check (Alcotest.float 1e-6) "makespan = serial" (Taskgraph.serial_cycles g)
    s.List_sched.makespan_cycles

let test_more_tasks_than_cores () =
  let g = Taskgraph.fork_join ~width:13 ~work:500.0 in
  let s = List_sched.run ~machine:machine4 g in
  List_sched.validate s;
  if List_sched.cores_used s > 4 then fail "used phantom cores";
  (* lower bound: parallel section / cores *)
  if s.List_sched.makespan_cycles < 13.0 *. 500.0 /. 4.0 then
    fail "makespan below the bandwidth bound"

let test_single_core_machine () =
  let g = Taskgraph.fork_join ~width:3 ~work:100.0 in
  let s = List_sched.run ~machine:(Machine.generic ~n_cores:1 ()) g in
  List_sched.validate s;
  check (Alcotest.float 1e-6) "serial on 1 core" (Taskgraph.serial_cycles g)
    s.List_sched.makespan_cycles

(* ---------------- energy mapping ---------------- *)

let test_energy_map_reclaims_slack () =
  (* unbalanced fork-join: short tasks have slack next to the long one *)
  let tasks =
    [ Taskgraph.mk_task ~tid:0 ~name:"fork" ~work:10.0 ();
      Taskgraph.mk_task ~tid:1 ~name:"heavy" ~work:4000.0 ();
      Taskgraph.mk_task ~tid:2 ~name:"light1" ~work:500.0 ();
      Taskgraph.mk_task ~tid:3 ~name:"light2" ~work:800.0 ();
      Taskgraph.mk_task ~tid:4 ~name:"join" ~work:10.0 () ]
  in
  let edges =
    [ { Taskgraph.src = 0; dst = 1; words = 2 };
      { Taskgraph.src = 0; dst = 2; words = 2 };
      { Taskgraph.src = 0; dst = 3; words = 2 };
      { Taskgraph.src = 1; dst = 4; words = 2 };
      { Taskgraph.src = 2; dst = 4; words = 2 };
      { Taskgraph.src = 3; dst = 4; words = 2 } ]
  in
  let g = Taskgraph.create ~tasks ~edges in
  let s = List_sched.run ~machine:machine4 g in
  List_sched.validate s;
  let r = Energy_map.run ~slack:0.05 s in
  if r.Energy_map.scaled_energy_nj >= r.Energy_map.baseline_energy_nj then
    fail "no energy reclaimed from slack";
  (* the light tasks must have been slowed, the heavy one barely *)
  let level tid = r.Energy_map.assignments.(tid).Energy_map.level in
  let nominal =
    Lp_power.Power_model.max_level (Machine.ref_power machine4)
  in
  if level 2 >= nominal && level 3 >= nominal then
    fail "light tasks kept at nominal";
  (* deadline respected under the stretched durations *)
  let duration tid = r.Energy_map.assignments.(tid).Energy_map.stretched_cycles in
  let total = Energy_map.path_length s duration in
  if total > r.Energy_map.deadline_cycles +. 1e-6 then fail "deadline violated"

let test_energy_map_zero_slack_near_noop () =
  let g = Taskgraph.chain ~n:4 ~work:1000.0 in
  let s = List_sched.run ~machine:machine4 g in
  let r = Energy_map.run ~slack:0.0 s in
  (* a chain with zero slack cannot slow anything *)
  let nominal = Lp_power.Power_model.max_level (Machine.ref_power machine4) in
  Array.iter
    (fun a ->
      if a.Energy_map.level <> nominal then fail "slowed a zero-slack task")
    r.Energy_map.assignments

(* qcheck: random fork-join graphs always produce valid schedules *)
let prop_random_fork_join_valid =
  QCheck.Test.make ~count:50 ~name:"random fork-join schedules are valid"
    QCheck.(pair (int_range 1 12) (int_range 10 2000))
    (fun (width, work) ->
      let g = Taskgraph.fork_join ~width ~work:(float_of_int work) in
      let s = List_sched.run ~machine:machine4 g in
      List_sched.validate s;
      s.List_sched.makespan_cycles >= float_of_int work)

let suite =
  [
    Alcotest.test_case "graph validation" `Quick test_graph_validation;
    Alcotest.test_case "topo order" `Quick test_topo_order;
    Alcotest.test_case "upward ranks" `Quick test_upward_ranks;
    Alcotest.test_case "fork-join parallelises" `Quick test_fork_join_parallelises;
    Alcotest.test_case "chain stays local" `Quick test_chain_stays_on_one_core;
    Alcotest.test_case "more tasks than cores" `Quick test_more_tasks_than_cores;
    Alcotest.test_case "single-core machine" `Quick test_single_core_machine;
    Alcotest.test_case "energy map reclaims slack" `Quick test_energy_map_reclaims_slack;
    Alcotest.test_case "energy map zero slack" `Quick test_energy_map_zero_slack_near_noop;
    QCheck_alcotest.to_alcotest prop_random_fork_join_valid;
  ]
