(** IR construction, lowering, printing and verification tests. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Builder = Lp_ir.Builder
module Lower = Lp_ir.Lower
module Printer = Lp_ir.Printer
module Verify = Lp_ir.Verify
module Component = Lp_power.Component

let fail = Alcotest.fail
let check = Alcotest.check

let lower src =
  let ast = Lp_lang.Parser.parse_program src in
  Lp_lang.Typecheck.check_program ast;
  Lower.lower_program ast

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ---------------- lowering ---------------- *)

let test_lower_simple () =
  let prog = lower "int main() { return 2 + 3; }" in
  let s = Printer.prog_to_string prog in
  if not (contains s "add") then fail ("no add in:\n" ^ s);
  Verify.verify_prog prog

let test_lower_loop_shape () =
  let prog = lower "int g[4];\nint main() { for (int i = 0; i < 4; i = i + 1) { g[i] = i; } return 0; }" in
  let s = Printer.prog_to_string prog in
  List.iter
    (fun needle -> if not (contains s needle) then fail ("missing " ^ needle))
    [ "lt"; "br"; "store @g" ];
  Verify.verify_prog prog

let test_lower_global_scalar_is_memory () =
  let prog = lower "int s;\nint main() { s = 7; return s; }" in
  let s = Printer.prog_to_string prog in
  if not (contains s "store @s[0]") then fail "global scalar store";
  if not (contains s "load @s[0]") then fail "global scalar load"

let test_lower_short_circuit_blocks () =
  (* && must lower to control flow, not a bitwise and *)
  let prog = lower "int main() { int a = 1; int b = 2; if (a && b) { return 1; } return 0; }" in
  let f = Prog.func_exn prog "main" in
  if List.length f.Prog.block_order < 4 then fail "no control flow for &&"

let test_lower_intrinsics () =
  let src =
    "int gc;\nint main() { __send(1, 5); int x = __recv(0); __barrier(0); \
     int y = __faa(gc, 2); return x + y; }"
  in
  let prog = lower src in
  let s = Printer.prog_to_string prog in
  List.iter
    (fun needle -> if not (contains s needle) then fail ("missing " ^ needle))
    [ "send ch1"; "recv.i ch0"; "barrier 0"; "faa @gc" ]

let test_lower_float_ops () =
  let prog = lower "int main() { float x = 1.5; float y = x * 2.0; return int(y); }" in
  let s = Printer.prog_to_string prog in
  if not (contains s "fmul") then fail "no fmul";
  if not (contains s "f2i") then fail "no f2i"

let test_lower_frame_arrays () =
  let prog = lower "int main() { int buf[8]; buf[0] = 1; return buf[0]; }" in
  let f = Prog.func_exn prog "main" in
  match f.Prog.frame_arrays with
  | [ (_, Ir.I, 8) ] -> ()
  | _ -> fail "frame array metadata"

(* ---------------- component metadata ---------------- *)

let test_component_of () =
  let cases =
    [
      (Ir.Binop (Ir.Add, 0, Ir.Imm (Ir.Cint 1), Ir.Imm (Ir.Cint 2)), Component.Alu);
      (Ir.Binop (Ir.Mul, 0, Ir.Imm (Ir.Cint 1), Ir.Imm (Ir.Cint 2)), Component.Multiplier);
      (Ir.Binop (Ir.Div, 0, Ir.Imm (Ir.Cint 1), Ir.Imm (Ir.Cint 2)), Component.Divider);
      (Ir.Binop (Ir.Shl, 0, Ir.Imm (Ir.Cint 1), Ir.Imm (Ir.Cint 2)), Component.Shifter);
      (Ir.Binop (Ir.Fadd, 0, Ir.Imm (Ir.Cfloat 1.0), Ir.Imm (Ir.Cfloat 2.0)), Component.Fpu);
      (Ir.Mac (0, Ir.Imm (Ir.Cint 0), Ir.Imm (Ir.Cint 1), Ir.Imm (Ir.Cint 2)), Component.Mac);
      (Ir.Load (0, { Ir.sym_name = "x"; sym_space = Ir.Shared }, Ir.Imm (Ir.Cint 0)),
       Component.Load_store);
    ]
  in
  List.iteri
    (fun k (idesc, expected) ->
      let i = { Ir.iid = k; idesc; loc = Ir.no_loc } in
      if Ir.component_of i <> expected then
        Alcotest.failf "component_of case %d" k)
    cases

let test_uses_def () =
  let i = { Ir.iid = 0; idesc = Ir.Binop (Ir.Add, 5, Ir.Reg 1, Ir.Reg 2);
            loc = Ir.no_loc } in
  check Alcotest.(list int) "uses" [ 1; 2 ] (Ir.uses i);
  check Alcotest.(option int) "def" (Some 5) (Ir.def i);
  let st = { Ir.iid = 1; idesc = Ir.Store ({ Ir.sym_name = "a"; sym_space = Ir.Shared },
                                           Ir.Reg 3, Ir.Reg 4);
             loc = Ir.no_loc } in
  check Alcotest.(option int) "store def" None (Ir.def st);
  check Alcotest.(list int) "store uses" [ 3; 4 ] (Ir.uses st)

(* ---------------- builder ---------------- *)

let test_builder () =
  let f = Prog.create_func ~name:"f" ~params:[ Ir.I ] ~ret:(Some Ir.I) in
  let b = Builder.create f in
  let (p, _) = List.hd f.Prog.params in
  let d = Builder.binop b Ir.Add (Ir.Reg p) (Ir.Imm (Ir.Cint 1)) in
  Builder.set_term b (Ir.Ret (Some (Ir.Reg d)));
  let prog = Prog.create ~globals:[] in
  Prog.add_func prog f;
  Verify.verify_func prog f;
  check Alcotest.int "one instr" 1 (Prog.instr_count f)

let test_builder_double_term () =
  let f = Prog.create_func ~name:"f" ~params:[] ~ret:None in
  let b = Builder.create f in
  Builder.set_term b (Ir.Ret None);
  Alcotest.check_raises "emit after seal"
    (Invalid_argument "Builder.emit: current block already terminated")
    (fun () -> ignore (Builder.int_const b 1))

(* ---------------- verifier ---------------- *)

let expect_invalid what g =
  let prog = Prog.create ~globals:[] in
  let f = Prog.create_func ~name:"main" ~params:[] ~ret:(Some Ir.I) in
  Prog.add_func prog f;
  g prog f;
  try
    Verify.verify_prog prog;
    Alcotest.failf "verifier accepted: %s" what
  with Verify.Invalid _ -> ()

let test_verify_bad_target () =
  expect_invalid "branch to unknown block" (fun _prog f ->
      (Prog.block f f.Prog.entry).Ir.term <- Ir.Jmp 999)

let test_verify_undefined_reg () =
  expect_invalid "use of undefined register" (fun _prog f ->
      (Prog.block f f.Prog.entry).Ir.term <- Ir.Ret (Some (Ir.Reg 77)))

let test_verify_unknown_global () =
  expect_invalid "load from unknown global" (fun _prog f ->
      let b = Prog.block f f.Prog.entry in
      b.Ir.instrs <-
        [ Prog.new_instr f
            (Ir.Load (Prog.new_reg f, { Ir.sym_name = "nope"; sym_space = Ir.Shared },
                      Ir.Imm (Ir.Cint 0))) ];
      b.Ir.term <- Ir.Ret (Some (Ir.Imm (Ir.Cint 0))))

let test_verify_rom_write () =
  let prog =
    Prog.create ~globals:[ { Prog.gsym = "t"; gty = Ir.I; gsize = 4; ginit = None } ]
  in
  let f = Prog.create_func ~name:"main" ~params:[] ~ret:(Some Ir.I) in
  Prog.add_func prog f;
  let b = Prog.block f f.Prog.entry in
  b.Ir.instrs <-
    [ Prog.new_instr f
        (Ir.Store ({ Ir.sym_name = "t"; sym_space = Ir.Rom }, Ir.Imm (Ir.Cint 0),
                   Ir.Imm (Ir.Cint 1))) ];
  b.Ir.term <- Ir.Ret (Some (Ir.Imm (Ir.Cint 0)));
  (try
     Verify.verify_prog prog;
     fail "verifier accepted a ROM write"
   with Verify.Invalid _ -> ())

let test_verify_intrinsic_in_sequential () =
  expect_invalid "send in sequential program" (fun _prog f ->
      let b = Prog.block f f.Prog.entry in
      b.Ir.instrs <- [ Prog.new_instr f (Ir.Send (0, Ir.Imm (Ir.Cint 1))) ];
      b.Ir.term <- Ir.Ret (Some (Ir.Imm (Ir.Cint 0))))

let test_verify_channel_range () =
  let prog = Prog.create ~globals:[] in
  let f = Prog.create_func ~name:"main" ~params:[] ~ret:(Some Ir.I) in
  Prog.add_func prog f;
  let b = Prog.block f f.Prog.entry in
  b.Ir.instrs <- [ Prog.new_instr f (Ir.Send (5, Ir.Imm (Ir.Cint 1))) ];
  b.Ir.term <- Ir.Ret (Some (Ir.Imm (Ir.Cint 0)));
  prog.Prog.layout <-
    Prog.Parallel { entries = [ "main" ]; n_channels = 2; n_barriers = 0;
                    chan_capacity = 4 };
  try
    Verify.verify_prog prog;
    fail "verifier accepted out-of-range channel"
  with Verify.Invalid _ -> ()

(* every workload's lowered program verifies *)
let test_verify_all_workloads () =
  List.iter
    (fun (w : Lp_workloads.Workload.t) ->
      Verify.verify_prog (lower w.Lp_workloads.Workload.source))
    Lp_workloads.Suite.all

let suite =
  [
    Alcotest.test_case "lower simple" `Quick test_lower_simple;
    Alcotest.test_case "lower loop shape" `Quick test_lower_loop_shape;
    Alcotest.test_case "lower global scalar" `Quick test_lower_global_scalar_is_memory;
    Alcotest.test_case "lower short circuit" `Quick test_lower_short_circuit_blocks;
    Alcotest.test_case "lower intrinsics" `Quick test_lower_intrinsics;
    Alcotest.test_case "lower float ops" `Quick test_lower_float_ops;
    Alcotest.test_case "lower frame arrays" `Quick test_lower_frame_arrays;
    Alcotest.test_case "component_of" `Quick test_component_of;
    Alcotest.test_case "uses/def" `Quick test_uses_def;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "builder double term" `Quick test_builder_double_term;
    Alcotest.test_case "verify bad target" `Quick test_verify_bad_target;
    Alcotest.test_case "verify undefined reg" `Quick test_verify_undefined_reg;
    Alcotest.test_case "verify unknown global" `Quick test_verify_unknown_global;
    Alcotest.test_case "verify rom write" `Quick test_verify_rom_write;
    Alcotest.test_case "verify intrinsic in sequential" `Quick
      test_verify_intrinsic_in_sequential;
    Alcotest.test_case "verify channel range" `Quick test_verify_channel_range;
    Alcotest.test_case "verify all workloads" `Quick test_verify_all_workloads;
  ]
