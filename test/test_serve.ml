(** The [lpccd] compile server: bounded queue, wire protocol, and
    end-to-end robustness over a real Unix-domain socket — backpressure
    sheds with [E_OVERLOAD], deadlines expire as [E_DEADLINE], malformed
    frames and per-request crashes never take down the connection, and a
    small [serve-bench] replay passes its own acceptance gate including
    byte-identical verification against one-shot [lpcc] results. *)

module Json = Lp_util.Json
module P = Lp_serve.Protocol
module Bqueue = Lp_serve.Bqueue
module Server = Lp_serve.Server
module SB = Lp_serve.Serve_bench

let tmp_socket name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "lp-serve-test-%s-%d.sock" name (Unix.getpid ()))

let with_server ?(tune = fun o -> o) name f =
  let socket_path = tmp_socket name in
  let opts = tune (Server.default_opts ~socket_path) in
  let server = Server.start opts in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      if Sys.file_exists socket_path then Sys.remove socket_path)
    (fun () -> f socket_path server)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (* a stuck test should fail loudly, not hang the suite *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
  fd

let send_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

(** Read exactly [n] newline-terminated reply frames. *)
let read_frames fd n =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let lines () =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  let complete () =
    (* only count frames that already have their newline *)
    let s = Buffer.contents buf in
    String.fold_left (fun a c -> if c = '\n' then a + 1 else a) 0 s
  in
  let rec loop () =
    if complete () >= n then List.filteri (fun i _ -> i < n) (lines ())
    else
      let r = Unix.read fd chunk 0 (Bytes.length chunk) in
      if r = 0 then Alcotest.failf "server closed with %d/%d replies" (complete ()) n
      else begin
        Buffer.add_subbytes buf chunk 0 r;
        loop ()
      end
  in
  loop ()

let parse_reply line =
  match P.reply_of_frame line with
  | Ok r -> r
  | Error e -> Alcotest.failf "protocol error: %s in %s" e line

let find_reply replies id =
  match List.find_opt (fun r -> r.P.r_id = id) replies with
  | Some r -> r
  | None -> Alcotest.failf "no reply with id %s" (Json.to_compact_string id)

let code_of r =
  match r.P.r_code with Some c -> c | None -> "(ok)"

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                       *)
(* ------------------------------------------------------------------ *)

let test_bqueue () =
  let q = Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1 = `Ok 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2 = `Ok 2);
  Alcotest.(check bool) "full at capacity" true (Bqueue.try_push q 3 = `Full);
  Alcotest.(check (option int)) "FIFO pop" (Some 1) (Bqueue.pop q);
  Alcotest.(check bool) "slot freed" true (Bqueue.try_push q 3 = `Ok 2);
  Bqueue.close q;
  Alcotest.(check bool) "closed refuses" true (Bqueue.try_push q 4 = `Closed);
  Alcotest.(check bool) "closed flag" true (Bqueue.closed q);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Bqueue.pop q);
  Alcotest.(check (option int)) "drains 3" (Some 3) (Bqueue.pop q);
  Alcotest.(check (option int)) "then None" None (Bqueue.pop q)

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let test_protocol_round_trip () =
  let req =
    {
      P.id = Json.Num 7.0;
      version = Some 2;
      op = P.Run;
      src = P.Inline "int main() { return 0; }";
      machine = "pacduo";
      cores = 2;
      config = "pg+dvfs";
      passes = Some "constfold,dce";
      deadline_ms = Some 50;
      budget = Some 20;
      seed = Some 3;
    }
  in
  let frame = P.frame_of_request req in
  Alcotest.(check bool) "frame ends in newline" true
    (String.length frame > 0 && frame.[String.length frame - 1] = '\n');
  match P.request_of_frame (String.sub frame 0 (String.length frame - 1)) with
  | Error d -> Alcotest.failf "round trip failed: %s" (Lp_util.Diag.to_string d)
  | Ok r ->
    Alcotest.(check bool) "round trip preserves every field" true (r = req)

let test_protocol_decode_errors () =
  let expect_decode label frame =
    match P.request_of_frame frame with
    | Ok _ -> Alcotest.failf "%s: must be rejected" label
    | Error d ->
      Alcotest.(check string) (label ^ ": code") "E_DECODE" d.Lp_util.Diag.code;
      Alcotest.(check string) (label ^ ": stage") "serve"
        (Lp_util.Diag.stage_name d.Lp_util.Diag.stage)
  in
  expect_decode "not json" "this is not json";
  expect_decode "not an object" "[1,2,3]";
  expect_decode "missing op" "{}";
  expect_decode "unknown op" {|{"op":"frobnicate"}|};
  expect_decode "run without source" {|{"op":"run"}|};
  expect_decode "both sources"
    {|{"op":"run","source":"int main() { return 0; }","workload":"fir"}|};
  expect_decode "bad deadline type" {|{"op":"ping","deadline_ms":"soon"}|};
  expect_decode "negative deadline" {|{"op":"ping","deadline_ms":-5}|};
  (* best-effort id extraction for decode-error replies *)
  Alcotest.(check bool) "frame_id finds id" true
    (P.frame_id {|{"id":3,"op":"frobnicate"}|} = Json.Num 3.0);
  Alcotest.(check bool) "frame_id degrades to Null" true
    (P.frame_id "garbage" = Json.Null)

(** Version negotiation: absent = v1, v1 and v2 accepted, anything else
    is the stable [E_VERSION], and the v2-only [tune] op is refused on
    v1 frames with [E_VERSION] (not [E_DECODE]). *)
let test_protocol_versioning () =
  let decode label frame =
    match P.request_of_frame frame with
    | Ok r -> Ok r
    | Error d -> Error (label, d)
  in
  (match decode "absent" {|{"op":"ping"}|} with
  | Ok r -> Alcotest.(check bool) "absent means v1" true (r.P.version = None)
  | Error (l, d) -> Alcotest.failf "%s: %s" l (Lp_util.Diag.to_string d));
  (match decode "v2" {|{"op":"ping","version":2}|} with
  | Ok r -> Alcotest.(check bool) "v2 accepted" true (r.P.version = Some 2)
  | Error (l, d) -> Alcotest.failf "%s: %s" l (Lp_util.Diag.to_string d));
  let expect_code label want frame =
    match P.request_of_frame frame with
    | Ok _ -> Alcotest.failf "%s: must be rejected" label
    | Error d -> Alcotest.(check string) label want d.Lp_util.Diag.code
  in
  expect_code "future version" "E_VERSION" {|{"op":"ping","version":3}|};
  expect_code "version zero" "E_VERSION" {|{"op":"ping","version":0}|};
  (* version is checked before the op, so a v3 frame with an unknown op
     still reports the version problem *)
  expect_code "version before op" "E_VERSION"
    {|{"op":"frobnicate","version":7}|};
  expect_code "non-integer version" "E_DECODE"
    {|{"op":"ping","version":"two"}|};
  expect_code "tune needs v2" "E_VERSION" {|{"op":"tune","workload":"fir"}|};
  expect_code "tune without target" "E_DECODE" {|{"op":"tune","version":2}|};
  match P.request_of_frame {|{"op":"tune","version":2,"workload":"fir"}|} with
  | Ok r -> Alcotest.(check bool) "tune decodes under v2" true (r.P.op = P.Tune)
  | Error d -> Alcotest.failf "tune v2: %s" (Lp_util.Diag.to_string d)

(* ------------------------------------------------------------------ *)
(* End-to-end over a real socket                                       *)
(* ------------------------------------------------------------------ *)

let run_frame ?deadline_ms ?(config = "full") ~id src =
  P.frame_of_request
    { P.default_request with P.id; op = P.Run; src; config; deadline_ms }

(** A near-zero deadline on a real workload expires inside the pipeline
    or simulator and surfaces as [E_DEADLINE]; the connection, the
    worker and subsequent requests are untouched. *)
let test_deadline_expiry () =
  with_server "deadline" @@ fun path _server ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  send_all fd
    (run_frame ~id:(Json.Num 1.0) ~deadline_ms:1 (P.Workload "matmul"));
  send_all fd (run_frame ~id:(Json.Num 2.0) (P.Workload "fir"));
  let replies = List.map parse_reply (read_frames fd 2) in
  let dead = find_reply replies (Json.Num 1.0) in
  Alcotest.(check bool) "deadline request failed" false dead.P.r_ok;
  Alcotest.(check string) "E_DEADLINE" "E_DEADLINE" (code_of dead);
  let ok = find_reply replies (Json.Num 2.0) in
  Alcotest.(check bool) "same connection still serves" true ok.P.r_ok

(** Flooding a 1-worker/1-slot server sheds with transient [E_OVERLOAD]
    instead of queueing without bound — and every request is answered. *)
let test_overload_sheds () =
  let tune o = { o with Server.jobs = 1; queue_capacity = 1 } in
  with_server ~tune "overload" @@ fun path _server ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let n = 30 in
  let burst = Buffer.create 4096 in
  for i = 1 to n do
    Buffer.add_string burst
      (run_frame ~id:(Json.Num (float_of_int i)) (P.Workload "matmul"))
  done;
  send_all fd (Buffer.contents burst);
  let replies = List.map parse_reply (read_frames fd n) in
  Alcotest.(check int) "every request answered" n (List.length replies);
  let shed =
    List.length (List.filter (fun r -> code_of r = "E_OVERLOAD") replies)
  in
  let ok = List.length (List.filter (fun r -> r.P.r_ok) replies) in
  Alcotest.(check bool) "some load shed" true (shed > 0);
  Alcotest.(check bool) "some load served" true (ok > 0);
  List.iter
    (fun r ->
      if not r.P.r_ok then begin
        Alcotest.(check string) "only overload errors" "E_OVERLOAD" (code_of r);
        Alcotest.(check bool) "overload is transient" true r.P.r_transient
      end)
    replies;
  (* the server survived its own backpressure *)
  send_all fd
    (P.frame_of_request
       { P.default_request with P.id = Json.Num 99.0; op = P.Ping });
  let pong = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check bool) "ping after flood" true pong.P.r_ok

(** Malformed frames and compile-crashing sources get structured
    replies; the connection keeps working after both. *)
let test_crash_isolation () =
  with_server "isolation" @@ fun path _server ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  (* raw garbage: decode error with a Null id *)
  send_all fd "this is not json\n";
  let bad = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check bool) "decode reply not ok" false bad.P.r_ok;
  Alcotest.(check string) "decode code" "E_DECODE" (code_of bad);
  Alcotest.(check bool) "decode id is Null" true (bad.P.r_id = Json.Null);
  (* a source that breaks the front end: per-request degradation *)
  send_all fd (run_frame ~id:(Json.Num 1.0) (P.Inline "int main( {"));
  let parse_err = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check string) "compile diag code" "E_PARSE" (code_of parse_err);
  (* the same connection still compiles fine afterwards *)
  send_all fd
    (run_frame ~id:(Json.Num 2.0) (P.Inline "int main() { return 42; }"));
  let ok = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check bool) "valid request after crashes" true ok.P.r_ok;
  (match Json.member "ret" ok.P.r_payload with
  | Some (Json.Num n) -> Alcotest.(check (float 0.0)) "computed result" 42.0 n
  | _ -> Alcotest.fail "run reply must carry ret");
  (* server-side counters confirm nothing leaked into E_INTERNAL *)
  send_all fd
    (P.frame_of_request
       { P.default_request with P.id = Json.Num 3.0; op = P.Stats });
  let stats = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check bool) "stats ok" true stats.P.r_ok;
  match
    Option.bind
      (Json.member "stats" stats.P.r_payload)
      (Json.member "internal_errors")
  with
  | Some (Json.Num 0.0) -> ()
  | Some j -> Alcotest.failf "internal errors: %s" (Json.to_compact_string j)
  | None -> Alcotest.fail "stats must expose internal_errors"

(** The warm cache serves repeat compiles ([cached]:true) and the cached
    reply is byte-identical to the first, id aside. *)
let test_cache_reuse () =
  with_server "cache" @@ fun path _server ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let strip id_fields j =
    match j with
    | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> not (List.mem k id_fields)) fields)
    | j -> j
  in
  (* sequential round trips: pipelining both would race two workers into
     the same cold cache slot *)
  send_all fd (run_frame ~id:(Json.Num 1.0) (P.Workload "dotprod"));
  let first = parse_reply (List.hd (read_frames fd 1)) in
  send_all fd (run_frame ~id:(Json.Num 2.0) (P.Workload "dotprod"));
  let second = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check bool) "ids echo in order" true
    (first.P.r_id = Json.Num 1.0 && second.P.r_id = Json.Num 2.0);
  Alcotest.(check bool) "first ok" true first.P.r_ok;
  Alcotest.(check bool) "second ok" true second.P.r_ok;
  Alcotest.(check bool) "second served from cache" true
    (Json.member "cached" second.P.r_payload = Some (Json.Bool true));
  Alcotest.(check string) "cached reply byte-identical modulo id/cached"
    (Json.to_compact_string (strip [ "id"; "cached" ] first.P.r_payload))
    (Json.to_compact_string (strip [ "id"; "cached" ] second.P.r_payload))

(** The v2 [tune] op end to end: a small-budget tune over the socket
    returns a replayable spec plus the energy delta, echoes the request
    version, and versionless frames keep the v1 reply shape. *)
let test_tune_op () =
  with_server "tune" @@ fun path _server ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  send_all fd
    (P.frame_of_request
       {
         P.default_request with
         P.id = Json.Num 1.0;
         version = Some 2;
         op = P.Tune;
         src = P.Workload "fir";
         config = "baseline";
         budget = Some 10;
         seed = Some 1;
       });
  let r = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check bool) "tune ok" true r.P.r_ok;
  Alcotest.(check bool) "version echoed" true
    (Json.member "version" r.P.r_payload = Some (Json.Num 2.0));
  (match Json.member "spec" r.P.r_payload with
  | Some (Json.Str spec) -> (
    match Lowpower.Pipeline.parse spec with
    | Ok _ -> ()
    | Error d ->
      Alcotest.failf "returned spec must parse: %s" (Lp_util.Diag.to_string d))
  | _ -> Alcotest.fail "tune reply must carry a spec");
  (match
     ( Json.member "baseline_energy_nj" r.P.r_payload,
       Json.member "tuned_energy_nj" r.P.r_payload )
   with
  | Some (Json.Num b), Some (Json.Num t) ->
    Alcotest.(check bool) "tuned never worse than baseline" true (t <= b)
  | _ -> Alcotest.fail "tune reply must carry both energies");
  (* a v1 frame on the same connection still gets the v1 reply shape *)
  send_all fd
    (P.frame_of_request
       { P.default_request with P.id = Json.Num 2.0; op = P.Ping });
  let pong = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check bool) "v1 ping ok" true pong.P.r_ok;
  Alcotest.(check bool) "no version field in v1 reply" true
    (Json.member "version" pong.P.r_payload = None)

(** The v2 [profile] op end to end: the served artifact is byte-identical
    (once the ["profile"] member is re-serialised) to what the one-shot
    entry points produce, a repeat request reuses the warm compile cache
    without changing a byte, and the [stats] reply carries the per-op
    latency histogram. *)
let test_profile_op () =
  with_server "profile" @@ fun path _server ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let profile_frame id =
    P.frame_of_request
      {
        P.default_request with
        P.id;
        version = Some 2;
        op = P.Profile;
        src = P.Workload "fir";
      }
  in
  send_all fd (profile_frame (Json.Num 1.0));
  let first = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check bool) "profile ok" true first.P.r_ok;
  let artifact r =
    match Json.member "profile" r.P.r_payload with
    | Some j -> j
    | None -> Alcotest.fail "profile reply must embed the artifact"
  in
  let served = artifact first in
  Alcotest.(check bool) "schema tag" true
    (Json.member "schema" served = Some (Json.Str "lowpower-profile/1"));
  (* byte-identity against the one-shot path: same builder, same
     serialiser, so the strings must match exactly *)
  let w = Lp_workloads.Suite.find_exn "fir" in
  let machine = Lp_machine.Machine.generic ~n_cores:4 () in
  let sim_opts =
    { Lp_sim.Sim.default_options with Lp_sim.Sim.profile = true }
  in
  let expected =
    match
      Lowpower.Compile.run_result
        ~opts:(Lowpower.Compile.full ~n_cores:4)
        ~sim_opts ~machine w.Lp_workloads.Workload.source
    with
    | Ok (_, o) ->
      Json.to_string
        (Lowpower.Profile_report.to_json ~source:"fir"
           ~machine:machine.Lp_machine.Machine.name o)
    | Error d -> Alcotest.failf "one-shot run: %s" (Lp_util.Diag.to_string d)
  in
  Alcotest.(check string) "served artifact byte-identical to one-shot"
    expected (Json.to_string served);
  (* the repeat request hits the warm compile cache and re-simulates to
     the exact same bytes *)
  send_all fd (profile_frame (Json.Num 2.0));
  let second = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check bool) "second profile ok" true second.P.r_ok;
  Alcotest.(check bool) "second served from cache" true
    (Json.member "cached" second.P.r_payload = Some (Json.Bool true));
  Alcotest.(check string) "warm artifact byte-identical" expected
    (Json.to_string (artifact second));
  (* a v1 frame must not reach the op *)
  (match P.request_of_frame {|{"op":"profile","workload":"fir"}|} with
  | Ok _ -> Alcotest.fail "profile must require protocol v2"
  | Error d ->
    Alcotest.(check string) "v1 profile refused" "E_VERSION"
      d.Lp_util.Diag.code);
  (* stats surfaces the per-op latency histogram *)
  send_all fd
    (P.frame_of_request
       { P.default_request with P.id = Json.Num 3.0; op = P.Stats });
  let stats = parse_reply (List.hd (read_frames fd 1)) in
  Alcotest.(check bool) "stats ok" true stats.P.r_ok;
  match
    Option.bind
      (Json.member "stats" stats.P.r_payload)
      (fun s ->
        Option.bind (Json.member "latency_ms" s) (Json.member "profile"))
  with
  | Some h -> (
    match Json.member "count" h with
    | Some (Json.Num n) ->
      Alcotest.(check bool) "both profile requests measured" true (n >= 2.0);
      Alcotest.(check bool) "quantiles present" true
        (Json.member "p50_ms" h <> None
        && Json.member "p90_ms" h <> None
        && Json.member "p99_ms" h <> None)
    | _ -> Alcotest.fail "latency histogram must carry a count")
  | None -> Alcotest.fail "stats must carry latency_ms.profile"

(** The full load generator against an in-process server: mixed
    valid/malformed/deadline corpus, byte-identity verification on, and
    the CI acceptance gate must hold. *)
let test_serve_bench_acceptance () =
  with_server "bench" @@ fun path _server ->
  let cfg =
    {
      (SB.default_config ~socket_path:path) with
      SB.requests = 200;
      clients = 2;
      window = 6;
      verify = true;
    }
  in
  match SB.run cfg with
  | Error e -> Alcotest.failf "bench harness failed: %s" e
  | Ok s -> (
    (match SB.acceptance s with
    | Ok () -> ()
    | Error violations ->
      Alcotest.failf "acceptance gate: %s" (String.concat "; " violations));
    Alcotest.(check int) "all entries completed" 200 s.SB.completed;
    Alcotest.(check bool) "corpus exercised the decode path" true
      (s.SB.outcomes.SB.decode_err > 0);
    Alcotest.(check bool) "corpus exercised compile errors" true
      (s.SB.outcomes.SB.compile_err > 0);
    Alcotest.(check bool) "verification actually compared replies" true
      (s.SB.verify_checked > 0))

(** Stop with requests still in flight: drain answers them (or cancels
    cooperatively), the domains join, and the socket file is gone. *)
let test_graceful_drain () =
  let socket_path = tmp_socket "drain" in
  let opts =
    { (Server.default_opts ~socket_path) with Server.jobs = 1 }
  in
  let server = Server.start opts in
  let fd = connect socket_path in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  for i = 1 to 4 do
    send_all fd (run_frame ~id:(Json.Num (float_of_int i)) (P.Workload "fir"))
  done;
  Server.request_stop server;
  Alcotest.(check bool) "stop requested" true (Server.stopping server);
  Server.stop server;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path);
  (* stopping twice is harmless *)
  Server.stop server

let suite =
  [
    Alcotest.test_case "bounded queue: FIFO, backpressure, close" `Quick
      test_bqueue;
    Alcotest.test_case "protocol round-trips every field" `Quick
      test_protocol_round_trip;
    Alcotest.test_case "malformed frames decode to E_DECODE" `Quick
      test_protocol_decode_errors;
    Alcotest.test_case "version negotiation and E_VERSION" `Quick
      test_protocol_versioning;
    Alcotest.test_case "tune op over the socket (v2)" `Quick test_tune_op;
    Alcotest.test_case "profile op over the socket (v2)" `Quick
      test_profile_op;
    Alcotest.test_case "deadline expires as E_DEADLINE" `Quick
      test_deadline_expiry;
    Alcotest.test_case "overload sheds transiently, answers everything"
      `Quick test_overload_sheds;
    Alcotest.test_case "per-request crash isolation" `Quick
      test_crash_isolation;
    Alcotest.test_case "warm cache byte-identity" `Quick test_cache_reuse;
    Alcotest.test_case "serve-bench acceptance gate end to end" `Slow
      test_serve_bench_acceptance;
    Alcotest.test_case "graceful drain on stop" `Quick test_graceful_drain;
  ]
