(** Heterogeneous machine model: zoo registry and validation, per-class
    compiler decisions (DVFS on big vs LITTLE), heterogeneous simulation
    invariants, and byte-determinism of the design-space sweep. *)

module Machine = Lp_machine.Machine
module Power_model = Lp_power.Power_model
module Operating_point = Lp_power.Operating_point
module Component = Lp_power.Component
module Ledger = Lp_power.Energy_ledger
module Compile = Lowpower.Compile
module Sim = Lp_sim.Sim
module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Dvfs = Lp_transforms.Dvfs
module Sweep = Lp_experiments.Sweep

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------------- registry ---------------- *)

let test_registry () =
  check Alcotest.int "zoo size" 5 (List.length Machine.registry);
  List.iter
    (fun name ->
      match Machine.of_name name with
      | Some m -> ignore (Machine.validate m)
      | None -> fail (Printf.sprintf "zoo member %s not resolvable" name))
    Machine.names;
  (* the alias and the unknown-name contract *)
  (match Machine.of_name "octa" with
  | Some m -> check Alcotest.string "octa alias" "octa-leaky-8c" m.Machine.name
  | None -> fail "octa alias not resolved");
  check Alcotest.bool "unknown is None" true
    (Machine.of_name "z80-cluster" = None);
  (* the cores hint scales only the generic machine *)
  (match Machine.of_name ~cores:8 "generic" with
  | Some m -> check Alcotest.int "generic scales" 8 (Machine.n_cores m)
  | None -> fail "generic not resolvable");
  match Machine.of_name ~cores:64 "pacduo" with
  | Some m -> check Alcotest.int "pacduo fixed" 2 (Machine.n_cores m)
  | None -> fail "pacduo not resolvable"

let test_clamp_cores () =
  let m = Machine.generic ~n_cores:4 () in
  check Alcotest.int "within" 3 (Machine.clamp_cores ~warn:false m 3);
  check Alcotest.int "exact" 4 (Machine.clamp_cores ~warn:false m 4);
  check Alcotest.int "clamped" 4 (Machine.clamp_cores ~warn:false m 9)

(* ---------------- validation ---------------- *)

let test_validate_rejections () =
  let base = Machine.generic ~n_cores:4 () in
  let some_class = base.Machine.classes.(0) in
  Alcotest.check_raises "empty class"
    (Invalid_argument "Machine: class void is empty") (fun () ->
      ignore
        (Machine.validate
           {
             base with
             classes =
               [| some_class;
                  { some_class with Machine.cc_name = "void"; cc_count = 0 } |];
           }));
  Alcotest.check_raises "no classes" (Invalid_argument "Machine: no core classes")
    (fun () -> ignore (Machine.validate { base with Machine.classes = [||] }));
  Alcotest.check_raises "no ALU" (Invalid_argument "Machine: cores must have an ALU")
    (fun () ->
      ignore
        (Machine.validate
           { base with Machine.components = [ Component.Multiplier ] }));
  (* duplicate ladder levels make a raw [dvfs l] ambiguous *)
  let pm = Power_model.default () in
  let dup =
    Power_model.with_points pm
      (let ps = Power_model.points pm in
       ps @ [ { (List.hd ps) with Operating_point.level = 0 } ])
  in
  Alcotest.check_raises "overlapping ladder"
    (Invalid_argument "Machine: class core ladder has overlapping level 0")
    (fun () ->
      ignore
        (Machine.validate
           {
             base with
             Machine.classes =
               [| { some_class with Machine.cc_power = dup } |];
           }));
  Alcotest.check_raises "bad perf scale"
    (Invalid_argument "Machine: class core has perf scale 0") (fun () ->
      ignore
        (Machine.validate
           {
             base with
             Machine.classes =
               [| { some_class with Machine.cc_perf_scale = 0.0 } |];
           }))

(* ---------------- per-class DVFS (the big.LITTLE golden) ---------------- *)

(* A memory-bound loop long enough to amortise the transition, with mu
   (~0.87) inside the window where the big 4-point ladder rejects its
   L1 (2x frequency ratio) but the little 3-point ladder accepts its L1
   (1.6x).  Both arrays are read AND written so their accesses stay in
   shared memory instead of being promoted to ROM by the estimator. *)
let membound_src =
  "int a[64];\nint b[64];\n\
   int main() {\n\
  \  for (int j = 0; j < 64; j = j + 1) {\n\
  \    int t = a[j] + b[j];\n\
  \    a[j] = t;\n\
  \    b[j] = t + 1;\n\
  \  }\n\
  \  return a[63] + b[63];\n\
   }"

(** Levels of every [dvfs] instruction the pass inserted into [main]
    when the function is attributed to core classes [classes]. *)
let dvfs_levels_for classes =
  let m = Machine.biglittle () in
  let (c, _) = Compile.run ~opts:Compile.baseline ~machine:m membound_src in
  let prog = c.Compile.prog in
  let comm = Dvfs.comm_closure prog in
  let f =
    match Prog.find_func prog "main" with
    | Some f -> f
    | None -> fail "no main"
  in
  let changes = Dvfs.run_func ~classes m prog comm f in
  check Alcotest.bool "pass fired" true (changes > 0);
  Prog.fold_instrs f
    (fun acc _ i ->
      match i.Ir.idesc with Ir.Dvfs l -> acc @ [ l ] | _ -> acc)
    []

let test_biglittle_dvfs_differs () =
  let m = Machine.biglittle () in
  let big = Machine.power_of_core m 0 in
  let little = Machine.power_of_core m 4 in
  check Alcotest.bool "distinct ladders" false
    (Power_model.same_ladder big little);
  (* pinned unit choice at the golden mu: big scales to L2 of 4 points,
     little to L1 of 3 points *)
  let mu = 0.87 and max_slowdown = 0.10 in
  check Alcotest.(option int) "big level" (Some 2)
    (Dvfs.choose_level big ~mu ~max_slowdown);
  check Alcotest.(option int) "little level" (Some 1)
    (Dvfs.choose_level little ~mu ~max_slowdown);
  (* the pass end-to-end: same region, different class, different level.
     [2; 3] = scale to L2, restore nominal L3 on the exit landing;
     [1; 2] = the little equivalents. *)
  check Alcotest.(list int) "big insertion" [ 2; 3 ] (dvfs_levels_for [ 0 ]);
  check Alcotest.(list int) "little insertion" [ 1; 2 ] (dvfs_levels_for [ 1 ])

let test_incompatible_classes_skip () =
  (* a function reachable from both classes must not get a raw level *)
  let m = Machine.biglittle () in
  let (c, _) = Compile.run ~opts:Compile.baseline ~machine:m membound_src in
  let prog = c.Compile.prog in
  let comm = Dvfs.comm_closure prog in
  let f = Option.get (Prog.find_func prog "main") in
  let changes = Dvfs.run_func ~classes:[ 0; 1 ] m prog comm f in
  check Alcotest.int "skipped" 0 changes

(* ---------------- heterogeneous simulation ---------------- *)

let par_src =
  "int data[256];\n\
   int main() {\n\
  \  int s = 0;\n\
  \  #pragma lp pattern(doall)\n\
  \  for (int i = 0; i < 256; i = i + 1) { data[i] = data[i] * 3; }\n\
  \  for (int i = 0; i < 256; i = i + 1) { s = s + data[i]; }\n\
  \  return s;\n\
   }"

let test_biglittle_sim_runs () =
  let m = Machine.biglittle () in
  let (_, seq) = Compile.run ~opts:Compile.baseline ~machine:m par_src in
  let (_, par) =
    Compile.run ~opts:(Compile.par_only ~n_cores:8) ~machine:m par_src
  in
  (match (seq.Sim.ret, par.Sim.ret) with
  | (Some a, Some b) when Lp_sim.Value.equal a b -> ()
  | _ -> fail "results differ on big.LITTLE");
  (* the per-class ledger breakdown covers both classes and sums to the
     whole-machine ledger *)
  let names = List.map fst par.Sim.class_energy in
  check Alcotest.(list string) "classes" [ "big"; "little" ] names;
  let by_class =
    List.fold_left
      (fun acc (_, l) -> acc +. Ledger.total l)
      0.0 par.Sim.class_energy
  in
  check (Alcotest.float 1e-6) "class split sums to total"
    (Ledger.total par.Sim.energy) by_class

let test_farmem_far_tier_charged () =
  (* only arrays of >= 1024 words spill to the far tier, so use a big one *)
  let src =
    "int data[1200];\n\
     int main() {\n\
    \  int s = 0;\n\
    \  for (int i = 0; i < 1200; i = i + 1) { s = s + data[i]; }\n\
    \  return s;\n\
     }"
  in
  let run m =
    let (_, o) = Compile.run ~opts:Compile.baseline ~machine:m src in
    o
  in
  let near = run (Machine.generic ~n_cores:4 ()) in
  let far = run (Machine.farmem ()) in
  (match (near.Sim.ret, far.Sim.ret) with
  | (Some a, Some b) when Lp_sim.Value.equal a b -> ()
  | _ -> fail "results differ across memory tiers");
  (* the far tier costs real time and real communication energy *)
  check Alcotest.bool "far is slower" true
    (far.Sim.duration_ns > near.Sim.duration_ns);
  check Alcotest.bool "far access energy charged" true
    (Ledger.of_category far.Sim.energy Ledger.Communication
    > Ledger.of_category near.Sim.energy Ledger.Communication)

(* ---------------- sweep determinism ---------------- *)

(* Byte-determinism of the sweep artifact across pool sizes: the matrix
   fans out differently under 1 and 4 domains, the rendered JSON must
   not.  The cache is cleared between runs so the second run really
   recomputes. *)
let prop_sweep_bytes_pool_independent =
  QCheck.Test.make ~count:3 ~name:"sweep JSON independent of --jobs"
    QCheck.(pair (int_range 0 4) (int_range 0 20))
    (fun (mi, wi) ->
      let machines =
        [ List.nth Sweep.default_machines mi; "generic" ]
        |> List.sort_uniq compare
      in
      let workloads =
        [ List.nth Lp_workloads.Suite.names wi; "fir" ]
        |> List.sort_uniq compare
      in
      let sweep_with jobs =
        Lp_experiments.Exp_common.clear_cache ();
        let pool = Lp_util.Domain_pool.create ~jobs () in
        Fun.protect
          ~finally:(fun () -> Lp_util.Domain_pool.shutdown pool)
          (fun () ->
            Sweep.to_json (Sweep.run ~pool ~machines ~workloads ()))
      in
      let a = sweep_with 1 in
      let b = sweep_with 4 in
      Lp_experiments.Exp_common.clear_cache ();
      String.equal a b)

let suite =
  [
    Alcotest.test_case "zoo registry and of_name" `Quick test_registry;
    Alcotest.test_case "clamp_cores" `Quick test_clamp_cores;
    Alcotest.test_case "validate rejections" `Quick test_validate_rejections;
    Alcotest.test_case "big.LITTLE dvfs levels differ" `Quick
      test_biglittle_dvfs_differs;
    Alcotest.test_case "incompatible classes skip dvfs" `Quick
      test_incompatible_classes_skip;
    Alcotest.test_case "big.LITTLE simulation + class ledger" `Quick
      test_biglittle_sim_runs;
    Alcotest.test_case "far tier charged on farmem" `Quick
      test_farmem_far_tier_charged;
    QCheck_alcotest.to_alcotest prop_sweep_bytes_pool_independent;
  ]
