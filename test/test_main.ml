let () =
  Alcotest.run "lowpower"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("report", Test_report.suite);
      ("lang", Test_lang.suite);
      ("ir", Test_ir.suite);
      ("analysis", Test_analysis.suite);
      ("transforms", Test_transforms.suite);
      ("pipeline", Test_pipeline.suite);
      ("sim", Test_sim.suite);
      ("patterns", Test_patterns.suite);
      ("power", Test_power.suite);
      ("parallel", Test_parallel.suite);
      ("parallel-harness", Test_parallel_harness.suite);
      ("experiments", Test_experiments.suite);
      ("sched", Test_sched.suite);
      ("properties", Test_props.suite);
      ("workloads-e2e", Test_workloads.suite);
      ("robustness", Test_robustness.suite);
      ("serve", Test_serve.suite);
      ("predecode", Test_predecode.suite);
      ("tune", Test_tune.suite);
      ("profile", Test_profile.suite);
      ("machines", Test_machines.suite);
    ]
