(** The predecode equivalence contract: the closure-compiled stepper
    and the interpretive reference must be {e bit-identical} on every
    observable — cycles, the full energy ledger, per-core instruction
    counts, final shared memory, the return value — not merely "close".
    The property below throws randomly generated parallel programs at
    both modes; the unit tests pin the new outcome counters and the
    [BENCH_sim.json] schema. *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Value = Lp_sim.Value
module Ledger = Lp_power.Energy_ledger
module Gen = Lp_robust.Gen
module Simbench = Lp_experiments.Simbench
module J = Lp_util.Json

let machine4 = Machine.generic ~n_cores:4 ()

let run_mode prog ~predecode =
  Sim.run ~opts:{ Sim.default_options with Sim.predecode } ~machine:machine4
    prog

let run_both source =
  let compiled =
    Compile.compile ~opts:(Compile.full ~n_cores:4) ~machine:machine4 source
  in
  ( run_mode compiled.Compile.prog ~predecode:true,
    run_mode compiled.Compile.prog ~predecode:false )

(* Float comparisons below are deliberately [=]: the contract is exact
   agreement (same operations in the same order), not tolerance. None
   of the compared quantities can be NaN. *)

let ledger_equal a b =
  Ledger.total a = Ledger.total b
  && List.for_all
       (fun c -> Ledger.of_category a c = Ledger.of_category b c)
       Ledger.all_categories

let shared_equal globals a b =
  List.for_all
    (fun g ->
      match (Sim.shared_array a g, Sim.shared_array b g) with
      | (Some xa, Some xb) ->
        Array.length xa = Array.length xb && Array.for_all2 Value.equal xa xb
      | (None, None) -> true
      | _ -> false)
    globals

let outcomes_identical ~globals (on : Sim.outcome) (off : Sim.outcome) =
  on.Sim.instr_total = off.Sim.instr_total
  && on.Sim.steps = off.Sim.steps
  && on.Sim.duration_ns = off.Sim.duration_ns
  && on.Sim.cycles_per_core = off.Sim.cycles_per_core
  && on.Sim.instrs_per_core = off.Sim.instrs_per_core
  && on.Sim.bus_txns_per_core = off.Sim.bus_txns_per_core
  && on.Sim.bus_words_per_core = off.Sim.bus_words_per_core
  && on.Sim.channel_msgs = off.Sim.channel_msgs
  && ledger_equal on.Sim.energy off.Sim.energy
  && Array.for_all2 ledger_equal on.Sim.core_ledgers off.Sim.core_ledgers
  && (match (on.Sim.ret, off.Sim.ret) with
     | (Some x, Some y) -> Value.equal x y
     | (None, None) -> true
     | _ -> false)
  && shared_equal globals on off

(* ---------------- the equivalence property ---------------- *)

let prop_modes_identical =
  QCheck.Test.make ~count:40
    ~name:"compiled and interpretive modes are bit-identical"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let g = Gen.generate ~seed in
      let (on, off) = run_both g.Gen.source in
      outcomes_identical ~globals:g.Gen.check_globals on off)

(* ---------------- outcome counters ---------------- *)

(** Both modes decode at construction (decode is shared bookkeeping),
    and the compiled mode's lazy leakage refresh never recomputes more
    often than the reference's eager one. *)
let test_counters () =
  let w = Lp_workloads.Suite.find_exn "fir" in
  let (on, off) = run_both w.Lp_workloads.Workload.source in
  Alcotest.(check bool) "blocks decoded" true (on.Sim.decoded_blocks > 0);
  Alcotest.(check int) "same decode both modes" on.Sim.decoded_blocks
    off.Sim.decoded_blocks;
  Alcotest.(check bool) "predecode flag on" true on.Sim.predecode;
  Alcotest.(check bool) "predecode flag off" false off.Sim.predecode;
  Alcotest.(check bool) "lazy leak recompute is no more eager" true
    (on.Sim.leak_recomputes <= off.Sim.leak_recomputes)

(* ---------------- BENCH_sim.json schema ---------------- *)

let stats runs ips cps =
  {
    Simbench.runs;
    wall_s = float_of_int runs /. cps;
    instrs_per_sec = ips;
    cells_per_sec = cps;
  }

let bench_fixture =
  {
    Simbench.sb_machine = "generic4";
    sb_config = "full";
    sb_rows =
      [
        {
          Simbench.sb_workload = "fir";
          sb_instrs = 123_456;
          sb_on = stats 40 4.0e7 160.0;
          sb_off = stats 8 8.0e6 32.0;
          sb_speedup = 5.0;
        };
      ];
    sb_total_on = 4.0e7;
    sb_total_off = 8.0e6;
    sb_total_speedup = 5.0;
  }

(** The schema survives a full [to_json] → print → parse → [of_json]
    round trip, so the committed artifact stays machine-readable. *)
let test_schema_round_trip () =
  let j = Simbench.to_json bench_fixture in
  (match J.member "schema" j with
  | Some (J.Str s) ->
    Alcotest.(check string) "schema tag" Simbench.schema s
  | _ -> Alcotest.fail "schema tag missing");
  match Simbench.of_json (J.of_string (J.to_string j)) with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok t ->
    Alcotest.(check bool) "round trip" true (t = bench_fixture)

(** Field renames must fail loudly, not decode to garbage. *)
let test_schema_rejects () =
  (match Simbench.of_json (J.Obj [ ("schema", J.Str "bogus/9") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown schema accepted");
  let j = Simbench.to_json bench_fixture in
  let dropped =
    match j with
    | J.Obj fields ->
      J.Obj (List.filter (fun (k, _) -> k <> "workloads") fields)
    | _ -> assert false
  in
  match Simbench.of_json dropped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing field accepted"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_modes_identical;
    Alcotest.test_case "outcome counters" `Quick test_counters;
    Alcotest.test_case "BENCH_sim.json round trip" `Quick
      test_schema_round_trip;
    Alcotest.test_case "BENCH_sim.json rejects bad input" `Quick
      test_schema_rejects;
  ]
