(** lpcc — the low-power pattern compiler driver.

    Subcommands:
    - [detect]    print the pattern detection report for a source file
    - [run]       compile and simulate under a chosen configuration
    - [explain]   print the power-decision audit of a compile+run
    - [dump]      print the compiled IR
    - [workloads] list the bundled benchmark programs
    - [machines]  list the machine zoo (classes, ladders, memory tiers)
    - [pipeline]  print the optimisation schedule as data
    - [bench]     regenerate the evaluation tables/figures
    - [sweep]     workload x config x machine-zoo design-space sweep
    - [profile]   source-level energy profile (text, JSON, flamegraph, diff)
    - [fuzz]      fuzz the pipeline with generated MiniC programs

    Sources are MiniC files; [--workload NAME] substitutes a bundled
    benchmark for a file. *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Pattern = Lp_patterns.Pattern
module W = Lp_workloads.Workload
module Diag = Lp_util.Diag
module Fault = Lp_util.Fault
module Runtime_config = Lp_util.Runtime_config
module Obs = Lp_obs.Obs
module Report = Lp_obs.Report
open Cmdliner

(* ---------------- shared arguments ---------------- *)

(** Route every pipeline failure through the structured diagnostic
    printer: no subcommand leaks a raw exception for an error the
    pipeline owns, and even a foreign exception exits cleanly. *)
let with_diagnostics f =
  try f () with
  | e -> (
    match Compile.diag_of_exn e with
    | Some d -> `Error (false, Diag.to_string d)
    | None -> `Error (false, "internal error: " ^ Printexc.to_string e))

(** Resolve the runtime configuration (flag > environment > default),
    apply it (pool size, fault plan), install the driver context, and run
    the subcommand body with it.  When the configuration asks for a
    trace or an audit report, the Chrome JSON / report JSON are written
    after the body returns — success or failure, so a diagnosed run
    still leaves its profile and audit behind. *)
let with_ctx ?jobs ?retries ?faults ?trace ?report ?no_analysis_cache
    ?no_sim_predecode ?deadline_ms f =
  let config =
    Runtime_config.resolve ?jobs ?retries ?faults ?trace ?report
      ?no_analysis_cache ?no_sim_predecode ?deadline_ms
      (Runtime_config.from_env ())
  in
  Option.iter Lp_util.Domain_pool.set_default_jobs
    config.Runtime_config.jobs;
  match
    match config.Runtime_config.faults with
    | None -> Ok ()
    | Some spec -> Fault.configure spec
  with
  | Error msg -> `Error (false, "invalid fault spec: " ^ msg)
  | Ok () ->
    let obs =
      match config.Runtime_config.trace with
      | Some _ -> Obs.create ()
      | None -> Obs.disabled
    in
    let rep =
      match config.Runtime_config.report with
      | Some _ -> Report.create ()
      | None -> Report.disabled
    in
    (* the deadline clock starts here: one CLI invocation = one request *)
    let deadline =
      match config.Runtime_config.deadline_ms with
      | Some ms -> Lp_util.Deadline.after_ms ms
      | None -> Lp_util.Deadline.none
    in
    let ctx = Compile.make_ctx ~obs ~report:rep ~config ~deadline () in
    Lp_experiments.Exp_common.set_ctx ctx;
    let finish () =
      (match config.Runtime_config.trace with
      | Some path when Obs.enabled obs ->
        Obs.write_chrome obs ~path;
        Printf.eprintf "%s\ntrace written to %s\n%!" (Obs.summary obs) path
      | _ -> ());
      match config.Runtime_config.report with
      | Some path when Report.enabled rep ->
        Report.write rep ~path;
        Printf.eprintf "power report written to %s\n%!" path
      | _ -> ()
    in
    Fun.protect ~finally:finish (fun () -> f ctx)

let faults_arg =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Inject deterministic faults (see docs/ROBUSTNESS.md for \
                 the grammar, e.g. $(b,seed=7,post-pass\\@fir*1)).  The \
                 $(b,LP_FAULTS) environment variable is the equivalent.")

let trace_file_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON profile of this invocation \
                 to $(docv) (open in chrome://tracing or Perfetto) and print \
                 a span/counter summary to stderr.  The $(b,LP_TRACE) \
                 environment variable is the equivalent.")

let report_file_arg =
  Arg.(value & opt (some string) None
       & info [ "report" ] ~docv:"FILE"
           ~doc:"Write the power-decision audit report (JSON, schema in \
                 docs/OBSERVABILITY.md) to $(docv): pattern verdicts, \
                 gating and DVFS decisions, Sink-N-Hoist merges, per-pass \
                 IR deltas, and the full per-core energy-ledger breakdown \
                 of every simulation.  The $(b,LP_REPORT) environment \
                 variable is the equivalent.")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-analysis-cache" ]
           ~doc:"Make the analysis manager recompute every query instead of \
                 serving cached results.  Output must be byte-identical with \
                 and without this flag; it exists to prove that and to debug \
                 suspected stale-analysis miscompiles.  The \
                 $(b,LP_NO_ANALYSIS_CACHE) environment variable is the \
                 equivalent.")

let no_predecode_arg =
  Arg.(value & flag
       & info [ "no-sim-predecode" ]
           ~doc:"Run the simulator's interpretive reference stepper instead \
                 of the closure-compiled one.  Simulated cycles, energy and \
                 traces must be byte-identical with and without this flag; \
                 it exists to prove that and to bisect suspected predecode \
                 bugs.  The $(b,LP_NO_SIM_PREDECODE) environment variable \
                 is the equivalent.")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source_of ~file ~workload =
  match (file, workload) with
  | (Some f, None) -> Ok (read_file f, Filename.basename f)
  | (None, Some name) -> (
    match Lp_workloads.Suite.find name with
    | Some w -> Ok (w.W.source, name)
    | None ->
      Error
        (Printf.sprintf "unknown workload %S (try: lpcc workloads)" name))
  | (None, None) -> Error "give a source file or --workload NAME"
  | (Some _, Some _) -> Error "give either a file or --workload, not both"

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file.")

let workload_arg =
  Arg.(value & opt (some string) None
       & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Use a bundled workload instead of a file.")

(* every zoo machine is a valid --machine value: the registry is the one
   source of truth shared with lpccd and the experiment matrix *)
let machine_arg =
  let parse s =
    if Option.is_some (Machine.of_name s) then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown machine %S (known: %s)" s
             (String.concat ", " Machine.names)))
  in
  let conv_machine = Arg.conv (parse, Format.pp_print_string) in
  Arg.(value & opt conv_machine "generic"
       & info [ "m"; "machine" ] ~docv:"MACHINE"
           ~doc:(Printf.sprintf
                   "Machine model: %s (see $(b,lpcc machines))."
                   (String.concat ", "
                      (List.map (Printf.sprintf "$(b,%s)") Machine.names))))

let cores_arg =
  Arg.(value & opt int 4
       & info [ "c"; "cores" ] ~docv:"N" ~doc:"Cores the compiler may use.")

let events_arg =
  Arg.(value & opt int 0
       & info [ "t"; "events" ] ~docv:"N"
           ~doc:"Print the first $(docv) power/communication events.")

let config_arg =
  let conv_config = Arg.enum
      [ ("baseline", `Baseline); ("pg", `Pg); ("dvfs", `Dvfs);
        ("pg+dvfs", `PgDvfs); ("par", `Par); ("full", `Full) ]
  in
  Arg.(value & opt conv_config `Full
       & info [ "k"; "config" ] ~docv:"CONFIG"
           ~doc:"Compiler configuration: $(b,baseline), $(b,pg), $(b,dvfs), \
                 $(b,pg+dvfs), $(b,par) or $(b,full).")

let machine_of ~cores name =
  match Machine.of_name ~cores name with
  | Some m -> m
  | None -> assert false (* machine_arg already validated the name *)

let opts_of ~cores = function
  | `Baseline -> Compile.baseline
  | `Pg -> Compile.pg_only
  | `Dvfs -> Compile.dvfs_only
  | `PgDvfs -> Compile.pg_dvfs
  | `Par -> Compile.par_only ~n_cores:cores
  | `Full -> Compile.full ~n_cores:cores

(* ---------------- detect ---------------- *)

let detect_cmd_run file workload =
  match source_of ~file ~workload with
  | Error e -> `Error (false, e)
  | Ok (src, name) ->
    with_diagnostics @@ fun () ->
      let ast = Compile.parse_and_check_exn src in
      let report = Lp_patterns.Detect.detect ast in
      Printf.printf "%s: %d candidate loops\n" name report.Pattern.candidate_loops;
      List.iter
        (fun (i : Pattern.instance) ->
          Printf.printf "  [%d] %s in %s (%s)%s\n" i.Pattern.id
            (Pattern.kind_name i.Pattern.kind)
            i.Pattern.in_func
            (match i.Pattern.origin with
            | Pattern.Annotated -> "annotated, verified"
            | Pattern.Inferred -> "inferred")
            (match i.Pattern.invariants with
            | [] -> ""
            | invs ->
              Printf.sprintf ", invariants: %s"
                (String.concat "," (List.map fst invs))))
        report.Pattern.instances;
      List.iter
        (fun (r : Pattern.rejection) ->
          Printf.printf "  rejected in %s%s: %s\n" r.Pattern.rej_func
            (match r.Pattern.rej_requested with
            | Some k -> Printf.sprintf " (requested %s)" k
            | None -> "")
            r.Pattern.rej_reason)
        report.Pattern.rejections;
      `Ok ()

let detect_cmd =
  let doc = "detect design patterns in a MiniC program" in
  Cmd.v (Cmd.info "detect" ~doc)
    Term.(ret (const detect_cmd_run $ file_arg $ workload_arg))

(* ---------------- run ---------------- *)

let run_cmd_run file workload machine_kind cores config events faults trace
    report no_analysis_cache no_sim_predecode passes deadline_ms =
  match source_of ~file ~workload with
  | Error e -> `Error (false, e)
  | Ok (src, name) -> (
    let pipeline =
      match passes with
      | None -> Ok None
      | Some spec ->
        Result.map Option.some (Lowpower.Pipeline.resolve_spec spec)
    in
    match pipeline with
    | Error d -> `Error (false, Lp_util.Diag.to_string d)
    | Ok pipeline ->
    with_ctx ?faults ?trace ?report ~no_analysis_cache ~no_sim_predecode
      ?deadline_ms
    @@ fun ctx ->
    with_diagnostics @@ fun () ->
    Fault.with_scope name @@ fun () ->
    Report.with_scope name @@ fun () ->
      let machine = machine_of ~cores machine_kind in
      let cores = Machine.clamp_cores machine cores in
      let opts = opts_of ~cores config in
      let opts = Compile.Options.update ?pipeline opts in
      let sim_opts =
        { Sim.default_options with Sim.trace_limit = max 0 events }
      in
      let (compiled, o) =
        match Compile.run_result ~ctx ~opts ~sim_opts ~machine src with
        | Ok r -> r
        | Error d -> raise (Diag.Error d)
      in
      Printf.printf "%s on %s\n" name machine.Machine.name;
      Printf.printf "  patterns: %s\n"
        (match compiled.Compile.detection.Pattern.instances with
        | [] -> "(none)"
        | l ->
          String.concat ", "
            (List.map (fun (i : Pattern.instance) ->
                 Pattern.kind_name i.Pattern.kind) l));
      Printf.printf "  cores used: %d\n"
        (List.length (Lp_ir.Prog.entries compiled.Compile.prog));
      (match o.Sim.ret with
      | Some v -> Printf.printf "  result: %s\n" (Lp_sim.Value.to_string v)
      | None -> ());
      Printf.printf "  time:   %.1f us\n" (o.Sim.duration_ns /. 1e3);
      Printf.printf "  energy: %.1f uJ\n" (Ledger.total o.Sim.energy /. 1e3);
      List.iter
        (fun (cat, e) ->
          if e > 0.0 then
            Printf.printf "    %-12s %8.1f uJ\n"
              (Ledger.category_to_string cat)
              (e /. 1e3))
        (Ledger.breakdown o.Sim.energy);
      Printf.printf "  EDP: %.1f nJ*ms; %d instructions; %d msgs; %d gate transitions; %d dvfs switches\n"
        (Sim.edp o) o.Sim.instr_total o.Sim.channel_msgs o.Sim.gate_transitions
        o.Sim.dvfs_transitions;
      if o.Sim.implicit_wakeups > 0 then
        Printf.printf "  WARNING: %d implicit wakeups (compiler bug!)\n"
          o.Sim.implicit_wakeups;
      if events > 0 then begin
        Printf.printf "  first %d power/communication events:\n"
          (List.length o.Sim.events);
        List.iter
          (fun (e : Sim.event) ->
            Printf.printf "    %10.1fns core%d %s\n" e.Sim.ev_ns e.Sim.ev_core
              e.Sim.ev_what)
          o.Sim.events
      end;
      `Ok ())

let passes_arg =
  Arg.(value & opt (some string) None
       & info [ "passes" ] ~docv:"SPEC"
           ~doc:"Override the classic-optimisation schedule: comma-separated \
                 pass names, with $(b,fix(name,...)) running a group to \
                 fixpoint — e.g. \
                 $(b,--passes constprop,fix(simplify-cfg,dce),strength-reduce). \
                 $(b,lpcc pipeline) lists the vocabulary and the default \
                 schedule.")

let deadline_arg =
  Arg.(value & opt (some int) None
       & info [ "deadline-ms" ] ~docv:"N"
           ~doc:"Cooperative wall-clock deadline for this invocation in \
                 milliseconds.  The pipeline and simulator check it at \
                 phase, pass and scheduling boundaries; exceeding it \
                 reports the stable $(b,E_DEADLINE) diagnostic instead of \
                 running forever.  The $(b,LP_DEADLINE_MS) environment \
                 variable is the equivalent.")

let run_cmd =
  let doc = "compile and simulate a MiniC program" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(ret (const run_cmd_run $ file_arg $ workload_arg $ machine_arg
               $ cores_arg $ config_arg $ events_arg $ faults_arg
               $ trace_file_arg $ report_file_arg $ no_cache_arg
               $ no_predecode_arg $ passes_arg $ deadline_arg))

(* ---------------- explain ---------------- *)

let explain_cmd_run file workload machine_kind cores config no_sim_predecode =
  match source_of ~file ~workload with
  | Error e -> `Error (false, e)
  | Ok (src, name) ->
    (* a fresh always-on report, independent of LP_REPORT: explain IS the
       report, printed human-readably instead of exported *)
    let rep = Report.create () in
    let rc =
      Runtime_config.resolve ~no_sim_predecode (Runtime_config.from_env ())
    in
    let ctx = Compile.make_ctx ~report:rep ~config:rc () in
    with_diagnostics @@ fun () ->
    Fault.with_scope name @@ fun () ->
    Report.with_scope name @@ fun () ->
      let machine = machine_of ~cores machine_kind in
      let cores = Machine.clamp_cores machine cores in
      let opts = opts_of ~cores config in
      (match Compile.run_result ~ctx ~opts ~machine src with
      | Ok _ -> ()
      | Error d -> raise (Diag.Error d));
      print_string (Report.to_text rep);
      `Ok ()

let explain_cmd =
  let doc =
    "compile and simulate, then print the power-decision audit: every \
     pattern verdict, gating insertion, Sink-N-Hoist merge, DVFS \
     operating-point choice and IR-changing pass, plus the energy \
     breakdown of the simulation"
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(ret (const explain_cmd_run $ file_arg $ workload_arg $ machine_arg
               $ cores_arg $ config_arg $ no_predecode_arg))

(* ---------------- dump ---------------- *)

let source_flag =
  Arg.(value & flag
       & info [ "s"; "source" ]
           ~doc:"Print the transformed MiniC source (after pattern-driven \
                 parallelisation) instead of the IR.")

let dump_cmd_run file workload machine_kind cores config as_source =
  match source_of ~file ~workload with
  | Error e -> `Error (false, e)
  | Ok (src, _) ->
    with_ctx @@ fun ctx ->
    with_diagnostics @@ fun () ->
      let machine = machine_of ~cores machine_kind in
      let cores = Machine.clamp_cores machine cores in
      if as_source then begin
        let ast = Compile.parse_and_check_exn src in
        let det = Lp_patterns.Detect.detect ast in
        let (gen, _) =
          Lp_transforms.Parallelize.run ~n_cores:cores ast
            (Compile.feasible_instances ~n_cores:cores
               det.Lp_patterns.Pattern.instances)
        in
        print_string (Lp_lang.Ast_printer.program_to_string gen)
      end
      else begin
        let compiled =
          match
            Compile.compile_result ~ctx ~opts:(opts_of ~cores config) ~machine
              src
          with
          | Ok c -> c
          | Error d -> raise (Diag.Error d)
        in
        print_string (Lp_ir.Printer.prog_to_string compiled.Compile.prog)
      end;
      `Ok ()

let dump_cmd =
  let doc = "print the compiled IR (or, with --source, the parallelised MiniC)" in
  Cmd.v (Cmd.info "dump" ~doc)
    Term.(ret (const dump_cmd_run $ file_arg $ workload_arg $ machine_arg
               $ cores_arg $ config_arg $ source_flag))

(* ---------------- workloads ---------------- *)

let workloads_cmd_run () =
  List.iter
    (fun (w : W.t) ->
      Printf.printf "%-14s %-14s %s\n" w.W.name w.W.expected_pattern
        w.W.description)
    Lp_workloads.Suite.all;
  `Ok ()

let workloads_cmd =
  let doc = "list the bundled benchmark workloads" in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(ret (const workloads_cmd_run $ const ()))

(* ---------------- machines ---------------- *)

let machines_cmd_run () =
  List.iteri
    (fun i (name, desc, mk) ->
      if i > 0 then print_newline ();
      Printf.printf "%s — %s\n" name desc;
      Format.printf "%a@." Machine.pp (mk ?cores:None ()))
    Machine.registry;
  `Ok ()

let machines_cmd =
  let doc =
    "list the machine zoo: core classes, DVFS ladders, memory tiers and \
     bus of every valid $(b,--machine) value"
  in
  Cmd.v (Cmd.info "machines" ~doc)
    Term.(ret (const machines_cmd_run $ const ()))

(* ---------------- sweep ---------------- *)

let sweep_cmd_run machines workloads json jobs retries faults trace report
    no_analysis_cache no_sim_predecode =
  let module Sweep = Lp_experiments.Sweep in
  let machines = if machines = [] then Sweep.default_machines else machines in
  let workloads =
    if workloads = [] then Lp_workloads.Suite.names else workloads
  in
  match
    ( List.find_opt (fun m -> Machine.of_name m = None) machines,
      List.find_opt (fun w -> Lp_workloads.Suite.find w = None) workloads )
  with
  | (Some bad, _) ->
    `Error
      ( false,
        Printf.sprintf "unknown machine %S (known: %s)" bad
          (String.concat ", " Machine.names) )
  | (_, Some bad) ->
    `Error
      (false,
       Printf.sprintf "unknown workload %S (try: lpcc workloads)" bad)
  | (None, None) ->
    with_ctx ?jobs ?retries ?faults ?trace ?report ~no_analysis_cache
      ~no_sim_predecode
    @@ fun _ctx ->
    with_diagnostics @@ fun () ->
    let t = Sweep.run ~machines ~workloads () in
    Lp_util.Table.print (Sweep.crossover_table t);
    (match Sweep.crossovers t with
    | [] -> print_endline "no crossovers: one config wins everywhere"
    | xs ->
      Printf.printf "%d workload(s) with machine-dependent winners:\n"
        (List.length xs);
      List.iter
        (fun (w, wins) ->
          Printf.printf "  %-12s %s\n" w
            (String.concat ", "
               (List.map (fun (m, c) -> Printf.sprintf "%s:%s" m c) wins)))
        xs);
    Option.iter
      (fun path ->
        Sweep.write_json ~path t;
        Printf.printf "sweep json written to %s\n" path)
      json;
    (* a machine that cannot run a workload (e.g. pacduo has no FPU) is
       a sweep datum, not a failure: those cells carry their stable code
       in the JSON and render as ERR above.  Only internal errors fail. *)
    (match Lp_experiments.Exp_common.failed_cells () with
    | [] -> `Ok ()
    | failed ->
      Printf.printf "%d cell(s) not runnable on their machine:\n"
        (List.length failed);
      List.iter
        (fun ((w, c, m), _, d) ->
          Printf.printf "  %s/%s@%s: %s\n" w c m (Diag.to_string d))
        failed;
      match
        List.filter
          (fun ((_, _, _), _, d) -> d.Diag.code = Diag.code_internal)
          failed
      with
      | [] -> `Ok ()
      | internal ->
        `Error
          ( false,
            Printf.sprintf "%d sweep cell(s) failed internally"
              (List.length internal) ))

(* ---------------- bench ---------------- *)

let bench_cmd_run jobs retries faults trace report no_analysis_cache
    no_sim_predecode ids =
  let known = List.map (fun e -> e.Lp_experiments.Experiments.id)
      Lp_experiments.Experiments.all in
  match List.filter (fun id -> not (List.mem id known)) ids with
  | bad :: _ ->
    `Error (false, Printf.sprintf "unknown experiment %S (known: %s)" bad
              (String.concat " " known))
  | [] -> (
    with_ctx ?jobs ?retries ?faults ?trace ?report ~no_analysis_cache
      ~no_sim_predecode
    @@ fun _ctx ->
    List.iter
      (fun (e : Lp_experiments.Experiments.entry) ->
        if ids = [] || List.mem e.Lp_experiments.Experiments.id ids then
          Lp_experiments.Experiments.run_and_print e)
      Lp_experiments.Experiments.all;
    match Lp_experiments.Exp_common.failed_cells () with
    | [] -> `Ok ()
    | failed ->
      `Error
        ( false,
          Printf.sprintf "%d cell(s) degraded to a diagnostic:\n%s"
            (List.length failed)
            (String.concat "\n"
               (List.map
                  (fun ((w, c, m), attempts, d) ->
                    Printf.sprintf "  %s/%s@%s (attempt %d): %s" w c m
                      attempts (Diag.to_string d))
                  failed)) ))

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domains the evaluation matrix may fan out over (default: \
                 $(b,LP_JOBS) or the host's recommended domain count minus \
                 one; 1 runs sequentially).")

let retries_arg =
  Arg.(value & opt (some int) None
       & info [ "retries" ] ~docv:"N"
           ~doc:"Retries after a transient matrix-cell failure (default: \
                 $(b,LP_RETRIES) or 2).")

let bench_cmd =
  let doc = "regenerate evaluation tables/figures (all, or the given ids)" in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
           ~doc:"Experiment ids (t1..t5, t3b, f1..f6, a1..a3); all when omitted.")
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(ret (const bench_cmd_run $ jobs_arg $ retries_arg $ faults_arg
               $ trace_file_arg $ report_file_arg $ no_cache_arg
               $ no_predecode_arg $ ids))

let sweep_cmd =
  let doc =
    "fan the workload × config matrix across the machine zoo and print \
     the crossover table (winning configuration per workload and \
     machine); deterministic and byte-identical whatever $(b,--jobs) is"
  in
  let machines_arg =
    Arg.(value & opt_all string []
         & info [ "m"; "machine" ] ~docv:"MACHINE"
             ~doc:"Machine to sweep (repeatable; default: the whole zoo, \
                   see $(b,lpcc machines)).")
  in
  let workloads_arg =
    Arg.(value & opt_all string []
         & info [ "w"; "workload" ] ~docv:"NAME"
             ~doc:"Workload to sweep (repeatable; default: every bundled \
                   workload).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the $(b,lowpower-bench-sweep/1) artifact to \
                   $(docv).")
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(ret (const sweep_cmd_run $ machines_arg $ workloads_arg $ json_arg
               $ jobs_arg $ retries_arg $ faults_arg $ trace_file_arg
               $ report_file_arg $ no_cache_arg $ no_predecode_arg))

(* ---------------- pipeline ---------------- *)

let pipeline_cmd_run passes =
  let module P = Lowpower.Pipeline in
  match passes with
  | None ->
    print_string (P.to_string P.default);
    Printf.printf "\navailable passes: %s\n"
      (String.concat " " (P.pass_names ()));
    `Ok ()
  | Some spec -> (
    match P.resolve_spec spec with
    | Ok t -> print_string (P.to_string t); `Ok ()
    | Error d -> `Error (false, Lp_util.Diag.to_string d))

let pipeline_cmd =
  let doc =
    "print the optimisation schedule as data: the driver's default (one \
     step per line), or the schedule a $(b,--passes) spec would run"
  in
  Cmd.v (Cmd.info "pipeline" ~doc)
    Term.(ret (const pipeline_cmd_run $ passes_arg))

(* ---------------- serve-bench ---------------- *)

let serve_bench_cmd_run socket requests clients window seed verify json_path
    self_serve server_jobs queue_cap server_deadline_ms faults retries =
  let module SB = Lp_serve.Serve_bench in
  let module Srv = Lp_serve.Server in
  let run_bench () =
    let cfg =
      {
        (SB.default_config ~socket_path:socket) with
        SB.requests;
        clients;
        window;
        seed;
        verify;
      }
    in
    match SB.run cfg with
    | Error e -> `Error (false, "serve-bench: " ^ e)
    | Ok s -> (
      print_string (SB.to_text s);
      (match json_path with
      | Some path ->
        SB.write_json s ~path;
        Printf.printf "wrote %s\n" path
      | None -> ());
      match SB.acceptance s with
      | Ok () -> `Ok ()
      | Error violations ->
        `Error
          ( false,
            "serve-bench acceptance failed:\n  "
            ^ String.concat "\n  " violations ))
  in
  if not self_serve then run_bench ()
  else
    with_ctx ?faults ?retries @@ fun ctx ->
    let opts =
      {
        (Srv.default_opts ~socket_path:socket) with
        Srv.jobs = server_jobs;
        queue_capacity = queue_cap;
        default_deadline_ms = server_deadline_ms;
      }
    in
    let server = Srv.start ~ctx opts in
    Fun.protect ~finally:(fun () -> Srv.stop server) run_bench

let serve_bench_cmd =
  let doc =
    "replay a seeded corpus of mixed valid/malformed/deadline requests \
     against an $(b,lpccd) compile server and report throughput, latency \
     percentiles and the failure taxonomy ($(b,BENCH_serve.json)); exits \
     non-zero unless every request was answered, no connection died, and \
     no reply carried $(b,E_INTERNAL)"
  in
  let socket =
    Arg.(value & opt string "lpccd.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket of the server.")
  in
  let requests =
    Arg.(value & opt int 5000
         & info [ "n"; "requests" ] ~docv:"N" ~doc:"Corpus size.")
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let window =
    Arg.(value & opt int 8
         & info [ "window" ] ~docv:"N"
             ~doc:"In-flight requests per connection (pipelining depth).")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"Corpus generator seed.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Recompute every valid compile/run reply locally through \
                   the one-shot entry points and require byte-identical \
                   payloads.  Only meaningful against a server running \
                   without injected faults.")
  in
  let json_path =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the summary (schema $(b,lowpower-bench-serve/1)) \
                   to $(docv).")
  in
  let self_serve =
    Arg.(value & flag
         & info [ "self-serve" ]
             ~doc:"Start an in-process server on $(b,--socket) for the \
                   duration of the run (for local acceptance runs without \
                   a separate $(b,lpccd)).")
  in
  let server_jobs =
    Arg.(value & opt int 2
         & info [ "server-jobs" ] ~docv:"N"
             ~doc:"Worker domains of the $(b,--self-serve) server.")
  in
  let queue_cap =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Bounded request queue of the $(b,--self-serve) server.")
  in
  let server_deadline =
    Arg.(value & opt (some int) None
         & info [ "server-deadline-ms" ] ~docv:"N"
             ~doc:"Default per-request deadline of the $(b,--self-serve) \
                   server.")
  in
  Cmd.v (Cmd.info "serve-bench" ~doc)
    Term.(ret (const serve_bench_cmd_run $ socket $ requests $ clients
               $ window $ seed $ verify $ json_path $ self_serve
               $ server_jobs $ queue_cap $ server_deadline $ faults_arg
               $ retries_arg))

(* ---------------- fuzz ---------------- *)

let fuzz_cmd_run seeds seed_start corpus cores trace =
  if seeds < 1 then `Error (false, "--seeds must be at least 1")
  else
    with_ctx ?trace @@ fun ctx ->
    let machine = Machine.generic ~n_cores:(max cores 4) () in
    let summary =
      Lp_robust.Fuzz.run_range ~ctx ~machine ~log:print_endline
        ~corpus_dir:corpus ~seed_start ~seeds ()
    in
    match summary.Lp_robust.Fuzz.findings with
    | [] -> `Ok ()
    | findings ->
      `Error
        ( false,
          Printf.sprintf "%d finding(s); crash corpus written to %s/"
            (List.length findings) corpus )

(* ---------------- profile ---------------- *)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let profile_cmd_run file file_b workload machine_kind cores config diff_mode
    json_out flame_out passes faults trace report no_analysis_cache
    no_sim_predecode deadline_ms =
  let module PR = Lowpower.Profile_report in
  if diff_mode then
    match (file, file_b) with
    | (Some a, Some b) ->
      with_diagnostics @@ fun () ->
        let parse path =
          match Lp_util.Json.of_string_opt (read_file path) with
          | Some j -> j
          | None -> failwith (path ^ ": not valid JSON")
        in
        (match
           PR.diff ~label_a:(Filename.basename a)
             ~label_b:(Filename.basename b) (parse a) (parse b)
         with
        | Ok text -> print_string text; `Ok ()
        | Error e -> `Error (false, e))
    | _ -> `Error (false, "--diff needs two profile JSON files: lpcc profile --diff A.json B.json")
  else if file_b <> None then
    `Error (false, "a second file only makes sense with --diff")
  else
    match source_of ~file ~workload with
    | Error e -> `Error (false, e)
    | Ok (src, name) -> (
      let pipeline =
        match passes with
        | None -> Ok None
        | Some spec ->
          Result.map Option.some (Lowpower.Pipeline.resolve_spec spec)
      in
      match pipeline with
      | Error d -> `Error (false, Lp_util.Diag.to_string d)
      | Ok pipeline ->
      with_ctx ?faults ?trace ?report ~no_analysis_cache ~no_sim_predecode
        ?deadline_ms
      @@ fun ctx ->
      with_diagnostics @@ fun () ->
      Fault.with_scope name @@ fun () ->
      Report.with_scope name @@ fun () ->
        let machine = machine_of ~cores machine_kind in
        let cores = Machine.clamp_cores machine cores in
        let opts = opts_of ~cores config in
        let opts = Compile.Options.update ?pipeline opts in
        let sim_opts = { Sim.default_options with Sim.profile = true } in
        let (compiled, o) =
          match Compile.run_result ~ctx ~opts ~sim_opts ~machine src with
          | Ok r -> r
          | Error d -> raise (Diag.Error d)
        in
        print_string (PR.to_text ~prog:compiled.Compile.prog o);
        Option.iter
          (fun path ->
            write_file path
              (Lp_util.Json.to_string
                 (PR.to_json ~source:name ~machine:machine.Machine.name o));
            Printf.printf "profile json written to %s\n" path)
          json_out;
        Option.iter
          (fun path ->
            write_file path (PR.to_flamegraph o);
            Printf.printf "flamegraph stacks written to %s\n" path)
          flame_out;
        `Ok ())

let profile_cmd =
  let doc =
    "compile and simulate with the source-level energy profiler on, then \
     print the function/loop/line energy hierarchy; optionally export the \
     $(b,lowpower-profile/1) JSON artifact and collapsed flamegraph \
     stacks, or diff two saved artifacts"
  in
  let file_b_arg =
    Arg.(value & pos 1 (some file) None
         & info [] ~docv:"FILE_B"
             ~doc:"Second profile JSON (with $(b,--diff)).")
  in
  let diff_arg =
    Arg.(value & flag
         & info [ "diff" ]
             ~doc:"Treat the two positional files as saved \
                   $(b,lowpower-profile/1) artifacts and print the \
                   per-line energy delta (B minus A) instead of running \
                   anything.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the $(b,lowpower-profile/1) JSON artifact to \
                   $(docv) (stable, deterministic: usable as \
                   profile-guided-optimisation input and for \
                   $(b,--diff)).")
  in
  let flame_arg =
    Arg.(value & opt (some string) None
         & info [ "flame" ] ~docv:"FILE"
             ~doc:"Write collapsed flamegraph stacks \
                   ($(b,func;line value-in-pJ)) to $(docv); render with \
                   $(b,flamegraph.pl) or speedscope.")
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(ret (const profile_cmd_run $ file_arg $ file_b_arg $ workload_arg
               $ machine_arg $ cores_arg $ config_arg $ diff_arg $ json_arg
               $ flame_arg $ passes_arg $ faults_arg $ trace_file_arg
               $ report_file_arg $ no_cache_arg $ no_predecode_arg
               $ deadline_arg))

(* ---------------- tune ---------------- *)

let tune_cmd_run workloads all budget seed machine_kind cores config out json
    jobs faults trace report no_analysis_cache no_sim_predecode deadline_ms =
  with_ctx ?jobs ?faults ?trace ?report ~no_analysis_cache ~no_sim_predecode
    ?deadline_ms
  @@ fun ctx ->
  with_diagnostics @@ fun () ->
  let module Tune = Lp_tune.Tune in
  let names =
    if all then Lp_workloads.Suite.names
    else if workloads <> [] then workloads
    else Tune.default_workloads
  in
  match
    List.find_opt (fun n -> Lp_workloads.Suite.find n = None) names
  with
  | Some bad ->
    `Error (false, Printf.sprintf "unknown workload %S (try: lpcc workloads)" bad)
  | None ->
    let ws = List.map Lp_workloads.Suite.find_exn names in
    let machine = machine_of ~cores machine_kind in
    let cores = Machine.clamp_cores machine cores in
    let opts = opts_of ~cores config in
    let config_name =
      match config with
      | `Baseline -> "baseline"
      | `Pg -> "pg"
      | `Dvfs -> "dvfs"
      | `PgDvfs -> "pg+dvfs"
      | `Par -> "par"
      | `Full -> "full"
    in
    let cfg =
      Tune.default_config ~budget ~seed ~config_name ~opts ~machine ()
    in
    (match Tune.run ~ctx cfg ws with
    | Error d -> `Error (false, Diag.to_string d)
    | Ok summary ->
      print_string (Tune.render summary);
      Option.iter
        (fun path ->
          Tune.write_json path summary;
          Printf.printf "bench json written to %s\n" path)
        json;
      (match out with
      | None -> `Ok ()
      | Some path -> (
        match Tune.save_best summary path with
        | Ok tw ->
          Printf.printf "schedule written to %s (workload %s, -%.2f%%)\n"
            path tw.Tune.tw_workload
            (Tune.improvement_pct tw);
          `Ok ()
        | Error msg -> `Error (false, msg))))

let tune_cmd =
  let doc =
    "search pass orderings and fixpoint groupings for lower simulated \
     energy (seeded hill-climbing with random restarts; deterministic \
     whatever $(b,--jobs) is)"
  in
  let workloads_arg =
    Arg.(value & opt_all string []
         & info [ "w"; "workload" ] ~docv:"NAME"
             ~doc:"Workload to tune (repeatable; default: the \
                   representative set).")
  in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Tune every bundled workload.")
  in
  let budget_arg =
    Arg.(value & opt int 100
         & info [ "budget" ] ~docv:"N"
             ~doc:"Unique schedule evaluations per workload (the default \
                   schedule's evaluation counts; memo-cache hits do not).")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"S" ~doc:"Search RNG seed.")
  in
  let tune_config_arg =
    let conv_config = Arg.enum
        [ ("baseline", `Baseline); ("pg", `Pg); ("dvfs", `Dvfs);
          ("pg+dvfs", `PgDvfs); ("par", `Par); ("full", `Full) ]
    in
    Arg.(value & opt conv_config `Baseline
         & info [ "k"; "config" ] ~docv:"CONFIG"
             ~doc:"Compiler configuration the candidates run under \
                   (default $(b,baseline): the schedule is a classic-\
                   optimisation lever, so tune it where nothing else \
                   moves).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the best-improvement schedule as a schedule file \
                   replayable with $(b,lpcc run --passes \\@FILE).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the per-workload results as \
                   $(b,lowpower-bench-tune/1) JSON.")
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(ret (const tune_cmd_run $ workloads_arg $ all_arg $ budget_arg
               $ seed_arg $ machine_arg $ cores_arg $ tune_config_arg
               $ out_arg $ json_arg $ jobs_arg $ faults_arg $ trace_file_arg
               $ report_file_arg $ no_cache_arg $ no_predecode_arg
               $ deadline_arg))

let fuzz_cmd =
  let doc =
    "fuzz the pipeline with generated MiniC programs (no raw exceptions, \
     verified IR after every pass, baseline and full configurations agree)"
  in
  let seeds_arg =
    Arg.(value & opt int 200
         & info [ "n"; "seeds" ] ~docv:"N" ~doc:"Number of seeds to fuzz.")
  in
  let seed_start_arg =
    Arg.(value & opt int 0
         & info [ "seed-start" ] ~docv:"K"
             ~doc:"First seed (replay a corpus file with its recorded seed \
                   and $(b,--seeds 1)).")
  in
  let corpus_arg =
    Arg.(value & opt string "fuzz-corpus"
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Directory for failing-seed MiniC files (created on \
                   demand).")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(ret (const fuzz_cmd_run $ seeds_arg $ seed_start_arg $ corpus_arg
               $ cores_arg $ trace_file_arg))

let () =
  let doc = "compiler for low power with design patterns on embedded multicore" in
  let info = Cmd.info "lpcc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ detect_cmd; run_cmd; explain_cmd; dump_cmd; workloads_cmd;
            machines_cmd; pipeline_cmd; bench_cmd; sweep_cmd; tune_cmd;
            profile_cmd; serve_bench_cmd; fuzz_cmd ]))
