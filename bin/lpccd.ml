(** lpccd — the resilient compile server daemon.

    Serves [lpcc]'s compile/run/explain/pipeline operations — plus,
    under protocol version 2, a small-budget [tune] — over a
    Unix-domain socket (line-delimited JSON; version negotiation,
    protocol and failure taxonomy in docs/SERVING.md) with a warm
    compile cache shared across
    requests, bounded-queue backpressure, per-request deadlines with
    cooperative cancellation, a stuck-request watchdog, per-request
    crash isolation and a clean drain on SIGTERM/SIGINT.

    Exit is always 0 on a requested shutdown (signal or [shutdown] op):
    a drained daemon is a successful daemon. *)

module Server = Lp_serve.Server
module Compile = Lowpower.Compile
module Fault = Lp_util.Fault
module Runtime_config = Lp_util.Runtime_config
module Json = Lp_util.Json
module Obs = Lp_obs.Obs
module Report = Lp_obs.Report
open Cmdliner

let serve socket jobs queue_cap cache_cap default_deadline_ms stuck_ms
    drain_ms retries faults trace report no_analysis_cache no_sim_predecode =
  let config =
    Runtime_config.resolve ?retries ?faults ?trace ?report
      ~no_analysis_cache ~no_sim_predecode
      (Runtime_config.from_env ())
  in
  match
    match config.Runtime_config.faults with
    | None -> Ok ()
    | Some spec -> Fault.configure spec
  with
  | Error msg -> `Error (false, "invalid fault spec: " ^ msg)
  | Ok () -> (
    let obs =
      match config.Runtime_config.trace with
      | Some _ -> Obs.create ()
      | None -> Obs.disabled
    in
    let rep =
      match config.Runtime_config.report with
      | Some _ -> Report.create ()
      | None -> Report.disabled
    in
    let ctx = Compile.make_ctx ~obs ~report:rep ~config () in
    let opts =
      {
        (Server.default_opts ~socket_path:socket) with
        Server.jobs;
        queue_capacity = queue_cap;
        cache_capacity = cache_cap;
        default_deadline_ms;
        stuck_ms;
        drain_ms;
      }
    in
    match Server.start ~ctx opts with
    | exception Unix.Unix_error (e, _, arg) ->
      `Error
        ( false,
          Printf.sprintf "cannot listen on %s: %s %s" socket
            (Unix.error_message e) arg )
    | server ->
      let on_signal _ = Server.request_stop server in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      (* a client that disappears mid-write must not kill the daemon *)
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Printf.printf "lpccd listening on %s (%d workers, queue %d)\n%!" socket
        jobs queue_cap;
      while not (Server.stopping server) do
        Unix.sleepf 0.1
      done;
      prerr_endline "lpccd: draining...";
      Server.stop server;
      prerr_endline ("lpccd: final stats: "
                     ^ Json.to_compact_string (Server.stats_json server));
      (match config.Runtime_config.trace with
      | Some path when Obs.enabled obs -> Obs.write_chrome obs ~path
      | _ -> ());
      (match config.Runtime_config.report with
      | Some path when Report.enabled rep -> Report.write rep ~path
      | _ -> ());
      `Ok ())

let () =
  let doc = "resilient compile server for lpcc (deadlines, backpressure, graceful degradation)" in
  let socket =
    Arg.(value & opt string "lpccd.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to listen on (replaced if present).")
  in
  let jobs =
    Arg.(value & opt int 2
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue_cap =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Bounded request queue; beyond it requests are shed with \
                   the transient $(b,E_OVERLOAD) diagnostic.")
  in
  let cache_cap =
    Arg.(value & opt int 128
         & info [ "cache-cap" ] ~docv:"N"
             ~doc:"Warm compile cache entries shared across requests.")
  in
  let default_deadline =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"N"
             ~doc:"Default per-request deadline applied when a request \
                   carries none; expiry reports $(b,E_DEADLINE).")
  in
  let stuck_ms =
    Arg.(value & opt int 30000
         & info [ "stuck-ms" ] ~docv:"N"
             ~doc:"Watchdog: cancel deadline-less requests still running \
                   after $(docv) milliseconds.")
  in
  let drain_ms =
    Arg.(value & opt int 10000
         & info [ "drain-ms" ] ~docv:"N"
             ~doc:"On shutdown, wait up to $(docv) milliseconds for \
                   in-flight requests before cancelling them.")
  in
  let retries =
    Arg.(value & opt (some int) None
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retries after a transient per-request failure (default: \
                   $(b,LP_RETRIES) or 2).")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Inject deterministic faults, including the serve-side \
                   points $(b,serve-accept), $(b,serve-decode) and \
                   $(b,serve-dispatch) (grammar in docs/ROBUSTNESS.md).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event profile on exit.")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Write the power-decision audit report on exit.")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-analysis-cache" ]
             ~doc:"Disable the analysis manager's memoisation.")
  in
  let no_predecode =
    Arg.(value & flag
         & info [ "no-sim-predecode" ]
             ~doc:"Use the simulator's interpretive reference stepper.")
  in
  let info = Cmd.info "lpccd" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(ret (const serve $ socket $ jobs $ queue_cap $ cache_cap
                     $ default_deadline $ stuck_ms $ drain_ms $ retries
                     $ faults $ trace $ report $ no_cache $ no_predecode))))
