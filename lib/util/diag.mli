(** Structured diagnostics.

    Every failure the pipeline can produce — front-end errors, transform
    self-check failures, verifier rejections, simulator faults, injected
    faults — is represented by one [t] carrying the pipeline stage, a
    stable machine-readable error code (the [E_*] names in
    docs/ROBUSTNESS.md), a human-readable message and, when known, a
    source line.  The legacy per-module exceptions still exist at their
    raise sites; [Lowpower.Compile.diag_of_exn] maps each of them onto a
    diagnostic, and the [*_result] entry points return diagnostics
    instead of raising. *)

(** Pipeline stage a diagnostic originates from. *)
type stage =
  | Lex
  | Parse
  | Typecheck
  | Pattern
  | Parallelize
  | Lower
  | Transform
  | Verify
  | Schedule
  | Machine
  | Driver      (** the compile driver's own checks *)
  | Simulate
  | Serve       (** the [lpccd] compile server's own failures
                    ([E_DECODE], [E_OVERLOAD]) *)
  | Fault       (** injected by {!Fault} *)
  | Internal    (** unclassified crash captured at a boundary *)

type t = {
  stage : stage;
  code : string;      (** stable machine-readable code, e.g. ["E_PARSE"] *)
  message : string;
  line : int option;  (** source line, when the stage knows one *)
  transient : bool;
      (** a retry may succeed (bounded injected faults, simulated
          transient bus faults); deterministic compile errors are not
          transient *)
}

(** The one exception structured entry points use to cross module
    boundaries; callers of the [*_result] APIs never see it. *)
exception Error of t

val make :
  ?line:int -> ?transient:bool -> stage -> code:string -> string -> t

(** [error ?line ?transient stage ~code fmt] builds the diagnostic and
    raises [Error]. *)
val error :
  ?line:int ->
  ?transient:bool ->
  stage ->
  code:string ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a

val stage_name : stage -> string

(** One-line rendering: ["stage error [E_CODE] (line N): message"]. *)
val to_string : t -> string

(** All codes this module reserves for its own use (fault injection and
    internal crashes); stage-specific codes live with their mapping in
    [Lowpower.Compile]. *)
val code_internal : string
