type t = {
  jobs : int option;
  retries : int;
  faults : string option;
  trace : string option;
  report : string option;
  no_analysis_cache : bool;
  no_sim_predecode : bool;
  deadline_ms : int option;
  profile : bool;
}

let default =
  { jobs = None; retries = 2; faults = None; trace = None; report = None;
    no_analysis_cache = false; no_sim_predecode = false; deadline_ms = None;
    profile = false }

let clean = function
  | Some s when String.trim s <> "" -> Some (String.trim s)
  | Some _ | None -> None

let pos_int = function
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)
  | None -> None

let truthy = function
  | Some s ->
    let s = String.trim s in
    s <> "" && s <> "0"
  | None -> false

let from_env () =
  let get = Sys.getenv_opt in
  {
    jobs = pos_int (get "LP_JOBS");
    retries =
      (match Option.bind (get "LP_RETRIES") int_of_string_opt with
      | Some n when n >= 0 -> n
      | Some _ | None -> default.retries);
    faults = clean (get "LP_FAULTS");
    trace = clean (get "LP_TRACE");
    report = clean (get "LP_REPORT");
    no_analysis_cache = truthy (get "LP_NO_ANALYSIS_CACHE");
    no_sim_predecode = truthy (get "LP_NO_SIM_PREDECODE");
    deadline_ms = pos_int (get "LP_DEADLINE_MS");
    profile = truthy (get "LP_PROFILE");
  }

let resolve ?jobs ?retries ?faults ?trace ?report ?no_analysis_cache
    ?no_sim_predecode ?deadline_ms ?profile base =
  {
    jobs = (match jobs with Some _ -> jobs | None -> base.jobs);
    retries = Option.value ~default:base.retries retries;
    faults = (match clean faults with Some _ as f -> f | None -> base.faults);
    trace = (match clean trace with Some _ as t -> t | None -> base.trace);
    report =
      (match clean report with Some _ as r -> r | None -> base.report);
    no_analysis_cache =
      (* a flag can only switch the cache off; absence keeps base *)
      (match no_analysis_cache with
      | Some true -> true
      | Some false | None -> base.no_analysis_cache);
    no_sim_predecode =
      (* same one-way semantics as [no_analysis_cache] *)
      (match no_sim_predecode with
      | Some true -> true
      | Some false | None -> base.no_sim_predecode);
    deadline_ms =
      (match deadline_ms with
      | Some ms when ms >= 1 -> Some ms
      | Some _ | None -> base.deadline_ms);
    profile =
      (* one-way: a flag can only switch profiling on *)
      (match profile with
      | Some true -> true
      | Some false | None -> base.profile);
  }

let to_string c =
  Printf.sprintf
    "jobs=%s retries=%d faults=%s trace=%s report=%s analysis_cache=%s \
     sim_predecode=%s deadline_ms=%s profile=%s"
    (match c.jobs with Some n -> string_of_int n | None -> "auto")
    c.retries
    (Option.value ~default:"(none)" c.faults)
    (Option.value ~default:"(off)" c.trace)
    (Option.value ~default:"(off)" c.report)
    (if c.no_analysis_cache then "off" else "on")
    (if c.no_sim_predecode then "off" else "on")
    (match c.deadline_ms with Some n -> string_of_int n | None -> "(none)")
    (if c.profile then "on" else "off")
