(** Deterministic fault injection.

    A fault spec arms named injection points spread through the pipeline;
    when an armed point is reached, it raises a structured
    {!Diag.Error} (never a raw exception).  Without a spec every check
    compiles down to one branch on an empty list, so production runs pay
    nothing.

    Spec grammar (also in docs/ROBUSTNESS.md):

    {v
    spec   := clause (',' clause)*
    clause := 'seed=' INT
            | point [ '@' SUBSTR ] [ '*' COUNT ] [ '%' PCT ]
    point  := 'post-pass' | 'pre-simulate' | 'worker' | 'sim-bus'
            | 'serve-accept' | 'serve-decode' | 'serve-dispatch'
    v}

    - [@SUBSTR] restricts the clause to checks whose full key
      (["<scope>/<key>"], scope being the workload name set by
      {!with_scope}) contains [SUBSTR];
    - [*COUNT] fires the clause at most [COUNT] times, after which the
      point passes — a retry deterministically recovers, so the
      resulting diagnostics are marked transient;
    - [%PCT] fires with the given percent probability drawn from the
      spec's seeded {!Rng} (default seed 1; override with [seed=N]).

    Example: [LP_FAULTS='post-pass@fir'] crashes every compile of the
    [fir] workload after the first optimisation pass;
    [LP_FAULTS='pre-simulate@matmul*2'] fails the first two simulation
    attempts of [matmul] and then recovers. *)

type point =
  | Post_pass     (** after each optimisation pass ([Pass.run_pass]) *)
  | Pre_simulate  (** entry of [Sim.run] *)
  | Worker        (** inside a domain-pool evaluation-matrix worker *)
  | Sim_bus       (** transient bus/memory fault inside [Sim] bus access *)
  | Serve_accept  (** [lpccd] connection accept path *)
  | Serve_decode  (** [lpccd] request-frame decode path *)
  | Serve_dispatch  (** [lpccd] request dispatch onto the worker queue *)

val point_name : point -> string

(** Error codes the four points raise with. *)
val code_of_point : point -> string

(** Parse and install a fault spec, replacing the current one.  The empty
    string clears.  [Error msg] on a malformed spec.  Entry points call
    this with the resolved [Runtime_config.faults] (where [--faults] and
    [LP_FAULTS] land); libraries never read the environment. *)
val configure : string -> (unit, string) result

(** Drop all armed clauses. *)
val clear : unit -> unit

(** Whether any clause is armed. *)
val active : unit -> bool

(** [with_scope name f] runs [f] with the ambient key prefix set to
    [name] (per-domain, so pool workers don't race). *)
val with_scope : string -> (unit -> 'a) -> 'a

(** Reach an injection point.  Raises [Diag.Error] when an armed clause
    matches; otherwise returns.  Thread-safe. *)
val check : point -> key:string -> unit
