(** Minimal JSON: a value type, a printer, and a recursive-descent
    parser.  Used by the machine-readable artifacts this repo commits
    and re-reads (the benchmark baseline gate) and by tests that inspect
    exported reports.  Deliberately small: no streaming, no options —
    the grammar of RFC 8259 over strings that fit in memory. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render a float the way the repo's JSON artifacts expect: integral
    values without a fraction, everything else via [%.17g] so a parse
    round-trips to the identical float (the baseline gate depends on
    this). *)
let num_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec render buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num x -> Buffer.add_string buf (num_to_string x)
  | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        render buf (indent + 2) item)
      items;
    Buffer.add_string buf ("\n" ^ pad indent ^ "]")
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf "%s\"%s\": " (pad (indent + 2)) (escape k));
        render buf (indent + 2) item)
      fields;
    Buffer.add_string buf ("\n" ^ pad indent ^ "}")

let to_string v =
  let buf = Buffer.create 1024 in
  render buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(** One-line rendering for line-delimited protocols: no newlines anywhere
    (string bodies escape them), no trailing newline. *)
let rec render_compact buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num x -> Buffer.add_string buf (num_to_string x)
  | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        render_compact buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":" (escape k));
        render_compact buf item)
      fields;
    Buffer.add_char buf '}'

let to_compact_string v =
  let buf = Buffer.create 256 in
  render_compact buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* Hardened against adversarial input: [depth] bounds container nesting
   (unbounded nesting would otherwise overflow the OCaml stack — a raw
   [Stack_overflow], not a typed error), and string/number token lengths
   are bounded so a hostile frame cannot make the parser commit to an
   absurd allocation before failing.  Every violation is a
   [Parse_error]. *)
type state = {
  src : string;
  mutable pos : int;
  mutable depth : int;
  max_depth : int;
  max_string : int;
}

let default_max_depth = 512

let default_max_string = 8 * 1024 * 1024

(** Longest token [%.17g] can need is ~25 chars; anything near this bound
    is adversarial, not numeric. *)
let max_number_len = 64

let fail st msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %c" c)

let parse_literal st word v =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    v
  end
  else fail st ("expected " ^ word)

let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let grow c =
    if Buffer.length buf >= st.max_string then fail st "string too long";
    Buffer.add_char buf c
  in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; grow '"'; go ()
      | Some '\\' -> advance st; grow '\\'; go ()
      | Some '/' -> advance st; grow '/'; go ()
      | Some 'n' -> advance st; grow '\n'; go ()
      | Some 't' -> advance st; grow '\t'; go ()
      | Some 'r' -> advance st; grow '\r'; go ()
      | Some 'b' -> advance st; grow '\b'; go ()
      | Some 'f' -> advance st; grow '\012'; go ()
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
        let hex = String.sub st.src st.pos 4 in
        (* strict: exactly four hex digits ([int_of_string] would also
           accept signs and underscores) *)
        if not (String.for_all is_hex hex) then fail st "bad \\u escape";
        let code = int_of_string ("0x" ^ hex) in
        st.pos <- st.pos + 4;
        (* ASCII range only; everything this repo writes stays there *)
        if code < 0x80 then grow (Char.chr code) else grow '?';
        go ()
      | _ -> fail st "bad escape")
    | Some c ->
      advance st;
      grow c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st;
    if st.pos - start > max_number_len then fail st "number too long"
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some x -> Num x
  | None -> fail st ("bad number " ^ s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    enter st;
    advance st;
    skip_ws st;
    let v =
      if peek st = Some '}' then begin advance st; Obj [] end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; fields ((k, v) :: acc)
          | Some '}' -> advance st; Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected , or } in object"
        in
        fields []
      end
    in
    leave st;
    v
  | Some '[' ->
    enter st;
    advance st;
    skip_ws st;
    let v =
      if peek st = Some ']' then begin advance st; List [] end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; items (v :: acc)
          | Some ']' -> advance st; List (List.rev (v :: acc))
          | _ -> fail st "expected , or ] in array"
        in
        items []
      end
    in
    leave st;
    v
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

and enter st =
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then fail st "nesting too deep"

and leave st = st.depth <- st.depth - 1

let of_string ?(max_depth = default_max_depth)
    ?(max_string = default_max_string) s =
  let st = { src = s; pos = 0; depth = 0; max_depth; max_string } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let of_string_opt ?max_depth ?max_string s =
  try Some (of_string ?max_depth ?max_string s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function Num x -> Some x | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list = function List l -> l | _ -> []
