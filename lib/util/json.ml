(** Minimal JSON: a value type, a printer, and a recursive-descent
    parser.  Used by the machine-readable artifacts this repo commits
    and re-reads (the benchmark baseline gate) and by tests that inspect
    exported reports.  Deliberately small: no streaming, no options —
    the grammar of RFC 8259 over strings that fit in memory. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render a float the way the repo's JSON artifacts expect: integral
    values without a fraction, everything else via [%.17g] so a parse
    round-trips to the identical float (the baseline gate depends on
    this). *)
let num_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec render buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num x -> Buffer.add_string buf (num_to_string x)
  | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        render buf (indent + 2) item)
      items;
    Buffer.add_string buf ("\n" ^ pad indent ^ "]")
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf "%s\"%s\": " (pad (indent + 2)) (escape k));
        render buf (indent + 2) item)
      fields;
    Buffer.add_string buf ("\n" ^ pad indent ^ "}")

let to_string v =
  let buf = Buffer.create 1024 in
  render buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %c" c)

let parse_literal st word v =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    v
  end
  else fail st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
        let hex = String.sub st.src st.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | None -> fail st "bad \\u escape"
        | Some code ->
          st.pos <- st.pos + 4;
          (* ASCII range only; everything this repo writes stays there *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?');
        go ()
      | _ -> fail st "bad escape")
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some x -> Num x
  | None -> fail st ("bad number " ^ s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin advance st; Obj [] end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; fields ((k, v) :: acc)
        | Some '}' -> advance st; Obj (List.rev ((k, v) :: acc))
        | _ -> fail st "expected , or } in object"
      in
      fields []
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin advance st; List [] end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; items (v :: acc)
        | Some ']' -> advance st; List (List.rev (v :: acc))
        | _ -> fail st "expected , or ] in array"
      in
      items []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function Num x -> Some x | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list = function List l -> l | _ -> []
