(** Structured diagnostics (see the interface for the contract). *)

type stage =
  | Lex
  | Parse
  | Typecheck
  | Pattern
  | Parallelize
  | Lower
  | Transform
  | Verify
  | Schedule
  | Machine
  | Driver
  | Simulate
  | Serve
  | Fault
  | Internal

type t = {
  stage : stage;
  code : string;
  message : string;
  line : int option;
  transient : bool;
}

exception Error of t

let make ?line ?(transient = false) stage ~code message =
  { stage; code; message; line; transient }

let error ?line ?transient stage ~code fmt =
  Format.kasprintf
    (fun message -> raise (Error (make ?line ?transient stage ~code message)))
    fmt

let stage_name = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Typecheck -> "typecheck"
  | Pattern -> "pattern"
  | Parallelize -> "parallelize"
  | Lower -> "lower"
  | Transform -> "transform"
  | Verify -> "verify"
  | Schedule -> "schedule"
  | Machine -> "machine"
  | Driver -> "driver"
  | Simulate -> "simulate"
  | Serve -> "serve"
  | Fault -> "fault"
  | Internal -> "internal"

let to_string d =
  Printf.sprintf "%s error [%s]%s: %s" (stage_name d.stage) d.code
    (match d.line with Some l -> Printf.sprintf " (line %d)" l | None -> "")
    d.message

let code_internal = "E_INTERNAL"

(* register a readable printer so a diagnostic that does escape (it never
   should) still prints its code and message, not <abstr> *)
let () =
  Printexc.register_printer (function
    | Error d -> Some ("Diag.Error: " ^ to_string d)
    | _ -> None)
