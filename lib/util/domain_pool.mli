(** Fixed-size pool of worker domains for embarrassingly parallel work.

    The evaluation matrix (workload x config x machine) and the benchmark
    harness fan independent compile+simulate jobs out over this pool.
    Results keep the input order, and the first (lowest-index) exception
    raised by a job is re-raised on the caller once the batch has drained,
    so callers observe the same behaviour as [List.map] modulo wall-clock.

    Pool size resolution, in priority order: an explicit [set_default_jobs]
    override (entry points call it with [Runtime_config.jobs], which is
    where [--jobs] and [LP_JOBS] land), and finally
    [Domain.recommended_domain_count () - 1] (min 1).  A pool
    of size 1 spawns no domains and degrades to plain [List.map]/[List.iter],
    so single-core CI boxes take the sequential path untouched.

    Jobs must not submit work back into the pool they run on: every worker
    waiting on a nested batch would deadlock the pool. *)

type t

(** [create ~jobs ()] spawns [max 1 jobs] worker domains ([jobs <= 1]
    spawns none, so batch calls degrade to the caller's domain).
    [~always_spawn:true] spawns worker domains even for [jobs = 1] —
    services ([lpccd]) that park long-lived loops on the pool via
    {!submit} need a real worker to run them. *)
val create : ?always_spawn:bool -> jobs:int -> unit -> t

(** [submit pool task] enqueues one fire-and-forget task for the pool's
    workers (the compile server submits its request-loop this way); on a
    domain-less pool the task runs inline.  Exceptions escaping [task]
    kill the worker domain — wrap the task. *)
val submit : t -> (unit -> unit) -> unit

(** Number of worker slots (>= 1). *)
val jobs : t -> int

(** Join the workers; the pool accepts no further batches. *)
val shutdown : t -> unit

(** The pool size the next [default] pool will use. *)
val default_jobs : unit -> int

(** Override the default pool size (clamped to >= 1); entry points call
    this with the resolved [Runtime_config.jobs].  An existing default
    pool of a different size is shut down and replaced on the next
    use. *)
val set_default_jobs : int -> unit

(** The shared lazily-created default pool. *)
val default : unit -> t

(** [parallel_map ?pool ?chunk f xs] maps [f] over [xs] on the pool
    (default: [default ()]), preserving order.  [chunk] (default 1) is the
    number of consecutive elements one task claims; raise it for very
    cheap [f].  The first failure by input index is re-raised with its
    backtrace after all tasks finish. *)
val parallel_map : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_iter] is [parallel_map] for effects only. *)
val parallel_iter : ?pool:t -> ?chunk:int -> ('a -> unit) -> 'a list -> unit
