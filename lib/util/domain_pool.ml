(** See the interface for the contract.  Implementation notes: workers
    block on a [Condition] over one shared task queue; a batch publishes
    result slots through the completion mutex, which gives the caller the
    happens-before edge it needs to read them after the join. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

let worker pool () =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.has_work pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stopping *)
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ?(always_spawn = false) ~jobs () : t =
  let jobs = max 1 jobs in
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
    }
  in
  if jobs > 1 || always_spawn then
    pool.domains <- List.init jobs (fun _ -> Domain.spawn (worker pool));
  pool

(** Hand one task to the pool's workers.  On a domain-less pool (size 1
    created without [~always_spawn:true]) the task runs inline — there is
    nobody else to run it. *)
let submit pool (task : unit -> unit) =
  if pool.domains = [] then task ()
  else begin
    Mutex.lock pool.mutex;
    Queue.push task pool.queue;
    Condition.signal pool.has_work;
    Mutex.unlock pool.mutex
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.has_work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* ------------------------------------------------------------------ *)
(* Default pool                                                        *)
(* ------------------------------------------------------------------ *)

let override = ref None
let default_pool = ref None

let default_jobs () =
  match !override with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let set_default_jobs n = override := Some (max 1 n)

let default () =
  let wanted = default_jobs () in
  match !default_pool with
  | Some p when p.jobs = wanted -> p
  | old ->
    Option.iter shutdown old;
    let p = create ~jobs:wanted () in
    default_pool := Some p;
    p

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

type 'b batch = {
  out : 'b option array;
  (* first failure by input index; protected by [bm] *)
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
  mutable pending : int;  (** chunks not yet finished; protected by [bm] *)
  bm : Mutex.t;
  done_ : Condition.t;
}

let parallel_map ?pool ?(chunk = 1) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let pool = match pool with Some p -> p | None -> default () in
  if pool.jobs <= 1 then List.map f xs
  else
    match xs with
    | [] | [ _ ] -> List.map f xs
    | _ ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let chunk = max 1 chunk in
      let n_chunks = (n + chunk - 1) / chunk in
      let b =
        {
          out = Array.make n None;
          failed = None;
          pending = n_chunks;
          bm = Mutex.create ();
          done_ = Condition.create ();
        }
      in
      let record_failure i e bt =
        match b.failed with
        | Some (j, _, _) when j <= i -> ()
        | Some _ | None -> b.failed <- Some (i, e, bt)
      in
      let run_chunk ci () =
        let lo = ci * chunk in
        let hi = min n (lo + chunk) - 1 in
        let local_fail = ref None in
        for i = lo to hi do
          (* keep going after a failure so [pending] drains; only the
             first failure per chunk can be the globally-first one *)
          if !local_fail = None then
            match f input.(i) with
            | v -> b.out.(i) <- Some v
            | exception e ->
              local_fail := Some (i, e, Printexc.get_raw_backtrace ())
        done;
        Mutex.lock b.bm;
        (match !local_fail with
        | Some (i, e, bt) -> record_failure i e bt
        | None -> ());
        b.pending <- b.pending - 1;
        if b.pending = 0 then Condition.signal b.done_;
        Mutex.unlock b.bm
      in
      Mutex.lock pool.mutex;
      for ci = 0 to n_chunks - 1 do
        Queue.push (run_chunk ci) pool.queue
      done;
      Condition.broadcast pool.has_work;
      Mutex.unlock pool.mutex;
      Mutex.lock b.bm;
      while b.pending > 0 do
        Condition.wait b.done_ b.bm
      done;
      let failed = b.failed in
      Mutex.unlock b.bm;
      (match failed with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map
           (function
             | Some v -> v
             | None -> invalid_arg "Domain_pool: missing result slot")
           b.out)

let parallel_iter ?pool ?chunk (f : 'a -> unit) (xs : 'a list) : unit =
  ignore (parallel_map ?pool ?chunk f xs)
