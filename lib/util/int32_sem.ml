(** 32-bit two's-complement integer semantics shared by the simulator and
    the constant folder — they must agree bit-for-bit, otherwise folding
    would change observable program results. *)

(** Wrap a host integer to signed 32-bit. *)
let[@inline always] wrap32 x =
  let m = x land 0xFFFFFFFF in
  if m land 0x80000000 <> 0 then m - 0x100000000 else m
