(* Bounded exponential backoff (see the interface). *)

let cap_s = 0.05

let backoff_s attempt =
  let attempt = max 1 attempt in
  Float.min cap_s (0.004 *. Float.pow 2.0 (float_of_int (attempt - 1)))
