(** Deterministic fault injection (see the interface for the spec
    grammar).  All mutable state sits behind one mutex: checks may come
    from several domains at once when the evaluation matrix fans out. *)

type point =
  | Post_pass
  | Pre_simulate
  | Worker
  | Sim_bus
  | Serve_accept
  | Serve_decode
  | Serve_dispatch

let point_name = function
  | Post_pass -> "post-pass"
  | Pre_simulate -> "pre-simulate"
  | Worker -> "worker"
  | Sim_bus -> "sim-bus"
  | Serve_accept -> "serve-accept"
  | Serve_decode -> "serve-decode"
  | Serve_dispatch -> "serve-dispatch"

let point_of_name = function
  | "post-pass" -> Some Post_pass
  | "pre-simulate" -> Some Pre_simulate
  | "worker" -> Some Worker
  | "sim-bus" -> Some Sim_bus
  | "serve-accept" -> Some Serve_accept
  | "serve-decode" -> Some Serve_decode
  | "serve-dispatch" -> Some Serve_dispatch
  | _ -> None

let code_of_point = function
  | Post_pass -> "E_FAULT_PASS"
  | Pre_simulate -> "E_FAULT_SIM"
  | Worker -> "E_FAULT_WORKER"
  | Sim_bus -> "E_FAULT_BUS"
  | Serve_accept -> "E_FAULT_ACCEPT"
  | Serve_decode -> "E_FAULT_DECODE"
  | Serve_dispatch -> "E_FAULT_DISPATCH"

type clause = {
  cl_point : point;
  cl_substr : string option;       (** match against "<scope>/<key>" *)
  mutable cl_remaining : int option;  (** [None] = unlimited *)
  cl_pct : int;                    (** fire probability, percent *)
  cl_transient : bool;             (** bounded or probabilistic *)
}

type config = { clauses : clause list; rng : Rng.t }

let state : config option ref = ref None
let mutex = Mutex.create ()

let clear () =
  Mutex.lock mutex;
  state := None;
  Mutex.unlock mutex

let active () =
  Mutex.lock mutex;
  let a = !state <> None in
  Mutex.unlock mutex;
  a

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

let parse_clause s : (clause, string) result =
  (* point [@substr] [*count] [%pct] — the two suffixes may appear in
     either order after the point/substr part *)
  let rec strip acc s =
    let cut i = (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1)) in
    match
      (String.rindex_opt s '*', String.rindex_opt s '%')
    with
    | (Some i, Some j) when i > j ->
      let (rest, v) = cut i in
      strip (("*", v) :: acc) rest
    | (Some _, Some j) ->
      let (rest, v) = cut j in
      strip (("%", v) :: acc) rest
    | (Some i, None) ->
      let (rest, v) = cut i in
      strip (("*", v) :: acc) rest
    | (None, Some j) ->
      let (rest, v) = cut j in
      strip (("%", v) :: acc) rest
    | (None, None) -> (s, acc)
  in
  let (head, suffixes) = strip [] s in
  let (pname, substr) =
    match String.index_opt head '@' with
    | Some i ->
      ( String.sub head 0 i,
        Some (String.sub head (i + 1) (String.length head - i - 1)) )
    | None -> (head, None)
  in
  match point_of_name pname with
  | None -> Error (Printf.sprintf "unknown fault point %S" pname)
  | Some p ->
    let count = ref None and pct = ref 100 and err = ref None in
    List.iter
      (fun (k, v) ->
        match (k, int_of_string_opt v) with
        | ("*", Some n) when n >= 0 -> count := Some n
        | ("%", Some n) when n >= 0 && n <= 100 -> pct := n
        | _ -> err := Some (Printf.sprintf "bad %s value %S in %S" k v s))
      suffixes;
    (match !err with
    | Some e -> Error e
    | None ->
      Ok
        {
          cl_point = p;
          cl_substr = substr;
          cl_remaining = !count;
          cl_pct = !pct;
          cl_transient = !count <> None || !pct < 100;
        })

let configure spec : (unit, string) result =
  let spec = String.trim spec in
  if spec = "" then begin
    clear ();
    Ok ()
  end
  else begin
    let parts =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let seed = ref 1 and clauses = ref [] and err = ref None in
    List.iter
      (fun part ->
        if !err = None then
          match String.index_opt part '=' with
          | Some i when String.sub part 0 i = "seed" -> (
            match
              int_of_string_opt
                (String.sub part (i + 1) (String.length part - i - 1))
            with
            | Some n -> seed := n
            | None -> err := Some (Printf.sprintf "bad seed in %S" part))
          | _ -> (
            match parse_clause part with
            | Ok c -> clauses := c :: !clauses
            | Error e -> err := Some e))
      parts;
    match !err with
    | Some e -> Error e
    | None ->
      Mutex.lock mutex;
      state :=
        (match !clauses with
        | [] -> None
        | cs -> Some { clauses = List.rev cs; rng = Rng.create ~seed:!seed });
      Mutex.unlock mutex;
      Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Scope and checks                                                    *)
(* ------------------------------------------------------------------ *)

let scope_key : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "")

let with_scope name f =
  let old = Domain.DLS.get scope_key in
  Domain.DLS.set scope_key name;
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key old) f

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else begin
    let found = ref false in
    for i = 0 to m - n do
      if (not !found) && String.sub s i n = sub then found := true
    done;
    !found
  end

let check point ~key =
  match !state with
  | None -> ()
  | Some _ ->
    let full_key = Domain.DLS.get scope_key ^ "/" ^ key in
    let fire = ref None in
    Mutex.lock mutex;
    (match !state with
    | None -> ()
    | Some cfg ->
      List.iter
        (fun c ->
          if
            !fire = None && c.cl_point = point
            && (match c.cl_substr with
               | None -> true
               | Some sub -> contains ~sub full_key)
            && c.cl_remaining <> Some 0
            && (c.cl_pct >= 100 || Rng.int cfg.rng 100 < c.cl_pct)
          then begin
            (match c.cl_remaining with
            | Some n -> c.cl_remaining <- Some (n - 1)
            | None -> ());
            fire := Some c
          end)
        cfg.clauses);
    Mutex.unlock mutex;
    (match !fire with
    | None -> ()
    | Some c ->
      Diag.error Diag.Fault ~transient:c.cl_transient
        ~code:(code_of_point point) "injected %s fault at %s"
        (point_name point) full_key)
