(** The one runtime-configuration surface.

    Historically three scattered mechanisms configured the pipeline:
    environment variables read deep inside libraries ([LP_JOBS] in the
    domain pool, [LP_RETRIES] in the evaluation matrix, [LP_FAULTS] in
    fault injection), optional function arguments, and CLI flags.  This
    module consolidates them: a [t] is resolved {e once} at a program's
    entry point and handed to the libraries; no library module reads the
    environment directly.

    {2 Precedence}

    [flag > environment > default], applied field-wise:

    + {!default} supplies every fallback value;
    + {!from_env} overlays the [LP_*] environment variables
      ([LP_JOBS], [LP_RETRIES], [LP_FAULTS], [LP_TRACE], [LP_REPORT]) —
      malformed
      values are ignored, keeping the default;
    + {!resolve} overlays explicit CLI flags on top.

    So an entry point does
    [Runtime_config.(resolve ~jobs ... (from_env ()))] and passes the
    result down.  Only [bin/], [bench/] and this module may touch the
    environment (enforced by a grep in the test suite's conventions). *)

type t = {
  jobs : int option;
      (** worker domains for the evaluation matrix; [None] = the host's
          recommended domain count minus one ([LP_JOBS] / [--jobs]) *)
  retries : int;
      (** retries after a transient per-cell failure, >= 0
          ([LP_RETRIES], default 2) *)
  faults : string option;
      (** deterministic fault-injection spec, see docs/ROBUSTNESS.md
          ([LP_FAULTS] / [--faults]) *)
  trace : string option;
      (** Chrome trace-event JSON output path; [None] = telemetry off
          ([LP_TRACE] / [--trace]) *)
  report : string option;
      (** power-decision audit report JSON output path; [None] = report
          off ([LP_REPORT] / [--report]) *)
  no_analysis_cache : bool;
      (** escape hatch: make the analysis manager recompute every query
          instead of serving memoized results ([LP_NO_ANALYSIS_CACHE=1]
          / [--no-analysis-cache]).  Output must be byte-identical
          either way; this exists to prove it and to debug suspected
          stale-analysis miscompiles *)
  no_sim_predecode : bool;
      (** escape hatch: run the simulator's interpretive reference
          stepper instead of the closure-compiled one
          ([LP_NO_SIM_PREDECODE=1] / [--no-sim-predecode]).  Simulated
          cycles, energy and traces must be byte-identical either way;
          this exists to prove it and to bisect suspected
          predecode-compilation bugs *)
  deadline_ms : int option;
      (** cooperative wall-clock deadline for one compile+simulate
          request, in milliseconds; exceeding it surfaces as the stable
          [E_DEADLINE] diagnostic ([LP_DEADLINE_MS] / [--deadline-ms]).
          [None] = no deadline *)
  profile : bool;
      (** collect the source-level energy profile during simulation
          ([LP_PROFILE=1] / the [lpcc profile] command).  Attribution is
          a pure observer: cycles, energy ledgers and every gate that
          checks them are byte-identical with profiling on or off *)
}

(** All defaults: auto-sized pool, 2 retries, no faults, no trace, no
    report. *)
val default : t

(** {!default} overlaid with the [LP_*] environment variables
    (including [LP_REPORT]).  Only this function (and programs under
    [bin/]/[bench/]) reads the environment. *)
val from_env : unit -> t

(** [resolve ?jobs ?retries ?faults ?trace ?report ?no_analysis_cache
    base] overlays the given flags on [base]; omitted (or blank-string)
    flags keep [base]'s value.  [~no_analysis_cache:false] is treated as
    "flag absent" so the environment variable still wins. *)
val resolve :
  ?jobs:int ->
  ?retries:int ->
  ?faults:string ->
  ?trace:string ->
  ?report:string ->
  ?no_analysis_cache:bool ->
  ?no_sim_predecode:bool ->
  ?deadline_ms:int ->
  ?profile:bool ->
  t ->
  t

(** One-line rendering for logs. *)
val to_string : t -> string
