(** Cooperative deadlines and cancellation (see the interface).  The
    clock is [Unix.gettimeofday]: wall time, because a deadline is a
    service-level promise to a caller, not a CPU budget. *)

type t = {
  limit_s : float;  (** absolute [gettimeofday] seconds; [infinity] = none *)
  cancelled : bool Atomic.t;
  mutable fuel : int;
      (** calls until the next clock read; owned by the checking domain *)
}

let code = "E_DEADLINE"

let fuel_budget = 32

let none = { limit_s = Float.infinity; cancelled = Atomic.make false; fuel = 0 }

let after_ms ms =
  {
    limit_s = Unix.gettimeofday () +. (float_of_int ms /. 1e3);
    cancelled = Atomic.make false;
    fuel = 0;
  }

let cancellable () =
  { limit_s = Float.infinity; cancelled = Atomic.make false; fuel = 0 }

let cancel t = if t != none then Atomic.set t.cancelled true

let cancelled t = Atomic.get t.cancelled

let past_limit t = Unix.gettimeofday () >= t.limit_s

let expired t = t != none && (cancelled t || past_limit t)

let fail t =
  if cancelled t then
    Diag.error Diag.Driver ~code "request cancelled (deadline watchdog)"
  else Diag.error Diag.Driver ~code "deadline exceeded"

let check t =
  if t != none then begin
    if Atomic.get t.cancelled then fail t;
    t.fuel <- t.fuel - 1;
    if t.fuel <= 0 then begin
      t.fuel <- fuel_budget;
      if past_limit t then fail t
    end
  end

let remaining_ms t =
  if t == none || t.limit_s = Float.infinity then None
  else Some ((t.limit_s -. Unix.gettimeofday ()) *. 1e3)
