(** Deterministic bounded exponential backoff, shared by every retry
    path in the repository (the evaluation matrix's per-cell retry of
    PR 2 and the compile server's transient-fault retries): 4 ms, 8 ms,
    16 ms, ... capped at 50 ms.  Real enough to space retries, small
    enough for tests.  Pure: the same attempt number always yields the
    same delay. *)

(** Delay in seconds before retry number [attempt] (1-based: the delay
    after the first failed attempt is [backoff_s 1] = 4 ms). *)
val backoff_s : int -> float

(** The cap every delay saturates at (50 ms). *)
val cap_s : float
