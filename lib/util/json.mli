(** Minimal JSON value type, printer and parser (RFC 8259 subset; string
    escapes beyond ASCII [\u] codes are replaced by [?]).  Used for the
    committed benchmark baseline and by tests that re-read exported
    reports. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Pretty-printed rendering (2-space indent, trailing newline).
    Numbers print via {!num_to_string}. *)
val to_string : t -> string

(** Integral floats render without a fraction; everything else uses
    [%.17g] so a parse round-trips to the identical float. *)
val num_to_string : float -> string

(** JSON string-body escaping (no surrounding quotes). *)
val escape : string -> string

(** Raises {!Parse_error} on malformed input. *)
val of_string : string -> t

val of_string_opt : string -> t option

(** Object field lookup; [None] on non-objects and missing keys. *)
val member : string -> t -> t option

val to_float_opt : t -> float option
val to_string_opt : t -> string option

(** The list payload; [[]] on non-lists. *)
val to_list : t -> t list
