(** Minimal JSON value type, printer and parser (RFC 8259 subset; string
    escapes beyond ASCII [\u] codes are replaced by [?]).  Used for the
    committed benchmark baseline and by tests that re-read exported
    reports. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Pretty-printed rendering (2-space indent, trailing newline).
    Numbers print via {!num_to_string}. *)
val to_string : t -> string

(** One-line rendering (no whitespace, no trailing newline) for
    line-delimited protocols: the rendered text never contains a raw
    newline, so one value = one frame. *)
val to_compact_string : t -> string

(** Integral floats render without a fraction; everything else uses
    [%.17g] so a parse round-trips to the identical float. *)
val num_to_string : float -> string

(** JSON string-body escaping (no surrounding quotes). *)
val escape : string -> string

(** Raises {!Parse_error} on malformed input — and {e only}
    [Parse_error]: the parser is hardened against adversarial input
    (deep nesting, overlong strings and number tokens, truncated
    frames), so no raw exception (in particular no [Stack_overflow])
    escapes.  [max_depth] bounds container nesting (default
    {!default_max_depth}); [max_string] bounds each decoded string's
    length in bytes (default {!default_max_string}). *)
val of_string : ?max_depth:int -> ?max_string:int -> string -> t

val of_string_opt : ?max_depth:int -> ?max_string:int -> string -> t option

(** Default nesting bound (512 levels). *)
val default_max_depth : int

(** Default per-string byte bound (8 MiB). *)
val default_max_string : int

(** Object field lookup; [None] on non-objects and missing keys. *)
val member : string -> t -> t option

val to_float_opt : t -> float option
val to_string_opt : t -> string option

(** The list payload; [[]] on non-lists. *)
val to_list : t -> t list
