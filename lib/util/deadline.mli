(** Cooperative deadlines and cancellation.

    A [t] is a cancellation token created at a request's entry point and
    threaded (via [Lowpower.Compile.ctx]) through the long-running loops
    of the pipeline: the pass fixpoint and the simulator scheduler both
    call {!check} periodically.  When the token's wall-clock deadline has
    passed — or another domain {!cancel}led it (the compile server's
    stuck-request watchdog) — the next {!check} raises a structured
    {!Diag.Error} with the stable code {!code} ([E_DEADLINE]), which the
    usual [*_result] entry points return as a diagnostic.

    Cancellation is cooperative: nothing is interrupted mid-instruction,
    the worked-on program is simply abandoned at the next check point, so
    shared state (caches, pools) is never left mid-mutation.

    {!check} is engineered for hot loops: on {!none} it is one physical
    equality test, and on a live token it reads the clock only every few
    dozen calls (an [Atomic] cancellation flag is still read every call,
    so a watchdog {!cancel} lands promptly). *)

type t

(** The no-deadline token: {!check} returns immediately, {!cancel} is
    ignored.  The default everywhere a token is optional. *)
val none : t

(** [after_ms ms] starts a token expiring [ms] milliseconds from now
    ([ms <= 0] is already expired).  Each token is meant to be checked by
    one domain at a time; {!cancel}/{!cancelled} may be called from any
    domain. *)
val after_ms : int -> t

(** A token with no clock deadline that can still be {!cancel}led — the
    compile server gives one to every deadline-less request so its
    stuck-request watchdog has a handle to pull. *)
val cancellable : unit -> t

(** Cancel from outside (watchdog, drain): the owning domain's next
    {!check} raises. *)
val cancel : t -> unit

(** Whether {!cancel} was called. *)
val cancelled : t -> bool

(** Non-raising probe: cancelled, or past the deadline (reads the
    clock unconditionally — not for hot loops). *)
val expired : t -> bool

(** Raise [Diag.Error] (stage [Driver], code [E_DEADLINE]) if the token
    is cancelled or past its deadline; otherwise return.  Paced: the
    clock is consulted once per {!fuel_budget} calls. *)
val check : t -> unit

(** Milliseconds left; [None] on {!none} or a token without a clock
    deadline. *)
val remaining_ms : t -> float option

(** The stable diagnostic code {!check} raises with. *)
val code : string

(** Calls between clock reads in {!check} (exposed for tests). *)
val fuel_budget : int
