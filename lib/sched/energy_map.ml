(** Energy-aware refinement of a static schedule.

    Given a list schedule and a deadline (typically the makespan padded by
    an allowed slack), assign each task the energy-minimal operating point
    that keeps every path within the deadline.  This is the task-graph
    counterpart of the pipeline balancing pass: slack anywhere in the
    schedule is converted into voltage reduction.

    The estimate model matches the simulator: stretching a task at point
    [p] scales only the compute fraction ([1 - mem_fraction]); dynamic
    energy scales with [v^2]; leakage of the task's components accrues
    over its (stretched) duration. *)

module Machine = Lp_machine.Machine
module Power_model = Lp_power.Power_model
module Operating_point = Lp_power.Operating_point
module Component = Lp_power.Component

type assignment = {
  atask : int;
  level : int;
  stretched_cycles : float;
}

type result = {
  assignments : assignment array;
  baseline_energy_nj : float;   (** everything at nominal *)
  scaled_energy_nj : float;     (** with the chosen levels *)
  deadline_cycles : float;
}

let stretch (pm : Power_model.t) (tk : Taskgraph.task) (p : Operating_point.t) =
  let nominal = Power_model.nominal pm in
  let mu = tk.Taskgraph.mem_fraction in
  tk.Taskgraph.work_cycles
  *. (((1.0 -. mu)
       *. (nominal.Operating_point.freq_mhz /. p.Operating_point.freq_mhz))
      +. mu)

(** Estimated energy of one task at point [p] under [pm] — the power
    model of the class of the core the task is placed on: dynamic
    (approximated as one op per cycle on its dominant components) plus
    leakage of its components over the stretched duration. *)
let task_energy (pm : Power_model.t) (tk : Taskgraph.task) (p : Operating_point.t) =
  let ns = Operating_point.ns_of_cycles p (int_of_float (stretch pm tk p)) in
  let dyn =
    Power_model.dynamic_energy pm ~comp:Component.Alu ~point:p
      ~ops:(int_of_float tk.Taskgraph.work_cycles)
  in
  let leak =
    Component.Set.fold
      (fun c acc -> acc +. Power_model.leakage_energy pm ~comp:c ~point:p ~ns)
      tk.Taskgraph.components 0.0
  in
  dyn +. leak

(** Longest path through the schedule if each task takes
    [duration tid] cycles, respecting the schedule's core assignment
    order and dependencies. *)
let path_length (s : List_sched.schedule) (duration : int -> float) : float =
  let g = s.List_sched.graph in
  let order = Taskgraph.topo_order g in
  let finish = Array.make (Taskgraph.n_tasks g) 0.0 in
  (* also respect same-core ordering from the original schedule *)
  let same_core_pred tid =
    let p = s.List_sched.placements.(tid) in
    Array.to_list s.List_sched.placements
    |> List.filter (fun q ->
           q.List_sched.core = p.List_sched.core
           && q.List_sched.finish_cycles <= p.List_sched.start_cycles +. 1e-9
           && q.List_sched.ptask <> tid)
    |> List.map (fun q -> q.List_sched.ptask)
  in
  List.iter
    (fun v ->
      let ready_deps =
        List.fold_left
          (fun acc (e : Taskgraph.edge) ->
            let extra =
              if
                s.List_sched.placements.(e.Taskgraph.src).List_sched.core
                = s.List_sched.placements.(v).List_sched.core
              then 0.0
              else List_sched.comm_cycles s.List_sched.machine e.Taskgraph.words
            in
            Float.max acc (finish.(e.Taskgraph.src) +. extra))
          0.0 (Taskgraph.preds g v)
      in
      let ready_core =
        List.fold_left
          (fun acc q -> Float.max acc finish.(q))
          0.0 (same_core_pred v)
      in
      finish.(v) <- Float.max ready_deps ready_core +. duration v)
    order;
  Array.fold_left Float.max 0.0 finish

(** Greedy slack reclamation: visit tasks in decreasing work order and
    move each to its energy-minimal deadline-feasible level. *)
let run ~(slack : float) (s : List_sched.schedule) : result =
  let m = s.List_sched.machine in
  let g = s.List_sched.graph in
  let n = Taskgraph.n_tasks g in
  (* each task scales within the ladder of the core class it is placed
     on — heterogeneous machines refine big and little cores with their
     own points *)
  let pm_of tid =
    Machine.power_of_core m s.List_sched.placements.(tid).List_sched.core
  in
  let deadline = s.List_sched.makespan_cycles *. (1.0 +. slack) in
  let levels =
    Array.init n (fun v ->
        (Power_model.nominal (pm_of v)).Operating_point.level)
  in
  let duration tid =
    let pm = pm_of tid in
    stretch pm (Taskgraph.task g tid) (Power_model.point pm levels.(tid))
  in
  let order =
    List.sort
      (fun a b ->
        compare
          (Taskgraph.task g b).Taskgraph.work_cycles
          (Taskgraph.task g a).Taskgraph.work_cycles)
      (List.init n Fun.id)
  in
  List.iter
    (fun v ->
      (* among deadline-feasible levels, pick the energy-minimal one: the
         slowest point is not always best, because leakage accrues over
         the stretched duration *)
      let tk = Taskgraph.task g v in
      let pm = pm_of v in
      let best = ref None in
      List.iter
        (fun (p : Operating_point.t) ->
          let saved = levels.(v) in
          levels.(v) <- p.Operating_point.level;
          if path_length s duration <= deadline then begin
            let e = task_energy pm tk p in
            match !best with
            | Some (_, be) when be <= e -> ()
            | _ -> best := Some (p.Operating_point.level, e)
          end;
          levels.(v) <- saved)
        (Power_model.points pm);
      match !best with
      | Some (lvl, _) -> levels.(v) <- lvl
      | None -> ())
    order;
  let energy_at lv_of =
    List.fold_left
      (fun acc v ->
        let pm = pm_of v in
        acc
        +. task_energy pm (Taskgraph.task g v)
             (Power_model.point pm (lv_of v)))
      0.0 (List.init n Fun.id)
  in
  {
    assignments =
      Array.init n (fun v ->
          { atask = v; level = levels.(v); stretched_cycles = duration v });
    baseline_energy_nj =
      energy_at (fun v ->
          (Power_model.nominal (pm_of v)).Operating_point.level);
    scaled_energy_nj = energy_at (fun v -> levels.(v));
    deadline_cycles = deadline;
  }
