(** HEFT-style list scheduling of a task graph onto a (possibly
    heterogeneous) multicore machine.

    Tasks are considered in decreasing upward rank; each is placed on the
    core that minimises its finish time, accounting for inter-core data
    transfers over the machine's links (intra-core edges are free) and
    for each core class's performance scale (a task costs
    [work * perf_scale] cycles on that core).  The result is costed in
    reference-clock cycles, comparable with the simulator's timing
    model. *)

module Machine = Lp_machine.Machine

type placement = {
  ptask : int;
  core : int;
  start_cycles : float;
  finish_cycles : float;
}

type schedule = {
  graph : Taskgraph.t;
  machine : Machine.t;
  placements : placement array;  (** indexed by task id *)
  makespan_cycles : float;
}

(* a transfer takes the cheaper of word-by-word bus traffic and a DMA
   block transfer (setup once, then stream) — the machine's DMA engine
   makes big double-buffered transfers cheaper than bus word cost *)
let comm_cycles (m : Machine.t) words =
  float_of_int
    (m.Machine.bus_latency_cycles
    + min (words * m.Machine.bus_word_cycles)
        (Machine.dma_transfer_cycles m ~words))

let placement s tid = s.placements.(tid)

let run ~(machine : Machine.t) (g : Taskgraph.t) : schedule =
  let n = Taskgraph.n_tasks g in
  let n_cores = Machine.n_cores machine in
  (* cycles a unit of work costs on each core (class perf scale);
     multiplying by 1.0 is bitwise identity, so single-class machines
     schedule exactly as before *)
  let scales = Array.init n_cores (Machine.perf_scale_of_core machine) in
  let ranks = Taskgraph.upward_ranks g in
  (* priority order: decreasing rank, but never scheduling a task before
     its predecessors (rank order guarantees it for acyclic graphs) *)
  let order =
    List.sort
      (fun a b -> compare (ranks.(b), a) (ranks.(a), b))
      (List.init n Fun.id)
  in
  let core_free = Array.make n_cores 0.0 in
  let placements = Array.make n { ptask = 0; core = 0; start_cycles = 0.0; finish_cycles = 0.0 } in
  let placed = Array.make n false in
  List.iter
    (fun v ->
      let tk = Taskgraph.task g v in
      (* earliest start on each core: predecessors must have finished,
         plus transfer time if they ran elsewhere *)
      let best = ref None in
      for c = 0 to n_cores - 1 do
        let ready =
          List.fold_left
            (fun acc (e : Taskgraph.edge) ->
              if not placed.(e.Taskgraph.src) then
                invalid_arg "List_sched: predecessor not yet placed";
              let p = placements.(e.Taskgraph.src) in
              let arrival =
                p.finish_cycles
                +. (if p.core = c then 0.0 else comm_cycles machine e.Taskgraph.words)
              in
              Float.max acc arrival)
            0.0 (Taskgraph.preds g v)
        in
        let start = Float.max ready core_free.(c) in
        let finish = start +. (tk.Taskgraph.work_cycles *. scales.(c)) in
        match !best with
        | Some (_, _, bf) when bf <= finish -> ()
        | _ -> best := Some (c, start, finish)
      done;
      (match !best with
      | Some (c, start, finish) ->
        placements.(v) <- { ptask = v; core = c; start_cycles = start; finish_cycles = finish };
        core_free.(c) <- finish;
        placed.(v) <- true
      | None -> invalid_arg "List_sched: machine has no cores"))
    order;
  let makespan =
    Array.fold_left (fun acc p -> Float.max acc p.finish_cycles) 0.0 placements
  in
  { graph = g; machine; placements; makespan_cycles = makespan }

(** Validity check used by tests: dependencies respected, no core runs
    two tasks at once. *)
let validate (s : schedule) : unit =
  let g = s.graph in
  List.iter
    (fun (e : Taskgraph.edge) ->
      let p = s.placements.(e.Taskgraph.src) in
      let q = s.placements.(e.Taskgraph.dst) in
      let needed =
        p.finish_cycles
        +. (if p.core = q.core then 0.0 else comm_cycles s.machine e.Taskgraph.words)
      in
      if q.start_cycles +. 1e-9 < needed then
        invalid_arg
          (Printf.sprintf "dependency %d->%d violated" e.Taskgraph.src
             e.Taskgraph.dst))
    g.Taskgraph.edges;
  let by_core = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_core p.core) in
      Hashtbl.replace by_core p.core (p :: cur))
    s.placements;
  Hashtbl.iter
    (fun _ ps ->
      let sorted = List.sort (fun a b -> compare a.start_cycles b.start_cycles) ps in
      ignore
        (List.fold_left
           (fun prev_finish p ->
             if p.start_cycles +. 1e-9 < prev_finish then
               invalid_arg "core overlap";
             p.finish_cycles)
           0.0 sorted))
    by_core

(** Number of cores that actually received work. *)
let cores_used (s : schedule) =
  Array.to_list s.placements
  |> List.map (fun p -> p.core)
  |> List.sort_uniq compare |> List.length
