(** Energy-aware refinement of a static schedule: convert slack under a
    deadline into lower per-task operating points (the task-graph
    counterpart of pipeline stage balancing). *)

module Machine = Lp_machine.Machine
module Operating_point = Lp_power.Operating_point

type assignment = {
  atask : int;
  level : int;               (** chosen operating level *)
  stretched_cycles : float;  (** duration at that level *)
}

type result = {
  assignments : assignment array;  (** indexed by task id *)
  baseline_energy_nj : float;      (** estimate with everything nominal *)
  scaled_energy_nj : float;        (** estimate with the chosen levels *)
  deadline_cycles : float;
}

(** Estimated duration of a task at an operating point (only the compute
    fraction stretches). *)
val stretch :
  Lp_power.Power_model.t -> Taskgraph.task -> Operating_point.t -> float

(** Estimated energy of one task at a point under the power model of the
    class of the core it runs on (dynamic + component leakage over the
    stretched duration). *)
val task_energy :
  Lp_power.Power_model.t -> Taskgraph.task -> Operating_point.t -> float

(** Longest path through the schedule under per-task durations,
    respecting both graph edges and same-core ordering. *)
val path_length : List_sched.schedule -> (int -> float) -> float

(** [run ~slack s]: deadline = makespan * (1 + slack); each task (heaviest
    first) moves to its energy-minimal deadline-feasible level. *)
val run : slack:float -> List_sched.schedule -> result
