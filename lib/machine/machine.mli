(** Embedded multicore machine descriptions: one or more {e core
    classes} (each with its own power model, DVFS ladder and performance
    scale), per-component power gating, a shared bus to a tiered shared
    memory, per-core local stores (scratchpad or cache), and dedicated
    inter-core mailbox links. *)

module Component = Lp_power.Component
module Power_model = Lp_power.Power_model

(** A group of identical cores.  Core ids are laid out class by class:
    class 0 owns cores [0 .. cc_count-1], class 1 the next ids, and so
    on — the order of [classes] therefore decides which cores receive
    the program's entry functions first. *)
type core_class = {
  cc_name : string;              (** e.g. ["core"], ["big"], ["little"] *)
  cc_count : int;
  cc_power : Power_model.t;      (** power model and DVFS ladder *)
  cc_perf_scale : float;
      (** cycles this class needs per reference cycle of work (1.0 =
          reference pipeline; an in-order little core is > 1.0) *)
}

(** One shared-memory tier behind the bus. *)
type mem_tier = {
  tier_latency_cycles : int;     (** array access beyond the bus *)
  tier_energy_per_access_nj : float;
      (** charged per access on top of the bus word energy *)
}

(** Per-core local store.  A scratchpad is software-managed with an
    explicit DMA engine (block transfers pay setup once, then stream);
    a cache hits at a fixed latency and pays a deterministic periodic
    miss penalty (a first-order stand-in for a real miss stream). *)
type local_store =
  | Scratchpad of {
      spm_latency_cycles : int;
      dma_setup_cycles : int;    (** per DMA block transfer *)
      dma_word_cycles : int;     (** per word streamed by the DMA *)
    }
  | Cache of {
      hit_latency_cycles : int;
      miss_penalty_cycles : int;
      miss_period : int;         (** every [miss_period]-th access misses *)
      miss_energy_nj : float;
    }

(** The memory subsystem: every shared symbol lives in the near tier
    unless it is at least [far_threshold_words] words long and a far
    tier exists, in which case it is placed far (capacity pressure:
    only big arrays spill to the far/slow pool). *)
type memory = {
  near : mem_tier;
  far : mem_tier option;
  far_threshold_words : int;
  local : local_store;
}

type t = {
  name : string;
  classes : core_class array;       (** non-empty; see {!core_class} *)
  components : Component.t list;    (** components present in each core *)
  bus_latency_cycles : int;         (** base bus transaction latency *)
  bus_word_cycles : int;            (** additional cycles per word *)
  bus_energy_per_word_nj : float;
  mem : memory;
  channel_setup_cycles : int;       (** per send/recv handshake *)
}

(** Total cores across all classes. *)
val n_cores : t -> int

(** Class index owning core [id]; raises [Invalid_argument] when out of
    range. *)
val class_index_of_core : t -> int -> int

val class_of_core : t -> int -> core_class
val power_of_core : t -> int -> Power_model.t
val perf_scale_of_core : t -> int -> float

(** Power model of class 0 — the machine's reference clock: bus and
    shared-memory latencies are expressed in nominal cycles of this
    model.  On a single-class machine this is {e the} power model. *)
val ref_power : t -> Power_model.t

(** Exactly one core class. *)
val homogeneous : t -> bool

(** Near-tier shared-memory latency (what a shared access beyond the
    bus costs, before any far-tier surcharge). *)
val shared_mem_latency_cycles : t -> int

(** Local-store access latency (scratchpad latency / cache hit). *)
val spm_latency_cycles : t -> int

(** The tier a shared allocation of [words] words lands in. *)
val tier_of_words : t -> int -> mem_tier

(** True when an allocation of [words] words lives in the far tier. *)
val is_far : t -> int -> bool

(** Cycles of one DMA block transfer of [words] words (setup + stream).
    On a cache machine this falls back to bus word-by-word cost. *)
val dma_transfer_cycles : t -> words:int -> int

(** Raises [Invalid_argument] on inconsistent descriptions (no classes,
    empty class, no ALU, duplicate/overlapping ladder levels, bad perf
    scale, bad memory tiers); all constructors below validate. *)
val validate : t -> t

(** Generic embedded multicore (default 4 cores), used by the main
    evaluation.  Single class named ["core"]. *)
val generic : ?name:string -> ?n_cores:int -> ?power:Power_model.t -> unit -> t

(** PAC-Duo-flavoured 2-core DSP: no FPU, slower bus. *)
val pac_duo_like : unit -> t

(** 8 cores on a leakage-heavy node (3x leakage). *)
val octa_leaky : unit -> t

(** big.LITTLE pair: 4 reference cores plus 4 in-order efficiency cores
    with their own (slower, lower-voltage) DVFS ladder. *)
val biglittle : unit -> t

(** Tiered-memory 4-core machine: shared arrays of at least 1024 words
    spill to a far tier with extra latency and per-access energy. *)
val farmem : unit -> t

(** Resize a single-class machine; raises [Invalid_argument] on
    heterogeneous machines (resizing would have to pick a class). *)
val with_cores : t -> int -> t

(** Replace the power model of every class (homogeneous convenience). *)
val with_power : t -> Power_model.t -> t

val has_component : t -> Component.t -> bool

(** Clamp a requested core count to what the machine offers, warning on
    stderr when the clamp actually fires ([warn:false] silences it). *)
val clamp_cores : ?warn:bool -> t -> int -> int

(** The machine zoo: CLI name, one-line description, constructor.  The
    constructor's [cores] hint only affects machines that scale (the
    generic one); fixed-shape machines ignore it. *)
val registry : (string * string * (?cores:int -> unit -> t)) list

(** CLI names of every zoo machine, in registry order. *)
val names : string list

(** Look a machine up by zoo name ([of_name "pacduo"]); [None] for
    unknown names so callers keep their own stable errors.  Accepts the
    alias ["octa"] for ["octa-leaky"]. *)
val of_name : ?cores:int -> string -> t option

(** Multi-line description: classes, ladders, memory tiers, bus. *)
val pp : Format.formatter -> t -> unit
