(** Embedded multicore machine descriptions.

    A machine is an array of {e core classes} — groups of identical
    cores, each class with its own set of gateable components' power
    model, its own DVFS ladder and a performance scale — connected by a
    shared bus to a tiered shared memory; each core also has a private
    local store (scratchpad or cache).  Inter-core communication uses
    hardware channels (mailbox/DMA style) whose cost is charged on the
    bus.

    Core ids are laid out class by class: class 0 owns cores
    [0 .. cc_count-1], the next class the following ids, and so on.
    Class 0 is the machine's reference clock — bus and memory latencies
    are nominal cycles of its power model. *)

module Component = Lp_power.Component
module Power_model = Lp_power.Power_model
module Operating_point = Lp_power.Operating_point

type core_class = {
  cc_name : string;
  cc_count : int;
  cc_power : Power_model.t;
  cc_perf_scale : float;
}

type mem_tier = {
  tier_latency_cycles : int;
  tier_energy_per_access_nj : float;
}

type local_store =
  | Scratchpad of {
      spm_latency_cycles : int;
      dma_setup_cycles : int;
      dma_word_cycles : int;
    }
  | Cache of {
      hit_latency_cycles : int;
      miss_penalty_cycles : int;
      miss_period : int;
      miss_energy_nj : float;
    }

type memory = {
  near : mem_tier;
  far : mem_tier option;
  far_threshold_words : int;
  local : local_store;
}

type t = {
  name : string;
  classes : core_class array;
  components : Component.t list;
  bus_latency_cycles : int;
  bus_word_cycles : int;
  bus_energy_per_word_nj : float;
  mem : memory;
  channel_setup_cycles : int;
}

let n_cores t =
  Array.fold_left (fun acc cc -> acc + cc.cc_count) 0 t.classes

let class_index_of_core t id =
  let rec go k first =
    if k >= Array.length t.classes then
      invalid_arg
        (Printf.sprintf "Machine.class_index_of_core: core %d of %d" id
           (n_cores t))
    else if id < first + t.classes.(k).cc_count then k
    else go (k + 1) (first + t.classes.(k).cc_count)
  in
  if id < 0 then
    invalid_arg (Printf.sprintf "Machine.class_index_of_core: core %d" id)
  else go 0 0

let class_of_core t id = t.classes.(class_index_of_core t id)
let power_of_core t id = (class_of_core t id).cc_power
let perf_scale_of_core t id = (class_of_core t id).cc_perf_scale
let ref_power t = t.classes.(0).cc_power
let homogeneous t = Array.length t.classes = 1

let shared_mem_latency_cycles t = t.mem.near.tier_latency_cycles

let spm_latency_cycles t =
  match t.mem.local with
  | Scratchpad { spm_latency_cycles = l; _ } -> l
  | Cache { hit_latency_cycles = l; _ } -> l

let tier_of_words t words =
  match t.mem.far with
  | Some far when words >= t.mem.far_threshold_words -> far
  | Some _ | None -> t.mem.near

let is_far t words =
  match t.mem.far with
  | Some _ -> words >= t.mem.far_threshold_words
  | None -> false

let dma_transfer_cycles t ~words =
  match t.mem.local with
  | Scratchpad { dma_setup_cycles; dma_word_cycles; _ } ->
    dma_setup_cycles + (words * dma_word_cycles)
  | Cache _ -> t.bus_latency_cycles + (words * t.bus_word_cycles)

let validate t =
  if Array.length t.classes < 1 then
    invalid_arg "Machine: no core classes";
  Array.iter
    (fun cc ->
      if cc.cc_count < 1 then
        invalid_arg
          (Printf.sprintf "Machine: class %s is empty" cc.cc_name);
      if not (cc.cc_perf_scale > 0.0 && Float.is_finite cc.cc_perf_scale)
      then
        invalid_arg
          (Printf.sprintf "Machine: class %s has perf scale %g" cc.cc_name
             cc.cc_perf_scale);
      (* overlapping (duplicate) ladder levels would make a [dvfs l]
         instruction ambiguous on this class *)
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (p : Operating_point.t) ->
          let l = p.Operating_point.level in
          if Hashtbl.mem seen l then
            invalid_arg
              (Printf.sprintf
                 "Machine: class %s ladder has overlapping level %d"
                 cc.cc_name l);
          Hashtbl.replace seen l ())
        (Power_model.points cc.cc_power))
    t.classes;
  if t.components = [] then invalid_arg "Machine: no components";
  if not (List.mem Component.Alu t.components) then
    invalid_arg "Machine: cores must have an ALU";
  if t.mem.near.tier_latency_cycles < 0 then
    invalid_arg "Machine: negative near-tier latency";
  (match t.mem.far with
  | Some far ->
    if far.tier_latency_cycles < 0 then
      invalid_arg "Machine: negative far-tier latency";
    if t.mem.far_threshold_words < 1 then
      invalid_arg "Machine: far tier needs a positive size threshold"
  | None -> ());
  t

(* Memory subsystems of the classic machines: near tier reproducing the
   former flat shared memory (no per-access surcharge), no far tier,
   a 1-cycle scratchpad with a word-streaming DMA engine. *)
let classic_mem ?(near_latency = 12) ?(spm_latency = 1) () =
  {
    near =
      { tier_latency_cycles = near_latency; tier_energy_per_access_nj = 0.0 };
    far = None;
    far_threshold_words = 1024;
    local =
      Scratchpad
        { spm_latency_cycles = spm_latency; dma_setup_cycles = 24;
          dma_word_cycles = 1 };
  }

(** Generic embedded multicore with [n_cores] cores.  This is the machine
    used by the main evaluation; 4 cores by default. *)
let generic ?(name = "generic") ?(n_cores = 4) ?(power = Power_model.default ())
    () =
  if n_cores < 1 then invalid_arg "Machine: n_cores must be >= 1";
  validate
    {
      name = Printf.sprintf "%s-%dc" name n_cores;
      classes =
        [| { cc_name = "core"; cc_count = n_cores; cc_power = power;
             cc_perf_scale = 1.0 } |];
      components = Component.all;
      bus_latency_cycles = 8;
      bus_word_cycles = 2;
      bus_energy_per_word_nj = 0.5;
      mem = classic_mem ();
      channel_setup_cycles = 10;
    }

(** A PAC-Duo-flavoured configuration: 2 DSP cores, no FPU (floating point
    is done in fixed point on the MAC), slightly slower bus. *)
let pac_duo_like () =
  validate
    {
      name = "pacduo-2c";
      classes =
        [| { cc_name = "dsp"; cc_count = 2;
             cc_power = Power_model.default ~n_levels:4 ();
             cc_perf_scale = 1.0 } |];
      components =
        [ Component.Alu; Component.Multiplier; Component.Divider;
          Component.Mac; Component.Shifter; Component.Load_store;
          Component.Branch_unit ];
      bus_latency_cycles = 10;
      bus_word_cycles = 3;
      bus_energy_per_word_nj = 0.6;
      mem = classic_mem ~near_latency:16 ();
      channel_setup_cycles = 12;
    }

(** Cluster of 8 small cores on a leakage-heavy node, for the sensitivity
    experiments. *)
let octa_leaky () =
  validate
    {
      (generic ~name:"octa-leaky" ~n_cores:8 ~power:(Power_model.leaky ()) ()) with
      bus_latency_cycles = 12;
    }

(** big.LITTLE pair: 4 reference cores and 4 in-order efficiency cores.
    The little class runs its own slower, lower-voltage ladder and needs
    1.5 cycles per reference cycle of work. *)
let biglittle () =
  validate
    {
      name = "biglittle-4+4";
      classes =
        [| { cc_name = "big"; cc_count = 4;
             cc_power = Power_model.default ();
             cc_perf_scale = 1.0 };
           { cc_name = "little"; cc_count = 4;
             cc_power = Power_model.little ();
             cc_perf_scale = 1.5 } |];
      components = Component.all;
      bus_latency_cycles = 8;
      bus_word_cycles = 2;
      bus_energy_per_word_nj = 0.5;
      mem = classic_mem ();
      channel_setup_cycles = 10;
    }

(** Tiered-memory machine: 4 generic cores whose big shared arrays
    (>= 1024 words) live in a far pool with extra latency and a real
    per-access energy — CXL-flavoured capacity memory.  The local store
    is a small cache rather than a scratchpad: every 64th local access
    pays a deterministic miss. *)
let farmem () =
  validate
    {
      name = "farmem-4c";
      classes =
        [| { cc_name = "core"; cc_count = 4;
             cc_power = Power_model.default ();
             cc_perf_scale = 1.0 } |];
      components = Component.all;
      bus_latency_cycles = 8;
      bus_word_cycles = 2;
      bus_energy_per_word_nj = 0.5;
      mem =
        {
          near =
            { tier_latency_cycles = 12; tier_energy_per_access_nj = 0.0 };
          far =
            Some
              { tier_latency_cycles = 48; tier_energy_per_access_nj = 1.5 };
          far_threshold_words = 1024;
          local =
            Cache
              { hit_latency_cycles = 1; miss_penalty_cycles = 18;
                miss_period = 64; miss_energy_nj = 0.8 };
        };
      channel_setup_cycles = 10;
    }

let with_cores t n =
  if Array.length t.classes <> 1 then
    invalid_arg "Machine.with_cores: heterogeneous machine";
  validate
    {
      t with
      classes = [| { t.classes.(0) with cc_count = n } |];
      name = Printf.sprintf "%s@%dc" t.name n;
    }

let with_power t power =
  { t with classes = Array.map (fun cc -> { cc with cc_power = power }) t.classes }

let has_component t c = List.mem c t.components

let clamp_cores ?(warn = true) t requested =
  let avail = n_cores t in
  if requested > avail then begin
    if warn then
      Printf.eprintf
        "warning: machine %s has %d cores; clamping requested %d\n%!" t.name
        avail requested;
    avail
  end
  else requested

let registry :
    (string * string * (?cores:int -> unit -> t)) list =
  [
    ( "generic", "generic embedded multicore (default 4 cores)",
      fun ?(cores = 4) () -> generic ~n_cores:(max cores 4) () );
    ( "pacduo", "PAC-Duo-flavoured 2-core DSP: no FPU, slower bus",
      fun ?cores:_ () -> pac_duo_like () );
    ( "octa-leaky", "8 cores on a leakage-heavy node (3x leakage)",
      fun ?cores:_ () -> octa_leaky () );
    ( "biglittle", "4 big + 4 little cores with distinct DVFS ladders",
      fun ?cores:_ () -> biglittle () );
    ( "farmem", "4 cores with near/far tiered shared memory and a cache",
      fun ?cores:_ () -> farmem () );
  ]

let names = List.map (fun (n, _, _) -> n) registry

let of_name ?cores name =
  let name = if name = "octa" then "octa-leaky" else name in
  List.find_map
    (fun (n, _, mk) -> if n = name then Some (mk ?cores ()) else None)
    registry

let pp fmt t =
  Format.fprintf fmt "%s: %d cores, %d components@\n" t.name (n_cores t)
    (List.length t.components);
  Array.iter
    (fun cc ->
      Format.fprintf fmt "  class %-7s x%d  perf x%.2f  ladder %s@\n"
        cc.cc_name cc.cc_count cc.cc_perf_scale
        (Power_model.describe_ladder cc.cc_power))
    t.classes;
  (match t.mem.local with
  | Scratchpad { spm_latency_cycles; dma_setup_cycles; dma_word_cycles } ->
    Format.fprintf fmt
      "  local: scratchpad %dcy, DMA %d+%d/word cy@\n" spm_latency_cycles
      dma_setup_cycles dma_word_cycles
  | Cache { hit_latency_cycles; miss_penalty_cycles; miss_period;
            miss_energy_nj } ->
    Format.fprintf fmt
      "  local: cache hit %dcy, miss +%dcy/%.2fnJ every %d accesses@\n"
      hit_latency_cycles miss_penalty_cycles miss_energy_nj miss_period);
  Format.fprintf fmt "  shared: near +%dcy/%.2fnJ" t.mem.near.tier_latency_cycles
    t.mem.near.tier_energy_per_access_nj;
  (match t.mem.far with
  | Some far ->
    Format.fprintf fmt ", far +%dcy/%.2fnJ for arrays >= %d words"
      far.tier_latency_cycles far.tier_energy_per_access_nj
      t.mem.far_threshold_words
  | None -> ());
  Format.fprintf fmt "@\n  bus: %d+%d/word cy, %.2f nJ/word; channel setup %d cy"
    t.bus_latency_cycles t.bus_word_cycles t.bus_energy_per_word_nj
    t.channel_setup_cycles
