(** Energy-aware phase-ordering autotuner over {!Lowpower.Pipeline.t}.

    PR 5 made the optimisation schedule a first-class data value; this
    module searches that space.  The search is seeded hill-climbing with
    random restarts: from the flattened default schedule it proposes a
    fixed-size round of mutated candidates (swap/move/drop/duplicate a
    step, split or merge a [fix(...)] group), evaluates each through
    [Compile.run_result] and the simulator's energy ledger (objective:
    total energy in nJ, total compute cycles as tie-break), and moves to
    the best strict improvement.  After [restart_after] stalled rounds
    it restarts from a seeded shuffle of the starting schedule.

    Determinism: all randomness comes from one {!Lp_util.Rng} seeded
    from [seed] and the workload name, candidates are generated
    sequentially and only their (deterministic) evaluations fan out over
    {!Lp_util.Domain_pool.parallel_map}, so the tuned schedule and every
    reported statistic are byte-identical whatever the pool size.
    Duplicate candidates are never re-simulated: evaluations are memoised
    per spec string, exactly the cell discipline of [Exp_common].

    Observability: runs add the [tune.candidates], [tune.cache_hits] and
    [tune.improved] counters to the context's recorder
    (docs/OBSERVABILITY.md). *)

module Compile = Lowpower.Compile
module Pipeline = Lowpower.Pipeline
module Machine = Lp_machine.Machine
module Workload = Lp_workloads.Workload

(** What the search minimises: ledger energy first, compute cycles as
    the tie-break. *)
type objective = { energy_nj : float; cycles : int }

(** [better a b] — is [a] strictly better than [b]? *)
val better : objective -> objective -> bool

type config = {
  budget : int;
      (** maximum number of unique schedule evaluations per workload
          (the baseline evaluation counts; cache hits do not) *)
  seed : int;
  round_size : int;  (** candidates proposed per hill-climbing round *)
  restart_after : int;  (** stalled rounds before a random restart *)
  config_name : string;  (** label for tables/JSON, e.g. ["baseline"] *)
  opts : Compile.options;
      (** compiler configuration the candidates run under; its
          [pipeline] (default schedule when [None]) is the starting
          point and the baseline *)
  machine : Machine.t;
}

(** Defaults: budget 100, seed 1, round size 8, restart after 4 stalls,
    [Compile.baseline] on the generic 4-core machine. *)
val default_config :
  ?budget:int ->
  ?seed:int ->
  ?round_size:int ->
  ?restart_after:int ->
  ?config_name:string ->
  ?opts:Compile.options ->
  ?machine:Machine.t ->
  unit ->
  config

(** Workloads [lpcc tune] tunes when none are named: one the default
    schedule already saturates (fir — the tuner should report [=]) and
    three with nested loops or multi-phase structure where pass
    ordering is a real energy lever (conv2d, jpegblocks, fft). *)
val default_workloads : string list

(** One random mutation of a flat schedule: swap, move, drop or
    duplicate a step, split a [fix(...)] group, or merge two adjacent
    steps into one group.  Never returns an empty schedule; input must
    be flat ({!Pipeline.flatten}) and non-empty.  Exposed for the
    property tests. *)
val mutate : Lp_util.Rng.t -> Pipeline.t -> Pipeline.t

type workload_result = {
  tw_workload : string;
  tw_baseline : objective;  (** the default (starting) schedule *)
  tw_best : objective;
  tw_best_spec : string;  (** one-line spec of the best schedule *)
  tw_candidates : int;  (** mutation proposals generated *)
  tw_evaluated : int;  (** unique schedules compiled + simulated *)
  tw_cache_hits : int;  (** proposals answered from the memo cache *)
  tw_restarts : int;
}

(** Did the search find a schedule strictly better than the baseline? *)
val improved : workload_result -> bool

(** Energy saved relative to the baseline, in percent (>= 0). *)
val improvement_pct : workload_result -> float

type summary = {
  t_seed : int;
  t_budget : int;
  t_config : string;
  t_machine : string;
  t_workloads : workload_result list;
}

(** Tune one workload.  Evaluations fan out over [pool] (default: the
    shared default pool); a [jobs:1] pool runs them inline, which is
    what the compile server uses from inside its own worker.  [Error]
    only when the baseline itself fails to compile or the context
    deadline expires ([E_DEADLINE]); infeasible candidates just lose. *)
val tune_workload :
  ?ctx:Compile.ctx ->
  ?pool:Lp_util.Domain_pool.t ->
  config ->
  Workload.t ->
  (workload_result, Lp_util.Diag.t) result

(** {!tune_workload} over a list, first failure wins. *)
val run :
  ?ctx:Compile.ctx ->
  ?pool:Lp_util.Domain_pool.t ->
  config ->
  Workload.t list ->
  (summary, Lp_util.Diag.t) result

(** The per-workload best-schedule table. *)
val to_table : summary -> Lp_util.Table.t

(** Table plus one [workload: spec] line per workload. *)
val render : summary -> string

(** Schema identifier of {!json_of}: ["lowpower-bench-tune/1"]. *)
val schema : string

val json_of : summary -> Lp_util.Json.t

(** Write {!json_of} pretty-printed to [path] (atomic tmp + rename). *)
val write_json : string -> summary -> unit

(** The workload with the largest relative improvement, if any workload
    improved at all (ties keep the earlier workload). *)
val best_improvement : summary -> workload_result option

(** Save the best-improvement schedule as a schedule file
    ({!Pipeline.save_file}) replayable with [lpcc run --passes @FILE];
    [Error] with an explanation when nothing improved. *)
val save_best : summary -> string -> (workload_result, string) result
