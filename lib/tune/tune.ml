(** Energy-aware phase-ordering autotuner (see the interface).

    The search loop is deliberately structured for reproducibility
    across pool sizes: each round *generates* its candidates
    sequentially from the one seeded RNG, then *evaluates* the unique
    uncached ones in parallel ([Domain_pool.parallel_map] preserves
    order and compilation + simulation are deterministic), then *selects*
    sequentially (ties keep the earliest proposal).  The RNG is never
    touched from a worker domain. *)

module Compile = Lowpower.Compile
module Pipeline = Lowpower.Pipeline
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Workload = Lp_workloads.Workload
module Rng = Lp_util.Rng
module Diag = Lp_util.Diag
module Deadline = Lp_util.Deadline
module Domain_pool = Lp_util.Domain_pool
module Json = Lp_util.Json
module Table = Lp_util.Table
module Obs = Lp_obs.Obs

(* ------------------------------------------------------------------ *)
(* Objective                                                           *)
(* ------------------------------------------------------------------ *)

type objective = { energy_nj : float; cycles : int }

let better a b =
  a.energy_nj < b.energy_nj
  || (a.energy_nj = b.energy_nj && a.cycles < b.cycles)

(** What an infeasible candidate scores. *)
let worst = { energy_nj = infinity; cycles = max_int }

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  budget : int;
  seed : int;
  round_size : int;
  restart_after : int;
  config_name : string;
  opts : Compile.options;
  machine : Machine.t;
}

let default_config ?(budget = 100) ?(seed = 1) ?(round_size = 8)
    ?(restart_after = 4) ?(config_name = "baseline")
    ?(opts = Compile.baseline) ?machine () =
  {
    budget = max 1 budget;
    seed;
    round_size = max 1 round_size;
    restart_after = max 1 restart_after;
    config_name;
    opts;
    machine =
      (match machine with Some m -> m | None -> Machine.generic ~n_cores:4 ());
  }

(* fir is saturated by the default schedule (tuning should find nothing
   and say so); the others have nested loops or multi-phase structure
   where pass interactions leave real energy on the table *)
let default_workloads = [ "fir"; "conv2d"; "jpegblocks"; "fft" ]

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

let remove_at i l = List.filteri (fun j _ -> j <> i) l

let insert_at i x l =
  let rec go j l =
    if j = i then x :: l
    else match l with [] -> [ x ] | y :: tl -> y :: go (j + 1) tl
  in
  go 0 l

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

let step_passes = function
  | Pipeline.Run p -> [ p ]
  | Pipeline.Fixpoint ps -> ps
  | Pipeline.If _ -> invalid_arg "Tune.mutate: schedule must be flat"

(** A group of one pass is spelled as a plain run. *)
let group = function [ p ] -> Pipeline.Run p | ps -> Pipeline.Fixpoint ps

type kind = Swap | Move | Drop | Dup | Split | Merge

let mutate (rng : Rng.t) (t : Pipeline.t) : Pipeline.t =
  let n = List.length t in
  if n = 0 then invalid_arg "Tune.mutate: empty schedule";
  let splittable =
    List.filteri
      (fun _ s ->
        match s with Pipeline.Fixpoint ps -> List.length ps >= 2 | _ -> false)
      t
    <> []
  in
  let kinds =
    (if n >= 2 then [ Swap; Move; Drop; Merge ] else [])
    @ [ Dup ]
    @ (if splittable then [ Split ] else [])
  in
  match Rng.choose rng kinds with
  | Swap ->
    let i = Rng.int rng n in
    let j =
      let j = Rng.int rng (n - 1) in
      if j >= i then j + 1 else j
    in
    List.mapi
      (fun k s ->
        if k = i then List.nth t j else if k = j then List.nth t i else s)
      t
  | Move ->
    let i = Rng.int rng n in
    let s = List.nth t i in
    insert_at (Rng.int rng n) s (remove_at i t)
  | Drop -> remove_at (Rng.int rng n) t
  | Dup ->
    let s = List.nth t (Rng.int rng n) in
    insert_at (Rng.int rng (n + 1)) s t
  | Split ->
    let idxs =
      List.filteri (fun _ x -> x >= 0)
        (List.mapi
           (fun i s ->
             match s with
             | Pipeline.Fixpoint ps when List.length ps >= 2 -> i
             | _ -> -1)
           t)
      |> List.filter (fun i -> i >= 0)
    in
    let i = Rng.choose rng idxs in
    let ps = step_passes (List.nth t i) in
    let k = 1 + Rng.int rng (List.length ps - 1) in
    let front = take k ps and back = List.filteri (fun j _ -> j >= k) ps in
    List.concat
      [ take i t; [ group front; group back ];
        List.filteri (fun j _ -> j > i) t ]
  | Merge ->
    let i = Rng.int rng (n - 1) in
    let merged =
      Pipeline.Fixpoint
        (step_passes (List.nth t i) @ step_passes (List.nth t (i + 1)))
    in
    List.concat
      [ take i t; [ merged ]; List.filteri (fun j _ -> j > i + 1) t ]

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let evaluate ~(ctx : Compile.ctx) (cfg : config) (w : Workload.t)
    (spec : string) : (objective, Diag.t) result =
  match Pipeline.parse spec with
  | Error d -> Error d
  | Ok pipeline -> (
    let opts = Compile.Options.update ~pipeline cfg.opts in
    match
      Compile.run_result ~ctx ~opts ~machine:cfg.machine w.Workload.source
    with
    | Ok (_, o) ->
      Ok
        {
          energy_nj = Ledger.total o.Sim.energy;
          cycles = Array.fold_left ( + ) 0 o.Sim.cycles_per_core;
        }
    | Error d when d.Diag.code = Deadline.code ->
      (* deadline expiry aborts the whole tune, it does not score *)
      raise (Diag.Error d)
    | Error d -> Error d)

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type workload_result = {
  tw_workload : string;
  tw_baseline : objective;
  tw_best : objective;
  tw_best_spec : string;
  tw_candidates : int;
  tw_evaluated : int;
  tw_cache_hits : int;
  tw_restarts : int;
}

let improved tw = tw.tw_best.energy_nj < tw.tw_baseline.energy_nj

let improvement_pct tw =
  if tw.tw_baseline.energy_nj > 0. then
    (tw.tw_baseline.energy_nj -. tw.tw_best.energy_nj)
    /. tw.tw_baseline.energy_nj *. 100.
  else 0.

type summary = {
  t_seed : int;
  t_budget : int;
  t_config : string;
  t_machine : string;
  t_workloads : workload_result list;
}

(* ------------------------------------------------------------------ *)
(* The search                                                          *)
(* ------------------------------------------------------------------ *)

(* deterministic per-workload stream: one seed must not make every
   workload explore the same mutation sequence *)
let name_seed name =
  String.fold_left (fun a c -> ((a * 33) + Char.code c) land 0x3FFFFFFF) 5381 name

let tune_workload ?(ctx = Compile.default_ctx) ?pool (cfg : config)
    (w : Workload.t) : (workload_result, Diag.t) result =
  (* the audit report is not meaningful across hundreds of throwaway
     candidate runs (and its event order would depend on the pool);
     counters are sums, so they stay *)
  let ctx = { ctx with Compile.report = Lp_obs.Report.disabled } in
  let obs = ctx.Compile.obs in
  let rng =
    Rng.create ~seed:((cfg.seed * 0x1000193) + name_seed w.Workload.name)
  in
  (* memoised evaluations, keyed by spec string: duplicate candidates
     are never re-simulated (the Exp_common cell discipline; here all
     cache access is sequential, only evaluation fans out) *)
  let cache : (string, (objective, Diag.t) result) Hashtbl.t =
    Hashtbl.create 64
  in
  let evaluated = ref 0 in
  let eval_specs specs =
    let objs =
      Domain_pool.parallel_map ?pool (fun spec -> evaluate ~ctx cfg w spec)
        specs
    in
    List.iter2 (fun s o -> Hashtbl.replace cache s o) specs objs;
    evaluated := !evaluated + List.length specs
  in
  let objective_of spec =
    match Hashtbl.find_opt cache spec with
    | Some (Ok o) -> Some o
    | Some (Error _) -> Some worst
    | None -> None (* truncated by the budget: unknown, not scored *)
  in
  let candidates = ref 0 and cache_hits = ref 0 and restarts = ref 0 in
  try
    let start =
      Pipeline.flatten ~mac_fusion:cfg.opts.Compile.mac_fusion
        (Option.value ~default:Pipeline.default cfg.opts.Compile.pipeline)
    in
    let start_spec = Pipeline.to_spec start in
    eval_specs [ start_spec ];
    let baseline_obj =
      match Hashtbl.find cache start_spec with
      | Ok o -> o
      | Error d -> raise (Diag.Error d)
    in
    let current = ref start and current_obj = ref baseline_obj in
    let best = ref start and best_obj = ref baseline_obj in
    let stall = ref 0 and rounds = ref 0 in
    (* the round cap only matters when every proposal keeps hitting the
       cache; it guarantees termination without consuming budget *)
    while !evaluated < cfg.budget && !rounds < 8 * cfg.budget do
      incr rounds;
      Deadline.check ctx.Compile.deadline;
      if !stall >= cfg.restart_after then begin
        (* restart: jump to a seeded shuffle of the starting schedule,
           unconditionally (the global best is tracked separately) *)
        incr restarts;
        stall := 0;
        let c = Rng.shuffle rng start in
        let spec = Pipeline.to_spec c in
        if Hashtbl.mem cache spec then begin
          incr cache_hits;
          Obs.add obs "tune.cache_hits" 1
        end
        else if !evaluated < cfg.budget then eval_specs [ spec ];
        current := c;
        current_obj := Option.value (objective_of spec) ~default:worst
      end;
      (* generate this round's proposals sequentially from the RNG *)
      let proposals = ref [] in
      for _ = 1 to cfg.round_size do
        incr candidates;
        let c = mutate rng !current in
        let spec = Pipeline.to_spec c in
        (* every candidate must survive a parse/print round-trip *)
        match Pipeline.parse spec with
        | Ok c' when Pipeline.to_spec c' = spec ->
          proposals := spec :: !proposals
        | _ -> ()
      done;
      Obs.add obs "tune.candidates" cfg.round_size;
      let uniq =
        List.fold_left
          (fun acc s -> if List.mem s acc then acc else s :: acc)
          [] (List.rev !proposals)
        |> List.rev
      in
      let (hits, misses) = List.partition (Hashtbl.mem cache) uniq in
      if hits <> [] then begin
        cache_hits := !cache_hits + List.length hits;
        Obs.add obs "tune.cache_hits" (List.length hits)
      end;
      let to_eval = take (cfg.budget - !evaluated) misses in
      if to_eval <> [] then eval_specs to_eval;
      (* move to the round's best strict improvement, ties keep the
         earliest proposal *)
      let round_best =
        List.fold_left
          (fun acc spec ->
            match objective_of spec with
            | None -> acc
            | Some o -> (
              match acc with
              | Some (_, bo) when not (better o bo) -> acc
              | _ -> Some (spec, o)))
          None uniq
      in
      match round_best with
      | Some (spec, o) when better o !current_obj ->
        stall := 0;
        (match Pipeline.parse spec with
        | Ok c -> current := c
        | Error _ -> assert false);
        current_obj := o;
        if better o !best_obj then begin
          best := !current;
          best_obj := o;
          Obs.add obs "tune.improved" 1
        end
      | _ -> incr stall
    done;
    Ok
      {
        tw_workload = w.Workload.name;
        tw_baseline = baseline_obj;
        tw_best = !best_obj;
        tw_best_spec = Pipeline.to_spec !best;
        tw_candidates = !candidates;
        tw_evaluated = !evaluated;
        tw_cache_hits = !cache_hits;
        tw_restarts = !restarts;
      }
  with Diag.Error d -> Error d

let run ?ctx ?pool (cfg : config) (ws : Workload.t list) :
    (summary, Diag.t) result =
  let rec go acc = function
    | [] ->
      Ok
        {
          t_seed = cfg.seed;
          t_budget = cfg.budget;
          t_config = cfg.config_name;
          t_machine = cfg.machine.Machine.name;
          t_workloads = List.rev acc;
        }
    | w :: tl -> (
      match tune_workload ?ctx ?pool cfg w with
      | Ok r -> go (r :: acc) tl
      | Error d -> Error d)
  in
  go [] ws

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let to_table (r : summary) : Table.t =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Tune: energy-best schedules (config %s, machine %s, seed %d, \
            budget %d)"
           r.t_config r.t_machine r.t_seed r.t_budget)
      ~header:
        [ "workload"; "baseline nJ"; "tuned nJ"; "delta"; "cand"; "eval";
          "hits"; "restarts" ]
      ~aligns:
        Table.[ Left; Right; Right; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun tw ->
      Table.add_row tbl
        [
          tw.tw_workload;
          Table.fmt_float ~digits:1 tw.tw_baseline.energy_nj;
          Table.fmt_float ~digits:1 tw.tw_best.energy_nj;
          (if improved tw then Printf.sprintf "-%.2f%%" (improvement_pct tw)
           else "=");
          string_of_int tw.tw_candidates;
          string_of_int tw.tw_evaluated;
          string_of_int tw.tw_cache_hits;
          string_of_int tw.tw_restarts;
        ])
    r.t_workloads;
  tbl

let render (r : summary) : string =
  Table.render (to_table r)
  ^ "\n"
  ^ String.concat ""
      (List.map
         (fun tw -> Printf.sprintf "%s: %s\n" tw.tw_workload tw.tw_best_spec)
         r.t_workloads)

(* ------------------------------------------------------------------ *)
(* JSON artifact                                                       *)
(* ------------------------------------------------------------------ *)

let schema = "lowpower-bench-tune/1"

let json_of (r : summary) : Json.t =
  let num n = Json.Num (float_of_int n) in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("seed", num r.t_seed);
      ("budget", num r.t_budget);
      ("config", Json.Str r.t_config);
      ("machine", Json.Str r.t_machine);
      ("improved", num (List.length (List.filter improved r.t_workloads)));
      ( "workloads",
        Json.List
          (List.map
             (fun tw ->
               Json.Obj
                 [
                   ("workload", Json.Str tw.tw_workload);
                   ("baseline_energy_nj", Json.Num tw.tw_baseline.energy_nj);
                   ("baseline_cycles", num tw.tw_baseline.cycles);
                   ("tuned_energy_nj", Json.Num tw.tw_best.energy_nj);
                   ("tuned_cycles", num tw.tw_best.cycles);
                   ("improvement_pct", Json.Num (improvement_pct tw));
                   ("spec", Json.Str tw.tw_best_spec);
                   ("candidates", num tw.tw_candidates);
                   ("evaluated", num tw.tw_evaluated);
                   ("cache_hits", num tw.tw_cache_hits);
                   ("restarts", num tw.tw_restarts);
                 ])
             r.t_workloads) );
    ]

let write_json (path : string) (r : summary) : unit =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Json.to_string (json_of r)));
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Best-schedule export                                                *)
(* ------------------------------------------------------------------ *)

let best_improvement (r : summary) : workload_result option =
  List.fold_left
    (fun acc tw ->
      if not (improved tw) then acc
      else
        match acc with
        | Some b when improvement_pct b >= improvement_pct tw -> acc
        | _ -> Some tw)
    None r.t_workloads

let save_best (r : summary) (path : string) : (workload_result, string) result
    =
  match best_improvement r with
  | None -> Error "no workload improved on the default schedule"
  | Some tw -> (
    match Pipeline.parse tw.tw_best_spec with
    | Error d -> Error (Diag.to_string d)
    | Ok t ->
      Pipeline.save_file
        ~name:("tuned-" ^ tw.tw_workload)
        ~comment:
          (Printf.sprintf
             "seed %d budget %d config %s machine %s: %s -> %s nJ (-%.2f%%)"
             r.t_seed r.t_budget r.t_config r.t_machine
             (Json.num_to_string tw.tw_baseline.energy_nj)
             (Json.num_to_string tw.tw_best.energy_nj)
             (improvement_pct tw))
        path t;
      Ok tw)
