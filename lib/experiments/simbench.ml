(** The simulator microbenchmark behind [bench/sim_bench.exe] and the
    committed [BENCH_sim.json] artifact.

    Two jobs live here so the executable stays a thin flag parser:

    - {!measure} times the two simulator modes (closure-compiled
      predecode vs the interpretive reference stepper) over the
      committed workload suite and returns the throughput table that
      [BENCH_sim.json] serialises;
    - {!metrics} produces the {e deterministic} per-workload simulated
      metrics (cycles, energy, instructions — no wall-clock anywhere)
      that CI writes once per mode and diffs byte-for-byte, proving the
      two modes agree on every workload, not just the baseline cells.

    The JSON schema ([lowpower-bench-sim/1]) round-trips through
    {!to_json}/{!of_json}; a golden test locks that down so downstream
    tooling can rely on the field names. *)

module J = Lp_util.Json
module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Workload = Lp_workloads.Workload
module Suite = Lp_workloads.Suite

type mode_stats = {
  runs : int;            (** simulation repetitions timed *)
  wall_s : float;        (** total wall-clock over those runs *)
  instrs_per_sec : float;
  cells_per_sec : float; (** whole-simulation runs per second *)
}

type row = {
  sb_workload : string;
  sb_instrs : int;  (** instructions simulated by one run (mode-invariant) *)
  sb_on : mode_stats;   (** predecode on: closure-compiled stepper *)
  sb_off : mode_stats;  (** predecode off: interpretive reference *)
  sb_speedup : float;   (** [sb_on.instrs_per_sec /. sb_off.instrs_per_sec] *)
}

type t = {
  sb_machine : string;
  sb_config : string;
  sb_rows : row list;
  sb_total_on : float;   (** suite instr/s, predecode on *)
  sb_total_off : float;  (** suite instr/s, predecode off *)
  sb_total_speedup : float;
}

(* The fixed bench environment: the evaluation's default machine and the
   full compiler configuration, so the simulated programs exercise
   parallel cores, gating and DVFS — the paths the matrix spends its
   time in. *)
let bench_cores = 4
let bench_machine () = Machine.generic ~n_cores:bench_cores ()
let bench_config_name = "full"
let bench_config () = Compile.full ~n_cores:bench_cores

let simulate compiled ~machine ~predecode =
  Sim.run
    ~opts:{ Sim.default_options with Sim.predecode }
    ~machine compiled.Compile.prog

(* ------------------------------------------------------------------ *)
(* Throughput measurement                                              *)
(* ------------------------------------------------------------------ *)

(* One warm-up run (pays predecode compilation and allocator warm-up),
   then repeat until both floors are met. *)
let time_mode ~min_wall_s ~min_runs run1 =
  ignore (run1 ());
  let t0 = Unix.gettimeofday () in
  let rec loop runs =
    ignore (run1 ());
    let runs = runs + 1 in
    let wall = Unix.gettimeofday () -. t0 in
    if wall < min_wall_s || runs < min_runs then loop runs else (runs, wall)
  in
  loop 0

(* A loaded host inflates wall time in spikes but never deflates it, so
   of several timings the {e fastest} is the closest estimate of the
   machine's true rate.  Trials interleave the two modes so slow drifts
   (thermal, noisy neighbours) cannot bias one mode's figure. *)
let trials = 3

let measure ?(min_wall_s = 0.2) ?(min_runs = 3) () : t =
  let machine = bench_machine () in
  let opts = bench_config () in
  let rows =
    List.filter_map
      (fun (w : Workload.t) ->
        match Compile.compile ~opts ~machine w.Workload.source with
        | exception _ -> None (* mode-independent: compilation never
                                 touches the simulator *)
        | compiled -> (
          match simulate compiled ~machine ~predecode:true with
          | exception _ -> None
          | o ->
            let instrs = o.Sim.instr_total in
            let stats predecode =
              let (runs, wall_s) =
                time_mode ~min_wall_s ~min_runs (fun () ->
                    simulate compiled ~machine ~predecode)
              in
              {
                runs;
                wall_s;
                instrs_per_sec = float_of_int (instrs * runs) /. wall_s;
                cells_per_sec = float_of_int runs /. wall_s;
              }
            in
            let best cur cand =
              match cur with
              | Some c when c.instrs_per_sec >= cand.instrs_per_sec -> cur
              | _ -> Some cand
            in
            let on_best = ref None and off_best = ref None in
            for _ = 1 to trials do
              on_best := best !on_best (stats true);
              off_best := best !off_best (stats false)
            done;
            let on = Option.get !on_best and off = Option.get !off_best in
            Some
              {
                sb_workload = w.Workload.name;
                sb_instrs = instrs;
                sb_on = on;
                sb_off = off;
                sb_speedup = on.instrs_per_sec /. off.instrs_per_sec;
              }))
      Suite.all
  in
  (* aggregate on a "simulate the whole suite once" basis: total
     instructions over the summed per-run time of each workload *)
  let per_run sel =
    List.fold_left
      (fun acc r ->
        let s = sel r in
        acc +. (s.wall_s /. float_of_int s.runs))
      0.0 rows
  in
  let total_instrs =
    float_of_int (List.fold_left (fun acc r -> acc + r.sb_instrs) 0 rows)
  in
  let wall_on = per_run (fun r -> r.sb_on) in
  let wall_off = per_run (fun r -> r.sb_off) in
  {
    sb_machine = machine.Machine.name;
    sb_config = bench_config_name;
    sb_rows = rows;
    sb_total_on = total_instrs /. wall_on;
    sb_total_off = total_instrs /. wall_off;
    sb_total_speedup = wall_off /. wall_on;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic metrics (the CI byte-diff)                            *)
(* ------------------------------------------------------------------ *)

let metrics ~predecode () : J.t =
  let machine = bench_machine () in
  let opts = bench_config () in
  let cells =
    List.filter_map
      (fun (w : Workload.t) ->
        match Compile.compile ~opts ~machine w.Workload.source with
        | exception _ -> None
        | compiled -> (
          match simulate compiled ~machine ~predecode with
          | exception _ -> None
          | o ->
            let cycles =
              Array.fold_left
                (fun acc c -> acc +. float_of_int c)
                0.0 o.Sim.cycles_per_core
            in
            Some
              (J.Obj
                 [
                   ("workload", J.Str w.Workload.name);
                   ("cycles", J.Num cycles);
                   ("energy_nj", J.Num (Ledger.total o.Sim.energy));
                   ("instrs", J.Num (float_of_int o.Sim.instr_total));
                   ("steps", J.Num (float_of_int o.Sim.steps));
                 ])))
      Suite.all
  in
  (* deliberately no mode marker: the two modes' files must be
     byte-identical, which is exactly what CI diffs *)
  J.Obj [ ("schema", J.Str "lowpower-sim-metrics/1"); ("cells", J.List cells) ]

(* ------------------------------------------------------------------ *)
(* BENCH_sim.json schema                                               *)
(* ------------------------------------------------------------------ *)

let schema = "lowpower-bench-sim/1"

let stats_to_json s =
  J.Obj
    [
      ("runs", J.Num (float_of_int s.runs));
      ("wall_s", J.Num s.wall_s);
      ("instrs_per_sec", J.Num s.instrs_per_sec);
      ("cells_per_sec", J.Num s.cells_per_sec);
    ]

let row_to_json r =
  J.Obj
    [
      ("workload", J.Str r.sb_workload);
      ("instrs", J.Num (float_of_int r.sb_instrs));
      ("predecode_on", stats_to_json r.sb_on);
      ("predecode_off", stats_to_json r.sb_off);
      ("speedup", J.Num r.sb_speedup);
    ]

let to_json t =
  J.Obj
    [
      ("schema", J.Str schema);
      ("machine", J.Str t.sb_machine);
      ("config", J.Str t.sb_config);
      ("workloads", J.List (List.map row_to_json t.sb_rows));
      ("total_instrs_per_sec_on", J.Num t.sb_total_on);
      ("total_instrs_per_sec_off", J.Num t.sb_total_off);
      ("speedup", J.Num t.sb_total_speedup);
    ]

exception Bad of string

let need_num key o =
  match J.member key o with
  | Some (J.Num x) -> x
  | _ -> raise (Bad (Printf.sprintf "missing number %S" key))

let need_str key o =
  match J.member key o with
  | Some (J.Str s) -> s
  | _ -> raise (Bad (Printf.sprintf "missing string %S" key))

let stats_of_json key o =
  match J.member key o with
  | Some (J.Obj _ as s) ->
    {
      runs = int_of_float (need_num "runs" s);
      wall_s = need_num "wall_s" s;
      instrs_per_sec = need_num "instrs_per_sec" s;
      cells_per_sec = need_num "cells_per_sec" s;
    }
  | _ -> raise (Bad (Printf.sprintf "missing object %S" key))

let row_of_json o =
  {
    sb_workload = need_str "workload" o;
    sb_instrs = int_of_float (need_num "instrs" o);
    sb_on = stats_of_json "predecode_on" o;
    sb_off = stats_of_json "predecode_off" o;
    sb_speedup = need_num "speedup" o;
  }

let of_json j : (t, string) result =
  match
    (match J.member "schema" j with
    | Some (J.Str s) when s = schema ->
      let rows =
        match J.member "workloads" j with
        | Some (J.List l) -> List.map row_of_json l
        | _ -> raise (Bad "missing list \"workloads\"")
      in
      {
        sb_machine = need_str "machine" j;
        sb_config = need_str "config" j;
        sb_rows = rows;
        sb_total_on = need_num "total_instrs_per_sec_on" j;
        sb_total_off = need_num "total_instrs_per_sec_off" j;
        sb_total_speedup = need_num "speedup" j;
      }
    | Some (J.Str s) -> raise (Bad ("unknown schema " ^ s))
    | _ -> raise (Bad "missing string \"schema\""))
  with
  | t -> Ok t
  | exception Bad msg -> Error msg
