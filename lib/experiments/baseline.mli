(** The benchmark regression baseline — the [--check-baseline] gate.

    A committed snapshot ([bench/baselines/eval.json], schema
    [lowpower-bench-baseline/1]) of the two simulated metrics every
    evaluation cell produces: total compute cycles and energy in
    nanojoules, per (workload, config, machine) cell and aggregated per
    experiment.  Simulation is fully deterministic, so tolerances are
    effectively zero and any drift is semantic: a transform change that
    costs cycles or energy fails CI until either the change is fixed or
    the new numbers are deliberately committed with
    [--write-baseline]. *)

type cell_row = {
  c_workload : string;
  c_config : string;
  c_machine : string;
  c_cycles : float;
  c_energy_nj : float;
}

type exp_row = {
  e_id : string;          (** experiment id, e.g. ["t1"] *)
  e_cycles : float;
  e_energy_nj : float;
  e_cells : int;          (** cells first evaluated by this experiment *)
}

type t = {
  cycles_tol : float;     (** allowed relative increase in cycles *)
  energy_tol : float;     (** allowed relative increase in energy *)
  exps : exp_row list;
  cells : cell_row list;
}

val default_cycles_tol : float
val default_energy_tol : float

(** Rows from an {!Exp_common.cell_metrics} snapshot. *)
val cell_rows_of_metrics :
  ((string * string * string) * float * float) list -> cell_row list

val make :
  ?cycles_tol:float ->
  ?energy_tol:float ->
  exps:exp_row list ->
  cells:cell_row list ->
  unit ->
  t

val to_json : t -> Lp_util.Json.t
val of_json : Lp_util.Json.t -> (t, string) result

(** Atomic write (tmp + rename), pretty-printed JSON. *)
val write : t -> path:string -> unit

val load : path:string -> (t, string) result

(** One metric that moved: [d_rel] is the relative change against the
    baseline ([> 0] = worse, i.e. more cycles / more energy). *)
type delta = {
  d_what : string;        (** cell key or experiment id *)
  d_metric : string;      (** ["cycles"] or ["energy_nj"] *)
  d_base : float;
  d_cur : float;
  d_rel : float;
}

type verdict = {
  regressions : delta list;   (** increases beyond tolerance — gate fails *)
  improvements : delta list;  (** decreases beyond tolerance — pass *)
  notes : string list;        (** coverage differences *)
}

(** Compare a finished run against the baseline.  Cell rows are always
    compared; per-experiment totals only when the run evaluated exactly
    the baseline's experiment set (the memo cache attributes shared
    cells to whichever experiment ran first, so totals shift under
    subset runs). *)
val check : t -> exps:exp_row list -> cells:cell_row list -> verdict

val passed : verdict -> bool

(** The regression table the gate prints. *)
val verdict_to_string : verdict -> string
