(** The benchmark regression baseline (the [--check-baseline] gate).

    A baseline file is a committed snapshot of the two simulated metrics
    every evaluation cell produces — total compute cycles and energy in
    nanojoules — per matrix cell and aggregated per experiment.
    Simulation is fully deterministic (same cycles and energy on every
    host and pool size), so the default tolerances are tiny: the gate
    exists to catch {e semantic} drift — a transform that silently
    starts burning more energy — not measurement noise.

    Only increases fail the gate.  Improvements are reported but pass:
    committing the improved numbers is a deliberate follow-up
    ([--write-baseline]), not a CI failure. *)

module J = Lp_util.Json

type cell_row = {
  c_workload : string;
  c_config : string;
  c_machine : string;
  c_cycles : float;
  c_energy_nj : float;
}

type exp_row = {
  e_id : string;
  e_cycles : float;
  e_energy_nj : float;
  e_cells : int;
}

type t = {
  cycles_tol : float;   (** allowed relative increase in cycles *)
  energy_tol : float;   (** allowed relative increase in energy *)
  exps : exp_row list;
  cells : cell_row list;
}

(* Deterministic simulation: these absorb only float round-trip noise,
   which %.17g printing already eliminates, so effectively zero. *)
let default_cycles_tol = 1e-9
let default_energy_tol = 1e-9

let schema = "lowpower-bench-baseline/1"

(* ------------------------------------------------------------------ *)
(* Construction from a finished run                                    *)
(* ------------------------------------------------------------------ *)

let cell_rows_of_metrics metrics =
  List.map
    (fun ((w, c, m), cycles, energy) ->
      { c_workload = w; c_config = c; c_machine = m; c_cycles = cycles;
        c_energy_nj = energy })
    metrics

let make ?(cycles_tol = default_cycles_tol) ?(energy_tol = default_energy_tol)
    ~exps ~cells () =
  { cycles_tol; energy_tol; exps; cells }

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let to_json t =
  J.Obj
    [
      ("schema", J.Str schema);
      ( "tolerances",
        J.Obj
          [ ("cycles", J.Num t.cycles_tol); ("energy_nj", J.Num t.energy_tol) ]
      );
      ( "experiments",
        J.List
          (List.map
             (fun e ->
               J.Obj
                 [ ("id", J.Str e.e_id);
                   ("cycles", J.Num e.e_cycles);
                   ("energy_nj", J.Num e.e_energy_nj);
                   ("cells", J.Num (float_of_int e.e_cells)) ])
             t.exps) );
      ( "cells",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [ ("workload", J.Str c.c_workload);
                   ("config", J.Str c.c_config);
                   ("machine", J.Str c.c_machine);
                   ("cycles", J.Num c.c_cycles);
                   ("energy_nj", J.Num c.c_energy_nj) ])
             t.cells) );
    ]

let write t ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (J.to_string (to_json t)));
  Sys.rename tmp path

let field_str name j =
  match Option.bind (J.member name j) J.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" name)

let field_num name j =
  match Option.bind (J.member name j) J.to_float_opt with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

let of_json j =
  let* s = field_str "schema" j in
  if s <> schema then
    Error (Printf.sprintf "unsupported baseline schema %S (want %S)" s schema)
  else
    let tol name fallback =
      match J.member "tolerances" j with
      | Some t -> (
        match Option.bind (J.member name t) J.to_float_opt with
        | Some x -> x
        | None -> fallback)
      | None -> fallback
    in
    let* exps =
      map_result
        (fun e ->
          let* e_id = field_str "id" e in
          let* e_cycles = field_num "cycles" e in
          let* e_energy_nj = field_num "energy_nj" e in
          let* cells = field_num "cells" e in
          Ok { e_id; e_cycles; e_energy_nj; e_cells = int_of_float cells })
        (match J.member "experiments" j with Some l -> J.to_list l | None -> [])
    in
    let* cells =
      map_result
        (fun c ->
          let* c_workload = field_str "workload" c in
          let* c_config = field_str "config" c in
          let* c_machine = field_str "machine" c in
          let* c_cycles = field_num "cycles" c in
          let* c_energy_nj = field_num "energy_nj" c in
          Ok { c_workload; c_config; c_machine; c_cycles; c_energy_nj })
        (match J.member "cells" j with Some l -> J.to_list l | None -> [])
    in
    Ok
      {
        cycles_tol = tol "cycles" default_cycles_tol;
        energy_tol = tol "energy_nj" default_energy_tol;
        exps;
        cells;
      }

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
    match J.of_string_opt text with
    | None -> Error (Printf.sprintf "%s: not valid JSON" path)
    | Some j -> (
      match of_json j with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)))

(* ------------------------------------------------------------------ *)
(* The check                                                           *)
(* ------------------------------------------------------------------ *)

(** One metric that moved: [delta_rel] is the relative change against
    the baseline value ([> 0] = worse: more cycles / more energy). *)
type delta = {
  d_what : string;   (** cell key or experiment id *)
  d_metric : string; (** ["cycles"] or ["energy_nj"] *)
  d_base : float;
  d_cur : float;
  d_rel : float;
}

type verdict = {
  regressions : delta list;  (** increases beyond tolerance — gate fails *)
  improvements : delta list; (** decreases beyond tolerance — informational *)
  notes : string list;
      (** coverage differences: baseline rows this run did not evaluate,
          rows the baseline does not know *)
}

let rel ~base ~cur =
  if base = 0.0 then (if cur = 0.0 then 0.0 else Float.infinity)
  else (cur -. base) /. base

let classify ~tol ~what ~metric ~base ~cur (v : verdict) =
  let r = rel ~base ~cur in
  let d = { d_what = what; d_metric = metric; d_base = base; d_cur = cur;
            d_rel = r } in
  if r > tol then { v with regressions = d :: v.regressions }
  else if r < -.tol then { v with improvements = d :: v.improvements }
  else v

(** Compare a finished run against the baseline.  [cells] is the run's
    {!Exp_common.cell_metrics} snapshot; [exps] its per-experiment
    aggregation.  Per-experiment totals are only compared when the run
    evaluated the same experiment set the baseline recorded: the memo
    cache attributes a shared cell to whichever experiment ran it first,
    so totals only line up when the experiment list does. *)
let check t ~(exps : exp_row list) ~(cells : cell_row list) : verdict =
  let v = { regressions = []; improvements = []; notes = [] } in
  let key c = (c.c_workload, c.c_config, c.c_machine) in
  let cell_name c =
    Printf.sprintf "%s/%s@%s" c.c_workload c.c_config c.c_machine
  in
  let v =
    List.fold_left
      (fun v bc ->
        match List.find_opt (fun c -> key c = key bc) cells with
        | None ->
          { v with
            notes =
              Printf.sprintf "cell %s in baseline but not evaluated this run"
                (cell_name bc)
              :: v.notes }
        | Some c ->
          let v =
            classify ~tol:t.cycles_tol ~what:(cell_name bc) ~metric:"cycles"
              ~base:bc.c_cycles ~cur:c.c_cycles v
          in
          classify ~tol:t.energy_tol ~what:(cell_name bc) ~metric:"energy_nj"
            ~base:bc.c_energy_nj ~cur:c.c_energy_nj v)
      v t.cells
  in
  let v =
    List.fold_left
      (fun v c ->
        if List.exists (fun bc -> key bc = key c) t.cells then v
        else
          { v with
            notes =
              Printf.sprintf "cell %s not in baseline (new workload/config?)"
                (cell_name c)
              :: v.notes })
      v cells
  in
  let ids rows = List.sort compare (List.map (fun e -> e.e_id) rows) in
  let v =
    if ids exps = ids t.exps then
      List.fold_left
        (fun v be ->
          match List.find_opt (fun e -> e.e_id = be.e_id) exps with
          | None -> v
          | Some e ->
            let what = "experiment " ^ be.e_id in
            let v =
              classify ~tol:t.cycles_tol ~what ~metric:"cycles"
                ~base:be.e_cycles ~cur:e.e_cycles v
            in
            classify ~tol:t.energy_tol ~what ~metric:"energy_nj"
              ~base:be.e_energy_nj ~cur:e.e_energy_nj v)
        v t.exps
    else
      { v with
        notes =
          "experiment set differs from baseline; per-experiment totals not \
           compared (cell-level rows still checked)"
          :: v.notes }
  in
  {
    regressions = List.rev v.regressions;
    improvements = List.rev v.improvements;
    notes = List.rev v.notes;
  }

let passed v = v.regressions = []

(** Render the verdict as the regression table the gate prints. *)
let verdict_to_string (v : verdict) : string =
  let buf = Buffer.create 256 in
  let row (d : delta) tag =
    Buffer.add_string buf
      (Printf.sprintf "  %-9s %-40s %-10s %16s -> %16s  %+.4f%%\n" tag
         d.d_what d.d_metric
         (J.num_to_string d.d_base)
         (J.num_to_string d.d_cur)
         (d.d_rel *. 100.0))
  in
  if v.regressions <> [] then begin
    Buffer.add_string buf "baseline regressions:\n";
    List.iter (fun d -> row d "WORSE") v.regressions
  end;
  if v.improvements <> [] then begin
    Buffer.add_string buf "baseline improvements (informational):\n";
    List.iter (fun d -> row d "better") v.improvements
  end;
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  note: %s\n" n))
    v.notes;
  if passed v then
    Buffer.add_string buf
      (if v.improvements = [] && v.notes = [] then
         "baseline check: OK (all metrics within tolerance)\n"
       else "baseline check: OK\n")
  else
    Buffer.add_string buf
      (Printf.sprintf "baseline check: FAILED (%d regression(s))\n"
         (List.length v.regressions));
  Buffer.contents buf
