(** Tables T1-T5 of the evaluation. *)

open Exp_common
module Ast = Lp_lang.Ast
module Prog = Lp_ir.Prog
module T = Lp_transforms

(* ------------------------------------------------------------------ *)
(* T1: workload characteristics                                        *)
(* ------------------------------------------------------------------ *)

let t1 () : Table.t =
  run_matrix (cross all_workloads [ ("baseline", Compile.baseline) ]);
  let tbl =
    Table.create ~title:"T1: Benchmark characteristics"
      ~header:
        [ "workload"; "LoC"; "funcs"; "loops"; "IR instrs"; "expected";
          "detected" ]
      ~aligns:
        Table.[ Left; Right; Right; Right; Right; Left; Left ]
      ()
  in
  List.iter
    (fun (w : Workload.t) ->
      let c = run_workload_result w ~config:"baseline" Compile.baseline in
      let from_run f = scell c f in
      Table.add_row tbl
        [
          w.Workload.name;
          string_of_int (source_loc w);
          from_run (fun r ->
              string_of_int
                (List.length r.compiled.Compile.source_ast.Ast.funcs));
          from_run (fun r ->
              string_of_int
                (List.fold_left
                   (fun acc (f : Ast.func) -> acc + Ast.count_loops f.Ast.fbody)
                   0 r.compiled.Compile.source_ast.Ast.funcs));
          from_run (fun r ->
              string_of_int (Prog.total_instrs r.compiled.Compile.prog));
          w.Workload.expected_pattern;
          from_run (fun r ->
              match r.compiled.Compile.detection.Pattern.instances with
              | [] -> "-"
              | insts ->
                String.concat "+"
                  (List.map
                     (fun (i : Pattern.instance) ->
                       Pattern.kind_name i.Pattern.kind)
                     insts));
        ])
    all_workloads;
  tbl

(* ------------------------------------------------------------------ *)
(* T2: pattern detection                                               *)
(* ------------------------------------------------------------------ *)

let t2 () : Table.t =
  run_matrix (cross all_workloads [ ("baseline", Compile.baseline) ]);
  let tbl =
    Table.create ~title:"T2: Pattern detection (verified annotations + inference)"
      ~header:
        [ "workload"; "candidate loops"; "instances"; "origin"; "rejections";
          "first rejection reason" ]
      ~aligns:Table.[ Left; Right; Left; Left; Right; Left ]
      ()
  in
  List.iter
    (fun (w : Workload.t) ->
      let c = run_workload_result w ~config:"baseline" Compile.baseline in
      let from_det f = scell c (fun r -> f r.compiled.Compile.detection) in
      Table.add_row tbl
        [
          w.Workload.name;
          from_det (fun d -> string_of_int d.Pattern.candidate_loops);
          from_det (fun d ->
              match d.Pattern.instances with
              | [] -> "-"
              | l ->
                String.concat "+"
                  (List.map
                     (fun (i : Pattern.instance) ->
                       Pattern.kind_name i.Pattern.kind)
                     l));
          from_det (fun d ->
              match d.Pattern.instances with
              | [] -> "-"
              | l ->
                String.concat "+"
                  (List.map
                     (fun (i : Pattern.instance) ->
                       match i.Pattern.origin with
                       | Pattern.Annotated -> "annot"
                       | Pattern.Inferred -> "infer")
                     l));
          from_det (fun d -> string_of_int (List.length d.Pattern.rejections));
          from_det (fun d ->
              match d.Pattern.rejections with
              | [] -> "-"
              | rej :: _ -> rej.Pattern.rej_reason);
        ])
    all_workloads;
  tbl

(* ------------------------------------------------------------------ *)
(* T3: normalised energy across configurations                         *)
(* ------------------------------------------------------------------ *)

let t3 () : Table.t =
  let configs = standard_configs ~n_cores:4 in
  run_matrix (cross all_workloads configs);
  let tbl =
    Table.create
      ~title:
        "T3: Energy normalised to baseline (4-core machine; lower is better)"
      ~header:("workload" :: List.map fst configs)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) configs)
      ()
  in
  let per_config_ratios = Hashtbl.create 8 in
  List.iter
    (fun (w : Workload.t) ->
      let base = run_workload_result w ~config:"baseline" Compile.baseline in
      let cells =
        List.map
          (fun (name, opts) ->
            let c = run_workload_result w ~config:name opts in
            let ratio = fopt2 base c (fun b r -> normalised ~base:b r) in
            let cur =
              Option.value ~default:[]
                (Hashtbl.find_opt per_config_ratios name)
            in
            Hashtbl.replace per_config_ratios name (ratio :: cur);
            scell2 base c (fun b r -> fmt_ratio (normalised ~base:b r)))
          configs
      in
      Table.add_row tbl (w.Workload.name :: cells))
    all_workloads;
  Table.add_row tbl
    ("geomean"
    :: List.map
         (fun (name, _) -> geomean_str (Hashtbl.find per_config_ratios name))
         configs);
  tbl

(* ------------------------------------------------------------------ *)
(* T3b: single-core machine — component-level power management only    *)
(* ------------------------------------------------------------------ *)

(** On the 4-core machine (T3), gating the three unused cores dominates
    the sequential configurations.  This companion table isolates the
    within-core effects by running the sequential configurations on a
    single-core machine. *)
let t3b () : Table.t =
  let machine = machine_with_cores 1 in
  let configs =
    [ ("baseline", Compile.baseline); ("pg", Compile.pg_only);
      ("dvfs", Compile.dvfs_only); ("pg+dvfs", Compile.pg_dvfs) ]
  in
  run_matrix
    (cross ~machine all_workloads
       (List.map (fun (n, o) -> (n ^ "-1c", o)) configs));
  let tbl =
    Table.create
      ~title:
        "T3b: Energy normalised to baseline on a SINGLE-core machine          (component gating and DVFS effects within one core)"
      ~header:("workload" :: List.map fst configs)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) configs)
      ()
  in
  let per_config = Hashtbl.create 8 in
  List.iter
    (fun (w : Workload.t) ->
      let base =
        run_workload_result ~machine w ~config:"baseline-1c" Compile.baseline
      in
      let cells =
        List.map
          (fun (name, opts) ->
            let c = run_workload_result ~machine w ~config:(name ^ "-1c") opts in
            let ratio = fopt2 base c (fun b r -> normalised ~base:b r) in
            let cur = Option.value ~default:[] (Hashtbl.find_opt per_config name) in
            Hashtbl.replace per_config name (ratio :: cur);
            scell2 base c (fun b r -> fmt_ratio (normalised ~base:b r)))
          configs
      in
      Table.add_row tbl (w.Workload.name :: cells))
    all_workloads;
  Table.add_row tbl
    ("geomean"
    :: List.map
         (fun (name, _) -> geomean_str (Hashtbl.find per_config name))
         configs);
  tbl

(* ------------------------------------------------------------------ *)
(* T4: performance impact                                              *)
(* ------------------------------------------------------------------ *)

let t4 () : Table.t =
  run_matrix (cross all_workloads (standard_configs ~n_cores:4));
  let tbl =
    Table.create
      ~title:
        "T4: Performance impact vs baseline (overhead of power management; \
         speedup of pattern parallelisation)"
      ~header:
        [ "workload"; "pg ovh%"; "dvfs ovh%"; "pg+dvfs ovh%"; "par speedup";
          "full speedup" ]
      ~aligns:Table.[ Left; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (w : Workload.t) ->
      let base = run_workload_result w ~config:"baseline" Compile.baseline in
      let ovh name opts =
        scell2 base
          (run_workload_result w ~config:name opts)
          (fun b r ->
            Table.fmt_float ~digits:2
              (Lp_util.Stats.percent_change ~before:(time_ns b)
                 ~after:(time_ns r)))
      in
      let speedup name opts =
        scell2 base
          (run_workload_result w ~config:name opts)
          (fun b r -> Table.fmt_float ~digits:2 (time_ns b /. time_ns r))
      in
      Table.add_row tbl
        [
          w.Workload.name;
          ovh "pg" Compile.pg_only;
          ovh "dvfs" Compile.dvfs_only;
          ovh "pg+dvfs" Compile.pg_dvfs;
          speedup "par" (Compile.par_only ~n_cores:4);
          speedup "full" (Compile.full ~n_cores:4);
        ])
    all_workloads;
  tbl

(* ------------------------------------------------------------------ *)
(* T5: compile statistics                                              *)
(* ------------------------------------------------------------------ *)

let t5 () : Table.t =
  run_matrix (cross all_workloads [ ("pg", Compile.pg_only) ]);
  let tbl =
    Table.create
      ~title:
        "T5: Compile statistics (pg-only config): pass time, gating \
         component-toggles before/after Sink-N-Hoist"
      ~header:
        [ "workload"; "compile ms"; "IR instrs"; "gate-toggles pre";
          "gate-toggles post"; "merge red%" ]
      ~aligns:Table.[ Left; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (w : Workload.t) ->
      let cell = run_workload_result w ~config:"pg" Compile.pg_only in
      let from_c f = scell cell (fun r -> f r.compiled) in
      Table.add_row tbl
        [
          w.Workload.name;
          from_c (fun c ->
              Table.fmt_float ~digits:2
                (1000.0
                *. List.fold_left
                     (fun acc (s : T.Pass.stats) -> acc +. s.T.Pass.seconds)
                     0.0 c.Compile.pass_stats));
          from_c (fun c -> string_of_int (Prog.total_instrs c.Compile.prog));
          from_c (fun c ->
              string_of_int
                c.Compile.gating_before_merge.T.Gating.components_toggled);
          from_c (fun c ->
              string_of_int
                c.Compile.gating_after_merge.T.Gating.components_toggled);
          from_c (fun c ->
              let pre =
                c.Compile.gating_before_merge.T.Gating.components_toggled
              in
              let post =
                c.Compile.gating_after_merge.T.Gating.components_toggled
              in
              Table.fmt_float ~digits:1
                (if pre = 0 then 0.0
                 else 100.0 *. float_of_int (pre - post) /. float_of_int pre));
        ])
    all_workloads;
  tbl
