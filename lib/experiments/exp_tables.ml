(** Tables T1-T5 of the evaluation. *)

open Exp_common
module Ast = Lp_lang.Ast
module Prog = Lp_ir.Prog
module T = Lp_transforms

(* ------------------------------------------------------------------ *)
(* T1: workload characteristics                                        *)
(* ------------------------------------------------------------------ *)

let t1 () : Table.t =
  run_matrix (cross all_workloads [ ("baseline", Compile.baseline) ]);
  let tbl =
    Table.create ~title:"T1: Benchmark characteristics"
      ~header:
        [ "workload"; "LoC"; "funcs"; "loops"; "IR instrs"; "expected";
          "detected" ]
      ~aligns:
        Table.[ Left; Right; Right; Right; Right; Left; Left ]
      ()
  in
  List.iter
    (fun (w : Workload.t) ->
      let r = run_workload w ~config:"baseline" Compile.baseline in
      let ast = r.compiled.Compile.source_ast in
      let loops =
        List.fold_left
          (fun acc (f : Ast.func) -> acc + Ast.count_loops f.Ast.fbody)
          0 ast.Ast.funcs
      in
      let detected =
        match r.compiled.Compile.detection.Pattern.instances with
        | [] -> "-"
        | insts ->
          String.concat "+"
            (List.map
               (fun (i : Pattern.instance) -> Pattern.kind_name i.Pattern.kind)
               insts)
      in
      Table.add_row tbl
        [
          w.Workload.name;
          string_of_int (source_loc w);
          string_of_int (List.length ast.Ast.funcs);
          string_of_int loops;
          string_of_int (Prog.total_instrs r.compiled.Compile.prog);
          w.Workload.expected_pattern;
          detected;
        ])
    all_workloads;
  tbl

(* ------------------------------------------------------------------ *)
(* T2: pattern detection                                               *)
(* ------------------------------------------------------------------ *)

let t2 () : Table.t =
  run_matrix (cross all_workloads [ ("baseline", Compile.baseline) ]);
  let tbl =
    Table.create ~title:"T2: Pattern detection (verified annotations + inference)"
      ~header:
        [ "workload"; "candidate loops"; "instances"; "origin"; "rejections";
          "first rejection reason" ]
      ~aligns:Table.[ Left; Right; Left; Left; Right; Left ]
      ()
  in
  List.iter
    (fun (w : Workload.t) ->
      let r = run_workload w ~config:"baseline" Compile.baseline in
      let d = r.compiled.Compile.detection in
      let insts =
        match d.Pattern.instances with
        | [] -> "-"
        | l ->
          String.concat "+"
            (List.map (fun (i : Pattern.instance) -> Pattern.kind_name i.Pattern.kind) l)
      in
      let origin =
        match d.Pattern.instances with
        | [] -> "-"
        | l ->
          String.concat "+"
            (List.map
               (fun (i : Pattern.instance) ->
                 match i.Pattern.origin with
                 | Pattern.Annotated -> "annot"
                 | Pattern.Inferred -> "infer")
               l)
      in
      let first_reason =
        match d.Pattern.rejections with
        | [] -> "-"
        | rej :: _ -> rej.Pattern.rej_reason
      in
      Table.add_row tbl
        [
          w.Workload.name;
          string_of_int d.Pattern.candidate_loops;
          insts;
          origin;
          string_of_int (List.length d.Pattern.rejections);
          first_reason;
        ])
    all_workloads;
  tbl

(* ------------------------------------------------------------------ *)
(* T3: normalised energy across configurations                         *)
(* ------------------------------------------------------------------ *)

let t3 () : Table.t =
  let configs = standard_configs ~n_cores:4 in
  run_matrix (cross all_workloads configs);
  let tbl =
    Table.create
      ~title:
        "T3: Energy normalised to baseline (4-core machine; lower is better)"
      ~header:("workload" :: List.map fst configs)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) configs)
      ()
  in
  let per_config_ratios = Hashtbl.create 8 in
  List.iter
    (fun (w : Workload.t) ->
      let base = run_workload w ~config:"baseline" Compile.baseline in
      let cells =
        List.map
          (fun (name, opts) ->
            let r = run_workload w ~config:name opts in
            let ratio = normalised ~base r in
            let cur =
              Option.value ~default:[]
                (Hashtbl.find_opt per_config_ratios name)
            in
            Hashtbl.replace per_config_ratios name (ratio :: cur);
            fmt_ratio ratio)
          configs
      in
      Table.add_row tbl (w.Workload.name :: cells))
    all_workloads;
  Table.add_row tbl
    ("geomean"
    :: List.map
         (fun (name, _) ->
           fmt_ratio (geomean_of (Hashtbl.find per_config_ratios name)))
         configs);
  tbl

(* ------------------------------------------------------------------ *)
(* T3b: single-core machine — component-level power management only    *)
(* ------------------------------------------------------------------ *)

(** On the 4-core machine (T3), gating the three unused cores dominates
    the sequential configurations.  This companion table isolates the
    within-core effects by running the sequential configurations on a
    single-core machine. *)
let t3b () : Table.t =
  let machine = machine_with_cores 1 in
  let configs =
    [ ("baseline", Compile.baseline); ("pg", Compile.pg_only);
      ("dvfs", Compile.dvfs_only); ("pg+dvfs", Compile.pg_dvfs) ]
  in
  run_matrix
    (cross ~machine all_workloads
       (List.map (fun (n, o) -> (n ^ "-1c", o)) configs));
  let tbl =
    Table.create
      ~title:
        "T3b: Energy normalised to baseline on a SINGLE-core machine          (component gating and DVFS effects within one core)"
      ~header:("workload" :: List.map fst configs)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) configs)
      ()
  in
  let per_config = Hashtbl.create 8 in
  List.iter
    (fun (w : Workload.t) ->
      let base = run_workload ~machine w ~config:"baseline-1c" Compile.baseline in
      let cells =
        List.map
          (fun (name, opts) ->
            let r = run_workload ~machine w ~config:(name ^ "-1c") opts in
            let ratio = normalised ~base r in
            let cur = Option.value ~default:[] (Hashtbl.find_opt per_config name) in
            Hashtbl.replace per_config name (ratio :: cur);
            fmt_ratio ratio)
          configs
      in
      Table.add_row tbl (w.Workload.name :: cells))
    all_workloads;
  Table.add_row tbl
    ("geomean"
    :: List.map
         (fun (name, _) -> fmt_ratio (geomean_of (Hashtbl.find per_config name)))
         configs);
  tbl

(* ------------------------------------------------------------------ *)
(* T4: performance impact                                              *)
(* ------------------------------------------------------------------ *)

let t4 () : Table.t =
  run_matrix (cross all_workloads (standard_configs ~n_cores:4));
  let tbl =
    Table.create
      ~title:
        "T4: Performance impact vs baseline (overhead of power management; \
         speedup of pattern parallelisation)"
      ~header:
        [ "workload"; "pg ovh%"; "dvfs ovh%"; "pg+dvfs ovh%"; "par speedup";
          "full speedup" ]
      ~aligns:Table.[ Left; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (w : Workload.t) ->
      let base = run_workload w ~config:"baseline" Compile.baseline in
      let t0 = time_ns base in
      let ovh name opts =
        let r = run_workload w ~config:name opts in
        Lp_util.Stats.percent_change ~before:t0 ~after:(time_ns r)
      in
      let speedup name opts =
        let r = run_workload w ~config:name opts in
        t0 /. time_ns r
      in
      Table.add_row tbl
        [
          w.Workload.name;
          Table.fmt_float ~digits:2 (ovh "pg" Compile.pg_only);
          Table.fmt_float ~digits:2 (ovh "dvfs" Compile.dvfs_only);
          Table.fmt_float ~digits:2 (ovh "pg+dvfs" Compile.pg_dvfs);
          Table.fmt_float ~digits:2 (speedup "par" (Compile.par_only ~n_cores:4));
          Table.fmt_float ~digits:2 (speedup "full" (Compile.full ~n_cores:4));
        ])
    all_workloads;
  tbl

(* ------------------------------------------------------------------ *)
(* T5: compile statistics                                              *)
(* ------------------------------------------------------------------ *)

let t5 () : Table.t =
  run_matrix (cross all_workloads [ ("pg", Compile.pg_only) ]);
  let tbl =
    Table.create
      ~title:
        "T5: Compile statistics (pg-only config): pass time, gating \
         component-toggles before/after Sink-N-Hoist"
      ~header:
        [ "workload"; "compile ms"; "IR instrs"; "gate-toggles pre";
          "gate-toggles post"; "merge red%" ]
      ~aligns:Table.[ Left; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (w : Workload.t) ->
      let r = run_workload w ~config:"pg" Compile.pg_only in
      let c = r.compiled in
      let total_ms =
        1000.0
        *. List.fold_left
             (fun acc (s : T.Pass.stats) -> acc +. s.T.Pass.seconds)
             0.0 c.Compile.pass_stats
      in
      let pre = c.Compile.gating_before_merge.T.Gating.components_toggled in
      let post = c.Compile.gating_after_merge.T.Gating.components_toggled in
      let red =
        if pre = 0 then 0.0
        else 100.0 *. float_of_int (pre - post) /. float_of_int pre
      in
      Table.add_row tbl
        [
          w.Workload.name;
          Table.fmt_float ~digits:2 total_ms;
          string_of_int (Prog.total_instrs c.Compile.prog);
          string_of_int pre;
          string_of_int post;
          Table.fmt_float ~digits:1 red;
        ])
    all_workloads;
  tbl
