(** Figures F1-F6 of the evaluation, printed as data series (one table
    per figure; each row is one point of the plotted series). *)

open Exp_common
module T = Lp_transforms
module Power_model = Lp_power.Power_model
module Operating_point = Lp_power.Operating_point

(* ------------------------------------------------------------------ *)
(* F1: speedup & energy vs core count                                  *)
(* ------------------------------------------------------------------ *)

let f1_core_counts = [ 1; 2; 4; 8 ]

let f1 () : Table.t =
  let reps =
    List.map Lp_workloads.Suite.find_exn Lp_workloads.Suite.representative
  in
  run_matrix
    (cross ~machine:(machine_with_cores 1) reps
       [ ("baseline-1c", Compile.baseline) ]
    @ List.concat_map
        (fun n ->
          cross ~machine:(machine_with_cores n) reps
            [ (Printf.sprintf "full-%dc" n, Compile.full ~n_cores:n) ])
        f1_core_counts);
  let tbl =
    Table.create
      ~title:
        "F1: Scaling with core count (full config; speedup and energy vs \
         1-core baseline)"
      ~header:[ "workload"; "cores"; "speedup"; "energy ratio"; "edp ratio" ]
      ~aligns:Table.[ Left; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      let base =
        run_workload_result ~machine:(machine_with_cores 1) w
          ~config:"baseline-1c" Compile.baseline
      in
      List.iter
        (fun n ->
          let machine = machine_with_cores n in
          let c =
            run_workload_result ~machine w
              ~config:(Printf.sprintf "full-%dc" n)
              (Compile.full ~n_cores:n)
          in
          Table.add_row tbl
            [
              name;
              string_of_int n;
              scell2 base c (fun b r ->
                  Table.fmt_float ~digits:2 (time_ns b /. time_ns r));
              scell2 base c (fun b r -> fmt_ratio (energy r /. energy b));
              scell2 base c (fun b r -> fmt_ratio (edp r /. edp b));
            ])
        f1_core_counts)
    Lp_workloads.Suite.representative;
  tbl

(* ------------------------------------------------------------------ *)
(* F2: energy-delay product                                            *)
(* ------------------------------------------------------------------ *)

let f2 () : Table.t =
  run_matrix
    (cross all_workloads
       [ ("baseline", Compile.baseline); ("full", Compile.full ~n_cores:4) ]);
  let tbl =
    Table.create
      ~title:"F2: Energy-delay product, full vs baseline (lower is better)"
      ~header:[ "workload"; "baseline EDP"; "full EDP"; "ratio" ]
      ~aligns:Table.[ Left; Right; Right; Right ]
      ()
  in
  let ratios = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let base = run_workload_result w ~config:"baseline" Compile.baseline in
      let full = run_workload_result w ~config:"full" (Compile.full ~n_cores:4) in
      ratios := fopt2 base full (fun b r -> edp r /. edp b) :: !ratios;
      Table.add_row tbl
        [
          w.Workload.name;
          scell base (fun b -> Table.fmt_float ~digits:1 (edp b));
          scell full (fun r -> Table.fmt_float ~digits:1 (edp r));
          scell2 base full (fun b r -> fmt_ratio (edp r /. edp b));
        ])
    all_workloads;
  Table.add_row tbl [ "geomean"; "-"; "-"; geomean_str !ratios ];
  tbl

(* ------------------------------------------------------------------ *)
(* F3: energy breakdown                                                *)
(* ------------------------------------------------------------------ *)

let f3 () : Table.t =
  run_matrix
    (cross
       (List.map Lp_workloads.Suite.find_exn Lp_workloads.Suite.representative)
       [ ("baseline", Compile.baseline); ("full", Compile.full ~n_cores:4) ]);
  let tbl =
    Table.create
      ~title:"F3: Energy breakdown by category (uJ), baseline vs full"
      ~header:
        [ "workload"; "config"; "dynamic"; "leak-active"; "leak-idle";
          "gate-ovh"; "dvfs-ovh"; "comm"; "total" ]
      ~aligns:
        Table.[ Left; Left; Right; Right; Right; Right; Right; Right; Right ]
      ()
  in
  let module L = Lp_power.Energy_ledger in
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      List.iter
        (fun (cfg, opts) ->
          let c = run_workload_result w ~config:cfg opts in
          let cell cat =
            scell c (fun r ->
                Table.fmt_float ~digits:1
                  (L.of_category r.outcome.Sim.energy cat /. 1e3))
          in
          Table.add_row tbl
            [
              name; cfg;
              cell L.Dynamic;
              cell L.Leakage_active;
              cell L.Leakage_idle;
              cell L.Gating_overhead;
              cell L.Dvfs_overhead;
              cell L.Communication;
              scell c (fun r ->
                  Table.fmt_float ~digits:1
                    (L.total r.outcome.Sim.energy /. 1e3));
            ])
        [ ("baseline", Compile.baseline); ("full", Compile.full ~n_cores:4) ])
    Lp_workloads.Suite.representative;
  tbl

(* ------------------------------------------------------------------ *)
(* F4: sensitivity to the gating break-even threshold                  *)
(* ------------------------------------------------------------------ *)

let f4_scales = [ 0.0625; 0.25; 1.0; 4.0; 16.0; 64.0; 1000.0 ]
let f4_workloads = [ "phases"; "jpegblocks"; "fft" ]

(** The sweep runs on a leakage-heavy technology node (3x leakage) where
    the break-even threshold actually arbitrates: too eager (small scale)
    pays transition overhead on short regions, too conservative (large
    scale) leaves leakage on the table. *)
let f4_config scale = Printf.sprintf "pg-be%.4f" scale

let f4_opts scale =
  Compile.Options.update
    ~gating_opts:
      { T.Gating.default_options with T.Gating.break_even_scale = scale }
    Compile.pg_only

let f4 () : Table.t =
  let power = Power_model.leaky () in
  let machine = Lp_machine.Machine.generic ~n_cores:4 ~power () in
  run_matrix
    (cross ~machine
       (List.map Lp_workloads.Suite.find_exn f4_workloads)
       (List.map (fun s -> (f4_config s, f4_opts s)) (1.0 :: f4_scales)));
  let tbl =
    Table.create
      ~title:
        "F4: Gating break-even threshold sweep (pg-only, leaky node; \
         energy normalised to scale=1.0)"
      ~header:[ "workload"; "scale"; "energy ratio"; "gate transitions" ]
      ~aligns:Table.[ Left; Right; Right; Right ]
      ()
  in
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      let run scale =
        run_workload_result ~machine w ~config:(f4_config scale) (f4_opts scale)
      in
      let reference = run 1.0 in
      List.iter
        (fun scale ->
          let c = run scale in
          Table.add_row tbl
            [
              name;
              Table.fmt_float ~digits:4 scale;
              scell2 reference c (fun b r ->
                  fmt_ratio (energy r /. energy b));
              scell c (fun r -> string_of_int r.outcome.Sim.gate_transitions);
            ])
        f4_scales)
    f4_workloads;
  tbl

(* ------------------------------------------------------------------ *)
(* F5: number of DVFS operating points                                 *)
(* ------------------------------------------------------------------ *)

let f5_levels = [ 2; 3; 4; 6 ]
let f5_workloads = [ "histogram"; "imgpipe"; "jpegblocks" ]

let f5_machine levels =
  let power = Power_model.default ~n_levels:levels () in
  Lp_machine.Machine.generic ~n_cores:4 ~power ()

let f5_config levels = Printf.sprintf "full-L%d" levels

let f5 () : Table.t =
  run_matrix
    (List.concat_map
       (fun levels ->
         cross ~machine:(f5_machine levels)
           (List.map Lp_workloads.Suite.find_exn f5_workloads)
           [ (f5_config levels, Compile.full ~n_cores:4) ])
       f5_levels);
  let tbl =
    Table.create
      ~title:
        "F5: Energy vs number of V/f operating points (full config; \
         normalised to the 2-point machine)"
      ~header:[ "workload"; "levels"; "energy ratio"; "time ratio" ]
      ~aligns:Table.[ Left; Right; Right; Right ]
      ()
  in
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      let run levels =
        run_workload_result ~machine:(f5_machine levels) w
          ~config:(f5_config levels) (Compile.full ~n_cores:4)
      in
      let reference = run 2 in
      List.iter
        (fun levels ->
          let c = run levels in
          Table.add_row tbl
            [
              name;
              string_of_int levels;
              scell2 reference c (fun b r -> fmt_ratio (energy r /. energy b));
              scell2 reference c (fun b r ->
                  fmt_ratio (time_ns r /. time_ns b));
            ])
        f5_levels)
    f5_workloads;
  tbl

(* ------------------------------------------------------------------ *)
(* F6: Sink-N-Hoist ablation                                           *)
(* ------------------------------------------------------------------ *)

let f6_no_merge_opts =
  Compile.Options.update ~sink_n_hoist:false Compile.pg_only

let f6 () : Table.t =
  run_matrix
    (cross all_workloads
       [ ("pg-nomerge", f6_no_merge_opts); ("pg", Compile.pg_only) ]);
  let tbl =
    Table.create
      ~title:
        "F6: Sink-N-Hoist ablation (pg-only with and without the merge)"
      ~header:
        [ "workload"; "gate toggles (no merge)"; "gate toggles (merge)";
          "reduction%"; "energy ratio (merge/no)"; "transitions (no)";
          "transitions (merge)" ]
      ~aligns:Table.[ Left; Right; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (w : Workload.t) ->
      let nm = run_workload_result w ~config:"pg-nomerge" f6_no_merge_opts in
      let m = run_workload_result w ~config:"pg" Compile.pg_only in
      let count (c : Compile.compiled) =
        c.Compile.gating_after_merge.T.Gating.components_toggled
      in
      Table.add_row tbl
        [
          w.Workload.name;
          scell nm (fun r -> string_of_int (count r.compiled));
          scell m (fun r -> string_of_int (count r.compiled));
          scell2 nm m (fun n r ->
              let pre = count n.compiled and post = count r.compiled in
              Table.fmt_float ~digits:1
                (if pre = 0 then 0.0
                 else 100.0 *. float_of_int (pre - post) /. float_of_int pre));
          scell2 nm m (fun n r -> fmt_ratio (energy r /. energy n));
          scell nm (fun r -> string_of_int r.outcome.Sim.gate_transitions);
          scell m (fun r -> string_of_int r.outcome.Sim.gate_transitions);
        ])
    all_workloads;
  tbl

(* ------------------------------------------------------------------ *)
(* A1: machine sensitivity (extension beyond the reconstructed set)    *)
(* ------------------------------------------------------------------ *)

(** Full-vs-baseline energy and speedup across three machine models:
    the win grows with core count and with the node's leakage share. *)
let a1_workloads = [ "fir"; "fraciter"; "imgpipe"; "memops" ]

let a1 () : Table.t =
  let machines =
    [ Lp_machine.Machine.pac_duo_like ();
      Lp_machine.Machine.generic ~n_cores:4 ();
      Lp_machine.Machine.octa_leaky () ]
  in
  run_matrix
    (List.concat_map
       (fun machine ->
         cross ~machine
           (List.map Lp_workloads.Suite.find_exn a1_workloads)
           [ ("baseline", Compile.baseline);
             ( "full-native",
               Compile.full
                 ~n_cores:(Lp_machine.Machine.n_cores machine) ) ])
       machines);
  let tbl =
    Table.create
      ~title:
        "A1: Machine sensitivity — full vs baseline on three machine models"
      ~header:
        [ "workload"; "machine"; "cores"; "speedup"; "energy ratio" ]
      ~aligns:Table.[ Left; Left; Right; Right; Right ]
      ()
  in
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      List.iter
        (fun machine ->
          let base =
            run_workload_result ~machine w ~config:"baseline" Compile.baseline
          in
          let full =
            run_workload_result ~machine w ~config:"full-native"
              (Compile.full ~n_cores:(Lp_machine.Machine.n_cores machine))
          in
          Table.add_row tbl
            [
              name;
              machine.Lp_machine.Machine.name;
              string_of_int (Lp_machine.Machine.n_cores machine);
              scell2 base full (fun b r ->
                  Table.fmt_float ~digits:2 (time_ns b /. time_ns r));
              scell2 base full (fun b r -> fmt_ratio (energy r /. energy b));
            ])
        machines)
    a1_workloads;
  tbl


(* ------------------------------------------------------------------ *)
(* A2: block vs cyclic doall distribution (extension)                  *)
(* ------------------------------------------------------------------ *)

(** On index-correlated work (the triangular kernel), a block split makes
    the last core the straggler; cyclic interleaving balances it.  On
    uniform kernels the two are equivalent. *)
let a2_workloads = [ "tri"; "fir"; "conv2d" ]

let a2 () : Table.t =
  let ws = List.map Lp_workloads.Suite.find_exn a2_workloads in
  run_matrix
    (cross ws
       (("baseline", Compile.baseline)
       :: List.map
            (fun (dname, dist) ->
              ( "full-" ^ dname,
                Compile.Options.update ~distribution:dist (Compile.full ~n_cores:4) ))
            [ ("block", T.Parallelize.Block); ("cyclic", T.Parallelize.Cyclic) ]));
  let tbl =
    Table.create
      ~title:"A2: doall distribution ablation — block vs cyclic (full, 4 cores)"
      ~header:[ "workload"; "distribution"; "speedup"; "energy ratio" ]
      ~aligns:Table.[ Left; Left; Right; Right ]
      ()
  in
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      let base = run_workload_result w ~config:"baseline" Compile.baseline in
      List.iter
        (fun (dname, dist) ->
          let opts =
            Compile.Options.update ~distribution:dist (Compile.full ~n_cores:4)
          in
          let c = run_workload_result w ~config:("full-" ^ dname) opts in
          Table.add_row tbl
            [
              name; dname;
              scell2 base c (fun b r ->
                  Table.fmt_float ~digits:2 (time_ns b /. time_ns r));
              scell2 base c (fun b r -> fmt_ratio (energy r /. energy b));
            ])
        [ ("block", T.Parallelize.Block); ("cyclic", T.Parallelize.Cyclic) ])
    a2_workloads;
  tbl


(* ------------------------------------------------------------------ *)
(* A3: completion-sync ablation (extension)                            *)
(* ------------------------------------------------------------------ *)

(** Doall completion via per-worker acknowledge messages vs one all-core
    barrier.  Expected to be second-order on these machines (both
    mechanisms are a handful of link transactions per instance). *)
let a3_workloads = [ "fir"; "conv2d"; "fft" ]

let a3 () : Table.t =
  run_matrix
    (cross
       (List.map Lp_workloads.Suite.find_exn a3_workloads)
       (List.map
          (fun (sync, cfg) ->
            (cfg, Compile.Options.update ~sync (Compile.full ~n_cores:4)))
          [ (T.Parallelize.Done_channel, "full");
            (T.Parallelize.Barrier_sync, "full-barrier") ]));
  let tbl =
    Table.create
      ~title:"A3: doall completion sync — done-channel vs barrier (full, 4 cores)"
      ~header:[ "workload"; "sync"; "time ratio"; "energy ratio" ]
      ~aligns:Table.[ Left; Left; Right; Right ]
      ()
  in
  List.iter
    (fun name ->
      let w = Lp_workloads.Suite.find_exn name in
      let run sync cfg =
        run_workload_result w ~config:cfg
          (Compile.Options.update ~sync (Compile.full ~n_cores:4))
      in
      let dc = run T.Parallelize.Done_channel "full" in
      let bar = run T.Parallelize.Barrier_sync "full-barrier" in
      List.iter
        (fun (nm, c) ->
          Table.add_row tbl
            [
              name; nm;
              scell2 dc c (fun b r -> fmt_ratio (time_ns r /. time_ns b));
              scell2 dc c (fun b r -> fmt_ratio (energy r /. energy b));
            ])
        [ ("done-chan", dc); ("barrier", bar) ])
    a3_workloads;
  tbl
