(** Shared plumbing for the evaluation experiments (tables T1-T5, figures
    F1-F6).  Each experiment module exposes [run : unit -> Lp_util.Table.t
    list] so the benchmark executable, the CLI and the tests can all drive
    the same code.

    The evaluation matrix is embarrassingly parallel: every (workload,
    config, machine) triple compiles and simulates independently.  Each
    experiment therefore declares the triples it needs as [job] values and
    fans them out over [Lp_util.Domain_pool] via [run_matrix], which fills
    the shared memo [cache]; the table is then rendered sequentially from
    the cache, so output is byte-identical whatever the pool size. *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Pattern = Lp_patterns.Pattern
module Workload = Lp_workloads.Workload
module Table = Lp_util.Table
module Domain_pool = Lp_util.Domain_pool
module Diag = Lp_util.Diag
module Fault = Lp_util.Fault
module Obs = Lp_obs.Obs

(* ------------------------------------------------------------------ *)
(* The driver context                                                  *)
(* ------------------------------------------------------------------ *)

(* Experiment entry points are [unit -> Table.t list], so the context is
   installed once by the process entry point (bin/, bench/) rather than
   threaded through every table function.  The default is the disabled
   recorder with default config — exactly the pre-context behaviour. *)
let ctx = Atomic.make Compile.default_ctx

let set_ctx c = Atomic.set ctx c
let current_ctx () = Atomic.get ctx

(** The machine of the main evaluation. *)
let default_machine () = Machine.generic ~n_cores:4 ()

(** Big machine for the core-count sweep. *)
let machine_with_cores n = Machine.generic ~n_cores:n ()

(** The compiler configurations every energy table compares. *)
let standard_configs ~n_cores =
  [
    ("baseline", Compile.baseline);
    ("pg", Compile.pg_only);
    ("dvfs", Compile.dvfs_only);
    ("pg+dvfs", Compile.pg_dvfs);
    ("par", Compile.par_only ~n_cores);
    ("full", Compile.full ~n_cores);
  ]

type run_result = {
  workload : string;
  config : string;
  compiled : Compile.compiled;
  outcome : Sim.outcome;
}

(** One evaluated matrix cell: the run, or the structured diagnostic it
    degraded to, plus how many attempts it took (more than one when a
    transient fault was retried). *)
type cell = {
  attempts : int;
  result : (run_result, Diag.t) result;
}

(* memo so that T3/T4/F2/F6 don't re-simulate the same (workload, config,
   machine) triple.  Guarded by [cache_mutex]: [run_matrix] fills it from
   several domains at once.  A racing miss may compute a triple twice;
   compilation is deterministic, so whichever insert wins is the same
   value.  Failed cells are cached too, so the table renderers see the
   same outcome (and retry count) the matrix produced. *)
let cache : (string * string * string, cell) Hashtbl.t = Hashtbl.create 64

let cache_mutex = Mutex.create ()

let cache_find key =
  Mutex.lock cache_mutex;
  let r = Hashtbl.find_opt cache key in
  Mutex.unlock cache_mutex;
  r

let cache_add key r =
  Mutex.lock cache_mutex;
  if not (Hashtbl.mem cache key) then Hashtbl.replace cache key r;
  Mutex.unlock cache_mutex

(** Drop all memoised runs (the bench harness uses this to time a cold
    sequential reference pass against a cold parallel pass). *)
let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex

(* ------------------------------------------------------------------ *)
(* Graceful degradation and retry                                      *)
(* ------------------------------------------------------------------ *)

(** Retries after a transient failure (injected bounded faults, simulated
    transient bus faults); comes from the installed context's
    [Runtime_config.retries] (entry points resolve [LP_RETRIES] / the
    [--retries] flag into it). *)
let max_retries () = (current_ctx ()).Compile.config.Lp_util.Runtime_config.retries

(** Deterministic bounded exponential backoff: 4 ms, 8 ms, ... capped at
    50 ms (the shared {!Lp_util.Backoff} schedule, re-exported here
    because this is the retry path PR 2 introduced and tests target). *)
let backoff_s = Lp_util.Backoff.backoff_s

let attempt_run ~(machine : Machine.t) (w : Workload.t) ~(config : string)
    (opts : Compile.options) : (run_result, Diag.t) result =
  Fault.with_scope w.Workload.name @@ fun () ->
  (* audit-report events are labelled by matrix cell, not by evaluating
     domain, so the exported report is deterministic across pool sizes *)
  Lp_obs.Report.with_scope (w.Workload.name ^ "/" ^ config) @@ fun () ->
  match
    Fault.check Fault.Worker ~key:config;
    Compile.run ~ctx:(current_ctx ()) ~opts ~machine w.Workload.source
  with
  | (compiled, outcome) ->
    Ok { workload = w.Workload.name; config; compiled; outcome }
  | exception e -> (
    match Compile.diag_of_exn e with
    | Some d -> Error d
    | None ->
      (* even a foreign crash must not take the whole matrix down *)
      Error
        (Diag.make Diag.Internal ~code:Diag.code_internal
           (Printexc.to_string e)))

(** Evaluate (and memoise) one cell, retrying transient failures with
    deterministic bounded backoff.  A cache miss runs under a per-cell
    [matrix] span (its tid is the evaluating pool domain) and bumps the
    [matrix.cells] / [matrix.retries] / [matrix.failures] counters. *)
let run_workload_cell ?(machine = default_machine ()) (w : Workload.t)
    ~(config : string) (opts : Compile.options) : cell =
  let key = (w.Workload.name, config, machine.Machine.name) in
  match cache_find key with
  | Some c -> c
  | None ->
    let obs = (current_ctx ()).Compile.obs in
    let c =
      Obs.span obs ~cat:"matrix"
        ~args:
          [ ("workload", Obs.Str w.Workload.name);
            ("config", Obs.Str config);
            ("machine", Obs.Str machine.Machine.name);
            ("domain", Obs.Int (Domain.self () :> int)) ]
        (Printf.sprintf "%s/%s" w.Workload.name config)
      @@ fun () ->
      let retries = max_retries () in
      let rec go attempt =
        match attempt_run ~machine w ~config opts with
        | Error d when d.Diag.transient && attempt <= retries ->
          Unix.sleepf (backoff_s attempt);
          go (attempt + 1)
        | result -> { attempts = attempt; result }
      in
      go 1
    in
    Obs.add obs "matrix.cells" 1;
    Obs.add obs "matrix.retries" (c.attempts - 1);
    (match c.result with
    | Ok _ -> ()
    | Error _ -> Obs.add obs "matrix.failures" 1);
    cache_add key c;
    c

(** The cell's result alone (what the table renderers consume). *)
let run_workload_result ?machine (w : Workload.t) ~(config : string)
    (opts : Compile.options) : (run_result, Diag.t) result =
  (run_workload_cell ?machine w ~config opts).result

(** Legacy raising accessor: a failed cell raises [Diag.Error]. *)
let run_workload ?machine (w : Workload.t) ~(config : string)
    (opts : Compile.options) : run_result =
  match run_workload_result ?machine w ~config opts with
  | Ok r -> r
  | Error d -> raise (Diag.Error d)

(** Every failed cell currently memoised, sorted for deterministic
    summaries: ((workload, config, machine), attempts, diagnostic). *)
let failed_cells () : ((string * string * string) * int * Diag.t) list =
  Mutex.lock cache_mutex;
  let failed =
    Hashtbl.fold
      (fun key c acc ->
        match c.result with
        | Ok _ -> acc
        | Error d -> (key, c.attempts, d) :: acc)
      cache []
  in
  Mutex.unlock cache_mutex;
  List.sort compare failed

(** Snapshot of every memoised cell's status, sorted:
    ((workload, config, machine), attempts, error code option). *)
let cell_statuses () : ((string * string * string) * int * string option) list =
  Mutex.lock cache_mutex;
  let all =
    Hashtbl.fold
      (fun key c acc ->
        let code =
          match c.result with Ok _ -> None | Error d -> Some d.Diag.code
        in
        (key, c.attempts, code) :: acc)
      cache []
  in
  Mutex.unlock cache_mutex;
  List.sort compare all

(** Snapshot of every memoised cell that ran, with the two simulated
    metrics the regression baseline tracks, sorted:
    ((workload, config, machine), total compute cycles, energy in nJ).
    Simulation is deterministic, so these are exact across hosts and
    pool sizes. *)
let cell_metrics () : ((string * string * string) * float * float) list =
  Mutex.lock cache_mutex;
  let all =
    Hashtbl.fold
      (fun key c acc ->
        match c.result with
        | Error _ -> acc
        | Ok r ->
          let cycles =
            Array.fold_left
              (fun a n -> a +. float_of_int n)
              0.0 r.outcome.Sim.cycles_per_core
          in
          (key, cycles, Ledger.total r.outcome.Sim.energy) :: acc)
      cache []
  in
  Mutex.unlock cache_mutex;
  List.sort compare all

(* ------------------------------------------------------------------ *)
(* Error-aware cell rendering                                          *)
(* ------------------------------------------------------------------ *)

(** How a failed cell renders in a table. *)
let err_str (d : Diag.t) = Printf.sprintf "ERR(%s)" d.Diag.code

(** Format a cell: the metric when it ran, [ERR(<code>)] when it failed. *)
let scell (c : (run_result, Diag.t) result) (f : run_result -> string) : string =
  match c with Ok r -> f r | Error d -> err_str d

(** A cell pairing two runs (ratios, overheads): the failed side's code
    wins, preferring the non-base cell's. *)
let scell2 (base : (run_result, Diag.t) result)
    (c : (run_result, Diag.t) result) (f : run_result -> run_result -> string)
    : string =
  match (base, c) with
  | (Ok b, Ok r) -> f b r
  | (_, Error d) | (Error d, _) -> err_str d

(** Metric of a pair of cells, for aggregate rows; [None] when either
    side failed. *)
let fopt2 base c (f : run_result -> run_result -> float) : float option =
  match (base, c) with (Ok b, Ok r) -> Some (f b r) | _ -> None

(* ------------------------------------------------------------------ *)
(* The parallel evaluation matrix                                      *)
(* ------------------------------------------------------------------ *)

(** One cell of the evaluation matrix. *)
type job = {
  j_workload : Workload.t;
  j_config : string;
  j_opts : Compile.options;
  j_machine : Machine.t;
}

let job ?machine (w : Workload.t) ~(config : string) (opts : Compile.options)
    : job =
  let machine = match machine with Some m -> m | None -> default_machine () in
  { j_workload = w; j_config = config; j_opts = opts; j_machine = machine }

(** [cross ?machine ws configs] — every workload under every (name, opts)
    configuration, the common matrix shape. *)
let cross ?machine (ws : Workload.t list)
    (configs : (string * Compile.options) list) : job list =
  List.concat_map
    (fun w -> List.map (fun (c, o) -> job ?machine w ~config:c o) configs)
    ws

(** Compile+simulate every job over the domain pool, memoising the
    results; already-cached and duplicate triples are skipped.  After
    [run_matrix], [run_workload_cell] on any of the jobs is a cache hit.
    A failing cell never aborts the matrix: it is retried (bounded,
    deterministic backoff) when transient and otherwise memoised as a
    structured diagnostic for the renderers to show as [ERR(<code>)]. *)
let run_matrix ?pool (jobs : job list) : unit =
  let seen = Hashtbl.create 64 in
  let todo =
    List.filter
      (fun j ->
        let key =
          (j.j_workload.Workload.name, j.j_config, j.j_machine.Machine.name)
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          Option.is_none (cache_find key)
        end)
      jobs
  in
  let obs = (current_ctx ()).Compile.obs in
  Obs.span obs ~cat:"matrix"
    ~args:[ ("jobs", Obs.Int (List.length todo)) ]
    "run_matrix"
  @@ fun () ->
  Domain_pool.parallel_iter ?pool
    (fun j ->
      ignore
        (run_workload_cell ~machine:j.j_machine j.j_workload ~config:j.j_config
           j.j_opts))
    todo

let energy r = Ledger.total r.outcome.Sim.energy
let time_ns r = r.outcome.Sim.duration_ns
let edp r = Sim.edp r.outcome

(** Energy of [config] normalised to the baseline run. *)
let normalised ~base r = energy r /. energy base

let fmt_ratio = Table.fmt_float ~digits:3

(** Count non-empty source lines of a workload. *)
let source_loc (w : Workload.t) =
  String.split_on_char '\n' w.Workload.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let all_workloads = Lp_workloads.Suite.all

let geomean_of xs = Lp_util.Stats.geomean xs

(** Geomean over aggregate values that survived their cells failing;
    ["-"] when every contributing cell failed. *)
let geomean_str (vals : float option list) : string =
  match List.filter_map Fun.id vals with
  | [] -> "-"
  | xs -> fmt_ratio (geomean_of xs)
