(** Shared plumbing for the evaluation experiments (tables T1-T5, figures
    F1-F6).  Each experiment module exposes [run : unit -> Lp_util.Table.t
    list] so the benchmark executable, the CLI and the tests can all drive
    the same code.

    The evaluation matrix is embarrassingly parallel: every (workload,
    config, machine) triple compiles and simulates independently.  Each
    experiment therefore declares the triples it needs as [job] values and
    fans them out over [Lp_util.Domain_pool] via [run_matrix], which fills
    the shared memo [cache]; the table is then rendered sequentially from
    the cache, so output is byte-identical whatever the pool size. *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Pattern = Lp_patterns.Pattern
module Workload = Lp_workloads.Workload
module Table = Lp_util.Table
module Domain_pool = Lp_util.Domain_pool

(** The machine of the main evaluation. *)
let default_machine () = Machine.generic ~n_cores:4 ()

(** Big machine for the core-count sweep. *)
let machine_with_cores n = Machine.generic ~n_cores:n ()

(** The compiler configurations every energy table compares. *)
let standard_configs ~n_cores =
  [
    ("baseline", Compile.baseline);
    ("pg", Compile.pg_only);
    ("dvfs", Compile.dvfs_only);
    ("pg+dvfs", Compile.pg_dvfs);
    ("par", Compile.par_only ~n_cores);
    ("full", Compile.full ~n_cores);
  ]

type run_result = {
  workload : string;
  config : string;
  compiled : Compile.compiled;
  outcome : Sim.outcome;
}

(* memo so that T3/T4/F2/F6 don't re-simulate the same (workload, config,
   machine) triple.  Guarded by [cache_mutex]: [run_matrix] fills it from
   several domains at once.  A racing miss may compute a triple twice;
   compilation is deterministic, so whichever insert wins is the same
   value. *)
let cache : (string * string * string, run_result) Hashtbl.t =
  Hashtbl.create 64

let cache_mutex = Mutex.create ()

let cache_find key =
  Mutex.lock cache_mutex;
  let r = Hashtbl.find_opt cache key in
  Mutex.unlock cache_mutex;
  r

let cache_add key r =
  Mutex.lock cache_mutex;
  if not (Hashtbl.mem cache key) then Hashtbl.replace cache key r;
  Mutex.unlock cache_mutex

(** Drop all memoised runs (the bench harness uses this to time a cold
    sequential reference pass against a cold parallel pass). *)
let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex

let run_workload ?(machine = default_machine ()) (w : Workload.t)
    ~(config : string) (opts : Compile.options) : run_result =
  let key = (w.Workload.name, config, machine.Machine.name) in
  match cache_find key with
  | Some r -> r
  | None ->
    let (compiled, outcome) = Compile.run ~opts ~machine w.Workload.source in
    let r = { workload = w.Workload.name; config; compiled; outcome } in
    cache_add key r;
    r

(* ------------------------------------------------------------------ *)
(* The parallel evaluation matrix                                      *)
(* ------------------------------------------------------------------ *)

(** One cell of the evaluation matrix. *)
type job = {
  j_workload : Workload.t;
  j_config : string;
  j_opts : Compile.options;
  j_machine : Machine.t;
}

let job ?machine (w : Workload.t) ~(config : string) (opts : Compile.options)
    : job =
  let machine = match machine with Some m -> m | None -> default_machine () in
  { j_workload = w; j_config = config; j_opts = opts; j_machine = machine }

(** [cross ?machine ws configs] — every workload under every (name, opts)
    configuration, the common matrix shape. *)
let cross ?machine (ws : Workload.t list)
    (configs : (string * Compile.options) list) : job list =
  List.concat_map
    (fun w -> List.map (fun (c, o) -> job ?machine w ~config:c o) configs)
    ws

(** Compile+simulate every job over the domain pool, memoising the
    results; already-cached and duplicate triples are skipped.  After
    [run_matrix], [run_workload] on any of the jobs is a cache hit. *)
let run_matrix ?pool (jobs : job list) : unit =
  let seen = Hashtbl.create 64 in
  let todo =
    List.filter
      (fun j ->
        let key =
          (j.j_workload.Workload.name, j.j_config, j.j_machine.Machine.name)
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          Option.is_none (cache_find key)
        end)
      jobs
  in
  Domain_pool.parallel_iter ?pool
    (fun j ->
      ignore
        (run_workload ~machine:j.j_machine j.j_workload ~config:j.j_config
           j.j_opts))
    todo

let energy r = Ledger.total r.outcome.Sim.energy
let time_ns r = r.outcome.Sim.duration_ns
let edp r = Sim.edp r.outcome

(** Energy of [config] normalised to the baseline run. *)
let normalised ~base r = energy r /. energy base

let fmt_ratio = Table.fmt_float ~digits:3

(** Count non-empty source lines of a workload. *)
let source_loc (w : Workload.t) =
  String.split_on_char '\n' w.Workload.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let all_workloads = Lp_workloads.Suite.all

let geomean_of xs = Lp_util.Stats.geomean xs
