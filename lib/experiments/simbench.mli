(** The simulator microbenchmark behind [bench/sim_bench.exe] and the
    committed [BENCH_sim.json] artifact: wall-clock throughput of the
    closure-compiled stepper vs the interpretive reference over the
    workload suite, plus the deterministic per-workload metrics dump CI
    byte-diffs to prove the two modes agree (see docs/PERF.md). *)

type mode_stats = {
  runs : int;            (** simulation repetitions timed *)
  wall_s : float;        (** total wall-clock over those runs *)
  instrs_per_sec : float;
  cells_per_sec : float; (** whole-simulation runs per second *)
}

type row = {
  sb_workload : string;
  sb_instrs : int;  (** instructions simulated by one run (mode-invariant) *)
  sb_on : mode_stats;   (** predecode on: closure-compiled stepper *)
  sb_off : mode_stats;  (** predecode off: interpretive reference *)
  sb_speedup : float;   (** on vs off instruction throughput *)
}

type t = {
  sb_machine : string;
  sb_config : string;
  sb_rows : row list;
  sb_total_on : float;   (** suite instr/s, predecode on *)
  sb_total_off : float;  (** suite instr/s, predecode off *)
  sb_total_speedup : float;
}

(** Time both simulator modes over every workload of the committed
    suite ([Compile.full] on the 4-core generic machine).  Each mode of
    each workload gets one warm-up run, then repeats until both floors
    are met ([min_wall_s] seconds of wall-clock, default 0.2, and
    [min_runs] repetitions, default 3). *)
val measure : ?min_wall_s:float -> ?min_runs:int -> unit -> t

(** Deterministic per-workload simulated metrics (cycles, energy,
    instructions, steps — no wall-clock, no mode marker) under the given
    simulator mode.  CI writes this once per mode and diffs the two
    files byte-for-byte. *)
val metrics : predecode:bool -> unit -> Lp_util.Json.t

val schema : string

val to_json : t -> Lp_util.Json.t

(** Inverse of {!to_json}; [Error] names the first missing/mistyped
    field.  Locks the [lowpower-bench-sim/1] schema for downstream
    tooling. *)
val of_json : Lp_util.Json.t -> (t, string) result
