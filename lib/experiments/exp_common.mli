(** Shared plumbing for the evaluation experiments (tables T1-T5, figures
    F1-F6): the parallel evaluation matrix, its memo cache, graceful
    degradation of failed cells, and the cell-rendering helpers.

    The memo cache itself (hashtable, mutex, insert policy) is private to
    the implementation; callers interact with it only through
    {!run_matrix} / {!run_workload_cell} (fill), {!clear_cache} (drop) and
    the {!failed_cells} / {!cell_statuses} snapshots. *)

(** Aliases shared by every experiment module ([open Exp_common] brings
    them into scope). *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Pattern = Lp_patterns.Pattern
module Workload = Lp_workloads.Workload
module Table = Lp_util.Table
module Domain_pool = Lp_util.Domain_pool
module Diag = Lp_util.Diag
module Fault = Lp_util.Fault
module Obs = Lp_obs.Obs

(** {2 Driver context}

    Experiment entry points are [unit -> Table.t], so the driver context
    (telemetry recorder + resolved runtime configuration) is installed
    once by the process entry point (bin/, bench/, a test) rather than
    threaded through every table function.  The default is
    {!Compile.default_ctx}: disabled recorder, default config. *)

val set_ctx : Compile.ctx -> unit
val current_ctx : unit -> Compile.ctx

(** {2 Machines and configurations} *)

(** The machine of the main evaluation. *)
val default_machine : unit -> Machine.t

(** Big machine for the core-count sweep. *)
val machine_with_cores : int -> Machine.t

(** The compiler configurations every energy table compares. *)
val standard_configs : n_cores:int -> (string * Compile.options) list

(** {2 Cells} *)

type run_result = {
  workload : string;
  config : string;
  compiled : Compile.compiled;
  outcome : Sim.outcome;
}

(** One evaluated matrix cell: the run, or the structured diagnostic it
    degraded to, plus how many attempts it took (more than one when a
    transient fault was retried). *)
type cell = {
  attempts : int;
  result : (run_result, Diag.t) result;
}

(** Drop all memoised runs (the bench harness uses this to time a cold
    sequential reference pass against a cold parallel pass). *)
val clear_cache : unit -> unit

(** Retries after a transient failure, from the installed context's
    [Runtime_config.retries]. *)
val max_retries : unit -> int

(** Deterministic bounded exponential backoff used between transient-
    failure retries: delay in seconds before retry number [attempt]
    (1-based) — 4 ms, 8 ms, ... capped at 50 ms.  Pure; exposed so tests
    can pin the schedule (= {!Lp_util.Backoff.backoff_s}). *)
val backoff_s : int -> float

(** Evaluate (and memoise) one cell, retrying transient failures with
    deterministic bounded backoff.  A cache miss runs under a per-cell
    [matrix] span when the installed context's recorder is enabled. *)
val run_workload_cell :
  ?machine:Machine.t ->
  Workload.t ->
  config:string ->
  Compile.options ->
  cell

(** The cell's result alone (what the table renderers consume). *)
val run_workload_result :
  ?machine:Machine.t ->
  Workload.t ->
  config:string ->
  Compile.options ->
  (run_result, Diag.t) result

(** Legacy raising accessor: a failed cell raises [Diag.Error]. *)
val run_workload :
  ?machine:Machine.t ->
  Workload.t ->
  config:string ->
  Compile.options ->
  run_result

(** Every failed cell currently memoised, sorted for deterministic
    summaries: ((workload, config, machine), attempts, diagnostic). *)
val failed_cells : unit -> ((string * string * string) * int * Diag.t) list

(** Snapshot of every memoised cell's status, sorted:
    ((workload, config, machine), attempts, error code option). *)
val cell_statuses :
  unit -> ((string * string * string) * int * string option) list

(** Snapshot of every memoised cell that ran, with the two simulated
    metrics the regression baseline tracks, sorted:
    ((workload, config, machine), total compute cycles, energy in nJ).
    Simulation is deterministic, so these are exact across hosts and
    pool sizes. *)
val cell_metrics : unit -> ((string * string * string) * float * float) list

(** {2 Error-aware cell rendering} *)

(** How a failed cell renders in a table. *)
val err_str : Diag.t -> string

(** Format a cell: the metric when it ran, [ERR(<code>)] when it
    failed. *)
val scell : (run_result, Diag.t) result -> (run_result -> string) -> string

(** A cell pairing two runs (ratios, overheads): the failed side's code
    wins, preferring the non-base cell's. *)
val scell2 :
  (run_result, Diag.t) result ->
  (run_result, Diag.t) result ->
  (run_result -> run_result -> string) ->
  string

(** Metric of a pair of cells, for aggregate rows; [None] when either
    side failed. *)
val fopt2 :
  (run_result, Diag.t) result ->
  (run_result, Diag.t) result ->
  (run_result -> run_result -> float) ->
  float option

(** {2 The parallel evaluation matrix} *)

(** One cell of the evaluation matrix. *)
type job = {
  j_workload : Workload.t;
  j_config : string;
  j_opts : Compile.options;
  j_machine : Machine.t;
}

val job : ?machine:Machine.t -> Workload.t -> config:string -> Compile.options -> job

(** [cross ?machine ws configs] — every workload under every (name, opts)
    configuration, the common matrix shape. *)
val cross :
  ?machine:Machine.t ->
  Workload.t list ->
  (string * Compile.options) list ->
  job list

(** Compile+simulate every job over the domain pool, memoising the
    results; already-cached and duplicate triples are skipped.  After
    [run_matrix], [run_workload_cell] on any of the jobs is a cache hit.
    A failing cell never aborts the matrix: it is retried (bounded,
    deterministic backoff) when transient and otherwise memoised as a
    structured diagnostic for the renderers to show as [ERR(<code>)]. *)
val run_matrix : ?pool:Domain_pool.t -> job list -> unit

(** {2 Metrics and formatting} *)

val energy : run_result -> float
val time_ns : run_result -> float
val edp : run_result -> float

(** Energy of [config] normalised to the baseline run. *)
val normalised : base:run_result -> run_result -> float

val fmt_ratio : float -> string

(** Count non-empty source lines of a workload. *)
val source_loc : Workload.t -> int

val all_workloads : Workload.t list

val geomean_of : float list -> float

(** Geomean over aggregate values that survived their cells failing;
    ["-"] when every contributing cell failed. *)
val geomean_str : float option list -> string
