(** Design-space sweep across the machine zoo.

    Fans the workload suite × compiler-config matrix over every zoo
    machine (or a chosen subset) on the shared {!Exp_common} memo cache
    and [Domain_pool], then renders the results sequentially from the
    cache — so the emitted JSON and crossover table are byte-identical
    whatever the pool size.  The headline artifact is the crossover
    table: the winning compiler configuration per (workload, machine),
    the "which decision pays off where" shape of result the paper's
    argument rests on. *)

module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Workload = Lp_workloads.Workload
module Table = Lp_util.Table
module Diag = Lp_util.Diag
module J = Lp_util.Json

type cell = {
  s_workload : string;
  s_config : string;
  s_machine : string;
  s_cycles : float;       (** total compute cycles across cores *)
  s_energy_nj : float;
  s_duration_ns : float;
  s_status : string option;  (** diagnostic code when the cell failed *)
}

type winner = {
  w_workload : string;
  w_machine : string;
  w_config : string;         (** energy-minimal configuration *)
  w_energy_nj : float;
  w_saving_pct : float;      (** vs the baseline config on that machine *)
}

type t = {
  sw_machines : string list;   (** zoo names, sweep order *)
  sw_workloads : string list;
  sw_configs : string list;
  sw_cells : cell list;        (** sorted by (workload, machine, config) *)
  sw_winners : winner list;    (** sorted by (workload, machine) *)
}

let default_machines = Machine.names

let machine_of_exn name =
  match Machine.of_name name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Sweep: unknown machine %S" name)

let config_names = [ "baseline"; "pg"; "dvfs"; "pg+dvfs"; "par"; "full" ]

let configs_for (m : Machine.t) =
  Exp_common.standard_configs ~n_cores:(Machine.n_cores m)

let total_cycles (o : Sim.outcome) =
  Array.fold_left (fun a n -> a +. float_of_int n) 0.0 o.Sim.cycles_per_core

(** Run the matrix (parallel, memoised) and collect it (sequential). *)
let run ?pool ?(machines = default_machines)
    ?(workloads = Lp_workloads.Suite.names) () : t =
  let ms = List.map machine_of_exn machines in
  let ws = List.map Lp_workloads.Suite.find_exn workloads in
  Exp_common.run_matrix ?pool
    (List.concat_map
       (fun m -> Exp_common.cross ~machine:m ws (configs_for m))
       ms);
  let cells =
    List.concat_map
      (fun w ->
        List.concat_map
          (fun m ->
            List.map
              (fun (config, opts) ->
                match
                  Exp_common.run_workload_result ~machine:m w ~config opts
                with
                | Ok r ->
                  {
                    s_workload = w.Workload.name;
                    s_config = config;
                    s_machine = m.Machine.name;
                    s_cycles = total_cycles r.Exp_common.outcome;
                    s_energy_nj =
                      Ledger.total r.Exp_common.outcome.Sim.energy;
                    s_duration_ns = r.Exp_common.outcome.Sim.duration_ns;
                    s_status = None;
                  }
                | Error d ->
                  {
                    s_workload = w.Workload.name;
                    s_config = config;
                    s_machine = m.Machine.name;
                    s_cycles = 0.0;
                    s_energy_nj = 0.0;
                    s_duration_ns = 0.0;
                    s_status = Some d.Diag.code;
                  })
              (configs_for m))
          ms)
      ws
  in
  let cells =
    List.sort
      (fun a b ->
        compare
          (a.s_workload, a.s_machine, a.s_config)
          (b.s_workload, b.s_machine, b.s_config))
      cells
  in
  (* winner per (workload, machine): lowest energy, ties broken by fewer
     cycles, then by config order — deterministic however the matrix
     was scheduled *)
  let order c =
    match List.find_index (String.equal c) config_names with
    | Some i -> i
    | None -> List.length config_names
  in
  let winners =
    List.concat_map
      (fun w ->
        List.filter_map
          (fun (m : Machine.t) ->
            let ran =
              List.filter
                (fun c ->
                  c.s_workload = w.Workload.name
                  && c.s_machine = m.Machine.name
                  && c.s_status = None)
                cells
            in
            let best =
              List.fold_left
                (fun acc c ->
                  match acc with
                  | None -> Some c
                  | Some b ->
                    if
                      (c.s_energy_nj, c.s_cycles, order c.s_config)
                      < (b.s_energy_nj, b.s_cycles, order b.s_config)
                    then Some c
                    else acc)
                None ran
            in
            Option.map
              (fun (b : cell) ->
                let base_e =
                  match
                    List.find_opt (fun c -> c.s_config = "baseline") ran
                  with
                  | Some c when c.s_energy_nj > 0.0 -> c.s_energy_nj
                  | _ -> b.s_energy_nj
                in
                {
                  w_workload = b.s_workload;
                  w_machine = b.s_machine;
                  w_config = b.s_config;
                  w_energy_nj = b.s_energy_nj;
                  w_saving_pct =
                    100.0 *. (1.0 -. (b.s_energy_nj /. base_e));
                })
              best)
          ms)
      ws
  in
  {
    sw_machines = List.map (fun (m : Machine.t) -> m.Machine.name) ms;
    sw_workloads = List.map (fun w -> w.Workload.name) ws;
    sw_configs = config_names;
    sw_cells = cells;
    sw_winners = winners;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(** The crossover table: winning config (and its saving vs baseline)
    per workload row × machine column. *)
let crossover_table (t : t) : Table.t =
  let tbl =
    Table.create
      ~title:"Sweep: energy-winning configuration per (workload, machine)"
      ~header:("workload" :: t.sw_machines)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Left) t.sw_machines)
      ()
  in
  List.iter
    (fun w ->
      Table.add_row tbl
        (w
        :: List.map
             (fun m ->
               match
                 List.find_opt
                   (fun win -> win.w_workload = w && win.w_machine = m)
                   t.sw_winners
               with
               | Some win ->
                 Printf.sprintf "%s (-%.1f%%)" win.w_config win.w_saving_pct
               | None -> "ERR")
             t.sw_machines))
    t.sw_workloads;
  tbl

(** Workload/machine pairs whose winning config differs from the same
    workload's winner on another machine — the crossovers themselves. *)
let crossovers (t : t) : (string * (string * string) list) list =
  List.filter_map
    (fun w ->
      let wins =
        List.filter (fun win -> win.w_workload = w) t.sw_winners
      in
      let distinct =
        List.sort_uniq compare (List.map (fun win -> win.w_config) wins)
      in
      if List.length distinct > 1 then
        Some (w, List.map (fun win -> (win.w_machine, win.w_config)) wins)
      else None)
    t.sw_workloads

let to_json (t : t) : string =
  let buf = Buffer.create 4096 in
  let strs l =
    String.concat ", " (List.map (fun s -> Printf.sprintf "%S" s) l)
  in
  Buffer.add_string buf "{\n  \"schema\": \"lowpower-bench-sweep/1\",\n";
  Printf.bprintf buf "  \"machines\": [%s],\n" (strs t.sw_machines);
  Printf.bprintf buf "  \"workloads\": [%s],\n" (strs t.sw_workloads);
  Printf.bprintf buf "  \"configs\": [%s],\n" (strs t.sw_configs);
  Buffer.add_string buf "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      Printf.bprintf buf
        "    {\"workload\": %S, \"machine\": %S, \"config\": %S, \
         \"cycles\": %s, \"energy_nj\": %s, \"duration_ns\": %s, \
         \"status\": %s}%s\n"
        c.s_workload c.s_machine c.s_config
        (J.num_to_string c.s_cycles)
        (J.num_to_string c.s_energy_nj)
        (J.num_to_string c.s_duration_ns)
        (match c.s_status with
        | None -> "\"ok\""
        | Some code -> Printf.sprintf "%S" code)
        (if i = List.length t.sw_cells - 1 then "" else ","))
    t.sw_cells;
  Buffer.add_string buf "  ],\n  \"winners\": [\n";
  List.iteri
    (fun i w ->
      Printf.bprintf buf
        "    {\"workload\": %S, \"machine\": %S, \"config\": %S, \
         \"energy_nj\": %s, \"saving_pct\": %s}%s\n"
        w.w_workload w.w_machine w.w_config
        (J.num_to_string w.w_energy_nj)
        (J.num_to_string w.w_saving_pct)
        (if i = List.length t.sw_winners - 1 then "" else ","))
    t.sw_winners;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(** Atomic write (temp + rename), like every other BENCH artifact. *)
let write_json ~path (t : t) =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      output_string oc (to_json t);
      close_out oc;
      Sys.rename tmp path)
