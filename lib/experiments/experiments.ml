(** Registry of all evaluation experiments.  [bench/main.exe] runs every
    entry; [bench/main.exe t3] (etc.) runs one. *)

type entry = {
  id : string;
  what : string;
  run : unit -> Lp_util.Table.t;
}

let all : entry list =
  [
    { id = "t1"; what = "benchmark characteristics"; run = Exp_tables.t1 };
    { id = "t2"; what = "pattern detection"; run = Exp_tables.t2 };
    { id = "t3"; what = "normalised energy by config"; run = Exp_tables.t3 };
    { id = "t3b"; what = "single-core energy (within-core effects)";
      run = Exp_tables.t3b };
    { id = "t4"; what = "performance impact"; run = Exp_tables.t4 };
    { id = "t5"; what = "compile statistics"; run = Exp_tables.t5 };
    { id = "f1"; what = "scaling with core count"; run = Exp_figures.f1 };
    { id = "f2"; what = "energy-delay product"; run = Exp_figures.f2 };
    { id = "f3"; what = "energy breakdown"; run = Exp_figures.f3 };
    { id = "f4"; what = "gating break-even sweep"; run = Exp_figures.f4 };
    { id = "f5"; what = "operating-point count sweep"; run = Exp_figures.f5 };
    { id = "f6"; what = "Sink-N-Hoist ablation"; run = Exp_figures.f6 };
    { id = "a1"; what = "machine sensitivity (extension)";
      run = Exp_figures.a1 };
    { id = "a2"; what = "block vs cyclic distribution (extension)";
      run = Exp_figures.a2 };
    { id = "a3"; what = "completion sync ablation (extension)";
      run = Exp_figures.a3 };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

(** Run one entry, returning the table and the wall-clock seconds it took
    (wall, not CPU: the matrix may have fanned out over several domains). *)
let run_timed (e : entry) : Lp_util.Table.t * float =
  let t0 = Unix.gettimeofday () in
  let table = e.run () in
  (table, Unix.gettimeofday () -. t0)

let run_and_print (e : entry) =
  let (table, seconds) = run_timed e in
  Lp_util.Table.print table;
  Printf.printf "(%s finished in %.1fs)\n\n%!" e.id seconds
