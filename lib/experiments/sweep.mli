(** Design-space sweep: workload suite × compiler configs × machine zoo,
    over the shared evaluation matrix.  Output is deterministic and
    byte-identical whatever the [Domain_pool] size: the matrix fans out
    in parallel, but the JSON and crossover table render sequentially
    from the memo cache. *)

module Machine = Lp_machine.Machine
module Table = Lp_util.Table

type cell = {
  s_workload : string;
  s_config : string;
  s_machine : string;
  s_cycles : float;
  s_energy_nj : float;
  s_duration_ns : float;
  s_status : string option;  (** diagnostic code when the cell failed *)
}

type winner = {
  w_workload : string;
  w_machine : string;
  w_config : string;
  w_energy_nj : float;
  w_saving_pct : float;
}

type t = {
  sw_machines : string list;
  sw_workloads : string list;
  sw_configs : string list;
  sw_cells : cell list;
  sw_winners : winner list;
}

(** Every zoo machine, registry order. *)
val default_machines : string list

(** Run the sweep.  Defaults: the full zoo over the whole workload
    suite.  Raises [Invalid_argument] on an unknown machine name and
    [Not_found]-style failure on an unknown workload; validate names
    first when they come from a user. *)
val run :
  ?pool:Lp_util.Domain_pool.t ->
  ?machines:string list ->
  ?workloads:string list ->
  unit -> t

(** Winning config per (workload row, machine column). *)
val crossover_table : t -> Table.t

(** Workloads whose winner differs across machines, with the
    per-machine winners. *)
val crossovers : t -> (string * (string * string) list) list

(** The [lowpower-bench-sweep/1] artifact. *)
val to_json : t -> string

(** Atomic write of {!to_json}. *)
val write_json : path:string -> t -> unit
