(** Pipeline fuzzer: drives generated MiniC programs (see {!Gen})
    through the whole compile+simulate pipeline and checks three
    robustness properties:

    - the pipeline never lets a raw exception escape: every failure is a
      structured {!Lp_util.Diag.t} (the [*_result] entry points);
    - the IR verifier holds after every optimisation pass
      ([verify_each]);
    - the baseline and the fully-optimised parallel configuration
      produce the same observable result (return value and the final
      contents of the output arrays).

    Failing seeds are written to a crash corpus directory as replayable
    MiniC files with the seed and failure reason in a comment header. *)

type finding = {
  f_seed : int;
  f_kind : string;
      (** [raw-exception], [result-mismatch], [diag-divergence] or
          [config-divergence] *)
  f_detail : string;
  f_source : string;
}

type summary = {
  tested : int;
  passed : int;   (** both configurations ran and agreed *)
  degraded : int;
      (** both configurations failed with the same diagnostic code —
          graceful and consistent, so not a finding *)
  findings : finding list;  (** in seed order *)
}

(** Fuzz one seed; [Ok] is [`Passed] or [`Degraded of code].  With an
    enabled recorder in [ctx], each seed runs under a [fuzz] span with
    the two configuration compiles nested inside. *)
val run_seed :
  ?ctx:Lowpower.Compile.ctx ->
  ?machine:Lp_machine.Machine.t ->
  seed:int ->
  unit ->
  ([ `Passed | `Degraded of string ], finding) result

(** Fuzz [seeds] consecutive seeds starting at [seed_start], writing any
    finding to [corpus_dir] (created on demand; no file is written when
    every seed passes).  Each finding is saved as [seed_N.c] alongside a
    [seed_N.report.json] power-decision audit of the failing full-config
    run, and the replay header's [// report:] line points at it.  [log]
    receives one progress line per failure and a final tally. *)
val run_range :
  ?ctx:Lowpower.Compile.ctx ->
  ?machine:Lp_machine.Machine.t ->
  ?log:(string -> unit) ->
  corpus_dir:string ->
  seed_start:int ->
  seeds:int ->
  unit ->
  summary
