(** Seeded random MiniC program generator for the pipeline fuzzer.

    Programs are generated under strict safety constraints so that every
    one of them is semantically well-defined and deterministic:

    - integers only (32-bit wrap-around arithmetic is deterministic);
    - every array index is provably in bounds ([i] bounded by the loop,
      or [(i + k) mod len]);
    - division and modulo only by non-zero constants;
    - all loops have static bounds.

    A generated program must therefore compile and simulate identically
    under every compiler configuration; any crash, verification failure
    or observable divergence is a compiler bug. *)

type t = {
  source : string;          (** the MiniC program text *)
  check_globals : string list;
      (** shared output arrays whose final contents (together with
          [main]'s return value) constitute the observable result *)
}

(** Generate the program of [seed].  Deterministic: the same seed always
    produces the same program. *)
val generate : seed:int -> t
