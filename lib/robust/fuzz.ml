module Compile = Lowpower.Compile
module Machine = Lp_machine.Machine
module Sim = Lp_sim.Sim
module Value = Lp_sim.Value
module Diag = Lp_util.Diag
module Obs = Lp_obs.Obs

type finding = {
  f_seed : int;
  f_kind : string;
  f_detail : string;
  f_source : string;
}

type summary = {
  tested : int;
  passed : int;
  degraded : int;
  findings : finding list;
}

let default_machine () = Machine.generic ~n_cores:4 ()

(* ------------------------------------------------------------------ *)
(* One configuration run                                               *)
(* ------------------------------------------------------------------ *)

(** Run one configuration.  [run_result] already turns every pipeline
    exception into a diagnostic; anything it still raises is a raw
    escape — the first property the fuzzer checks. *)
let run_config ?ctx ~machine ~opts source :
    (Sim.outcome, [ `Diag of Diag.t | `Raw of string ]) result =
  match Compile.run_result ?ctx ~verify_each:true ~opts ~machine source with
  | Ok (_compiled, outcome) -> Ok outcome
  | Error d -> Error (`Diag d)
  | exception e -> Error (`Raw (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Observable-result comparison                                        *)
(* ------------------------------------------------------------------ *)

let ret_str = function
  | Some v -> Value.to_string v
  | None -> "(none)"

(** First observable difference between two outcomes, if any: the
    return value of [main] and the final contents of every output
    array. *)
let first_diff ~(globals : string list) (a : Sim.outcome) (b : Sim.outcome) :
    string option =
  let ret_equal =
    match (a.Sim.ret, b.Sim.ret) with
    | (None, None) -> true
    | (Some x, Some y) -> Value.equal x y
    | _ -> false
  in
  if not ret_equal then
    Some
      (Printf.sprintf "return value: baseline %s, full %s" (ret_str a.Sim.ret)
         (ret_str b.Sim.ret))
  else
    List.find_map
      (fun g ->
        match
          ( Hashtbl.find_opt a.Sim.shared_final g,
            Hashtbl.find_opt b.Sim.shared_final g )
        with
        | (Some xa, Some xb) ->
          if Array.length xa <> Array.length xb then
            Some (Printf.sprintf "%s: length %d vs %d" g (Array.length xa)
                    (Array.length xb))
          else
            let diff = ref None in
            Array.iteri
              (fun i v ->
                if !diff = None && not (Value.equal v xb.(i)) then
                  diff :=
                    Some
                      (Printf.sprintf "%s[%d]: baseline %s, full %s" g i
                         (Value.to_string v)
                         (Value.to_string xb.(i))))
              xa;
            !diff
        | (None, None) -> None
        | _ -> Some (Printf.sprintf "%s missing from one configuration" g))
      globals

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)
(* ------------------------------------------------------------------ *)

let run_seed ?(ctx = Compile.default_ctx) ?(machine = default_machine ())
    ~seed () : ([ `Passed | `Degraded of string ], finding) result =
  Obs.span ctx.Compile.obs ~cat:"fuzz"
    ~args:[ ("seed", Obs.Int seed) ]
    (Printf.sprintf "seed %d" seed)
  @@ fun () ->
  let gen = Gen.generate ~seed in
  let finding kind detail =
    Error { f_seed = seed; f_kind = kind; f_detail = detail;
            f_source = gen.Gen.source }
  in
  let base = run_config ~ctx ~machine ~opts:Compile.baseline gen.Gen.source in
  let full =
    run_config ~ctx ~machine ~opts:(Compile.full ~n_cores:4) gen.Gen.source
  in
  match (base, full) with
  | (Error (`Raw e), _) -> finding "raw-exception" ("baseline: " ^ e)
  | (_, Error (`Raw e)) -> finding "raw-exception" ("full: " ^ e)
  | (Ok a, Ok b) -> (
    match first_diff ~globals:gen.Gen.check_globals a b with
    | None -> Ok `Passed
    | Some diff -> finding "result-mismatch" diff)
  | (Error (`Diag d1), Error (`Diag d2)) ->
    if d1.Diag.code = d2.Diag.code then Ok (`Degraded d1.Diag.code)
    else
      finding "diag-divergence"
        (Printf.sprintf "baseline %s vs full %s" (Diag.to_string d1)
           (Diag.to_string d2))
  | (Ok _, Error (`Diag d)) ->
    finding "config-divergence" ("only full failed: " ^ Diag.to_string d)
  | (Error (`Diag d), Ok _) ->
    finding "config-divergence" ("only baseline failed: " ^ Diag.to_string d)

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(** Write a failing seed as a replayable MiniC file.  When a power
    report was captured for the seed, the header points at it so the
    triager sees the compiler's power decisions next to the repro. *)
let write_corpus_file ?report_path ~dir (f : finding) : string =
  mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "seed_%d.c" f.f_seed) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "// lpcc fuzz finding\n// seed:   %d\n// kind:   %s\n// detail: %s\n\
         // replay: lpcc fuzz --seeds 1 --seed-start %d\n//         lpcc run %s\n%s\n%s"
        f.f_seed f.f_kind
        (String.map (function '\n' -> ' ' | c -> c) f.f_detail)
        f.f_seed path
        (match report_path with
        | Some rp -> Printf.sprintf "// report: %s\n" rp
        | None -> "")
        f.f_source);
  path

(** Re-run a finding's seed (full configuration) with a fresh audit
    report and write it next to the corpus file.  Failures are expected
    here — the seed is failing, that's why it is in the corpus — so the
    report captures whatever decisions happened before the failure. *)
let write_seed_report ~dir ~machine (f : finding) : string =
  mkdir_p dir;
  let rep = Lp_obs.Report.create () in
  let rctx = Compile.make_ctx ~report:rep () in
  Lp_obs.Report.with_scope (Printf.sprintf "seed_%d" f.f_seed) (fun () ->
      ignore
        (run_config ~ctx:rctx ~machine ~opts:(Compile.full ~n_cores:4)
           f.f_source));
  let path =
    Filename.concat dir (Printf.sprintf "seed_%d.report.json" f.f_seed)
  in
  Lp_obs.Report.write rep ~path;
  path

(* ------------------------------------------------------------------ *)
(* Batch driver                                                        *)
(* ------------------------------------------------------------------ *)

let run_range ?(ctx = Compile.default_ctx) ?(machine = default_machine ())
    ?(log = ignore) ~corpus_dir ~seed_start ~seeds () : summary =
  let passed = ref 0 and degraded = ref 0 and findings = ref [] in
  for seed = seed_start to seed_start + seeds - 1 do
    match run_seed ~ctx ~machine ~seed () with
    | Ok `Passed -> incr passed
    | Ok (`Degraded code) ->
      incr degraded;
      log (Printf.sprintf "seed %d: degraded consistently (%s)" seed code)
    | Error f ->
      let report_path = write_seed_report ~dir:corpus_dir ~machine f in
      let path = write_corpus_file ~report_path ~dir:corpus_dir f in
      findings := f :: !findings;
      log
        (Printf.sprintf "seed %d: %s — %s (saved to %s, report %s)" seed
           f.f_kind f.f_detail path report_path)
  done;
  log
    (Printf.sprintf "%d seed(s): %d passed, %d degraded, %d finding(s)" seeds
       !passed !degraded
       (List.length !findings));
  let obs = ctx.Compile.obs in
  Obs.add obs "fuzz.tested" seeds;
  Obs.add obs "fuzz.passed" !passed;
  Obs.add obs "fuzz.degraded" !degraded;
  Obs.add obs "fuzz.findings" (List.length !findings);
  {
    tested = seeds;
    passed = !passed;
    degraded = !degraded;
    findings = List.rev !findings;
  }
