(** Seeded random MiniC program generator (see gen.mli for the safety
    contract: int-only, in-bounds indexing, constant non-zero divisors,
    statically bounded loops). *)

module Rng = Lp_util.Rng

type t = {
  source : string;
  check_globals : string list;
}

type ctx = {
  rng : Rng.t;
  buf : Buffer.t;
  inputs : (string * int) list;  (** input arrays: name, length *)
  mutable fresh : int;           (** counter for unique local names *)
}

let pf ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

let fresh ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(** A read of an input array that is in bounds by construction: [v] is a
    loop variable known to range over [0, bound). *)
let input_read ctx ~(idx : (string * int) option) =
  let (name, len) = Rng.choose ctx.rng ctx.inputs in
  match idx with
  | Some (v, bound) when bound <= len -> Printf.sprintf "%s[%s]" name v
  | Some (v, _) ->
    (* v >= 0, so (v + k) mod len lands in [0, len) *)
    Printf.sprintf "%s[(%s + %d) %% %d]" name v (Rng.int ctx.rng len) len
  | None -> Printf.sprintf "%s[%d]" name (Rng.int ctx.rng len)

let atom ctx ~idx ~scalars =
  let choices =
    [ `Lit; `Lit; `Read; `Read ]
    @ (match idx with Some _ -> [ `Idx; `Idx ] | None -> [])
    @ (match scalars with [] -> [] | _ -> [ `Scalar; `Scalar ])
  in
  match Rng.choose ctx.rng choices with
  | `Lit -> string_of_int (Rng.int_in ctx.rng (-32) 32)
  | `Read -> input_read ctx ~idx
  | `Idx -> (match idx with Some (v, _) -> v | None -> assert false)
  | `Scalar -> Rng.choose ctx.rng scalars

(** Random int expression.  [idx] is the in-scope loop variable (with
    its exclusive bound) usable for safe indexing; [scalars] the in-scope
    scalar variables the expression may read. *)
let rec expr ctx ~depth ~idx ~scalars =
  if depth <= 0 || Rng.int ctx.rng 3 = 0 then atom ctx ~idx ~scalars
  else
    let sub () = expr ctx ~depth:(depth - 1) ~idx ~scalars in
    match Rng.int ctx.rng 8 with
    | 0 | 1 | 2 ->
      let op = Rng.choose ctx.rng [ "+"; "-"; "*"; "&"; "|"; "^" ] in
      Printf.sprintf "(%s %s %s)" (sub ()) op (sub ())
    | 3 ->
      (* division / modulo only by a non-zero constant *)
      let op = Rng.choose ctx.rng [ "/"; "%" ] in
      Printf.sprintf "(%s %s %d)" (sub ()) op (Rng.int_in ctx.rng 1 16)
    | 4 ->
      let op = Rng.choose ctx.rng [ "<<"; ">>" ] in
      Printf.sprintf "(%s %s %d)" (sub ()) op (Rng.int_in ctx.rng 0 8)
    | 5 -> Printf.sprintf "(%s%s)" (Rng.choose ctx.rng [ "-"; "~" ]) (sub ())
    | 6 ->
      let op = Rng.choose ctx.rng [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
      Printf.sprintf "(%s %s %s)" (sub ()) op (sub ())
    | _ ->
      let op = Rng.choose ctx.rng [ "&&"; "||" ] in
      Printf.sprintf "(%s %s %s)" (sub ()) op (sub ())

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(** A doall-shaped loop filling one output array from input reads only
    (no cross-iteration dependences by construction), occasionally
    annotated so the fuzzer also exercises annotation verification, and
    occasionally with an inner sequential accumulation loop. *)
let doall ctx ~out:(name, len) =
  let i = fresh ctx "i" in
  let nested = Rng.int ctx.rng 3 = 0 in
  if (not nested) && Rng.int ctx.rng 4 = 0 then
    pf ctx "  #pragma lp pattern(doall)\n";
  pf ctx "  for (int %s = 0; %s < %d; %s = %s + 1) {\n" i i len i i;
  if nested then begin
    let acc = fresh ctx "t" in
    let j = fresh ctx "j" in
    let bound = Rng.int_in ctx.rng 2 8 in
    pf ctx "    int %s = 0;\n" acc;
    pf ctx "    for (int %s = 0; %s < %d; %s = %s + 1) {\n" j j bound j j;
    pf ctx "      %s = %s + %s;\n" acc acc
      (expr ctx ~depth:2 ~idx:(Some (j, bound)) ~scalars:[]);
    pf ctx "    }\n";
    pf ctx "    %s[%s] = %s + %s;\n" name i acc i
  end
  else
    pf ctx "    %s[%s] = %s;\n" name i
      (expr ctx ~depth:3 ~idx:(Some (i, len)) ~scalars:[]);
  pf ctx "  }\n"

(** A reduction over an input array into [scalar] with an associative
    operator (associative under 32-bit wrap-around, so parallelisation
    must preserve the result exactly). *)
let reduction ctx ~scalar =
  let i = fresh ctx "i" in
  let (_, len) = Rng.choose ctx.rng ctx.inputs in
  let op = Rng.choose ctx.rng [ "+"; "^" ] in
  pf ctx "  for (int %s = 0; %s < %d; %s = %s + 1) {\n" i i len i i;
  pf ctx "    %s = %s %s %s;\n" scalar scalar op
    (expr ctx ~depth:2 ~idx:(Some (i, len)) ~scalars:[]);
  pf ctx "  }\n"

(** A while loop with a fresh bounded counter. *)
let while_loop ctx ~scalars =
  let c = fresh ctx "w" in
  let bound = Rng.int_in ctx.rng 1 10 in
  pf ctx "  int %s = 0;\n" c;
  pf ctx "  while (%s < %d) {\n" c bound;
  let s = Rng.choose ctx.rng scalars in
  pf ctx "    %s = %s;\n" s (expr ctx ~depth:2 ~idx:None ~scalars);
  pf ctx "    %s = %s + 1;\n" c c;
  pf ctx "  }\n"

let if_stmt ctx ~scalars =
  let cond = expr ctx ~depth:2 ~idx:None ~scalars in
  let s = Rng.choose ctx.rng scalars in
  pf ctx "  if (%s) {\n" cond;
  pf ctx "    %s = %s;\n" s (expr ctx ~depth:2 ~idx:None ~scalars);
  if Rng.bool ctx.rng then begin
    let s2 = Rng.choose ctx.rng scalars in
    pf ctx "  } else {\n";
    pf ctx "    %s = %s;\n" s2 (expr ctx ~depth:2 ~idx:None ~scalars)
  end;
  pf ctx "  }\n"

let assign ctx ~scalars =
  let s = Rng.choose ctx.rng scalars in
  pf ctx "  %s = %s;\n" s (expr ctx ~depth:3 ~idx:None ~scalars)

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

let generate ~seed : t =
  let rng = Rng.create ~seed in
  let buf = Buffer.create 1024 in
  (* input arrays with baked-in deterministic data *)
  let inputs =
    List.init
      (Rng.int_in rng 1 3)
      (fun k -> (Printf.sprintf "in%d" k, Rng.int_in rng 8 48))
  in
  let ctx = { rng; buf; inputs; fresh = 0 } in
  pf ctx "// generated by lpcc fuzz, seed %d\n" seed;
  List.iter
    (fun (name, len) ->
      let vals = List.init len (fun _ -> Rng.int_in rng (-64) 63) in
      pf ctx "int %s[%d] = {%s};\n" name len
        (String.concat "," (List.map string_of_int vals)))
    inputs;
  (* output arrays: the observable result *)
  let outputs =
    List.init
      (Rng.int_in rng 1 2)
      (fun k -> (Printf.sprintf "out%d" k, Rng.int_in rng 8 32))
  in
  List.iter (fun (name, len) -> pf ctx "int %s[%d];\n" name len) outputs;
  pf ctx "\nint main() {\n";
  let scalars =
    List.init (Rng.int_in rng 2 4) (fun k -> Printf.sprintf "s%d" k)
  in
  List.iter
    (fun s -> pf ctx "  int %s = %d;\n" s (Rng.int_in rng (-8) 8))
    scalars;
  (* one doall per output array, plus a few extra random statements,
     in shuffled (still seed-deterministic) order *)
  let stmts =
    List.map (fun out () -> doall ctx ~out) outputs
    @ List.init
        (Rng.int_in rng 1 4)
        (fun _ () ->
          match Rng.int ctx.rng 5 with
          | 0 -> doall ctx ~out:(Rng.choose ctx.rng outputs)
          | 1 -> reduction ctx ~scalar:(Rng.choose ctx.rng scalars)
          | 2 -> while_loop ctx ~scalars
          | 3 -> if_stmt ctx ~scalars
          | _ -> assign ctx ~scalars)
  in
  List.iter (fun f -> f ()) (Rng.shuffle rng stmts);
  (* checksum so the return value also covers the arrays *)
  pf ctx "  int chk = 0;\n";
  List.iter
    (fun (name, len) ->
      let i = fresh ctx "i" in
      pf ctx "  for (int %s = 0; %s < %d; %s = %s + 1) {\n" i i len i i;
      pf ctx "    chk = chk * 31 + %s[%s];\n" name i;
      pf ctx "  }\n")
    outputs;
  List.iter (fun s -> pf ctx "  chk = chk ^ %s;\n" s) scalars;
  pf ctx "  return chk;\n}\n";
  { source = Buffer.contents buf; check_globals = List.map fst outputs }
