(** Wire protocol of the [lpccd] compile server (see the interface). *)

module Json = Lp_util.Json
module Diag = Lp_util.Diag
module Machine = Lp_machine.Machine
module Compile = Lowpower.Compile
module Pipeline = Lowpower.Pipeline
module Pattern = Lp_patterns.Pattern
module Prog = Lp_ir.Prog
module Ledger = Lp_power.Energy_ledger

let code_decode = "E_DECODE"
let code_overload = "E_OVERLOAD"
let code_version = "E_VERSION"

let decode_error fmt =
  Format.kasprintf
    (fun message -> Error (Diag.make Diag.Serve ~code:code_decode message))
    fmt

let version_error fmt =
  Format.kasprintf
    (fun message -> Error (Diag.make Diag.Serve ~code:code_version message))
    fmt

(* Version negotiation (docs/SERVING.md): a request without a "version"
   field is version 1 — the PR 7 wire format, whose replies must stay
   byte-identical.  Version 2 adds the "tune" op and echoes "version"
   in the reply.  Anything else is a stable E_VERSION diagnostic. *)
let current_version = 2
let version_supported v = v = 1 || v = current_version

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type op =
  | Ping | Compile | Run | Explain | Pipeline | Stats | Shutdown | Tune
  | Profile

let op_name = function
  | Ping -> "ping"
  | Compile -> "compile"
  | Run -> "run"
  | Explain -> "explain"
  | Pipeline -> "pipeline"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Tune -> "tune"
  | Profile -> "profile"

let op_of_name = function
  | "ping" -> Some Ping
  | "compile" -> Some Compile
  | "run" -> Some Run
  | "explain" -> Some Explain
  | "pipeline" -> Some Pipeline
  | "stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | "tune" -> Some Tune
  | "profile" -> Some Profile
  | _ -> None

type source = Inline of string | Workload of string | No_source

type request = {
  id : Json.t;
  version : int option;
  op : op;
  src : source;
  machine : string;
  cores : int;
  config : string;
  passes : string option;
  deadline_ms : int option;
  budget : int option;
  seed : int option;
}

let default_request =
  {
    id = Json.Null;
    version = None;
    op = Ping;
    src = No_source;
    machine = "generic";
    cores = 4;
    config = "full";
    passes = None;
    deadline_ms = None;
    budget = None;
    seed = None;
  }

(* typed field extraction; any mismatch is an [Error _] with E_DECODE *)

let str_field obj name default =
  match Json.member name obj with
  | None | Some Json.Null -> Ok default
  | Some (Json.Str s) -> Ok s
  | Some _ -> decode_error "field %S must be a string" name

let opt_str_field obj name =
  match Json.member name obj with
  | None | Some Json.Null -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> decode_error "field %S must be a string" name

let opt_pos_int_field obj name ~max =
  match Json.member name obj with
  | None | Some Json.Null -> Ok None
  | Some (Json.Num f) ->
    let n = int_of_float f in
    if Float.is_integer f && n >= 1 && n <= max then Ok (Some n)
    else decode_error "field %S must be an integer in [1, %d]" name max
  | Some _ -> decode_error "field %S must be an integer" name

let ( let* ) = Result.bind

let request_of_frame line =
  match Json.of_string_opt line with
  | None -> decode_error "frame is not valid JSON"
  | Some (Json.Obj _ as obj) ->
    (* version is negotiated before anything else so that a v3 client
       gets E_VERSION rather than a confusing op/field diagnostic *)
    let* version =
      match Json.member "version" obj with
      | None | Some Json.Null -> Ok None
      | Some (Json.Num f) when Float.is_integer f ->
        let v = int_of_float f in
        if version_supported v then Ok (Some v)
        else
          version_error "unsupported protocol version %d (server speaks 1-%d)"
            v current_version
      | Some _ -> decode_error "field \"version\" must be an integer"
    in
    let* op_str =
      match Json.member "op" obj with
      | Some (Json.Str s) -> Ok s
      | Some _ -> decode_error "field \"op\" must be a string"
      | None -> decode_error "missing field \"op\""
    in
    let* op =
      match op_of_name op_str with
      | Some op -> Ok op
      | None -> decode_error "unknown op %S" op_str
    in
    let* () =
      match op with
      | (Tune | Profile) when Option.value ~default:1 version < 2 ->
        version_error "op %S requires protocol version 2" op_str
      | _ -> Ok ()
    in
    let id = Option.value ~default:Json.Null (Json.member "id" obj) in
    let* inline = opt_str_field obj "source" in
    let* workload = opt_str_field obj "workload" in
    let* src =
      match (op, inline, workload) with
      | (Compile | Run | Explain | Tune | Profile), Some _, Some _ ->
        decode_error "give either \"source\" or \"workload\", not both"
      | (Compile | Run | Explain | Tune | Profile), Some s, None ->
        Ok (Inline s)
      | (Compile | Run | Explain | Tune | Profile), None, Some w ->
        Ok (Workload w)
      | (Compile | Run | Explain | Tune | Profile), None, None ->
        decode_error "op %S needs a \"source\" or \"workload\"" op_str
      | (Ping | Pipeline | Stats | Shutdown), _, _ -> Ok No_source
    in
    let* machine = str_field obj "machine" default_request.machine in
    let* cores = opt_pos_int_field obj "cores" ~max:1024 in
    let cores = Option.value ~default:default_request.cores cores in
    let* config = str_field obj "config" default_request.config in
    let* passes = opt_str_field obj "passes" in
    let* deadline_ms = opt_pos_int_field obj "deadline_ms" ~max:86_400_000 in
    let* budget = opt_pos_int_field obj "budget" ~max:10_000 in
    let* seed = opt_pos_int_field obj "seed" ~max:max_int in
    Ok
      {
        id;
        version;
        op;
        src;
        machine;
        cores;
        config;
        passes;
        deadline_ms;
        budget;
        seed;
      }
  | Some _ -> decode_error "frame must be a JSON object"

let frame_id line =
  match Json.of_string_opt line with
  | Some (Json.Obj _ as obj) ->
    Option.value ~default:Json.Null (Json.member "id" obj)
  | _ -> Json.Null

let opt_int_fields fields =
  List.concat_map
    (fun (name, v) ->
      match v with
      | Some n -> [ (name, Json.Num (float_of_int n)) ]
      | None -> [])
    fields

let frame_of_request r =
  let fields =
    [ ("id", r.id) ]
    @ opt_int_fields [ ("version", r.version) ]
    @ [ ("op", Json.Str (op_name r.op)) ]
    @ (match r.src with
      | Inline s -> [ ("source", Json.Str s) ]
      | Workload w -> [ ("workload", Json.Str w) ]
      | No_source -> [])
    @ [
        ("machine", Json.Str r.machine);
        ("cores", Json.Num (float_of_int r.cores));
        ("config", Json.Str r.config);
      ]
    @ (match r.passes with
      | Some p -> [ ("passes", Json.Str p) ]
      | None -> [])
    @ opt_int_fields
        [
          ("deadline_ms", r.deadline_ms);
          ("budget", r.budget);
          ("seed", r.seed);
        ]
  in
  Json.to_compact_string (Json.Obj fields) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

(* [version] is echoed only when the request carried one: v1 clients
   (and serve-bench --verify golden replies) keep byte-identical frames *)
let ok_frame ~id ~op ?version ?(cached = false) payload =
  let fields =
    [ ("id", id) ]
    @ opt_int_fields [ ("version", version) ]
    @ [ ("ok", Json.Bool true); ("op", Json.Str (op_name op)) ]
    @ (if cached then [ ("cached", Json.Bool true) ] else [])
    @ payload
  in
  Json.to_compact_string (Json.Obj fields) ^ "\n"

let err_frame ~id ?version (d : Diag.t) =
  let fields =
    [ ("id", id) ]
    @ opt_int_fields [ ("version", version) ]
    @ [
        ("ok", Json.Bool false);
        ("code", Json.Str d.Diag.code);
        ("stage", Json.Str (Diag.stage_name d.Diag.stage));
        ("message", Json.Str d.Diag.message);
        ("transient", Json.Bool d.Diag.transient);
      ]
    @
    match d.Diag.line with
    | Some l -> [ ("line", Json.Num (float_of_int l)) ]
    | None -> []
  in
  Json.to_compact_string (Json.Obj fields) ^ "\n"

type reply = {
  r_id : Json.t;
  r_ok : bool;
  r_code : string option;
  r_transient : bool;
  r_payload : Json.t;
}

let reply_of_frame line =
  match Json.of_string_opt line with
  | None -> Error "reply is not valid JSON"
  | Some (Json.Obj _ as obj) -> (
    match Json.member "ok" obj with
    | Some (Json.Bool ok) ->
      Ok
        {
          r_id = Option.value ~default:Json.Null (Json.member "id" obj);
          r_ok = ok;
          r_code =
            (match Json.member "code" obj with
            | Some (Json.Str c) -> Some c
            | _ -> None);
          r_transient =
            (match Json.member "transient" obj with
            | Some (Json.Bool b) -> b
            | _ -> false);
          r_payload = obj;
        }
    | _ -> Error "reply has no boolean \"ok\" field")
  | Some _ -> Error "reply is not a JSON object"

(* ------------------------------------------------------------------ *)
(* Request resolution                                                  *)
(* ------------------------------------------------------------------ *)

let resolve_target (r : request) =
  let* machine =
    match Machine.of_name ~cores:(max r.cores 4) r.machine with
    | Some m -> Ok m
    | None -> decode_error "unknown machine %S" r.machine
  in
  (* silent clamp: the protocol promises best-effort resolution, and the
     reply carries the machine actually used *)
  let cores = Machine.clamp_cores ~warn:false machine r.cores in
  let* opts =
    match r.config with
    | "baseline" -> Ok Compile.baseline
    | "pg" -> Ok Compile.pg_only
    | "dvfs" -> Ok Compile.dvfs_only
    | "pg+dvfs" -> Ok Compile.pg_dvfs
    | "par" -> Ok (Compile.par_only ~n_cores:cores)
    | "full" -> Ok (Compile.full ~n_cores:cores)
    | c -> decode_error "unknown config %S" c
  in
  match r.passes with
  | None -> Ok (machine, opts)
  | Some spec -> (
    (* inline spec or @FILE; failures keep their own stable
       E_PIPELINE_SPEC code rather than degrading to E_DECODE *)
    match Pipeline.resolve_spec spec with
    | Ok p -> Ok (machine, Compile.Options.update ~pipeline:p opts)
    | Error d -> Error d)

let resolve_source (r : request) =
  match r.src with
  | Inline s -> Ok (s, "inline")
  | Workload name -> (
    match Lp_workloads.Suite.find name with
    | Some w -> Ok (w.Lp_workloads.Workload.source, name)
    | None -> decode_error "unknown workload %S" name)
  | No_source -> decode_error "op %S has no program" (op_name r.op)

(* ------------------------------------------------------------------ *)
(* Payload rendering (shared with serve-bench --verify)                *)
(* ------------------------------------------------------------------ *)

let num n = Json.Num (float_of_int n)

let counts_json (c : Lp_transforms.Gating.counts) =
  Json.Obj
    [
      ("off", num c.Lp_transforms.Gating.off_instrs);
      ("on", num c.Lp_transforms.Gating.on_instrs);
      ("toggled", num c.Lp_transforms.Gating.components_toggled);
    ]

let payload_of_compiled (c : Compile.compiled) =
  let prog = c.Compile.prog in
  (* hashtable order is not deterministic; sort by function name *)
  let funcs =
    List.sort compare
      (Hashtbl.fold
         (fun name f acc -> (name, Prog.instr_count f) :: acc)
         prog.Prog.funcs [])
  in
  let instrs = List.fold_left (fun acc (_, n) -> acc + n) 0 funcs in
  [
    ("machine", Json.Str c.Compile.machine.Machine.name);
    ("funcs", num (List.length funcs));
    ("instrs", num instrs);
    ( "patterns",
      Json.List
        (List.map
           (fun (i : Pattern.instance) ->
             Json.Obj
               [
                 ("kind", Json.Str (Pattern.kind_name i.Pattern.kind));
                 ("func", Json.Str i.Pattern.in_func);
                 ( "origin",
                   Json.Str
                     (match i.Pattern.origin with
                     | Pattern.Annotated -> "annotated"
                     | Pattern.Inferred -> "inferred") );
               ])
           c.Compile.detection.Pattern.instances) );
    ( "passes",
      Json.List
        (List.map
           (fun (s : Lp_transforms.Pass.stats) ->
             Json.Obj
               [
                 ("name", Json.Str s.Lp_transforms.Pass.pass_name);
                 ("runs", num s.Lp_transforms.Pass.runs);
                 (* no wall-clock seconds: payloads must be deterministic *)
                 ("changes", num s.Lp_transforms.Pass.changes);
               ])
           c.Compile.pass_stats) );
    ("gating_before", counts_json c.Compile.gating_before_merge);
    ("gating_after", counts_json c.Compile.gating_after_merge);
  ]

let payload_of_run (c : Compile.compiled) (o : Lp_sim.Sim.outcome) =
  payload_of_compiled c
  @ [
      ( "ret",
        match o.Lp_sim.Sim.ret with
        | None -> Json.Null
        | Some (Lp_sim.Value.Vint i) -> num i
        | Some (Lp_sim.Value.Vfloat f) -> Json.Num f );
      ("duration_ns", Json.Num o.Lp_sim.Sim.duration_ns);
      ("energy_nj", Json.Num (Ledger.total o.Lp_sim.Sim.energy));
      ( "energy_by_category",
        Json.Obj
          (List.map
             (fun cat ->
               ( Ledger.category_to_string cat,
                 Json.Num (Ledger.of_category o.Lp_sim.Sim.energy cat) ))
             Ledger.all_categories) );
      ("instr_total", num o.Lp_sim.Sim.instr_total);
      ("steps", num o.Lp_sim.Sim.steps);
      ("implicit_wakeups", num o.Lp_sim.Sim.implicit_wakeups);
      ("gate_transitions", num o.Lp_sim.Sim.gate_transitions);
      ("dvfs_transitions", num o.Lp_sim.Sim.dvfs_transitions);
      ("channel_msgs", num o.Lp_sim.Sim.channel_msgs);
    ]

let payload_of_explain rep =
  [ ("report", Json.Str (Lp_obs.Report.to_text rep)) ]

let payload_of_pipeline ~passes =
  match passes with
  | None ->
    Ok
      [
        ("pipeline", Json.Str (Pipeline.to_string Pipeline.default));
        ( "available",
          Json.List (List.map (fun n -> Json.Str n) (Pipeline.pass_names ()))
        );
      ]
  | Some spec -> (
    match Pipeline.resolve_spec spec with
    | Ok p -> Ok [ ("pipeline", Json.Str (Pipeline.to_string p)) ]
    | Error d -> Error d)

(* the whole lowpower-profile/1 artifact, verbatim: extracting the
   "profile" member and re-serialising it with [Json.to_string] yields
   the exact bytes `lpcc profile --json` writes (same builder, same
   serialiser) *)
let payload_of_profile ~source (c : Compile.compiled)
    (o : Lp_sim.Sim.outcome) =
  [
    ( "profile",
      Lowpower.Profile_report.to_json ~source
        ~machine:c.Compile.machine.Machine.name o );
  ]

let payload_of_tune (r : Lp_tune.Tune.workload_result) =
  [
    ("workload", Json.Str r.Lp_tune.Tune.tw_workload);
    ("spec", Json.Str r.Lp_tune.Tune.tw_best_spec);
    ( "baseline_energy_nj",
      Json.Num r.Lp_tune.Tune.tw_baseline.Lp_tune.Tune.energy_nj );
    ("tuned_energy_nj", Json.Num r.Lp_tune.Tune.tw_best.Lp_tune.Tune.energy_nj);
    ("improvement_pct", Json.Num (Lp_tune.Tune.improvement_pct r));
    ("improved", Json.Bool (Lp_tune.Tune.improved r));
    ("candidates", num r.Lp_tune.Tune.tw_candidates);
    ("evaluated", num r.Lp_tune.Tune.tw_evaluated);
  ]
