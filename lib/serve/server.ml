(** The [lpccd] compile server (see the interface for the contract).

    Concurrency model: one acceptor domain multiplexes the listening
    socket and every client connection with [select], extracts frames,
    answers the trivial ops (ping/stats/shutdown) inline and pushes the
    rest through the bounded queue; [jobs] long-lived request loops run
    on a {!Lp_util.Domain_pool} (spawned with [~always_spawn] so even
    [jobs = 1] gets a real worker domain).  Workers write replies
    straight to the client under a per-connection write mutex, so
    replies may interleave across requests but never within a frame. *)

module Compile = Lowpower.Compile
module Json = Lp_util.Json
module Diag = Lp_util.Diag
module Fault = Lp_util.Fault
module Deadline = Lp_util.Deadline
module Backoff = Lp_util.Backoff
module Domain_pool = Lp_util.Domain_pool
module Obs = Lp_obs.Obs
module Report = Lp_obs.Report
module P = Protocol

type opts = {
  socket_path : string;
  jobs : int;
  queue_capacity : int;
  max_frame_bytes : int;
  default_deadline_ms : int option;
  stuck_ms : int;
  cache_capacity : int;
  drain_ms : int;
}

let default_opts ~socket_path =
  {
    socket_path;
    jobs = 2;
    queue_capacity = 64;
    max_frame_bytes = 4 * 1024 * 1024;
    default_deadline_ms = None;
    stuck_ms = 30_000;
    cache_capacity = 128;
    drain_ms = 10_000;
  }

(* ------------------------------------------------------------------ *)
(* Connections and queue items                                         *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;              (** partial-frame bytes; acceptor-only *)
  wmutex : Mutex.t;            (** guards [alive] and writes to [fd] *)
  mutable alive : bool;
  mutable overflowed : bool;   (** discarding an oversized frame *)
}

type item = {
  it_conn : conn;
  it_req : P.request;
  it_token : Deadline.t;
  it_iid : int;
  it_enq_at : float;
  mutable it_wd_cancelled : bool;  (** watchdog counted this item *)
}

type metrics = {
  accepts : int Atomic.t;
  frames : int Atomic.t;
  requests : int Atomic.t;
  ok_replies : int Atomic.t;
  err_replies : int Atomic.t;
  decode_errors : int Atomic.t;
  shed_overload : int Atomic.t;
  deadline_expired : int Atomic.t;
  watchdog_cancels : int Atomic.t;
  serve_fault_retries : int Atomic.t;
  serve_faults : int Atomic.t;
  dispatch_retries : int Atomic.t;
  internal_errors : int Atomic.t;
}

let make_metrics () =
  {
    accepts = Atomic.make 0;
    frames = Atomic.make 0;
    requests = Atomic.make 0;
    ok_replies = Atomic.make 0;
    err_replies = Atomic.make 0;
    decode_errors = Atomic.make 0;
    shed_overload = Atomic.make 0;
    deadline_expired = Atomic.make 0;
    watchdog_cancels = Atomic.make 0;
    serve_fault_retries = Atomic.make 0;
    serve_faults = Atomic.make 0;
    dispatch_retries = Atomic.make 0;
    internal_errors = Atomic.make 0;
  }

type t = {
  o : opts;
  ctx : Compile.ctx;
  listen_fd : Unix.file_descr;
  queue : item Bqueue.t;
  pool : Domain_pool.t;
  stop_flag : bool Atomic.t;
  mutable acceptor : unit Domain.t option;
  infl_mutex : Mutex.t;
  inflight : (int, item) Hashtbl.t;
  next_iid : int Atomic.t;
  cache : Compile.compiled Cache.t;
  m : metrics;
  lat : Obs.t;
      (** always-on recorder holding only the per-op request-latency
          histograms surfaced by [stats] — independent of [ctx.obs],
          which is enabled only when the operator asked for a trace *)
  mutable joined : bool;
}

let bump t counter name =
  Atomic.incr counter;
  Obs.add t.ctx.Compile.obs name 1

let retries t = t.ctx.Compile.config.Lp_util.Runtime_config.retries

let with_inflight t f =
  Mutex.lock t.infl_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.infl_mutex) (fun () ->
      f t.inflight)

let inflight_count t = with_inflight t Hashtbl.length

(* ------------------------------------------------------------------ *)
(* Writing replies                                                     *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(** Write one frame; a failed or timed-out write marks the connection
    dead (the acceptor closes it) instead of raising into the worker. *)
let write_frame (c : conn) (frame : string) =
  Mutex.lock c.wmutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.wmutex) (fun () ->
      if c.alive then
        try write_all c.fd frame with
        | Unix.Unix_error _ | Sys_error _ -> c.alive <- false)

let send_ok t conn ~id ~op ?version ?cached payload =
  bump t t.m.ok_replies "serve.replies_ok";
  write_frame conn (P.ok_frame ~id ~op ?version ?cached payload)

let send_err t conn ~id ?version (d : Diag.t) =
  bump t t.m.err_replies "serve.replies_err";
  if d.Diag.code = Deadline.code then
    bump t t.m.deadline_expired "serve.deadline";
  write_frame conn (P.err_frame ~id ?version d)

(* ------------------------------------------------------------------ *)
(* Request dispatch (worker side)                                      *)
(* ------------------------------------------------------------------ *)

let cache_key (req : P.request) (src : string) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            src;
            req.P.machine;
            string_of_int req.P.cores;
            req.P.config;
            Option.value ~default:"" req.P.passes;
          ]))

let ( let* ) = Result.bind

(** Catch {e everything} a request provokes: pipeline exceptions map to
    their stable diagnostics, foreign exceptions become [E_INTERNAL] and
    invalidate only the touched program's cache entry — the worker, the
    other entries and every other connection survive. *)
let guard t ~key f =
  try f () with
  | e -> (
    match Compile.diag_of_exn e with
    | Some d -> Error d
    | None ->
      Option.iter (Cache.remove t.cache) key;
      bump t t.m.internal_errors "serve.internal_errors";
      Error
        (Diag.make Diag.Internal ~code:Diag.code_internal
           ("uncaught exception: " ^ Printexc.to_string e)))

(* a served tune is a bounded sketch of `lpcc tune`, not a batch job:
   the budget is clamped so one frame cannot park a worker for long *)
let tune_budget_cap = 200
let tune_budget_default = 40

(** One attempt at a compile/run/explain/pipeline/tune request.  Returns
    the reply payload and whether the compile came from the warm cache. *)
let dispatch_once t (ctx : Compile.ctx) (req : P.request) :
    ((string * Json.t) list * bool, Diag.t) result =
  match req.P.op with
  | P.Pipeline ->
    guard t ~key:None (fun () ->
        Result.map
          (fun p -> (p, false))
          (P.payload_of_pipeline ~passes:req.P.passes))
  | P.Tune ->
    let* src, scope = P.resolve_source req in
    let* machine, opts = P.resolve_target req in
    guard t ~key:None (fun () ->
        let budget =
          min tune_budget_cap
            (Option.value ~default:tune_budget_default req.P.budget)
        in
        let cfg =
          Lp_tune.Tune.default_config ~budget
            ?seed:req.P.seed ~config_name:req.P.config ~opts ~machine ()
        in
        let w =
          {
            Lp_workloads.Workload.name = scope;
            description = "served tune target";
            source = src;
            expected_pattern = "none";
            check_globals = [];
          }
        in
        (* evaluations run inline: this worker must not fan out into the
           pool it is itself running on (Domain_pool submit = deadlock) *)
        let pool = Domain_pool.create ~jobs:1 () in
        let* r = Lp_tune.Tune.tune_workload ~ctx ~pool cfg w in
        Ok (P.payload_of_tune r, false))
  | P.Compile | P.Run | P.Explain | P.Profile ->
    let* src, scope = P.resolve_source req in
    let* machine, opts = P.resolve_target req in
    let key = cache_key req src in
    (* injected faults make results attempt-dependent; never let them
       into (or out of) the shared cache *)
    let use_cache = not (Fault.active ()) in
    guard t ~key:(Some key) (fun () ->
        Fault.with_scope scope @@ fun () ->
        match req.P.op with
        | P.Compile -> (
          match if use_cache then Cache.find t.cache key else None with
          | Some c -> Ok (P.payload_of_compiled c, true)
          | None ->
            let* c = Compile.compile_result ~ctx ~opts ~machine src in
            if use_cache then Cache.add t.cache key c;
            Ok (P.payload_of_compiled c, false))
        | P.Run -> (
          match if use_cache then Cache.find t.cache key else None with
          | Some c ->
            (* same entry point [Compile.run] uses, so a warm reply is
               byte-identical to a cold one *)
            Ok (P.payload_of_run c (Compile.simulate_compiled ~ctx c), true)
          | None ->
            let* c, outcome = Compile.run_result ~ctx ~opts ~machine src in
            if use_cache then Cache.add t.cache key c;
            Ok (P.payload_of_run c outcome, false))
        | P.Profile ->
          (* a profiled run reuses the warm compile cache: attribution
             is a pure simulation-side observer, so the cached program
             re-simulated with profiling on yields the exact artifact a
             cold one-shot `lpcc profile --json` writes *)
          let sim_opts =
            { Lp_sim.Sim.default_options with Lp_sim.Sim.profile = true }
          in
          let* (c, cached) =
            match if use_cache then Cache.find t.cache key else None with
            | Some c -> Ok (c, true)
            | None ->
              let* c = Compile.compile_result ~ctx ~opts ~machine src in
              if use_cache then Cache.add t.cache key c;
              Ok (c, false)
          in
          let o = Compile.simulate_compiled ~ctx ~sim_opts c in
          Ok (P.payload_of_profile ~source:scope c o, cached)
        | P.Explain ->
          (* explain IS the report: fresh, always-on, request-local *)
          let rep = Report.create () in
          let ctx = { ctx with Compile.report = rep } in
          Report.with_scope scope @@ fun () ->
          let* _ = Compile.run_result ~ctx ~opts ~machine src in
          Ok (P.payload_of_explain rep, false)
        | P.Ping | P.Pipeline | P.Stats | P.Shutdown | P.Tune -> assert false)
  | P.Ping | P.Stats | P.Shutdown -> assert false (* answered inline *)

(** Dispatch with the PR 2 retry contract: transient failures (bounded
    injected faults, simulated transient bus faults) are retried with
    deterministic bounded backoff up to [Runtime_config.retries]. *)
let dispatch t ctx req =
  let rec go attempt =
    match dispatch_once t ctx req with
    | Error d
      when d.Diag.transient
           && d.Diag.code <> P.code_overload
           && d.Diag.code <> Deadline.code
           && attempt <= retries t ->
      bump t t.m.dispatch_retries "serve.retries";
      Unix.sleepf (Backoff.backoff_s attempt);
      go (attempt + 1)
    | result -> result
  in
  go 1

let process_item t (it : item) =
  Fun.protect
    ~finally:(fun () -> with_inflight t (fun tbl -> Hashtbl.remove tbl it.it_iid))
    (fun () ->
      let id = it.it_req.P.id in
      let version = it.it_req.P.version in
      if Deadline.expired it.it_token then begin
        (* expired while queued: shed before doing any work *)
        let msg =
          if Deadline.cancelled it.it_token then
            "request cancelled (deadline watchdog)"
          else "deadline exceeded while queued"
        in
        send_err t it.it_conn ~id ?version
          (Diag.make Diag.Driver ~code:Deadline.code msg)
      end
      else begin
        let ctx = { t.ctx with Compile.deadline = it.it_token } in
        let result = dispatch t ctx it.it_req in
        (* enqueue-to-reply latency, per op, in log2 millisecond buckets *)
        Obs.record_hist t.lat
          ("serve.latency_ms." ^ P.op_name it.it_req.P.op)
          ((Unix.gettimeofday () -. it.it_enq_at) *. 1e3);
        match result with
        | Ok (payload, cached) ->
          if cached then bump t t.m.requests "serve.cache_replies";
          send_ok t it.it_conn ~id ~op:it.it_req.P.op ?version ~cached payload
        | Error d -> send_err t it.it_conn ~id ?version d
      end)

(** The long-lived request loop each pool worker runs: drain the bounded
    queue until it is closed {e and} empty.  [process_item] never lets
    an exception escape, so the loop — and the worker domain — survives
    any request. *)
let worker_loop t () =
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some it ->
      Obs.set_gauge t.ctx.Compile.obs "serve.queue_depth"
        (float_of_int (Bqueue.length t.queue));
      (try process_item t it with _ -> ());
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Acceptor: frame extraction and inline ops                           *)
(* ------------------------------------------------------------------ *)

let stats_json t =
  let c name a = (name, Json.Num (float_of_int (Atomic.get a))) in
  Json.Obj
    [
      c "accepts" t.m.accepts;
      c "frames" t.m.frames;
      c "requests" t.m.requests;
      c "replies_ok" t.m.ok_replies;
      c "replies_err" t.m.err_replies;
      c "decode_errors" t.m.decode_errors;
      c "shed_overload" t.m.shed_overload;
      c "deadline_expired" t.m.deadline_expired;
      c "watchdog_cancels" t.m.watchdog_cancels;
      c "serve_fault_retries" t.m.serve_fault_retries;
      c "serve_faults" t.m.serve_faults;
      c "dispatch_retries" t.m.dispatch_retries;
      c "internal_errors" t.m.internal_errors;
      ("queue_depth", Json.Num (float_of_int (Bqueue.length t.queue)));
      ("inflight", Json.Num (float_of_int (inflight_count t)));
      ( "cache",
        Json.Obj
          [
            ("entries", Json.Num (float_of_int (Cache.length t.cache)));
            ("hits", Json.Num (float_of_int (Cache.hits t.cache)));
            ("misses", Json.Num (float_of_int (Cache.misses t.cache)));
            ( "invalidations",
              Json.Num (float_of_int (Cache.invalidations t.cache)) );
          ] );
      ( "latency_ms",
        (* per-op enqueue-to-reply histograms; quantiles are log2-bucket
           upper bounds *)
        Json.Obj
          (List.filter_map
             (fun (name, h) ->
               match
                 String.length name > 17
                 && String.sub name 0 17 = "serve.latency_ms."
               with
               | false -> None
               | true ->
                 Some
                   ( String.sub name 17 (String.length name - 17),
                     Json.Obj
                       [
                         ("count", Json.Num (float_of_int (Obs.hist_count h)));
                         ("sum_ms", Json.Num (Obs.hist_sum h));
                         ("p50_ms", Json.Num (Obs.hist_quantile h 0.5));
                         ("p90_ms", Json.Num (Obs.hist_quantile h 0.9));
                         ("p99_ms", Json.Num (Obs.hist_quantile h 0.99));
                       ] ))
             (Obs.hists t.lat)) );
    ]

(** Reach a serve-side fault point with retry-with-backoff: transient
    injected faults (bounded [*count] / [%pct] clauses) recover after a
    bounded number of attempts; a persistent fault surfaces to the
    caller as its stable [E_FAULT_*] diagnostic. *)
let faulted t point ~key : (unit, Diag.t) result =
  let rec go attempt =
    match Fault.check point ~key with
    | () -> Ok ()
    | exception Diag.Error d when d.Diag.transient && attempt <= retries t ->
      bump t t.m.serve_fault_retries "serve.fault_retries";
      Unix.sleepf (Backoff.backoff_s attempt);
      go (attempt + 1)
    | exception Diag.Error d ->
      bump t t.m.serve_faults "serve.faults";
      Error d
  in
  go 1

(** Enqueue one decoded request, or answer it inline when it needs no
    worker.  Backpressure: a full queue sheds the request immediately
    with the transient [E_OVERLOAD] reply. *)
let dispatch_request t (c : conn) (req : P.request) =
  bump t t.m.requests "serve.requests";
  let id = req.P.id in
  let version = req.P.version in
  match req.P.op with
  | P.Ping -> send_ok t c ~id ~op:P.Ping ?version [ ("pong", Json.Bool true) ]
  | P.Stats -> send_ok t c ~id ~op:P.Stats ?version [ ("stats", stats_json t) ]
  | P.Shutdown ->
    send_ok t c ~id ~op:P.Shutdown ?version [ ("draining", Json.Bool true) ];
    Atomic.set t.stop_flag true
  | P.Compile | P.Run | P.Explain | P.Pipeline | P.Tune | P.Profile -> (
    match faulted t Fault.Serve_dispatch ~key:"dispatch" with
    | Error d -> send_err t c ~id ?version d
    | Ok () ->
      let deadline_ms =
        match req.P.deadline_ms with
        | Some ms -> Some ms
        | None -> t.o.default_deadline_ms
      in
      let token =
        match deadline_ms with
        | Some ms -> Deadline.after_ms ms
        | None -> Deadline.cancellable ()
      in
      let it =
        {
          it_conn = c;
          it_req = req;
          it_token = token;
          it_iid = Atomic.fetch_and_add t.next_iid 1;
          it_enq_at = Unix.gettimeofday ();
          it_wd_cancelled = false;
        }
      in
      (* register before the push so the watchdog sees queued items *)
      with_inflight t (fun tbl -> Hashtbl.replace tbl it.it_iid it);
      (match Bqueue.try_push t.queue it with
      | `Ok depth ->
        Obs.set_gauge t.ctx.Compile.obs "serve.queue_depth"
          (float_of_int depth)
      | `Full | `Closed ->
        with_inflight t (fun tbl -> Hashtbl.remove tbl it.it_iid);
        bump t t.m.shed_overload "serve.shed_overload";
        send_err t c ~id ?version
          (Diag.make ~transient:true Diag.Serve ~code:P.code_overload
             "request queue full; retry after backoff")))

let handle_frame t (c : conn) (line : string) =
  bump t t.m.frames "serve.frames";
  match faulted t Fault.Serve_decode ~key:"decode" with
  | Error d -> send_err t c ~id:(P.frame_id line) d
  | Ok () -> (
    match P.request_of_frame line with
    | Ok req -> dispatch_request t c req
    | Error d ->
      bump t t.m.decode_errors "serve.decode_errors";
      send_err t c ~id:(P.frame_id line) d)

(** Split the connection buffer into complete frames.  An oversized
    frame is rejected once ([E_DECODE]) and its remaining bytes are
    discarded up to the next newline, so one abusive frame cannot park
    unbounded memory or desynchronise the stream. *)
let extract_frames t (c : conn) =
  let data = Buffer.contents c.buf in
  Buffer.clear c.buf;
  let len = String.length data in
  let pos = ref 0 in
  (try
     while !pos < len do
       match String.index_from data !pos '\n' with
       | nl ->
         let line = String.sub data !pos (nl - !pos) in
         pos := nl + 1;
         if c.overflowed then c.overflowed <- false (* tail of a bad frame *)
         else if String.trim line <> "" then handle_frame t c line
       | exception Not_found ->
         let rest = len - !pos in
         if c.overflowed then pos := len (* keep discarding *)
         else if rest > t.o.max_frame_bytes then begin
           c.overflowed <- true;
           bump t t.m.decode_errors "serve.decode_errors";
           send_err t c ~id:Json.Null
             (Diag.make Diag.Serve ~code:P.code_decode
                (Printf.sprintf "frame exceeds %d bytes" t.o.max_frame_bytes));
           pos := len
         end
         else begin
           Buffer.add_substring c.buf data !pos rest;
           pos := len
         end
     done
   with e ->
     (* absolute backstop: a frame-handling bug must not kill the
        acceptor; the offending bytes are dropped *)
     bump t t.m.internal_errors "serve.internal_errors";
     ignore e)

let read_conn t (c : conn) =
  let bytes = Bytes.create 65536 in
  match Unix.read c.fd bytes 0 (Bytes.length bytes) with
  | 0 -> c.alive <- false
  | n ->
    Buffer.add_subbytes c.buf bytes 0 n;
    extract_frames t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error (_, _, _) -> c.alive <- false

let close_conn (c : conn) =
  Mutex.lock c.wmutex;
  c.alive <- false;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  Mutex.unlock c.wmutex

(** Accept one pending connection, injecting [serve-accept] faults:
    transient ones retry with backoff, persistent ones shed the
    connection (accept-then-close, so the client sees a clean EOF). *)
let try_accept t : conn option =
  match faulted t Fault.Serve_accept ~key:"accept" with
  | Error _ ->
    (match Unix.accept t.listen_fd with
    | fd, _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ());
    None
  | Ok () -> (
    match Unix.accept t.listen_fd with
    | fd, _ ->
      (* never let one stalled client block a worker forever *)
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
       with Unix.Unix_error _ -> ());
      bump t t.m.accepts "serve.accepts";
      Some
        {
          fd;
          buf = Buffer.create 512;
          wmutex = Mutex.create ();
          alive = true;
          overflowed = false;
        }
    | exception Unix.Unix_error _ -> None)

(** Cancel in-flight requests that overstayed: past-deadline tokens are
    already self-enforcing via {!Deadline.check}, so the watchdog's job
    is the deadline-less stragglers ([stuck_ms]). *)
let watchdog_tick t =
  let now = Unix.gettimeofday () in
  let stuck_s = float_of_int t.o.stuck_ms /. 1e3 in
  with_inflight t (fun tbl ->
      Hashtbl.iter
        (fun _ it ->
          if
            (not it.it_wd_cancelled)
            && (not (Deadline.cancelled it.it_token))
            && Deadline.remaining_ms it.it_token = None
            && now -. it.it_enq_at > stuck_s
          then begin
            it.it_wd_cancelled <- true;
            Deadline.cancel it.it_token;
            bump t t.m.watchdog_cancels "serve.watchdog_cancels"
          end)
        tbl)

(* ------------------------------------------------------------------ *)
(* Acceptor main loop and drain                                        *)
(* ------------------------------------------------------------------ *)

let drain t conns =
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.o.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  (* no new work; workers finish what was accepted *)
  Bqueue.close t.queue;
  let soft = Unix.gettimeofday () +. (float_of_int t.o.drain_ms /. 1e3) in
  while inflight_count t > 0 && Unix.gettimeofday () < soft do
    Unix.sleepf 0.005
  done;
  if inflight_count t > 0 then begin
    (* drain budget exhausted: cancel the stragglers cooperatively *)
    with_inflight t (fun tbl ->
        Hashtbl.iter (fun _ it -> Deadline.cancel it.it_token) tbl);
    let hard = Unix.gettimeofday () +. 2.0 in
    while inflight_count t > 0 && Unix.gettimeofday () < hard do
      Unix.sleepf 0.005
    done
  end;
  List.iter close_conn conns

let accept_loop t () =
  let last_wd = ref 0.0 in
  let rec loop conns =
    if Atomic.get t.stop_flag then drain t conns
    else begin
      let fds = t.listen_fd :: List.map (fun c -> c.fd) conns in
      let ready =
        match Unix.select fds [] [] 0.05 with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> []
      in
      let conns =
        if List.memq t.listen_fd ready then
          match try_accept t with Some c -> c :: conns | None -> conns
        else conns
      in
      List.iter (fun c -> if List.memq c.fd ready then read_conn t c) conns;
      let dead, live = List.partition (fun c -> not c.alive) conns in
      List.iter close_conn dead;
      let now = Unix.gettimeofday () in
      if now -. !last_wd > 0.1 then begin
        last_wd := now;
        watchdog_tick t
      end;
      loop live
    end
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let request_stop t = Atomic.set t.stop_flag true
let stopping t = Atomic.get t.stop_flag

let start ?(ctx = Compile.default_ctx) (o : opts) : t =
  (try Unix.unlink o.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.bind listen_fd (Unix.ADDR_UNIX o.socket_path);
      Unix.listen listen_fd 128;
      let jobs = max 1 o.jobs in
      {
        o = { o with jobs };
        ctx;
        listen_fd;
        queue = Bqueue.create ~capacity:o.queue_capacity;
        pool = Domain_pool.create ~always_spawn:true ~jobs ();
        stop_flag = Atomic.make false;
        acceptor = None;
        infl_mutex = Mutex.create ();
        inflight = Hashtbl.create 64;
        next_iid = Atomic.make 1;
        cache = Cache.create ~capacity:o.cache_capacity;
        m = make_metrics ();
        lat = Obs.create ();
        joined = false;
      }
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e
  in
  for _ = 1 to Domain_pool.jobs t.pool do
    Domain_pool.submit t.pool (worker_loop t)
  done;
  t.acceptor <- Some (Domain.spawn (accept_loop t));
  t

let stop t =
  if not t.joined then begin
    t.joined <- true;
    request_stop t;
    Option.iter Domain.join t.acceptor;
    t.acceptor <- None;
    (* queue is closed by the drain; workers have returned to the pool *)
    Domain_pool.shutdown t.pool
  end
