(** The [lpccd] compile server: a long-running daemon accepting
    concurrent compile/run/explain/pipeline requests over a Unix-domain
    socket (line-delimited JSON, {!Protocol}), sharing a warm compile
    cache across requests and dispatching work onto worker domains
    through a bounded queue.

    Robustness properties (docs/SERVING.md has the full contract):

    - {b backpressure}: when the bounded queue is full the request is
      shed immediately with the transient [E_OVERLOAD] diagnostic
      instead of queueing without bound;
    - {b deadlines}: every request gets a cooperative cancellation token
      ([deadline_ms], or the server default); expiry anywhere in the
      pipeline or simulator surfaces as [E_DEADLINE];
    - {b watchdog}: deadline-less requests stuck longer than [stuck_ms]
      are cancelled through the same token;
    - {b crash isolation}: any exception a request provokes is caught at
      the worker boundary and returned as a structured diagnostic; the
      worker, its domain, the cache and every other connection survive,
      and the crashing program's own cache entry is invalidated;
    - {b graceful drain}: on stop the server refuses new work, finishes
      (or cancels, after a bounded wait) what is in flight, then closes
      every connection and joins its domains. *)

module Compile = Lowpower.Compile
module Json = Lp_util.Json

type opts = {
  socket_path : string;
  jobs : int;                      (** worker domains (>= 1) *)
  queue_capacity : int;            (** bounded request queue *)
  max_frame_bytes : int;           (** larger frames are rejected E_DECODE *)
  default_deadline_ms : int option;(** applied when the request has none *)
  stuck_ms : int;                  (** watchdog limit for deadline-less requests *)
  cache_capacity : int;            (** warm compile cache entries *)
  drain_ms : int;                  (** max wait for in-flight work on stop *)
}

val default_opts : socket_path:string -> opts

type t

(** Bind the socket, spawn the worker domains and the acceptor; returns
    once the server is listening.  [ctx] supplies the observability
    recorder, audit report and runtime config (retries, armed faults)
    shared by all requests; per-request deadline tokens are layered on
    top of it. *)
val start : ?ctx:Compile.ctx -> opts -> t

(** Signal-handler-safe stop request: flips a flag the acceptor polls.
    The drain itself happens on the acceptor domain. *)
val request_stop : t -> unit

(** Whether a stop has been requested. *)
val stopping : t -> bool

(** Request a stop (idempotent), wait for the drain to finish and join
    every domain.  The socket file is removed. *)
val stop : t -> unit

(** Counters snapshot: accepts, frames, requests, replies by outcome,
    sheds, deadline expiries, watchdog cancels, retries, cache
    hits/misses/invalidations, live queue depth. *)
val stats_json : t -> Json.t
