(** Bounded MPMC queue (see the interface). *)

type 'a t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable is_closed : bool;
}

let create ~capacity =
  {
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    items = Queue.create ();
    capacity = max 1 capacity;
    is_closed = false;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let try_push t x =
  locked t (fun () ->
      if t.is_closed then `Closed
      else if Queue.length t.items >= t.capacity then `Full
      else begin
        Queue.push x t.items;
        Condition.signal t.not_empty;
        `Ok (Queue.length t.items)
      end)

let pop t =
  locked t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.is_closed then None
        else begin
          Condition.wait t.not_empty t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  locked t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.not_empty)

let closed t = locked t (fun () -> t.is_closed)
let length t = locked t (fun () -> Queue.length t.items)
