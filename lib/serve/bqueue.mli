(** Bounded multi-producer/multi-consumer queue — the backpressure
    valve between the server's acceptor and its worker domains.

    [try_push] never blocks: when the queue is at capacity the caller
    gets [`Full] and sheds the request (the server replies
    [E_OVERLOAD]) instead of letting latency grow without bound.
    [pop] blocks; after {!close}, consumers drain what is left and then
    get [None], which is the workers' signal to exit their loops. *)

type 'a t

val create : capacity:int -> 'a t

(** [`Ok depth] (depth after the push), [`Full] (at capacity — shed), or
    [`Closed] (server draining — shed). *)
val try_push : 'a t -> 'a -> [ `Ok of int | `Full | `Closed ]

(** Block until an element is available; [None] once the queue is closed
    {e and} drained. *)
val pop : 'a t -> 'a option

(** Refuse further pushes and wake every blocked consumer. *)
val close : 'a t -> unit

val closed : 'a t -> bool
val length : 'a t -> int
