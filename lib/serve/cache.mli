(** Bounded warm cache shared across server requests.

    Keys are digests of the full compile signature (source, machine,
    cores, config, passes); values are whatever the server memoises
    (compiled programs).  FIFO eviction keeps the footprint bounded.
    Thread-safe: every operation takes the cache's lock, so worker
    domains share it freely.

    Crash isolation: a request that dies mid-compile never poisons the
    cache because failures are never inserted — the server only [add]s
    after a fully verified result, and {!remove} invalidates exactly the
    touched program when a crash makes its entry suspect. *)

type 'a t

val create : capacity:int -> 'a t

(** Look up; counts a hit or a miss. *)
val find : 'a t -> string -> 'a option

(** Insert (replacing any previous value); evicts the oldest entries
    down to capacity. *)
val add : 'a t -> string -> 'a -> unit

(** Invalidate one key (no-op when absent); counts an invalidation. *)
val remove : 'a t -> string -> unit

val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val invalidations : 'a t -> int
