(** Bounded FIFO-eviction cache (see the interface). *)

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (** insertion order; may hold stale keys *)
  capacity : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable invalidation_count : int;
}

let create ~capacity =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    order = Queue.create ();
    capacity = max 1 capacity;
    hit_count = 0;
    miss_count = 0;
    invalidation_count = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
        t.hit_count <- t.hit_count + 1;
        Some v
      | None ->
        t.miss_count <- t.miss_count + 1;
        None)

let add t key v =
  locked t (fun () ->
      if not (Hashtbl.mem t.table key) then Queue.push key t.order;
      Hashtbl.replace t.table key v;
      (* the order queue can hold keys already removed; skip those *)
      while Hashtbl.length t.table > t.capacity && not (Queue.is_empty t.order) do
        let oldest = Queue.pop t.order in
        Hashtbl.remove t.table oldest
      done)

let remove t key =
  locked t (fun () ->
      if Hashtbl.mem t.table key then begin
        Hashtbl.remove t.table key;
        t.invalidation_count <- t.invalidation_count + 1
      end)

let length t = locked t (fun () -> Hashtbl.length t.table)
let hits t = locked t (fun () -> t.hit_count)
let misses t = locked t (fun () -> t.miss_count)
let invalidations t = locked t (fun () -> t.invalidation_count)
