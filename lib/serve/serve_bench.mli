(** Load generator and robustness prover for the [lpccd] compile server.

    Replays a seeded, deterministic corpus of mixed requests — valid
    generated programs and bundled workloads, malformed frames,
    compile-error sources, near-zero deadlines, pings — over [clients]
    concurrent connections with windowed pipelining, then reports
    throughput, latency percentiles and the per-outcome taxonomy
    ([BENCH_serve.json], schema [lowpower-bench-serve/1]).

    Contract proved on success: the server crashed zero times (every
    connection stayed live until closed by us), every failure carried a
    stable diagnostic code, and — with [verify] — every valid
    compile/run reply was byte-identical to the payload computed locally
    through the very same one-shot entry points [lpcc] uses.  [verify]
    assumes the server runs without injected faults. *)

module Json = Lp_util.Json

type config = {
  socket_path : string;
  requests : int;        (** corpus size (>= 1) *)
  clients : int;         (** concurrent connections *)
  window : int;          (** max in-flight requests per connection *)
  seed : int;            (** corpus generator seed *)
  verify : bool;         (** byte-compare valid replies against local runs *)
  client_retries : int;  (** resends of a transiently failed request *)
}

val default_config : socket_path:string -> config

type outcomes = {
  ok : int;              (** successful replies (includes cached) *)
  cached : int;          (** subset of [ok] served from the warm cache *)
  decode_err : int;      (** [E_DECODE] — the malformed subset *)
  compile_err : int;     (** stable compile diagnostics ([E_PARSE], ...) *)
  overload : int;        (** [E_OVERLOAD] sheds observed (pre-retry) *)
  deadline : int;        (** [E_DEADLINE] *)
  injected_fault : int;  (** [E_FAULT_*] that exhausted retries *)
  internal : int;        (** [E_INTERNAL] — must stay 0 *)
  gave_up : int;         (** transient failures that exhausted client retries *)
}

type summary = {
  cfg : config;
  wall_s : float;
  completed : int;         (** corpus entries that got a final reply *)
  sends : int;             (** frames sent, retries included *)
  retries : int;           (** client-side retransmissions *)
  throughput_rps : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  outcomes : outcomes;
  verify_checked : int;
  verify_mismatches : int;
  server_crashes : int;    (** connections that died with replies pending *)
  protocol_errors : int;   (** unparseable or unmatchable replies *)
  server_stats : Json.t;   (** the server's own counters, when reachable *)
}

(** Run the replay.  [Error _] only for harness-level failures (cannot
    connect); server-side misbehaviour is reported in the summary so the
    caller can assert on it. *)
val run : config -> (summary, string) result

val summary_json : summary -> Json.t

(** Atomic write (temp file + rename). *)
val write_json : summary -> path:string -> unit

(** Human-readable one-screen rendering. *)
val to_text : summary -> string

(** The acceptance gate the CI smoke step applies: zero crashes, zero
    internal errors, zero protocol errors, zero verify mismatches, and
    every corpus entry answered.  [Error] lists the violations. *)
val acceptance : summary -> (unit, string list) result
