(** Load generator for the [lpccd] compile server (see the interface). *)

module Json = Lp_util.Json
module Diag = Lp_util.Diag
module Rng = Lp_util.Rng
module Backoff = Lp_util.Backoff
module Compile = Lowpower.Compile
module Gen = Lp_robust.Gen
module P = Protocol

type config = {
  socket_path : string;
  requests : int;
  clients : int;
  window : int;
  seed : int;
  verify : bool;
  client_retries : int;
}

let default_config ~socket_path =
  {
    socket_path;
    requests = 5000;
    clients = 4;
    window = 8;
    seed = 1;
    verify = false;
    client_retries = 8;
  }

type outcomes = {
  ok : int;
  cached : int;
  decode_err : int;
  compile_err : int;
  overload : int;
  deadline : int;
  injected_fault : int;
  internal : int;
  gave_up : int;
}

type summary = {
  cfg : config;
  wall_s : float;
  completed : int;
  sends : int;
  retries : int;
  throughput_rps : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  outcomes : outcomes;
  verify_checked : int;
  verify_mismatches : int;
  server_crashes : int;
  protocol_errors : int;
  server_stats : Json.t;
}

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

(** One corpus entry: how to render the frame for a given wire id (so
    retries get fresh ids), the request template when the frame is
    well-formed (used for local verification), and whether a successful
    reply is eligible for byte-identity verification. *)
type entry = {
  e_frame : int -> string;
  e_req : P.request option;
  e_verify : bool;
}

let entry_of_req ?(verify = false) (req : P.request) =
  {
    e_frame =
      (fun id ->
        P.frame_of_request { req with P.id = Json.Num (float_of_int id) });
    e_req = Some req;
    e_verify = verify;
  }

let malformed_frames =
  [|
    (fun _ -> "this is not json\n");
    (fun id -> Printf.sprintf "{\"id\":%d,\"op\":\"frobnicate\"}\n" id);
    (fun id -> Printf.sprintf "{\"id\":%d,\"op\":5}\n" id);
    (fun id -> Printf.sprintf "{\"id\":%d,\"op\":\"run\"}\n" id);
    (* deep nesting: the hardened parser's depth bound must answer this,
       not a stack overflow *)
    (fun _ -> String.make 2000 '[' ^ "\n");
    (fun id ->
      Printf.sprintf "{\"id\":%d,\"op\":\"run\",\"workload\":\"fir\",\"cores\":0}\n"
        id);
    (fun _ -> "{\"op\":\"run\",\"source\":\"int main(\n");
    (fun id ->
      Printf.sprintf "{\"id\":%d,\"op\":\"run\",\"workload\":\"no-such\"}\n" id);
    (fun id ->
      Printf.sprintf
        "{\"id\":%d,\"op\":\"run\",\"workload\":\"fir\",\"passes\":\"no,such,pass\"}\n"
        id);
  |]

(** Deterministic corpus: mixed valid work (generated programs from a
    small seed pool so the warm cache gets real hits, bundled
    workloads), malformed frames, compile errors, near-zero deadlines
    and pings. *)
let build_corpus (cfg : config) : entry array =
  let rng = Rng.create ~seed:cfg.seed in
  let gen_cache = Hashtbl.create 32 in
  let gen_source seed =
    match Hashtbl.find_opt gen_cache seed with
    | Some s -> s
    | None ->
      let s = (Gen.generate ~seed).Gen.source in
      Hashtbl.add gen_cache seed s;
      s
  in
  let gen_req op =
    let seed = Rng.int rng 20 in
    let config = Rng.choose rng [ "baseline"; "full"; "pg+dvfs" ] in
    {
      P.default_request with
      P.op;
      src = P.Inline (gen_source seed);
      cores = Rng.choose rng [ 2; 4 ];
      config;
    }
  in
  Array.init cfg.requests (fun _ ->
      let roll = Rng.int rng 100 in
      if roll < 30 then entry_of_req ~verify:true (gen_req P.Run)
      else if roll < 45 then entry_of_req ~verify:true (gen_req P.Compile)
      else if roll < 55 then
        let w = Rng.choose rng [ "fir"; "dotprod"; "fraciter"; "matmul" ] in
        let config = Rng.choose rng [ "baseline"; "full" ] in
        entry_of_req ~verify:true
          { P.default_request with P.op = P.Run; src = P.Workload w; config }
      else if roll < 60 then entry_of_req (gen_req P.Explain)
      else if roll < 65 then
        entry_of_req
          {
            P.default_request with
            P.op = P.Pipeline;
            passes = (if Rng.bool rng then None else Some "constfold,dce");
          }
      else if roll < 75 then
        let f = malformed_frames.(Rng.int rng (Array.length malformed_frames)) in
        { e_frame = f; e_req = None; e_verify = false }
      else if roll < 83 then
        (* near-zero deadline: completes or sheds with E_DEADLINE — both
           legitimate, neither may crash anything *)
        entry_of_req { (gen_req P.Run) with P.deadline_ms = Some 1 }
      else if roll < 91 then
        (* well-formed frame, broken program: stable compile diagnostics *)
        entry_of_req
          {
            P.default_request with
            P.op = P.Compile;
            src =
              P.Inline
                (Rng.choose rng
                   [
                     "int main( { return 0; }";
                     "int main() { return x; }";
                     "int main() { int a[4]; return a[9]; }";
                   ]);
          }
      else entry_of_req { P.default_request with P.op = P.Ping })

(* ------------------------------------------------------------------ *)
(* Client engine                                                       *)
(* ------------------------------------------------------------------ *)

type mcounts = {
  mutable m_ok : int;
  mutable m_cached : int;
  mutable m_decode : int;
  mutable m_compile : int;
  mutable m_overload : int;
  mutable m_deadline : int;
  mutable m_fault : int;
  mutable m_internal : int;
  mutable m_gave_up : int;
  mutable m_sends : int;
  mutable m_retries : int;
  mutable m_completed : int;
  mutable m_crashes : int;
  mutable m_proto : int;
}

type cres = {
  counts : mcounts;
  mutable lats_ms : float list;
  mutable verifs : (P.request * Json.t) list;
      (** successful replies queued for post-run byte verification *)
}

type pend = {
  pd_entry : entry;
  pd_first_sent : float;
  pd_attempt : int;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX path);
    Ok fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(** Run one client's share of the corpus over one connection with
    windowed pipelining.  Never raises: every failure lands in the
    returned counters. *)
let run_client (cfg : config) (entries : entry list) ~(id_base : int) : cres =
  let res =
    {
      counts =
        {
          m_ok = 0;
          m_cached = 0;
          m_decode = 0;
          m_compile = 0;
          m_overload = 0;
          m_deadline = 0;
          m_fault = 0;
          m_internal = 0;
          m_gave_up = 0;
          m_sends = 0;
          m_retries = 0;
          m_completed = 0;
          m_crashes = 0;
          m_proto = 0;
        };
      lats_ms = [];
      verifs = [];
    }
  in
  let c = res.counts in
  match connect cfg.socket_path with
  | Error _ ->
    (* each unanswered entry is a missing completion; acceptance trips *)
    c.m_crashes <- c.m_crashes + 1;
    res
  | Ok fd ->
    let next_id = ref id_base in
    let todo = ref entries in
    (* wire-id (compact json) -> pending; frames the server could not
       even extract an id from come back id:null, matched FIFO (the
       acceptor answers frames of one connection in order) *)
    let pending : (string, pend) Hashtbl.t = Hashtbl.create 32 in
    let nullq : (string * pend) Queue.t = Queue.create () in
    let leftover = ref "" in
    let lines = Queue.create () in
    let outstanding () = Hashtbl.length pending + Queue.length nullq in
    let send ?(first_sent = Unix.gettimeofday ()) ?(attempt = 1) entry =
      let id = !next_id in
      incr next_id;
      let frame = entry.e_frame id in
      let pd = { pd_entry = entry; pd_first_sent = first_sent; pd_attempt = attempt } in
      let key = Json.to_compact_string (Json.Num (float_of_int id)) in
      (* a frame the decoder cannot parse at all is echoed with id null *)
      if String.length frame > 6 && String.sub frame 0 6 = "{\"id\":" then
        Hashtbl.replace pending key pd
      else Queue.push (key, pd) nullq;
      c.m_sends <- c.m_sends + 1;
      write_all fd frame
    in
    let resolve key (pd : pend) =
      (match Hashtbl.find_opt pending key with
      | Some _ -> Hashtbl.remove pending key
      | None -> ());
      c.m_completed <- c.m_completed + 1;
      res.lats_ms <-
        ((Unix.gettimeofday () -. pd.pd_first_sent) *. 1e3) :: res.lats_ms
    in
    let retry key (pd : pend) =
      (match Hashtbl.find_opt pending key with
      | Some _ -> Hashtbl.remove pending key
      | None -> ());
      c.m_retries <- c.m_retries + 1;
      Unix.sleepf (Backoff.backoff_s pd.pd_attempt);
      send ~first_sent:pd.pd_first_sent ~attempt:(pd.pd_attempt + 1) pd.pd_entry
    in
    let take_pending (r : P.reply) : (string * pend) option =
      match r.P.r_id with
      | Json.Null ->
        if Queue.is_empty nullq then None else Some (Queue.pop nullq)
      | id -> (
        let key = Json.to_compact_string id in
        match Hashtbl.find_opt pending key with
        | Some pd -> Some (key, pd)
        | None -> None)
    in
    let handle_line line =
      match P.reply_of_frame line with
      | Error _ -> c.m_proto <- c.m_proto + 1
      | Ok r -> (
        match take_pending r with
        | None -> c.m_proto <- c.m_proto + 1
        | Some (key, pd) ->
          if r.P.r_ok then begin
            c.m_ok <- c.m_ok + 1;
            (match Json.member "cached" r.P.r_payload with
            | Some (Json.Bool true) -> c.m_cached <- c.m_cached + 1
            | _ -> ());
            (if cfg.verify && pd.pd_entry.e_verify then
               match pd.pd_entry.e_req with
               | Some req -> res.verifs <- (req, r.P.r_payload) :: res.verifs
               | None -> ());
            resolve key pd
          end
          else
            let code = Option.value ~default:"" r.P.r_code in
            if code = "" then begin
              c.m_proto <- c.m_proto + 1;
              resolve key pd
            end
            else if code = P.code_overload then begin
              c.m_overload <- c.m_overload + 1;
              if pd.pd_attempt <= cfg.client_retries then retry key pd
              else begin
                c.m_gave_up <- c.m_gave_up + 1;
                resolve key pd
              end
            end
            else if r.P.r_transient && String.length code >= 8
                    && String.sub code 0 8 = "E_FAULT_" then begin
              if pd.pd_attempt <= cfg.client_retries then retry key pd
              else begin
                c.m_fault <- c.m_fault + 1;
                c.m_gave_up <- c.m_gave_up + 1;
                resolve key pd
              end
            end
            else begin
              (if code = P.code_decode then c.m_decode <- c.m_decode + 1
               else if code = Lp_util.Deadline.code then
                 c.m_deadline <- c.m_deadline + 1
               else if String.length code >= 8
                       && String.sub code 0 8 = "E_FAULT_" then
                 c.m_fault <- c.m_fault + 1
               else if code = Diag.code_internal then
                 c.m_internal <- c.m_internal + 1
               else c.m_compile <- c.m_compile + 1);
              resolve key pd
            end)
    in
    let read_more () =
      (* 120 s of silence with work outstanding = a wedged server *)
      match Unix.select [ fd ] [] [] 120.0 with
      | [], _, _ -> Error `Timeout
      | _ -> (
        let bytes = Bytes.create 65536 in
        match Unix.read fd bytes 0 (Bytes.length bytes) with
        | 0 -> Error `Eof
        | n ->
          let data = !leftover ^ Bytes.sub_string bytes 0 n in
          let parts = String.split_on_char '\n' data in
          let rec push = function
            | [] -> ()
            | [ last ] -> leftover := last
            | l :: rest ->
              Queue.push l lines;
              push rest
          in
          push parts;
          Ok ()
        | exception Unix.Unix_error _ -> Error `Eof)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok ()
    in
    let rec pump () =
      while !todo <> [] && outstanding () < cfg.window do
        match !todo with
        | [] -> ()
        | e :: rest ->
          todo := rest;
          send e
      done;
      if outstanding () = 0 && !todo = [] then ()
      else if not (Queue.is_empty lines) then begin
        handle_line (Queue.pop lines);
        pump ()
      end
      else
        match read_more () with
        | Ok () -> pump ()
        | Error (`Eof | `Timeout) ->
          (* connection died with replies pending: a server crash from
             the client's point of view *)
          c.m_crashes <- c.m_crashes + 1
    in
    (try pump () with
    | Unix.Unix_error _ | Sys_error _ -> c.m_crashes <- c.m_crashes + 1);
    (try Unix.close fd with Unix.Unix_error _ -> ());
    res

(* ------------------------------------------------------------------ *)
(* Post-run byte-identity verification                                 *)
(* ------------------------------------------------------------------ *)

(** Canonical bytes of a success reply, id and cache-provenance
    stripped: the two fields that legitimately differ between a served
    and a locally computed result. *)
let canonical_reply_bytes (op : P.op) (payload : (string * Json.t) list) =
  Json.to_compact_string
    (Json.Obj
       (("ok", Json.Bool true) :: ("op", Json.Str (P.op_name op)) :: payload))

let canonical_served_bytes (obj : Json.t) =
  match obj with
  | Json.Obj fields ->
    Json.to_compact_string
      (Json.Obj
         (List.filter (fun (k, _) -> k <> "id" && k <> "cached") fields))
  | other -> Json.to_compact_string other

(** Recompute each verified reply through the same one-shot entry points
    [lpcc run]/[lpcc] uses (default context: no faults, no deadline) and
    compare bytes.  Distinct programs are only compiled once. *)
let verify_replies (verifs : (P.request * Json.t) list) : int * int =
  let memo : (string, string option) Hashtbl.t = Hashtbl.create 64 in
  let expected (req : P.request) : string option =
    let key =
      String.concat "\x00"
        [
          P.op_name req.P.op;
          (match req.P.src with
          | P.Inline s -> "i:" ^ s
          | P.Workload w -> "w:" ^ w
          | P.No_source -> "-");
          req.P.machine;
          string_of_int req.P.cores;
          req.P.config;
          Option.value ~default:"" req.P.passes;
        ]
    in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let v =
        match (P.resolve_target req, P.resolve_source req) with
        | Ok (machine, opts), Ok (src, _) -> (
          match req.P.op with
          | P.Compile -> (
            match Compile.compile_result ~opts ~machine src with
            | Ok compiled ->
              Some
                (canonical_reply_bytes P.Compile
                   (P.payload_of_compiled compiled))
            | Error _ -> None)
          | P.Run -> (
            match Compile.run_result ~opts ~machine src with
            | Ok (compiled, outcome) ->
              Some
                (canonical_reply_bytes P.Run
                   (P.payload_of_run compiled outcome))
            | Error _ -> None)
          | _ -> None)
        | _ -> None
      in
      Hashtbl.add memo key v;
      v
  in
  List.fold_left
    (fun (checked, mismatches) (req, served) ->
      match expected req with
      | None -> (checked, mismatches)
      | Some want ->
        let got = canonical_served_bytes served in
        (checked + 1, if String.equal got want then mismatches else mismatches + 1))
    (0, 0) verifs

(* ------------------------------------------------------------------ *)
(* Orchestration                                                       *)
(* ------------------------------------------------------------------ *)

let fetch_server_stats path =
  match connect path with
  | Error _ -> Json.Null
  | Ok fd ->
    let result =
      try
        write_all fd
          (P.frame_of_request
             { P.default_request with P.op = P.Stats; id = Json.Num 0.0 });
        let buf = Buffer.create 512 in
        let bytes = Bytes.create 4096 in
        let rec read_line () =
          match Unix.select [ fd ] [] [] 5.0 with
          | [], _, _ -> Json.Null
          | _ -> (
            match Unix.read fd bytes 0 (Bytes.length bytes) with
            | 0 -> Json.Null
            | n ->
              Buffer.add_subbytes buf bytes 0 n;
              let s = Buffer.contents buf in
              if String.contains s '\n' then
                match P.reply_of_frame (List.hd (String.split_on_char '\n' s)) with
                | Ok r ->
                  Option.value ~default:Json.Null
                    (Json.member "stats" r.P.r_payload)
                | Error _ -> Json.Null
              else read_line ())
        in
        read_line ()
      with Unix.Unix_error _ | Sys_error _ -> Json.Null
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    result

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let run (cfg : config) : (summary, string) result =
  if cfg.requests < 1 then Error "requests must be >= 1"
  else begin
    let corpus = build_corpus cfg in
    let clients = max 1 cfg.clients in
    let shares =
      List.init clients (fun k ->
          Array.to_list corpus
          |> List.filteri (fun i _ -> i mod clients = k))
    in
    (* fail fast if nobody is listening, before spawning domains *)
    match connect cfg.socket_path with
    | Error e -> Error e
    | Ok probe ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      let t0 = Unix.gettimeofday () in
      let domains =
        List.mapi
          (fun k share ->
            Domain.spawn (fun () ->
                run_client cfg share ~id_base:((k + 1) * 10_000_000)))
          shares
      in
      let results = List.map Domain.join domains in
      let wall_s = Unix.gettimeofday () -. t0 in
      let sum f = List.fold_left (fun acc r -> acc + f r.counts) 0 results in
      let lats =
        Array.of_list (List.concat_map (fun r -> r.lats_ms) results)
      in
      Array.sort compare lats;
      let verifs = List.concat_map (fun r -> r.verifs) results in
      let verify_checked, verify_mismatches =
        if cfg.verify then verify_replies verifs else (0, 0)
      in
      let completed = sum (fun c -> c.m_completed) in
      Ok
        {
          cfg;
          wall_s;
          completed;
          sends = sum (fun c -> c.m_sends);
          retries = sum (fun c -> c.m_retries);
          throughput_rps =
            (if wall_s > 0.0 then float_of_int completed /. wall_s else 0.0);
          p50_ms = percentile lats 0.50;
          p99_ms = percentile lats 0.99;
          max_ms = (if Array.length lats = 0 then 0.0 else lats.(Array.length lats - 1));
          outcomes =
            {
              ok = sum (fun c -> c.m_ok);
              cached = sum (fun c -> c.m_cached);
              decode_err = sum (fun c -> c.m_decode);
              compile_err = sum (fun c -> c.m_compile);
              overload = sum (fun c -> c.m_overload);
              deadline = sum (fun c -> c.m_deadline);
              injected_fault = sum (fun c -> c.m_fault);
              internal = sum (fun c -> c.m_internal);
              gave_up = sum (fun c -> c.m_gave_up);
            };
          verify_checked;
          verify_mismatches;
          server_crashes = sum (fun c -> c.m_crashes);
          protocol_errors = sum (fun c -> c.m_proto);
          server_stats = fetch_server_stats cfg.socket_path;
        }
  end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let summary_json (s : summary) : Json.t =
  let n x = Json.Num (float_of_int x) in
  Json.Obj
    [
      ("schema", Json.Str "lowpower-bench-serve/1");
      ("requests", n s.cfg.requests);
      ("clients", n s.cfg.clients);
      ("window", n s.cfg.window);
      ("seed", n s.cfg.seed);
      ("wall_s", Json.Num s.wall_s);
      ("completed", n s.completed);
      ("sends", n s.sends);
      ("retries", n s.retries);
      ("throughput_rps", Json.Num s.throughput_rps);
      ( "latency_ms",
        Json.Obj
          [
            ("p50", Json.Num s.p50_ms);
            ("p99", Json.Num s.p99_ms);
            ("max", Json.Num s.max_ms);
          ] );
      ( "outcomes",
        Json.Obj
          [
            ("ok", n s.outcomes.ok);
            ("cached", n s.outcomes.cached);
            ("decode_err", n s.outcomes.decode_err);
            ("compile_err", n s.outcomes.compile_err);
            ("overload", n s.outcomes.overload);
            ("deadline", n s.outcomes.deadline);
            ("injected_fault", n s.outcomes.injected_fault);
            ("internal", n s.outcomes.internal);
            ("gave_up", n s.outcomes.gave_up);
          ] );
      ( "verify",
        Json.Obj
          [
            ("checked", n s.verify_checked);
            ("mismatches", n s.verify_mismatches);
          ] );
      ("server_crashes", n s.server_crashes);
      ("protocol_errors", n s.protocol_errors);
      ("server_stats", s.server_stats);
    ]

let write_json (s : summary) ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string (summary_json s));
  close_out oc;
  Sys.rename tmp path

let to_text (s : summary) =
  let b = Buffer.create 512 in
  let o = s.outcomes in
  Printf.bprintf b "serve-bench: %d requests, %d clients, window %d, seed %d\n"
    s.cfg.requests s.cfg.clients s.cfg.window s.cfg.seed;
  Printf.bprintf b "  completed %d/%d in %.2f s (%.1f req/s, %d resends)\n"
    s.completed s.cfg.requests s.wall_s s.throughput_rps s.retries;
  Printf.bprintf b "  latency p50 %.2f ms, p99 %.2f ms, max %.2f ms\n" s.p50_ms
    s.p99_ms s.max_ms;
  Printf.bprintf b
    "  ok %d (cached %d), decode %d, compile-err %d, overload %d, deadline %d\n"
    o.ok o.cached o.decode_err o.compile_err o.overload o.deadline;
  Printf.bprintf b
    "  injected-fault %d, internal %d, gave-up %d, crashes %d, protocol %d\n"
    o.injected_fault o.internal o.gave_up s.server_crashes s.protocol_errors;
  if s.cfg.verify then
    Printf.bprintf b "  verify: %d checked, %d mismatches\n" s.verify_checked
      s.verify_mismatches;
  Buffer.contents b

let acceptance (s : summary) : (unit, string list) result =
  let bad = ref [] in
  let check cond msg = if not cond then bad := msg :: !bad in
  check (s.server_crashes = 0)
    (Printf.sprintf "%d connection(s) died with replies pending"
       s.server_crashes);
  check (s.protocol_errors = 0)
    (Printf.sprintf "%d protocol violation(s)" s.protocol_errors);
  check (s.outcomes.internal = 0)
    (Printf.sprintf "%d E_INTERNAL repl(ies)" s.outcomes.internal);
  check
    (s.completed = s.cfg.requests)
    (Printf.sprintf "only %d/%d requests completed" s.completed s.cfg.requests);
  check (s.verify_mismatches = 0)
    (Printf.sprintf "%d byte-identity mismatch(es)" s.verify_mismatches);
  if !bad = [] then Ok () else Error (List.rev !bad)
