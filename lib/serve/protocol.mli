(** Wire protocol of the [lpccd] compile server.

    Frames are line-delimited compact JSON over a Unix-domain stream
    socket: one request object per line (client to server), one reply
    object per line (server to client).  Replies may arrive out of
    request order; clients match them by the echoed [id].

    The full schema, failure taxonomy and overload/deadline semantics
    are documented in docs/SERVING.md.  Everything here is shared
    between the server and the [serve-bench] client so that the load
    generator can verify byte-for-byte that a served result equals the
    one-shot [lpcc] result: both sides render payloads with the same
    functions. *)

module Json = Lp_util.Json
module Diag = Lp_util.Diag
module Machine = Lp_machine.Machine
module Compile = Lowpower.Compile

(** {2 Stable serve-stage diagnostic codes} *)

(** Malformed frame: bad JSON, unknown op, wrong field types, missing
    source, oversized frame.  Never transient. *)
val code_decode : string

(** Bounded request queue full: load was shed.  Transient — retry after
    backoff. *)
val code_overload : string

(** Unsupported protocol [version], or an op the negotiated version does
    not carry (e.g. ["tune"] under v1).  Never transient: retrying the
    same frame can never succeed; the client must downgrade. *)
val code_version : string

(** Newest protocol version this server speaks (2).  A request without
    a ["version"] field is version 1 and gets the PR 7 wire format
    byte-for-byte; replies echo ["version"] only when the request
    carried one. *)
val current_version : int

val version_supported : int -> bool

(** {2 Requests} *)

type op =
  | Ping        (** liveness probe *)
  | Compile     (** compile only; reply summarises the compiled program *)
  | Run         (** compile and simulate; adds the simulation outcome *)
  | Explain     (** compile and simulate under an always-on audit report;
                    reply carries the rendered report *)
  | Pipeline    (** resolve a pass-pipeline spec to its schedule *)
  | Stats       (** server counters snapshot *)
  | Shutdown    (** acknowledge, then drain and exit *)
  | Tune        (** v2: small-budget phase-ordering tune of one program;
                    reply carries the best spec and the energy delta *)
  | Profile     (** v2: compile and simulate with the source-level energy
                    profiler on; reply carries the [lowpower-profile/1]
                    artifact, byte-identical (once re-serialised) to
                    [lpcc profile --json] *)

val op_name : op -> string

type source =
  | Inline of string      (** MiniC program text in the frame *)
  | Workload of string    (** bundled workload by name *)
  | No_source             (** ops that need none (ping/pipeline/stats) *)

type request = {
  id : Json.t;              (** echoed verbatim in the reply; [Null] if absent *)
  version : int option;     (** [None] = v1 (field absent on the wire) *)
  op : op;
  src : source;
  machine : string;         (** "generic" | "pacduo" | "octa-leaky" *)
  cores : int;
  config : string;          (** baseline | pg | dvfs | pg+dvfs | par | full *)
  passes : string option;   (** optional pass-pipeline spec *)
  deadline_ms : int option; (** per-request deadline *)
  budget : int option;      (** tune: unique evaluations (server caps it) *)
  seed : int option;        (** tune: search seed (default 1) *)
}

(** Defaults used for omitted fields: machine ["generic"], 4 cores,
    config ["full"]. *)
val default_request : request

(** Parse one frame (without its terminating newline) into a request.
    Malformed frames come back as a [Serve]-stage diagnostic with code
    {!code_decode}; an unsupported ["version"] (checked before anything
    else) or a v2-only op on a v1 frame as {!code_version}.  No
    exception ever escapes, whatever the bytes. *)
val request_of_frame : string -> (request, Diag.t) result

(** Best-effort ["id"] extraction from any frame, [Null] when the bytes
    don't even parse — decode-error replies echo it so pipelining
    clients can still match them. *)
val frame_id : string -> Json.t

(** Client side: render a request as one frame, newline included. *)
val frame_of_request : request -> string

(** {2 Replies} *)

(** Success frame: the payload fields, plus ["id"], ["ok"]:true, ["op"],
    and ["cached"] when the compile came from the server's warm cache.
    [version] (echoed from the request, so absent for v1 clients) keeps
    pre-versioning replies byte-identical.  Newline included. *)
val ok_frame :
  id:Json.t ->
  op:op ->
  ?version:int ->
  ?cached:bool ->
  (string * Json.t) list ->
  string

(** Error frame: ["id"], ["ok"]:false, ["code"], ["stage"], ["message"],
    ["transient"], and ["line"] when known.  Newline included. *)
val err_frame : id:Json.t -> ?version:int -> Diag.t -> string

(** Client-side view of a parsed reply frame. *)
type reply = {
  r_id : Json.t;
  r_ok : bool;
  r_code : string option;      (** error code when [not r_ok] *)
  r_transient : bool;
  r_payload : Json.t;          (** the whole reply object *)
}

(** Parse a reply frame; [Error] means the server broke the protocol. *)
val reply_of_frame : string -> (reply, string) result

(** {2 Request resolution and payload rendering}

    Shared with [serve-bench --verify]: computing the expected payload
    locally with these functions and comparing bytes against the served
    frame proves the daemon returns exactly what one-shot [lpcc]
    computes. *)

(** Machine + compile options for a request ([cores] clamped to the
    machine, [passes] parsed); bad names come back as {!code_decode}. *)
val resolve_target : request -> (Machine.t * Compile.options, Diag.t) result

(** Program text and scope label (fault/report scope) for a request;
    unknown workloads come back as {!code_decode}. *)
val resolve_source : request -> (string * string, Diag.t) result

(** Deterministic summary of a compiled program: machine, function and
    instruction counts, detected pattern instances, per-pass run/change
    counts (no wall times) and gating counts. *)
val payload_of_compiled : Compile.compiled -> (string * Json.t) list

(** {!payload_of_compiled} plus the simulation outcome: return value,
    simulated duration and energy (total and by category), instruction
    and transition counters.  Everything simulated, hence
    deterministic. *)
val payload_of_run :
  Compile.compiled -> Lp_sim.Sim.outcome -> (string * Json.t) list

(** The rendered audit report. *)
val payload_of_explain : Lp_obs.Report.t -> (string * Json.t) list

(** The resolved optimisation schedule for [passes] ([None] = driver
    default, plus the list of available passes). *)
val payload_of_pipeline :
  passes:string option -> ((string * Json.t) list, Diag.t) result

(** Tune result: best spec, baseline/tuned energy, improvement, search
    effort.  Deterministic for a given (seed, budget, target). *)
val payload_of_tune : Lp_tune.Tune.workload_result -> (string * Json.t) list

(** The [lowpower-profile/1] artifact of a profiled outcome, embedded
    verbatim under ["profile"].  [source] is the scope label ("inline"
    or the workload name) so a served profile of a workload matches the
    one-shot [lpcc profile -w NAME --json] bytes exactly. *)
val payload_of_profile :
  source:string ->
  Compile.compiled ->
  Lp_sim.Sim.outcome ->
  (string * Json.t) list
