(** Control-flow graph view of an IR function: predecessor/successor maps
    and a reverse-postorder traversal. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog

type t = {
  func : Prog.func;
  succs : (Ir.label, Ir.label list) Hashtbl.t;
  preds : (Ir.label, Ir.label list) Hashtbl.t;
  rpo : Ir.label list;  (** reverse postorder from entry; entry first *)
}

let succs t l = try Hashtbl.find t.succs l with Not_found -> []
let preds t l = try Hashtbl.find t.preds l with Not_found -> []

let build (f : Prog.func) : t =
  (* discover reachable blocks first so that edges out of dead blocks do
     not pollute predecessor sets (lowering leaves dead continuation
     blocks after mid-block returns until simplify-cfg prunes them) *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter dfs (Ir.term_succs (Prog.block f l).Ir.term);
      post := l :: !post
    end
  in
  dfs f.Prog.entry;
  let succs = Hashtbl.create 16 in
  let preds = Hashtbl.create 16 in
  (* accumulate predecessors reversed (cons per edge), then reverse each
     list once at the end — appending per edge is quadratic in the
     predecessor count *)
  List.iter
    (fun bid ->
      let ss = Ir.term_succs (Prog.block f bid).Ir.term in
      Hashtbl.replace succs bid ss;
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (bid :: cur))
        ss)
    !post;
  Hashtbl.filter_map_inplace (fun _ cur -> Some (List.rev cur)) preds;
  { func = f; succs; preds; rpo = !post }

(** Blocks reachable from the entry. *)
let reachable t = t.rpo

let is_reachable t l = List.mem l t.rpo

(** Remove unreachable blocks from the function layout (and table),
    deciding reachability from an already-built [cfg] (the caller may
    hold a cached one).  Touches the function only when something was
    actually pruned, so a no-op prune does not invalidate caches. *)
let prune_unreachable_of (cfg : t) : int =
  let f = cfg.func in
  let before = List.length f.Prog.block_order in
  let kept = List.filter (fun l -> is_reachable cfg l) f.Prog.block_order in
  let removed = before - List.length kept in
  if removed > 0 then begin
    f.Prog.block_order <- kept;
    Prog.prune_blocks f
  end;
  removed

(** Remove unreachable blocks from the function layout (and table). *)
let prune_unreachable (f : Prog.func) : int = prune_unreachable_of (build f)
