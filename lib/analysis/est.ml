(** Static time estimation.

    Estimates the nominal-frequency cycle count of blocks, loops and whole
    functions, and the fraction of that time spent waiting on shared
    memory.  The estimates drive three compiler decisions: the gating
    break-even test, DVFS level selection for memory-bound regions, and
    pipeline stage balancing.  They do not need to be exact — only to
    rank regions and to be within a small factor of simulated time. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Machine = Lp_machine.Machine

type instr_cost = { cycles : int; mem_cycles : int }
(** [cycles] includes [mem_cycles]; the latter is the part spent on the
    bus / shared memory and is frequency-independent in the simulator. *)

let instr_cost (m : Machine.t) (i : Ir.instr) : instr_cost =
  let base = Ir.base_latency i in
  let shared_cost =
    m.Machine.bus_latency_cycles + Machine.shared_mem_latency_cycles m
  in
  match i.Ir.idesc with
  | Ir.Load (_, s, _) | Ir.Store (s, _, _) -> (
    match s.Ir.sym_space with
    | Ir.Shared -> { cycles = base + shared_cost; mem_cycles = shared_cost }
    | Ir.Frame | Ir.Rom ->
      { cycles = base + Machine.spm_latency_cycles m; mem_cycles = 0 })
  | Ir.Faa _ -> { cycles = base + shared_cost; mem_cycles = shared_cost }
  | Ir.Send _ | Ir.Recv _ ->
    let c = base + m.Machine.channel_setup_cycles + m.Machine.bus_latency_cycles in
    { cycles = c; mem_cycles = c - base }
  | Ir.Barrier _ ->
    { cycles = base + m.Machine.bus_latency_cycles;
      mem_cycles = m.Machine.bus_latency_cycles }
  | _ -> { cycles = base; mem_cycles = 0 }

let block_cost m (b : Ir.block) : instr_cost =
  List.fold_left
    (fun acc i ->
      let c = instr_cost m i in
      { cycles = acc.cycles + c.cycles; mem_cycles = acc.mem_cycles + c.mem_cycles })
    { cycles = 1 (* terminator *); mem_cycles = 0 }
    b.Ir.instrs

type func_est = {
  total_cycles : float;
  mem_fraction : float;  (** share of cycles that are bus/shared-memory *)
}

(** Estimate a function, weighting each block by the product of the trip
    estimates of the loops containing it, and adding callee estimates at
    call sites.  Recursion falls back to a single-level estimate.
    [find_loops] lets the analysis manager substitute its cached loop
    forests (it must return exactly what [Loops.find] would). *)
let rec func_estimate ?(find_loops = Loops.find) ?(visiting = [])
    (m : Machine.t) (prog : Prog.t) (f : Prog.func) : func_est =
  let loops = find_loops f in
  let weight_of_block bid =
    List.fold_left
      (fun w l ->
        if Loops.contains l bid then
          w *. float_of_int (max 1 (Loops.trip_estimate f l))
        else w)
      1.0 loops
  in
  let total = ref 0.0 and mem = ref 0.0 in
  Prog.iter_blocks f (fun b ->
      let w = weight_of_block b.Ir.bid in
      let c = block_cost m b in
      total := !total +. (w *. float_of_int c.cycles);
      mem := !mem +. (w *. float_of_int c.mem_cycles);
      (* add callee cost *)
      List.iter
        (fun i ->
          match i.Ir.idesc with
          | Ir.Call (_, callee, _)
            when not (List.mem callee visiting) -> (
            match Prog.find_func prog callee with
            | Some cf ->
              let ce =
                func_estimate ~find_loops
                  ~visiting:(f.Prog.fname :: visiting) m prog cf
              in
              total := !total +. (w *. ce.total_cycles);
              mem := !mem +. (w *. ce.total_cycles *. ce.mem_fraction)
            | None -> ())
          | _ -> ())
        b.Ir.instrs);
  let total_cycles = max 1.0 !total in
  { total_cycles; mem_fraction = !mem /. total_cycles }

(** Estimated cycles of one loop (body blocks weighted by trips of the
    loop itself and any nested loops), callee costs included. *)
let loop_estimate ?(find_loops = Loops.find) (m : Machine.t) (prog : Prog.t)
    (f : Prog.func) (l : Loops.loop) : func_est =
  let loops = find_loops f in
  let nested = List.filter (fun l' -> Loops.LS.subset l'.Loops.blocks l.Loops.blocks) loops in
  let weight_of_block bid =
    List.fold_left
      (fun w l' ->
        if Loops.contains l' bid then
          w *. float_of_int (max 1 (Loops.trip_estimate f l'))
        else w)
      1.0 nested
  in
  let total = ref 0.0 and mem = ref 0.0 in
  Loops.LS.iter
    (fun bid ->
      let b = Prog.block f bid in
      let w = weight_of_block bid in
      let c = block_cost m b in
      total := !total +. (w *. float_of_int c.cycles);
      mem := !mem +. (w *. float_of_int c.mem_cycles);
      List.iter
        (fun i ->
          match i.Ir.idesc with
          | Ir.Call (_, callee, _) -> (
            match Prog.find_func prog callee with
            | Some cf ->
              let ce =
                func_estimate ~find_loops ~visiting:[ f.Prog.fname ] m prog cf
              in
              total := !total +. (w *. ce.total_cycles);
              mem := !mem +. (w *. ce.total_cycles *. ce.mem_fraction)
            | None -> ())
          | _ -> ())
        b.Ir.instrs)
    l.Loops.blocks;
  let total_cycles = max 1.0 !total in
  { total_cycles; mem_fraction = !mem /. total_cycles }
