(** Invalidation-aware analysis cache.

    One manager serves memoized analysis results for every function of a
    program.  Each cached per-function result is stamped with the
    function's mutation version ({!Lp_ir.Prog.version}); a query whose
    stamp no longer matches recomputes.  Program-level analyses
    (component use, static time estimation, which follow calls across
    functions) are stamped with {!Lp_ir.Prog.prog_version} instead.

    The pass manager additionally calls {!invalidate} after a pass that
    reported changes: analyses the pass declared it preserves are
    re-stamped to the function's current version (asserting they are
    still valid), everything else is dropped.  Because analyses are
    deterministic, a cached result is byte-identical to a fresh
    recomputation — caching must never change compiler output, only
    avoid repeated work.  [caching:false] (the [LP_NO_ANALYSIS_CACHE=1]
    escape hatch) recomputes every query, which is the reference
    behaviour the cache is checked against. *)

module Prog = Lp_ir.Prog
module Machine = Lp_machine.Machine
module Obs = Lp_obs.Obs

(** The registered per-function analyses.  Constructor names double as
    the vocabulary of pass [preserves] declarations. *)
type kind = Cfg | Dominators | Liveness | Loops | Est

let all_kinds = [ Cfg; Dominators; Liveness; Loops; Est ]

let kind_name = function
  | Cfg -> "cfg"
  | Dominators -> "doms"
  | Liveness -> "liveness"
  | Loops -> "loops"
  | Est -> "est"

type value =
  | V_cfg of Cfg.t
  | V_doms of Dominators.t
  | V_live of Liveness.t
  | V_loops of Loops.loop list

type entry = {
  mutable e_version : int;  (** {!Prog.version} of the function at compute *)
  e_value : value;
}

type stats = { hits : int; misses : int; invalidations : int }

type t = {
  prog : Prog.t;
  caching : bool;
  obs : Obs.t;
  table : (string * kind, entry) Hashtbl.t;  (** per-function results *)
  est : (string * string, int * Est.func_est) Hashtbl.t;
      (** (fname, machine) -> (prog_version, estimate) *)
  mutable comp : (int * Compuse.t) option;  (** prog_version-stamped *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create ?(obs = Obs.disabled) ?(caching = true) (prog : Prog.t) : t =
  {
    prog;
    caching;
    obs;
    table = Hashtbl.create 64;
    est = Hashtbl.create 16;
    comp = None;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let prog t = t.prog
let caching t = t.caching
let stats t = { hits = t.hits; misses = t.misses; invalidations = t.invalidations }

let hit t =
  t.hits <- t.hits + 1;
  Obs.add t.obs "analysis.cache_hits" 1

let miss t =
  t.misses <- t.misses + 1;
  Obs.add t.obs "analysis.cache_misses" 1

(* ------------------------------------------------------------------ *)
(* Per-function analyses                                               *)
(* ------------------------------------------------------------------ *)

(** Valid cached value, or [None] (counting the hit / miss).  A stale
    entry (function version moved on) counts as a miss and is dropped. *)
let lookup t (f : Prog.func) (k : kind) : value option =
  if not t.caching then begin
    miss t;
    None
  end
  else
    let key = (f.Prog.fname, k) in
    match Hashtbl.find_opt t.table key with
    | Some e when e.e_version = Prog.version f ->
      hit t;
      Some e.e_value
    | Some _ ->
      Hashtbl.remove t.table key;
      miss t;
      None
    | None ->
      miss t;
      None

let store t (f : Prog.func) (k : kind) (v : value) : unit =
  if t.caching then
    Hashtbl.replace t.table (f.Prog.fname, k)
      { e_version = Prog.version f; e_value = v }

let cfg t (f : Prog.func) : Cfg.t =
  match lookup t f Cfg with
  | Some (V_cfg c) -> c
  | Some _ -> assert false
  | None ->
    let c = Cfg.build f in
    store t f Cfg (V_cfg c);
    c

let dominators t (f : Prog.func) : Dominators.t =
  match lookup t f Dominators with
  | Some (V_doms d) -> d
  | Some _ -> assert false
  | None ->
    let d = Dominators.compute_of_cfg (cfg t f) in
    store t f Dominators (V_doms d);
    d

let liveness t (f : Prog.func) : Liveness.t =
  match lookup t f Liveness with
  | Some (V_live l) -> l
  | Some _ -> assert false
  | None ->
    let l = Liveness.compute_of_cfg (cfg t f) in
    store t f Liveness (V_live l);
    l

let loops t (f : Prog.func) : Loops.loop list =
  match lookup t f Loops with
  | Some (V_loops ls) -> ls
  | Some _ -> assert false
  | None ->
    let ls = Loops.find_of ~cfg:(cfg t f) ~doms:(dominators t f) in
    store t f Loops (V_loops ls);
    ls

(* ------------------------------------------------------------------ *)
(* Program-level analyses                                              *)
(* ------------------------------------------------------------------ *)

let func_est t (m : Machine.t) (f : Prog.func) : Est.func_est =
  let pv = Prog.prog_version t.prog in
  let key = (f.Prog.fname, m.Machine.name) in
  match Hashtbl.find_opt t.est key with
  | Some (v, e) when t.caching && v = pv ->
    hit t;
    e
  | _ ->
    miss t;
    let e = Est.func_estimate ~find_loops:(loops t) m t.prog f in
    if t.caching then Hashtbl.replace t.est key (pv, e);
    e

(** Not memoized per loop (loops are structural values, not stable
    keys); still serves its loop forests from the cache. *)
let loop_est t (m : Machine.t) (f : Prog.func) (l : Loops.loop) : Est.func_est =
  Est.loop_estimate ~find_loops:(loops t) m t.prog f l

let compuse t : Compuse.t =
  let pv = Prog.prog_version t.prog in
  match t.comp with
  | Some (v, c) when t.caching && v = pv ->
    hit t;
    c
  | _ ->
    miss t;
    let c = Compuse.compute t.prog in
    if t.caching then t.comp <- Some (pv, c);
    c

(* ------------------------------------------------------------------ *)
(* Invalidation                                                        *)
(* ------------------------------------------------------------------ *)

(** Called by the pass manager after a pass changed [f].  Entries for
    analyses in [preserves] are re-stamped to [f]'s current version (the
    pass guarantees they still hold); the rest are dropped.  Program-
    level entries are stamped with [prog_version] and expire on their
    own, so they need no handling here. *)
let invalidate t ?(preserves = []) (f : Prog.func) : unit =
  if t.caching then begin
    let v = Prog.version f in
    List.iter
      (fun k ->
        let key = (f.Prog.fname, k) in
        match Hashtbl.find_opt t.table key with
        | None -> ()
        | Some e ->
          if List.mem k preserves then e.e_version <- v
          else begin
            Hashtbl.remove t.table key;
            t.invalidations <- t.invalidations + 1;
            Obs.add t.obs "analysis.invalidations" 1
          end)
      all_kinds
  end

(** Drop everything (used when whole-program structure changes outside
    the pass manager's view, e.g. layout transformation). *)
let invalidate_all t : unit =
  if t.caching then begin
    let n = Hashtbl.length t.table + Hashtbl.length t.est
            + match t.comp with Some _ -> 1 | None -> 0 in
    Hashtbl.reset t.table;
    Hashtbl.reset t.est;
    t.comp <- None;
    t.invalidations <- t.invalidations + n;
    Obs.add t.obs "analysis.invalidations" n
  end
