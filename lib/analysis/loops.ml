(** Natural loop detection and trip-count estimation.

    Loops are found from back edges (edges whose target dominates their
    source).  The trip-count estimator pattern-matches the canonical loop
    shape produced by the lowering pass ([i = lo; while (i < hi) ...;
    i = i + step]) and falls back to a fixed heuristic when bounds are not
    compile-time constants.  Trip estimates feed the gating break-even
    test and the DVFS region selection. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module LS = Set.Make (Int)

type loop = {
  header : Ir.label;
  blocks : LS.t;            (** all blocks of the loop, header included *)
  back_edges : Ir.label list;  (** sources of back edges *)
  exits : (Ir.label * Ir.label) list;  (** (inside, outside) exit edges *)
  depth : int;              (** nesting depth; 1 = outermost *)
}

(** Default trip estimate when bounds are unknown. *)
let default_trip = 16

let natural_loop (cfg : Cfg.t) ~header ~source : LS.t =
  (* blocks that can reach [source] without passing through [header] *)
  let body = ref (LS.add header (LS.singleton source)) in
  let stack = ref [ source ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | b :: rest ->
      stack := rest;
      if b <> header then
        List.iter
          (fun p ->
            if not (LS.mem p !body) then begin
              body := LS.add p !body;
              stack := p :: !stack
            end)
          (Cfg.preds cfg b)
  done;
  !body

(** Find natural loops over an already-built CFG and dominator tree
    (shared with other analyses via the manager); [find] builds fresh
    ones. *)
let find_of ~(cfg : Cfg.t) ~(doms : Dominators.t) : loop list =
  (* collect back edges *)
  let back = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun s -> if Dominators.dominates doms s b then back := (b, s) :: !back)
        (Cfg.succs cfg b))
    cfg.Cfg.rpo;
  (* group by header, merge bodies *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (src, header) ->
      let body = natural_loop cfg ~header ~source:src in
      match Hashtbl.find_opt by_header header with
      | Some (srcs, blocks) ->
        Hashtbl.replace by_header header (src :: srcs, LS.union blocks body)
      | None -> Hashtbl.replace by_header header ([ src ], body))
    !back;
  let loops =
    Hashtbl.fold
      (fun header (srcs, blocks) acc ->
        let exits =
          LS.fold
            (fun b acc ->
              List.fold_left
                (fun acc s ->
                  if LS.mem s blocks then acc else (b, s) :: acc)
                acc (Cfg.succs cfg b))
            blocks []
        in
        { header; blocks; back_edges = srcs; exits; depth = 1 } :: acc)
      by_header []
  in
  (* nesting depth: a loop nested in another iff its blocks are a subset *)
  let depth_of l =
    1
    + List.length
        (List.filter
           (fun outer ->
             outer.header <> l.header && LS.subset l.blocks outer.blocks)
           loops)
  in
  loops
  |> List.map (fun l -> { l with depth = depth_of l })
  |> List.sort (fun a b -> compare (a.depth, a.header) (b.depth, b.header))

let find (f : Prog.func) : loop list =
  let cfg = Cfg.build f in
  find_of ~cfg ~doms:(Dominators.compute_of_cfg cfg)

let contains l label = LS.mem label l.blocks

let top_level loops = List.filter (fun l -> l.depth = 1) loops

(* ------------------------------------------------------------------ *)
(* Trip-count estimation                                               *)
(* ------------------------------------------------------------------ *)

(** Try to recognise in the loop header a condition
    [Br (Binop (Lt|Le) (Reg iv) (Imm hi), body, exit)], find the
    initialisation [iv := Imm lo] outside the loop and the step
    [iv := iv + Imm k] inside.  Returns the constant trip count. *)
let constant_trip (f : Prog.func) (l : loop) : int option =
  let header_block = Prog.block f l.header in
  let open Ir in
  (* the condition register must be defined in the header *)
  let cond_info =
    match header_block.term with
    | Br (Reg c, _, _) ->
      List.fold_left
        (fun acc i ->
          match i.idesc with
          | Binop (((Lt | Le) as op), d, Reg iv, Imm (Cint hi)) when d = c ->
            Some (op, iv, hi)
          | _ -> acc)
        None header_block.instrs
    | Br _ | Jmp _ | Ret _ -> None
  in
  match cond_info with
  | None -> None
  | Some (op, iv, hi) ->
    (* find unique init outside the loop and unique step inside; the step
       [i = i + k] lowers to [t := add iv, k; iv := t], so chase one move *)
    let init = ref None and step = ref None and bad = ref false in
    Prog.iter_blocks f (fun b ->
        let def_in_block r =
          List.fold_left
            (fun acc i ->
              match Ir.def i with Some d when d = r -> Some i | _ -> acc)
            None b.instrs
        in
        List.iter
          (fun i ->
            match Ir.def i with
            | Some d when d = iv -> (
              let inside = contains l b.bid in
              match (inside, i.idesc) with
              | (false, (Move (_, Imm (Cint lo)) | Const (_, Cint lo))) -> (
                match !init with
                | None -> init := Some lo
                | Some _ -> bad := true)
              | (true, Move (_, Reg t)) -> (
                match def_in_block t with
                | Some { idesc = Binop (Add, _, Reg r, Imm (Cint k)); _ }
                  when r = iv -> (
                  match !step with
                  | None -> step := Some k
                  | Some _ -> bad := true)
                | _ -> bad := true)
              | (true, Binop (Add, _, Reg r, Imm (Cint k))) when r = iv -> (
                match !step with
                | None -> step := Some k
                | Some _ -> bad := true)
              | _ -> bad := true)
            | _ -> ())
          b.instrs);
    (match (!bad, !init, !step) with
    | (false, Some lo, Some k) when k > 0 ->
      let span = match op with Lt -> hi - lo | _ -> hi - lo + 1 in
      if span <= 0 then Some 0 else Some ((span + k - 1) / k)
    | _ -> None)

let trip_estimate f l =
  match constant_trip f l with Some n -> n | None -> default_trip
