(** Generic iterative dataflow framework over basic blocks.

    Problems supply a join semilattice and a per-block transfer function;
    the framework runs a true worklist to fixpoint: seeded in reverse
    postorder (reverse RPO for backward problems) and re-queueing only the
    successors (resp. predecessors) of blocks whose output changed, so
    unaffected regions of the CFG are never re-visited.  Used by liveness,
    by the component-activity analysis behind power gating, and by tests
    that define toy problems to exercise the machinery. *)

module Ir = Lp_ir.Ir

module type LATTICE = sig
  type t
  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

(** A block's output must stop changing after at most the lattice height
    many updates; a transfer/join pair that keeps flipping a block's value
    past this bound is not monotone. *)
let max_output_changes = 100_000

module Make (L : LATTICE) = struct
  type result = {
    inputs : (Ir.label, L.t) Hashtbl.t;   (** value at block entry (forward)
                                              or exit (backward) *)
    outputs : (Ir.label, L.t) Hashtbl.t;  (** value after the transfer *)
  }

  let get tbl l = try Hashtbl.find tbl l with Not_found -> L.bottom

  (** [run ~direction ~cfg ~init ~transfer] iterates to fixpoint.
      [init] seeds the entry (forward) or every exit block (backward). *)
  let run ~direction ~(cfg : Cfg.t) ~(init : L.t)
      ~(transfer : Ir.label -> L.t -> L.t) : result =
    let inputs = Hashtbl.create 16 in
    let outputs = Hashtbl.create 16 in
    let blocks = cfg.Cfg.rpo in
    let order =
      match direction with Forward -> blocks | Backward -> List.rev blocks
    in
    let neighbours_in l =
      match direction with
      | Forward -> Cfg.preds cfg l
      | Backward -> Cfg.succs cfg l
    in
    let neighbours_out l =
      match direction with
      | Forward -> Cfg.succs cfg l
      | Backward -> Cfg.preds cfg l
    in
    (* exit blocks computed once: re-deriving [succs = []] on every
       backward visit is wasted work on the hot path *)
    let exits = Hashtbl.create 8 in
    List.iter
      (fun l -> if Cfg.succs cfg l = [] then Hashtbl.replace exits l ())
      blocks;
    let is_boundary l =
      match direction with
      | Forward -> l = cfg.Cfg.func.Lp_ir.Prog.entry
      | Backward -> Hashtbl.mem exits l
    in
    let queue = Queue.create () in
    let queued = Hashtbl.create 16 in
    let changes = Hashtbl.create 16 in
    let enqueue l =
      if not (Hashtbl.mem queued l) then begin
        Hashtbl.replace queued l ();
        Queue.push l queue
      end
    in
    List.iter enqueue order;
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      Hashtbl.remove queued l;
      let in_v =
        let base = if is_boundary l then init else L.bottom in
        List.fold_left
          (fun acc p -> L.join acc (get outputs p))
          base (neighbours_in l)
      in
      let out_v = transfer l in_v in
      if not (L.equal (get inputs l) in_v) then Hashtbl.replace inputs l in_v;
      if not (L.equal (get outputs l) out_v) then begin
        let n = Option.value ~default:0 (Hashtbl.find_opt changes l) + 1 in
        Hashtbl.replace changes l n;
        if n > max_output_changes then
          failwith
            (Printf.sprintf
               "Dataflow.run: monotonicity violation at block L%d (output \
                changed %d times without converging)"
               l n);
        Hashtbl.replace outputs l out_v;
        List.iter enqueue (neighbours_out l)
      end
    done;
    { inputs; outputs }

  let input r l = get r.inputs l
  let output r l = get r.outputs l
end

module Int_set = Set.Make (Int)

module Reg_set_lattice = struct
  type t = Int_set.t
  let bottom = Int_set.empty
  let equal = Int_set.equal
  let join = Int_set.union
end
