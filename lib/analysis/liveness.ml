(** Register liveness, block level, via the generic dataflow framework. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Flow = Dataflow.Make (Dataflow.Reg_set_lattice)
module IS = Dataflow.Int_set

type t = {
  cfg : Cfg.t;
  result : Flow.result;
  use_def : (Ir.label, IS.t * IS.t) Hashtbl.t;  (** per-block (use, def) *)
}

let block_use_def (b : Ir.block) : IS.t * IS.t =
  (* scan forward: a use counts only if not previously defined in block *)
  let use = ref IS.empty in
  let def = ref IS.empty in
  let see_uses rs =
    List.iter (fun r -> if not (IS.mem r !def) then use := IS.add r !use) rs
  in
  List.iter
    (fun i ->
      see_uses (Ir.uses i);
      match Ir.def i with
      | Some d -> def := IS.add d !def
      | None -> ())
    b.Ir.instrs;
  see_uses (Ir.term_uses b.Ir.term);
  (!use, !def)

(** Compute liveness over an already-built CFG (shared with other
    analyses via the manager); [compute] builds a fresh one. *)
let compute_of_cfg (cfg : Cfg.t) : t =
  let f = cfg.Cfg.func in
  let use_def = Hashtbl.create 16 in
  List.iter
    (fun b -> Hashtbl.replace use_def b.Ir.bid (block_use_def b))
    (Prog.blocks_in_order f);
  let transfer l out_set =
    match Hashtbl.find_opt use_def l with
    | Some (use, def) -> IS.union use (IS.diff out_set def)
    | None -> out_set
  in
  let result = Flow.run ~direction:Dataflow.Backward ~cfg ~init:IS.empty ~transfer in
  { cfg; result; use_def }

let compute (f : Prog.func) : t = compute_of_cfg (Cfg.build f)

(** Registers live at block exit. *)
let live_out t l =
  List.fold_left
    (fun acc s -> IS.union acc (Flow.output t.result s))
    IS.empty
    (Cfg.succs t.cfg l)

(** Registers live at block entry. *)
let live_in t l = Flow.output t.result l

(** Count of registers live across any block boundary — a rough register
    pressure indicator reported in compile statistics. *)
let max_pressure t =
  List.fold_left
    (fun acc l -> max acc (IS.cardinal (live_in t l)))
    0 t.cfg.Cfg.rpo
