(** The compiler driver: MiniC source → pattern detection → pattern-driven
    parallelisation → IR lowering → classic optimisation → pattern-aware
    power management → verified program (+ optional simulation).

    This module is the library's main public entry point.  The [options]
    record captures the configurations the evaluation compares:

    - [baseline]: plain optimising compile, single core, no power
      management;
    - [pg_only]: adds component power gating (with Sink-N-Hoist);
    - [dvfs_only]: adds compiler-directed DVFS;
    - [pg_dvfs]: both, still sequential;
    - [full]: pattern-driven multicore parallelisation plus both power
      transformations and pipeline balancing — the paper's proposal. *)

module Ast = Lp_lang.Ast
module Parser = Lp_lang.Parser
module Typecheck = Lp_lang.Typecheck
module Pattern = Lp_patterns.Pattern
module Detect = Lp_patterns.Detect
module Prog = Lp_ir.Prog
module Lower = Lp_ir.Lower
module Verify = Lp_ir.Verify
module Machine = Lp_machine.Machine
module T = Lp_transforms

type power_options = {
  gating : bool;
  sink_n_hoist : bool;
  dvfs : bool;
  balance : bool;
  gate_unused_cores : bool;
  gating_opts : T.Gating.options;
  dvfs_opts : T.Dvfs.options;
}

type options = {
  n_cores : int;          (** cores the compiler may occupy *)
  parallelize : bool;
  distribution : T.Parallelize.distribution;  (** doall/reduction split *)
  sync : T.Parallelize.sync;  (** non-reduction doall completion mechanism *)
  mac_fusion : bool;
  power : power_options;
  pipeline : Pipeline.t option;
      (** classic-optimisation schedule; [None] = {!Pipeline.default} *)
}

let no_power =
  {
    gating = false;
    sink_n_hoist = false;
    dvfs = false;
    balance = false;
    gate_unused_cores = false;
    gating_opts = T.Gating.default_options;
    dvfs_opts = T.Dvfs.default_options;
  }

let all_power =
  {
    no_power with
    gating = true;
    sink_n_hoist = true;
    dvfs = true;
    balance = true;
    gate_unused_cores = true;
  }

(** Non-power-aware sequential compile (the paper's baseline). *)
let baseline =
  { n_cores = 1; parallelize = false; distribution = T.Parallelize.Block;
    sync = T.Parallelize.Done_channel; mac_fusion = true; power = no_power;
    pipeline = None }

(** Smart constructors over {!options}; see the interface. *)
module Options = struct
  let update ?n_cores ?parallelize ?distribution ?sync ?mac_fusion ?gating
      ?sink_n_hoist ?dvfs ?balance ?gate_unused_cores ?gating_opts ?dvfs_opts
      ?pipeline (base : options) : options =
    let keep v o = Option.value o ~default:v in
    let p = base.power in
    {
      n_cores = keep base.n_cores n_cores;
      parallelize = keep base.parallelize parallelize;
      distribution = keep base.distribution distribution;
      sync = keep base.sync sync;
      mac_fusion = keep base.mac_fusion mac_fusion;
      power =
        {
          gating = keep p.gating gating;
          sink_n_hoist = keep p.sink_n_hoist sink_n_hoist;
          dvfs = keep p.dvfs dvfs;
          balance = keep p.balance balance;
          gate_unused_cores = keep p.gate_unused_cores gate_unused_cores;
          gating_opts = keep p.gating_opts gating_opts;
          dvfs_opts = keep p.dvfs_opts dvfs_opts;
        };
      pipeline =
        (match pipeline with Some _ as pl -> pl | None -> base.pipeline);
    }

  let make ?n_cores ?parallelize ?distribution ?sync ?mac_fusion ?gating
      ?sink_n_hoist ?dvfs ?balance ?gate_unused_cores ?gating_opts ?dvfs_opts
      ?pipeline () : options =
    update ?n_cores ?parallelize ?distribution ?sync ?mac_fusion ?gating
      ?sink_n_hoist ?dvfs ?balance ?gate_unused_cores ?gating_opts ?dvfs_opts
      ?pipeline baseline
end

let pg_only =
  Options.make ~gating:true ~sink_n_hoist:true ~gate_unused_cores:true ()

let dvfs_only = Options.make ~dvfs:true ()

let pg_dvfs =
  Options.make ~gating:true ~sink_n_hoist:true ~dvfs:true
    ~gate_unused_cores:true ()

(** The full pattern-aware low-power compile. *)
let full ~n_cores =
  Options.make ~n_cores ~parallelize:true ~gating:true ~sink_n_hoist:true
    ~dvfs:true ~balance:true ~gate_unused_cores:true ()

(** Parallelisation without power management (to separate the two
    effects in the evaluation). *)
let par_only ~n_cores = Options.make ~n_cores ~parallelize:true ()

type compiled = {
  source_ast : Ast.program;
  prog : Prog.t;
  par_info : T.Par_info.t;
  detection : Pattern.report;
  pass_stats : T.Pass.stats list;
  gating_before_merge : T.Gating.counts;
  gating_after_merge : T.Gating.counts;
  machine : Machine.t;
  options : options;
}

exception Compile_error of string

(* ------------------------------------------------------------------ *)
(* The driver context                                                  *)
(* ------------------------------------------------------------------ *)

module Obs = Lp_obs.Obs
module Report = Lp_obs.Report
module Runtime_config = Lp_util.Runtime_config

type ctx = {
  obs : Obs.t;
  report : Report.t;
  config : Runtime_config.t;
  deadline : Lp_util.Deadline.t;
}

let default_ctx =
  { obs = Obs.disabled; report = Report.disabled;
    config = Runtime_config.default; deadline = Lp_util.Deadline.none }

let make_ctx ?(obs = Obs.disabled) ?(report = Report.disabled)
    ?(config = Runtime_config.default)
    ?(deadline = Lp_util.Deadline.none) () =
  { obs; report; config; deadline }

(** Append a simulation's energy/counter record to the audit report
    (shared by [run], [run_result] and the CLI; no-op when the report is
    disabled).  A nonzero implicit-wakeup count also lands in the
    report's warnings: the simulator had to silently re-enable a gated
    component, which means the compiler gated a component the program
    still uses. *)
let record_outcome report (outcome : Lp_sim.Sim.outcome) =
  if Report.enabled report then begin
    let module J = Lp_util.Json in
    let module Ledger = Lp_power.Energy_ledger in
    let cores =
      Array.to_list
        (Array.mapi
           (fun i l ->
             J.Obj
               [ ("core", J.Num (float_of_int i));
                 ("energy", Ledger.to_json l) ])
           outcome.Lp_sim.Sim.core_ledgers)
    in
    Report.add_sim report
      {
        Report.sr_duration_ns = outcome.Lp_sim.Sim.duration_ns;
        sr_instrs = outcome.Lp_sim.Sim.instr_total;
        sr_implicit_wakeups = outcome.Lp_sim.Sim.implicit_wakeups;
        sr_gate_transitions = outcome.Lp_sim.Sim.gate_transitions;
        sr_dvfs_transitions = outcome.Lp_sim.Sim.dvfs_transitions;
        sr_energy = Ledger.to_json outcome.Lp_sim.Sim.energy;
        sr_core_energy = cores;
        sr_predecode = outcome.Lp_sim.Sim.predecode;
      };
    if outcome.Lp_sim.Sim.implicit_wakeups > 0 then
      Report.warn report
        (Printf.sprintf
           "%s: %d implicit wakeup(s): an instruction executed on a gated \
            component (compiler bug)"
           (let s = Report.current_scope () in
            if s = "" then "(no scope)" else s)
           outcome.Lp_sim.Sim.implicit_wakeups)
  end

(** Instances the machine can actually host (a pipeline with more stages
    than available workers is skipped, falling back to sequential code
    for that loop). *)
let feasible_instances ~n_cores (instances : Pattern.instance list) =
  let workers = n_cores - 1 in
  List.filter
    (fun (inst : Pattern.instance) ->
      match inst.Pattern.kind with
      (* deep pipelines are stage-fused down to the available cores *)
      | Pattern.Pipeline _ | Pattern.Prodcons -> workers >= 1
      | Pattern.Doall | Pattern.Reduction _ | Pattern.Farm -> workers >= 1)
    instances

(** Run [f], converting the front-end and self-check exceptions it may
    raise into the legacy [Compile_error] (message format unchanged from
    when the driver caught them inline). *)
let wrap_legacy f =
  try f () with
  | Lp_lang.Lexer.Lex_error (msg, line) ->
    raise (Compile_error (Printf.sprintf "lex error line %d: %s" line msg))
  | Parser.Parse_error (msg, line) ->
    raise (Compile_error (Printf.sprintf "parse error line %d: %s" line msg))
  | Typecheck.Type_error (msg, pos) ->
    raise
      (Compile_error (Printf.sprintf "type error line %d: %s" pos.Ast.line msg))
  | Lower.Lower_error msg -> raise (Compile_error ("lowering: " ^ msg))
  | Verify.Invalid msg -> raise (Compile_error ("verify: " ^ msg))

(** Parse and type-check, letting [Lex_error]/[Parse_error]/[Type_error]
    propagate (the structured entry points map them to diagnostics). *)
let parse_and_check_exn source =
  let ast = Parser.parse_program source in
  Typecheck.check_program ast;
  ast

let parse_and_check source = wrap_legacy (fun () -> parse_and_check_exn source)

(** Compile [source] for [machine] under [opts].  Raises the raw
    per-stage exceptions; [compile] wraps them for the legacy API and
    [compile_result] maps them to diagnostics.  [verify_each] re-runs the
    IR verifier after every optimisation pass (the fuzzer's oracle).
    [ctx] supplies the telemetry recorder: every phase below runs inside
    a span (the [compile → fixpoint round → pass → function] hierarchy
    of docs/OBSERVABILITY.md), all free when the recorder is off. *)
let compile_exn ?(ctx = default_ctx) ?(verify_each = false) ?(opts = baseline)
    ~(machine : Machine.t) (source : string) : compiled =
  let obs = ctx.obs in
  Obs.span obs ~cat:"compile"
    ~args:[ ("machine", Obs.Str machine.Machine.name);
            ("cores", Obs.Int opts.n_cores) ]
    "compile"
  @@ fun () ->
  if opts.n_cores > Machine.n_cores machine then
    raise
      (Compile_error
         (Printf.sprintf "options ask for %d cores, machine has %d"
            opts.n_cores (Machine.n_cores machine)));
  let phase name f =
    (* cooperative deadline: checked at every phase boundary; the pass
       fixpoint and the simulator check at finer grain themselves *)
    Lp_util.Deadline.check ctx.deadline;
    Obs.span obs ~cat:"phase" name f
  in
  let ast = phase "frontend" (fun () -> parse_and_check_exn source) in
  let detection = phase "detect" (fun () -> Detect.detect ast) in
  Obs.add obs "compile.patterns_detected"
    (List.length detection.Pattern.instances);
  if Report.enabled ctx.report then begin
    List.iter
      (fun (inst : Pattern.instance) ->
        Report.add ctx.report
          (Report.Pattern_verdict
             {
               pv_func = inst.Pattern.in_func;
               pv_verdict = "accepted";
               pv_kind = Some (Pattern.kind_name inst.Pattern.kind);
               pv_origin =
                 Some
                   (match inst.Pattern.origin with
                   | Pattern.Annotated -> "annotated"
                   | Pattern.Inferred -> "inferred");
               pv_reason = None;
             }))
      detection.Pattern.instances;
    List.iter
      (fun (r : Pattern.rejection) ->
        Report.add ctx.report
          (Report.Pattern_verdict
             {
               pv_func = r.Pattern.rej_func;
               pv_verdict = "rejected";
               pv_kind = r.Pattern.rej_requested;
               pv_origin = None;
               pv_reason = Some r.Pattern.rej_reason;
             }))
      detection.Pattern.rejections
  end;
  let (ast_par, par_info) =
    if opts.parallelize && opts.n_cores > 1 then
      phase "parallelize" (fun () ->
          T.Parallelize.run ~distribution:opts.distribution ~sync:opts.sync
            ~n_cores:opts.n_cores ast
            (feasible_instances ~n_cores:opts.n_cores
               detection.Pattern.instances))
    else (ast, T.Par_info.sequential)
  in
  (* self-check: generated source must still type-check *)
  (try phase "recheck" (fun () -> Typecheck.check_program ast_par) with
  | Typecheck.Type_error (msg, pos) ->
    raise
      (Compile_error
         (Printf.sprintf "internal: generated code ill-typed (line %d): %s"
            pos.Ast.line msg)));
  let prog = phase "lower" (fun () -> Lower.lower_program ast_par) in
  if par_info.T.Par_info.n_workers > 0 then
    prog.Prog.layout <-
      Prog.Parallel
        {
          entries = par_info.T.Par_info.entries;
          n_channels = par_info.T.Par_info.n_channels;
          n_barriers = par_info.T.Par_info.n_barriers;
          chan_capacity = par_info.T.Par_info.chan_capacity;
        };
  (* classic optimisation *)
  let on_pass =
    if verify_each then
      Some
        (fun name prog ->
          try Verify.verify_prog prog with
          | Verify.Invalid msg ->
            raise (Verify.Invalid (Printf.sprintf "after pass %s: %s" name msg)))
    else None
  in
  let pm =
    T.Pass.create_manager ~obs ~report:ctx.report
      ~caching:(not ctx.config.Runtime_config.no_analysis_cache)
      ~deadline:ctx.deadline ?on_pass ()
  in
  let am = T.Pass.analysis_manager pm prog in
  phase "optimize" (fun () ->
      Pipeline.execute pm ~mac_fusion:opts.mac_fusion
        (Option.value ~default:Pipeline.default opts.pipeline)
        prog);
  (* pattern-aware power management *)
  let (gating_before_merge, gating_after_merge) =
    phase "power" (fun () ->
        if opts.power.balance && par_info.T.Par_info.n_workers > 0 then
          ignore (T.Balance.run ~am machine prog par_info);
        if opts.power.dvfs then
          ignore
            (T.Dvfs.insert ~opts:opts.power.dvfs_opts ~report:ctx.report ~am
               machine prog);
        let gating_before_merge =
          if opts.power.gating then begin
            ignore
              (T.Gating.insert ~opts:opts.power.gating_opts ~report:ctx.report
                 ~am machine prog);
            ignore (T.Pass.run_pass pm T.Simplify_cfg.pass prog);
            T.Gating.count_gating prog
          end
          else T.Gating.count_gating prog
        in
        let gating_after_merge =
          if opts.power.gating && opts.power.sink_n_hoist then begin
            ignore (T.Gating.merge ~report:ctx.report machine prog);
            ignore (T.Pass.run_pass pm T.Simplify_cfg.pass prog);
            T.Gating.count_gating prog
          end
          else gating_before_merge
        in
        (gating_before_merge, gating_after_merge))
  in
  phase "verify" (fun () -> Verify.verify_prog prog);
  (* the target must have every component the program executes on *)
  phase "compat" (fun () ->
      let cu = Lp_analysis.Manager.compuse am in
      List.iter
        (fun entry ->
          let used = Lp_analysis.Compuse.func_use cu entry in
          Lp_power.Component.Set.iter
            (fun comp ->
              if not (Machine.has_component machine comp) then
                raise
                  (Compile_error
                     (Printf.sprintf
                        "program uses the %s unit but machine %s has none"
                        (Lp_power.Component.to_string comp)
                        machine.Machine.name)))
            used)
        (Prog.entries prog));
  let pass_stats = T.Pass.stats pm in
  Obs.add obs "compile.runs" 1;
  Obs.add obs "compile.ir_instrs" (Prog.total_instrs prog);
  List.iter
    (fun (s : T.Pass.stats) ->
      Obs.add obs ("pass." ^ s.T.Pass.pass_name ^ ".runs") s.T.Pass.runs;
      Obs.add obs ("pass." ^ s.T.Pass.pass_name ^ ".changes") s.T.Pass.changes)
    pass_stats;
  {
    source_ast = ast;
    prog;
    par_info;
    detection;
    pass_stats;
    gating_before_merge;
    gating_after_merge;
    machine;
    options = opts;
  }

(** Compile [source] for [machine]; the raising entry point
    ([Compile_error] covers front-end, lowering, verification and driver
    failures, exactly as before diagnostics existed). *)
let compile ?(ctx = default_ctx) ?opts ~(machine : Machine.t) (source : string)
    : compiled =
  wrap_legacy (fun () -> compile_exn ~ctx ?opts ~machine source)

(** Resolve the effective simulator options for an already-compiled
    program: the compile options decide unused-core gating, the runtime
    config can force the interpretive stepper, and the context's
    deadline token (when live) overrides the simulator's own. *)
let effective_sim_opts ~(ctx : ctx) ~(opts : options)
    (sim_opts : Lp_sim.Sim.options) : Lp_sim.Sim.options =
  { sim_opts with
    Lp_sim.Sim.gate_unused_cores = opts.power.gate_unused_cores;
    predecode =
      sim_opts.Lp_sim.Sim.predecode
      && not ctx.config.Runtime_config.no_sim_predecode;
    profile =
      sim_opts.Lp_sim.Sim.profile || ctx.config.Runtime_config.profile;
    deadline =
      (if ctx.deadline != Lp_util.Deadline.none then ctx.deadline
       else sim_opts.Lp_sim.Sim.deadline) }

(** Simulate an already-compiled program exactly as [run] would have:
    the compile server uses this to re-simulate warm-cache hits and get
    byte-identical outcomes. *)
let simulate_compiled ?(ctx = default_ctx)
    ?(sim_opts = Lp_sim.Sim.default_options) (compiled : compiled) :
    Lp_sim.Sim.outcome =
  let sim_opts = effective_sim_opts ~ctx ~opts:compiled.options sim_opts in
  let outcome =
    Lp_sim.Sim.run ~opts:sim_opts ~obs:ctx.obs ~machine:compiled.machine
      compiled.prog
  in
  record_outcome ctx.report outcome;
  outcome

let run ?(ctx = default_ctx) ?(opts = baseline)
    ?(sim_opts = Lp_sim.Sim.default_options) ~(machine : Machine.t)
    (source : string) : compiled * Lp_sim.Sim.outcome =
  let compiled = compile ~ctx ~opts ~machine source in
  (compiled, simulate_compiled ~ctx ~sim_opts compiled)

(* ------------------------------------------------------------------ *)
(* Structured diagnostics                                               *)
(* ------------------------------------------------------------------ *)

module Diag = Lp_util.Diag

(** Map every exception the pipeline can legitimately raise onto a
    structured diagnostic with a stable code; [None] for foreign
    exceptions (genuine crashes, which the fuzzer hunts for). *)
let diag_of_exn : exn -> Diag.t option = function
  | Diag.Error d -> Some d
  | Lp_lang.Lexer.Lex_error (msg, line) ->
    Some (Diag.make ~line Diag.Lex ~code:"E_LEX" msg)
  | Parser.Parse_error (msg, line) ->
    Some (Diag.make ~line Diag.Parse ~code:"E_PARSE" msg)
  | Typecheck.Type_error (msg, pos) ->
    Some (Diag.make ~line:pos.Ast.line Diag.Typecheck ~code:"E_TYPE" msg)
  | T.Parallelize.Par_error msg ->
    Some (Diag.make Diag.Parallelize ~code:"E_PAR" msg)
  | Lower.Lower_error msg -> Some (Diag.make Diag.Lower ~code:"E_LOWER" msg)
  | Verify.Invalid msg -> Some (Diag.make Diag.Verify ~code:"E_VERIFY" msg)
  | Lp_sched.Taskgraph.Invalid_graph msg ->
    Some (Diag.make Diag.Schedule ~code:"E_GRAPH" msg)
  | Compile_error msg -> Some (Diag.make Diag.Driver ~code:"E_COMPILE" msg)
  | e -> Lp_sim.Sim.diag_of_exn e

(** [compile], but failures come back as diagnostics.  Foreign
    exceptions still propagate: they are bugs, not diagnostics. *)
let compile_result ?(ctx = default_ctx) ?verify_each ?opts
    ~(machine : Machine.t) (source : string) : (compiled, Diag.t) result =
  match compile_exn ~ctx ?verify_each ?opts ~machine source with
  | c -> Ok c
  | exception e -> (
    match diag_of_exn e with Some d -> Error d | None -> raise e)

(** [run], but failures come back as diagnostics. *)
let run_result ?(ctx = default_ctx) ?verify_each ?(opts = baseline)
    ?(sim_opts = Lp_sim.Sim.default_options) ~(machine : Machine.t)
    (source : string) : (compiled * Lp_sim.Sim.outcome, Diag.t) result =
  match compile_result ~ctx ?verify_each ~opts ~machine source with
  | Error d -> Error d
  | Ok compiled -> (
    let sim_opts = effective_sim_opts ~ctx ~opts sim_opts in
    match
      Lp_sim.Sim.run_result ~opts:sim_opts ~obs:ctx.obs ~machine compiled.prog
    with
    | Ok outcome ->
      record_outcome ctx.report outcome;
      Ok (compiled, outcome)
    | Error d -> Error d)
