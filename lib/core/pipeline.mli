(** The optimisation schedule as data (see docs/DESIGN.md).

    {!default} reproduces the driver's historical hard-coded schedule
    exactly; {!execute} interprets a schedule through the ordinary pass
    manager, so telemetry, pass statistics and analysis-cache
    invalidation behave as if the schedule were still inline code. *)

module T = Lp_transforms

(** Conditions a step can be guarded on (driver option flags). *)
type flag = Mac_fusion

type step =
  | Run of T.Pass.func_pass  (** one pass, once *)
  | Fixpoint of T.Pass.func_pass list
      (** sweep the list until a full sweep changes nothing *)
  | If of flag * step list  (** sub-pipeline guarded by an option flag *)

type t = step list

(** Every schedulable pass, in display order. *)
val all_passes : T.Pass.func_pass list

(** Names of {!all_passes} (the vocabulary of {!parse}). *)
val pass_names : unit -> string list

val find_pass : string -> T.Pass.func_pass option

(** The cleanup sub-pipeline (simplify-cfg, constfold, constprop, dce)
    scheduled to fixpoint after every enabling transformation. *)
val cleanup : T.Pass.func_pass list

(** The driver's default classic-optimisation schedule. *)
val default : t

(** Run the pipeline through [pm] on [prog]; [mac_fusion] supplies the
    {!Mac_fusion} flag value. *)
val execute :
  T.Pass.manager -> mac_fusion:bool -> t -> Lp_ir.Prog.t -> unit

(** Multi-line rendering, one step per line ([lpcc pipeline]). *)
val to_string : t -> string

(** Parse the one-line [--passes] spec: comma-separated pass names and
    [fix(name,...)] fixpoint groups.  Conditional steps are not
    expressible in a spec. *)
val parse : string -> (t, string) result
