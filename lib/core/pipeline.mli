(** The optimisation schedule as data (see docs/DESIGN.md).

    {!default} reproduces the driver's historical hard-coded schedule
    exactly; {!execute} interprets a schedule through the ordinary pass
    manager, so telemetry, pass statistics and analysis-cache
    invalidation behave as if the schedule were still inline code. *)

module T = Lp_transforms

(** Conditions a step can be guarded on (driver option flags). *)
type flag = Mac_fusion

type step =
  | Run of T.Pass.func_pass  (** one pass, once *)
  | Fixpoint of T.Pass.func_pass list
      (** sweep the list until a full sweep changes nothing *)
  | If of flag * step list  (** sub-pipeline guarded by an option flag *)

type t = step list

(** Every schedulable pass, in display order. *)
val all_passes : T.Pass.func_pass list

(** Names of {!all_passes} (the vocabulary of {!parse}). *)
val pass_names : unit -> string list

val find_pass : string -> T.Pass.func_pass option

(** The cleanup sub-pipeline (simplify-cfg, constfold, constprop, dce)
    scheduled to fixpoint after every enabling transformation. *)
val cleanup : T.Pass.func_pass list

(** The driver's default classic-optimisation schedule. *)
val default : t

(** Run the pipeline through [pm] on [prog]; [mac_fusion] supplies the
    {!Mac_fusion} flag value. *)
val execute :
  T.Pass.manager -> mac_fusion:bool -> t -> Lp_ir.Prog.t -> unit

(** Multi-line rendering, one step per line ([lpcc pipeline]). *)
val to_string : t -> string

(** One-line spec rendering, the inverse of {!parse} for flat
    schedules.  Raises [Invalid_argument] on [If] steps, which have no
    spec syntax. *)
val to_spec : t -> string

(** Resolve every [If] step under the given flag values, leaving a flat
    [Run]/[Fixpoint] schedule that {!to_spec} can print. *)
val flatten : mac_fusion:bool -> t -> t

(** Stable diagnostic code for malformed specs and schedule files:
    ["E_PIPELINE_SPEC"]. *)
val code_spec : string

(** Parse the one-line [--passes] spec: comma-separated pass names and
    [fix(name,...)] fixpoint groups.  Conditional steps are not
    expressible in a spec.  Errors are [E_PIPELINE_SPEC] diagnostics
    reporting the character position where the scan stopped and the
    token expected there. *)
val parse : string -> (t, Lp_util.Diag.t) result

(** Write the schedule as a file: one [#] header line (name + optional
    comment) followed by the one-line spec. *)
val save_file : ?name:string -> ?comment:string -> string -> t -> unit

(** Load a schedule file written by {!save_file}; [#] and blank lines
    are skipped and exactly one spec line must remain.  All failures are
    [E_PIPELINE_SPEC] diagnostics. *)
val load_file : string -> (t, Lp_util.Diag.t) result

(** Resolve a [--passes] argument: [@FILE] loads a schedule file,
    anything else parses as an inline spec. *)
val resolve_spec : string -> (t, Lp_util.Diag.t) result
