(** Rendering of source-level energy profiles ({!Lp_sim.Profile}).

    Four surfaces, all deterministic functions of the profile (no
    timestamps, no environment), so a server-side profile is
    byte-identical to the one-shot CLI's:

    - a hierarchical text report (function → loop → line, sorted by nJ,
      with per-category columns and memory-boundedness counters);
    - a stable JSON artifact (schema [lowpower-profile/1]) consumable
      as profile-guided-optimisation input;
    - a collapsed-stack flamegraph export ([flamegraph.pl] /
      speedscope's "collapsed" importer);
    - a diff of two JSON artifacts. *)

module Profile = Lp_sim.Profile
module Sim = Lp_sim.Sim
module Ledger = Lp_power.Energy_ledger
module Prog = Lp_ir.Prog
module Ir = Lp_ir.Ir
module Loops = Lp_analysis.Loops
module Json = Lp_util.Json

let schema = "lowpower-profile/1"

let slot_total = Profile.slot_total

(* ---------------- JSON artifact ---------------- *)

let row_to_json (s : Profile.slot) : Json.t =
  Json.Obj
    [
      ("func", Json.Str s.Profile.sl_func);
      ("line", Json.Num (float_of_int s.Profile.sl_line));
      ("total_nj", Json.Num (slot_total s));
      ("nj", Json.List (Array.to_list (Array.map (fun x -> Json.Num x) s.Profile.sl_cat)));
      ("cycles", Json.Num (float_of_int s.Profile.sl_cycles));
      ("instrs", Json.Num (float_of_int s.Profile.sl_instrs));
      ("bus_txns", Json.Num (float_of_int s.Profile.sl_bus_txns));
      ("bus_words", Json.Num (float_of_int s.Profile.sl_bus_words));
      ("bus_wait_ns", Json.Num s.Profile.sl_bus_wait_ns);
    ]

(** The [lowpower-profile/1] artifact.  [total_nj] is the energy
    ledger's byte-exact machine total; [attributed_nj] is the sum over
    rows, which agrees with it to ~1e-9 relative (partitioned sums round
    differently from chronological accumulation — see
    docs/OBSERVABILITY.md). *)
let to_json ~source ~machine (o : Sim.outcome) : Json.t =
  let rows =
    match o.Sim.profile with
    | Some p -> p
    | None -> invalid_arg "Profile_report.to_json: outcome has no profile"
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("source", Json.Str source);
      ("machine", Json.Str machine);
      ("total_nj", Json.Num (Ledger.total o.Sim.energy));
      ("attributed_nj", Json.Num (Profile.total rows));
      ("duration_ns", Json.Num o.Sim.duration_ns);
      ( "categories",
        Json.List
          (Array.to_list
             (Array.map (fun n -> Json.Str n) Profile.category_names)) );
      ("rows", Json.List (Array.to_list (Array.map row_to_json rows)));
    ]

(* ---------------- hierarchical text report ---------------- *)

(** A loop of the final IR, for grouping: lines are attributed to the
    innermost loop one of whose blocks carries an instruction with that
    source line. *)
type loop_info = {
  li_header : int;
  li_depth : int;
  li_lines : (int, unit) Hashtbl.t;
  li_span : (int * int) option;  (** min/max source line, when any *)
}

let loops_of_func (f : Prog.func) : loop_info list =
  List.map
    (fun (l : Loops.loop) ->
      let lines = Hashtbl.create 16 in
      let span = ref None in
      Loops.LS.iter
        (fun bid ->
          let b = Prog.block f bid in
          List.iter
            (fun (i : Ir.instr) ->
              let line = i.Ir.loc.Ir.line in
              if line > 0 then begin
                Hashtbl.replace lines line ();
                span :=
                  Some
                    (match !span with
                    | None -> (line, line)
                    | Some (lo, hi) -> (min lo line, max hi line))
              end)
            b.Ir.instrs)
        l.Loops.blocks;
      {
        li_header = l.Loops.header;
        li_depth = l.Loops.depth;
        li_lines = lines;
        li_span = !span;
      })
    (Loops.find f)

(** Innermost loop claiming [line] (deepest wins; ties to the lower
    header id for determinism). *)
let innermost_loop (loops : loop_info list) line : loop_info option =
  List.fold_left
    (fun acc li ->
      if not (Hashtbl.mem li.li_lines line) then acc
      else
        match acc with
        | None -> Some li
        | Some best ->
          if
            li.li_depth > best.li_depth
            || (li.li_depth = best.li_depth && li.li_header < best.li_header)
          then Some li
          else acc)
    None loops

let loop_label (li : loop_info) =
  match li.li_span with
  | Some (lo, hi) when lo <> hi ->
    Printf.sprintf "loop@b%d [lines %d-%d]" li.li_header lo hi
  | Some (lo, _) -> Printf.sprintf "loop@b%d [line %d]" li.li_header lo
  | None -> Printf.sprintf "loop@b%d" li.li_header

let line_label (s : Profile.slot) =
  if s.Profile.sl_line = 0 then "(synthesised)"
  else Printf.sprintf "line %d" s.Profile.sl_line

(* sorted by energy, descending; ties by line for a stable order *)
let by_energy_desc a b =
  match compare (slot_total b) (slot_total a) with
  | 0 -> compare a.Profile.sl_line b.Profile.sl_line
  | c -> c

let pct ~total x = if total > 0.0 then 100.0 *. x /. total else 0.0

let row_columns (s : Profile.slot) =
  let c = s.Profile.sl_cat in
  Printf.sprintf
    "%10.1f %8.1f %8.1f %8.1f %7.1f %7.1f %8.1f %9d %8d %6d %9.1f"
    (slot_total s) c.(0) c.(1) c.(2) c.(3) c.(4) c.(5) s.Profile.sl_cycles
    s.Profile.sl_instrs s.Profile.sl_bus_txns s.Profile.sl_bus_wait_ns

let header_columns =
  Printf.sprintf "%-34s %10s %8s %8s %8s %7s %7s %8s %9s %8s %6s %9s" ""
    "nJ" "dyn" "leakA" "leakI" "gate" "dvfs" "comm" "cycles" "instrs"
    "bus" "wait-ns"

(** Hierarchical text report over the final IR [prog] (for loop
    structure) and a profiled outcome. *)
let to_text ~(prog : Prog.t) (o : Sim.outcome) : string =
  let rows =
    match o.Sim.profile with
    | Some p -> p
    | None -> invalid_arg "Profile_report.to_text: outcome has no profile"
  in
  let buf = Buffer.create 4096 in
  let total = Ledger.total o.Sim.energy in
  Buffer.add_string buf
    (Printf.sprintf
       "Energy profile: %.1f nJ total, %.1f ns simulated (%.4f%% attributed)\n"
       total o.Sim.duration_ns (pct ~total (Profile.total rows)));
  Buffer.add_string buf (header_columns ^ "\n");
  (* group rows by function, keeping first-appearance (row-sorted) order
     until sorting by energy *)
  let funcs = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun (s : Profile.slot) ->
      match Hashtbl.find_opt funcs s.Profile.sl_func with
      | Some l -> l := s :: !l
      | None ->
        Hashtbl.replace funcs s.Profile.sl_func (ref [ s ]);
        order := s.Profile.sl_func :: !order)
    rows;
  let fentries =
    List.map
      (fun fname ->
        let frows = List.rev !(Hashtbl.find funcs fname) in
        let ftotal = List.fold_left (fun a s -> a +. slot_total s) 0.0 frows in
        (fname, ftotal, frows))
      (List.rev !order)
  in
  let fentries =
    List.sort
      (fun (na, ta, _) (nb, tb, _) ->
        match compare tb ta with 0 -> compare na nb | c -> c)
      fentries
  in
  List.iter
    (fun (fname, ftotal, frows) ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %5.1f%% %s\n"
           fname (pct ~total ftotal)
           (Printf.sprintf "%10.1f" ftotal));
      let loops =
        match Prog.find_func prog fname with
        | Some f -> loops_of_func f
        | None -> []
      in
      (* partition the function's rows into loop groups and bare lines *)
      let groups = Hashtbl.create 8 in
      let group_order = ref [] in
      let bare = ref [] in
      List.iter
        (fun (s : Profile.slot) ->
          match
            if s.Profile.sl_line = 0 then None
            else innermost_loop loops s.Profile.sl_line
          with
          | None -> bare := s :: !bare
          | Some li -> (
            match Hashtbl.find_opt groups li.li_header with
            | Some (_, l) -> l := s :: !l
            | None ->
              Hashtbl.replace groups li.li_header (li, ref [ s ]);
              group_order := li.li_header :: !group_order))
        frows;
      let entries =
        List.map
          (fun h ->
            let (li, l) = Hashtbl.find groups h in
            let ls = List.sort by_energy_desc (List.rev !l) in
            let gtotal =
              List.fold_left (fun a s -> a +. slot_total s) 0.0 ls
            in
            `Loop (li, gtotal, ls))
          (List.rev !group_order)
        @ List.map (fun s -> `Line s) (List.rev !bare)
      in
      let etotal = function
        | `Loop (_, t, _) -> t
        | `Line s -> slot_total s
      in
      let entries =
        List.sort (fun a b -> compare (etotal b) (etotal a)) entries
      in
      List.iter
        (function
          | `Loop (li, gtotal, ls) ->
            Buffer.add_string buf
              (Printf.sprintf "  %-32s %s\n" (loop_label li)
                 (Printf.sprintf "%10.1f" gtotal));
            List.iter
              (fun s ->
                Buffer.add_string buf
                  (Printf.sprintf "    %-30s %s\n" (line_label s)
                     (row_columns s)))
              ls
          | `Line s ->
            Buffer.add_string buf
              (Printf.sprintf "  %-32s %s\n" (line_label s) (row_columns s)))
        entries)
    fentries;
  Buffer.contents buf

(* ---------------- flamegraph export ---------------- *)

(** Collapsed-stack export: one [frames value] line per row, value in
    integer picojoules (flamegraph tooling sums integer sample counts).
    Feed to [flamegraph.pl] or paste into speedscope. *)
let to_flamegraph (o : Sim.outcome) : string =
  let rows =
    match o.Sim.profile with
    | Some p -> p
    | None -> invalid_arg "Profile_report.to_flamegraph: outcome has no profile"
  in
  let buf = Buffer.create 1024 in
  Array.iter
    (fun (s : Profile.slot) ->
      let pj = Float.round (slot_total s *. 1000.0) in
      if pj >= 1.0 then
        Buffer.add_string buf
          (Printf.sprintf "%s;%s %.0f\n" s.Profile.sl_func (line_label s) pj))
    rows;
  Buffer.contents buf

(* ---------------- diff ---------------- *)

let rows_of_artifact (j : Json.t) : ((string * int) * float) list option =
  match Json.member "rows" j with
  | Some (Json.List l) ->
    let parse r =
      match
        ( Option.bind (Json.member "func" r) Json.to_string_opt,
          Option.bind (Json.member "line" r) Json.to_float_opt,
          Option.bind (Json.member "total_nj" r) Json.to_float_opt )
      with
      | (Some f, Some line, Some nj) -> Some ((f, int_of_float line), nj)
      | _ -> None
    in
    let parsed = List.map parse l in
    if List.exists (( = ) None) parsed then None
    else Some (List.filter_map Fun.id parsed)
  | _ -> None

(** Render the per-line energy delta between two [lowpower-profile/1]
    artifacts (B minus A), sorted by absolute delta. *)
let diff ~label_a ~label_b (a : Json.t) (b : Json.t) :
    (string, string) result =
  let check j label =
    match Json.member "schema" j with
    | Some (Json.Str s) when s = schema -> Ok ()
    | _ -> Error (Printf.sprintf "%s: not a %s artifact" label schema)
  in
  match (check a label_a, check b label_b) with
  | (Error e, _) | (_, Error e) -> Error e
  | (Ok (), Ok ()) -> (
    match (rows_of_artifact a, rows_of_artifact b) with
    | (None, _) | (_, None) -> Error "malformed profile rows"
    | (Some ra, Some rb) ->
      let keys = Hashtbl.create 64 in
      List.iter (fun (k, _) -> Hashtbl.replace keys k ()) ra;
      List.iter (fun (k, _) -> Hashtbl.replace keys k ()) rb;
      let find rs k =
        match List.assoc_opt k rs with Some v -> v | None -> 0.0
      in
      let deltas =
        Hashtbl.fold
          (fun k () acc ->
            let va = find ra k and vb = find rb k in
            if vb <> va then (k, va, vb) :: acc else acc)
          keys []
      in
      let deltas =
        List.sort
          (fun ((fa, la), va, ba) ((fb, lb), vb, bb) ->
            match compare (Float.abs (bb -. vb)) (Float.abs (ba -. va)) with
            | 0 -> compare (fa, la) (fb, lb)
            | c -> c)
          deltas
      in
      let tot rs = List.fold_left (fun a (_, v) -> a +. v) 0.0 rs in
      let (ta, tb) = (tot ra, tot rb) in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "profile diff: %s -> %s\n" label_a label_b);
      Buffer.add_string buf
        (Printf.sprintf "  total: %.1f nJ -> %.1f nJ (%+.1f nJ, %+.2f%%)\n"
           ta tb (tb -. ta)
           (if ta > 0.0 then 100.0 *. (tb -. ta) /. ta else 0.0));
      if deltas = [] then Buffer.add_string buf "  no per-line changes\n"
      else
        List.iter
          (fun ((f, line), va, vb) ->
            Buffer.add_string buf
              (Printf.sprintf "  %-28s %10.1f -> %10.1f  (%+.1f nJ)\n"
                 (if line = 0 then f else Printf.sprintf "%s:%d" f line)
                 va vb (vb -. va)))
          deltas;
      Ok (Buffer.contents buf))
