(** The compiler driver — the library's main public entry point.

    Pipeline: MiniC source → pattern detection (annotation verification +
    inference) → pattern-driven parallelisation → IR lowering → classic
    optimisation (constant promotion, folding, DCE, CFG simplification,
    MAC fusion, strength reduction, LICM) → pattern-aware power
    management (pipeline balancing, DVFS insertion, power gating with
    Sink-N-Hoist) → verified program, optionally simulated. *)

module Ast = Lp_lang.Ast
module Pattern = Lp_patterns.Pattern
module Prog = Lp_ir.Prog
module Machine = Lp_machine.Machine
module T = Lp_transforms

type power_options = {
  gating : bool;          (** component power gating *)
  sink_n_hoist : bool;    (** merge gating instructions *)
  dvfs : bool;            (** per-loop DVFS insertion *)
  balance : bool;         (** pipeline stage balancing *)
  gate_unused_cores : bool;  (** gate cores the program does not occupy *)
  gating_opts : T.Gating.options;
  dvfs_opts : T.Dvfs.options;
}

type options = {
  n_cores : int;       (** cores the compiler may occupy *)
  parallelize : bool;
  distribution : T.Parallelize.distribution;
      (** how doall/reduction iteration spaces split across cores *)
  sync : T.Parallelize.sync;
      (** non-reduction doall completion: per-worker acknowledge or barrier *)
  mac_fusion : bool;
  power : power_options;
  pipeline : Pipeline.t option;
      (** classic-optimisation schedule; [None] = {!Pipeline.default}
          (overridden by [lpcc run --passes]) *)
}

val no_power : power_options
val all_power : power_options

(** Smart constructors over {!options}: build ([make]) or derive
    ([update]) a configuration by naming only the fields that differ,
    with the power flags flattened alongside the driver flags so callers
    never hand-roll nested [{ opts with power = { ... } }] updates.
    [make]'s defaults are exactly {!baseline}; [update] keeps the base's
    value for every omitted argument.  The presets below are defined
    through [make]. *)
module Options : sig
  val make :
    ?n_cores:int ->
    ?parallelize:bool ->
    ?distribution:T.Parallelize.distribution ->
    ?sync:T.Parallelize.sync ->
    ?mac_fusion:bool ->
    ?gating:bool ->
    ?sink_n_hoist:bool ->
    ?dvfs:bool ->
    ?balance:bool ->
    ?gate_unused_cores:bool ->
    ?gating_opts:T.Gating.options ->
    ?dvfs_opts:T.Dvfs.options ->
    ?pipeline:Pipeline.t ->
    unit ->
    options

  val update :
    ?n_cores:int ->
    ?parallelize:bool ->
    ?distribution:T.Parallelize.distribution ->
    ?sync:T.Parallelize.sync ->
    ?mac_fusion:bool ->
    ?gating:bool ->
    ?sink_n_hoist:bool ->
    ?dvfs:bool ->
    ?balance:bool ->
    ?gate_unused_cores:bool ->
    ?gating_opts:T.Gating.options ->
    ?dvfs_opts:T.Dvfs.options ->
    ?pipeline:Pipeline.t ->
    options ->
    options
end

(** The configurations compared by the evaluation. *)

(** Plain optimising compile, single core, no power management. *)
val baseline : options

(** Adds component power gating (with Sink-N-Hoist). *)
val pg_only : options

(** Adds compiler-directed DVFS. *)
val dvfs_only : options

(** Both power transformations, still sequential. *)
val pg_dvfs : options

(** The paper's proposal: pattern-driven multicore parallelisation plus
    all power transformations. *)
val full : n_cores:int -> options

(** Parallelisation without power management (isolates the two effects). *)
val par_only : n_cores:int -> options

type compiled = {
  source_ast : Ast.program;          (** the original, type-checked AST *)
  prog : Prog.t;                     (** final verified IR *)
  par_info : T.Par_info.t;
  detection : Pattern.report;
  pass_stats : T.Pass.stats list;
  gating_before_merge : T.Gating.counts;
  gating_after_merge : T.Gating.counts;
  machine : Machine.t;
  options : options;
}

exception Compile_error of string

(** {2 The driver context}

    One explicit record carries everything the pipeline used to pick up
    ambiently: the telemetry recorder, the power-decision audit report,
    and the resolved runtime configuration.  Every entry point takes
    [?ctx]; omitting it gives the old behaviour exactly (disabled
    recorder, disabled report, default config), so existing callers
    compile and behave unchanged. *)

type ctx = {
  obs : Lp_obs.Obs.t;                 (** span/counter recorder *)
  report : Lp_obs.Report.t;
      (** power-decision audit report: pattern verdicts, gating and DVFS
          decisions, per-pass IR deltas, per-simulation energy ledgers
          (schema in docs/OBSERVABILITY.md) *)
  config : Lp_util.Runtime_config.t;  (** resolved jobs/retries/faults/trace *)
  deadline : Lp_util.Deadline.t;
      (** cooperative per-request deadline/cancellation token, checked at
          phase boundaries, before every per-function pass run, and once
          per simulator scheduling decision; expiry surfaces as the
          stable [E_DEADLINE] diagnostic.  {!Lp_util.Deadline.none}
          (the default) costs one pointer compare per check *)
}

(** Disabled recorder, disabled report, default configuration — zero
    overhead. *)
val default_ctx : ctx

val make_ctx :
  ?obs:Lp_obs.Obs.t ->
  ?report:Lp_obs.Report.t ->
  ?config:Lp_util.Runtime_config.t ->
  ?deadline:Lp_util.Deadline.t ->
  unit ->
  ctx

(** Append [outcome]'s energy-ledger breakdown and headline counters to
    the report under the current {!Lp_obs.Report.with_scope} scope, and
    record a warning when the simulator observed implicit wakeups.
    No-op on the disabled report.  [run]/[run_result] call this
    themselves; it is exposed for callers that drive
    {!Lp_sim.Sim.run} directly. *)
val record_outcome : Lp_obs.Report.t -> Lp_sim.Sim.outcome -> unit

(** Parse and type-check only; raises [Compile_error]. *)
val parse_and_check : string -> Ast.program

(** [parse_and_check] raising the raw front-end exceptions
    ([Lex_error], [Parse_error], [Type_error]) instead of wrapping them
    in [Compile_error]; {!diag_of_exn} maps these onto their specific
    diagnostic codes. *)
val parse_and_check_exn : string -> Ast.program

(** Pattern instances the machine can host. *)
val feasible_instances :
  n_cores:int -> Pattern.instance list -> Pattern.instance list

(** Compile [source] for [machine]; raises [Compile_error] (which also
    wraps internal self-check failures: generated code that fails to
    re-type-check or IR that fails verification).  When [ctx] carries an
    enabled recorder the whole pipeline runs inside a [compile] span
    with per-phase, per-fixpoint-round, per-pass and per-function child
    spans. *)
val compile :
  ?ctx:ctx -> ?opts:options -> machine:Machine.t -> string -> compiled

(** Compile and simulate.  The simulator is told to model compiler-gated
    unused cores when the options enable it, and inherits [ctx]'s
    recorder (per-core simulated-time spans, cycle and bus counters). *)
val run :
  ?ctx:ctx ->
  ?opts:options ->
  ?sim_opts:Lp_sim.Sim.options ->
  machine:Machine.t ->
  string ->
  compiled * Lp_sim.Sim.outcome

(** Simulate an already-[compile]d program exactly as {!run} would have
    (same unused-core gating, predecode and deadline resolution).  The
    compile server re-simulates warm-cache hits through this, which is
    what makes a cached reply byte-identical to a cold one.  Raises like
    [Lp_sim.Sim.run]; wrap with {!diag_of_exn} for diagnostics. *)
val simulate_compiled :
  ?ctx:ctx ->
  ?sim_opts:Lp_sim.Sim.options ->
  compiled ->
  Lp_sim.Sim.outcome

(** {2 Structured diagnostics}

    The [*_result] entry points never raise for pipeline failures: every
    exception the pipeline owns (lex/parse/type errors, [Par_error],
    [Lower_error], [Verify.Invalid], [Invalid_graph], [Compile_error],
    simulator deadlock/step-limit/runtime errors, injected faults) comes
    back as an [Error] carrying a {!Lp_util.Diag.t} with a stable code.
    A foreign exception still propagates — it is a bug, and the fuzzer
    treats it as a finding. *)

(** Map a pipeline exception onto its diagnostic; [None] for foreign
    exceptions.  Codes are listed in docs/ROBUSTNESS.md. *)
val diag_of_exn : exn -> Lp_util.Diag.t option

(** [compile] with diagnostics instead of exceptions.  [verify_each]
    additionally re-runs the IR verifier after every optimisation pass
    (used by the pipeline fuzzer). *)
val compile_result :
  ?ctx:ctx ->
  ?verify_each:bool ->
  ?opts:options ->
  machine:Machine.t ->
  string ->
  (compiled, Lp_util.Diag.t) result

(** [run] with diagnostics instead of exceptions. *)
val run_result :
  ?ctx:ctx ->
  ?verify_each:bool ->
  ?opts:options ->
  ?sim_opts:Lp_sim.Sim.options ->
  machine:Machine.t ->
  string ->
  (compiled * Lp_sim.Sim.outcome, Lp_util.Diag.t) result
