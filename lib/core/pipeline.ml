(** The optimisation schedule as data.

    The driver used to hard-code its pass schedule as straight-line code
    inside the [optimize] phase; this module lifts it into a value that
    can be printed ([lpcc pipeline]), overridden from the command line
    ([lpcc run --passes]), and tested for round-tripping.  The
    interpreter ({!execute}) drives the ordinary pass manager, so
    telemetry spans, pass statistics and analysis-cache invalidation are
    identical to what the inline code produced. *)

module T = Lp_transforms

(** Conditions a step can be guarded on (driver option flags). *)
type flag = Mac_fusion

type step =
  | Run of T.Pass.func_pass  (** one pass, once *)
  | Fixpoint of T.Pass.func_pass list
      (** sweep the list until a full sweep changes nothing *)
  | If of flag * step list  (** sub-pipeline guarded by an option flag *)

type t = step list

(* ------------------------------------------------------------------ *)
(* Pass registry                                                       *)
(* ------------------------------------------------------------------ *)

(** Every schedulable pass, in display order. *)
let all_passes : T.Pass.func_pass list =
  [
    T.Const_promote.pass;
    T.Simplify_cfg.pass;
    T.Constfold.pass;
    T.Constprop.pass;
    T.Dce.pass;
    T.Unroll.pass;
    T.Mac_fusion.pass;
    T.Strength.pass;
    T.Licm.pass;
  ]

let pass_names () = List.map (fun p -> p.T.Pass.name) all_passes

let find_pass name =
  List.find_opt (fun p -> p.T.Pass.name = name) all_passes

let flag_name = function Mac_fusion -> "mac-fusion"

(* ------------------------------------------------------------------ *)
(* The default schedule                                                *)
(* ------------------------------------------------------------------ *)

(** The cleanup sub-pipeline: canonicalise the CFG, then let constants
    flow and dead code fall out.  Scheduled to fixpoint after every
    enabling transformation. *)
let cleanup : T.Pass.func_pass list =
  [ T.Simplify_cfg.pass; T.Constfold.pass; T.Constprop.pass; T.Dce.pass ]

(** The driver's classic-optimisation schedule (exactly the historical
    hard-coded one). *)
let default : t =
  [
    Run T.Const_promote.pass;
    Fixpoint cleanup;
    Run T.Unroll.pass;
    Fixpoint cleanup;
    If (Mac_fusion, [ Run T.Mac_fusion.pass; Fixpoint [ T.Constfold.pass; T.Dce.pass ] ]);
    Run T.Strength.pass;
    Fixpoint [ T.Licm.pass; T.Constfold.pass; T.Dce.pass; T.Simplify_cfg.pass ];
  ]

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

(** Run the pipeline through [pm] on [prog].  [mac_fusion] supplies the
    value of the {!Mac_fusion} flag. *)
let execute (pm : T.Pass.manager) ~(mac_fusion : bool) (t : t)
    (prog : Lp_ir.Prog.t) : unit =
  let flag_on = function Mac_fusion -> mac_fusion in
  let rec step = function
    | Run p -> ignore (T.Pass.run_pass pm p prog)
    | Fixpoint ps -> T.Pass.run_to_fixpoint pm ps prog
    | If (fl, steps) -> if flag_on fl then List.iter step steps
  in
  List.iter step t

(* ------------------------------------------------------------------ *)
(* Printing and parsing                                                *)
(* ------------------------------------------------------------------ *)

(** Multi-line rendering, one step per line; [If] bodies are indented
    under an [if <flag> {] / [}] bracket.  This is what [lpcc pipeline]
    prints (and what the CI golden file pins). *)
let to_string (t : t) : string =
  let buf = Buffer.create 256 in
  let rec step indent s =
    let pad = String.make indent ' ' in
    match s with
    | Run p -> Buffer.add_string buf (pad ^ "run " ^ p.T.Pass.name ^ "\n")
    | Fixpoint ps ->
      Buffer.add_string buf
        (pad ^ "fixpoint "
        ^ String.concat " " (List.map (fun p -> p.T.Pass.name) ps)
        ^ "\n")
    | If (fl, steps) ->
      Buffer.add_string buf (pad ^ "if " ^ flag_name fl ^ " {\n");
      List.iter (step (indent + 2)) steps;
      Buffer.add_string buf (pad ^ "}\n")
  in
  List.iter (step 0) t;
  Buffer.contents buf

(** One-line spec syntax (the inverse of {!parse} for flat schedules).
    Raises [Invalid_argument] on [If] steps — a spec replaces the whole
    schedule, so conditional steps are never part of one. *)
let to_spec (t : t) : string =
  let step = function
    | Run p -> p.T.Pass.name
    | Fixpoint ps ->
      "fix(" ^ String.concat "," (List.map (fun p -> p.T.Pass.name) ps) ^ ")"
    | If _ ->
      invalid_arg "Pipeline.to_spec: conditional steps have no spec syntax"
  in
  String.concat "," (List.map step t)

(** Resolve every [If] step under the given flag values, leaving a flat
    [Run]/[Fixpoint] schedule (the shape {!to_spec} can print and the
    tuner mutates). *)
let flatten ~(mac_fusion : bool) (t : t) : t =
  let flag_on = function Mac_fusion -> mac_fusion in
  let rec go = function
    | (Run _ | Fixpoint _) as s -> [ s ]
    | If (fl, body) -> if flag_on fl then List.concat_map go body else []
  in
  List.concat_map go t

let code_spec = "E_PIPELINE_SPEC"

exception Bad_spec of Lp_util.Diag.t

(** One-line spec syntax for [--passes]: comma-separated steps, each a
    pass name or [fix(name,...)]; e.g.
    ["const-promote,fix(simplify-cfg,constfold,constprop,dce),unroll"].
    Conditional steps are not expressible — a spec replaces the whole
    schedule, so the caller decides what is in it.

    Errors come back as an {!Lp_util.Diag.t} with the stable
    [E_PIPELINE_SPEC] code; the message reports the character position
    where the scan stopped and the token the parser expected there. *)
let parse (spec : string) : (t, Lp_util.Diag.t) result =
  let n = String.length spec in
  let fail pos expected msg =
    raise
      (Bad_spec
         (Lp_util.Diag.make Lp_util.Diag.Driver ~code:code_spec
            (Printf.sprintf
               "invalid pipeline spec at character %d: %s (expected %s)" pos
               msg expected)))
  in
  let describe i =
    if i >= n then "end of spec" else Printf.sprintf "%C" spec.[i]
  in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '-' || c = '_'
  in
  let skip_ws i =
    let j = ref i in
    while !j < n && (spec.[!j] = ' ' || spec.[!j] = '\t') do
      incr j
    done;
    !j
  in
  let scan_name i expected =
    let j = ref i in
    while !j < n && is_name_char spec.[!j] do
      incr j
    done;
    if !j = i then fail i expected ("found " ^ describe i)
    else (String.sub spec i (!j - i), !j)
  in
  let pass_at pos name =
    match find_pass name with
    | Some p -> p
    | None ->
      fail pos "a pass name"
        (Printf.sprintf "unknown pass %S (known: %s)" name
           (String.concat ", " (pass_names ())))
  in
  (* [i] points just past the '(' of a [fix(] group *)
  let rec fix_body i acc =
    let i = skip_ws i in
    let (name, j) = scan_name i "a pass name" in
    let p = pass_at i name in
    let j = skip_ws j in
    if j < n && spec.[j] = ',' then fix_body (j + 1) (p :: acc)
    else if j < n && spec.[j] = ')' then (Fixpoint (List.rev (p :: acc)), j + 1)
    else fail j "',' or ')'" ("found " ^ describe j)
  in
  let step i =
    let i = skip_ws i in
    let (name, j) = scan_name i "a pass name or 'fix(...)'" in
    let j' = skip_ws j in
    if j' < n && spec.[j'] = '(' then
      if name <> "fix" then
        fail i "'fix' before '('" (Printf.sprintf "found group named %S" name)
      else begin
        let j'' = skip_ws (j' + 1) in
        if j'' < n && spec.[j''] = ')' then
          fail j'' "a pass name" "empty fix() group"
        else fix_body (j' + 1) []
      end
    else (Run (pass_at i name), j)
  in
  let rec steps i acc =
    let (s, j) = step i in
    let j = skip_ws j in
    if j >= n then List.rev (s :: acc)
    else if spec.[j] = ',' then steps (j + 1) (s :: acc)
    else fail j "',' or end of spec" ("found " ^ describe j)
  in
  try
    let i = skip_ws 0 in
    if i >= n then
      fail 0 "a pass name or 'fix(...)'" "empty pipeline spec"
    else Ok (steps i [])
  with Bad_spec d -> Error d

(* ------------------------------------------------------------------ *)
(* Schedule files                                                      *)
(* ------------------------------------------------------------------ *)

(** Write [t] as a schedule file: a one-line [#] header carrying the
    schedule's name (and optional comment), then the one-line spec.
    Replayable with [lpcc run --passes @FILE]. *)
let save_file ?(name = "schedule") ?comment (path : string) (t : t) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# schedule %s%s\n%s\n" name
        (match comment with None | Some "" -> "" | Some c -> ": " ^ c)
        (to_spec t))

(** Load a schedule file written by {!save_file}: [#] comment lines and
    blank lines are skipped; exactly one spec line must remain.  All
    failures (unreadable file, no/too many spec lines, bad spec) are
    [E_PIPELINE_SPEC] diagnostics. *)
let load_file (path : string) : (t, Lp_util.Diag.t) result =
  let file_err fmt =
    Printf.ksprintf
      (fun m ->
        Error (Lp_util.Diag.make Lp_util.Diag.Driver ~code:code_spec m))
      fmt
  in
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> file_err "cannot read schedule file: %s" msg
  | contents -> (
    let spec_lines =
      String.split_on_char '\n' contents
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    match spec_lines with
    | [] -> file_err "schedule file %s has no spec line" path
    | [ spec ] ->
      Result.map_error
        (fun d ->
          {
            d with
            Lp_util.Diag.message =
              Printf.sprintf "in %s: %s" path d.Lp_util.Diag.message;
          })
        (parse spec)
    | _ -> file_err "schedule file %s has more than one spec line" path)

(** Resolve a [--passes] argument: [@FILE] loads a schedule file,
    anything else parses as an inline spec. *)
let resolve_spec (arg : string) : (t, Lp_util.Diag.t) result =
  if String.length arg > 0 && arg.[0] = '@' then
    load_file (String.sub arg 1 (String.length arg - 1))
  else parse arg
