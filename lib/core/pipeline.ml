(** The optimisation schedule as data.

    The driver used to hard-code its pass schedule as straight-line code
    inside the [optimize] phase; this module lifts it into a value that
    can be printed ([lpcc pipeline]), overridden from the command line
    ([lpcc run --passes]), and tested for round-tripping.  The
    interpreter ({!execute}) drives the ordinary pass manager, so
    telemetry spans, pass statistics and analysis-cache invalidation are
    identical to what the inline code produced. *)

module T = Lp_transforms

(** Conditions a step can be guarded on (driver option flags). *)
type flag = Mac_fusion

type step =
  | Run of T.Pass.func_pass  (** one pass, once *)
  | Fixpoint of T.Pass.func_pass list
      (** sweep the list until a full sweep changes nothing *)
  | If of flag * step list  (** sub-pipeline guarded by an option flag *)

type t = step list

(* ------------------------------------------------------------------ *)
(* Pass registry                                                       *)
(* ------------------------------------------------------------------ *)

(** Every schedulable pass, in display order. *)
let all_passes : T.Pass.func_pass list =
  [
    T.Const_promote.pass;
    T.Simplify_cfg.pass;
    T.Constfold.pass;
    T.Constprop.pass;
    T.Dce.pass;
    T.Unroll.pass;
    T.Mac_fusion.pass;
    T.Strength.pass;
    T.Licm.pass;
  ]

let pass_names () = List.map (fun p -> p.T.Pass.name) all_passes

let find_pass name =
  List.find_opt (fun p -> p.T.Pass.name = name) all_passes

let flag_name = function Mac_fusion -> "mac-fusion"

(* ------------------------------------------------------------------ *)
(* The default schedule                                                *)
(* ------------------------------------------------------------------ *)

(** The cleanup sub-pipeline: canonicalise the CFG, then let constants
    flow and dead code fall out.  Scheduled to fixpoint after every
    enabling transformation. *)
let cleanup : T.Pass.func_pass list =
  [ T.Simplify_cfg.pass; T.Constfold.pass; T.Constprop.pass; T.Dce.pass ]

(** The driver's classic-optimisation schedule (exactly the historical
    hard-coded one). *)
let default : t =
  [
    Run T.Const_promote.pass;
    Fixpoint cleanup;
    Run T.Unroll.pass;
    Fixpoint cleanup;
    If (Mac_fusion, [ Run T.Mac_fusion.pass; Fixpoint [ T.Constfold.pass; T.Dce.pass ] ]);
    Run T.Strength.pass;
    Fixpoint [ T.Licm.pass; T.Constfold.pass; T.Dce.pass; T.Simplify_cfg.pass ];
  ]

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

(** Run the pipeline through [pm] on [prog].  [mac_fusion] supplies the
    value of the {!Mac_fusion} flag. *)
let execute (pm : T.Pass.manager) ~(mac_fusion : bool) (t : t)
    (prog : Lp_ir.Prog.t) : unit =
  let flag_on = function Mac_fusion -> mac_fusion in
  let rec step = function
    | Run p -> ignore (T.Pass.run_pass pm p prog)
    | Fixpoint ps -> T.Pass.run_to_fixpoint pm ps prog
    | If (fl, steps) -> if flag_on fl then List.iter step steps
  in
  List.iter step t

(* ------------------------------------------------------------------ *)
(* Printing and parsing                                                *)
(* ------------------------------------------------------------------ *)

(** Multi-line rendering, one step per line; [If] bodies are indented
    under an [if <flag> {] / [}] bracket.  This is what [lpcc pipeline]
    prints (and what the CI golden file pins). *)
let to_string (t : t) : string =
  let buf = Buffer.create 256 in
  let rec step indent s =
    let pad = String.make indent ' ' in
    match s with
    | Run p -> Buffer.add_string buf (pad ^ "run " ^ p.T.Pass.name ^ "\n")
    | Fixpoint ps ->
      Buffer.add_string buf
        (pad ^ "fixpoint "
        ^ String.concat " " (List.map (fun p -> p.T.Pass.name) ps)
        ^ "\n")
    | If (fl, steps) ->
      Buffer.add_string buf (pad ^ "if " ^ flag_name fl ^ " {\n");
      List.iter (step (indent + 2)) steps;
      Buffer.add_string buf (pad ^ "}\n")
  in
  List.iter (step 0) t;
  Buffer.contents buf

(** One-line spec syntax for [--passes]: comma-separated steps, each a
    pass name or [fix(name,...)]; e.g.
    ["const-promote,fix(simplify-cfg,constfold,constprop,dce),unroll"].
    Conditional steps are not expressible — a spec replaces the whole
    schedule, so the caller decides what is in it. *)
let parse (spec : string) : (t, string) result =
  let unknown n =
    Error
      (Printf.sprintf "unknown pass %S (known: %s)" n
         (String.concat ", " (pass_names ())))
  in
  (* split on commas not inside parentheses *)
  let split_steps s =
    let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
    String.iter
      (fun c ->
        match c with
        | '(' ->
          incr depth;
          Buffer.add_char buf c
        | ')' ->
          decr depth;
          Buffer.add_char buf c
        | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
        | _ -> Buffer.add_char buf c)
      s;
    parts := Buffer.contents buf :: !parts;
    List.rev_map String.trim !parts |> List.filter (fun s -> s <> "")
  in
  let parse_step tok =
    let fix_prefix = "fix(" in
    if
      String.length tok > String.length fix_prefix + 1
      && String.sub tok 0 (String.length fix_prefix) = fix_prefix
      && tok.[String.length tok - 1] = ')'
    then begin
      let inner =
        String.sub tok (String.length fix_prefix)
          (String.length tok - String.length fix_prefix - 1)
      in
      let names =
        String.split_on_char ',' inner
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      if names = [] then Error "empty fix(...)"
      else
        List.fold_left
          (fun acc n ->
            match (acc, find_pass n) with
            | (Error _, _) -> acc
            | (_, None) -> unknown n
            | (Ok ps, Some p) -> Ok (p :: ps))
          (Ok []) names
        |> Result.map (fun ps -> Fixpoint (List.rev ps))
    end
    else
      match find_pass tok with Some p -> Ok (Run p) | None -> unknown tok
  in
  match split_steps spec with
  | [] -> Error "empty pipeline spec"
  | toks ->
    List.fold_left
      (fun acc tok ->
        match (acc, parse_step tok) with
        | (Error _, _) -> acc
        | (_, (Error _ as e)) -> e
        | (Ok steps, Ok s) -> Ok (s :: steps))
      (Ok []) toks
    |> Result.map List.rev
