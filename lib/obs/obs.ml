(** See the interface for the contract.  One mutex guards all mutable
    state: spans arrive from every domain the evaluation matrix fans out
    over, and counters must aggregate deterministically (sums commute).
    The disabled recorder never touches the mutex or the clock. *)

type arg = Str of string | Int of int | Float of float

type span = {
  sp_name : string;
  sp_cat : string;
  sp_pid : int;
  sp_tid : int;
  sp_start_ns : float;
  sp_dur_ns : float;
  sp_depth : int;
  sp_args : (string * arg) list;
}

type t = {
  on : bool;
  clock : Clock.t;
  mutex : Mutex.t;
  mutable rev_spans : span list;  (** newest first *)
  mutable n_spans : int;
  ctrs : (string, int) Hashtbl.t;
  gaug : (string, float) Hashtbl.t;
  depths : (int, int) Hashtbl.t;  (** wall tid -> currently open spans *)
}

let wall_pid = 1
let sim_pid = 2

let make ~on ~clock =
  {
    on;
    clock;
    mutex = Mutex.create ();
    rev_spans = [];
    n_spans = 0;
    ctrs = Hashtbl.create 16;
    gaug = Hashtbl.create 8;
    depths = Hashtbl.create 8;
  }

let disabled = make ~on:false ~clock:(fun () -> 0.0)
let create ?(clock = Clock.monotonic) () = make ~on:true ~clock
let enabled t = t.on

let now_ns t = if t.on then t.clock () else Clock.monotonic ()

let self_tid () = (Domain.self () :> int)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let depth_of t tid = Option.value ~default:0 (Hashtbl.find_opt t.depths tid)

let push t sp =
  t.rev_spans <- sp :: t.rev_spans;
  t.n_spans <- t.n_spans + 1

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let span t ?(cat = "") ?(args = []) name f =
  if not t.on then f ()
  else begin
    let tid = self_tid () in
    let depth =
      locked t (fun () ->
          let d = depth_of t tid in
          Hashtbl.replace t.depths tid (d + 1);
          d)
    in
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        let dur = t.clock () -. t0 in
        locked t (fun () ->
            Hashtbl.replace t.depths tid (depth_of t tid - 1);
            push t
              {
                sp_name = name;
                sp_cat = cat;
                sp_pid = wall_pid;
                sp_tid = tid;
                sp_start_ns = t0;
                sp_dur_ns = dur;
                sp_depth = depth;
                sp_args = args;
              }))
      f
  end

let emit_span t ?(cat = "") ?(args = []) ?(pid = 1) ?tid ~start_ns ~dur_ns name =
  if t.on then begin
    let tid = match tid with Some i -> i | None -> self_tid () in
    locked t (fun () ->
        let depth = if pid = wall_pid then depth_of t tid else 0 in
        push t
          {
            sp_name = name;
            sp_cat = cat;
            sp_pid = pid;
            sp_tid = tid;
            sp_start_ns = start_ns;
            sp_dur_ns = dur_ns;
            sp_depth = depth;
            sp_args = args;
          })
  end

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let add t name n =
  if t.on && n <> 0 then
    locked t (fun () ->
        let v = Option.value ~default:0 (Hashtbl.find_opt t.ctrs name) in
        Hashtbl.replace t.ctrs name (v + n))

let set_gauge t name v =
  if t.on then locked t (fun () -> Hashtbl.replace t.gaug name v)

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let spans t = locked t (fun () -> List.rev t.rev_spans)
let span_count t = locked t (fun () -> t.n_spans)

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters t = locked t (fun () -> sorted_bindings t.ctrs)
let gauges t = locked t (fun () -> sorted_bindings t.gaug)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f

let args_json = function
  | [] -> ""
  | args ->
    let fields =
      List.map
        (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (arg_json v))
        args
    in
    Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)

let us ns = ns /. 1e3

let span_json sp =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
     \"pid\":%d,\"tid\":%d%s}"
    (json_escape sp.sp_name)
    (json_escape (if sp.sp_cat = "" then "misc" else sp.sp_cat))
    (us sp.sp_start_ns) (us sp.sp_dur_ns) sp.sp_pid sp.sp_tid
    (args_json sp.sp_args)

let chrome_string t =
  let (sps, ctrs, gaug) =
    locked t (fun () ->
        (List.rev t.rev_spans, sorted_bindings t.ctrs, sorted_bindings t.gaug))
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf line
  in
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
        \"args\":{\"name\":\"wall clock\"}}"
       wall_pid);
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
        \"args\":{\"name\":\"simulated time\"}}"
       sim_pid);
  List.iter (fun sp -> emit (span_json sp)) sps;
  (* counters and gauges: one sample each, at the end of the trace *)
  let t_end =
    List.fold_left
      (fun acc sp ->
        if sp.sp_pid = wall_pid then Float.max acc (sp.sp_start_ns +. sp.sp_dur_ns)
        else acc)
      0.0 sps
  in
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,\
            \"args\":{\"value\":%d}}"
           (json_escape name) (us t_end) wall_pid v))
    ctrs;
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,\
            \"args\":{\"value\":%g}}"
           (json_escape name) (us t_end) wall_pid v))
    gaug;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (chrome_string t))

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let summary t =
  let (sps, ctrs, gaug) =
    locked t (fun () ->
        (List.rev t.rev_spans, sorted_bindings t.ctrs, sorted_bindings t.gaug))
  in
  let agg = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let key = (sp.sp_cat, sp.sp_name) in
      let (n, total) =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt agg key)
      in
      Hashtbl.replace agg key (n + 1, total +. sp.sp_dur_ns))
    sps;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== telemetry summary ==\n";
  Buffer.add_string buf "spans (cat/name, count, total ms):\n";
  List.iter
    (fun ((cat, name), (n, total)) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-40s %6d %12.3f\n"
           ((if cat = "" then "misc" else cat) ^ "/" ^ name)
           n (total /. 1e6)))
    (sorted_bindings agg);
  if ctrs <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" name v))
      ctrs
  end;
  if gaug <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-40s %g\n" name v))
      gaug
  end;
  Buffer.contents buf
